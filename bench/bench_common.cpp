#include "bench_common.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/parallel.hpp"
#include "data/transform.hpp"
#include "obs/obs.hpp"
#include "tensor/stats.hpp"

namespace odonn::bench {

std::size_t BenchConfig::scaled_block(std::size_t paper_block) const {
  const double scaled = static_cast<double>(paper_block) *
                        static_cast<double>(grid) / 200.0;
  return std::max<std::size_t>(2, static_cast<std::size_t>(std::lround(scaled)));
}

const char* scale_name(Scale scale) {
  switch (scale) {
    case Scale::Smoke: return "smoke";
    case Scale::Default: return "default";
    case Scale::Paper: return "paper";
  }
  return "?";
}

std::vector<std::string> bench_config_keys() {
  return {"bench.scale", "grid", "samples", "layers", "detector", "seed",
          "format"};
}

std::vector<std::string> parallel_bench_config_keys() {
  std::vector<std::string> keys = bench_config_keys();
  keys.emplace_back("jobs");
  return keys;
}

BenchConfig make_bench_config(const Config& cfg) {
  const std::string scale_str =
      cfg.get_enum("bench.scale", "default", {"smoke", "default", "paper"});

  BenchConfig bc;
  if (scale_str == "smoke") {
    bc.scale = Scale::Smoke;
    bc.grid = 32;
    bc.samples = 400;
    bc.epochs_dense = 1;
    bc.epochs_sparse = 1;
    bc.epochs_finetune = 0;
    bc.batch = 50;
    bc.two_pi_iterations = 2000;
  } else if (scale_str == "paper") {
    bc.scale = Scale::Paper;
    bc.grid = 200;
    bc.samples = 12000;
    bc.epochs_dense = 50;
    bc.epochs_sparse = 10;
    bc.epochs_finetune = 2;
    bc.batch = 200;
    bc.two_pi_iterations = 3000;
  } else {
    bc = BenchConfig{};
  }
  bc.grid = static_cast<std::size_t>(cfg.get_int("grid", static_cast<long>(bc.grid)));
  bc.samples = static_cast<std::size_t>(
      cfg.get_int("samples", static_cast<long>(bc.samples)));
  const long layers = cfg.get_int("layers", static_cast<long>(bc.layers));
  if (layers < 1 || layers > 64) {
    throw ConfigError("layers must be in [1, 64]");
  }
  bc.layers = static_cast<std::size_t>(layers);
  bc.detector = donn::parse_detector_mode(
      cfg.get_enum("detector", "standard", {"standard", "differential"}));
  bc.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 7));
  const long jobs = cfg.get_int("jobs", 1);
  if (jobs < 1 || jobs > 64) {
    throw ConfigError("jobs must be in [1, 64]");
  }
  bc.jobs = static_cast<std::size_t>(jobs);
  return bc;
}

BenchConfig make_bench_config(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  cfg.strict(bench_config_keys());
  return make_bench_config(cfg);
}

train::RecipeOptions recipe_options(const BenchConfig& cfg,
                                    std::size_t paper_block) {
  train::RecipeOptions opt;
  opt.model = donn::DonnConfig::scaled(cfg.grid);
  opt.model.num_layers = cfg.layers;
  opt.model.detector = cfg.detector;
  opt.epochs_dense = cfg.epochs_dense;
  opt.epochs_sparse = cfg.epochs_sparse;
  opt.epochs_finetune = cfg.epochs_finetune;
  opt.batch_size = cfg.batch;
  opt.lr_dense = 0.2;       // §IV-A2
  opt.lr_sparse = 0.001;    // §IV-A2
  opt.roughness_p = 0.1;    // Fig. 6c inflection (per-pixel normalized)
  opt.intra_q = 0.03;       // Ours-D shape at this scale (see recipe.hpp)
  opt.scheme.scheme = sparsify::Scheme::Block;
  opt.scheme.ratio = 0.1;   // §IV-A2 sparsification ratio
  opt.scheme.block_size = cfg.scaled_block(paper_block);
  opt.slr.rho = 0.1;        // §IV-A2: rho=0.1, M=300, r=0.1, s0=0.01
  opt.slr.M = 300;
  opt.slr.r = 0.1;
  opt.slr.s0 = 0.01;
  opt.two_pi.iterations = cfg.two_pi_iterations;
  opt.seed = cfg.seed;
  return opt;
}

PreparedData prepare_dataset(data::SyntheticFamily family,
                             const BenchConfig& cfg) {
  const auto raw = data::make_synthetic(family, cfg.samples, cfg.seed + 1000);
  const auto resized = data::resize_dataset(raw, cfg.grid);
  Rng rng(cfg.seed + 2000);
  auto [train, test] = resized.split(0.8, rng);
  return {std::move(train), std::move(test)};
}

std::string json_quote(const std::string& text) {
  std::string out = "\"";
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

bool shape_check(bool pass, const std::string& description) {
  std::printf("[check] %s  %s\n", pass ? "PASS" : "FAIL", description.c_str());
  return pass;
}

std::uint64_t phases_digest(const std::vector<MatrixD>& phases) {
  std::uint64_t hash = kFnv1aBasis;
  for (const MatrixD& phase : phases) {
    for (const double value : phase) hash = fnv1a_mix(hash, value);
  }
  return hash;
}

std::string hex64(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

// ------------------------------------------------------- table registry

const std::vector<TableSpec>& all_table_specs() {
  // Paper-reported numbers from Tables II-V (accuracy %, R_overall before /
  // after the 2*pi optimization; negative after = the paper's "-" cell).
  static const std::vector<TableSpec> specs = {
      {"table2_mnist", "Table II: MNIST (digit stand-in)",
       data::SyntheticFamily::Digits, 25,
       {{"[5,6,8]", 96.67, 466.39, 460.85}, {"Ours-A", 96.18, 416.07, -1.0},
        {"Ours-B", 96.38, 538.78, 400.38},  {"Ours-C", 96.47, 409.41, 299.87},
        {"Ours-D", 95.90, 375.35, 280.32}}},
      {"table3_fmnist", "Table III: FMNIST (fashion stand-in)",
       data::SyntheticFamily::Fashion, 20,
       {{"[5,6,8]", 87.98, 464.78, 461.98}, {"Ours-A", 86.99, 421.49, -1.0},
        {"Ours-B", 87.88, 488.11, 438.53},  {"Ours-C", 86.79, 350.67, 305.86},
        {"Ours-D", 85.76, 450.73, 229.70}}},
      {"table4_kmnist", "Table IV: KMNIST (kana stand-in)",
       data::SyntheticFamily::Kana, 20,
       {{"[5,6,8]", 86.92, 460.61, 445.57}, {"Ours-A", 85.26, 462.70, -1.0},
        {"Ours-B", 86.83, 473.08, 432.26},  {"Ours-C", 85.01, 396.84, 331.22},
        {"Ours-D", 83.19, 327.48, 288.42}}},
      {"table5_emnist", "Table V: EMNIST (letter stand-in)",
       data::SyntheticFamily::Letters, 20,
       {{"[5,6,8]", 92.30, 463.42, 458.48}, {"Ours-A", 91.61, 435.58, -1.0},
        {"Ours-B", 92.36, 465.85, 443.91},  {"Ours-C", 91.16, 349.61, 336.75},
        {"Ours-D", 90.74, 312.17, 298.09}}}};
  return specs;
}

const TableSpec& table_spec(data::SyntheticFamily family) {
  for (const TableSpec& spec : all_table_specs()) {
    if (spec.family == family) return spec;
  }
  throw ConfigError("no paper table registered for this dataset family");
}

OutputFormat parse_format(const Config& cfg) {
  const std::string format =
      cfg.get_enum("format", "both", {"text", "json", "both"});
  if (format == "text") return OutputFormat::Text;
  if (format == "json") return OutputFormat::Json;
  return OutputFormat::Both;
}

// ------------------------------------------------------- table driver

namespace {

int table_shape_checks(const std::vector<train::RecipeResult>& rows,
                       const BenchConfig& cfg, bool print) {
  // Shape checks: the paper's qualitative claims on this table.
  const auto& base = rows[0];
  const auto& a = rows[1];
  const auto& b = rows[2];
  const auto& c = rows[3];
  const auto& d = rows[4];
  struct Check {
    bool pass;
    const char* description;
  };
  std::vector<Check> checks = {
      {a.roughness_before < base.roughness_before,
       "Ours-A (roughness-aware) smoother than baseline"},
      {b.roughness_after < b.roughness_before,
       "2pi optimization reduces Ours-B roughness"},
      {c.roughness_after < base.roughness_before,
       "Ours-C after 2pi smoother than baseline (paper: 28-36% reduction)"},
      {d.roughness_after <= c.roughness_after * 1.05,
       "Ours-D at least as smooth as Ours-C after 2pi"}};
  if (cfg.scale != Scale::Smoke) {
    // Accuracy-ordering claims need more than the smoke scale's single
    // epoch to be meaningful.
    checks.push_back({base.accuracy - d.accuracy < 0.12,
                      "Ours-D accuracy within a few points of baseline"});
    // Paper: Ours-B accuracy is at or above Ours-A. At this reduced scale
    // the SLR schedule gets 2 epochs + 1 mask-frozen epoch (vs the paper's
    // dozens), which can cost a few points on the harder glyph tasks.
    checks.push_back({b.accuracy >= a.accuracy - 0.08,
                      "sparsified model keeps accuracy vs Ours-A "
                      "(reduced-schedule slack)"});
  } else if (print) {
    std::printf("[check] SKIP  accuracy-ordering checks (smoke scale trains "
                "a single epoch)\n");
  }
  int failures = 0;
  for (const Check& check : checks) {
    if (print) {
      failures += !shape_check(check.pass, check.description);
    } else {
      failures += !check.pass;
    }
  }
  return failures;
}

void print_table_text(const TableSpec& spec, const BenchConfig& cfg,
                      const std::vector<train::RecipeResult>& rows) {
  std::printf("=== %s ===\n", spec.title);
  std::printf("scale=%s grid=%zu samples=%zu layers=%zu detector=%s "
              "epochs=%zu+%zu+%zu block=%zu "
              "(paper block %zu on 200) sparsity=0.1 seed=%llu jobs=%zu\n",
              scale_name(cfg.scale), cfg.grid, cfg.samples, cfg.layers,
              donn::detector_mode_name(cfg.detector), cfg.epochs_dense,
              cfg.epochs_sparse, cfg.epochs_finetune,
              cfg.scaled_block(spec.paper_block), spec.paper_block,
              static_cast<unsigned long long>(cfg.seed), cfg.jobs);
  std::printf("note: measured numbers come from a CPU-sized synthetic rerun; "
              "compare SHAPE, not absolutes (DESIGN.md 2).\n\n");

  std::printf("%-10s | %21s | %25s | %25s\n", "model", "accuracy (%)",
              "R_overall before 2pi", "R_overall after 2pi");
  std::printf("%-10s | %10s %10s | %12s %12s | %12s %12s\n", "", "paper",
              "measured", "paper", "measured", "paper", "measured");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& m = rows[i];
    const auto& p = spec.paper[i];
    char after_paper[32];
    if (p.r_after < 0.0) {
      std::snprintf(after_paper, sizeof(after_paper), "%12s", "-");
    } else {
      std::snprintf(after_paper, sizeof(after_paper), "%12.2f", p.r_after);
    }
    std::printf("%-10s | %10.2f %10.2f | %12.2f %12.2f | %s %12.2f\n",
                p.model, p.acc, 100.0 * m.accuracy, p.r_before,
                m.roughness_before, after_paper, m.roughness_after);
  }
}

void print_table_json(const TableSpec& spec, const BenchConfig& cfg,
                      const std::vector<train::RecipeResult>& rows,
                      int failures, double wall_seconds) {
  // Same perf-record convention as bench/serve_throughput.cpp: one JSON
  // document on stdout, suitable for diffing a trajectory across PRs.
  // Each row carries FNV digests of the trained and 2*pi-smoothed phase
  // bits: scripts/check.sh compares them across ODONN_THREADS=1 vs 4 and
  // across jobs=1 vs 4 (the parallel-executor determinism contract).
  std::printf("{\"bench\": %s, \"scale\": %s, \"grid\": %zu, "
              "\"samples\": %zu, \"layers\": %zu, \"detector\": %s, "
              "\"seed\": %llu, \"block\": %zu, "
              "\"jobs\": %zu, \"wall_seconds\": %s, "
              "\"failures\": %d,\n",
              json_quote(spec.id).c_str(),
              json_quote(scale_name(cfg.scale)).c_str(), cfg.grid,
              cfg.samples, cfg.layers,
              json_quote(donn::detector_mode_name(cfg.detector)).c_str(),
              static_cast<unsigned long long>(cfg.seed),
              cfg.scaled_block(spec.paper_block), cfg.jobs,
              json_number(wall_seconds).c_str(), failures);
  // Metrics snapshot block: the process-wide registry as of this record
  // (counters accumulate across tables in a dataset=all run). Metric
  // names are dotted, so the digest/accuracy greps in scripts/check.sh
  // never match inside this block.
  std::printf(" \"metrics\": %s,\n \"rows\": [\n",
              obs::MetricsRegistry::global().to_json().c_str());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::printf("  {\"model\": %s, \"accuracy\": %s, "
                "\"roughness_before\": %s, \"roughness_after\": %s, "
                "\"deployed_accuracy\": %s, "
                "\"deployed_accuracy_after_2pi\": %s, \"sparsity\": %s, "
                "\"seconds\": %s, \"train_digest\": %s, "
                "\"smoothed_digest\": %s}%s\n",
                json_quote(r.name).c_str(), json_number(r.accuracy).c_str(),
                json_number(r.roughness_before).c_str(),
                json_number(r.roughness_after).c_str(),
                json_number(r.deployed_accuracy).c_str(),
                json_number(r.deployed_accuracy_after_2pi).c_str(),
                json_number(r.sparsity).c_str(),
                json_number(r.seconds).c_str(),
                json_quote(hex64(phases_digest(r.trained_phases))).c_str(),
                json_quote(hex64(phases_digest(r.smoothed_phases))).c_str(),
                i + 1 < rows.size() ? "," : "");
  }
  std::printf("]}\n");
}

}  // namespace

int run_table_bench(const TableSpec& spec, const BenchConfig& cfg,
                    OutputFormat format) {
  const bool text = format != OutputFormat::Json;
  const auto opt = recipe_options(cfg, spec.paper_block);
  const auto dataset = prepare_dataset(spec.family, cfg);

  // The five recipes run through the parallel executor: jobs= of them in
  // flight, each over its own store. Rows (and their digests) are bitwise
  // identical to jobs=1; only wall_seconds moves.
  train::TableRunOptions table;
  table.jobs = cfg.jobs;
  // Live per-stage progress (debug level so default runs stay quiet):
  // events stream out of the concurrent jobs as they happen — run with
  // ODONN_LOG_LEVEL=debug to watch a parallel table make progress.
  table.progress = [](const train::TableProgress& event) {
    if (event.finished) {
      log::debug() << "[table] " << event.label << "/" << event.stage_name
                   << (event.skipped ? " resumed"
                                     : " done " +
                                           std::to_string(event.seconds) +
                                           "s");
    } else {
      log::debug() << "[table] " << event.label << "/" << event.stage_name
                   << " start";
    }
  };
  using Clock = std::chrono::steady_clock;
  const Clock::time_point t0 = Clock::now();
  const std::vector<train::RecipeResult> rows =
      train::run_table(opt, dataset.train, dataset.test, table);
  const double wall_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();

  if (text) print_table_text(spec, cfg, rows);
  const int failures = table_shape_checks(rows, cfg, text);
  if (text) {
    const auto& base = rows[0];
    const auto& c = rows[3];
    const double reduction = 1.0 - c.roughness_after / base.roughness_before;
    std::printf("\nOurs-C roughness reduction vs baseline: %.1f%% "
                "(paper reports 27-36%% across datasets)\n",
                100.0 * reduction);
    std::printf("deployment emulation: baseline %.2f%% -> %.2f%% deployed; "
                "Ours-C %.2f%% -> %.2f%% (after 2pi)\n",
                100.0 * base.accuracy, 100.0 * base.deployed_accuracy,
                100.0 * c.accuracy, 100.0 * c.deployed_accuracy_after_2pi);
    std::printf("table wall-clock: %.3fs (jobs=%zu, threads=%zu)\n",
                wall_seconds, cfg.jobs, thread_count());
    std::printf("%d shape-check failure(s)\n\n", failures);
  }
  if (format != OutputFormat::Text) {
    print_table_json(spec, cfg, rows, failures, wall_seconds);
  }
  return failures;
}

int run_table_bench(const TableSpec& spec, int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  cfg.strict(parallel_bench_config_keys());
  return run_table_bench(spec, make_bench_config(cfg), parse_format(cfg));
}

}  // namespace odonn::bench

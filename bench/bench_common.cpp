#include "bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"
#include "data/transform.hpp"

namespace odonn::bench {

std::size_t BenchConfig::scaled_block(std::size_t paper_block) const {
  const double scaled = static_cast<double>(paper_block) *
                        static_cast<double>(grid) / 200.0;
  return std::max<std::size_t>(2, static_cast<std::size_t>(std::lround(scaled)));
}

const char* scale_name(Scale scale) {
  switch (scale) {
    case Scale::Smoke: return "smoke";
    case Scale::Default: return "default";
    case Scale::Paper: return "paper";
  }
  return "?";
}

BenchConfig make_bench_config(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const std::string scale_str = cfg.get_string("bench.scale", "default");

  BenchConfig bc;
  if (scale_str == "smoke") {
    bc.scale = Scale::Smoke;
    bc.grid = 32;
    bc.samples = 400;
    bc.epochs_dense = 1;
    bc.epochs_sparse = 1;
    bc.epochs_finetune = 0;
    bc.batch = 50;
    bc.two_pi_iterations = 2000;
  } else if (scale_str == "paper") {
    bc.scale = Scale::Paper;
    bc.grid = 200;
    bc.samples = 12000;
    bc.epochs_dense = 50;
    bc.epochs_sparse = 10;
    bc.epochs_finetune = 2;
    bc.batch = 200;
    bc.two_pi_iterations = 3000;
  } else if (scale_str == "default") {
    bc = BenchConfig{};
  } else {
    throw ConfigError("unknown bench scale '" + scale_str + "'");
  }
  bc.grid = static_cast<std::size_t>(cfg.get_int("grid", static_cast<long>(bc.grid)));
  bc.samples = static_cast<std::size_t>(
      cfg.get_int("samples", static_cast<long>(bc.samples)));
  bc.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 7));
  return bc;
}

train::RecipeOptions recipe_options(const BenchConfig& cfg,
                                    std::size_t paper_block) {
  train::RecipeOptions opt;
  opt.model = donn::DonnConfig::scaled(cfg.grid);
  opt.epochs_dense = cfg.epochs_dense;
  opt.epochs_sparse = cfg.epochs_sparse;
  opt.epochs_finetune = cfg.epochs_finetune;
  opt.batch_size = cfg.batch;
  opt.lr_dense = 0.2;       // §IV-A2
  opt.lr_sparse = 0.001;    // §IV-A2
  opt.roughness_p = 0.1;    // Fig. 6c inflection (per-pixel normalized)
  opt.intra_q = 0.03;       // Ours-D shape at this scale (see recipe.hpp)
  opt.scheme.scheme = sparsify::Scheme::Block;
  opt.scheme.ratio = 0.1;   // §IV-A2 sparsification ratio
  opt.scheme.block_size = cfg.scaled_block(paper_block);
  opt.slr.rho = 0.1;        // §IV-A2: rho=0.1, M=300, r=0.1, s0=0.01
  opt.slr.M = 300;
  opt.slr.r = 0.1;
  opt.slr.s0 = 0.01;
  opt.two_pi.iterations = cfg.two_pi_iterations;
  opt.seed = cfg.seed;
  return opt;
}

PreparedData prepare_dataset(data::SyntheticFamily family,
                             const BenchConfig& cfg) {
  const auto raw = data::make_synthetic(family, cfg.samples, cfg.seed + 1000);
  const auto resized = data::resize_dataset(raw, cfg.grid);
  Rng rng(cfg.seed + 2000);
  auto [train, test] = resized.split(0.8, rng);
  return {std::move(train), std::move(test)};
}

std::string json_quote(const std::string& text) {
  std::string out = "\"";
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

bool shape_check(bool pass, const std::string& description) {
  std::printf("[check] %s  %s\n", pass ? "PASS" : "FAIL", description.c_str());
  return pass;
}

int run_table_bench(const char* title, data::SyntheticFamily family,
                    std::size_t paper_block,
                    const std::vector<PaperRow>& paper, int argc,
                    char** argv) {
  const BenchConfig cfg = make_bench_config(argc, argv);
  std::printf("=== %s ===\n", title);
  std::printf("scale=%s grid=%zu samples=%zu epochs=%zu+%zu+%zu block=%zu "
              "(paper block %zu on 200) sparsity=0.1 seed=%llu\n",
              scale_name(cfg.scale), cfg.grid, cfg.samples, cfg.epochs_dense,
              cfg.epochs_sparse, cfg.epochs_finetune,
              cfg.scaled_block(paper_block), paper_block,
              static_cast<unsigned long long>(cfg.seed));
  std::printf("note: measured numbers come from a CPU-sized synthetic rerun; "
              "compare SHAPE, not absolutes (DESIGN.md 2).\n\n");

  const auto opt = recipe_options(cfg, paper_block);
  const auto dataset = prepare_dataset(family, cfg);
  const auto rows = train::run_table(opt, dataset.train, dataset.test);

  std::printf("%-10s | %21s | %25s | %25s\n", "model", "accuracy (%)",
              "R_overall before 2pi", "R_overall after 2pi");
  std::printf("%-10s | %10s %10s | %12s %12s | %12s %12s\n", "", "paper",
              "measured", "paper", "measured", "paper", "measured");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& m = rows[i];
    const auto& p = paper[i];
    char after_paper[32];
    if (p.r_after < 0.0) {
      std::snprintf(after_paper, sizeof(after_paper), "%12s", "-");
    } else {
      std::snprintf(after_paper, sizeof(after_paper), "%12.2f", p.r_after);
    }
    std::printf("%-10s | %10.2f %10.2f | %12.2f %12.2f | %s %12.2f\n",
                p.model, p.acc, 100.0 * m.accuracy, p.r_before,
                m.roughness_before, after_paper, m.roughness_after);
  }

  // Shape checks: the paper's qualitative claims on this table.
  const auto& base = rows[0];
  const auto& a = rows[1];
  const auto& b = rows[2];
  const auto& c = rows[3];
  const auto& d = rows[4];
  int failures = 0;
  failures += !shape_check(a.roughness_before < base.roughness_before,
                           "Ours-A (roughness-aware) smoother than baseline");
  failures += !shape_check(b.roughness_after < b.roughness_before,
                           "2pi optimization reduces Ours-B roughness");
  failures += !shape_check(c.roughness_after < base.roughness_before,
                           "Ours-C after 2pi smoother than baseline (paper: "
                           "28-36% reduction)");
  failures += !shape_check(d.roughness_after <= c.roughness_after * 1.05,
                           "Ours-D at least as smooth as Ours-C after 2pi");
  if (cfg.scale != Scale::Smoke) {
    // Accuracy-ordering claims need more than the smoke scale's single
    // epoch to be meaningful.
    failures += !shape_check(base.accuracy - d.accuracy < 0.12,
                             "Ours-D accuracy within a few points of baseline");
    // Paper: Ours-B accuracy is at or above Ours-A. At this reduced scale
    // the SLR schedule gets 2 epochs + 1 mask-frozen epoch (vs the paper's
    // dozens), which can cost a few points on the harder glyph tasks.
    failures += !shape_check(b.accuracy >= a.accuracy - 0.08,
                             "sparsified model keeps accuracy vs Ours-A "
                             "(reduced-schedule slack)");
  } else {
    std::printf("[check] SKIP  accuracy-ordering checks (smoke scale trains "
                "a single epoch)\n");
  }
  const double reduction =
      1.0 - c.roughness_after / base.roughness_before;
  std::printf("\nOurs-C roughness reduction vs baseline: %.1f%% "
              "(paper reports 27-36%% across datasets)\n", 100.0 * reduction);
  std::printf("deployment emulation: baseline %.2f%% -> %.2f%% deployed; "
              "Ours-C %.2f%% -> %.2f%% (after 2pi)\n",
              100.0 * base.accuracy, 100.0 * base.deployed_accuracy,
              100.0 * c.accuracy, 100.0 * c.deployed_accuracy_after_2pi);
  std::printf("%d shape-check failure(s)\n\n", failures);
  return failures;
}

}  // namespace odonn::bench

// Robust-training bench: does optimizing the EXPECTED fabricated accuracy
// (noise-in-the-loop training, train::RobustTrainOptions) beat bolting
// 2*pi smoothing onto a cleanly trained model — at the same training
// budget?
//
// Two variants of the baseline recipe, identical epochs / lr / batch /
// seed (the "equal clean-accuracy budget"):
//   smoothed-only  train (clean) -> 2*pi smooth
//   robust         robust_train (K fabrication realizations per step,
//                  antithetic pairs; in-loop crosstalk deployment stays
//                  off by default — see RobustTrainStageOptions — and is
//                  exposed as train_crosstalk=) -> 2*pi smooth
// Both are then subjected to >= 32 Monte-Carlo fabricated devices under
// COMMON RANDOM NUMBERS (realization seeds depend only on (seed, r)), so
// the yield comparison is paired. Shape checks assert the robust-trained
// variant keeps a higher mean fabricated accuracy AND a strictly higher
// yield at the default accuracy spec (yield_threshold=0.5) — the PR's
// acceptance bar: training through the deployment path beats measuring it
// after the fact.
//
// Determinism: training uses the trainer's fixed-slice reduction and the
// Monte-Carlo evaluator's counter-based streams, so the JSON record's
// digests — FNV over the trained PHASE BITS per variant ("train_digest")
// and over the per-realization accuracies ("digest") — are bitwise
// independent of ODONN_THREADS; scripts/check.sh compares them across
// thread counts on every push.
//
//   ./robust_train [bench.scale=smoke|default|paper] [grid=] [samples=]
//                  [seed=] [epochs=] [realizations=32]
//                  [train_realizations=2] [antithetic=] [train_antithetic=]
//                  [train_warmup=-1] [train_lr_scale=0.1]
//                  [train_crosstalk=0] [yield_threshold=0.5]
//                  [perturb=SPEC] [format=]
//
// antithetic= follows the odonn_cli convention: it drives BOTH the
// Monte-Carlo evaluation streams (default off — plain CRN) and the
// training streams (default on); train_antithetic= overrides training
// independently.
//
// epochs defaults to max(2, scale epochs) so even the smoke scale fits
// one clean warm-up epoch plus one noise-in-the-loop epoch.
//
// Emits the established JSON perf-record convention (seconds included).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "common/parallel.hpp"
#include "fab/montecarlo.hpp"
#include "fab/spec.hpp"
#include "pipeline/artifact_store.hpp"
#include "pipeline/parser.hpp"
#include "tensor/stats.hpp"
#include "train/recipe.hpp"

using namespace odonn;
using Clock = std::chrono::steady_clock;

namespace {

/// Trains the baseline recipe's model-producing stages (train -> smooth),
/// optionally swapping in the robust_train stage, and returns the
/// 2*pi-smoothed model.
donn::DonnModel train_smoothed_variant(
    const train::RecipeOptions& options,
    const pipeline::RobustTrainStageOptions& robust_options, bool robust,
    const data::Dataset& train_set, const data::Dataset& test_set) {
  pipeline::PipelineSpec spec =
      pipeline::spec_for_recipe(train::RecipeKind::Baseline);
  std::erase_if(spec.stages, [](pipeline::StageKind stage) {
    return stage != pipeline::StageKind::Train &&
           stage != pipeline::StageKind::Smooth;
  });
  if (robust) pipeline::apply_robust_train(spec);
  pipeline::BuildContext context;
  context.robust_train = robust_options;
  pipeline::ArtifactStore store;
  store.set_data(&train_set, &test_set);
  pipeline::build_pipeline(spec, options, context).run(store);
  return donn::DonnModel(store.model(pipeline::artifacts::kSmoothedModel));
}

}  // namespace

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  std::vector<std::string> keys = bench::bench_config_keys();
  for (const char* key :
       {"realizations", "train_realizations", "antithetic",
        "train_antithetic", "train_resample", "train_warmup",
        "train_lr_scale", "train_crosstalk", "yield_threshold", "perturb",
        "epochs"}) {
    keys.emplace_back(key);
  }
  cli.strict(keys);
  const bench::BenchConfig bc = bench::make_bench_config(cli);
  const auto format = bench::parse_format(cli);
  const bool print_text = format != bench::OutputFormat::Json;
  const std::size_t realizations =
      static_cast<std::size_t>(cli.get_int("realizations", 32));
  const double yield_threshold = cli.get_double("yield_threshold", 0.5);
  const std::string perturb_spec =
      cli.get_string("perturb", fab::kDefaultPerturbationSpec);
  const fab::PerturbationStack stack =
      fab::parse_perturbation_stack(perturb_spec);

  const bool mc_antithetic = cli.get_bool("antithetic", false);

  // The shared key mapping + validation from the pipeline parser (clean
  // ConfigError on e.g. odd train_realizations with antithetic pairing);
  // only the perturb default differs — the bench resolves the default
  // spec locally so the JSON record always names it.
  pipeline::RobustTrainStageOptions robust_options =
      pipeline::robust_train_options_from_config(cli);
  robust_options.perturb = perturb_spec;

  train::RecipeOptions options = bench::recipe_options(bc, 5);
  // Both variants need a solid clean warm-up PLUS a noise-adaptation tail
  // for the comparison to be meaningful (a half-trained model has no
  // robustness to protect), so the epoch budget floors at 4 — three clean
  // epochs and one robust epoch at the default warm-up split — even at
  // the smoke scale's 1-epoch default.
  options.epochs_dense = static_cast<std::size_t>(cli.get_int(
      "epochs",
      static_cast<long>(std::max<std::size_t>(4, options.epochs_dense))));
  const bench::PreparedData data =
      bench::prepare_dataset(data::SyntheticFamily::Digits, bc);

  if (print_text) {
    std::printf("=== robust_train (%s scale) ===\n",
                bench::scale_name(bc.scale));
    std::printf(
        "grid=%zu train=%zu eval=%zu realizations=%zu train_realizations=%zu "
        "train_antithetic=%d antithetic=%d threads=%zu seed=%llu\n",
        bc.grid, data.train.size(), data.test.size(), realizations,
        robust_options.realizations, robust_options.antithetic ? 1 : 0,
        mc_antithetic ? 1 : 0, thread_count(),
        static_cast<unsigned long long>(bc.seed));
    std::printf("perturb=%s\n\n", perturb_spec.c_str());
  }

  const Clock::time_point t_train = Clock::now();
  const donn::DonnModel smoothed_only = train_smoothed_variant(
      options, robust_options, /*robust=*/false, data.train, data.test);
  const donn::DonnModel robust_smoothed = train_smoothed_variant(
      options, robust_options, /*robust=*/true, data.train, data.test);
  const double train_seconds =
      std::chrono::duration<double>(Clock::now() - t_train).count();

  fab::MonteCarloOptions mc;
  mc.realizations = realizations;
  mc.seed = bc.seed + 1000;
  mc.antithetic = mc_antithetic;
  mc.yield_threshold = yield_threshold;
  mc.crosstalk = options.crosstalk;
  const fab::MonteCarloEvaluator evaluator(data.test, mc);

  const Clock::time_point t_eval = Clock::now();
  const auto reports = evaluator.compare(
      {{"smoothed-only", &smoothed_only}, {"robust", &robust_smoothed}},
      stack);
  const double eval_seconds =
      std::chrono::duration<double>(Clock::now() - t_eval).count();
  const fab::RobustnessReport& base_report = reports[0];
  const fab::RobustnessReport& robust_report = reports[1];

  if (print_text) {
    std::printf("%-16s | %6s | %6s | %6s | %6s | %6s | %6s | %5s\n", "model",
                "clean", "mean", "std", "min", "p50", "p95", "yield");
    for (const auto& r : reports) {
      std::printf(
          "%-16s | %5.2f%% | %5.2f%% | %6.4f | %5.2f%% | %5.2f%% | %5.2f%% "
          "| %5.2f\n",
          r.model_name.c_str(), 100.0 * r.clean_accuracy, 100.0 * r.mean,
          r.stddev, 100.0 * r.min, 100.0 * r.p50, 100.0 * r.p95, r.yield);
    }
    std::printf("\naccuracy spec (default threshold): %.2f%%\n",
                100.0 * yield_threshold);
    std::printf("train %.1fs, %zu realizations x %zu variants in %.1fs\n\n",
                train_seconds, realizations, reports.size(), eval_seconds);
  }

  // Paired determinism probe: a repeated evaluation of the robust variant
  // must be bitwise identical (check.sh additionally compares the emitted
  // digests across ODONN_THREADS process-to-process).
  const auto replay = evaluator.evaluate("robust", robust_smoothed, stack);

  int failures = 0;
  failures += !bench::shape_check(
      robust_report.mean > base_report.mean,
      "robust-trained variant mean fabricated accuracy above the 2*pi-"
      "smoothed-only variant at equal training budget, common random "
      "numbers");
  failures += !bench::shape_check(
      robust_report.yield > base_report.yield,
      "robust-trained variant yield strictly above the 2*pi-smoothed-only "
      "variant at the default accuracy spec");
  failures += !bench::shape_check(
      replay.digest() == robust_report.digest(),
      "repeated Monte-Carlo evaluation of the robust variant is bitwise "
      "deterministic");

  std::string json =
      "{\"bench\": \"robust_train\", \"scale\": " +
      bench::json_quote(bench::scale_name(bc.scale)) +
      ", \"grid\": " + std::to_string(bc.grid) +
      ", \"eval_samples\": " + std::to_string(data.test.size()) +
      ", \"realizations\": " + std::to_string(realizations) +
      ", \"train_realizations\": " +
      std::to_string(robust_options.realizations) +
      ", \"train_antithetic\": " +
      (robust_options.antithetic ? "true" : "false") +
      ", \"antithetic\": " + (mc_antithetic ? "true" : "false") +
      ", \"threads\": " + std::to_string(thread_count()) +
      ", \"perturb\": " + bench::json_quote(perturb_spec) +
      ", \"yield_threshold\": " + bench::json_number(yield_threshold) +
      ", \"train_seconds\": " + bench::json_number(train_seconds) +
      ", \"eval_seconds\": " + bench::json_number(eval_seconds) +
      ", \"rows\": [\n";
  const donn::DonnModel* variants[] = {&smoothed_only, &robust_smoothed};
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const fab::RobustnessReport& r = reports[i];
    json += "  {\"model\": " + bench::json_quote(r.model_name) +
            ", \"clean\": " + bench::json_number(r.clean_accuracy) +
            ", \"mean\": " + bench::json_number(r.mean) +
            ", \"std\": " + bench::json_number(r.stddev) +
            ", \"min\": " + bench::json_number(r.min) +
            ", \"p50\": " + bench::json_number(r.p50) +
            ", \"p95\": " + bench::json_number(r.p95) +
            ", \"yield\": " + bench::json_number(r.yield) +
            ", \"train_digest\": " +
            bench::json_quote(
                bench::hex64(bench::phases_digest(variants[i]->phases()))) +
            ", \"digest\": " + bench::json_quote(bench::hex64(r.digest())) +
            "}" +
            (i + 1 < reports.size() ? ",\n" : "\n");
  }
  json += "]}";
  if (format != bench::OutputFormat::Text) std::printf("%s\n", json.c_str());
  return failures;
}

// Layer-scaling / detector-strategy bench: the {1-layer, 5-layer} x
// {standard, differential} recipe cells as a paired A/B.
//
// For each cell, trains the Ours-C recipe (model-producing stages only) at
// the bench scale, 2*pi-smooths it, and subjects the smoothed deployment to
// R perturbed fabricated devices through the crosstalk emulation. Cells at
// the SAME layer count see identical perturbation draws (common random
// numbers: roughness draws one GRF per layer, so the stream only pairs
// within a layer count) — the standard-vs-differential comparison is paired;
// the 1-vs-5-layer comparison is two clean marginals.
//
// Shape checks stay conservative at smoke scale (synthetic data, tiny
// grids): accuracies must be valid probabilities, every cell must produce a
// full Monte-Carlo report, and a repeated evaluation must be bitwise
// deterministic. Accuracy ORDERING across cells is reported, not asserted.
//
//   ./layers_scaling [bench.scale=smoke|default|paper] [grid=] [samples=]
//                    [seed=] [realizations=16] [perturb=SPEC] [format=]
//
// (layers=/detector= are rejected: the four cells are the bench.)
// Emits the established JSON perf-record convention; scripts/check.sh runs
// it at smoke scale and CI uploads the record.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "common/parallel.hpp"
#include "donn/detector.hpp"
#include "fab/montecarlo.hpp"
#include "fab/spec.hpp"
#include "pipeline/artifact_store.hpp"
#include "pipeline/parser.hpp"
#include "train/recipe.hpp"

using namespace odonn;
using Clock = std::chrono::steady_clock;

namespace {

struct Cell {
  std::size_t layers;
  donn::DetectorMode detector;
};

std::string cell_name(const Cell& cell) {
  return std::to_string(cell.layers) + "L-" +
         donn::detector_mode_name(cell.detector);
}

/// Trains the Ours-C recipe for one cell and returns the smoothed model.
donn::DonnModel train_cell(const train::RecipeOptions& options,
                           const data::Dataset& train_set,
                           const data::Dataset& test_set) {
  pipeline::PipelineSpec spec =
      pipeline::spec_for_recipe(train::RecipeKind::OursC);
  std::erase_if(spec.stages, [](pipeline::StageKind stage) {
    return stage != pipeline::StageKind::Train &&
           stage != pipeline::StageKind::Sparsify &&
           stage != pipeline::StageKind::Smooth;
  });
  pipeline::ArtifactStore store;
  store.set_data(&train_set, &test_set);
  pipeline::build_pipeline(spec, options).run(store);
  return donn::DonnModel(store.model(pipeline::artifacts::kSmoothedModel));
}

}  // namespace

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  std::vector<std::string> keys = bench::bench_config_keys();
  // The four cells ARE the bench: a caller-supplied layers=/detector= would
  // be silently ignored, so reject them per the Config::strict contract.
  std::erase(keys, std::string("layers"));
  std::erase(keys, std::string("detector"));
  keys.emplace_back("realizations");
  keys.emplace_back("perturb");
  cli.strict(keys);
  const bench::BenchConfig bc = bench::make_bench_config(cli);
  const auto format = bench::parse_format(cli);
  const bool print_text = format != bench::OutputFormat::Json;
  const std::size_t realizations =
      static_cast<std::size_t>(cli.get_int("realizations", 16));
  const std::string perturb_spec =
      cli.get_string("perturb", fab::kDefaultPerturbationSpec);
  const fab::PerturbationStack stack =
      fab::parse_perturbation_stack(perturb_spec);

  const std::vector<Cell> cells = {
      {1, donn::DetectorMode::Standard},
      {1, donn::DetectorMode::Differential},
      {5, donn::DetectorMode::Standard},
      {5, donn::DetectorMode::Differential},
  };

  const bench::PreparedData data =
      bench::prepare_dataset(data::SyntheticFamily::Digits, bc);

  if (print_text) {
    std::printf("=== layers_scaling (%s scale) ===\n",
                bench::scale_name(bc.scale));
    std::printf(
        "grid=%zu train=%zu eval=%zu realizations=%zu threads=%zu "
        "seed=%llu\n",
        bc.grid, data.train.size(), data.test.size(), realizations,
        thread_count(), static_cast<unsigned long long>(bc.seed));
    std::printf("perturb=%s\n\n", perturb_spec.c_str());
  }

  const Clock::time_point t_train = Clock::now();
  std::vector<donn::DonnModel> models;
  std::vector<std::uint64_t> train_digests;
  train::RecipeOptions first_options;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    bench::BenchConfig cell_bc = bc;
    cell_bc.layers = cells[i].layers;
    cell_bc.detector = cells[i].detector;
    const train::RecipeOptions options = bench::recipe_options(cell_bc, 5);
    if (i == 0) first_options = options;
    models.push_back(train_cell(options, data.train, data.test));
    train_digests.push_back(bench::phases_digest(models.back().phases()));
  }
  const double train_seconds =
      std::chrono::duration<double>(Clock::now() - t_train).count();

  fab::MonteCarloOptions mc;
  mc.realizations = realizations;
  mc.seed = bc.seed + 1000;
  mc.crosstalk = first_options.crosstalk;
  const fab::MonteCarloEvaluator evaluator(data.test, mc);

  const Clock::time_point t_eval = Clock::now();
  std::vector<std::pair<std::string, const donn::DonnModel*>> variants;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    variants.emplace_back(cell_name(cells[i]), &models[i]);
  }
  const auto reports = evaluator.compare(variants, stack);
  const double eval_seconds =
      std::chrono::duration<double>(Clock::now() - t_eval).count();

  // Per-layer-count paired yield spec: the midpoint between the standard
  // and differential mean fabricated accuracies at that depth.
  const double spec_1l = 0.5 * (reports[0].mean + reports[1].mean);
  const double spec_5l = 0.5 * (reports[2].mean + reports[3].mean);

  if (print_text) {
    std::printf("%-18s | %6s | %6s | %6s | %6s | %6s\n", "cell", "clean",
                "mean", "p50", "p95", "yield");
    for (std::size_t i = 0; i < reports.size(); ++i) {
      const double spec = (i < 2) ? spec_1l : spec_5l;
      const auto& r = reports[i];
      std::printf(
          "%-18s | %5.2f%% | %5.2f%% | %5.2f%% | %5.2f%% | %5.2f\n",
          r.model_name.c_str(), 100.0 * r.clean_accuracy, 100.0 * r.mean,
          100.0 * r.p50, 100.0 * r.p95, fab::yield_at(r, spec));
    }
    std::printf("\ntrain %.1fs, %zu realizations x %zu cells in %.1fs\n\n",
                train_seconds, realizations, reports.size(), eval_seconds);
  }

  // Determinism probe: re-evaluating one cell must be bitwise identical.
  const auto replay = evaluator.evaluate(cell_name(cells[3]), models[3], stack);

  int failures = 0;
  failures += !bench::shape_check(reports.size() == cells.size(),
                                  "every cell produced a Monte-Carlo report");
  bool accuracies_valid = true;
  for (const auto& r : reports) {
    accuracies_valid = accuracies_valid && std::isfinite(r.clean_accuracy) &&
                       r.clean_accuracy >= 0.0 && r.clean_accuracy <= 1.0 &&
                       std::isfinite(r.mean) && r.mean >= 0.0 && r.mean <= 1.0;
  }
  failures += !bench::shape_check(
      accuracies_valid, "clean and fabricated accuracies are probabilities "
                        "in [0, 1] for all four cells");
  failures += !bench::shape_check(
      replay.digest() == reports[3].digest(),
      "repeated Monte-Carlo evaluation of the 5L-differential cell is "
      "bitwise deterministic");

  std::string json =
      "{\"bench\": \"layers_scaling\", \"scale\": " +
      bench::json_quote(bench::scale_name(bc.scale)) +
      ", \"grid\": " + std::to_string(bc.grid) +
      ", \"eval_samples\": " + std::to_string(data.test.size()) +
      ", \"realizations\": " + std::to_string(realizations) +
      ", \"threads\": " + std::to_string(thread_count()) +
      ", \"perturb\": " + bench::json_quote(perturb_spec) +
      ", \"train_seconds\": " + bench::json_number(train_seconds) +
      ", \"eval_seconds\": " + bench::json_number(eval_seconds) +
      ", \"cells\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const double spec = (i < 2) ? spec_1l : spec_5l;
    const auto& r = reports[i];
    json += "  {\"cell\": " + bench::json_quote(r.model_name) +
            ", \"layers\": " + std::to_string(cells[i].layers) +
            ", \"detector\": " +
            bench::json_quote(donn::detector_mode_name(cells[i].detector)) +
            ", \"train_digest\": " +
            bench::json_quote(bench::hex64(train_digests[i])) +
            ", \"clean\": " + bench::json_number(r.clean_accuracy) +
            ", \"mean\": " + bench::json_number(r.mean) +
            ", \"std\": " + bench::json_number(r.stddev) +
            ", \"p50\": " + bench::json_number(r.p50) +
            ", \"p95\": " + bench::json_number(r.p95) +
            ", \"yield_at_spec\": " +
            bench::json_number(fab::yield_at(r, spec)) + "}" +
            (i + 1 < reports.size() ? ",\n" : "\n");
  }
  json += "]}";
  if (format != bench::OutputFormat::Text) std::printf("%s\n", json.c_str());
  return failures;
}

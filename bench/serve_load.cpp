// Serve-cluster load bench: closed- and open-loop load generation against
// ServeCluster, sweeping replica counts and offered QPS.
//
// Two phases:
//   1. Closed loop (saturation): for each replica count 1..replicas=, every
//      request is submitted at once and the cluster drains flat out. Each
//      replica pins inner_threads=1 so the kernel runs inline on the drain
//      thread and REPLICATION is the only scaling lever — what the
//      replicas=2 >= 1.5x replicas=1 check measures on multi-core hosts
//      (self-skipped with a logged reason on small containers, same rule as
//      bench/table_parallel).
//   2. Open loop (SLO curve): requests arrive on a fixed schedule at
//      offered rates derived from the measured saturation (0.5x / 0.9x /
//      1.3x), submitted the moment their arrival time passes regardless of
//      completions. Rejections (OverloadError under the bounded queue) are
//      counted, never retried.
//
// Latency percentiles (p50/p99/p999) come from the replicas' retained
// windows concatenated, through the repo-wide nearest-rank rule
// (odonn::percentile_nearest_rank). Predictions are digested FNV-1a over
// the IEEE-754 bits of every detector sum in submit order; the digest must
// be identical across replica counts (checked here) and across
// ODONN_THREADS (checked by scripts/check.sh).
//
// Emits a JSON perf record after the table:
//   { "bench": "serve_load", "grid": ..., "requests": ..., "threads": ...,
//     "digest": "....", "speedup": ..., "closed": [...], "open": [...] }
//
//   ./serve_load [grid=32] [requests=192] [replicas=2] [max_batch=8]
//                [queue_depth=65536] [continuous=1] [seed=7] [format=both]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/config.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "donn/model.hpp"
#include "optics/encode.hpp"
#include "serve/cluster.hpp"
#include "serve/registry.hpp"
#include "tensor/stats.hpp"

using namespace odonn;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Latency windows of every replica, concatenated (seconds).
std::vector<double> merged_latencies(const serve::ServeCluster& cluster) {
  std::vector<double> merged;
  for (std::size_t i = 0; i < cluster.replica_count(); ++i) {
    const std::vector<double> window = cluster.replica(i).latency_window();
    merged.insert(merged.end(), window.begin(), window.end());
  }
  return merged;
}

struct Percentiles {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
};

Percentiles percentiles_ms(const std::vector<double>& latencies) {
  Percentiles p;
  if (latencies.empty()) return p;
  p.p50_ms = percentile_nearest_rank(latencies, 0.50) * 1e3;
  p.p99_ms = percentile_nearest_rank(latencies, 0.99) * 1e3;
  p.p999_ms = percentile_nearest_rank(latencies, 0.999) * 1e3;
  return p;
}

/// Latency-attribution percentiles (queue_wait / batch_wait / compute)
/// over the replicas' attribution windows concatenated — the same merge
/// rule as the end-to-end percentiles.
struct AttrPercentiles {
  Percentiles queue_wait;
  Percentiles batch_wait;
  Percentiles compute;
};

AttrPercentiles merged_attribution(const serve::ServeCluster& cluster) {
  serve::ServeStats::AttributionWindows merged;
  for (std::size_t i = 0; i < cluster.replica_count(); ++i) {
    const auto windows = cluster.replica(i).attribution_window();
    merged.queue_wait.insert(merged.queue_wait.end(),
                             windows.queue_wait.begin(),
                             windows.queue_wait.end());
    merged.batch_wait.insert(merged.batch_wait.end(),
                             windows.batch_wait.begin(),
                             windows.batch_wait.end());
    merged.compute.insert(merged.compute.end(), windows.compute.begin(),
                          windows.compute.end());
  }
  AttrPercentiles attr;
  attr.queue_wait = percentiles_ms(merged.queue_wait);
  attr.batch_wait = percentiles_ms(merged.batch_wait);
  attr.compute = percentiles_ms(merged.compute);
  return attr;
}

std::string json_percentiles(const Percentiles& p) {
  return "{\"p50_ms\": " + bench::json_number(p.p50_ms) +
         ", \"p99_ms\": " + bench::json_number(p.p99_ms) +
         ", \"p999_ms\": " + bench::json_number(p.p999_ms) + "}";
}

std::string json_attr(const AttrPercentiles& a) {
  return "{\"queue_wait\": " + json_percentiles(a.queue_wait) +
         ", \"batch_wait\": " + json_percentiles(a.batch_wait) +
         ", \"compute\": " + json_percentiles(a.compute) + "}";
}

struct ClosedRow {
  std::size_t replicas = 0;
  double saturation_rps = 0.0;
  double mean_batch = 0.0;
  Percentiles lat;
  AttrPercentiles attr;
  std::uint64_t digest = kFnv1aBasis;
};

struct OpenRow {
  double offered_qps = 0.0;
  double achieved_rps = 0.0;
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;
  Percentiles lat;
  AttrPercentiles attr;
};

std::string json_closed(const ClosedRow& r) {
  return "{\"replicas\": " + std::to_string(r.replicas) +
         ", \"saturation_rps\": " + bench::json_number(r.saturation_rps) +
         ", \"mean_batch\": " + bench::json_number(r.mean_batch) +
         ", \"p50_ms\": " + bench::json_number(r.lat.p50_ms) +
         ", \"p99_ms\": " + bench::json_number(r.lat.p99_ms) +
         ", \"p999_ms\": " + bench::json_number(r.lat.p999_ms) +
         ", \"attr\": " + json_attr(r.attr) +
         ", \"digest\": \"" + bench::hex64(r.digest) + "\"}";
}

std::string json_open(const OpenRow& r) {
  return "{\"offered_qps\": " + bench::json_number(r.offered_qps) +
         ", \"achieved_rps\": " + bench::json_number(r.achieved_rps) +
         ", \"submitted\": " + std::to_string(r.submitted) +
         ", \"completed\": " + std::to_string(r.completed) +
         ", \"rejected\": " + std::to_string(r.rejected) +
         ", \"p50_ms\": " + bench::json_number(r.lat.p50_ms) +
         ", \"p99_ms\": " + bench::json_number(r.lat.p99_ms) +
         ", \"p999_ms\": " + bench::json_number(r.lat.p999_ms) +
         ", \"attr\": " + json_attr(r.attr) + "}";
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  cfg.strict({"grid", "requests", "replicas", "max_batch", "queue_depth",
              "continuous", "seed", "format"});
  const auto format = bench::parse_format(cfg);
  const bool print_text = format != bench::OutputFormat::Json;
  const std::size_t grid = static_cast<std::size_t>(cfg.get_int("grid", 32));
  const std::size_t requests =
      static_cast<std::size_t>(cfg.get_int("requests", 192));
  const std::size_t max_replicas =
      static_cast<std::size_t>(cfg.get_int("replicas", 2));
  const std::size_t max_batch =
      static_cast<std::size_t>(cfg.get_int("max_batch", 8));
  const std::size_t queue_depth =
      static_cast<std::size_t>(cfg.get_int("queue_depth", 1 << 16));
  const bool continuous = cfg.get_bool("continuous", true);
  const std::uint64_t seed = static_cast<std::uint64_t>(cfg.get_int("seed", 7));
  ODONN_CHECK(requests >= 1 && max_replicas >= 1, "serve_load: empty sweep");

  donn::DonnConfig config = donn::DonnConfig::scaled(grid);
  config.init = donn::PhaseInit::Uniform;
  Rng rng(seed);
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->add("served", donn::DonnModel(config, rng));

  Rng data_rng(seed + 1);
  std::vector<optics::Field> inputs;
  inputs.reserve(requests);
  for (std::size_t k = 0; k < requests; ++k) {
    MatrixD image(grid, grid);
    for (auto& v : image) v = data_rng.uniform();
    inputs.push_back(optics::encode_image(image, config.grid));
  }

  const unsigned hw = std::thread::hardware_concurrency();
  if (print_text) {
    std::printf("=== serve_load ===\n");
    std::printf(
        "grid=%zu requests=%zu max_batch=%zu continuous=%d threads=%zu "
        "hardware_threads=%u seed=%llu\n\n",
        grid, requests, max_batch, continuous ? 1 : 0, thread_count(), hw,
        static_cast<unsigned long long>(seed));
  }

  const auto make_options = [&](std::size_t replicas) {
    serve::ClusterOptions options;
    options.replicas = replicas;
    options.continuous = continuous;
    options.engine.max_batch = max_batch;
    options.engine.max_queue = queue_depth;
    // Inline kernels: each replica's drain thread does its own compute, so
    // throughput scales with replica count, not with the inner pool split.
    options.engine.inner_threads = 1;
    return options;
  };

  // ---- phase 1: closed-loop saturation sweep over replica counts ---------
  if (print_text) {
    std::printf("closed loop (saturation)\n");
    std::printf("%8s | %14s | %8s | %8s | %8s | %10s\n", "replicas",
                "saturation_rps", "p50 ms", "p99 ms", "p999 ms", "mean batch");
  }
  std::vector<ClosedRow> closed;
  for (std::size_t replicas = 1; replicas <= max_replicas; ++replicas) {
    serve::ServeCluster cluster(registry, make_options(replicas));
    for (std::size_t k = 0; k < std::min<std::size_t>(16, requests); ++k) {
      cluster.submit("served", inputs[k]).get();  // warm-up
    }
    cluster.reset_stats();
    std::vector<std::future<serve::PredictResult>> futures;
    futures.reserve(requests);
    const Clock::time_point start = Clock::now();
    for (const auto& input : inputs) {
      futures.push_back(cluster.submit("served", input));
    }
    ClosedRow row;
    row.replicas = replicas;
    for (auto& future : futures) {
      const serve::PredictResult result = future.get();
      for (const double v : result.detector_sums) {
        row.digest = fnv1a_mix(row.digest, v);
      }
    }
    const double elapsed = seconds_since(start);
    row.saturation_rps = static_cast<double>(requests) / elapsed;
    row.mean_batch = cluster.stats().mean_batch_size;
    row.lat = percentiles_ms(merged_latencies(cluster));
    row.attr = merged_attribution(cluster);
    if (print_text) {
      std::printf("%8zu | %14.1f | %8.3f | %8.3f | %8.3f | %10.1f\n",
                  row.replicas, row.saturation_rps, row.lat.p50_ms,
                  row.lat.p99_ms, row.lat.p999_ms, row.mean_batch);
    }
    closed.push_back(row);
  }

  int failures = 0;
  bool digests_agree = true;
  for (const ClosedRow& row : closed) {
    digests_agree = digests_agree && row.digest == closed.front().digest;
  }
  failures += !bench::shape_check(
      digests_agree, "predictions bitwise identical across replica counts");

  // Replication speedup: needs real cores to mean anything. Same self-skip
  // rule as bench/table_parallel — the 1-core container logs the reason.
  double speedup = 0.0;
  if (closed.size() >= 2 && closed.front().saturation_rps > 0.0) {
    speedup = closed[1].saturation_rps / closed.front().saturation_rps;
  }
  if (closed.size() >= 2 && hw >= 4 && thread_count() >= 4) {
    char label[96];
    std::snprintf(label, sizeof(label),
                  "replicas=2 saturation >= 1.5x replicas=1 (%.2fx)", speedup);
    failures += !bench::shape_check(speedup >= 1.5, label);
  } else if (print_text) {
    std::printf(
        "[check] SKIP replicas=2 speedup: need replicas>=2 and >=4 hardware "
        "threads (replicas=%zu, hardware=%u, threads=%zu)\n",
        max_replicas, hw, thread_count());
  }

  // ---- phase 2: open-loop QPS sweep at the largest replica count ---------
  const double saturation = closed.back().saturation_rps;
  std::vector<OpenRow> open;
  if (saturation > 0.0) {
    if (print_text) {
      std::printf("\nopen loop (replicas=%zu)\n", max_replicas);
      std::printf("%12s | %12s | %9s | %9s | %8s | %8s | %8s\n", "offered_qps",
                  "achieved_rps", "completed", "rejected", "p50 ms", "p99 ms",
                  "p999 ms");
    }
    serve::ServeCluster cluster(registry, make_options(max_replicas));
    for (const double fraction : {0.5, 0.9, 1.3}) {
      const double offered = saturation * fraction;
      cluster.reset_stats();
      std::vector<std::future<serve::PredictResult>> futures;
      futures.reserve(requests);
      OpenRow row;
      row.offered_qps = offered;
      const auto interarrival = std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(1.0 / offered));
      const Clock::time_point start = Clock::now();
      for (std::size_t k = 0; k < requests; ++k) {
        // Open loop: submit at the scheduled arrival time whether or not
        // earlier requests completed; late arrivals fire immediately.
        std::this_thread::sleep_until(
            start + interarrival * static_cast<std::int64_t>(k));
        ++row.submitted;
        try {
          futures.push_back(cluster.submit("served", inputs[k]));
        } catch (const OverloadError&) {
          ++row.rejected;
        }
      }
      for (auto& future : futures) future.get();
      const double elapsed = seconds_since(start);
      row.completed = futures.size();
      row.achieved_rps = static_cast<double>(row.completed) / elapsed;
      row.lat = percentiles_ms(merged_latencies(cluster));
      row.attr = merged_attribution(cluster);
      if (print_text) {
        std::printf("%12.1f | %12.1f | %9zu | %9zu | %8.3f | %8.3f | %8.3f\n",
                    row.offered_qps, row.achieved_rps, row.completed,
                    row.rejected, row.lat.p50_ms, row.lat.p99_ms,
                    row.lat.p999_ms);
      }
      open.push_back(row);
    }
  }
  bool accounted = true;
  for (const OpenRow& row : open) {
    accounted = accounted && row.completed + row.rejected == row.submitted;
  }
  failures += !bench::shape_check(
      accounted, "open loop: every submitted request completed or rejected");

  if (print_text) std::printf("\n");
  if (format != bench::OutputFormat::Text) {
    std::string json =
        "{\"bench\": \"serve_load\", \"grid\": " + std::to_string(grid) +
        ", \"requests\": " + std::to_string(requests) +
        ", \"max_batch\": " + std::to_string(max_batch) +
        ", \"continuous\": " + (continuous ? "true" : "false") +
        ", \"threads\": " + std::to_string(thread_count()) +
        ", \"hardware_threads\": " + std::to_string(hw) +
        ", \"digest\": \"" + bench::hex64(closed.front().digest) + "\"" +
        ", \"speedup\": " + bench::json_number(speedup) + ",\n \"closed\": [\n";
    for (std::size_t i = 0; i < closed.size(); ++i) {
      json += "  " + json_closed(closed[i]) +
              (i + 1 < closed.size() ? ",\n" : "\n");
    }
    json += " ],\n \"open\": [\n";
    for (std::size_t i = 0; i < open.size(); ++i) {
      json += "  " + json_open(open[i]) + (i + 1 < open.size() ? ",\n" : "\n");
    }
    json += " ]}";
    std::printf("%s\n", json.c_str());
  }
  return failures;
}

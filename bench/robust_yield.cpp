// Fabrication-yield bench: Monte-Carlo robustness of the paper's recipes
// under device-to-device fabrication variability (src/fab).
//
// Trains Baseline and Ours-C at the bench scale, 2*pi-smooths both, then
// subjects the variants to R perturbed "fabricated devices" (correlated
// surface roughness + print quantization + lateral misalignment by default)
// deployed through the interpixel-crosstalk emulation. All variants see
// IDENTICAL perturbation draws (common random numbers: realization seeds
// depend only on (seed, r)), so the yield comparison is paired, not two
// noisy marginals.
//
// Shape checks assert the paper's §III-D2 story extended to distributions
// (matching the repo's established within-recipe deployment claims, e.g.
// integration_test's DeploymentGapNarrowsWithSmoothing): the smoothed
// recipe keeps a higher mean fabricated accuracy AND a higher yield
// (fraction of devices above the accuracy spec, evaluated at the midpoint
// between the two means) than the baseline unsmoothed deployment of the
// same masks — and a repeated evaluation is bitwise deterministic. The
// Baseline-recipe rows are printed for context; at CPU scales the
// flat-initialized baseline is already near-smooth (table1's "2pi alone
// barely helps" check), so cross-recipe deployed ordering is not asserted.
//
//   ./robust_yield [bench.scale=smoke|default|paper] [grid=] [samples=]
//                  [seed=] [realizations=32] [perturb=SPEC] [format=]
//
// Emits the established JSON perf-record convention (seconds included).
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "common/parallel.hpp"
#include "fab/montecarlo.hpp"
#include "fab/spec.hpp"
#include "pipeline/artifact_store.hpp"
#include "pipeline/parser.hpp"
#include "train/recipe.hpp"

using namespace odonn;
using Clock = std::chrono::steady_clock;

namespace {

/// Trains one recipe (model-producing stages only) and returns the raw and
/// 2*pi-smoothed models.
std::pair<donn::DonnModel, donn::DonnModel> train_variant(
    train::RecipeKind kind, const train::RecipeOptions& options,
    const data::Dataset& train_set, const data::Dataset& test_set) {
  pipeline::PipelineSpec spec = pipeline::spec_for_recipe(kind);
  std::erase_if(spec.stages, [](pipeline::StageKind stage) {
    return stage != pipeline::StageKind::Train &&
           stage != pipeline::StageKind::Sparsify &&
           stage != pipeline::StageKind::Smooth;
  });
  pipeline::ArtifactStore store;
  store.set_data(&train_set, &test_set);
  pipeline::build_pipeline(spec, options).run(store);
  return {donn::DonnModel(store.model(pipeline::artifacts::kMainModel)),
          donn::DonnModel(store.model(pipeline::artifacts::kSmoothedModel))};
}

std::string json_row(const fab::RobustnessReport& r, double yield_at_spec) {
  return "{\"model\": " + bench::json_quote(r.model_name) +
         ", \"clean\": " + bench::json_number(r.clean_accuracy) +
         ", \"mean\": " + bench::json_number(r.mean) +
         ", \"std\": " + bench::json_number(r.stddev) +
         ", \"min\": " + bench::json_number(r.min) +
         ", \"p50\": " + bench::json_number(r.p50) +
         ", \"p95\": " + bench::json_number(r.p95) +
         ", \"yield_at_spec\": " + bench::json_number(yield_at_spec) + "}";
}

}  // namespace

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  std::vector<std::string> keys = bench::bench_config_keys();
  keys.emplace_back("realizations");
  keys.emplace_back("perturb");
  cli.strict(keys);
  const bench::BenchConfig bc = bench::make_bench_config(cli);
  const auto format = bench::parse_format(cli);
  const bool print_text = format != bench::OutputFormat::Json;
  const std::size_t realizations =
      static_cast<std::size_t>(cli.get_int("realizations", 32));
  const std::string perturb_spec =
      cli.get_string("perturb", fab::kDefaultPerturbationSpec);
  const fab::PerturbationStack stack =
      fab::parse_perturbation_stack(perturb_spec);

  const train::RecipeOptions options = bench::recipe_options(bc, 5);
  const bench::PreparedData data =
      bench::prepare_dataset(data::SyntheticFamily::Digits, bc);

  if (print_text) {
    std::printf("=== robust_yield (%s scale) ===\n",
                bench::scale_name(bc.scale));
    std::printf(
        "grid=%zu train=%zu eval=%zu realizations=%zu threads=%zu "
        "seed=%llu\n",
        bc.grid, data.train.size(), data.test.size(), realizations,
        thread_count(), static_cast<unsigned long long>(bc.seed));
    std::printf("perturb=%s\n\n", perturb_spec.c_str());
  }

  const Clock::time_point t_train = Clock::now();
  auto [baseline, baseline_smoothed] = train_variant(
      train::RecipeKind::Baseline, options, data.train, data.test);
  auto [ours, ours_smoothed] = train_variant(train::RecipeKind::OursC,
                                             options, data.train, data.test);
  const double train_seconds =
      std::chrono::duration<double>(Clock::now() - t_train).count();

  fab::MonteCarloOptions mc;
  mc.realizations = realizations;
  mc.seed = bc.seed + 1000;
  mc.crosstalk = options.crosstalk;
  const fab::MonteCarloEvaluator evaluator(data.test, mc);

  const Clock::time_point t_eval = Clock::now();
  const auto reports = evaluator.compare(
      {{"baseline", &baseline},
       {"baseline-smoothed", &baseline_smoothed},
       {"ours-c", &ours},
       {"ours-c-smoothed", &ours_smoothed}},
      stack);
  const double eval_seconds =
      std::chrono::duration<double>(Clock::now() - t_eval).count();

  // The yield A/B: the baseline deployment of the Ours-C masks (no 2*pi
  // optimization — what a roughness-oblivious flow would fabricate) vs the
  // same masks after smoothing, under identical draws.
  const fab::RobustnessReport& base_report = reports[2];
  const fab::RobustnessReport& ours_report = reports[3];
  // The accuracy spec a fabricated device must clear: the midpoint between
  // the two mean fabricated accuracies — the same threshold for both
  // variants, chosen where yield curves actually separate.
  const double spec_threshold = 0.5 * (base_report.mean + ours_report.mean);

  if (print_text) {
    std::printf("%-20s | %6s | %6s | %6s | %6s | %6s | %6s\n", "model",
                "clean", "mean", "min", "p50", "p95", "yield");
    for (const auto& r : reports) {
      std::printf(
          "%-20s | %5.2f%% | %5.2f%% | %5.2f%% | %5.2f%% | %5.2f%% | %5.2f\n",
          r.model_name.c_str(), 100.0 * r.clean_accuracy, 100.0 * r.mean,
          100.0 * r.min, 100.0 * r.p50, 100.0 * r.p95,
          fab::yield_at(r, spec_threshold));
    }
    std::printf("\naccuracy spec (midpoint of means): %.2f%%\n",
                100.0 * spec_threshold);
    std::printf("train %.1fs, %zu realizations x %zu variants in %.1fs\n\n",
                train_seconds, realizations, reports.size(), eval_seconds);
  }

  // Paired determinism probe: re-evaluating the same variant must produce a
  // bitwise-identical report (scripts/check.sh additionally compares across
  // ODONN_THREADS process-to-process).
  const auto replay = evaluator.evaluate("ours-c", ours, stack);

  int failures = 0;
  failures += !bench::shape_check(
      ours_report.mean > base_report.mean,
      "smoothed recipe mean fabricated accuracy above the baseline "
      "(unsmoothed) deployment, common random numbers");
  failures += !bench::shape_check(
      fab::yield_at(ours_report, spec_threshold) >
          fab::yield_at(base_report, spec_threshold),
      "smoothed recipe yield above the baseline deployment at the midpoint "
      "accuracy spec");
  failures += !bench::shape_check(
      replay.digest() == reports[2].digest(),
      "repeated Monte-Carlo evaluation is bitwise deterministic");

  std::string json =
      "{\"bench\": \"robust_yield\", \"scale\": " +
      bench::json_quote(bench::scale_name(bc.scale)) +
      ", \"grid\": " + std::to_string(bc.grid) +
      ", \"eval_samples\": " + std::to_string(data.test.size()) +
      ", \"realizations\": " + std::to_string(realizations) +
      ", \"threads\": " + std::to_string(thread_count()) +
      ", \"perturb\": " + bench::json_quote(perturb_spec) +
      ", \"spec_threshold\": " + bench::json_number(spec_threshold) +
      ", \"train_seconds\": " + bench::json_number(train_seconds) +
      ", \"eval_seconds\": " + bench::json_number(eval_seconds) +
      ", \"rows\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    json += "  " + json_row(reports[i],
                            fab::yield_at(reports[i], spec_threshold)) +
            (i + 1 < reports.size() ? ",\n" : "\n");
  }
  json += "]}";
  if (format != bench::OutputFormat::Text) std::printf("%s\n", json.c_str());
  return failures;
}

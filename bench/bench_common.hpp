// Shared scaffolding for the experiment benches: scale selection
// (smoke / default / paper via ODONN_BENCH_SCALE or scale=...), dataset
// preparation, recipe-option construction and paper-vs-measured printing.
//
// Bench output convention: every row prints the paper's reported value next
// to the measured one. Absolute numbers are NOT expected to match (CPU-sized
// grids, synthetic data, reduced epochs — see DESIGN.md §2); the SHAPE
// checks printed at the end of each bench assert the qualitative claims.
// Every table bench additionally emits a machine-readable JSON perf record
// (same convention as serve_throughput) so later PRs can diff a trajectory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "data/dataset.hpp"
#include "data/synthetic.hpp"
#include "train/recipe.hpp"

namespace odonn::bench {

enum class Scale { Smoke, Default, Paper };

struct BenchConfig {
  Scale scale = Scale::Default;
  std::size_t grid = 64;
  std::size_t samples = 2400;       ///< total (split 80/20 train/test)
  std::size_t epochs_dense = 4;
  std::size_t epochs_sparse = 2;
  std::size_t epochs_finetune = 1;
  std::size_t batch = 100;
  std::size_t two_pi_iterations = 2500;
  /// Diffractive layers in the stack (defaults to the model default, 3;
  /// layers=5 selects the five-layer recipe axis) and the detector readout
  /// strategy ({1,5} x {standard, differential} are the scenario cells).
  std::size_t layers = donn::DonnConfig{}.num_layers;
  donn::DetectorMode detector = donn::DetectorMode::Standard;
  std::uint64_t seed = 7;
  /// Concurrent recipes per table/sweep (train::TableRunOptions::jobs).
  /// Rows are bitwise independent of this — it only moves wall-clock.
  std::size_t jobs = 1;

  /// Scales a paper block size (given on the 200-grid) to this grid.
  std::size_t scaled_block(std::size_t paper_block) const;
};

/// Reads bench.scale= (or ODONN_BENCH_SCALE), seed=, grid=, samples=,
/// layers=, detector=, jobs=.
BenchConfig make_bench_config(const Config& cfg);

/// from_args + strict key validation (bench_config_keys) + the above.
BenchConfig make_bench_config(int argc, char** argv);

/// Keys every bench accepts (for Config::strict; benches with extra keys
/// append their own before validating).
std::vector<std::string> bench_config_keys();

/// bench_config_keys + jobs= — for the benches that actually route work
/// through the parallel executor (tables, fig6, table_parallel). Benches
/// that run recipes directly keep REJECTING jobs= rather than silently
/// ignoring it (the Config::strict contract).
std::vector<std::string> parallel_bench_config_keys();

const char* scale_name(Scale scale);

/// Recipe options matching the paper's §IV-A2 setup at this bench scale.
train::RecipeOptions recipe_options(const BenchConfig& cfg,
                                    std::size_t paper_block);

/// Synthesizes + resizes + splits one dataset family.
struct PreparedData {
  data::Dataset train;
  data::Dataset test;
};
PreparedData prepare_dataset(data::SyntheticFamily family,
                             const BenchConfig& cfg);

/// One row of a paper table (dash-able paper_after for Ours-A).
struct PaperRow {
  const char* model;
  double acc;
  double r_before;
  double r_after;  ///< < 0 encodes the paper's "-" cell
};

/// Everything that distinguishes one paper table from another: the four
/// near-identical table{2..5} drivers are this struct plus a main().
struct TableSpec {
  const char* id;     ///< JSON record name, e.g. "table2_mnist"
  const char* title;  ///< human heading, e.g. "Table II: MNIST ..."
  data::SyntheticFamily family;
  std::size_t paper_block;  ///< block size on the paper's 200-grid
  std::vector<PaperRow> paper;
};

/// The paper-table registry (Tables II-V keyed by dataset family).
const TableSpec& table_spec(data::SyntheticFamily family);
const std::vector<TableSpec>& all_table_specs();

enum class OutputFormat { Text, Json, Both };

/// Parses format=text|json|both (default both).
OutputFormat parse_format(const Config& cfg);

/// Runs the five recipes of one paper table (via the pipeline-backed
/// train::run_recipe) and prints the paper-vs-measured table, the shape
/// checks and/or the JSON perf record. Returns the number of failed shape
/// checks.
int run_table_bench(const TableSpec& spec, const BenchConfig& cfg,
                    OutputFormat format = OutputFormat::Both);

/// argv wrapper for the thin bench mains: strict-parses the config
/// (bench_config_keys) and runs at the requested scale/format.
int run_table_bench(const TableSpec& spec, int argc, char** argv);

/// Prints "[check] PASS/FAIL description"; returns pass.
bool shape_check(bool pass, const std::string& description);

/// Minimal JSON emit helpers for machine-readable bench output.
/// Locale-independent; non-finite numbers become null.
std::string json_quote(const std::string& text);
std::string json_number(double value);

/// FNV-1a over the IEEE-754 bits of every pixel of every layer (the shared
/// odonn::fnv1a_mix fold): two phase stacks are bitwise identical iff the
/// digests match. What the cross-ODONN_THREADS / cross-jobs= table
/// comparisons in scripts/check.sh diff.
std::uint64_t phases_digest(const std::vector<MatrixD>& phases);

/// 16-hex-digit rendering for JSON digest fields.
std::string hex64(std::uint64_t value);

}  // namespace odonn::bench

// Reproduces Table I: the methodology feature matrix ([5],[16] vs [6],[8]
// vs Ours), then goes beyond the paper's qualitative table by MEASURING the
// effect of each feature in isolation on the same task: roughness awareness,
// sparsity, and 2*pi periodic optimization.
#include <cstdio>

#include "bench_common.hpp"
#include "smooth2pi/two_pi_opt.hpp"

using namespace odonn;

int main(int argc, char** argv) {
  auto cfg = bench::make_bench_config(argc, argv);
  if (cfg.scale == bench::Scale::Default) {
    cfg.samples = std::min<std::size_t>(cfg.samples, 1600);
  }
  std::printf("=== Table I: methodology comparison ===\n\n");
  std::printf("%-12s %-16s %-10s %-24s\n", "method", "roughness-aware",
              "sparsity", "2pi periodic optimization");
  std::printf("%-12s %-16s %-10s %-24s\n", "[5], [16]", "no", "no", "no");
  std::printf("%-12s %-16s %-10s %-24s\n", "[6], [8]", "no", "no",
              "yes (deploy negatives only)");
  std::printf("%-12s %-16s %-10s %-24s\n\n", "Ours", "yes", "yes",
              "yes (roughness reduction)");

  std::printf("measured effect of each feature (MNIST stand-in, scale=%s):\n",
              bench::scale_name(cfg.scale));
  const auto opt = bench::recipe_options(cfg, /*paper_block=*/25);
  const auto dataset = bench::prepare_dataset(data::SyntheticFamily::Digits, cfg);

  const auto baseline = train::run_recipe(train::RecipeKind::Baseline, opt,
                                          dataset.train, dataset.test);
  const auto ours_a = train::run_recipe(train::RecipeKind::OursA, opt,
                                        dataset.train, dataset.test);
  const auto ours_b = train::run_recipe(train::RecipeKind::OursB, opt,
                                        dataset.train, dataset.test);
  const auto ours_c = train::run_recipe(train::RecipeKind::OursC, opt,
                                        dataset.train, dataset.test);

  std::printf("%-34s %10s %12s %12s\n", "configuration", "acc (%)",
              "R before", "R after 2pi");
  const struct {
    const char* label;
    const train::RecipeResult* row;
  } lines[] = {{"none (roughness-oblivious [5])", &baseline},
               {"+ roughness awareness", &ours_a},
               {"+ sparsity (SLR blocks)", &ours_b},
               {"+ both (Ours-C)", &ours_c}};
  for (const auto& line : lines) {
    std::printf("%-34s %10.2f %12.2f %12.2f\n", line.label,
                100.0 * line.row->accuracy, line.row->roughness_before,
                line.row->roughness_after);
  }

  int failures = 0;
  failures += !bench::shape_check(
      baseline.roughness_before - baseline.roughness_after <
          0.1 * baseline.roughness_before,
      "2pi alone barely helps a roughness-oblivious model (paper: <2%)");
  failures += !bench::shape_check(
      ours_c.roughness_after < baseline.roughness_after,
      "the full method beats roughness-oblivious training");
  std::printf("\n%d shape-check failure(s)\n", failures);
  return 0;
}

// Parallel-table bench: the wall-clock effect of running a paper table's
// recipes concurrently (train::TableRunOptions::jobs over
// pipeline::ParallelTableRunner) and PROOF that parallel execution changes
// nothing but the clock.
//
// One table (MNIST stand-in) runs twice at the same scale/seed:
//   sequential  jobs=1  — the classic loop (the bitwise reference)
//   parallel    jobs=J  — J recipes in flight, inner thread budgets split
// Shape checks:
//   * every row bitwise identical between the two runs — metrics AND the
//     FNV digests of trained + 2*pi-smoothed phase bits (always enforced);
//   * parallel wall-clock >= 1.5x faster at >= 4 threads (skipped, like
//     the smoke accuracy checks, when the host lacks 4 hardware threads —
//     thread parallelism cannot beat the clock on a 1-core runner);
//   * observability leg: the same parallel table with metric detail AND
//     tracing fully on stays bitwise identical (always enforced) and
//     costs <= 2% wall-clock (best of 3 paired runs, to ride out timing
//     noise on small scales).
//
//   ODONN_THREADS=4 ./table_parallel bench.scale=smoke [jobs=4] [grid=]
//                   [samples=] [seed=] [format=]
//
// Emits the established JSON perf-record convention.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/parallel.hpp"
#include "obs/obs.hpp"
#include "train/recipe.hpp"

using namespace odonn;
using Clock = std::chrono::steady_clock;

namespace {

std::vector<train::RecipeResult> timed_table(
    const train::RecipeOptions& opt, const bench::PreparedData& dataset,
    std::size_t jobs, double& seconds) {
  train::TableRunOptions table;
  table.jobs = jobs;
  const Clock::time_point t0 = Clock::now();
  auto rows = train::run_table(opt, dataset.train, dataset.test, table);
  seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  return rows;
}

bool rows_bitwise_equal(const std::vector<train::RecipeResult>& a,
                        const std::vector<train::RecipeResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].name != b[i].name || a[i].accuracy != b[i].accuracy ||
        a[i].roughness_before != b[i].roughness_before ||
        a[i].roughness_after != b[i].roughness_after ||
        a[i].deployed_accuracy != b[i].deployed_accuracy ||
        a[i].deployed_accuracy_after_2pi != b[i].deployed_accuracy_after_2pi ||
        a[i].sparsity != b[i].sparsity ||
        bench::phases_digest(a[i].trained_phases) !=
            bench::phases_digest(b[i].trained_phases) ||
        bench::phases_digest(a[i].smoothed_phases) !=
            bench::phases_digest(b[i].smoothed_phases)) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  cli.strict(bench::parallel_bench_config_keys());
  const auto cfg = bench::make_bench_config(cli);
  const auto format = bench::parse_format(cli);
  const bool text = format != bench::OutputFormat::Json;
  // jobs= caps concurrency for the parallel leg; defaults to 4 when not
  // given (enough to show the overlap without a huge pool). An explicit
  // jobs=1 is honored — a degenerate but honest seq-vs-seq record.
  const std::size_t jobs = cli.has("jobs") ? cfg.jobs : 4;

  const bench::TableSpec& spec =
      bench::table_spec(data::SyntheticFamily::Digits);
  const auto opt = bench::recipe_options(cfg, spec.paper_block);
  const auto dataset = bench::prepare_dataset(spec.family, cfg);

  if (text) {
    std::printf("=== table_parallel: %s, sequential vs jobs=%zu ===\n",
                spec.id, jobs);
    std::printf("scale=%s grid=%zu samples=%zu seed=%llu threads=%zu\n\n",
                bench::scale_name(cfg.scale), cfg.grid, cfg.samples,
                static_cast<unsigned long long>(cfg.seed), thread_count());
  }

  // Warm up the one-time process state (thread-pool spawn, FFT-plan and
  // encode caches) before either timed leg, so the sequential leg — which
  // runs first — is not charged for it and the speedup stays unbiased.
  (void)train::run_recipe(train::RecipeKind::Baseline, opt, dataset.train,
                          dataset.test);

  double seq_seconds = 0.0;
  const auto seq_rows = timed_table(opt, dataset, 1, seq_seconds);
  double par_seconds = 0.0;
  const auto par_rows = timed_table(opt, dataset, jobs, par_seconds);
  const double speedup = par_seconds > 0.0 ? seq_seconds / par_seconds : 0.0;
  const bool identical = rows_bitwise_equal(seq_rows, par_rows);

  if (text) {
    std::printf("%-10s | %10s | %10s\n", "model", "seq s", "par s");
    for (std::size_t i = 0; i < seq_rows.size(); ++i) {
      std::printf("%-10s | %10.3f | %10.3f\n", seq_rows[i].name.c_str(),
                  seq_rows[i].seconds, par_rows[i].seconds);
    }
    std::printf("\nwall-clock: sequential %.3fs, jobs=%zu %.3fs "
                "(speedup %.2fx)\n\n", seq_seconds, jobs, par_seconds,
                speedup);
  }

  // Observability-overhead leg: the same parallel table with metric
  // detail and tracing fully enabled. Two guarantees under test here:
  // the rows stay bitwise identical (observation never feeds back into
  // the computation) and the wall-clock cost stays <= 2%. Each attempt
  // pairs an instrumented run with a fresh plain baseline and the check
  // keeps the best of up to 3 attempts — single smoke-scale timings are
  // too noisy for a 2% bound.
  double obs_seconds = 0.0;
  double obs_base_seconds = 0.0;
  double obs_overhead = 0.0;
  bool obs_identical = true;
  for (int attempt = 0; attempt < 3; ++attempt) {
    double base = 0.0;
    (void)timed_table(opt, dataset, jobs, base);
    obs::set_detail(true);
    obs::set_tracing(true);
    obs::clear_trace();
    double traced = 0.0;
    const auto traced_rows = timed_table(opt, dataset, jobs, traced);
    obs::set_detail(false);
    obs::set_tracing(false);
    obs_identical = obs_identical && rows_bitwise_equal(seq_rows, traced_rows);
    const double overhead = base > 0.0 ? traced / base - 1.0 : 0.0;
    if (attempt == 0 || overhead < obs_overhead) {
      obs_overhead = overhead;
      obs_seconds = traced;
      obs_base_seconds = base;
    }
    if (obs_overhead <= 0.02) break;
  }

  if (text) {
    std::printf("observability leg: plain %.3fs, instrumented %.3fs "
                "(overhead %+.2f%%)\n\n",
                obs_base_seconds, obs_seconds, 100.0 * obs_overhead);
  }

  // Shape checks (printed in text mode only, so format=json stays one
  // clean JSON document like the odonn_cli benches).
  int failures = 0;
  const auto check = [text](bool pass, const char* description) {
    if (text) return !bench::shape_check(pass, description) ? 1 : 0;
    return pass ? 0 : 1;
  };
  failures += check(identical,
                    "parallel rows bitwise identical to sequential "
                    "(metrics + phase digests)");
  failures += check(obs_identical,
                    "rows bitwise identical with metric detail + tracing on");
  failures += check(obs_overhead <= 0.02,
                    "observability overhead <= 2% on the parallel table "
                    "(best of 3 paired runs)");
  const unsigned hw = std::thread::hardware_concurrency();
  if (jobs >= 2 && hw >= 4 && thread_count() >= 4) {
    failures += check(
        speedup >= 1.5,
        "parallel table >= 1.5x faster than sequential at >= 4 threads");
  } else if (text) {
    std::printf("[check] SKIP  speedup check (needs jobs >= 2 and >= 4 "
                "hardware threads; have jobs=%zu, %u hw, pool %zu)\n",
                jobs, hw, thread_count());
  }
  if (text) std::printf("%d shape-check failure(s)\n", failures);

  if (format != bench::OutputFormat::Text) {
    std::string json =
        "{\"bench\": \"table_parallel\", \"scale\": " +
        bench::json_quote(bench::scale_name(cfg.scale)) +
        ", \"grid\": " + std::to_string(cfg.grid) +
        ", \"samples\": " + std::to_string(cfg.samples) +
        ", \"jobs\": " + std::to_string(jobs) +
        ", \"threads\": " + std::to_string(thread_count()) +
        ", \"seq_seconds\": " + bench::json_number(seq_seconds) +
        ", \"par_seconds\": " + bench::json_number(par_seconds) +
        ", \"speedup\": " + bench::json_number(speedup) +
        ", \"obs_seconds\": " + bench::json_number(obs_seconds) +
        ", \"obs_base_seconds\": " + bench::json_number(obs_base_seconds) +
        ", \"obs_overhead\": " + bench::json_number(obs_overhead) +
        ", \"rows_identical\": " + (identical ? "true" : "false") +
        ", \"obs_rows_identical\": " + (obs_identical ? "true" : "false") +
        ", \"failures\": " + std::to_string(failures) + ", \"rows\": [\n";
    for (std::size_t i = 0; i < par_rows.size(); ++i) {
      json += "  {\"model\": " + bench::json_quote(par_rows[i].name) +
              ", \"train_digest\": " +
              bench::json_quote(
                  bench::hex64(bench::phases_digest(par_rows[i].trained_phases))) +
              ", \"smoothed_digest\": " +
              bench::json_quote(
                  bench::hex64(bench::phases_digest(par_rows[i].smoothed_phases))) +
              "}" + (i + 1 < par_rows.size() ? ",\n" : "\n");
    }
    json += "]}";
    std::printf("%s\n", json.c_str());
  }
  return failures > 0 ? 1 : 0;
}

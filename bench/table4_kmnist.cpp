// Reproduces Table IV (KMNIST): paper setup 100 epochs, block size 20.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace odonn::bench;
  const std::vector<PaperRow> paper = {
      {"[5,6,8]", 86.92, 460.61, 445.57}, {"Ours-A", 85.26, 462.70, -1.0},
      {"Ours-B", 86.83, 473.08, 432.26},  {"Ours-C", 85.01, 396.84, 331.22},
      {"Ours-D", 83.19, 327.48, 288.42}};
  run_table_bench("Table IV: KMNIST (kana stand-in)",
                  odonn::data::SyntheticFamily::Kana,
                  /*paper_block=*/20, paper, argc, argv);
  return 0;
}

// Serving throughput bench: samples/sec and p50/p99 latency of the batched
// inference path (direct BatchedForward calls and the full InferenceEngine
// pipeline) versus the naive one-sample-at-a-time predict() loop, across
// batch sizes, on the scaled(32) config by default.
//
// Emits a JSON document (stdout, after the human-readable table) so later
// PRs can track the perf trajectory:
//   { "bench": "serve_throughput", "grid": ..., "threads": ...,
//     "naive": {...}, "rows": [ {"mode": ..., "batch": ..., ...}, ... ] }
//
//   ./serve_throughput [grid=32] [samples=512] [seed=7] [bench.scale=...]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "donn/model.hpp"
#include "optics/encode.hpp"
#include "serve/batched_forward.hpp"
#include "serve/engine.hpp"
#include "serve/registry.hpp"

using namespace odonn;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Nearest-rank percentile of per-sample latencies, in milliseconds.
double percentile_ms(std::vector<double> latencies, double q) {
  if (latencies.empty()) return 0.0;
  std::sort(latencies.begin(), latencies.end());
  std::size_t rank = static_cast<std::size_t>(
      q * static_cast<double>(latencies.size()) + 0.999999);
  rank = std::max<std::size_t>(1, std::min(rank, latencies.size()));
  return latencies[rank - 1] * 1e3;
}

struct Measurement {
  std::string mode;
  std::size_t batch = 0;
  double samples_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

void print_row(const Measurement& m) {
  std::printf("%-14s | %7zu | %12.1f | %8.3f | %8.3f\n", m.mode.c_str(),
              m.batch, m.samples_per_sec, m.p50_ms, m.p99_ms);
}

std::string json_row(const Measurement& m) {
  return "{\"mode\": " + bench::json_quote(m.mode) +
         ", \"batch\": " + std::to_string(m.batch) +
         ", \"samples_per_sec\": " + bench::json_number(m.samples_per_sec) +
         ", \"p50_ms\": " + bench::json_number(m.p50_ms) +
         ", \"p99_ms\": " + bench::json_number(m.p99_ms) + "}";
}

}  // namespace

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  const bench::BenchConfig bc = bench::make_bench_config(argc, argv);
  // This bench defaults to the acceptance config — scaled(32) — rather than
  // the table benches' scale-dependent grid; explicit grid=/samples= win.
  const std::size_t grid = cli.has("grid") ? bc.grid : 32;
  const std::size_t samples =
      cli.has("samples") ? bc.samples : std::size_t{512};

  donn::DonnConfig config = donn::DonnConfig::scaled(grid);
  config.init = donn::PhaseInit::Uniform;
  Rng rng(bc.seed);
  donn::DonnModel trained(config, rng);

  Rng data_rng(bc.seed + 1);
  std::vector<optics::Field> inputs;
  inputs.reserve(samples);
  for (std::size_t k = 0; k < samples; ++k) {
    MatrixD image(grid, grid);
    for (auto& v : image) v = data_rng.uniform();
    inputs.push_back(optics::encode_image(image, config.grid));
  }

  std::printf("=== serve_throughput ===\n");
  std::printf("grid=%zu layers=%zu samples=%zu threads=%zu seed=%llu\n\n",
              grid, trained.num_layers(), samples, thread_count(),
              static_cast<unsigned long long>(bc.seed));
  std::printf("%-14s | %7s | %12s | %8s | %8s\n", "mode", "batch",
              "samples/sec", "p50 ms", "p99 ms");

  // ---- naive one-sample loop (the pre-serving deployment story) ----------
  for (const auto& input : inputs) trained.predict(input);  // warm-up
  Measurement naive;
  naive.mode = "naive_loop";
  naive.batch = 1;
  {
    std::vector<double> latencies(samples);
    const Clock::time_point start = Clock::now();
    for (std::size_t k = 0; k < samples; ++k) {
      const Clock::time_point t0 = Clock::now();
      trained.predict(inputs[k]);
      latencies[k] = seconds_since(t0);
    }
    const double elapsed = seconds_since(start);
    naive.samples_per_sec = static_cast<double>(samples) / elapsed;
    naive.p50_ms = percentile_ms(latencies, 0.50);
    naive.p99_ms = percentile_ms(latencies, 0.99);
  }
  print_row(naive);

  // ---- plan-reusing batched path, across batch sizes ---------------------
  auto published = std::make_shared<const donn::DonnModel>(std::move(trained));
  const serve::BatchedForward forward(published);
  std::vector<Measurement> rows;
  double best_batched = 0.0;
  for (const std::size_t batch : {std::size_t{1}, std::size_t{8},
                                  std::size_t{32}, std::size_t{128}}) {
    std::vector<optics::Field> chunk(
        inputs.begin(),
        inputs.begin() + static_cast<std::ptrdiff_t>(
                             std::min(batch, inputs.size())));
    forward.run(chunk);  // warm-up
    Measurement m;
    m.mode = "batched";
    m.batch = batch;
    std::vector<double> latencies;
    const Clock::time_point start = Clock::now();
    std::size_t done = 0;
    while (done < samples) {
      const std::size_t take = std::min(batch, samples - done);
      std::vector<optics::Field> window(
          inputs.begin() + static_cast<std::ptrdiff_t>(done),
          inputs.begin() + static_cast<std::ptrdiff_t>(done + take));
      const Clock::time_point t0 = Clock::now();
      forward.run(window);
      // Every sample in the window observes the whole batch's latency.
      const double batch_latency = seconds_since(t0);
      latencies.insert(latencies.end(), take, batch_latency);
      done += take;
    }
    const double elapsed = seconds_since(start);
    m.samples_per_sec = static_cast<double>(samples) / elapsed;
    m.p50_ms = percentile_ms(latencies, 0.50);
    m.p99_ms = percentile_ms(latencies, 0.99);
    best_batched = std::max(best_batched, m.samples_per_sec);
    print_row(m);
    rows.push_back(std::move(m));
  }

  // ---- full engine pipeline (queue + batch window + futures) -------------
  {
    auto registry = std::make_shared<serve::ModelRegistry>();
    registry->add("served", donn::DonnModel(*published));
    serve::EngineOptions options;
    options.max_batch = 64;
    serve::InferenceEngine engine(registry, options);
    for (std::size_t k = 0; k < std::min<std::size_t>(32, samples); ++k) {
      engine.submit("served", inputs[k]).get();  // warm-up
    }
    engine.reset_stats();  // keep cold-start latencies out of the record
    std::vector<std::future<serve::PredictResult>> futures;
    futures.reserve(samples);
    const Clock::time_point start = Clock::now();
    for (std::size_t k = 0; k < samples; ++k) {
      futures.push_back(engine.submit("served", inputs[k]));
    }
    for (auto& future : futures) future.get();
    const double elapsed = seconds_since(start);
    const auto snap = engine.stats();
    Measurement m;
    m.mode = "engine";
    m.batch = options.max_batch;
    m.samples_per_sec = static_cast<double>(samples) / elapsed;
    m.p50_ms = snap.p50_ms;
    m.p99_ms = snap.p99_ms;
    print_row(m);
    std::printf("engine: %llu batches, mean batch %.1f\n",
                static_cast<unsigned long long>(snap.batches),
                snap.mean_batch_size);
    rows.push_back(std::move(m));
  }

  const double speedup =
      naive.samples_per_sec > 0.0 ? best_batched / naive.samples_per_sec : 0.0;
  std::printf("\nbatched/naive speedup: %.2fx\n", speedup);
  int failures = 0;
  failures += !bench::shape_check(speedup >= 2.0,
                                  "batched throughput >= 2x naive loop");

  std::printf("\n");
  std::printf("{\"bench\": \"serve_throughput\", \"grid\": %zu, "
              "\"layers\": %zu, \"samples\": %zu, \"threads\": %zu, "
              "\"speedup\": %s,\n \"naive\": %s,\n \"rows\": [\n",
              grid, published->num_layers(), samples, thread_count(),
              bench::json_number(speedup).c_str(), json_row(naive).c_str());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::printf("  %s%s\n", json_row(rows[i]).c_str(),
                i + 1 < rows.size() ? "," : "");
  }
  std::printf("]}\n");
  return failures;
}

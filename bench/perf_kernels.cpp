// google-benchmark microbenchmarks for the substrate kernels: FFT plans,
// free-space propagation, DONN forward/backward, roughness gradients and
// the Gumbel-Softmax 2pi step. Not a paper experiment — this is the
// engineering view of where the training time goes.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "donn/model.hpp"
#include "fft/fft2d.hpp"
#include "optics/encode.hpp"
#include "optics/propagate.hpp"
#include "roughness/roughness.hpp"
#include "smooth2pi/two_pi_opt.hpp"

using namespace odonn;

namespace {

void BM_Fft1d(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto plan = fft::plan_for(n);
  Rng rng(1);
  std::vector<fft::Cplx> data(n);
  for (auto& v : data) v = {rng.uniform(), rng.uniform()};
  for (auto _ : state) {
    plan->execute(data.data(), fft::Direction::Forward);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
// 200 exercises the Bluestein path used by the paper's grid.
BENCHMARK(BM_Fft1d)->Arg(64)->Arg(128)->Arg(200)->Arg(256)->Arg(512);

void BM_Fft2d(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  std::vector<fft::Cplx> data(n * n);
  for (auto& v : data) v = {rng.uniform(), rng.uniform()};
  for (auto _ : state) {
    fft::transform_2d(data.data(), n, n, fft::Direction::Forward);
    benchmark::DoNotOptimize(data.data());
  }
}
BENCHMARK(BM_Fft2d)->Arg(64)->Arg(128)->Arg(200)->Arg(256);

void BM_Propagation(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const donn::DonnConfig cfg = donn::DonnConfig::scaled(n);
  optics::Propagator prop(cfg.grid, {{cfg.kernel, cfg.wavelength,
                                      cfg.distance}, false});
  Rng rng(3);
  MatrixD image(n, n);
  for (auto& v : image) v = rng.uniform();
  optics::Field field = optics::encode_image(image, cfg.grid);
  for (auto _ : state) {
    field = prop.forward(field);
    benchmark::DoNotOptimize(field.values().data());
  }
}
BENCHMARK(BM_Propagation)->Arg(64)->Arg(128)->Arg(200);

void BM_DonnForward(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  donn::DonnModel model(donn::DonnConfig::scaled(n), rng);
  MatrixD image(n, n);
  for (auto& v : image) v = rng.uniform();
  const optics::Field input = optics::encode_image(image, model.config().grid);
  for (auto _ : state) {
    auto sums = model.detector_sums(input);
    benchmark::DoNotOptimize(sums.data());
  }
}
BENCHMARK(BM_DonnForward)->Arg(64)->Arg(128)->Arg(200);

void BM_DonnForwardBackward(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  donn::DonnModel model(donn::DonnConfig::scaled(n), rng);
  MatrixD image(n, n);
  for (auto& v : image) v = rng.uniform();
  const optics::Field input = optics::encode_image(image, model.config().grid);
  auto grads = model.zero_gradients();
  for (auto _ : state) {
    model.forward_backward(input, 3, grads, {});
    benchmark::DoNotOptimize(grads.data());
  }
}
BENCHMARK(BM_DonnForwardBackward)->Arg(64)->Arg(128)->Arg(200);

void BM_RoughnessGrad(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  MatrixD w(n, n);
  for (auto& v : w) v = rng.uniform(0.0, 6.28);
  MatrixD grad(n, n, 0.0);
  for (auto _ : state) {
    grad.fill(0.0);
    const double r = roughness::roughness_with_grad(w, grad, 1.0);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RoughnessGrad)->Arg(64)->Arg(200);

void BM_TwoPiGumbelStep(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  MatrixD w(n, n);
  for (auto& v : w) v = rng.uniform(0.0, 6.28);
  smooth2pi::TwoPiOptions opt;
  opt.iterations = 1;  // a single optimizer step per bench iteration
  for (auto _ : state) {
    const auto result = smooth2pi::optimize_2pi(w, opt);
    benchmark::DoNotOptimize(result.roughness_after);
  }
}
BENCHMARK(BM_TwoPiGumbelStep)->Arg(64)->Arg(200);

}  // namespace

BENCHMARK_MAIN();

// Reproduces Table III (FMNIST): paper setup 150 epochs, block size 20.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace odonn::bench;
  const std::vector<PaperRow> paper = {
      {"[5,6,8]", 87.98, 464.78, 461.98}, {"Ours-A", 86.99, 421.49, -1.0},
      {"Ours-B", 87.88, 488.11, 438.53},  {"Ours-C", 86.79, 350.67, 305.86},
      {"Ours-D", 85.76, 450.73, 229.70}};
  run_table_bench("Table III: FMNIST (fashion stand-in)",
                  odonn::data::SyntheticFamily::Fashion,
                  /*paper_block=*/20, paper, argc, argv);
  return 0;
}

// Reproduces Fig. 6: hyperparameter exploration on the MNIST stand-in.
//   (a) Pareto frontier of accuracy vs roughness across recipe settings
//   (b) sparsification-ratio sweep vs accuracy / roughness
//   (c) roughness-regularization (p) sweep     — paper: inflection at 0.1
//   (d) intra-block regularization (q) sweep   — paper: inflection at log q=1
// Series are printed and also written to bench_out/fig6/*.csv.
// jobs=N trains N sweep points concurrently (train::run_recipes over the
// parallel executor); series are bitwise independent of jobs=.
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <functional>

#include "bench_common.hpp"
#include "io/csv.hpp"

using namespace odonn;

namespace {

struct SweepPoint {
  double x;
  double accuracy;
  double roughness;
};

/// One sweep: `values` variants of `kind`, each with `set(options, value)`
/// applied, run through the parallel executor (jobs= concurrent) and
/// zipped back into SweepPoints keyed by the swept value.
std::vector<SweepPoint> run_sweep(
    train::RecipeKind kind, const train::RecipeOptions& base,
    const std::vector<double>& values,
    const std::function<void(train::RecipeOptions&, double)>& set,
    const data::Dataset& train_set, const data::Dataset& test_set,
    const train::TableRunOptions& table) {
  std::vector<train::RecipeRequest> requests;
  requests.reserve(values.size());
  for (const double value : values) {
    train::RecipeRequest request{kind, base, ""};
    set(request.options, value);
    requests.push_back(std::move(request));
  }
  const auto rows = train::run_recipes(requests, train_set, test_set, table);
  std::vector<SweepPoint> series;
  series.reserve(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    series.push_back({values[i], rows[i].accuracy, rows[i].roughness_before});
  }
  return series;
}

void print_series(const char* title, const char* xlabel,
                  const std::vector<SweepPoint>& points,
                  const std::string& csv_path) {
  std::printf("%s\n%12s %12s %12s\n", title, xlabel, "accuracy", "roughness");
  io::CsvWriter csv(csv_path, {xlabel, "accuracy", "roughness"});
  for (const auto& p : points) {
    std::printf("%12.4f %12.4f %12.2f\n", p.x, p.accuracy, p.roughness);
    csv.row(std::vector<double>{p.x, p.accuracy, p.roughness});
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  cli.strict(bench::parallel_bench_config_keys());
  auto cfg = bench::make_bench_config(cli);
  // Sweeps multiply training runs; shrink each run relative to the tables.
  if (cfg.scale == bench::Scale::Default) {
    cfg.samples = std::min<std::size_t>(cfg.samples, 1200);
    cfg.epochs_dense = std::min<std::size_t>(cfg.epochs_dense, 2);
    cfg.epochs_sparse = 1;
  }
  std::printf("=== Fig. 6: hyperparameter exploration (MNIST stand-in, "
              "scale=%s) ===\n\n", bench::scale_name(cfg.scale));
  std::filesystem::create_directories("bench_out/fig6");

  const auto dataset = bench::prepare_dataset(data::SyntheticFamily::Digits, cfg);
  const auto base_opt = bench::recipe_options(cfg, /*paper_block=*/25);

  int failures = 0;

  // Sweep points are independent training runs: jobs= of them execute
  // concurrently through the parallel executor (results are bitwise
  // independent of jobs=, like the tables).
  train::TableRunOptions table;
  table.jobs = cfg.jobs;

  // (b) sparsification ratio sweep (Ours-B style).
  {
    const auto series = run_sweep(
        train::RecipeKind::OursB, base_opt, {0.05, 0.1, 0.2, 0.3, 0.4, 0.5},
        [](train::RecipeOptions& opt, double ratio) {
          opt.scheme.ratio = ratio;
        },
        dataset.train, dataset.test, table);
    print_series("(b) sparsification ratio sweep", "ratio", series,
                 "bench_out/fig6/b_ratio.csv");
    failures += !bench::shape_check(
        series.back().accuracy <= series.front().accuracy + 0.02,
        "(b) accuracy decreases (or holds) as sparsity grows");
  }

  // (c) roughness regularization sweep (Ours-A style).
  std::vector<SweepPoint> series_c;
  {
    series_c = run_sweep(
        train::RecipeKind::OursA, base_opt, {0.001, 0.01, 0.05, 0.1, 0.3, 1.0},
        [](train::RecipeOptions& opt, double p) { opt.roughness_p = p; },
        dataset.train, dataset.test, table);
    print_series("(c) roughness regularization sweep (paper inflection at "
                 "p=0.1)", "p", series_c, "bench_out/fig6/c_roughness_reg.csv");
    failures += !bench::shape_check(
        series_c.back().roughness < series_c.front().roughness,
        "(c) stronger p gives smoother masks");
    failures += !bench::shape_check(
        series_c.back().accuracy < series_c.front().accuracy + 0.02,
        "(c) very strong p costs accuracy");
  }

  // (d) intra-block regularization sweep (roughness+intra style).
  {
    const auto series = run_sweep(
        train::RecipeKind::OursD, base_opt, {0.003, 0.01, 0.03, 0.1, 0.3, 1.0},
        [](train::RecipeOptions& opt, double q) { opt.intra_q = q; },
        dataset.train, dataset.test, table);
    print_series("(d) intra-block regularization sweep (inflection location "
                 "is scale-dependent; paper reports log q=1 at 200x200)",
                 "q", series, "bench_out/fig6/d_intra_reg.csv");
    failures += !bench::shape_check(
        series.back().roughness < series.front().roughness * 1.2,
        "(d) strong q does not blow up roughness");
  }

  // (a) Pareto frontier assembled from all recipe variants + the sweeps.
  {
    std::vector<SweepPoint> cloud;
    const auto rows =
        train::run_table(base_opt, dataset.train, dataset.test, table);
    for (const auto& row : rows) {
      cloud.push_back({0.0, row.accuracy, row.roughness_after});
    }
    for (const auto& p : series_c) cloud.push_back({0.0, p.accuracy, p.roughness});
    // Extract the frontier: sort by roughness, keep accuracy-maximal prefix.
    std::sort(cloud.begin(), cloud.end(),
              [](const SweepPoint& a, const SweepPoint& b) {
                return a.roughness < b.roughness;
              });
    std::printf("(a) accuracy vs roughness cloud and Pareto frontier\n");
    io::CsvWriter csv("bench_out/fig6/a_pareto.csv",
                      {"roughness", "accuracy", "on_frontier"});
    double best_acc = -1.0;
    std::size_t frontier_count = 0;
    for (const auto& p : cloud) {
      const bool on_frontier = p.accuracy > best_acc;
      if (on_frontier) {
        best_acc = p.accuracy;
        ++frontier_count;
        std::printf("  frontier: R=%8.2f acc=%.4f\n", p.roughness, p.accuracy);
      }
      csv.row(std::vector<double>{p.roughness, p.accuracy,
                                  on_frontier ? 1.0 : 0.0});
    }
    failures += !bench::shape_check(frontier_count >= 2,
                                    "(a) frontier shows an accuracy/"
                                    "roughness trade-off");
  }
  std::printf("%d shape-check failure(s)\n", failures);
  return 0;
}

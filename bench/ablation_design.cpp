// Design-choice ablations called out in DESIGN.md (not in the paper):
//   1. propagation kernel: angular spectrum vs band-limited vs Fresnel
//   2. FFT padding: circular (paper-style, unpadded) vs 2x zero-padded
//   3. roughness neighborhood: 4 vs 8 neighbors as the training regularizer
//   4. 2pi solver: Gumbel-Softmax vs greedy coordinate descent vs annealing
//   5. compression optimizer: SLR vs classic ADMM
//   6. discrete phase control levels (inference-time quantization)
//   7. phase initialization: flat (default) vs classic uniform [0, 2*pi)
//   8. interlayer reflection (evaluation-time, first-order bounce)
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "donn/discrete.hpp"
#include "donn/reflection.hpp"
#include "roughness/report.hpp"
#include "slr/admm.hpp"
#include "smooth2pi/anneal.hpp"
#include "smooth2pi/two_pi_opt.hpp"
#include "sparsify/block_sparsify.hpp"

using namespace odonn;

namespace {

double train_once(const bench::BenchConfig& cfg, donn::DonnConfig model_cfg,
                  const bench::PreparedData& dataset,
                  const train::RegularizerOptions& reg,
                  std::uint64_t seed) {
  Rng rng(seed);
  donn::DonnModel model(model_cfg, rng);
  train::TrainOptions topt;
  topt.epochs = cfg.epochs_dense;
  topt.batch_size = cfg.batch;
  topt.lr = 0.2;
  topt.seed = seed + 1;
  topt.reg = reg;
  train::Trainer trainer(model, dataset.train, topt);
  trainer.run();
  return train::evaluate_accuracy(model, dataset.test);
}

}  // namespace

int main(int argc, char** argv) {
  auto cfg = bench::make_bench_config(argc, argv);
  if (cfg.scale == bench::Scale::Default) {
    cfg.samples = std::min<std::size_t>(cfg.samples, 1200);
    cfg.epochs_dense = std::min<std::size_t>(cfg.epochs_dense, 2);
  }
  std::printf("=== Ablations: design choices (scale=%s) ===\n\n",
              bench::scale_name(cfg.scale));
  const auto dataset = bench::prepare_dataset(data::SyntheticFamily::Digits, cfg);

  // 1 + 2: propagation kernel and padding.
  std::printf("(1/2) propagation kernel and padding vs accuracy:\n");
  std::printf("%-18s %-8s %10s\n", "kernel", "pad2x", "accuracy");
  for (auto kernel : {optics::KernelType::AngularSpectrum,
                      optics::KernelType::BandLimitedASM,
                      optics::KernelType::FresnelTF}) {
    for (bool pad : {false, true}) {
      donn::DonnConfig mc = donn::DonnConfig::scaled(cfg.grid);
      mc.kernel = kernel;
      mc.pad2x = pad;
      const double acc = train_once(cfg, mc, dataset, {}, cfg.seed);
      std::printf("%-18s %-8s %9.2f%%\n", optics::kernel_name(kernel),
                  pad ? "yes" : "no", 100.0 * acc);
    }
  }

  // 3: roughness neighborhood as regularizer.
  std::printf("\n(3) roughness regularizer neighborhood:\n");
  std::printf("%-12s %10s\n", "neighbors", "accuracy");
  for (auto nb : {roughness::Neighborhood::Four, roughness::Neighborhood::Eight}) {
    train::RegularizerOptions reg;
    reg.roughness_p = 0.1;
    reg.roughness.neighborhood = nb;
    const double acc = train_once(cfg, donn::DonnConfig::scaled(cfg.grid),
                                  dataset, reg, cfg.seed);
    std::printf("%-12d %9.2f%%\n", static_cast<int>(nb), 100.0 * acc);
  }

  // 4: 2pi solver quality + cost on a sparsified mask.
  std::printf("\n(4) 2pi solver: Gumbel-Softmax vs greedy (sparsified %zux%zu "
              "mask):\n", cfg.grid, cfg.grid);
  Rng rng(cfg.seed + 5);
  MatrixD phi(cfg.grid, cfg.grid);
  for (auto& v : phi) v = 5.0 + rng.uniform(-0.5, 0.5);
  sparsify::apply_mask(phi, sparsify::block_sparsify(phi, {cfg.grid / 8, 0.15}));

  const auto t0 = std::chrono::steady_clock::now();
  smooth2pi::TwoPiOptions gs_opt;
  gs_opt.iterations = cfg.two_pi_iterations;
  const auto gs = smooth2pi::optimize_2pi(phi, gs_opt);
  const auto t1 = std::chrono::steady_clock::now();
  const auto greedy = smooth2pi::greedy_2pi(phi);
  const auto t2 = std::chrono::steady_clock::now();
  const auto annealed = smooth2pi::anneal_2pi(phi, {});
  const auto t3 = std::chrono::steady_clock::now();
  const auto ms = [](auto a, auto b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
  };
  std::printf("%-16s %12s %12s %10s\n", "solver", "R before", "R after",
              "time (ms)");
  std::printf("%-16s %12.2f %12.2f %10.1f\n", "gumbel-softmax",
              gs.roughness_before, gs.roughness_after, ms(t0, t1));
  std::printf("%-16s %12.2f %12.2f %10.1f\n", "greedy",
              greedy.roughness_before, greedy.roughness_after, ms(t1, t2));
  std::printf("%-16s %12.2f %12.2f %10.1f\n", "annealing",
              annealed.roughness_before, annealed.roughness_after, ms(t2, t3));
  std::printf("lifting a sparsified block is a cooperative move: greedy "
              "descent cannot cross it at all,\nannealing needs enough "
              "temperature (and degrades on larger masks), while the "
              "paper's\nGumbel-Softmax relaxation moves whole blocks "
              "through the soft selection.\n");

  // 5: SLR vs ADMM at equal budget.
  std::printf("\n(5) compression optimizer: SLR vs ADMM (block sparsity "
              "0.1):\n");
  auto run_compress = [&](bool use_slr) {
    Rng mrng(cfg.seed);
    donn::DonnModel model(donn::DonnConfig::scaled(cfg.grid), mrng);
    train::TrainOptions dense;
    dense.epochs = cfg.epochs_dense;
    dense.batch_size = cfg.batch;
    dense.lr = 0.2;
    train::Trainer(model, dataset.train, dense).run();

    sparsify::SchemeOptions scheme;
    scheme.ratio = 0.1;
    scheme.block_size = cfg.scaled_block(25);
    train::TrainOptions sparse;
    sparse.epochs = std::max<std::size_t>(1, cfg.epochs_sparse);
    sparse.batch_size = cfg.batch;
    sparse.lr = 0.001;
    slr::SlrOptions so;
    so.scheme = scheme;
    slr::SlrState slr_state(model.phases(), so);
    slr::AdmmState admm_state(model.phases(), {0.1, scheme});
    if (use_slr) {
      sparse.slr = &slr_state;
    } else {
      sparse.admm = &admm_state;
    }
    train::Trainer(model, dataset.train, sparse).run();
    model.set_masks(use_slr ? slr_state.masks() : admm_state.masks());
    return train::evaluate_accuracy(model, dataset.test);
  };
  const double slr_acc = run_compress(true);
  const double admm_acc = run_compress(false);
  std::printf("%-16s %10s\n", "optimizer", "accuracy");
  std::printf("%-16s %9.2f%%\n", "SLR", 100.0 * slr_acc);
  std::printf("%-16s %9.2f%%\n", "ADMM", 100.0 * admm_acc);

  // 6: discrete control levels — quantize a trained dense model's phases at
  // inference and watch accuracy/roughness (the paper's §I mismatch source).
  std::printf("\n(6) discrete phase control levels (inference-time "
              "quantization of a trained model):\n");
  Rng qrng(cfg.seed);
  donn::DonnModel quant_model(donn::DonnConfig::scaled(cfg.grid), qrng);
  {
    train::TrainOptions topt;
    topt.epochs = cfg.epochs_dense;
    topt.batch_size = cfg.batch;
    topt.lr = 0.2;
    train::Trainer(quant_model, dataset.train, topt).run();
  }
  const double full_acc = train::evaluate_accuracy(quant_model, dataset.test);
  std::printf("%-10s %10s %14s %16s\n", "levels", "accuracy", "R_overall",
              "quant err (rad)");
  std::printf("%-10s %9.2f%% %14.2f %16s\n", "continuous", 100.0 * full_acc,
              roughness::report(quant_model.phases()).overall, "-");
  double acc_two_levels = 0.0;
  for (std::size_t levels : {2u, 4u, 8u, 16u, 64u}) {
    donn::DonnModel q = quant_model;
    std::vector<MatrixD> quantized;
    double err = 0.0;
    for (const auto& phiq : quant_model.phases()) {
      quantized.push_back(donn::quantize_phase(phiq, {levels, true}));
      err += donn::quantization_error(phiq, {levels, true});
    }
    err /= static_cast<double>(quant_model.num_layers());
    q.set_phases(std::move(quantized));
    const double acc = train::evaluate_accuracy(q, dataset.test);
    if (levels == 2) acc_two_levels = acc;
    std::printf("%-10zu %9.2f%% %14.2f %16.4f\n", levels, 100.0 * acc,
                roughness::report(q.phases()).overall, err);
  }

  // 7: phase initialization scheme.
  std::printf("\n(7) phase initialization (dense baseline):\n");
  std::printf("%-10s %10s %12s %14s %14s\n", "init", "accuracy", "R_overall",
              "R after 2pi", "2pi gain (%)");
  for (auto init : {donn::PhaseInit::Flat, donn::PhaseInit::Uniform}) {
    donn::DonnConfig mc = donn::DonnConfig::scaled(cfg.grid);
    mc.init = init;
    Rng irng(cfg.seed);
    donn::DonnModel model(mc, irng);
    train::TrainOptions topt;
    topt.epochs = cfg.epochs_dense;
    topt.batch_size = cfg.batch;
    topt.lr = 0.2;
    train::Trainer(model, dataset.train, topt).run();
    const double acc = train::evaluate_accuracy(model, dataset.test);
    smooth2pi::TwoPiOptions tp;
    tp.iterations = cfg.two_pi_iterations;
    const auto results = smooth2pi::optimize_2pi_all(model.phases(), tp);
    double before = 0.0, after = 0.0;
    for (const auto& r : results) {
      before += r.roughness_before;
      after += r.roughness_after;
    }
    before /= static_cast<double>(results.size());
    after /= static_cast<double>(results.size());
    std::printf("%-10s %9.2f%% %12.2f %14.2f %14.1f\n",
                init == donn::PhaseInit::Flat ? "flat" : "uniform",
                100.0 * acc, before, after,
                100.0 * (1.0 - after / before));
  }
  std::printf("the paper's '<2%% reduction from 2pi alone' (Tables II-V row "
              "1) only holds for masks whose\nroughness is learned structure "
              "rather than leftover random initialization — hence flat "
              "default.\n");

  // 8: interlayer reflection (first-order, evaluation-time) — the second
  // deployment effect of the paper's physics citation [13].
  std::printf("\n(8) interlayer reflection (first-order bounce, trained "
              "dense model):\n");
  std::printf("%-14s %10s\n", "amplitude r", "accuracy");
  double acc_r0 = 0.0, acc_r3 = 0.0;
  for (double r : {0.0, 0.1, 0.2, 0.3}) {
    std::size_t correct = 0;
    for (std::size_t i = 0; i < dataset.test.size(); ++i) {
      const auto input = optics::encode_image(dataset.test.image(i),
                                              quant_model.config().grid);
      if (donn::reflective_predict(quant_model, input, {r}) ==
          dataset.test.label(i)) {
        ++correct;
      }
    }
    const double acc = static_cast<double>(correct) /
                       static_cast<double>(dataset.test.size());
    if (r == 0.0) acc_r0 = acc;
    if (r == 0.3) acc_r3 = acc;
    std::printf("%-14.2f %9.2f%%\n", r, 100.0 * acc);
  }

  int failures = 0;
  failures += !bench::shape_check(acc_r3 <= acc_r0 + 0.02,
                                  "strong interlayer reflection does not "
                                  "improve accuracy");
  failures += !bench::shape_check(
      gs.roughness_after < gs.roughness_before,
      "Gumbel-Softmax 2pi reduces roughness");
  failures += !bench::shape_check(
      greedy.roughness_after <= gs.roughness_before,
      "greedy baseline never increases roughness");
  failures += !bench::shape_check(acc_two_levels <= full_acc + 0.02,
                                  "coarse quantization cannot beat the "
                                  "continuous model");
  std::printf("\n%d shape-check failure(s)\n", failures);
  return 0;
}

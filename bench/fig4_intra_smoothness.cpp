// Reproduces Fig. 4: intra-block variance of the sparsified 6x6 example
// (paper per-block grid and AvgVar = 4.835), plus a sweep showing how the
// intra-block regularizer's target behaves across block sizes.
#include <cstdio>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "roughness/intra_block.hpp"
#include "sparsify/block_sparsify.hpp"

using namespace odonn;

int main(int, char**) {
  std::printf("=== Fig. 4: intra-block smoothness (block 2, sparsity 0.33) "
              "===\n\n");
  MatrixD w = {{4.7, 5.7, 0.9, 0.4, 2.6, 8.6}, {4.5, 0.9, 3.8, 1.5, 5.4, 3.7},
               {0.1, 5.7, 9.0, 3.2, 2.1, 0.7}, {4.7, 9.7, 7.8, 2.5, 0.8, 3.9},
               {1.1, 0.7, 0.6, 0.1, 4.4, 1.8}, {5.6, 0.4, 1.8, 0.4, 9.8, 2.3}};
  // The figure's sparsified blocks (block-grid coordinates).
  const auto mask = sparsify::block_mask_from_selection(
      6, 6, 2, {{1, 0}, {1, 2}, {2, 1}});
  sparsify::apply_mask(w, mask);

  roughness::IntraBlockOptions opt;
  opt.block_size = 2;
  const MatrixD map = roughness::block_variance_map(w, opt);
  const double paper_grid[3][3] = {{4.4, 2.3, 6.9}, {0.0, 10.6, 0.0},
                                   {6.0, 0.0, 13.4}};
  std::printf("per-block variance (paper / measured):\n");
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      std::printf("  %5.1f/%-7.2f", paper_grid[r][c], map(r, c));
    }
    std::printf("\n");
  }
  const double avg = roughness::intra_block_variance_mean(w, opt);
  std::printf("\nAvgVar: paper 4.835, measured %.4f\n", avg);
  int failures = 0;
  failures += !bench::shape_check(std::abs(avg - 4.835) < 5e-3,
                                  "AvgVar matches the paper to display "
                                  "precision");

  // Sweep: the regularizer target across block sizes on a random mask.
  std::printf("\nR_intra across block sizes (random 24x24 phase mask):\n");
  Rng rng(5);
  MatrixD m(24, 24);
  for (auto& v : m) v = rng.uniform(0.0, 2.0 * M_PI);
  std::printf("%12s %14s %14s\n", "block size", "sum variance", "mean variance");
  for (std::size_t b : {2u, 3u, 4u, 6u, 8u, 12u}) {
    roughness::IntraBlockOptions sweep;
    sweep.block_size = b;
    std::printf("%12zu %14.3f %14.4f\n", b,
                roughness::intra_block_variance_sum(m, sweep),
                roughness::intra_block_variance_mean(m, sweep));
  }
  std::printf("\n%d shape-check failure(s)\n", failures);
  return 0;
}

// Reproduces Table V (EMNIST): paper setup 100 epochs, block size 20.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace odonn::bench;
  const std::vector<PaperRow> paper = {
      {"[5,6,8]", 92.30, 463.42, 458.48}, {"Ours-A", 91.61, 435.58, -1.0},
      {"Ours-B", 92.36, 465.85, 443.91},  {"Ours-C", 91.16, 349.61, 336.75},
      {"Ours-D", 90.74, 312.17, 298.09}};
  run_table_bench("Table V: EMNIST (letter stand-in)",
                  odonn::data::SyntheticFamily::Letters,
                  /*paper_block=*/20, paper, argc, argv);
  return 0;
}

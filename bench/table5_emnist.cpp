// Reproduces Table V (EMNIST) via the shared table registry (see
// bench_common's TableSpec). Also reachable as `odonn_cli table
// dataset=emnist`.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  odonn::bench::run_table_bench(
      odonn::bench::table_spec(odonn::data::SyntheticFamily::Letters), argc,
      argv);
  return 0;
}

// Reproduces Table II (MNIST) via the shared table registry; the paper
// rows, title and block size live in bench_common's TableSpec for this
// dataset family. Also reachable as `odonn_cli table dataset=mnist`.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  odonn::bench::run_table_bench(
      odonn::bench::table_spec(odonn::data::SyntheticFamily::Digits), argc,
      argv);
  return 0;
}

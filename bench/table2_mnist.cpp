// Reproduces Table II (MNIST): accuracy and R_overall before/after the
// 2*pi optimization for Baseline / Ours-A..D. Paper setup: 50 epochs,
// block size 25 (on the 200-grid), sparsity 0.1.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace odonn::bench;
  const std::vector<PaperRow> paper = {
      {"[5,6,8]", 96.67, 466.39, 460.85}, {"Ours-A", 96.18, 416.07, -1.0},
      {"Ours-B", 96.38, 538.78, 400.38},  {"Ours-C", 96.47, 409.41, 299.87},
      {"Ours-D", 95.90, 375.35, 280.32}};
  run_table_bench("Table II: MNIST (digit stand-in)",
                  odonn::data::SyntheticFamily::Digits,
                  /*paper_block=*/25, paper, argc, argv);
  return 0;
}

// Reproduces Fig. 3: roughness of block vs non-structured vs bank-balanced
// sparsification at ratio 0.33 — first on the paper's exact 6x6 example
// matrix (targets 23.78 / 25.80 / 25.88), then as a property sweep over
// random matrices and over sparsity ratios, which the figure's single
// example cannot show.
#include <cstdio>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "roughness/roughness.hpp"
#include "sparsify/schemes.hpp"

using namespace odonn;

namespace {

MatrixD figure_matrix() {
  return {{4.7, 5.7, 0.9, 0.4, 2.6, 8.6}, {4.5, 0.9, 3.8, 1.5, 5.4, 3.7},
          {0.1, 5.7, 9.0, 3.2, 2.1, 0.7}, {4.7, 9.7, 7.8, 2.5, 0.8, 3.9},
          {1.1, 0.7, 0.6, 0.1, 4.4, 1.8}, {5.6, 0.4, 1.8, 0.4, 9.8, 2.3}};
}

double sparsified_roughness(const MatrixD& w, sparsify::Scheme scheme,
                            double ratio, std::size_t block,
                            std::size_t bank) {
  sparsify::SchemeOptions opt;
  opt.scheme = scheme;
  opt.ratio = ratio;
  opt.block_size = block;
  opt.bank_size = bank;
  MatrixD x = w;
  sparsify::apply_mask(x, sparsify::sparsify(x, opt));
  return roughness::mask_roughness(x);
}

}  // namespace

int main(int, char**) {
  std::printf("=== Fig. 3: sparsification scheme vs roughness (ratio 0.33, "
              "8-neighbor) ===\n\n");

  // Part 1: the paper's exact example matrix.
  const MatrixD w = figure_matrix();
  const double block =
      sparsified_roughness(w, sparsify::Scheme::Block, 1.0 / 3.0, 2, 3);
  const double nonstruct = sparsified_roughness(
      w, sparsify::Scheme::NonStructured, 12.0 / 36.0, 2, 3);
  const double bank = sparsified_roughness(w, sparsify::Scheme::BankBalanced,
                                           1.0 / 3.0, 2, 3);
  std::printf("paper's 6x6 example:      paper    measured\n");
  std::printf("  (a) block               23.78    %8.2f\n", block);
  std::printf("  (b) non-structured      25.80    %8.2f\n", nonstruct);
  std::printf("  (c) bank-balanced       25.88    %8.2f\n", bank);

  int failures = 0;
  failures += !bench::shape_check(block < nonstruct && block < bank,
                                  "block sparsification has lowest roughness "
                                  "on the figure matrix");

  // Part 2: does the ordering generalize? Random matrices, several ratios.
  std::printf("\nrandom 24x24 matrices (mean over 20 draws):\n");
  std::printf("%8s %10s %14s %14s\n", "ratio", "block", "non-structured",
              "bank-balanced");
  Rng rng(123);
  for (double ratio : {0.11, 0.25, 0.33, 0.5}) {
    double sum_block = 0.0, sum_nonstruct = 0.0, sum_bank = 0.0;
    for (int trial = 0; trial < 20; ++trial) {
      MatrixD m(24, 24);
      for (auto& v : m) v = rng.uniform(0.0, 2.0 * M_PI);
      sum_block += sparsified_roughness(m, sparsify::Scheme::Block, ratio, 4, 4);
      sum_nonstruct += sparsified_roughness(m, sparsify::Scheme::NonStructured,
                                            ratio, 4, 4);
      sum_bank += sparsified_roughness(m, sparsify::Scheme::BankBalanced,
                                       ratio, 4, 4);
    }
    std::printf("%8.2f %10.2f %14.2f %14.2f\n", ratio, sum_block / 20.0,
                sum_nonstruct / 20.0, sum_bank / 20.0);
    failures += !bench::shape_check(
        sum_block < sum_nonstruct && sum_block < sum_bank,
        "block lowest at ratio " + std::to_string(ratio));
  }
  std::printf("\n%d shape-check failure(s)\n", failures);
  return 0;
}

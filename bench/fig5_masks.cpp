// Reproduces Fig. 5: the phase-mask gallery of the second diffractive layer
// under the EMNIST-like task — Baseline, Sparsify, Sparsify+Roughness,
// +Intra-block smoothness, and the 2*pi-optimized final mask. Images are
// written to bench_out/fig5/ as colormapped PPMs (sparsified blocks black,
// like the figure), and the roughness progression is printed.
#include <cstdio>
#include <filesystem>

#include "bench_common.hpp"
#include "io/mask_render.hpp"
#include "optics/fabrication.hpp"

using namespace odonn;

int main(int argc, char** argv) {
  const auto cfg = bench::make_bench_config(argc, argv);
  std::printf("=== Fig. 5: phase-mask gallery (EMNIST stand-in, scale=%s) "
              "===\n\n", bench::scale_name(cfg.scale));
  const std::string outdir = "bench_out/fig5";
  std::filesystem::create_directories(outdir);

  auto opt = bench::recipe_options(cfg, /*paper_block=*/20);
  const auto dataset =
      bench::prepare_dataset(data::SyntheticFamily::Letters, cfg);

  const struct {
    const char* label;
    const char* file;
    train::RecipeKind kind;
  } panels[] = {
      {"Baseline", "1_baseline.ppm", train::RecipeKind::Baseline},
      {"Sparsify", "2_sparsify.ppm", train::RecipeKind::OursB},
      {"Sparsify+Roughness", "3_sparsify_roughness.ppm",
       train::RecipeKind::OursC},
      {"Intra-block Smooth", "4_intra_block.ppm", train::RecipeKind::OursD}};

  int failures = 0;
  double baseline_rough = 0.0;
  double last_after = 0.0;
  // Physical relief units for the 3D-printed masks of Fig. 1(d)/Fig. 5: the
  // paper defines roughness via adjacent-pixel THICKNESS differences.
  const optics::MaterialSpec material;
  std::printf("%-22s %10s %14s %14s %16s\n", "panel", "acc (%)",
              "R before 2pi", "R after 2pi", "relief rough [um]");
  for (const auto& panel : panels) {
    const auto row = train::run_recipe(panel.kind, opt, dataset.train,
                                       dataset.test);
    const std::size_t layer =
        std::min<std::size_t>(1, row.trained_phases.size() - 1);
    io::render_phase_mask(outdir + "/" + panel.file,
                          row.trained_phases[layer]);
    const auto relief =
        optics::thickness_report(row.smoothed_phases[layer], material);
    std::printf("%-22s %10.2f %14.2f %14.2f %16.2f\n", panel.label,
                100.0 * row.accuracy, row.roughness_before,
                row.roughness_after, relief.roughness_um);
    if (panel.kind == train::RecipeKind::Baseline) {
      baseline_rough = row.roughness_before;
    }
    if (panel.kind == train::RecipeKind::OursD) {
      last_after = row.roughness_after;
      io::MaskRenderOptions render;
      render.zeros_black = false;  // lifted pixels are no longer exact zeros
      io::render_phase_mask(outdir + "/5_intra_block_2pi.ppm",
                            row.smoothed_phases[layer], render);
    }
  }
  std::printf("\nimages: %s/*.ppm (5th panel = 2pi-optimized Ours-D, the "
              "paper's smoothed layer)\n", outdir.c_str());
  failures += !bench::shape_check(
      last_after < baseline_rough,
      "final smoothed mask is smoother than the baseline layer");
  std::printf("%d shape-check failure(s)\n", failures);
  return 0;
}

// http_get — minimal scrape client for the odonn observability plane.
//
//   http_get <host> <port> <path> [timeout_ms]
//
// Prints the response body to stdout. Exit status: 0 on HTTP 200, 2 on any
// other HTTP status (body still printed), 1 on transport failure or bad
// usage (error on stderr). scripts/check.sh uses this instead of curl so
// the HTTP smoke works in containers without one.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/http_server.hpp"

int main(int argc, char** argv) {
  if (argc < 4 || argc > 5) {
    std::fprintf(stderr, "usage: http_get <host> <port> <path> [timeout_ms]\n");
    return 1;
  }
  const std::string host = argv[1];
  const int port = std::atoi(argv[2]);
  const std::string path = argv[3];
  const int timeout_ms = argc == 5 ? std::atoi(argv[4]) : 5000;
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "http_get: invalid port '%s'\n", argv[2]);
    return 1;
  }

  const odonn::obs::HttpGetResult result = odonn::obs::http_get(
      host, static_cast<std::uint16_t>(port), path, timeout_ms);
  if (!result.ok) {
    std::fprintf(stderr, "http_get: %s\n", result.error.c_str());
    return 1;
  }
  std::fwrite(result.body.data(), 1, result.body.size(), stdout);
  return result.status == 200 ? 0 : 2;
}

// Known-bad corpus: a homegrown percentile. Divergent rank rules were a
// real PR 4 bug class (three implementations disagreed on boundary ranks);
// quantiles must go through odonn::nearest_rank / percentile_nearest_rank.
#include <algorithm>
#include <vector>

double percentile (std::vector<double> v, double q) {
  const std::size_t k = static_cast<std::size_t>(q * v.size());
  std::nth_element(v.begin(), v.begin() + k, v.end());
  return v[k];
}

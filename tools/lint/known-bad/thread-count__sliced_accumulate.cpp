// Known-bad corpus: partial-sum layout derived from the worker count. The
// summation tree then depends on ODONN_THREADS, so results stop being
// bitwise reproducible across thread counts — the exact failure mode
// kGradientSlices / kParallelSumChunkCap exist to prevent.
#include <cstddef>
#include <vector>

namespace odonn { std::size_t thread_count(); }

double racy_layout_sum(const std::vector<double>& xs) {
  std::vector<double> partials(odonn::thread_count(), 0.0);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    partials[i % partials.size()] += xs[i];
  }
  double total = 0.0;
  for (double p : partials) total += p;
  return total;
}

// Known-bad corpus: an ad-hoc std::thread in src/ bypasses the
// nesting-aware budget discipline of common/parallel — it can oversubscribe
// the pool and its scheduling is invisible to ScopedThreadBudget.
#include <thread>

void fire_and_forget() {
  std::thread([] { /* work */ }).detach();
}

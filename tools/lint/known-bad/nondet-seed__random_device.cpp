// Known-bad corpus: seeding from std::random_device makes every run draw a
// different stream — digests would differ run to run. All randomness must
// flow through the counter-based RNG streams (common/rng).
#include <random>

unsigned nondeterministic_seed() {
  std::random_device rd;
  return rd();
}

// Known-bad corpus: wall-clock seeding (srand(time(NULL))) — the classic
// nondeterminism source the digest contract exists to forbid.
#include <cstdlib>
#include <ctime>

void seed_from_clock() {
  std::srand(static_cast<unsigned>(time(nullptr)));
  (void)rand();
}

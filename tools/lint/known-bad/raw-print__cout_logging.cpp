// Known-bad corpus: raw std::cout logging in src/ tears under concurrent
// table jobs and skips the level gate — emission must go through
// common/log (line-atomic single fwrite).
#include <iostream>

void report_progress(int step) {
  std::cout << "step " << step << " done" << std::endl;
}

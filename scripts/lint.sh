#!/usr/bin/env bash
# Repo determinism lint — greppable invariants behind the bitwise-digest
# contract (see README "Correctness tooling").
#
# Checks (patterns in tools/lint/, allowlist in tools/lint/allowlist.txt):
#   nondet-seed   no std::random_device / srand / rand() / time(NULL)
#                 seeding anywhere — all randomness flows through the
#                 counter-based RNG streams (common/rng, fab::realization_rng)
#   raw-thread    no std::thread / std::jthread / std::async in src/ outside
#                 the allowlisted pool / serve / http owners — ad-hoc threads
#                 bypass the nesting-aware budget discipline of common/parallel
#   raw-print     no printf / cout / cerr logging in src/ — emission goes
#                 through common/log (line-atomic, level-gated); bench/cli
#                 JSON emitters live outside src/ by design
#   percentile    no nth_element / percentile reimplementations outside the
#                 owners — quantiles go through odonn::nearest_rank /
#                 percentile_nearest_rank so every subsystem agrees on
#                 boundary ranks to the bit
#   thread-count  no thread_count() in src/ outside the scheduler owners —
#                 slice layouts derived from the worker count break bitwise
#                 independence from ODONN_THREADS (use fixed-slice layouts
#                 like kParallelSumChunkCap / kGradientSlices)
#
# Usage:
#   scripts/lint.sh              lint the tree (exit 1 on any violation)
#   scripts/lint.sh --self-test  prove each check still fires on the
#                                known-bad corpus (tools/lint/known-bad/),
#                                then lint the tree
#
# Line-level escape: a line ending in a `// lint:allow <check>` comment is
# skipped for that check (comments are stripped before matching, so the
# marker itself can never trip a pattern). File-level escape: one
# "<check> <path>" line in tools/lint/allowlist.txt WITH a justification
# comment above it.
set -u
cd "$(dirname "$0")/.."

ALLOWLIST=tools/lint/allowlist.txt
CORPUS=tools/lint/known-bad

CHECKS=(nondet-seed raw-thread raw-print percentile thread-count)

pattern_for() {
  case "$1" in
    nondet-seed)
      echo 'std::random_device|(^|[^A-Za-z0-9_])srand[ \t]*\(|(^|[^A-Za-z0-9_])rand[ \t]*\([ \t]*\)|(^|[^A-Za-z0-9_:.>]|std::)time[ \t]*\([ \t]*(NULL|nullptr|0)[ \t]*\)' ;;
    raw-thread)
      echo 'std::thread([^A-Za-z0-9_]|$)|std::jthread|std::async[ \t]*\(' ;;
    raw-print)
      echo 'std::cout|std::cerr|(^|[^A-Za-z0-9_])(printf|fprintf|puts|putchar)[ \t]*\(' ;;
    percentile)
      echo 'nth_element|double[ \t]+percentile[ \t]*\(' ;;
    thread-count)
      echo '(^|[^A-Za-z0-9_:])thread_count[ \t]*\(' ;;
    *) echo "lint.sh: unknown check '$1'" >&2; exit 2 ;;
  esac
}

# Directories each check patrols. src/ is always in; seeding is banned
# everywhere (benches and tests must be deterministic too); the other
# checks stop at the src/ boundary where the allowlisted owners live
# (tests legitimately spawn raw threads, benches legitimately report
# thread_count() in their JSON records).
scope_for() {
  case "$1" in
    nondet-seed) echo "src bench cli tools examples tests" ;;
    *) echo "src" ;;
  esac
}

files_in_scope() {
  # shellcheck disable=SC2086
  find $1 \( -name '*.cpp' -o -name '*.hpp' -o -name '*.h' \) \
       -not -path 'tools/lint/*' | sort
}

allowlisted() {
  local check="$1" file="$2"
  [ -f "$ALLOWLIST" ] || return 1
  grep -Ev '^[ \t]*(#|$)' "$ALLOWLIST" |
    grep -Eq "^${check}[ \t]+${file}\$"
}

# scan_file <check> <file> — prints one line per violation, returns 1 if any.
scan_file() {
  local check="$1" file="$2"
  local pattern
  pattern="$(pattern_for "$check")"
  awk -v pat="$pattern" -v f="$file" -v chk="$check" '
    {
      line = $0
      # Drop line comments (incl. the lint:allow marker) and the contents
      # of string literals so documentation can mention banned names.
      if (line ~ ("// *lint:allow +" chk)) next
      sub(/\/\/.*/, "", line)
      gsub(/"[^"]*"/, "\"\"", line)
      if (line ~ pat) {
        printf "%s: %s:%d: %s\n", chk, f, FNR, $0
        bad = 1
      }
    }
    END { exit bad ? 1 : 0 }
  ' "$file"
}

lint_tree() {
  local failed=0 check file
  for check in "${CHECKS[@]}"; do
    while IFS= read -r file; do
      allowlisted "$check" "$file" && continue
      scan_file "$check" "$file" || failed=1
    done < <(files_in_scope "$(scope_for "$check")")
  done
  return "$failed"
}

# Every allowlist entry must name an existing file and a known check, so
# the list can never silently rot.
check_allowlist() {
  local failed=0 check file known
  while read -r check file; do
    [ -z "$check" ] && continue
    known=0
    for c in "${CHECKS[@]}"; do [ "$c" = "$check" ] && known=1; done
    if [ "$known" -eq 0 ]; then
      echo "allowlist: unknown check '$check'" >&2
      failed=1
    fi
    if [ ! -f "$file" ]; then
      echo "allowlist: stale entry, no such file: $file" >&2
      failed=1
    fi
  done < <(grep -Ev '^[ \t]*(#|$)' "$ALLOWLIST")
  return "$failed"
}

self_test() {
  # Each corpus file is named <check>__<slug>.cpp and MUST trip exactly the
  # check it is named for — proving the patterns still catch the failure
  # modes they were written against.
  local failed=0 path base check
  local found_any=0
  for path in "$CORPUS"/*.cpp; do
    [ -e "$path" ] || continue
    found_any=1
    base="$(basename "$path")"
    check="${base%%__*}"
    if scan_file "$check" "$path" > /dev/null; then
      echo "self-test: $path was NOT flagged by check '$check'" >&2
      failed=1
    else
      echo "self-test: $check correctly flags $base"
    fi
  done
  if [ "$found_any" -eq 0 ]; then
    echo "self-test: no corpus files under $CORPUS" >&2
    failed=1
  fi
  return "$failed"
}

status=0
if [ "${1:-}" = "--self-test" ]; then
  self_test || status=1
fi
check_allowlist || status=1
if lint_tree; then
  echo "lint: tree clean"
else
  status=1
fi
exit "$status"

#!/usr/bin/env sh
# Tier-1 verify: configure, build, ctest, plus smokes of the Monte-Carlo
# robustness CLI, robust training, the parallel table executor (with
# cross-thread-count and cross-jobs digest compares, repeated for the
# 5-layer differential-readout cell), the layer-scaling A/B bench, the
# observability
# exports (metrics-on rows bitwise identical to plain), the serve
# cluster (cluster-vs-single-engine prediction digest equality across
# ODONN_THREADS), and the observability HTTP plane (scrape a live serve
# run, then prove digests identical with the plane on vs off) — the
# single entry point CI and humans run before merging. The whole tree
# (library, tests, benches, examples, cli, tools) compiles with
# -Wall -Wextra -Werror (set in CMakeLists.txt), so any warning anywhere
# fails this script at the build step.
#
# Deeper legs live behind CMake presets and run as their own CI jobs (too
# slow to fold in here): `ctest --preset asan-ubsan` (full suite under
# ASan+UBSan) and `ctest --preset tsan` (the `concurrency` label under
# ThreadSanitizer).
set -eu

cd "$(dirname "$0")/.."

# Determinism lint first: it needs no build and fails in seconds, so a
# banned construct (ad-hoc seeding/threads/printing, percentile or
# slice-layout reimplementations) surfaces before any compile time is
# spent. The same script also runs as the `lint` ctest below.
scripts/lint.sh --self-test

cmake -B build -S .
cmake --build build -j"$(nproc 2>/dev/null || echo 2)"
cd build && ctest --output-on-failure -j"$(nproc 2>/dev/null || echo 2)"

# Smoke the fabrication-variability subsystem end to end, and require the
# Monte-Carlo report to be bitwise identical across thread counts: the
# per-realization accuracy digests must not depend on ODONN_THREADS.
# Capture the CLI output first so its own exit status is checked (a
# pipeline would report only grep's), then extract digests separately.
robust_smoke() {
  ODONN_THREADS="$1" ./odonn_cli robust recipe=baseline grid=16 samples=120 \
    epochs=1 layers=2 two_pi_iters=200 realizations=4 format=json ||
    { echo "robust smoke: odonn_cli robust failed (threads=$1)" >&2; exit 1; }
}
out1="$(robust_smoke 1)"
out4="$(robust_smoke 4)"
d1="$(printf '%s\n' "$out1" | grep -o '"digest": "[0-9a-f]*"' || true)"
d4="$(printf '%s\n' "$out4" | grep -o '"digest": "[0-9a-f]*"' || true)"
[ -n "$d1" ] || { echo "robust smoke: no digests emitted" >&2; exit 1; }
if [ "$d1" != "$d4" ]; then
  echo "robust smoke: reports differ between ODONN_THREADS=1 and 4" >&2
  echo "threads=1: $d1" >&2
  echo "threads=4: $d4" >&2
  exit 1
fi
echo "robust smoke: ODONN_THREADS=1 vs 4 digests identical"

# Robust-training smoke: the noise-in-the-loop bench must pass its shape
# checks (robust-trained yield strictly above the 2*pi-smoothed-only
# variant under CRN) AND emit bitwise-identical digests across thread
# counts — "train_digest" hashes the trained PHASE BITS, so this enforces
# the trainer's fixed-slice determinism contract, not just the evaluator's.
robust_train_smoke() {
  ODONN_THREADS="$1" ./robust_train bench.scale=smoke format=json ||
    { echo "robust-train smoke: robust_train bench failed (threads=$1)" >&2
      exit 1; }
}
t1="$(robust_train_smoke 1)"
t4="$(robust_train_smoke 4)"
td1="$(printf '%s\n' "$t1" | grep -o '"[a-z_]*digest": "[0-9a-f]*"' || true)"
td4="$(printf '%s\n' "$t4" | grep -o '"[a-z_]*digest": "[0-9a-f]*"' || true)"
[ -n "$td1" ] || { echo "robust-train smoke: no digests emitted" >&2; exit 1; }
if [ "$td1" != "$td4" ]; then
  echo "robust-train smoke: reports differ between ODONN_THREADS=1 and 4" >&2
  echo "threads=1: $td1" >&2
  echo "threads=4: $td4" >&2
  exit 1
fi
echo "robust-train smoke: ODONN_THREADS=1 vs 4 digests identical"

# Parallel-table smoke: a full smoke-scale table must produce bitwise
# identical rows — trained AND 2*pi-smoothed phase digests (the smooth2pi
# half of the thread-independence contract) plus the metric columns —
# across ODONN_THREADS=1 vs 4 AND across jobs=1 vs 4 (the parallel recipe
# executor, pipeline::ParallelTableRunner).
table_smoke() {  # $1=threads $2=jobs
  ODONN_THREADS="$1" ./odonn_cli table bench.scale=smoke jobs="$2" \
    format=json ||
    { echo "table smoke: odonn_cli table failed (threads=$1 jobs=$2)" >&2
      exit 1; }
}
table_rows() {  # extract the deterministic row fields (not seconds)
  # `|| true` keeps a zero-match grep from tripping set -e inside the
  # command substitutions below, so the "no digests emitted" guard can
  # actually fire with its message instead of a silent abort.
  printf '%s\n' "$1" |
    grep -o '"[a-z_]*digest": "[0-9a-f]*"\|"[a-z_]*accuracy[a-z_0-9]*": [0-9.e+-]*\|"roughness_[a-z]*": [0-9.e+-]*\|"sparsity": [0-9.e+-]*' ||
    true
}
s11="$(table_smoke 1 1)"
s41="$(table_smoke 4 1)"
s44="$(table_smoke 4 4)"
r11="$(table_rows "$s11")"
r41="$(table_rows "$s41")"
r44="$(table_rows "$s44")"
[ -n "$r11" ] || { echo "table smoke: no digests emitted" >&2; exit 1; }
if [ "$r11" != "$r41" ]; then
  echo "table smoke: rows differ between ODONN_THREADS=1 and 4" >&2
  exit 1
fi
echo "table smoke: ODONN_THREADS=1 vs 4 rows identical (incl. smoothed digests)"
if [ "$r41" != "$r44" ]; then
  echo "table smoke: rows differ between jobs=1 and jobs=4" >&2
  exit 1
fi
echo "table smoke: jobs=1 vs jobs=4 rows identical"

# Multi-layer / detector-strategy smoke: the 5-layer differential-readout
# cell (the farthest point of the recipe grid from the defaults) must
# uphold the same contract — bitwise-identical rows across ODONN_THREADS=1
# vs 4 AND jobs=1 vs 4.
ml_table_smoke() {  # $1=threads $2=jobs
  ODONN_THREADS="$1" ./odonn_cli table bench.scale=smoke layers=5 \
    detector=differential jobs="$2" format=json ||
    { echo "ml table smoke: odonn_cli table failed (threads=$1 jobs=$2)" >&2
      exit 1; }
}
m11="$(ml_table_smoke 1 1)"
m41="$(ml_table_smoke 4 1)"
m44="$(ml_table_smoke 4 4)"
mr11="$(table_rows "$m11")"
mr41="$(table_rows "$m41")"
mr44="$(table_rows "$m44")"
[ -n "$mr11" ] || { echo "ml table smoke: no digests emitted" >&2; exit 1; }
if [ "$mr11" != "$mr41" ]; then
  echo "ml table smoke: 5-layer differential rows differ between" \
       "ODONN_THREADS=1 and 4" >&2
  exit 1
fi
if [ "$mr41" != "$mr44" ]; then
  echo "ml table smoke: 5-layer differential rows differ between jobs=1" \
       "and jobs=4" >&2
  exit 1
fi
echo "ml table smoke: layers=5 detector=differential rows identical" \
     "across threads and jobs"

# Layer-scaling bench: the {1,5}-layer x {standard,differential} A/B must
# pass its shape checks (valid accuracies, deterministic replay); the JSON
# record lands in build/layers_artifacts/ for CI upload.
rm -rf layers_artifacts && mkdir -p layers_artifacts
lsout="$(ODONN_THREADS=4 ./layers_scaling bench.scale=smoke realizations=4 \
  format=json)" ||
  { echo "layers smoke: layers_scaling bench failed" >&2; exit 1; }
printf '%s\n' "$lsout" | grep -v '^\[' > layers_artifacts/layers_scaling.json
grep -q '"cells"' layers_artifacts/layers_scaling.json ||
  { echo "layers smoke: record missing cells array" >&2; exit 1; }
echo "layers smoke: scaling record written and shape checks passed"

# Observability smoke: the SAME table with metrics= and trace= exports on
# (which also flips on detail collection and tracing) must stay bitwise
# identical to the plain jobs=4 run above — collection reads clocks and
# bumps atomics, it never feeds back into the computation. The exports
# must carry the full schema: counters from serve/pipeline/parallel/fft,
# per-job stage spans, and a Chrome-trace document. CI uploads
# build/obs_artifacts/ so a failed run's metrics are inspectable.
rm -rf obs_artifacts
so44="$(ODONN_THREADS=4 ./odonn_cli table bench.scale=smoke jobs=4 \
  metrics=obs_artifacts/metrics.json trace=obs_artifacts/trace.json \
  format=json)" ||
  { echo "obs smoke: odonn_cli table with metrics=/trace= failed" >&2
    exit 1; }
ro44="$(table_rows "$so44")"
if [ "$r44" != "$ro44" ]; then
  echo "obs smoke: rows differ between metrics-on and plain runs" >&2
  exit 1
fi
echo "obs smoke: metrics-on rows bitwise identical to plain run"
for needle in '"serve.requests"' '"pipeline.stages_run"' '"parallel.tasks"' \
              '"fft.plan_cache.hits"' '"stage:baseline/train"' \
              '"stage:ours-d/train"'; do
  grep -q "$needle" obs_artifacts/metrics.json ||
    { echo "obs smoke: metrics.json missing $needle" >&2; exit 1; }
done
grep -q '"traceEvents"' obs_artifacts/trace.json ||
  { echo "obs smoke: trace.json is not a Chrome-trace document" >&2
    exit 1; }
echo "obs smoke: metrics schema, per-job stage spans and trace all present"

# Parallel-table bench: records the sequential-vs-parallel wall-clock,
# re-proves row parity (the speedup shape check self-skips on hosts with
# fewer than 4 hardware threads, where thread parallelism cannot win),
# and bounds the observability overhead (<= 2% with detail + tracing on,
# rows still bitwise identical).
ODONN_THREADS=4 ./table_parallel bench.scale=smoke format=text ||
  { echo "table_parallel bench failed" >&2; exit 1; }

# Serve-cluster smoke: the load bench digests every response's detector
# sums (FNV-1a over the IEEE-754 bits, in submit order); that digest must
# be identical between a single-threaded single engine and a 4-thread
# 2-replica cluster — replication, routing and thread count move requests,
# never bits. The replicas=2 JSON record is kept for CI upload
# (build/serve_artifacts/), alongside the bench's own internal
# cross-replica digest and speedup shape checks.
serve_smoke() {  # $1=threads $2=replicas
  ODONN_THREADS="$1" ./serve_load grid=16 requests=64 replicas="$2" \
    format=json ||
    { echo "serve smoke: serve_load failed (threads=$1 replicas=$2)" >&2
      exit 1; }
}
rm -rf serve_artifacts && mkdir -p serve_artifacts
v1="$(serve_smoke 1 1)"
v2="$(serve_smoke 4 2)"
# The record proper is JSON; shape-check lines ("[check] ...") precede it.
printf '%s\n' "$v2" | grep -v '^\[' > serve_artifacts/serve_load.json
sd1="$(printf '%s\n' "$v1" | grep -o '"digest": "[0-9a-f]*"' | head -n 1)"
sd2="$(printf '%s\n' "$v2" | grep -o '"digest": "[0-9a-f]*"' | head -n 1)"
[ -n "$sd1" ] || { echo "serve smoke: no digest emitted" >&2; exit 1; }
if [ "$sd1" != "$sd2" ]; then
  echo "serve smoke: digests differ between single engine and cluster" >&2
  echo "threads=1 replicas=1: $sd1" >&2
  echo "threads=4 replicas=2: $sd2" >&2
  exit 1
fi
echo "serve smoke: cluster digest identical to single engine (threads 1 vs 4)"

# HTTP-plane smoke: a live serve run with the observability HTTP plane up
# must (a) report build provenance on /healthz, (b) serve a /metrics body
# carrying the serve counters and the attribution summary families, (c)
# stream ClusterSnapshot JSONL to snapshot_file=, and (d) shut down with
# exit 0 on GET /quitquitquit. Scrapes land in build/http_artifacts/ for
# CI upload. The per-row response digest with the plane ON (THREADS=4,
# replicas=2) must then equal a plane-OFF THREADS=1 replicas=1 run — the
# HTTP plane and attribution stamps only read state, they never feed back
# into the computation.
rm -rf http_artifacts && mkdir -p http_artifacts
ODONN_THREADS=4 ./odonn_cli serve grid=16 samples=48 batch=16 replicas=2 \
  http_port=0 http_wait_s=30 snapshot_s=0.2 \
  snapshot_file=http_artifacts/snapshots.jsonl format=json \
  > http_artifacts/serve_http.json 2> http_artifacts/serve_http.log &
serve_pid=$!
http_fail() {  # $1=message
  echo "http smoke: $1" >&2
  kill "$serve_pid" 2>/dev/null || true
  exit 1
}
port=""
i=0
while [ "$i" -lt 100 ]; do
  port="$(grep -o 'listening on 127.0.0.1:[0-9]*' \
            http_artifacts/serve_http.log 2>/dev/null |
          grep -o '[0-9]*$' || true)"
  [ -n "$port" ] && break
  kill -0 "$serve_pid" 2>/dev/null || http_fail "serve exited prematurely"
  sleep 0.1
  i=$((i + 1))
done
[ -n "$port" ] || http_fail "serve never reported its http port"
# Wait until the bench record is out (the process then lingers, scrapable,
# inside http_wait_s) so the scraped counters cover the whole run.
i=0
until grep -q '"rows"' http_artifacts/serve_http.json 2>/dev/null; do
  [ "$i" -lt 300 ] || http_fail "serve bench never emitted its JSON record"
  kill -0 "$serve_pid" 2>/dev/null || http_fail "serve exited prematurely"
  sleep 0.1
  i=$((i + 1))
done
./http_get 127.0.0.1 "$port" /healthz > http_artifacts/healthz.json ||
  http_fail "/healthz scrape failed"
./http_get 127.0.0.1 "$port" /metrics > http_artifacts/metrics.prom ||
  http_fail "/metrics scrape failed"
./http_get 127.0.0.1 "$port" /metrics.json > http_artifacts/metrics.json ||
  http_fail "/metrics.json scrape failed"
./http_get 127.0.0.1 "$port" /snapshot > http_artifacts/snapshot.json ||
  http_fail "/snapshot scrape failed"
./http_get 127.0.0.1 "$port" /spans > http_artifacts/spans.json ||
  http_fail "/spans scrape failed"
for needle in '"git_sha"' '"replicas": 2' '"draining": false'; do
  grep -q "$needle" http_artifacts/healthz.json ||
    http_fail "/healthz missing $needle"
done
for needle in 'odonn_serve_requests' 'odonn_serve_attr_queue_wait_ms' \
              'odonn_serve_attr_compute_ms' 'quantile="0.999"' \
              'odonn_obs_http_requests'; do
  grep -q "$needle" http_artifacts/metrics.prom ||
    http_fail "/metrics missing $needle"
done
grep -q '"attr"' http_artifacts/snapshot.json ||
  http_fail "/snapshot missing attribution summary"
# snapshot_s=0.2 keeps ticking during the linger, so at least one JSONL
# line must appear before we ask the process to quit.
i=0
until [ -s http_artifacts/snapshots.jsonl ]; do
  [ "$i" -lt 100 ] || http_fail "snapshot_file never received a line"
  sleep 0.1
  i=$((i + 1))
done
grep -q '"attr"' http_artifacts/snapshots.jsonl ||
  http_fail "snapshot_file lines missing attribution summary"
./http_get 127.0.0.1 "$port" /quitquitquit > /dev/null ||
  http_fail "/quitquitquit failed"
wait "$serve_pid" ||
  { echo "http smoke: serve exited nonzero after /quitquitquit" >&2; exit 1; }
hd_on="$(grep -o '"digest": "[0-9a-f]*"' http_artifacts/serve_http.json |
         head -n 1)"
[ -n "$hd_on" ] || { echo "http smoke: no digest in serve record" >&2; exit 1; }
plain="$(ODONN_THREADS=1 ./odonn_cli serve grid=16 samples=48 batch=16 \
  replicas=1 format=json)" ||
  { echo "http smoke: plane-off serve run failed" >&2; exit 1; }
hd_off="$(printf '%s\n' "$plain" | grep -o '"digest": "[0-9a-f]*"' |
          head -n 1)"
if [ "$hd_on" != "$hd_off" ]; then
  echo "http smoke: digests differ between http-on and http-off runs" >&2
  echo "http on  (threads=4 replicas=2): $hd_on" >&2
  echo "http off (threads=1 replicas=1): $hd_off" >&2
  exit 1
fi
echo "http smoke: scrapes, JSONL sink, clean shutdown, digest identical on/off"

#!/usr/bin/env sh
# Tier-1 verify: configure, build, ctest, plus smokes of the Monte-Carlo
# robustness CLI, robust training, the parallel table executor (with
# cross-thread-count and cross-jobs digest compares), the observability
# exports (metrics-on rows bitwise identical to plain), and the serve
# cluster (cluster-vs-single-engine prediction digest equality across
# ODONN_THREADS) — the single entry point CI and humans run before
# merging. src/serve,
# src/pipeline, src/fab, src/obs and src/common/parallel.cpp compile with
# -Wall -Wextra -Werror (set in CMakeLists.txt), so any warning there
# fails this script at the build step.
set -eu

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j"$(nproc 2>/dev/null || echo 2)"
cd build && ctest --output-on-failure -j"$(nproc 2>/dev/null || echo 2)"

# Smoke the fabrication-variability subsystem end to end, and require the
# Monte-Carlo report to be bitwise identical across thread counts: the
# per-realization accuracy digests must not depend on ODONN_THREADS.
# Capture the CLI output first so its own exit status is checked (a
# pipeline would report only grep's), then extract digests separately.
robust_smoke() {
  ODONN_THREADS="$1" ./odonn_cli robust recipe=baseline grid=16 samples=120 \
    epochs=1 layers=2 two_pi_iters=200 realizations=4 format=json ||
    { echo "robust smoke: odonn_cli robust failed (threads=$1)" >&2; exit 1; }
}
out1="$(robust_smoke 1)"
out4="$(robust_smoke 4)"
d1="$(printf '%s\n' "$out1" | grep -o '"digest": "[0-9a-f]*"' || true)"
d4="$(printf '%s\n' "$out4" | grep -o '"digest": "[0-9a-f]*"' || true)"
[ -n "$d1" ] || { echo "robust smoke: no digests emitted" >&2; exit 1; }
if [ "$d1" != "$d4" ]; then
  echo "robust smoke: reports differ between ODONN_THREADS=1 and 4" >&2
  echo "threads=1: $d1" >&2
  echo "threads=4: $d4" >&2
  exit 1
fi
echo "robust smoke: ODONN_THREADS=1 vs 4 digests identical"

# Robust-training smoke: the noise-in-the-loop bench must pass its shape
# checks (robust-trained yield strictly above the 2*pi-smoothed-only
# variant under CRN) AND emit bitwise-identical digests across thread
# counts — "train_digest" hashes the trained PHASE BITS, so this enforces
# the trainer's fixed-slice determinism contract, not just the evaluator's.
robust_train_smoke() {
  ODONN_THREADS="$1" ./robust_train bench.scale=smoke format=json ||
    { echo "robust-train smoke: robust_train bench failed (threads=$1)" >&2
      exit 1; }
}
t1="$(robust_train_smoke 1)"
t4="$(robust_train_smoke 4)"
td1="$(printf '%s\n' "$t1" | grep -o '"[a-z_]*digest": "[0-9a-f]*"' || true)"
td4="$(printf '%s\n' "$t4" | grep -o '"[a-z_]*digest": "[0-9a-f]*"' || true)"
[ -n "$td1" ] || { echo "robust-train smoke: no digests emitted" >&2; exit 1; }
if [ "$td1" != "$td4" ]; then
  echo "robust-train smoke: reports differ between ODONN_THREADS=1 and 4" >&2
  echo "threads=1: $td1" >&2
  echo "threads=4: $td4" >&2
  exit 1
fi
echo "robust-train smoke: ODONN_THREADS=1 vs 4 digests identical"

# Parallel-table smoke: a full smoke-scale table must produce bitwise
# identical rows — trained AND 2*pi-smoothed phase digests (the smooth2pi
# half of the thread-independence contract) plus the metric columns —
# across ODONN_THREADS=1 vs 4 AND across jobs=1 vs 4 (the parallel recipe
# executor, pipeline::ParallelTableRunner).
table_smoke() {  # $1=threads $2=jobs
  ODONN_THREADS="$1" ./odonn_cli table bench.scale=smoke jobs="$2" \
    format=json ||
    { echo "table smoke: odonn_cli table failed (threads=$1 jobs=$2)" >&2
      exit 1; }
}
table_rows() {  # extract the deterministic row fields (not seconds)
  # `|| true` keeps a zero-match grep from tripping set -e inside the
  # command substitutions below, so the "no digests emitted" guard can
  # actually fire with its message instead of a silent abort.
  printf '%s\n' "$1" |
    grep -o '"[a-z_]*digest": "[0-9a-f]*"\|"[a-z_]*accuracy[a-z_0-9]*": [0-9.e+-]*\|"roughness_[a-z]*": [0-9.e+-]*\|"sparsity": [0-9.e+-]*' ||
    true
}
s11="$(table_smoke 1 1)"
s41="$(table_smoke 4 1)"
s44="$(table_smoke 4 4)"
r11="$(table_rows "$s11")"
r41="$(table_rows "$s41")"
r44="$(table_rows "$s44")"
[ -n "$r11" ] || { echo "table smoke: no digests emitted" >&2; exit 1; }
if [ "$r11" != "$r41" ]; then
  echo "table smoke: rows differ between ODONN_THREADS=1 and 4" >&2
  exit 1
fi
echo "table smoke: ODONN_THREADS=1 vs 4 rows identical (incl. smoothed digests)"
if [ "$r41" != "$r44" ]; then
  echo "table smoke: rows differ between jobs=1 and jobs=4" >&2
  exit 1
fi
echo "table smoke: jobs=1 vs jobs=4 rows identical"

# Observability smoke: the SAME table with metrics= and trace= exports on
# (which also flips on detail collection and tracing) must stay bitwise
# identical to the plain jobs=4 run above — collection reads clocks and
# bumps atomics, it never feeds back into the computation. The exports
# must carry the full schema: counters from serve/pipeline/parallel/fft,
# per-job stage spans, and a Chrome-trace document. CI uploads
# build/obs_artifacts/ so a failed run's metrics are inspectable.
rm -rf obs_artifacts
so44="$(ODONN_THREADS=4 ./odonn_cli table bench.scale=smoke jobs=4 \
  metrics=obs_artifacts/metrics.json trace=obs_artifacts/trace.json \
  format=json)" ||
  { echo "obs smoke: odonn_cli table with metrics=/trace= failed" >&2
    exit 1; }
ro44="$(table_rows "$so44")"
if [ "$r44" != "$ro44" ]; then
  echo "obs smoke: rows differ between metrics-on and plain runs" >&2
  exit 1
fi
echo "obs smoke: metrics-on rows bitwise identical to plain run"
for needle in '"serve.requests"' '"pipeline.stages_run"' '"parallel.tasks"' \
              '"fft.plan_cache.hits"' '"stage:baseline/train"' \
              '"stage:ours-d/train"'; do
  grep -q "$needle" obs_artifacts/metrics.json ||
    { echo "obs smoke: metrics.json missing $needle" >&2; exit 1; }
done
grep -q '"traceEvents"' obs_artifacts/trace.json ||
  { echo "obs smoke: trace.json is not a Chrome-trace document" >&2
    exit 1; }
echo "obs smoke: metrics schema, per-job stage spans and trace all present"

# Parallel-table bench: records the sequential-vs-parallel wall-clock,
# re-proves row parity (the speedup shape check self-skips on hosts with
# fewer than 4 hardware threads, where thread parallelism cannot win),
# and bounds the observability overhead (<= 2% with detail + tracing on,
# rows still bitwise identical).
ODONN_THREADS=4 ./table_parallel bench.scale=smoke format=text ||
  { echo "table_parallel bench failed" >&2; exit 1; }

# Serve-cluster smoke: the load bench digests every response's detector
# sums (FNV-1a over the IEEE-754 bits, in submit order); that digest must
# be identical between a single-threaded single engine and a 4-thread
# 2-replica cluster — replication, routing and thread count move requests,
# never bits. The replicas=2 JSON record is kept for CI upload
# (build/serve_artifacts/), alongside the bench's own internal
# cross-replica digest and speedup shape checks.
serve_smoke() {  # $1=threads $2=replicas
  ODONN_THREADS="$1" ./serve_load grid=16 requests=64 replicas="$2" \
    format=json ||
    { echo "serve smoke: serve_load failed (threads=$1 replicas=$2)" >&2
      exit 1; }
}
rm -rf serve_artifacts && mkdir -p serve_artifacts
v1="$(serve_smoke 1 1)"
v2="$(serve_smoke 4 2)"
# The record proper is JSON; shape-check lines ("[check] ...") precede it.
printf '%s\n' "$v2" | grep -v '^\[' > serve_artifacts/serve_load.json
sd1="$(printf '%s\n' "$v1" | grep -o '"digest": "[0-9a-f]*"' | head -n 1)"
sd2="$(printf '%s\n' "$v2" | grep -o '"digest": "[0-9a-f]*"' | head -n 1)"
[ -n "$sd1" ] || { echo "serve smoke: no digest emitted" >&2; exit 1; }
if [ "$sd1" != "$sd2" ]; then
  echo "serve smoke: digests differ between single engine and cluster" >&2
  echo "threads=1 replicas=1: $sd1" >&2
  echo "threads=4 replicas=2: $sd2" >&2
  exit 1
fi
echo "serve smoke: cluster digest identical to single engine (threads 1 vs 4)"

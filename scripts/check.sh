#!/usr/bin/env sh
# Tier-1 verify: configure, build, ctest — the single entry point CI and
# humans run before merging. src/serve compiles with -Wall -Wextra -Werror
# (set in CMakeLists.txt), so any warning in the serving subsystem fails
# this script at the build step.
set -eu

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j"$(nproc 2>/dev/null || echo 2)"
cd build && ctest --output-on-failure -j"$(nproc 2>/dev/null || echo 2)"

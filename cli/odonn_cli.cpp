// odonn_cli — the single experiment driver over the pipeline API.
//
// Subcommands:
//   run    Compose and run a stage pipeline on one synthetic dataset.
//            odonn_cli run pipeline=train,sparsify,smooth,eval dataset=mnist
//            odonn_cli run recipe=baseline,ours-c sweep=0.25,0.5,0.75
//            odonn_cli run recipe=ours-d checkpoint_dir=ck resume=1
//            odonn_cli run pipeline=train,smooth,publish publish_dir=models
//          Replaces the old examples/train_and_smooth (recipe rows) and
//          examples/deployment_gap (crosstalk sweep) binaries.
//   table  Reproduce a paper table (II-V) at a bench scale. jobs=N runs N
//          recipes concurrently via pipeline::ParallelTableRunner — rows
//          (and their phase digests) are bitwise identical to jobs=1.
//            odonn_cli table dataset=mnist bench.scale=smoke jobs=4
//          Same driver the bench/table*_ binaries use.
//   serve  Load checkpoints into a ModelRegistry and push traffic through
//          a ServeCluster (replicas= continuously-batched InferenceEngine
//          replicas behind one submit facade), or enumerate the registered
//          variants. queue_depth= bounds each replica's admission queue and
//          backpressure=reject|block picks what a full queue does; results
//          are bitwise independent of replicas= and routing=.
//            odonn_cli serve model=models/pipeline-smoothed.odnn samples=256
//            odonn_cli serve model=m.odnn replicas=4 queue_depth=256
//            odonn_cli serve model=m.odnn routing=hash backpressure=block
//            odonn_cli serve model=a.odnn,b.odnn action=list
//   robust Monte-Carlo fabrication-variability evaluation (src/fab): R
//          perturbed realizations per model variant, common random numbers
//          across variants, yield statistics.
//            odonn_cli robust recipe=baseline,ours-c realizations=32
//              perturb='roughness(sigma_um=0.05,corr=2)+quantize(levels=8)'
//            odonn_cli robust model=models/ours-c-smoothed.odnn threads=4
//
// Robust (noise-in-the-loop) training: robust_train=1 swaps every train
// stage for robust_train, which averages gradients over
// train_realizations= fabrication realizations per step (antithetic=
// pairs them, train_resample=batch|epoch picks the sampling cadence):
//   odonn_cli run recipe=baseline robust_train=1 train_realizations=4
//   odonn_cli robust recipe=baseline robust_train=1 realizations=32
//
// Observability: every subcommand accepts metrics=<path>, trace=<path> and
// trace_stream=<path>. The first two switch detail collection + tracing on
// for the whole run and, on success, write the metrics registry (JSON by
// default, Prometheus text for .prom/.txt paths) and a Chrome-trace event
// file (load in chrome://tracing or ui.perfetto.dev). trace_stream=
// additionally streams every COMPLETED span to the file as one JSON line
// while the run executes, so long runs keep a complete record even after
// the 64k in-memory span buffer caps out. serve additionally accepts
// snapshot_s=SECONDS to print periodic engine snapshots while the bench
// runs — with replicas>1 the lines carry cluster aggregates (total queue
// depth, per-replica RPS). Collection never affects results: digests are
// bitwise identical with metrics on or off (scripts/check.sh asserts this).
//
// All arguments are key=value; unknown keys are rejected (Config::strict)
// and format=text|json|both selects the output. Exit code 0 on success,
// 1 on configuration errors.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "common/config.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "common/parallel.hpp"
#include "data/synthetic.hpp"
#include "data/transform.hpp"
#include "donn/serialize.hpp"
#include "fab/montecarlo.hpp"
#include "fab/spec.hpp"
#include "obs/http_server.hpp"
#include "obs/obs.hpp"
#include "optics/encode.hpp"
#include "tensor/stats.hpp"
#include "pipeline/parser.hpp"
#include "serve/cluster.hpp"
#include "serve/engine.hpp"
#include "serve/registry.hpp"
#include "train/trainer.hpp"

using namespace odonn;

namespace {

using Clock = std::chrono::steady_clock;

std::vector<std::string> with(std::vector<std::string> keys,
                              std::initializer_list<const char*> extra) {
  for (const char* key : extra) keys.emplace_back(key);
  return keys;
}

// ---------------------------------------------------------- observability

/// Export destinations parsed from the shared metrics=/trace=/trace_stream=
/// keys.
struct ObsOptions {
  std::string metrics_path;
  std::string trace_path;
  std::string trace_stream_path;
};

/// Reads metrics=/trace=/trace_stream= and, when any is set, switches on
/// detail collection (queue-wait timing) and span tracing for the whole
/// run. trace_stream= additionally attaches the streaming span sink up
/// front so spans flush to the file AS the run executes. Must run BEFORE
/// the subcommand so instrumentation covers it.
ObsOptions obs_options_from_config(const Config& cfg) {
  ObsOptions options;
  options.metrics_path = cfg.get_string("metrics", "");
  options.trace_path = cfg.get_string("trace", "");
  options.trace_stream_path = cfg.get_string("trace_stream", "");
  if (!options.metrics_path.empty() || !options.trace_path.empty() ||
      !options.trace_stream_path.empty()) {
    obs::set_detail(true);
    obs::set_tracing(true);
  }
  if (!options.trace_stream_path.empty()) {
    const std::filesystem::path parent =
        std::filesystem::path(options.trace_stream_path).parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent);
    obs::set_trace_flush_file(options.trace_stream_path);
  }
  return options;
}

void write_text_file(const std::string& path, const std::string& content) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot write " + path);
  out << content;
}

/// Writes the requested exports after a successful run. metrics= paths
/// ending in .prom/.txt get the Prometheus exposition; everything else
/// gets the combined JSON (registry + finished spans). trace= always gets
/// Chrome-trace format.
void write_obs_outputs(const ObsOptions& options) {
  if (!options.metrics_path.empty()) {
    const std::string ext =
        std::filesystem::path(options.metrics_path).extension().string();
    const bool prometheus = ext == ".prom" || ext == ".txt";
    write_text_file(options.metrics_path,
                    prometheus ? obs::MetricsRegistry::global().to_text()
                               : obs::export_json());
  }
  if (!options.trace_path.empty()) {
    write_text_file(options.trace_path, obs::trace_to_chrome_json());
  }
}

void print_usage() {
  std::printf(
      "usage: odonn_cli <run|table|serve|robust> [key=value ...]\n"
      "  run    pipeline=data,train,sparsify,smooth,eval | recipe=ours-c[,..]\n"
      "         dataset=mnist grid=48 samples=1200 epochs=3 seed=7\n"
      "         layers=N detector=standard|differential (stack depth and\n"
      "         readout strategy; differential scores each class by a +/-\n"
      "         detector-region pair)\n"
      "         data_dir=DIR sweep=0.25,0.5,0.75 checkpoint_dir=DIR\n"
      "         resume=0|1 publish_name=NAME publish_dir=DIR\n"
      "         robust_train=0|1 train_realizations=2 antithetic=0|1\n"
      "         train_antithetic=0|1 train_resample=batch|epoch\n"
      "         train_warmup=-1 train_lr_scale=0.1 train_crosstalk=0|1\n"
      "         perturb=SPEC format=text|json|both\n"
      "  table  dataset=mnist|fmnist|kmnist|emnist|all bench.scale=smoke|\n"
      "         default|paper grid= samples= layers= detector= seed= jobs=N\n"
      "         format= (jobs= runs N recipes concurrently; rows are bitwise\n"
      "         identical to jobs=1 for any ODONN_THREADS)\n"
      "  serve  model=PATH[,PATH...] action=bench|list grid=32 layers=\n"
      "         detector= samples=256\n"
      "         batch=64 seed=7 snapshot_s=0.5 format=text|json|both\n"
      "         replicas=1 routing=least-loaded|hash queue_depth=65536\n"
      "         backpressure=reject|block continuous=0|1 (default 1: admit\n"
      "         into the next batch the moment the kernel frees up)\n"
      "         http_port=0|PORT (observability HTTP plane; 0 = ephemeral)\n"
      "         http_wait_s=S (stay scrapable S seconds after the bench,\n"
      "         or until GET /quitquitquit) snapshot_file=PATH (JSONL\n"
      "         ClusterSnapshot sink, one line per snapshot_s tick)\n"
      "  all subcommands: metrics=PATH (.json or .prom/.txt) trace=PATH\n"
      "         export the metrics registry / Chrome-trace spans on success;\n"
      "         trace_stream=PATH streams completed spans as JSON lines\n"
      "         while the run executes (survives the 64k span-buffer cap)\n"
      "  robust model=PATH[,PATH...] | recipe=baseline,ours-c[,...]\n"
      "         perturb='roughness(sigma_um=0.05,corr=2)+quantize(levels=16)"
      "+misalign(sigma_px=0.25)'\n"
      "         realizations=32 yield_threshold=0.5 antithetic=0|1\n"
      "         robust_train=0|1 train_realizations=2 threads=N dataset=mnist\n"
      "         data_dir=DIR grid=32 layers= detector= samples=800 epochs=2\n"
      "         seed=7 format=\n");
}

// ------------------------------------------------------------------- run

struct RunJob {
  std::string label;
  pipeline::PipelineSpec spec;
};

int cmd_run(const Config& cfg) {
  cfg.strict(with(pipeline::config_keys(),
                  {"dataset", "samples", "format", "checkpoint_dir", "resume",
                   "publish_name", "publish_dir", "sweep", "metrics",
                   "trace", "trace_stream"}));
  const auto format = bench::parse_format(cfg);
  const bool print_text = format != bench::OutputFormat::Json;
  const bool print_json = format != bench::OutputFormat::Text;

  const train::RecipeOptions opt = pipeline::options_from_config(cfg);
  pipeline::DatasetStageOptions data_opt =
      pipeline::dataset_options_from_config(cfg);
  data_opt.grid = opt.model.grid.n;  // the model grid governs the resize
  const auto family = data_opt.family;
  const std::size_t grid = opt.model.grid.n;
  const std::size_t samples = data_opt.samples;

  // One pipeline per job: an explicit pipeline= is a single job, a
  // recipe= list is one job per recipe (the deployment-gap comparison is
  // `recipe=baseline,ours-c sweep=...`).
  std::vector<RunJob> jobs;
  if (cfg.has("pipeline")) {
    jobs.push_back({"pipeline", pipeline::spec_from_config(cfg)});
  } else {
    for (const std::string& name :
         split_csv(cfg.get_string("recipe", "ours-c"))) {
      const train::RecipeKind kind = train::parse_recipe(name);
      pipeline::PipelineSpec spec = pipeline::spec_for_recipe(kind);
      spec.flags.roughness = cfg.get_bool("roughness", spec.flags.roughness);
      spec.flags.intra = cfg.get_bool("intra", spec.flags.intra);
      if (cfg.get_bool("robust_train", false)) {
        pipeline::apply_robust_train(spec);
      }
      jobs.push_back({train::recipe_name(kind), spec});
    }
  }

  std::vector<double> sweep;
  if (cfg.has("sweep")) {
    for (const std::string& token : split_csv(cfg.get_string("sweep", ""))) {
      char* end = nullptr;
      const double value = std::strtod(token.c_str(), &end);
      if (end == token.c_str() || *end != '\0') {
        throw ConfigError("sweep: cannot parse '" + token + "' as double");
      }
      sweep.push_back(value);
    }
  }

  const std::string checkpoint_root = cfg.get_string("checkpoint_dir", "");
  const bool resume = cfg.get_bool("resume", false);
  if (resume && checkpoint_root.empty()) {
    throw ConfigError("resume=1 requires checkpoint_dir=");
  }

  if (print_text) {
    std::printf("dataset=%s grid=%zu samples=%zu seed=%llu\n",
                data::family_name(family), grid, samples,
                static_cast<unsigned long long>(opt.seed));
  }

  // Jobs whose stage list starts with a data stage produce their own
  // datasets inside the store; everyone else gets the shared pre-attached
  // pair (byte-identical arithmetic — both go through load_or_synthesize).
  const auto job_has_data_stage = [](const RunJob& job) {
    return std::find(job.spec.stages.begin(), job.spec.stages.end(),
                     pipeline::StageKind::Dataset) != job.spec.stages.end();
  };
  data::Dataset train_set;
  data::Dataset test_set;
  if (!std::all_of(jobs.begin(), jobs.end(), job_has_data_stage)) {
    auto prepared = pipeline::load_or_synthesize(data_opt);
    train_set = std::move(prepared.first);
    test_set = std::move(prepared.second);
  }

  auto registry = std::make_shared<serve::ModelRegistry>();

  std::string json = "{\"bench\": \"odonn_cli_run\", \"dataset\": " +
                     bench::json_quote(data::family_name(family)) +
                     ", \"grid\": " + std::to_string(grid) +
                     ", \"jobs\": [\n";
  bool first_job = true;

  for (const RunJob& job : jobs) {
    pipeline::BuildContext context;
    context.registry = registry;
    context.publish_name = cfg.get_string("publish_name", job.label);
    context.publish_dir = cfg.get_string("publish_dir", "");
    context.data = data_opt;
    context.robust = pipeline::robust_options_from_config(cfg);
    context.robust_train = pipeline::robust_train_options_from_config(cfg);
    pipeline::Pipeline pipe =
        pipeline::build_pipeline(job.spec, opt, context);

    pipeline::PipelineObserver observer;
    if (print_text) {
      observer.on_stage_end = [&](const pipeline::StageTiming& timing) {
        if (timing.skipped) {
          std::printf("[stage] %-9s %-9s (resumed from checkpoint)\n",
                      job.label.c_str(), timing.name.c_str());
        } else {
          std::printf("[stage] %-9s %-9s %.3fs\n", job.label.c_str(),
                      timing.name.c_str(), timing.seconds);
        }
      };
    }
    pipe.set_observer(std::move(observer));

    pipeline::ArtifactStore store;
    if (!job_has_data_stage(job)) store.set_data(&train_set, &test_set);
    pipeline::RunOptions run_options;
    if (!checkpoint_root.empty()) {
      run_options.checkpoint_dir =
          (std::filesystem::path(checkpoint_root) / job.label).string();
      run_options.resume = resume;
    }
    const auto timings = pipe.run(store, run_options);

    // Text row: metrics that exist (stage lists without eval/report simply
    // print fewer columns).
    if (print_text) {
      std::printf("%-9s |", job.label.c_str());
      for (const char* metric :
           {pipeline::artifacts::kAccuracy,
            pipeline::artifacts::kRoughnessBefore,
            pipeline::artifacts::kRoughnessAfter,
            pipeline::artifacts::kSparsity,
            pipeline::artifacts::kDeployedAccuracy,
            pipeline::artifacts::kDeployedAccuracyAfter2Pi,
            pipeline::artifacts::kRobustMean,
            pipeline::artifacts::kRobustYield,
            pipeline::artifacts::kRobustSmoothedMean,
            pipeline::artifacts::kRobustSmoothedYield}) {
        if (store.has_metric(metric)) {
          std::printf(" %s %.4f |", metric, store.metric(metric));
        }
      }
      std::printf("\n");
    }

    // Crosstalk sweep (the old deployment_gap example): deployed accuracy
    // of the smoothed (preferred) or trained model per strength.
    std::string sweep_json;
    if (!sweep.empty()) {
      const char* which = store.has_model(pipeline::artifacts::kSmoothedModel)
                              ? pipeline::artifacts::kSmoothedModel
                              : pipeline::artifacts::kMainModel;
      const donn::DonnModel& model = store.model(which);
      if (print_text) std::printf("%-9s | sweep(%s):", job.label.c_str(), which);
      for (const double strength : sweep) {
        donn::CrosstalkOptions ct = opt.crosstalk;
        ct.strength = strength;
        const double deployed =
            train::evaluate_deployed_accuracy(model, store.test(), ct);
        if (print_text) std::printf("  s=%.2f %.2f%%", strength, 100.0 * deployed);
        if (!sweep_json.empty()) sweep_json += ", ";
        sweep_json += "{\"strength\": " + bench::json_number(strength) +
                      ", \"deployed_accuracy\": " +
                      bench::json_number(deployed) + "}";
      }
      if (print_text) std::printf("\n");
    }

    if (print_json) {
      if (!first_job) json += ",\n";
      first_job = false;
      json += "  {\"job\": " + bench::json_quote(job.label) + ", \"stages\": [";
      for (std::size_t i = 0; i < timings.size(); ++i) {
        json += (i ? ", " : "") + std::string("{\"name\": ") +
                bench::json_quote(timings[i].name) +
                ", \"seconds\": " + bench::json_number(timings[i].seconds) +
                ", \"skipped\": " + (timings[i].skipped ? "true" : "false") +
                "}";
      }
      json += "], \"metrics\": {";
      bool first_metric = true;
      for (const std::string& metric : store.metric_names()) {
        if (!first_metric) json += ", ";
        first_metric = false;
        json += bench::json_quote(metric) + ": " +
                bench::json_number(store.metric(metric));
      }
      json += "}";
      if (!sweep_json.empty()) json += ", \"sweep\": [" + sweep_json + "]";
      json += "}";
    }
  }

  if (print_json) {
    json += "\n]}";
    std::printf("%s\n", json.c_str());
  }
  if (print_text && registry->size() > 0) {
    std::printf("registry:");
    for (const std::string& name : registry->names()) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\n");
  }
  return 0;
}

// ----------------------------------------------------------------- table

int cmd_table(const Config& cfg) {
  cfg.strict(with(bench::parallel_bench_config_keys(),
                  {"dataset", "metrics", "trace", "trace_stream"}));
  const bench::BenchConfig bc = bench::make_bench_config(cfg);
  const auto format = bench::parse_format(cfg);
  const std::string dataset = cfg.get_enum(
      "dataset", "mnist", {"mnist", "fmnist", "kmnist", "emnist", "all"});
  int failures = 0;
  if (dataset == "all") {
    for (const bench::TableSpec& spec : bench::all_table_specs()) {
      failures += bench::run_table_bench(spec, bc, format);
    }
  } else {
    failures += bench::run_table_bench(
        bench::table_spec(data::parse_family(dataset)), bc, format);
  }
  return failures > 0 ? 1 : 0;
}

// ----------------------------------------------------------------- serve

int cmd_serve(const Config& cfg) {
  cfg.strict({"model", "grid", "layers", "detector", "samples", "batch",
              "seed", "format", "action", "metrics", "trace", "trace_stream",
              "snapshot_s", "snapshot_file", "replicas", "routing",
              "queue_depth", "backpressure", "continuous", "http_port",
              "http_wait_s"});
  const auto format = bench::parse_format(cfg);
  const bool print_text = format != bench::OutputFormat::Json;
  const std::string action =
      cfg.get_enum("action", "bench", {"bench", "list"});
  const std::size_t samples =
      static_cast<std::size_t>(cfg.get_int("samples", 256));
  const std::size_t batch = static_cast<std::size_t>(cfg.get_int("batch", 64));
  const std::uint64_t seed = static_cast<std::uint64_t>(cfg.get_int("seed", 7));
  const long replicas_arg = cfg.get_int("replicas", 1);
  if (replicas_arg < 1 || replicas_arg > 256) {
    throw ConfigError("serve: replicas must be in [1, 256]");
  }
  const std::size_t replicas = static_cast<std::size_t>(replicas_arg);
  const std::string routing =
      cfg.get_enum("routing", "least-loaded", {"least-loaded", "hash"});
  const long queue_depth = cfg.get_int("queue_depth", 1 << 16);
  if (queue_depth < 1) {
    throw ConfigError("serve: queue_depth must be >= 1");
  }
  const std::string backpressure =
      cfg.get_enum("backpressure", "reject", {"reject", "block"});

  // http_port=PORT starts the observability HTTP plane for the run (0 =
  // ephemeral, resolved port is logged and reported in the JSON record).
  // http_wait_s=SECONDS keeps the process alive (cluster up, plane
  // scrapable) after the bench finishes, until the timeout or a
  // GET /quitquitquit — how scripts scrape a live run.
  const long http_port_arg = cfg.get_int("http_port", -1);
  if (http_port_arg < -1 || http_port_arg > 65535) {
    throw ConfigError("serve: http_port must be in [0, 65535]");
  }
  const bool http_enabled = http_port_arg >= 0;
  const double http_wait_s = cfg.get_double("http_wait_s", 0.0);
  if (http_wait_s > 0.0 && !http_enabled) {
    throw ConfigError("serve: http_wait_s requires http_port");
  }
  const double snapshot_s = cfg.get_double("snapshot_s", 0.0);
  const std::string snapshot_file = cfg.get_string("snapshot_file", "");
  if (!snapshot_file.empty() && snapshot_s <= 0.0) {
    throw ConfigError("serve: snapshot_file requires snapshot_s > 0");
  }

  auto registry = std::make_shared<serve::ModelRegistry>();
  if (cfg.has("model")) {
    for (const std::string& path : split_csv(cfg.get_string("model", ""))) {
      registry->load(std::filesystem::path(path).stem().string(), path);
    }
  } else {
    // No checkpoints given: serve a fresh (untrained) scaled model so the
    // command still demonstrates the registry -> engine path. layers= and
    // detector= pick the stack depth / readout strategy of that model.
    const std::size_t grid = static_cast<std::size_t>(cfg.get_int("grid", 32));
    donn::DonnConfig config = donn::DonnConfig::scaled(grid);
    const long layers =
        cfg.get_int("layers", static_cast<long>(config.num_layers));
    if (layers < 1 || layers > 64) {
      throw ConfigError("serve: layers must be in [1, 64]");
    }
    config.num_layers = static_cast<std::size_t>(layers);
    config.detector = donn::parse_detector_mode(
        cfg.get_enum("detector", "standard", {"standard", "differential"}));
    config.init = donn::PhaseInit::Uniform;
    Rng rng(seed);
    registry->add("default", donn::DonnModel(config, rng));
  }
  const std::vector<std::string> names = registry->names();
  ODONN_CHECK(!names.empty(), "serve: no models registered");
  const std::size_t grid = registry->get(names.front())->config().grid.n;

  // action=list: enumerate the registered variants (name + geometry)
  // instead of requiring the caller to already know the names.
  if (action == "list") {
    if (print_text) {
      std::printf("=== odonn_cli serve: registered models ===\n");
      std::printf("%-24s | %6s | %6s | %8s\n", "model", "grid", "layers",
                  "sparse");
    }
    std::string json = "{\"bench\": \"odonn_cli_serve_list\", \"models\": [\n";
    for (std::size_t i = 0; i < names.size(); ++i) {
      const auto model = registry->get(names[i]);
      if (print_text) {
        std::printf("%-24s | %6zu | %6zu | %8s\n", names[i].c_str(),
                    model->config().grid.n, model->num_layers(),
                    model->has_masks() ? "yes" : "no");
      }
      json += "  {\"model\": " + bench::json_quote(names[i]) +
              ", \"grid\": " + std::to_string(model->config().grid.n) +
              ", \"layers\": " + std::to_string(model->num_layers()) +
              ", \"sparse\": " + (model->has_masks() ? "true" : "false") +
              "}" + (i + 1 < names.size() ? ",\n" : "\n");
    }
    json += "]}";
    if (format != bench::OutputFormat::Text) std::printf("%s\n", json.c_str());
    return 0;
  }

  // Inputs are generated per model at that model's own grid (checkpoints
  // from different training runs may differ in size); the RNG is reseeded
  // so every model sees the same pixel stream.
  const auto make_inputs = [&](const optics::GridSpec& grid_spec) {
    Rng data_rng(seed + 1);
    std::vector<optics::Field> inputs;
    inputs.reserve(samples);
    for (std::size_t k = 0; k < samples; ++k) {
      MatrixD image(grid_spec.n, grid_spec.n);
      for (auto& v : image) v = data_rng.uniform();
      inputs.push_back(optics::encode_image(image, grid_spec));
    }
    return inputs;
  };

  serve::ClusterOptions cluster_options;
  cluster_options.replicas = replicas;
  cluster_options.routing = routing == "hash" ? serve::Routing::Hash
                                              : serve::Routing::LeastLoaded;
  cluster_options.continuous = cfg.get_bool("continuous", true);
  cluster_options.engine.max_batch = batch;
  cluster_options.engine.max_queue = static_cast<std::size_t>(queue_depth);
  cluster_options.engine.backpressure = backpressure == "block"
                                            ? serve::Backpressure::Block
                                            : serve::Backpressure::Reject;
  serve::ServeCluster cluster(registry, cluster_options);

  // snapshot_s=SECONDS: a background thread logs a cluster snapshot at
  // that period while the bench runs (observability only). With replicas>1
  // the line carries the cluster aggregates — total queue depth and
  // per-replica RPS — not just single-engine stats. snapshot_file=PATH
  // additionally appends one cluster_snapshot_json line per interval
  // (JSONL; parent directories are created). RAII so the thread is joined
  // even when the bench throws.
  struct SnapshotLoop {
    std::atomic<bool> running{true};
    std::thread thread;
    ~SnapshotLoop() {
      running.store(false);
      if (thread.joinable()) thread.join();
    }
  } snapshots;
  if (snapshot_s > 0.0) {
    std::shared_ptr<std::ofstream> sink;
    if (!snapshot_file.empty()) {
      const std::filesystem::path path(snapshot_file);
      if (path.has_parent_path()) {
        std::filesystem::create_directories(path.parent_path());
      }
      sink = std::make_shared<std::ofstream>(path);
      if (!*sink) {
        throw IoError("serve: cannot open snapshot_file " + snapshot_file);
      }
    }
    snapshots.thread =
        std::thread([&cluster, &snapshots, snapshot_s, sink] {
          const auto tick = std::chrono::milliseconds(50);
          auto next =
              Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(snapshot_s));
          while (snapshots.running.load(std::memory_order_relaxed)) {
            std::this_thread::sleep_for(tick);
            if (Clock::now() < next) continue;
            next =
                Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(snapshot_s));
            const auto snap = cluster.stats();
            if (sink) {
              *sink << serve::cluster_snapshot_json(snap) << "\n";
              sink->flush();
            }
            auto line = log::info();
            line << "serve snapshot: requests=" << snap.requests
                 << " errors=" << snap.errors << " rejected=" << snap.rejected
                 << " p50_ms=" << snap.p50_ms << " p99_ms=" << snap.p99_ms
                 << " rps=" << snap.throughput_rps
                 << " mean_batch=" << snap.mean_batch_size
                 << " queue=" << snap.queue_depth;
            if (cluster.replica_count() > 1) {
              for (std::size_t r = 0; r < snap.replicas.size(); ++r) {
                line << " replica" << r << "=(rps="
                     << snap.replicas[r].throughput_rps << " queue="
                     << snap.replica_queue_depth[r] << ")";
              }
            }
          }
        });
  }

  // The HTTP plane is declared AFTER the cluster and snapshot loop so it
  // stops first: /snapshot handlers referencing the live cluster can never
  // run against a destroyed one. It only reads observability state, so
  // prediction digests are bitwise identical whether it is on or off.
  struct HttpPlane {
    obs::HttpServer server;
    std::mutex mutex;
    std::condition_variable cv;
    bool quit = false;
    std::atomic<bool> draining{false};
    explicit HttpPlane(obs::HttpServerOptions options)
        : server(std::move(options)) {}
  };
  std::unique_ptr<HttpPlane> http;
  if (http_enabled) {
    obs::HttpServerOptions server_options;
    server_options.port = static_cast<std::uint16_t>(http_port_arg);
    http = std::make_unique<HttpPlane>(server_options);
    obs::ObsRouteOptions routes;
    HttpPlane* plane = http.get();
    serve::ServeCluster* cluster_ptr = &cluster;
    routes.health_extra = [plane, cluster_ptr, replicas] {
      return "\"replicas\": " + std::to_string(replicas) +
             ", \"queue_depth\": " + std::to_string(cluster_ptr->pending()) +
             ", \"draining\": " +
             (plane->draining.load(std::memory_order_relaxed) ? "true"
                                                              : "false");
    };
    obs::register_obs_routes(http->server, std::move(routes));
    http->server.handle("/snapshot", [cluster_ptr](const obs::HttpRequest&) {
      obs::HttpResponse response;
      response.content_type = "application/json";
      response.body = serve::cluster_snapshot_json(cluster_ptr->stats());
      return response;
    });
    http->server.handle("/quitquitquit", [plane](const obs::HttpRequest&) {
      {
        std::lock_guard<std::mutex> lock(plane->mutex);
        plane->quit = true;
      }
      plane->cv.notify_all();
      obs::HttpResponse response;
      response.body = "shutting down\n";
      return response;
    });
    http->server.start();
    log::info() << "serve: http plane listening on 127.0.0.1:"
                << http->server.port();
  }

  if (print_text) {
    std::printf("=== odonn_cli serve ===\n");
    std::printf(
        "models=%zu grid=%zu samples=%zu batch=%zu replicas=%zu "
        "routing=%s continuous=%d queue_depth=%ld backpressure=%s "
        "threads=%zu\n\n",
        names.size(), grid, samples, batch, replicas, routing.c_str(),
        cluster_options.continuous ? 1 : 0, queue_depth,
        backpressure.c_str(), thread_count());
    std::printf("%-24s | %12s | %8s | %8s | %10s\n", "model", "samples/sec",
                "p50 ms", "p99 ms", "mean batch");
  }
  std::string json = "{\"bench\": \"odonn_cli_serve\", \"grid\": " +
                     std::to_string(grid) +
                     ", \"samples\": " + std::to_string(samples) +
                     ", \"replicas\": " + std::to_string(replicas) +
                     ", \"routing\": " + bench::json_quote(routing) +
                     ", \"continuous\": " +
                     (cluster_options.continuous ? "true" : "false") +
                     ", \"threads\": " + std::to_string(thread_count());
  if (http_enabled) {
    json += ", \"http_port\": " + std::to_string(http->server.port());
  }
  json += ", \"rows\": [\n";
  const auto attr_row =
      [](const serve::ServeCluster::ClusterSnapshot::AttributionSummary& s) {
        return "{\"p50_ms\": " + bench::json_number(s.p50_ms) +
               ", \"p99_ms\": " + bench::json_number(s.p99_ms) +
               ", \"p999_ms\": " + bench::json_number(s.p999_ms) + "}";
      };
  for (std::size_t i = 0; i < names.size(); ++i) {
    const std::string& name = names[i];
    const auto inputs = make_inputs(registry->get(name)->config().grid);
    for (std::size_t k = 0; k < std::min<std::size_t>(16, samples); ++k) {
      cluster.submit(name, inputs[k]).get();  // warm-up
    }
    cluster.reset_stats();
    std::vector<std::future<serve::PredictResult>> futures;
    futures.reserve(samples);
    const Clock::time_point start = Clock::now();
    for (const auto& input : inputs) {
      futures.push_back(cluster.submit(name, input));
    }
    // Digest in submit order: a deterministic function of seed + grid
    // alone, so it must be bitwise identical across replicas=, routing=,
    // ODONN_THREADS and http_port= on/off (scripts/check.sh compares).
    std::uint64_t digest = kFnv1aBasis;
    for (auto& future : futures) {
      const serve::PredictResult result = future.get();
      for (const double v : result.detector_sums) {
        digest = fnv1a_mix(digest, v);
      }
    }
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    const auto snap = cluster.stats();
    const double throughput = static_cast<double>(samples) / elapsed;
    if (print_text) {
      std::printf("%-24s | %12.1f | %8.3f | %8.3f | %10.1f\n", name.c_str(),
                  throughput, snap.p50_ms, snap.p99_ms, snap.mean_batch_size);
    }
    json += std::string("  {\"model\": ") + bench::json_quote(name) +
            ", \"samples_per_sec\": " + bench::json_number(throughput) +
            ", \"p50_ms\": " + bench::json_number(snap.p50_ms) +
            ", \"p99_ms\": " + bench::json_number(snap.p99_ms) +
            ", \"p999_ms\": " + bench::json_number(snap.p999_ms) +
            ", \"mean_batch\": " + bench::json_number(snap.mean_batch_size) +
            ", \"attr\": {\"queue_wait\": " + attr_row(snap.queue_wait) +
            ", \"batch_wait\": " + attr_row(snap.batch_wait) +
            ", \"compute\": " + attr_row(snap.compute) + "}" +
            ", \"digest\": \"" + bench::hex64(digest) + "\"}" +
            (i + 1 < names.size() ? ",\n" : "\n");
  }
  json += "]}";
  if (format != bench::OutputFormat::Text) std::printf("%s\n", json.c_str());

  // http_wait_s linger: output is flushed, the cluster stays up, and the
  // HTTP plane keeps answering until the timeout or a GET /quitquitquit —
  // the hook scripts/check.sh uses to scrape a LIVE process.
  if (http && http_wait_s > 0.0) {
    std::fflush(stdout);
    std::unique_lock<std::mutex> lock(http->mutex);
    http->cv.wait_for(
        lock,
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(http_wait_s)),
        [&] { return http->quit; });
  }
  if (http) http->draining.store(true, std::memory_order_relaxed);
  return 0;
}

// ---------------------------------------------------------------- robust

int cmd_robust(const Config& cfg) {
  cfg.strict(with(pipeline::config_keys(),
                  {"dataset", "samples", "model", "format", "threads",
                   "metrics", "trace", "trace_stream"}));
  // Pin the pool size before any parallel work runs (the robust CLI
  // exposes the thread count directly; ODONN_THREADS remains the default).
  if (cfg.has("threads")) {
    const long threads = cfg.get_int("threads", 0);
    if (threads < 1 || threads > 1024) {
      throw ConfigError("robust: threads must be in [1, 1024]");
    }
    set_thread_count(static_cast<std::size_t>(threads));
  }
  const auto format = bench::parse_format(cfg);
  const bool print_text = format != bench::OutputFormat::Json;
  const bool print_json = format != bench::OutputFormat::Text;

  const train::RecipeOptions opt = pipeline::options_from_config(cfg);
  pipeline::DatasetStageOptions data_opt =
      pipeline::dataset_options_from_config(cfg);
  const pipeline::RobustStageOptions robust_opt =
      pipeline::robust_options_from_config(cfg);
  const std::string perturb_spec = robust_opt.perturb.empty()
                                       ? fab::kDefaultPerturbationSpec
                                       : robust_opt.perturb;
  const fab::PerturbationStack stack =
      fab::parse_perturbation_stack(perturb_spec);

  // Variants: checkpoints when model= is given, else recipe-trained models
  // ("<recipe>" raw masks + "<recipe>-smoothed" after 2*pi optimization).
  std::vector<std::pair<std::string, std::shared_ptr<const donn::DonnModel>>>
      variants;
  data::Dataset test_set;
  if (cfg.has("model") && cfg.has("recipe")) {
    // Fail fast instead of silently ignoring one of them (the repo-wide
    // Config::strict contract).
    throw ConfigError(
        "robust: pass either model= (evaluate checkpoints) or recipe= "
        "(train then evaluate), not both");
  }
  if (cfg.has("model") && cfg.get_bool("robust_train", false)) {
    // Same contract: checkpoints are already trained, so a silently
    // ignored robust_train=1 would misreport what was evaluated.
    throw ConfigError(
        "robust: robust_train=1 requires recipe= (model= checkpoints are "
        "already trained)");
  }
  if (cfg.has("model")) {
    for (const std::string& path : split_csv(cfg.get_string("model", ""))) {
      variants.emplace_back(
          std::filesystem::path(path).stem().string(),
          std::make_shared<const donn::DonnModel>(donn::load_model(path)));
    }
    const std::size_t grid = variants.front().second->config().grid.n;
    for (const auto& [name, model] : variants) {
      if (model->config().grid.n != grid) {
        throw ConfigError("robust: model '" + name +
                          "' has a different grid than the first model; "
                          "evaluate equal-grid variants together");
      }
    }
    data_opt.grid = grid;
    test_set = pipeline::load_eval_set(data_opt);
  } else {
    data_opt.grid = opt.model.grid.n;
    auto prepared = pipeline::load_or_synthesize(data_opt);
    data::Dataset train_set = std::move(prepared.first);
    test_set = std::move(prepared.second);
    const bool robust_train = cfg.get_bool("robust_train", false);
    pipeline::BuildContext train_context;
    train_context.robust_train =
        pipeline::robust_train_options_from_config(cfg);
    for (const std::string& name :
         split_csv(cfg.get_string("recipe", "baseline,ours-c"))) {
      const train::RecipeKind kind = train::parse_recipe(name);
      pipeline::PipelineSpec spec = pipeline::spec_for_recipe(kind);
      // Only the model-producing stages: robust evaluation replaces the
      // recipe's own eval/report tail.
      std::erase_if(spec.stages, [](pipeline::StageKind stage) {
        return stage != pipeline::StageKind::Train &&
               stage != pipeline::StageKind::Sparsify &&
               stage != pipeline::StageKind::Smooth;
      });
      if (robust_train) pipeline::apply_robust_train(spec);
      pipeline::ArtifactStore store;
      store.set_data(&train_set, &test_set);
      pipeline::build_pipeline(spec, opt, train_context).run(store);
      const std::string label = std::string(train::recipe_name(kind)) +
                                (robust_train ? "-robust" : "");
      variants.emplace_back(
          label, std::make_shared<const donn::DonnModel>(
                     store.model(pipeline::artifacts::kMainModel)));
      variants.emplace_back(
          label + "-smoothed",
          std::make_shared<const donn::DonnModel>(
              store.model(pipeline::artifacts::kSmoothedModel)));
    }
  }

  fab::MonteCarloOptions mc;
  mc.realizations = robust_opt.realizations;
  mc.seed = opt.seed + 1000;  // matches RobustEvalStage's stream
  mc.antithetic = robust_opt.antithetic;
  mc.yield_threshold = robust_opt.yield_threshold;
  mc.crosstalk = opt.crosstalk;
  const fab::MonteCarloEvaluator evaluator(test_set, mc);

  std::vector<std::pair<std::string, const donn::DonnModel*>> refs;
  refs.reserve(variants.size());
  for (const auto& [name, model] : variants) {
    refs.emplace_back(name, model.get());
  }

  if (print_text) {
    std::printf("=== odonn_cli robust ===\n");
    std::printf(
        "grid=%zu eval_samples=%zu realizations=%zu threads=%zu seed=%llu\n",
        test_set.image(0).rows(), test_set.size(), mc.realizations,
        thread_count(), static_cast<unsigned long long>(mc.seed));
    std::printf("perturb=%s\n\n", perturb_spec.c_str());
    std::printf("%-20s | %6s | %6s | %6s | %6s | %6s | %6s | %5s\n", "model",
                "clean", "mean", "std", "min", "p50", "p95", "yield");
  }

  const Clock::time_point start = Clock::now();
  const auto reports = evaluator.compare(refs, stack);
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::string json =
      "{\"bench\": \"odonn_cli_robust\", \"grid\": " +
      std::to_string(test_set.image(0).rows()) +
      ", \"eval_samples\": " + std::to_string(test_set.size()) +
      ", \"realizations\": " + std::to_string(mc.realizations) +
      ", \"threads\": " + std::to_string(thread_count()) +
      ", \"yield_threshold\": " + bench::json_number(mc.yield_threshold) +
      ", \"perturb\": " + bench::json_quote(perturb_spec) +
      ", \"seconds\": " + bench::json_number(elapsed) + ", \"rows\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const fab::RobustnessReport& r = reports[i];
    if (print_text) {
      std::printf(
          "%-20s | %5.2f%% | %5.2f%% | %6.4f | %5.2f%% | %5.2f%% | %5.2f%% "
          "| %5.2f\n",
          r.model_name.c_str(), 100.0 * r.clean_accuracy, 100.0 * r.mean,
          r.stddev, 100.0 * r.min, 100.0 * r.p50, 100.0 * r.p95, r.yield);
    }
    char digest[32];
    std::snprintf(digest, sizeof(digest), "%016llx",
                  static_cast<unsigned long long>(r.digest()));
    json += "  {\"model\": " + bench::json_quote(r.model_name) +
            ", \"clean\": " + bench::json_number(r.clean_accuracy) +
            ", \"mean\": " + bench::json_number(r.mean) +
            ", \"std\": " + bench::json_number(r.stddev) +
            ", \"min\": " + bench::json_number(r.min) +
            ", \"p50\": " + bench::json_number(r.p50) +
            ", \"p95\": " + bench::json_number(r.p95) +
            ", \"yield\": " + bench::json_number(r.yield) +
            ", \"digest\": " + bench::json_quote(digest) + "}" +
            (i + 1 < reports.size() ? ",\n" : "\n");
  }
  json += "]}";
  if (print_json) std::printf("%s\n", json.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 1;
  }
  const std::string command = argv[1];
  try {
    const Config cfg = Config::from_args(argc - 1, argv + 1);
    if (command != "run" && command != "table" && command != "serve" &&
        command != "robust") {
      std::fprintf(stderr, "unknown subcommand '%s'\n\n", command.c_str());
      print_usage();
      return 1;
    }
    // Enable collection before the command runs, export after it succeeds.
    const ObsOptions obs_options = obs_options_from_config(cfg);
    int code = 1;
    try {
      if (command == "run") code = cmd_run(cfg);
      if (command == "table") code = cmd_table(cfg);
      if (command == "serve") code = cmd_serve(cfg);
      if (command == "robust") code = cmd_robust(cfg);
    } catch (...) {
      // The streamed spans written so far are exactly what makes a failed
      // long run diagnosable — flush and close before rethrowing.
      obs::close_trace_flush_file();
      throw;
    }
    obs::close_trace_flush_file();
    if (code == 0) write_obs_outputs(obs_options);
    return code;
  } catch (const Error& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}

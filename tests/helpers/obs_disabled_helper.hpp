// Declaration for the one TU compiled with -DODONN_OBS_DISABLE (see the
// obs_test block in CMakeLists.txt). Lives in tests/helpers/ so the
// tests/*.cpp glob does not turn it into its own test binary.
#pragma once

namespace odonn::obs_disabled {

/// Runs every ODONN_OBS_* macro — compiled in disabled mode — with
/// side-effecting name/value arguments. Returns how many times those
/// arguments were evaluated; the disabled macros must never evaluate
/// them, so the answer is 0 and nothing appears in the registry.
int run_disabled_instrumentation();

}  // namespace odonn::obs_disabled

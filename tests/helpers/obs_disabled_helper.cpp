// Compiled with -DODONN_OBS_DISABLE (CMakeLists.txt sets the definition on
// this TU only): proves the instrumentation macros collapse to true no-ops
// in that mode — name and value expressions unevaluated, nothing
// registered, no trace events.
#include "obs_disabled_helper.hpp"

#include <cstdint>
#include <string>

#include "obs/obs.hpp"

#ifndef ODONN_OBS_DISABLE
#error "obs_disabled_helper.cpp must be compiled with ODONN_OBS_DISABLE"
#endif

namespace odonn::obs_disabled {

int run_disabled_instrumentation() {
  int evaluations = 0;
  const auto touch = [&evaluations]() -> std::uint64_t {
    ++evaluations;
    return 1;
  };
  (void)touch;  // every use below is inside a disabled macro
  ODONN_OBS_COUNT("disabled.count", touch());
  ODONN_OBS_GAUGE_SET("disabled.gauge", touch());
  ODONN_OBS_HIST("disabled.hist", touch());
  {
    ODONN_OBS_SPAN(span, "disabled.span" + std::to_string(touch()));
  }
  return evaluations;
}

}  // namespace odonn::obs_disabled

// Tests for src/common: RNG determinism and distributions, config parsing,
// parallel loops, logging, error machinery.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"

namespace odonn {
namespace {

TEST(Error, CheckMacroThrowsWithLocation) {
  try {
    ODONN_CHECK(1 == 2, "numbers disagree");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("numbers disagree"), std::string::npos);
    EXPECT_NE(what.find("common_test.cpp"), std::string::npos);
  }
}

TEST(Error, ShapeCheckThrowsShapeError) {
  EXPECT_THROW(ODONN_CHECK_SHAPE(false, "bad shape"), ShapeError);
}

TEST(Error, HierarchyCatchesSubclasses) {
  EXPECT_THROW(throw ConfigError("x"), Error);
  EXPECT_THROW(throw IoError("x"), Error);
  EXPECT_THROW(throw NumericsError("x"), Error);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum_sq += u * u;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 5e-3);
  EXPECT_NEAR(var, 1.0 / 12.0, 5e-3);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, GumbelMeanIsEulerGamma) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.gumbel();
  EXPECT_NEAR(sum / n, 0.5772, 0.02);
}

TEST(Rng, UniformIndexCoversRangeUnbiased) {
  Rng rng(23);
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(7)];
  for (int c : counts) EXPECT_NEAR(c, n / 7, n / 7 / 5);
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_index(0), Error);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  rng.shuffle(v);
  std::set<int> seen(v.begin(), v.end());
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(5);
  Rng child = parent.split();
  // The child stream should not reproduce the parent's outputs.
  Rng parent2(5);
  (void)parent2.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next_u64() == parent.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Config, ParsesKeyValueArgs) {
  const char* argv[] = {"prog", "grid=64", "--lr=0.5", "name=test"};
  const Config cfg = Config::from_args(4, argv);
  EXPECT_EQ(cfg.get_int("grid", 0), 64);
  EXPECT_DOUBLE_EQ(cfg.get_double("lr", 0.0), 0.5);
  EXPECT_EQ(cfg.get_string("name", ""), "test");
  EXPECT_EQ(cfg.get_int("missing", 7), 7);
}

TEST(Config, RejectsMalformedArgs) {
  const char* argv[] = {"prog", "no-equals"};
  EXPECT_THROW(Config::from_args(2, argv), ConfigError);
}

TEST(Config, RejectsBadTypedValues) {
  const char* argv[] = {"prog", "x=abc"};
  const Config cfg = Config::from_args(2, argv);
  EXPECT_THROW(cfg.get_int("x", 0), ConfigError);
  EXPECT_THROW(cfg.get_double("x", 0.0), ConfigError);
  EXPECT_THROW(cfg.get_bool("x", false), ConfigError);
}

TEST(Config, ParsesBools) {
  const char* argv[] = {"prog", "a=true", "b=0", "c=YES", "d=off"};
  const Config cfg = Config::from_args(5, argv);
  EXPECT_TRUE(cfg.get_bool("a", false));
  EXPECT_FALSE(cfg.get_bool("b", true));
  EXPECT_TRUE(cfg.get_bool("c", false));
  EXPECT_FALSE(cfg.get_bool("d", true));
}

TEST(Config, StrictAcceptsKnownAndRejectsUnknownKeys) {
  const char* argv[] = {"prog", "grid=64", "epochs=3"};
  const Config cfg = Config::from_args(3, argv);
  EXPECT_NO_THROW(cfg.strict({"grid", "epochs", "seed"}));
  // A typo'd key must fail fast instead of being silently ignored, and the
  // message must name both the offender and the accepted set.
  try {
    cfg.strict({"grid", "seed"});
    FAIL() << "strict() accepted an unknown key";
  } catch (const ConfigError& error) {
    EXPECT_NE(std::string(error.what()).find("epochs"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("grid"), std::string::npos);
  }
}

TEST(Config, StrictIgnoresEnvironmentOnlyKeys) {
  // strict() validates explicitly-set keys; env-provided values for keys
  // outside the allowed set must not fail a binary that never reads them.
  const Config cfg;
  EXPECT_NO_THROW(cfg.strict({"grid"}));
}

TEST(Config, GetEnumValidatesAgainstAllowedSet) {
  const char* argv[] = {"prog", "format=json", "scale=warp"};
  const Config cfg = Config::from_args(3, argv);
  EXPECT_EQ(cfg.get_enum("format", "text", {"text", "json", "both"}), "json");
  EXPECT_EQ(cfg.get_enum("missing", "both", {"text", "json", "both"}), "both");
  try {
    cfg.get_enum("scale", "default", {"smoke", "default", "paper"});
    FAIL() << "get_enum accepted a value outside the allowed set";
  } catch (const ConfigError& error) {
    EXPECT_NE(std::string(error.what()).find("warp"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("smoke"), std::string::npos);
  }
}

TEST(Parallel, ForCoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, SumIsDeterministicAndCorrect) {
  const auto f = [](std::size_t i) {
    return std::sin(static_cast<double>(i)) * 1e-3;
  };
  const double a = parallel_sum(0, 100000, f);
  const double b = parallel_sum(0, 100000, f);
  EXPECT_EQ(a, b);  // bitwise deterministic
  double serial = 0.0;
  for (std::size_t i = 0; i < 100000; ++i) serial += f(i);
  EXPECT_NEAR(a, serial, 1e-9);
}

TEST(Parallel, ExceptionsPropagateToCaller) {
  EXPECT_THROW(parallel_for(0, 100,
                            [](std::size_t i) {
                              if (i == 50) throw Error("boom");
                            }),
               Error);
}

TEST(Parallel, NestedCallsRunInline) {
  std::atomic<int> total{0};
  parallel_for(0, 8, [&](std::size_t) {
    parallel_for(0, 8, [&](std::size_t) { total++; });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(Parallel, SumFixedSliceLayoutIsBitwiseReproducible) {
  const auto f = [](std::size_t i) {
    return std::sin(static_cast<double>(i)) * 1e-3;
  };
  // The documented fixed-slice layout: grain-wide slices until
  // kParallelSumChunkCap binds, then uniformly grown slices; slice sums
  // accumulate left-to-right and combine in slice order. A pure function
  // of (total, grain) — the sequential replica below must match the
  // parallel result bit for bit whether or not the cap binds, and for any
  // worker count.
  const auto reference = [&](std::size_t total, std::size_t grain) {
    std::size_t step = grain;
    if ((total + grain - 1) / grain > kParallelSumChunkCap) {
      step = (total + kParallelSumChunkCap - 1) / kParallelSumChunkCap;
    }
    double sum = 0.0;
    for (std::size_t lo = 0; lo < total; lo += step) {
      const std::size_t hi = std::min(total, lo + step);
      double acc = 0.0;
      for (std::size_t i = lo; i < hi; ++i) acc += f(i);
      sum += acc;
    }
    return sum;
  };
  const std::vector<std::pair<std::size_t, std::size_t>> cases = {
      {200000, 1},   // cap binds hard (200000 grain-chunks -> 1024 slices)
      {200000, 64},  // cap binds (3125 -> 1024)
      {1000, 1},     // cap does not bind
      {1000, 64},    // small: a handful of grain-wide slices
  };
  for (const auto& [total, grain] : cases) {
    const double once = parallel_sum(0, total, f, grain);
    EXPECT_EQ(once, parallel_sum(0, total, f, grain));  // deterministic
    EXPECT_EQ(once, reference(total, grain));           // documented layout
  }
}

TEST(Parallel, SetThreadCountSameValueIsNoopAndConflictIsCatchable) {
  // Build the pool at >= 2 workers: request 2 if it is not built yet (on a
  // 1-core host a pool never builds while the budget is 1), then force the
  // build with a fan-out-capable loop.
  try {
    set_thread_count(2);
  } catch (const ConfigError&) {
    // Already built by an earlier test at its own size — equally fine.
  }
  parallel_for(0, 64, [](std::size_t) {});
  const std::size_t current = thread_count();
  ASSERT_GE(current, 2u);

  // Re-stating the current size after the pool exists must be a no-op (the
  // CLI parses threads= after warm-up code may already have fanned out)...
  EXPECT_NO_THROW(set_thread_count(current));
  // ...while a conflicting size is a catchable ConfigError naming both
  // counts, not a bare check failure.
  try {
    set_thread_count(current + 1);
    FAIL() << "conflicting set_thread_count did not throw";
  } catch (const ConfigError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find(std::to_string(current + 1)), std::string::npos);
    EXPECT_NE(what.find(std::to_string(current)), std::string::npos);
  }
  EXPECT_THROW(set_thread_count(0), ConfigError);
}

TEST(Parallel, TasksRunEveryTaskAndNestedLoopsStillFanOut) {
  // After the previous test the pool has >= 2 workers, so this exercises
  // the genuinely concurrent path: 6 tasks, at most 3 in flight, each
  // running an inner parallel_for under its per-task budget.
  static constexpr std::size_t kTasks = 6;
  static constexpr std::size_t kN = 500;
  std::vector<std::vector<int>> hits(kTasks, std::vector<int>(kN, 0));
  std::vector<std::function<void()>> tasks;
  for (std::size_t t = 0; t < kTasks; ++t) {
    tasks.push_back([&hits, t] {
      parallel_for(0, kN, [&hits, t](std::size_t i) { hits[t][i]++; });
    });
  }
  parallel_tasks(std::move(tasks), /*max_concurrent=*/3, /*inner_budget=*/2);
  for (const auto& task_hits : hits) {
    for (const int h : task_hits) EXPECT_EQ(h, 1);
  }
}

TEST(Parallel, TasksSequentialLaneRunsInIndexOrder) {
  std::vector<int> order;
  std::vector<std::function<void()>> tasks;
  for (int t = 0; t < 4; ++t) {
    tasks.push_back([&order, t] { order.push_back(t); });
  }
  parallel_tasks(std::move(tasks), /*max_concurrent=*/1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Parallel, TasksPropagateTheLowestIndexError) {
  std::vector<std::function<void()>> tasks;
  tasks.push_back([] {});
  tasks.push_back([] { throw NumericsError("lane exploded"); });
  tasks.push_back([] {});
  try {
    parallel_tasks(std::move(tasks), 2);
    FAIL() << "expected the lane error to propagate to the caller";
  } catch (const NumericsError& error) {
    EXPECT_NE(std::string(error.what()).find("lane exploded"),
              std::string::npos);
  }
}

TEST(Log, ParseLevelAcceptsKnownNames) {
  EXPECT_EQ(log::parse_level("error"), log::Level::Error);
  EXPECT_EQ(log::parse_level("WARN"), log::Level::Warn);
  EXPECT_EQ(log::parse_level("Info"), log::Level::Info);
  EXPECT_EQ(log::parse_level("debug"), log::Level::Debug);
  EXPECT_THROW(log::parse_level("loud"), ConfigError);
}

TEST(Log, SetLevelRoundTrips) {
  const auto old = log::level();
  log::set_level(log::Level::Error);
  EXPECT_EQ(log::level(), log::Level::Error);
  log::set_level(old);
}

}  // namespace
}  // namespace odonn

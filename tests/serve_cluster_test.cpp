// Tests for src/serve/cluster and the continuous-batching / admission-control
// engine features it builds on: mid-batch arrivals land in the NEXT batch,
// Reject backpressure throws the typed OverloadError, Block backpressure
// parks submitters until a slot frees, shutdown drains every admitted
// future, routing policies place load without changing results, and the
// cluster's predictions stay bit-for-bit identical to the single-engine
// path. Per-replica labelled obs instruments are checked against the global
// metrics registry (suffix convention, no new registry API).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "donn/model.hpp"
#include "obs/http_server.hpp"
#include "obs/obs.hpp"
#include "optics/encode.hpp"
#include "serve/cluster.hpp"
#include "serve/engine.hpp"
#include "serve/registry.hpp"

namespace odonn::serve {
namespace {

donn::DonnConfig tiny_config(std::size_t n = 16, std::size_t layers = 2) {
  donn::DonnConfig cfg = donn::DonnConfig::scaled(n);
  cfg.num_layers = layers;
  cfg.init = donn::PhaseInit::Uniform;
  return cfg;
}

donn::DonnModel make_model(const donn::DonnConfig& cfg, std::uint64_t seed) {
  Rng rng(seed);
  return donn::DonnModel(cfg, rng);
}

std::vector<optics::Field> random_inputs(const optics::GridSpec& grid,
                                         std::size_t count,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<optics::Field> inputs;
  inputs.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    MatrixD image(grid.n, grid.n);
    for (auto& v : image) v = rng.uniform();
    inputs.push_back(optics::encode_image(image, grid));
  }
  return inputs;
}

/// Test gate wired into EngineOptions::on_batch_start: every batch blocks
/// at the gate until release() — how the tests freeze drain threads at a
/// deterministic point (batch taken, kernel not yet run). Thread-safe:
/// clusters call the hook from several drain threads.
struct BatchGate {
  std::mutex mutex;
  std::condition_variable cv;
  bool released = false;
  std::vector<std::size_t> sizes;  ///< batch sizes in hook-call order

  std::function<void(std::size_t)> hook() {
    return [this](std::size_t size) {
      std::unique_lock<std::mutex> lock(mutex);
      sizes.push_back(size);
      cv.notify_all();  // wake waiters watching `sizes`
      cv.wait(lock, [this] { return released; });
    };
  }

  /// Blocks until `count` batches have reached the gate.
  void await_batches(std::size_t count) {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return sizes.size() >= count; });
  }

  void release() {
    std::lock_guard<std::mutex> lock(mutex);
    released = true;
    cv.notify_all();
  }
};

TEST(ContinuousBatching, MidBatchArrivalsServedTogetherInNextBatch) {
  auto registry = std::make_shared<ModelRegistry>();
  const donn::DonnConfig cfg = tiny_config(16, 2);
  registry->add("m", make_model(cfg, 201));
  const auto inputs = random_inputs(cfg.grid, 4, 202);

  BatchGate gate;
  EngineOptions options;
  options.continuous = true;
  options.max_batch = 64;
  options.on_batch_start = gate.hook();
  InferenceEngine engine(registry, options);

  // Request 0 forms batch 1 and freezes at the gate (kernel "busy").
  std::vector<std::future<PredictResult>> futures;
  futures.push_back(engine.submit("m", inputs[0]));
  gate.await_batches(1);

  // Requests 1..3 arrive mid-batch: they must all queue behind the running
  // batch and be served TOGETHER in the next one, not trickle one-per-batch
  // and not extend the in-flight batch.
  for (std::size_t k = 1; k < inputs.size(); ++k) {
    futures.push_back(engine.submit("m", inputs[k]));
  }
  EXPECT_EQ(engine.pending(), 3u);
  gate.release();
  for (auto& future : futures) EXPECT_NO_THROW(future.get());

  std::lock_guard<std::mutex> lock(gate.mutex);
  ASSERT_EQ(gate.sizes.size(), 2u);
  EXPECT_EQ(gate.sizes[0], 1u);
  EXPECT_EQ(gate.sizes[1], 3u);
}

TEST(ContinuousBatching, NeverWaitsOutTheBatchWindow) {
  auto registry = std::make_shared<ModelRegistry>();
  const donn::DonnConfig cfg = tiny_config(16, 2);
  registry->add("m", make_model(cfg, 211));
  const auto inputs = random_inputs(cfg.grid, 1, 212);

  // A window this long would stall a sub-max_batch request for seconds in
  // window mode; continuous mode must ignore it entirely.
  EngineOptions options;
  options.continuous = true;
  options.batch_window = std::chrono::microseconds(10'000'000);
  options.max_batch = 64;
  InferenceEngine engine(registry, options);

  const auto start = std::chrono::steady_clock::now();
  engine.submit("m", inputs[0]).get();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(elapsed, 5.0);
}

TEST(Admission, RejectBackpressureThrowsTypedOverloadError) {
  auto registry = std::make_shared<ModelRegistry>();
  const donn::DonnConfig cfg = tiny_config(16, 2);
  registry->add("m", make_model(cfg, 221));
  const auto inputs = random_inputs(cfg.grid, 3, 222);

  BatchGate gate;
  EngineOptions options;
  options.continuous = true;
  options.max_queue = 1;
  options.backpressure = Backpressure::Reject;
  options.on_batch_start = gate.hook();
  InferenceEngine engine(registry, options);

  // Request 0 is in flight (frozen at the gate), request 1 fills the
  // 1-deep queue; request 2 must be rejected with the TYPED error.
  auto first = engine.submit("m", inputs[0]);
  gate.await_batches(1);
  auto second = engine.submit("m", inputs[1]);
  EXPECT_THROW(engine.submit("m", inputs[2]), OverloadError);
  EXPECT_EQ(engine.rejected(), 1u);
  EXPECT_EQ(engine.admitted(), 2u);

  gate.release();
  EXPECT_NO_THROW(first.get());
  EXPECT_NO_THROW(second.get());
}

TEST(Admission, BlockBackpressureParksSubmitterUntilSlotFrees) {
  auto registry = std::make_shared<ModelRegistry>();
  const donn::DonnConfig cfg = tiny_config(16, 2);
  registry->add("m", make_model(cfg, 231));
  const auto inputs = random_inputs(cfg.grid, 3, 232);

  BatchGate gate;
  EngineOptions options;
  options.continuous = true;
  options.max_queue = 1;
  options.backpressure = Backpressure::Block;
  options.on_batch_start = gate.hook();
  InferenceEngine engine(registry, options);

  auto first = engine.submit("m", inputs[0]);
  gate.await_batches(1);
  auto second = engine.submit("m", inputs[1]);  // queue now full

  std::promise<void> parked_done;
  auto parked_signal = parked_done.get_future();
  std::future<PredictResult> third;
  std::thread submitter([&] {
    third = engine.submit("m", inputs[2]);  // must park, not throw
    parked_done.set_value();
  });
  // The submitter must still be parked while the queue is full.
  EXPECT_EQ(parked_signal.wait_for(std::chrono::milliseconds(100)),
            std::future_status::timeout);

  gate.release();  // drain frees the slot -> the parked submit completes
  parked_signal.get();
  submitter.join();
  EXPECT_NO_THROW(first.get());
  EXPECT_NO_THROW(second.get());
  EXPECT_NO_THROW(third.get());
  EXPECT_EQ(engine.rejected(), 0u);
  EXPECT_EQ(engine.admitted(), 3u);
}

TEST(Cluster, ResultsBitForBitIdenticalToSingleEngine) {
  auto registry = std::make_shared<ModelRegistry>();
  const donn::DonnConfig cfg = tiny_config(16, 2);
  registry->add("m", make_model(cfg, 241));
  const auto inputs = random_inputs(cfg.grid, 24, 242);

  // Reference: the plain single engine (window batching, default options).
  std::vector<PredictResult> reference;
  {
    InferenceEngine engine(registry);
    std::vector<std::future<PredictResult>> futures;
    for (const auto& input : inputs) {
      futures.push_back(engine.submit("m", input));
    }
    for (auto& future : futures) reference.push_back(future.get());
  }

  for (const Routing routing : {Routing::LeastLoaded, Routing::Hash}) {
    ClusterOptions options;
    options.replicas = 3;
    options.routing = routing;
    ServeCluster cluster(registry, options);
    std::vector<std::future<PredictResult>> futures;
    for (const auto& input : inputs) {
      futures.push_back(cluster.submit("m", input));
    }
    for (std::size_t k = 0; k < inputs.size(); ++k) {
      const PredictResult result = futures[k].get();
      EXPECT_EQ(result.predicted, reference[k].predicted);
      ASSERT_EQ(result.detector_sums.size(),
                reference[k].detector_sums.size());
      for (std::size_t c = 0; c < result.detector_sums.size(); ++c) {
        // Exact: replication and routing may move requests, never bits.
        EXPECT_EQ(result.detector_sums[c], reference[k].detector_sums[c]);
      }
    }
  }
}

TEST(Cluster, ShutdownDrainsEveryAdmittedFuture) {
  auto registry = std::make_shared<ModelRegistry>();
  const donn::DonnConfig cfg = tiny_config(16, 2);
  registry->add("m", make_model(cfg, 251));
  const auto inputs = random_inputs(cfg.grid, 20, 252);

  ClusterOptions options;
  options.replicas = 2;
  ServeCluster cluster(registry, options);
  std::vector<std::future<PredictResult>> futures;
  for (const auto& input : inputs) {
    futures.push_back(cluster.submit("m", input));
  }
  cluster.shutdown();
  for (auto& future : futures) EXPECT_NO_THROW(future.get());
  EXPECT_EQ(cluster.pending(), 0u);
  EXPECT_EQ(cluster.admitted(), inputs.size());
  EXPECT_THROW(cluster.submit("m", inputs[0]), Error);
}

TEST(Cluster, HashRoutingIsModelAffine) {
  auto registry = std::make_shared<ModelRegistry>();
  const donn::DonnConfig cfg = tiny_config(16, 2);
  registry->add("m", make_model(cfg, 261));
  const auto inputs = random_inputs(cfg.grid, 8, 262);

  ClusterOptions options;
  options.replicas = 2;
  options.routing = Routing::Hash;
  ServeCluster cluster(registry, options);
  std::vector<std::future<PredictResult>> futures;
  for (const auto& input : inputs) {
    futures.push_back(cluster.submit("m", input));
  }
  for (auto& future : futures) future.get();

  // Every request for one model must land on ONE replica (model affinity:
  // exactly one plan cache ever holds this model).
  std::size_t replicas_hit = 0;
  for (std::size_t i = 0; i < cluster.replica_count(); ++i) {
    replicas_hit += cluster.replica(i).stats().requests > 0 ? 1 : 0;
  }
  EXPECT_EQ(replicas_hit, 1u);
  EXPECT_EQ(cluster.stats().requests, inputs.size());
}

TEST(Cluster, LeastLoadedSpreadsLoadAcrossReplicas) {
  auto registry = std::make_shared<ModelRegistry>();
  const donn::DonnConfig cfg = tiny_config(16, 2);
  registry->add("m", make_model(cfg, 271));
  const auto inputs = random_inputs(cfg.grid, 10, 272);

  // Freeze both drain threads (max_batch=1, gate) so submitted requests
  // accumulate: least-loaded routing must then balance the two queues
  // instead of piling everything on replica 0.
  BatchGate gate;
  ClusterOptions options;
  options.replicas = 2;
  options.routing = Routing::LeastLoaded;
  options.engine.max_batch = 1;
  options.engine.on_batch_start = gate.hook();
  ServeCluster cluster(registry, options);

  std::vector<std::future<PredictResult>> futures;
  for (const auto& input : inputs) {
    futures.push_back(cluster.submit("m", input));
  }
  // At most one request per replica left the queues (both gates held), so
  // at least 8 of 10 are still queued, balanced within one of each other.
  const std::vector<std::size_t> depths = cluster.replica_pending();
  ASSERT_EQ(depths.size(), 2u);
  EXPECT_GE(depths[0], 1u);
  EXPECT_GE(depths[1], 1u);

  gate.release();
  for (auto& future : futures) EXPECT_NO_THROW(future.get());
  EXPECT_EQ(cluster.stats().requests, inputs.size());
}

TEST(Cluster, SnapshotAggregatesAcrossReplicas) {
  auto registry = std::make_shared<ModelRegistry>();
  const donn::DonnConfig cfg = tiny_config(16, 2);
  registry->add("m", make_model(cfg, 281));
  const auto inputs = random_inputs(cfg.grid, 16, 282);

  ClusterOptions options;
  options.replicas = 2;
  ServeCluster cluster(registry, options);
  std::vector<std::future<PredictResult>> futures;
  for (const auto& input : inputs) {
    futures.push_back(cluster.submit("m", input));
  }
  for (auto& future : futures) future.get();

  const auto snap = cluster.stats();
  EXPECT_EQ(snap.requests, inputs.size());
  EXPECT_EQ(snap.admitted, inputs.size());
  EXPECT_EQ(snap.rejected, 0u);
  EXPECT_EQ(snap.errors, 0u);
  EXPECT_EQ(snap.queue_depth, 0u);
  ASSERT_EQ(snap.replicas.size(), 2u);
  ASSERT_EQ(snap.replica_queue_depth.size(), 2u);
  // Merged percentiles come from the concatenated replica windows: with
  // completed requests they must be positive and ordered.
  EXPECT_GT(snap.p50_ms, 0.0);
  EXPECT_GE(snap.p99_ms, snap.p50_ms);
  // The auto inner split always grants each replica at least one thread.
  EXPECT_GE(cluster.options().engine.inner_threads, 1u);

  cluster.reset_stats();
  EXPECT_EQ(cluster.stats().requests, 0u);
  EXPECT_EQ(cluster.admitted(), 0u);
}

TEST(Cluster, RegistersPerReplicaLabelledInstruments) {
  auto registry = std::make_shared<ModelRegistry>();
  const donn::DonnConfig cfg = tiny_config(16, 2);
  registry->add("m", make_model(cfg, 291));
  const auto inputs = random_inputs(cfg.grid, 6, 292);

#ifndef ODONN_OBS_DISABLE
  auto& metrics = obs::MetricsRegistry::global();
  const std::uint64_t before = metrics.counter("serve.replica0.requests").value() +
                               metrics.counter("serve.replica1.requests").value();
#endif

  ClusterOptions options;
  options.replicas = 2;
  ServeCluster cluster(registry, options);
  std::vector<std::future<PredictResult>> futures;
  for (const auto& input : inputs) {
    futures.push_back(cluster.submit("m", input));
  }
  for (auto& future : futures) future.get();

#ifndef ODONN_OBS_DISABLE
  // Suffix convention: serve.replicaK.* instruments exist in the global
  // registry and the per-replica request counters account for exactly the
  // traffic this cluster served.
  const auto names = metrics.names();
  for (const std::string& name :
       {std::string("serve.replica0.queue_depth"),
        std::string("serve.replica0.requests"),
        std::string("serve.replica0.rejected"),
        std::string("serve.replica0.latency_ms"),
        std::string("serve.replica0.batch_size"),
        std::string("serve.replica1.requests")}) {
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << "missing instrument " << name;
  }
  const std::uint64_t after = metrics.counter("serve.replica0.requests").value() +
                              metrics.counter("serve.replica1.requests").value();
  EXPECT_EQ(after - before, inputs.size());
  // Prometheus rendering keeps the suffix readable after dot-mangling.
  EXPECT_NE(metrics.to_text().find("odonn_serve_replica0_queue_depth"),
            std::string::npos);
#endif
}

TEST(Attribution, ComponentsSumToEndToEndLatency) {
  auto registry = std::make_shared<ModelRegistry>();
  const donn::DonnConfig cfg = tiny_config(16, 2);
  registry->add("m", make_model(cfg, 301));
  const auto inputs = random_inputs(cfg.grid, 2, 302);

  BatchGate gate;
  EngineOptions options;
  options.continuous = true;
  options.on_batch_start = gate.hook();
  InferenceEngine engine(registry, options);

  // Request 0 forms batch 1 and freezes at the gate: the hold time is
  // batch-formation latency (dequeue happened, kernel has not run), so it
  // must land in r0's batch_wait. Request 1 arrives while batch 1 is held,
  // so the same hold shows up as r1's queue_wait.
  auto first = engine.submit("m", inputs[0]);
  gate.await_batches(1);
  auto second = engine.submit("m", inputs[1]);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  gate.release();

  const PredictResult r0 = first.get();
  const PredictResult r1 = second.get();

  // The components and the total derive from the same four monotonic
  // stamps, so the sum identity holds to FP rounding, not just "roughly".
  for (const PredictResult* r : {&r0, &r1}) {
    EXPECT_GT(r->latency.request_id, 0u);
    EXPECT_GE(r->latency.queue_wait_s, 0.0);
    EXPECT_GE(r->latency.batch_wait_s, 0.0);
    EXPECT_GT(r->latency.compute_s, 0.0);
    EXPECT_NEAR(r->latency.queue_wait_s + r->latency.batch_wait_s +
                    r->latency.compute_s,
                r->latency.total_s, 1e-9);
  }
  EXPECT_NE(r0.latency.request_id, r1.latency.request_id);
  // The deterministic 30ms gate hold is attributed where it belongs.
  EXPECT_GE(r0.latency.batch_wait_s, 0.025);
  EXPECT_LT(r0.latency.queue_wait_s, 0.025);
  EXPECT_GE(r1.latency.queue_wait_s, 0.025);

  // The attribution windows ride the same ring as the latency window.
  const ServeStats::AttributionWindows windows = engine.attribution_window();
  EXPECT_EQ(windows.queue_wait.size(), 2u);
  EXPECT_EQ(windows.batch_wait.size(), 2u);
  EXPECT_EQ(windows.compute.size(), 2u);
  EXPECT_EQ(engine.latency_window().size(), 2u);
}

TEST(Attribution, RequestIdsUniqueAndNonzeroAcrossReplicas) {
  auto registry = std::make_shared<ModelRegistry>();
  const donn::DonnConfig cfg = tiny_config(16, 2);
  registry->add("m", make_model(cfg, 311));
  const auto inputs = random_inputs(cfg.grid, 24, 312);

  ClusterOptions options;
  options.replicas = 3;
  ServeCluster cluster(registry, options);
  std::vector<std::future<PredictResult>> futures;
  for (const auto& input : inputs) {
    futures.push_back(cluster.submit("m", input));
  }
  std::vector<std::uint64_t> ids;
  for (auto& future : futures) {
    const PredictResult result = future.get();
    EXPECT_GT(result.latency.total_s, 0.0);
    ids.push_back(result.latency.request_id);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_GT(ids.front(), 0u);
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end())
      << "request ids must be unique across replicas";
}

TEST(Attribution, ClusterSnapshotCarriesAttributionPercentiles) {
  auto registry = std::make_shared<ModelRegistry>();
  const donn::DonnConfig cfg = tiny_config(16, 2);
  registry->add("m", make_model(cfg, 321));
  const auto inputs = random_inputs(cfg.grid, 16, 322);

  ClusterOptions options;
  options.replicas = 2;
  ServeCluster cluster(registry, options);
  std::vector<std::future<PredictResult>> futures;
  for (const auto& input : inputs) {
    futures.push_back(cluster.submit("m", input));
  }
  for (auto& future : futures) future.get();

  const auto snap = cluster.stats();
  // End-to-end percentiles now include p999, ordered with the others.
  EXPECT_GE(snap.p99_ms, snap.p50_ms);
  EXPECT_GE(snap.p999_ms, snap.p99_ms);
  // Compute is real work, so its percentiles must be positive; waits are
  // merely non-negative (an idle engine dequeues immediately).
  EXPECT_GT(snap.compute.p50_ms, 0.0);
  EXPECT_GE(snap.compute.p999_ms, snap.compute.p99_ms);
  EXPECT_GE(snap.queue_wait.p50_ms, 0.0);
  EXPECT_GE(snap.batch_wait.p50_ms, 0.0);
  // Attribution never exceeds the end-to-end envelope.
  EXPECT_LE(snap.compute.p50_ms, snap.p999_ms);
}

TEST(Cluster, SnapshotJsonMatchesLiveHttpSnapshotRoute) {
  auto registry = std::make_shared<ModelRegistry>();
  const donn::DonnConfig cfg = tiny_config(16, 2);
  registry->add("m", make_model(cfg, 331));
  const auto inputs = random_inputs(cfg.grid, 12, 332);

  ClusterOptions options;
  options.replicas = 2;
  ServeCluster cluster(registry, options);
  std::vector<std::future<PredictResult>> futures;
  for (const auto& input : inputs) {
    futures.push_back(cluster.submit("m", input));
  }
  for (auto& future : futures) future.get();

  // Same wiring as the CLI serve command: /snapshot renders
  // cluster_snapshot_json(cluster.stats()).
  obs::HttpServer server;
  server.handle("/snapshot", [&cluster](const obs::HttpRequest&) {
    obs::HttpResponse response;
    response.content_type = "application/json";
    response.body = cluster_snapshot_json(cluster.stats());
    return response;
  });
  server.start();
  const auto scraped =
      obs::http_get("127.0.0.1", server.port(), "/snapshot");
  ASSERT_TRUE(scraped.ok) << scraped.error;
  EXPECT_EQ(scraped.status, 200);

  // Traffic has fully drained, so stats() is stable: the scraped body must
  // equal a local render byte for byte (same percentiles, same formatter).
  const std::string local = cluster_snapshot_json(cluster.stats());
  EXPECT_EQ(scraped.body, local);
  EXPECT_NE(local.find("\"requests\": 12"), std::string::npos);
  EXPECT_NE(local.find("\"attr\": {\"queue_wait\": {\"p50_ms\": "),
            std::string::npos);
  EXPECT_NE(local.find("\"p999_ms\": "), std::string::npos);
  EXPECT_NE(local.find("\"replica_queue_depth\": [0, 0]"), std::string::npos);
}

TEST(Cluster, RejectsLabelledEngineTemplateAndZeroReplicas) {
  auto registry = std::make_shared<ModelRegistry>();
  const donn::DonnConfig cfg = tiny_config(16, 2);
  registry->add("m", make_model(cfg, 295));

  ClusterOptions labelled;
  labelled.engine.label = "mine";
  EXPECT_THROW(ServeCluster(registry, labelled), Error);

  ClusterOptions zero;
  zero.replicas = 0;
  EXPECT_THROW(ServeCluster(registry, zero), Error);
}

}  // namespace
}  // namespace odonn::serve

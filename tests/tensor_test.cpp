// Tests for src/tensor: Matrix semantics, block access, statistics and
// resampling.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "tensor/matrix.hpp"
#include "tensor/resize.hpp"
#include "tensor/stats.hpp"

namespace odonn {
namespace {

TEST(Matrix, InitializerListAndAccess) {
  MatrixD m = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
  EXPECT_THROW(m.at(2, 0), ShapeError);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((MatrixD{{1.0, 2.0}, {3.0}}), ShapeError);
}

TEST(Matrix, ArithmeticAndHadamard) {
  MatrixD a = {{1.0, 2.0}, {3.0, 4.0}};
  MatrixD b = {{10.0, 20.0}, {30.0, 40.0}};
  const MatrixD sum = a + b;
  EXPECT_DOUBLE_EQ(sum(1, 1), 44.0);
  const MatrixD diff = b - a;
  EXPECT_DOUBLE_EQ(diff(0, 0), 9.0);
  const MatrixD scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
  const MatrixD had = hadamard(a, b);
  EXPECT_DOUBLE_EQ(had(0, 1), 40.0);
  MatrixD c(3, 3);
  EXPECT_THROW(a += c, ShapeError);
}

TEST(Matrix, SumMapTransform) {
  MatrixD m = {{1.0, -2.0}, {3.0, -4.0}};
  EXPECT_DOUBLE_EQ(m.sum(), -2.0);
  const auto abs_m = m.map([](double v) { return std::abs(v); });
  EXPECT_DOUBLE_EQ(abs_m.sum(), 10.0);
  m.transform([](double v) { return v * v; });
  EXPECT_DOUBLE_EQ(m(1, 1), 16.0);
}

TEST(Matrix, BlockReadWrite) {
  MatrixD m(4, 4, 0.0);
  MatrixD patch = {{1.0, 2.0}, {3.0, 4.0}};
  m.set_block(1, 2, patch);
  EXPECT_DOUBLE_EQ(m(2, 3), 4.0);
  const MatrixD read = m.block(1, 2, 2, 2);
  EXPECT_EQ(read, patch);
  EXPECT_THROW(m.block(3, 3, 2, 2), ShapeError);
  EXPECT_THROW(m.set_block(3, 3, patch), ShapeError);
}

TEST(Matrix, NormsAndDiff) {
  MatrixD a = {{3.0, 0.0}, {0.0, 4.0}};
  EXPECT_DOUBLE_EQ(frobenius_norm(a), 5.0);
  MatrixD b = a;
  b(0, 0) = 3.5;
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.5);
  MatrixC c(2, 2, {3.0, 4.0});
  EXPECT_DOUBLE_EQ(frobenius_norm(c), 10.0);
}

TEST(Stats, MeanVarianceStddev) {
  MatrixD m = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(mean(m), 2.5);
  EXPECT_DOUBLE_EQ(variance(m), 1.25);  // population variance
  EXPECT_DOUBLE_EQ(stddev(m), std::sqrt(1.25));
  EXPECT_DOUBLE_EQ(min_value(m), 1.0);
  EXPECT_DOUBLE_EQ(max_value(m), 4.0);
}

TEST(Stats, PercentileMatchesNumpyConvention) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 1.75);
  EXPECT_THROW(percentile({}, 50.0), Error);
  EXPECT_THROW(percentile({1.0}, 101.0), Error);
}

TEST(Stats, NearestRankBoundaryRanks) {
  // The repo-wide nearest-rank rule (serve latency percentiles and fab
  // robustness percentiles both route through this): rank = ceil(q*n),
  // 1-based, clamped to [1, n].
  EXPECT_EQ(nearest_rank(0.0, 5), 1u);   // q=0 -> the minimum
  EXPECT_EQ(nearest_rank(1.0, 5), 5u);   // q=1 -> the maximum
  EXPECT_EQ(nearest_rank(0.5, 4), 2u);   // q*n integral (exact double)
  EXPECT_EQ(nearest_rank(0.25, 4), 1u);  // q*n == 1 exactly
  EXPECT_EQ(nearest_rank(0.5, 5), 3u);   // interior: ceil(2.5)
  EXPECT_EQ(nearest_rank(0.95, 4), 4u);  // interior: ceil(3.8)
  for (double q : {0.0, 0.3, 0.5, 1.0}) {
    EXPECT_EQ(nearest_rank(q, 1), 1u);  // n=1: every quantile is the sample
  }
  // Regression: q*n integral in exact arithmetic but one ulp HIGH in
  // doubles (0.05 * 20 == 1.0000000000000002) must not skip to rank 2 —
  // the bug the old fab implementation papered over with a +0.999999 ceil.
  EXPECT_EQ(nearest_rank(0.05, 20), 1u);
  EXPECT_EQ(nearest_rank(0.15, 20), 3u);
  EXPECT_THROW(nearest_rank(0.5, 0), Error);
  EXPECT_THROW(nearest_rank(-0.1, 4), Error);
  EXPECT_THROW(nearest_rank(1.1, 4), Error);
}

TEST(Stats, PercentileNearestRankSelectsSortedSample) {
  std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(v, 0.25), 1.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(v, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(v, 0.51), 3.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank({7.5}, 0.0), 7.5);
  EXPECT_THROW(percentile_nearest_rank({}, 0.5), Error);
}

TEST(Stats, AbsPercentile) {
  MatrixD m = {{-4.0, 1.0}, {2.0, -3.0}};
  EXPECT_DOUBLE_EQ(abs_percentile(m, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(abs_percentile(m, 0.0), 1.0);
}

TEST(Resize, IdentityWhenSameSize) {
  MatrixD m = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_LT(max_abs_diff(bilinear_resize(m, 2, 2), m), 1e-12);
}

TEST(Resize, CornersArePreserved) {
  MatrixD m = {{1.0, 2.0}, {3.0, 4.0}};
  const MatrixD up = bilinear_resize(m, 9, 9);
  EXPECT_DOUBLE_EQ(up(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(up(0, 8), 2.0);
  EXPECT_DOUBLE_EQ(up(8, 0), 3.0);
  EXPECT_DOUBLE_EQ(up(8, 8), 4.0);
  // Center is the average of the corners.
  EXPECT_NEAR(up(4, 4), 2.5, 1e-12);
}

TEST(Resize, ValuesStayWithinInputRange) {
  Rng rng(3);
  MatrixD m(7, 7);
  for (std::size_t i = 0; i < m.size(); ++i) m[i] = rng.uniform();
  const MatrixD up = bilinear_resize(m, 29, 29);
  for (std::size_t i = 0; i < up.size(); ++i) {
    EXPECT_GE(up[i], min_value(m) - 1e-12);
    EXPECT_LE(up[i], max_value(m) + 1e-12);
  }
}

TEST(Resize, NearestKeepsExactValues) {
  MatrixD m = {{1.0, 2.0}, {3.0, 4.0}};
  const MatrixD up = nearest_resize(m, 4, 4);
  EXPECT_DOUBLE_EQ(up(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(up(0, 3), 2.0);
  EXPECT_DOUBLE_EQ(up(3, 3), 4.0);
  for (std::size_t i = 0; i < up.size(); ++i) {
    EXPECT_TRUE(up[i] == 1.0 || up[i] == 2.0 || up[i] == 3.0 || up[i] == 4.0);
  }
}

TEST(Resize, EmbedCenteredPlacesAndFills) {
  MatrixD m(2, 2, 5.0);
  const MatrixD canvas = embed_centered(m, 6, 6, -1.0);
  EXPECT_DOUBLE_EQ(canvas(2, 2), 5.0);
  EXPECT_DOUBLE_EQ(canvas(3, 3), 5.0);
  EXPECT_DOUBLE_EQ(canvas(0, 0), -1.0);
  EXPECT_THROW(embed_centered(canvas, 2, 2), ShapeError);
}

}  // namespace
}  // namespace odonn

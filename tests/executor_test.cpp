// ParallelTableRunner tests: parallel-vs-sequential bitwise row parity,
// exception propagation from a failing recipe, and checkpoint-resume of a
// partially completed parallel table. The pool is pinned to 4 workers at
// the top of the suite so the concurrent paths are genuinely exercised
// even on a single-core CI runner.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "data/synthetic.hpp"
#include "data/transform.hpp"
#include "pipeline/executor.hpp"
#include "pipeline/parser.hpp"
#include "pipeline/stages.hpp"
#include "train/recipe.hpp"

namespace odonn::pipeline {
namespace {

/// Pins the shared pool to 4 workers (no-op when it already runs 4; the
/// pool keeps its size when another suite built it first — the tests only
/// need SOME parallelism, not exactly 4).
void ensure_parallel_pool() {
  try {
    set_thread_count(4);
  } catch (const ConfigError&) {
  }
}

struct TinySetup {
  train::RecipeOptions options;
  data::Dataset train;
  data::Dataset test;
};

TinySetup tiny_setup(std::uint64_t seed = 133) {
  TinySetup setup;
  setup.options.model = donn::DonnConfig::scaled(20);
  setup.options.model.num_layers = 2;
  setup.options.epochs_dense = 1;
  setup.options.epochs_sparse = 1;
  setup.options.epochs_finetune = 0;
  setup.options.batch_size = 25;
  setup.options.scheme.block_size = 4;
  setup.options.two_pi.iterations = 150;
  setup.options.seed = seed;

  const auto full =
      data::make_synthetic(data::SyntheticFamily::Digits, 120, seed + 1);
  const auto resized = data::resize_dataset(full, 20);
  Rng rng(seed + 2);
  auto [train, test] = resized.split(0.75, rng);
  setup.train = std::move(train);
  setup.test = std::move(test);
  return setup;
}

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

void expect_rows_bit_identical(const std::vector<train::RecipeResult>& lhs,
                               const std::vector<train::RecipeResult>& rhs) {
  ASSERT_EQ(lhs.size(), rhs.size());
  for (std::size_t r = 0; r < lhs.size(); ++r) {
    EXPECT_EQ(lhs[r].name, rhs[r].name);
    EXPECT_EQ(lhs[r].accuracy, rhs[r].accuracy) << lhs[r].name;
    EXPECT_EQ(lhs[r].roughness_before, rhs[r].roughness_before) << lhs[r].name;
    EXPECT_EQ(lhs[r].roughness_after, rhs[r].roughness_after) << lhs[r].name;
    EXPECT_EQ(lhs[r].deployed_accuracy, rhs[r].deployed_accuracy);
    EXPECT_EQ(lhs[r].deployed_accuracy_after_2pi,
              rhs[r].deployed_accuracy_after_2pi);
    EXPECT_EQ(lhs[r].sparsity, rhs[r].sparsity);
    ASSERT_EQ(lhs[r].trained_phases.size(), rhs[r].trained_phases.size());
    for (std::size_t l = 0; l < lhs[r].trained_phases.size(); ++l) {
      EXPECT_EQ(
          max_abs_diff(lhs[r].trained_phases[l], rhs[r].trained_phases[l]),
          0.0);
      EXPECT_EQ(
          max_abs_diff(lhs[r].smoothed_phases[l], rhs[r].smoothed_phases[l]),
          0.0);
    }
  }
}

/// A stage that always throws — the "failing recipe" of a parallel table.
class FailStage : public Stage {
 public:
  std::string name() const override { return "fail"; }
  std::vector<std::string> outputs() const override { return {"model.main"}; }
  void run(ArtifactStore&) override {
    throw NumericsError("recipe diverged");
  }
};

TEST(ExecutorParity, ParallelTableRowsAreBitwiseIdenticalToSequential) {
  ensure_parallel_pool();
  const TinySetup setup = tiny_setup();
  const std::vector<train::RecipeRequest> requests = {
      {train::RecipeKind::Baseline, setup.options, ""},
      {train::RecipeKind::OursA, setup.options, ""},
      {train::RecipeKind::OursD, setup.options, ""},
  };
  const auto sequential =
      train::run_recipes(requests, setup.train, setup.test, {});
  ASSERT_EQ(sequential.size(), 3u);
  EXPECT_EQ(sequential[0].name, "baseline");
  EXPECT_GT(sequential[0].seconds, 0.0);

  train::TableRunOptions parallel;
  parallel.jobs = 3;
  const auto concurrent =
      train::run_recipes(requests, setup.train, setup.test, parallel);
  expect_rows_bit_identical(sequential, concurrent);

  // An uneven thread-budget split (jobs=2 over the 3 requests) reuses
  // lanes for the trailing request — still bitwise identical.
  train::TableRunOptions two;
  two.jobs = 2;
  expect_rows_bit_identical(
      sequential, train::run_recipes(requests, setup.train, setup.test, two));
}

TEST(ExecutorParity, DuplicateLabelsWithCheckpointsAreRejected) {
  // Labels name the per-recipe checkpoint subdirectories: two identical
  // requests (a sweep of the same recipe) must fail fast when checkpoints
  // are on instead of interleaving their artifacts in one directory.
  const TinySetup setup = tiny_setup(135);
  const std::vector<train::RecipeRequest> requests = {
      {train::RecipeKind::OursB, setup.options, ""},
      {train::RecipeKind::OursB, setup.options, ""},
  };
  train::TableRunOptions table;
  table.checkpoint_dir = temp_dir("executor_dup_labels");
  try {
    train::run_recipes(requests, setup.train, setup.test, table);
    FAIL() << "duplicate labels with checkpoint_dir were accepted";
  } catch (const ConfigError& error) {
    EXPECT_NE(std::string(error.what()).find("ours-b"), std::string::npos);
  }
  // Distinct explicit labels (or no checkpointing at all) are fine.
  const std::vector<train::RecipeRequest> labeled = {
      {train::RecipeKind::OursB, setup.options, "ratio-a"},
      {train::RecipeKind::OursB, setup.options, "ratio-b"},
  };
  EXPECT_NO_THROW(
      train::run_recipes(labeled, setup.train, setup.test, table));
  std::filesystem::remove_all(table.checkpoint_dir);
}

TEST(ExecutorFailure, FailingJobPropagatesItsException) {
  ensure_parallel_pool();
  const TinySetup setup = tiny_setup(137);

  const auto make_jobs = [&] {
    std::vector<PipelineJob> jobs;
    for (int i = 0; i < 3; ++i) {
      PipelineJob job;
      job.label = "job" + std::to_string(i);
      if (i == 1) {
        Pipeline failing;
        failing.add(std::make_unique<FailStage>());
        job.pipeline = std::move(failing);
      } else {
        job.pipeline = build_pipeline(
            {{StageKind::Train, StageKind::Report}, {}}, setup.options);
      }
      job.setup = [&setup](ArtifactStore& store) {
        store.set_data(&setup.train, &setup.test);
      };
      jobs.push_back(std::move(job));
    }
    return jobs;
  };

  // Parallel: the failing job's exception reaches the caller once the
  // in-flight jobs finished.
  ExecutorOptions parallel;
  parallel.jobs = 3;
  try {
    ParallelTableRunner(parallel).run(make_jobs());
    FAIL() << "failing job did not propagate";
  } catch (const NumericsError& error) {
    EXPECT_NE(std::string(error.what()).find("recipe diverged"),
              std::string::npos);
  }

  // Sequential path: same exception type and message.
  EXPECT_THROW(ParallelTableRunner(ExecutorOptions{}).run(make_jobs()),
               NumericsError);
}

TEST(ExecutorProgress, StreamsExactlyOneStartAndEndPerStage) {
  ensure_parallel_pool();
  const TinySetup setup = tiny_setup(143);

  std::vector<PipelineJob> jobs;
  for (int i = 0; i < 3; ++i) {
    PipelineJob job;
    job.label = "job" + std::to_string(i);
    job.pipeline = build_pipeline(
        {{StageKind::Train, StageKind::Report}, {}}, setup.options);
    job.setup = [&setup](ArtifactStore& store) {
      store.set_data(&setup.train, &setup.test);
    };
    jobs.push_back(std::move(job));
  }

  // The runner serializes sink calls through its own mutex, so a plain
  // vector is safe even with all three jobs in flight.
  std::vector<StageProgressEvent> events;
  ExecutorOptions options;
  options.jobs = 3;
  options.progress = [&events](const StageProgressEvent& event) {
    events.push_back(event);
  };
  const auto results = ParallelTableRunner(options).run(std::move(jobs));
  ASSERT_EQ(results.size(), 3u);

  // Exactly one start and one end per (job, stage), start before end,
  // nothing skipped, and the labels/stage names round-trip.
  ASSERT_EQ(events.size(), 3u * 2u * 2u);
  for (std::size_t job = 0; job < 3; ++job) {
    for (std::size_t stage = 0; stage < 2; ++stage) {
      int starts = 0;
      int ends = 0;
      std::ptrdiff_t start_at = -1;
      std::ptrdiff_t end_at = -1;
      for (std::size_t i = 0; i < events.size(); ++i) {
        const auto& event = events[i];
        if (event.job != job || event.stage != stage) continue;
        EXPECT_EQ(event.label, "job" + std::to_string(job));
        EXPECT_EQ(event.stage_name, stage == 0 ? "train" : "report");
        if (event.finished) {
          ++ends;
          end_at = static_cast<std::ptrdiff_t>(i);
          EXPECT_GE(event.seconds, 0.0);
          EXPECT_FALSE(event.skipped);
        } else {
          ++starts;
          start_at = static_cast<std::ptrdiff_t>(i);
        }
      }
      EXPECT_EQ(starts, 1) << "job" << job << " stage " << stage;
      EXPECT_EQ(ends, 1) << "job" << job << " stage " << stage;
      EXPECT_LT(start_at, end_at) << "job" << job << " stage " << stage;
    }
  }
}

TEST(ExecutorResume, PartiallyCompletedParallelTableResumesFromCheckpoints) {
  ensure_parallel_pool();
  const TinySetup setup = tiny_setup(141);
  const std::string root = temp_dir("executor_partial_resume");
  // OursA's stage list: 0_train, 1_report, 2_smooth, 3_eval.
  const PipelineSpec spec = spec_for_recipe(train::RecipeKind::OursA);

  const auto checkpoint_dir = [&root](const std::string& label) {
    return (std::filesystem::path(root) / label).string();
  };
  const auto stage_done = [&](const std::string& label,
                              const std::string& stage) {
    return std::filesystem::exists(std::filesystem::path(root) / label /
                                   stage / "done");
  };
  const auto make_job = [&](const std::string& label, bool fail,
                            bool resume) {
    PipelineJob job;
    if (fail) {
      // Train for real, then die: the failed recipe leaves a PARTIAL
      // per-recipe checkpoint (0_train done, nothing after) behind.
      Pipeline failing;
      failing.add(std::make_unique<TrainStage>(setup.options, spec.flags));
      failing.add(std::make_unique<FailStage>());
      job.pipeline = std::move(failing);
    } else {
      job.pipeline = build_pipeline(spec, setup.options);
    }
    job.label = label;
    job.run_options.checkpoint_dir = checkpoint_dir(label);
    job.run_options.resume = resume;
    job.setup = [&setup](ArtifactStore& store) {
      store.set_data(&setup.train, &setup.test);
    };
    return job;
  };

  // Run 1: recipe "b" fails after its train stage; whatever else was in
  // flight completes (the executor abandons only unstarted jobs).
  {
    std::vector<PipelineJob> jobs;
    jobs.push_back(make_job("a", false, false));
    jobs.push_back(make_job("b", true, false));
    jobs.push_back(make_job("c", false, false));
    ExecutorOptions options;
    options.jobs = 3;
    EXPECT_THROW(ParallelTableRunner(options).run(std::move(jobs)),
                 NumericsError);
  }
  // The failing job always ran (only it can trip the abort flag), so its
  // train checkpoint exists and nothing after it does. Whether a/c ran to
  // completion is scheduling-dependent — record it instead of assuming.
  ASSERT_TRUE(stage_done("b", "0_train"));
  ASSERT_FALSE(stage_done("b", "1_report"));
  const bool a_completed = stage_done("a", "3_eval");
  const bool c_completed = stage_done("c", "3_eval");

  // Run 2: the same table with "b" repaired, resume=true. Completed
  // recipes fast-forward entirely; "b" resumes PAST its checkpointed train
  // stage and runs the rest live.
  std::vector<PipelineJob> jobs;
  jobs.push_back(make_job("a", false, true));
  jobs.push_back(make_job("b", false, true));
  jobs.push_back(make_job("c", false, true));
  ExecutorOptions options;
  options.jobs = 3;
  const auto results = ParallelTableRunner(options).run(std::move(jobs));
  ASSERT_EQ(results.size(), 3u);
  if (a_completed) {
    for (const auto& timing : results[0].timings) {
      EXPECT_TRUE(timing.skipped) << "a/" << timing.name;
    }
  }
  if (c_completed) {
    for (const auto& timing : results[2].timings) {
      EXPECT_TRUE(timing.skipped) << "c/" << timing.name;
    }
  }
  ASSERT_EQ(results[1].timings.size(), 4u);
  EXPECT_TRUE(results[1].timings[0].skipped);   // train: from run 1's disk
  EXPECT_FALSE(results[1].timings[1].skipped);  // report..eval: live
  EXPECT_FALSE(results[1].timings[3].skipped);

  // The resumed table is indistinguishable from a fresh uninterrupted run.
  ArtifactStore reference;
  reference.set_data(&setup.train, &setup.test);
  build_pipeline(spec, setup.options).run(reference);
  for (const auto& result : results) {
    EXPECT_EQ(result.store.metric(artifacts::kAccuracy),
              reference.metric(artifacts::kAccuracy))
        << result.label;
    for (std::size_t l = 0; l < setup.options.model.num_layers; ++l) {
      EXPECT_EQ(
          max_abs_diff(result.store.model(artifacts::kMainModel).phases()[l],
                       reference.model(artifacts::kMainModel).phases()[l]),
          0.0)
          << result.label;
    }
  }
  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace odonn::pipeline

// Pipeline API tests: recipe parity (run_recipe vs an explicitly composed
// pipeline, live vs checkpoint-restored — bit-for-bit), declarative
// construction, validation, checkpoint resume, robust training stage, and
// the PublishStage -> ModelRegistry -> InferenceEngine hand-off.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/error.hpp"
#include "data/idx.hpp"
#include "data/synthetic.hpp"
#include "data/transform.hpp"
#include "pipeline/artifact_store.hpp"
#include "pipeline/parser.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/stages.hpp"
#include "serve/engine.hpp"
#include "serve/registry.hpp"
#include "train/recipe.hpp"
#include "train/trainer.hpp"

namespace odonn::pipeline {
namespace {

struct TinySetup {
  train::RecipeOptions options;
  data::Dataset train;
  data::Dataset test;
};

TinySetup tiny_setup(std::uint64_t seed = 33) {
  TinySetup setup;
  setup.options.model = donn::DonnConfig::scaled(24);
  setup.options.model.num_layers = 2;
  setup.options.epochs_dense = 1;
  setup.options.epochs_sparse = 1;
  setup.options.epochs_finetune = 1;
  setup.options.batch_size = 25;
  setup.options.roughness_p = 0.1;
  setup.options.intra_q = 0.03;
  setup.options.scheme.block_size = 4;
  setup.options.scheme.ratio = 0.1;
  setup.options.two_pi.iterations = 400;
  setup.options.seed = seed;

  const auto full =
      data::make_synthetic(data::SyntheticFamily::Digits, 160, seed + 1);
  const auto resized = data::resize_dataset(full, 24);
  Rng rng(seed + 2);
  auto [train, test] = resized.split(0.75, rng);
  setup.train = std::move(train);
  setup.test = std::move(test);
  return setup;
}

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

void expect_bit_identical(const train::RecipeResult& lhs,
                          const train::RecipeResult& rhs) {
  EXPECT_EQ(lhs.name, rhs.name);
  EXPECT_EQ(lhs.accuracy, rhs.accuracy);
  EXPECT_EQ(lhs.roughness_before, rhs.roughness_before);
  EXPECT_EQ(lhs.roughness_after, rhs.roughness_after);
  EXPECT_EQ(lhs.deployed_accuracy, rhs.deployed_accuracy);
  EXPECT_EQ(lhs.deployed_accuracy_after_2pi, rhs.deployed_accuracy_after_2pi);
  EXPECT_EQ(lhs.sparsity, rhs.sparsity);
  ASSERT_EQ(lhs.trained_phases.size(), rhs.trained_phases.size());
  for (std::size_t l = 0; l < lhs.trained_phases.size(); ++l) {
    EXPECT_EQ(max_abs_diff(lhs.trained_phases[l], rhs.trained_phases[l]), 0.0);
    EXPECT_EQ(max_abs_diff(lhs.smoothed_phases[l], rhs.smoothed_phases[l]),
              0.0);
  }
}

// ------------------------------------------------------------- parity

/// run_recipe's RecipeResult assembled from an explicitly composed
/// pipeline run (the spec built by hand from spec_for_recipe), optionally
/// checkpointing every stage and — when `resume_dir` is non-empty —
/// re-running from those checkpoints into a fresh store first.
train::RecipeResult recipe_via_explicit_pipeline(
    train::RecipeKind kind, const TinySetup& setup,
    const std::string& checkpoint_dir = "", bool resume = false) {
  ArtifactStore store;
  store.set_data(&setup.train, &setup.test);
  Pipeline pipe = build_pipeline(spec_for_recipe(kind), setup.options);
  RunOptions run_options;
  run_options.checkpoint_dir = checkpoint_dir;
  run_options.resume = resume;
  pipe.run(store, run_options);

  train::RecipeResult result;
  result.name = train::recipe_name(kind);
  result.accuracy = store.metric(artifacts::kAccuracy);
  result.roughness_before = store.metric(artifacts::kRoughnessBefore);
  result.roughness_after = store.metric(artifacts::kRoughnessAfter);
  result.deployed_accuracy = store.metric(artifacts::kDeployedAccuracy);
  result.deployed_accuracy_after_2pi =
      store.metric(artifacts::kDeployedAccuracyAfter2Pi);
  result.sparsity = store.metric(artifacts::kSparsity);
  result.trained_phases = store.model(artifacts::kMainModel).phases();
  result.smoothed_phases = store.model(artifacts::kSmoothedModel).phases();
  return result;
}

TEST(StageParity, OursDPipelineVsCheckpointedPipelineBitForBit) {
  // The parity bar, pipeline-vs-pipeline (the monolithic oracle is gone):
  // run_recipe's composition of Ours-D — the recipe exercising every stage:
  // regularized training, SLR sparsification, fine-tune, report, 2*pi
  // smoothing, deployment eval — must reproduce (a) an explicitly composed
  // pipeline run bit-for-bit, and (b) the same pipeline when every stage is
  // checkpointed to disk and the whole run is then satisfied purely from
  // those checkpoints (donn/serialize round-trips doubles exactly).
  const TinySetup setup = tiny_setup();
  const auto via_recipe = train::run_recipe(
      train::RecipeKind::OursD, setup.options, setup.train, setup.test);

  const std::string dir = temp_dir("parity_ours_d");
  const auto via_pipeline =
      recipe_via_explicit_pipeline(train::RecipeKind::OursD, setup, dir);
  expect_bit_identical(via_recipe, via_pipeline);
  EXPECT_GT(via_recipe.sparsity, 0.0);

  const auto via_checkpoints = recipe_via_explicit_pipeline(
      train::RecipeKind::OursD, setup, dir, /*resume=*/true);
  expect_bit_identical(via_pipeline, via_checkpoints);
  std::filesystem::remove_all(dir);
}

TEST(StageParity, BaselinePipelineVsCheckpointedPipelineBitForBit) {
  const TinySetup setup = tiny_setup(47);
  const auto via_recipe = train::run_recipe(
      train::RecipeKind::Baseline, setup.options, setup.train, setup.test);

  const std::string dir = temp_dir("parity_baseline");
  const auto via_pipeline =
      recipe_via_explicit_pipeline(train::RecipeKind::Baseline, setup, dir);
  expect_bit_identical(via_recipe, via_pipeline);
  EXPECT_EQ(via_recipe.sparsity, 0.0);

  const auto via_checkpoints = recipe_via_explicit_pipeline(
      train::RecipeKind::Baseline, setup, dir, /*resume=*/true);
  expect_bit_identical(via_pipeline, via_checkpoints);
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------ spec / parser

TEST(Parser, StageListRoundTripAndErrors) {
  const auto stages = parse_stage_list("train,sparsify,smooth,eval");
  ASSERT_EQ(stages.size(), 4u);
  EXPECT_EQ(stages[0], StageKind::Train);
  EXPECT_EQ(stages[1], StageKind::Sparsify);
  EXPECT_EQ(stages[2], StageKind::Smooth);
  EXPECT_EQ(stages[3], StageKind::Evaluate);
  EXPECT_EQ(parse_stage_list("report,publish"),
            (std::vector<StageKind>{StageKind::Report, StageKind::Publish}));
  EXPECT_THROW(parse_stage_list("train,,eval"), ConfigError);
  EXPECT_THROW(parse_stage_list("train,frobnicate"), ConfigError);
}

TEST(Parser, RecipesAreFiveStageLists) {
  const auto baseline = spec_for_recipe(train::RecipeKind::Baseline);
  EXPECT_EQ(baseline.stages.size(), 4u);  // train, report, smooth, eval
  EXPECT_FALSE(baseline.flags.roughness);
  EXPECT_FALSE(baseline.flags.intra);

  const auto ours_a = spec_for_recipe(train::RecipeKind::OursA);
  EXPECT_EQ(ours_a.stages, baseline.stages);  // same list, flags differ
  EXPECT_TRUE(ours_a.flags.roughness);

  const auto ours_d = spec_for_recipe(train::RecipeKind::OursD);
  EXPECT_EQ(ours_d.stages.size(), 5u);
  EXPECT_EQ(ours_d.stages[1], StageKind::Sparsify);
  EXPECT_TRUE(ours_d.flags.roughness);
  EXPECT_TRUE(ours_d.flags.intra);
}

TEST(Parser, SpecFromConfigOverrides) {
  const char* argv[] = {"prog", "recipe=ours-b", "pipeline=train,smooth",
                        "roughness=1"};
  const Config cfg = Config::from_args(4, argv);
  const PipelineSpec spec = spec_from_config(cfg);
  EXPECT_EQ(spec.stages,
            (std::vector<StageKind>{StageKind::Train, StageKind::Smooth}));
  EXPECT_TRUE(spec.flags.roughness);  // overridden (ours-b default: off)
  EXPECT_FALSE(spec.flags.intra);
}

TEST(Parser, OptionsFromConfigMapsKeys) {
  const char* argv[] = {"prog",   "grid=20",      "layers=3", "epochs=5",
                        "p=0.25", "sparsity=0.3", "seed=11",  "init=uniform"};
  const Config cfg = Config::from_args(8, argv);
  cfg.strict(config_keys());
  const train::RecipeOptions opt = options_from_config(cfg);
  EXPECT_EQ(opt.model.grid.n, 20u);
  EXPECT_EQ(opt.model.num_layers, 3u);
  EXPECT_EQ(opt.model.init, donn::PhaseInit::Uniform);
  EXPECT_EQ(opt.epochs_dense, 5u);
  EXPECT_EQ(opt.epochs_sparse, 2u);  // derived: epochs / 2
  EXPECT_DOUBLE_EQ(opt.roughness_p, 0.25);
  EXPECT_DOUBLE_EQ(opt.scheme.ratio, 0.3);
  EXPECT_EQ(opt.seed, 11u);
}

TEST(Parser, PublishWithoutRegistryIsRejected) {
  const PipelineSpec spec{{StageKind::Train, StageKind::Publish}, {}};
  EXPECT_THROW(build_pipeline(spec, train::RecipeOptions{}), ConfigError);
}

// ------------------------------------------------- store / validation

TEST(ArtifactStoreTest, TypedAccessAndDottedKeys) {
  ArtifactStore store;
  EXPECT_FALSE(store.has_data());
  EXPECT_THROW(store.train(), Error);
  EXPECT_THROW(store.model("main"), ConfigError);
  EXPECT_THROW(store.metric("accuracy"), ConfigError);

  Rng rng(5);
  donn::DonnConfig cfg = donn::DonnConfig::scaled(16);
  cfg.num_layers = 1;
  store.put_model("main", donn::DonnModel(cfg, rng));
  store.put_metric("accuracy", 0.5);
  EXPECT_TRUE(store.has_key("model.main"));
  EXPECT_TRUE(store.has_key("metric.accuracy"));
  EXPECT_FALSE(store.has_key("model.smoothed"));
  EXPECT_FALSE(store.has_key("data.train"));
  EXPECT_FALSE(store.has_key("accuracy"));  // must be namespaced
  EXPECT_EQ(store.metric("accuracy"), 0.5);
  EXPECT_EQ(store.model_names(), (std::vector<std::string>{"main"}));
}

TEST(PipelineValidation, RejectsUnsatisfiedInputsBeforeRunning) {
  const TinySetup setup = tiny_setup();
  ArtifactStore store;
  store.set_data(&setup.train, &setup.test);

  // eval needs model.main, which nothing produces: must throw before any
  // training happens (and name the stage + missing artifact).
  Pipeline bad = build_pipeline({{StageKind::Evaluate}, {}}, setup.options);
  try {
    bad.run(store);
    FAIL() << "validate() accepted an unsatisfiable pipeline";
  } catch (const ConfigError& error) {
    EXPECT_NE(std::string(error.what()).find("model.main"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("eval"), std::string::npos);
  }

  // The same stage is fine once an earlier stage produces the model.
  Pipeline good = build_pipeline(
      {{StageKind::Train, StageKind::Evaluate}, {}}, setup.options);
  EXPECT_NO_THROW(good.validate(store));

  // A store with no datasets fails train's data.train input.
  ArtifactStore empty;
  EXPECT_THROW(good.validate(empty), ConfigError);
}

TEST(PipelineValidation, RejectsDuplicateDeclaredOutputs) {
  // A stage declaring the same output twice is a authoring bug (one write
  // silently wins); validate() must name the stage and the key.
  class DupStage : public Stage {
   public:
    std::string name() const override { return "dup"; }
    std::vector<std::string> outputs() const override {
      return {"metric.x", "metric.x"};
    }
    void run(ArtifactStore&) override {}
  };
  Pipeline pipe;
  pipe.add(std::make_unique<DupStage>());
  ArtifactStore store;
  try {
    pipe.validate(store);
    FAIL() << "validate() accepted duplicate declared outputs";
  } catch (const ConfigError& error) {
    EXPECT_NE(std::string(error.what()).find("dup"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("metric.x"), std::string::npos);
  }
}

TEST(PipelineObserverTest, ReportsStagesInOrderWithTimings) {
  const TinySetup setup = tiny_setup();
  ArtifactStore store;
  store.set_data(&setup.train, &setup.test);
  Pipeline pipe = build_pipeline(
      {{StageKind::Train, StageKind::Report}, {}}, setup.options);

  std::vector<std::string> started, ended;
  PipelineObserver observer;
  observer.on_stage_start = [&](std::size_t index, const Stage& stage) {
    EXPECT_EQ(index, started.size());
    started.push_back(stage.name());
  };
  observer.on_stage_end = [&](const StageTiming& timing) {
    EXPECT_FALSE(timing.skipped);
    EXPECT_GE(timing.seconds, 0.0);
    ended.push_back(timing.name);
  };
  pipe.set_observer(std::move(observer));

  const auto timings = pipe.run(store);
  const std::vector<std::string> expected = {"train", "report"};
  EXPECT_EQ(started, expected);
  EXPECT_EQ(ended, expected);
  ASSERT_EQ(timings.size(), 2u);
  EXPECT_EQ(timings[1].index, 1u);
}

// -------------------------------------------------- checkpoint resume

TEST(Checkpointing, ResumeMidPipelineReproducesTheFullRun) {
  const TinySetup setup = tiny_setup(55);
  const PipelineSpec full_spec = spec_for_recipe(train::RecipeKind::OursA);
  const std::string dir = temp_dir("pipeline_resume");

  // Reference: the full pipeline, no checkpointing.
  ArtifactStore reference;
  reference.set_data(&setup.train, &setup.test);
  build_pipeline(full_spec, setup.options).run(reference);

  // Pass 1: only the training prefix, checkpointed.
  PipelineSpec prefix = full_spec;
  prefix.stages = {StageKind::Train};
  ArtifactStore first;
  first.set_data(&setup.train, &setup.test);
  RunOptions checkpointed;
  checkpointed.checkpoint_dir = dir;
  build_pipeline(prefix, setup.options).run(first, checkpointed);

  // Pass 2: the full pipeline resumes — train is satisfied from disk
  // (index and stage name match), the rest runs live.
  ArtifactStore second;
  second.set_data(&setup.train, &setup.test);
  Pipeline full = build_pipeline(full_spec, setup.options);
  RunOptions resume = checkpointed;
  resume.resume = true;
  const auto timings = full.run(second, resume);
  ASSERT_EQ(timings.size(), full_spec.stages.size());
  EXPECT_TRUE(timings[0].skipped);
  for (std::size_t i = 1; i < timings.size(); ++i) {
    EXPECT_FALSE(timings[i].skipped) << "stage " << timings[i].name;
  }

  // The resumed run must be indistinguishable from the uninterrupted one:
  // donn/serialize round-trips doubles bit-exactly.
  for (const char* metric :
       {artifacts::kAccuracy, artifacts::kRoughnessBefore,
        artifacts::kRoughnessAfter, artifacts::kDeployedAccuracy,
        artifacts::kDeployedAccuracyAfter2Pi, artifacts::kSparsity}) {
    ASSERT_TRUE(second.has_metric(metric)) << metric;
    EXPECT_EQ(second.metric(metric), reference.metric(metric)) << metric;
  }
  for (std::size_t l = 0; l < setup.options.model.num_layers; ++l) {
    EXPECT_EQ(max_abs_diff(second.model(artifacts::kMainModel).phases()[l],
                           reference.model(artifacts::kMainModel).phases()[l]),
              0.0);
    EXPECT_EQ(
        max_abs_diff(second.model(artifacts::kSmoothedModel).phases()[l],
                     reference.model(artifacts::kSmoothedModel).phases()[l]),
        0.0);
  }

  // A full resume (checkpoints now cover every stage) skips everything.
  ArtifactStore third;
  third.set_data(&setup.train, &setup.test);
  Pipeline again = build_pipeline(full_spec, setup.options);
  const auto all_skipped = again.run(third, resume);
  for (const auto& timing : all_skipped) EXPECT_TRUE(timing.skipped);
  EXPECT_EQ(third.metric(artifacts::kAccuracy),
            reference.metric(artifacts::kAccuracy));
  std::filesystem::remove_all(dir);
}

TEST(Checkpointing, ResumeReplaysPublishSideEffects) {
  // Registry publishes are external side effects a checkpoint cannot
  // capture: a resumed run must replay the publish stage into the (fresh)
  // registry instead of skipping it.
  const TinySetup setup = tiny_setup(71);
  const PipelineSpec spec{
      {StageKind::Train, StageKind::Smooth, StageKind::Publish}, {}};
  const std::string dir = temp_dir("pipeline_publish_resume");
  RunOptions checkpointed;
  checkpointed.checkpoint_dir = dir;

  auto first_registry = std::make_shared<serve::ModelRegistry>();
  BuildContext first_context;
  first_context.registry = first_registry;
  first_context.publish_name = "m";
  ArtifactStore first;
  first.set_data(&setup.train, &setup.test);
  build_pipeline(spec, setup.options, first_context).run(first, checkpointed);
  ASSERT_EQ(first_registry->names(),
            (std::vector<std::string>{"m", "m-smoothed"}));

  // "New process": same checkpoints, empty registry.
  auto second_registry = std::make_shared<serve::ModelRegistry>();
  BuildContext second_context = first_context;
  second_context.registry = second_registry;
  ArtifactStore second;
  second.set_data(&setup.train, &setup.test);
  RunOptions resume = checkpointed;
  resume.resume = true;
  const auto timings =
      build_pipeline(spec, setup.options, second_context).run(second, resume);
  ASSERT_EQ(timings.size(), 3u);
  EXPECT_TRUE(timings[0].skipped);   // train: restored from disk
  EXPECT_TRUE(timings[1].skipped);   // smooth: restored from disk
  EXPECT_FALSE(timings[2].skipped);  // publish: replayed
  ASSERT_EQ(second_registry->names(),
            (std::vector<std::string>{"m", "m-smoothed"}));
  for (std::size_t l = 0; l < setup.options.model.num_layers; ++l) {
    EXPECT_EQ(max_abs_diff(second_registry->get("m")->phases()[l],
                           first_registry->get("m")->phases()[l]),
              0.0);
  }
  std::filesystem::remove_all(dir);
}

// ----------------------------------------------------- dataset stage

TEST(DatasetStageTest, SyntheticFallbackMatchesPreAttachedData) {
  // A pipeline starting with the data stage must reproduce the classic
  // "caller attaches datasets" path bit-for-bit: both go through
  // load_or_synthesize with the same arithmetic.
  DatasetStageOptions data_opt;
  data_opt.family = data::SyntheticFamily::Digits;
  data_opt.samples = 120;
  data_opt.grid = 16;
  data_opt.seed = 33;

  const auto [train_set, test_set] = load_or_synthesize(data_opt);
  EXPECT_EQ(train_set.size() + test_set.size(), 120u);
  EXPECT_EQ(train_set.image(0).rows(), 16u);

  ArtifactStore store;
  EXPECT_FALSE(store.has_key("data.train"));
  DatasetStage stage(data_opt);
  EXPECT_TRUE(stage.has_side_effects());  // replayed on resume
  stage.run(store);
  ASSERT_TRUE(store.has_key("data.train"));
  ASSERT_TRUE(store.has_key("data.test"));
  ASSERT_EQ(store.train().size(), train_set.size());
  ASSERT_EQ(store.test().size(), test_set.size());
  for (std::size_t i = 0; i < store.train().size(); ++i) {
    EXPECT_EQ(store.train().label(i), train_set.label(i));
    EXPECT_EQ(max_abs_diff(store.train().image(i), train_set.image(i)), 0.0);
  }
}

TEST(DatasetStageTest, LoadsIdxPairsFromDataDir) {
  const std::string dir = temp_dir("pipeline_idx_data");
  std::filesystem::create_directories(dir);
  const auto train_raw =
      data::make_synthetic(data::SyntheticFamily::Digits, 30, 5);
  const auto test_raw =
      data::make_synthetic(data::SyntheticFamily::Digits, 10, 6);
  data::write_idx(train_raw, dir + "/train-images-idx3-ubyte",
                  dir + "/train-labels-idx1-ubyte");
  data::write_idx(test_raw, dir + "/t10k-images-idx3-ubyte",
                  dir + "/t10k-labels-idx1-ubyte");

  DatasetStageOptions data_opt;
  data_opt.data_dir = dir;
  data_opt.grid = 20;
  ArtifactStore store;
  DatasetStage(data_opt).run(store);
  EXPECT_EQ(store.train().size(), 30u);
  EXPECT_EQ(store.test().size(), 10u);
  EXPECT_EQ(store.train().image(0).rows(), 20u);  // resized to the grid
  EXPECT_EQ(store.test().num_classes(), 10u);
  for (std::size_t i = 0; i < store.train().size(); ++i) {
    EXPECT_EQ(store.train().label(i), train_raw.label(i));
  }

  // A missing file fails fast (data_dir set means IDX is mandatory).
  DatasetStageOptions missing = data_opt;
  missing.data_dir = dir + "/nope";
  ArtifactStore empty;
  EXPECT_THROW(DatasetStage(missing).run(empty), IoError);
  std::filesystem::remove_all(dir);
}

TEST(DatasetStageTest, DataStagePipelineValidatesAndRuns) {
  // pipeline=data,train,eval on an EMPTY store: the data stage's declared
  // outputs satisfy train/eval inputs, and the run produces metrics.
  TinySetup setup = tiny_setup(91);
  setup.options.epochs_dense = 1;
  const char* argv[] = {"prog", "pipeline=data,train,eval"};
  const Config cfg = Config::from_args(2, argv);
  const PipelineSpec spec = spec_from_config(cfg);
  ASSERT_EQ(spec.stages.front(), StageKind::Dataset);

  BuildContext context;
  context.data.samples = 100;
  context.data.grid = setup.options.model.grid.n;
  context.data.seed = 91;
  Pipeline pipe = build_pipeline(spec, setup.options, context);

  ArtifactStore store;  // no set_data: the stage provides it
  EXPECT_NO_THROW(pipe.validate(store));
  pipe.run(store);
  EXPECT_TRUE(store.has_metric(artifacts::kAccuracy));
  EXPECT_TRUE(store.has_model(artifacts::kMainModel));
}

// ------------------------------------------------------- robust stage

TEST(RobustStage, CheckpointResumeReproducesTheIdenticalReport) {
  // The RobustEvalStage report is part of the store's metrics, so a
  // resumed pipeline must reproduce it bit-for-bit from the checkpoint
  // without re-simulating.
  const TinySetup setup = tiny_setup(87);
  const char* argv[] = {"prog", "pipeline=train,smooth,robust",
                        "realizations=4",
                        "perturb=roughness(sigma_um=0.04,corr=2)+misalign"};
  const Config cfg = Config::from_args(4, argv);
  cfg.strict(config_keys());
  const PipelineSpec spec = spec_from_config(cfg);
  BuildContext context;
  context.robust = robust_options_from_config(cfg);
  ASSERT_EQ(context.robust.realizations, 4u);

  const std::string dir = temp_dir("pipeline_robust_resume");
  RunOptions checkpointed;
  checkpointed.checkpoint_dir = dir;

  ArtifactStore reference;
  reference.set_data(&setup.train, &setup.test);
  build_pipeline(spec, setup.options, context)
      .run(reference, checkpointed);
  ASSERT_TRUE(reference.has_metric(artifacts::kRobustMean));
  ASSERT_TRUE(reference.has_metric(artifacts::kRobustYield));
  ASSERT_TRUE(reference.has_metric(artifacts::kRobustSmoothedMean));

  // Resume with complete checkpoints: every stage is skipped and the
  // restored metrics equal the live run exactly (text round-trip of
  // doubles is %.17g — lossless).
  ArtifactStore resumed;
  resumed.set_data(&setup.train, &setup.test);
  RunOptions resume = checkpointed;
  resume.resume = true;
  const auto timings =
      build_pipeline(spec, setup.options, context).run(resumed, resume);
  for (const auto& timing : timings) {
    EXPECT_TRUE(timing.skipped) << timing.name;
  }
  for (const char* metric :
       {artifacts::kRobustMean, artifacts::kRobustStd, artifacts::kRobustMin,
        artifacts::kRobustP50, artifacts::kRobustYield,
        artifacts::kRobustSmoothedMean, artifacts::kRobustSmoothedYield}) {
    ASSERT_TRUE(resumed.has_metric(metric)) << metric;
    EXPECT_EQ(resumed.metric(metric), reference.metric(metric)) << metric;
  }

  // And a live re-run (no checkpoints) also reproduces the report: the
  // Monte-Carlo stage is deterministic given the seed.
  ArtifactStore rerun;
  rerun.set_data(&setup.train, &setup.test);
  build_pipeline(spec, setup.options, context).run(rerun);
  EXPECT_EQ(rerun.metric(artifacts::kRobustMean),
            reference.metric(artifacts::kRobustMean));
  EXPECT_EQ(rerun.metric(artifacts::kRobustYield),
            reference.metric(artifacts::kRobustYield));
  std::filesystem::remove_all(dir);
}

// -------------------------------------------------- robust_train stage

TEST(RobustTrainStage, ConfigMapsTrainToRobustTrainAndCountsRealizations) {
  // robust_train=1 swaps every train stage for robust_train; the stage
  // trains noise-in-the-loop and records the sampled-realization counter
  // as a metric.
  const TinySetup setup = tiny_setup(101);
  const char* argv[] = {"prog",
                        "pipeline=train,smooth,eval",
                        "robust_train=1",
                        "train_realizations=2",
                        "train_warmup=0",
                        "perturb=roughness(sigma_um=0.04,corr=2)"};
  const Config cfg = Config::from_args(6, argv);
  cfg.strict(config_keys());
  const PipelineSpec spec = spec_from_config(cfg);
  ASSERT_EQ(spec.stages.front(), StageKind::RobustTrain);

  BuildContext context;
  context.robust_train = robust_train_options_from_config(cfg);
  ASSERT_EQ(context.robust_train.realizations, 2u);
  ASSERT_EQ(context.robust_train.warmup_epochs, 0);

  ArtifactStore store;
  store.set_data(&setup.train, &setup.test);
  build_pipeline(spec, setup.options, context).run(store);

  EXPECT_TRUE(store.has_model(artifacts::kMainModel));
  EXPECT_TRUE(store.has_metric(artifacts::kAccuracy));
  ASSERT_TRUE(store.has_metric(artifacts::kRobustTrainRealizations));
  // 120 train samples / batch 25 -> 5 batches; 1 epoch x K=2 per batch.
  EXPECT_EQ(store.metric(artifacts::kRobustTrainRealizations), 10.0);
}

TEST(RobustTrainStage, CheckpointResumeAndStreamContinuation) {
  const TinySetup setup = tiny_setup(103);
  const char* argv[] = {"prog", "pipeline=robust_train,smooth,eval",
                        "train_realizations=2", "train_warmup=0"};
  const Config cfg = Config::from_args(4, argv);
  cfg.strict(config_keys());
  const PipelineSpec spec = spec_from_config(cfg);
  BuildContext context;
  context.robust_train = robust_train_options_from_config(cfg);

  const std::string dir = temp_dir("pipeline_robust_train_resume");
  RunOptions checkpointed;
  checkpointed.checkpoint_dir = dir;

  ArtifactStore reference;
  reference.set_data(&setup.train, &setup.test);
  build_pipeline(spec, setup.options, context).run(reference, checkpointed);
  ASSERT_TRUE(reference.has_metric(artifacts::kRobustTrainRealizations));
  const double counter =
      reference.metric(artifacts::kRobustTrainRealizations);
  EXPECT_EQ(counter, 10.0);  // 5 batches x K=2, one epoch

  // Resume: every stage satisfied from checkpoints, counter and model
  // restored bit-for-bit.
  ArtifactStore resumed;
  resumed.set_data(&setup.train, &setup.test);
  RunOptions resume = checkpointed;
  resume.resume = true;
  const auto timings =
      build_pipeline(spec, setup.options, context).run(resumed, resume);
  for (const auto& timing : timings) EXPECT_TRUE(timing.skipped);
  EXPECT_EQ(resumed.metric(artifacts::kRobustTrainRealizations), counter);
  EXPECT_EQ(resumed.metric(artifacts::kAccuracy),
            reference.metric(artifacts::kAccuracy));
  for (std::size_t l = 0; l < setup.options.model.num_layers; ++l) {
    EXPECT_EQ(
        max_abs_diff(resumed.model(artifacts::kMainModel).phases()[l],
                     reference.model(artifacts::kMainModel).phases()[l]),
        0.0);
  }

  // Training FURTHER on the restored store continues the realization
  // stream where the checkpoint left off instead of replaying it.
  const PipelineSpec train_only{{StageKind::RobustTrain}, {}};
  build_pipeline(train_only, setup.options, context).run(resumed);
  EXPECT_EQ(resumed.metric(artifacts::kRobustTrainRealizations),
            2.0 * counter);
  std::filesystem::remove_all(dir);
}

// ------------------------------------------- publish -> serve hand-off

TEST(PublishHandoff, PipelineToRegistryToInferenceEngineEndToEnd) {
  // The acceptance scenario: a declaratively-built pipeline
  // (pipeline=train,sparsify,smooth,eval,publish — the odonn_cli run
  // path) publishes into a ModelRegistry that an InferenceEngine serves
  // from, with predictions matching the trained model exactly.
  const TinySetup setup = tiny_setup(61);
  const char* argv[] = {"prog", "pipeline=train,sparsify,smooth,eval,publish",
                        "roughness=1", "intra=1"};
  const Config cfg = Config::from_args(4, argv);
  cfg.strict(config_keys());
  const PipelineSpec spec = spec_from_config(cfg);
  ASSERT_EQ(spec.stages.back(), StageKind::Publish);

  auto registry = std::make_shared<serve::ModelRegistry>();
  BuildContext context;
  context.registry = registry;
  context.publish_name = "ours-d";
  Pipeline pipe = build_pipeline(spec, setup.options, context);

  ArtifactStore store;
  store.set_data(&setup.train, &setup.test);
  pipe.run(store);

  ASSERT_EQ(registry->names(),
            (std::vector<std::string>{"ours-d", "ours-d-smoothed"}));

  serve::InferenceEngine engine(registry);
  const auto published = registry->get("ours-d");
  std::vector<std::future<serve::PredictResult>> futures;
  const std::size_t count = std::min<std::size_t>(8, setup.test.size());
  for (std::size_t k = 0; k < count; ++k) {
    futures.push_back(engine.submit(
        "ours-d", optics::encode_image(setup.test.image(k),
                                       published->config().grid)));
  }
  for (std::size_t k = 0; k < count; ++k) {
    const auto result = futures[k].get();
    EXPECT_EQ(result.predicted,
              published->predict(optics::encode_image(
                  setup.test.image(k), published->config().grid)));
  }

  // The smoothed variant is inference-equivalent in the ideal simulation
  // (2*pi periodicity) — serving it returns the same classes.
  const auto smoothed = registry->get("ours-d-smoothed");
  for (std::size_t k = 0; k < count; ++k) {
    const auto input =
        optics::encode_image(setup.test.image(k), smoothed->config().grid);
    EXPECT_EQ(smoothed->predict(input), published->predict(input));
  }
}

}  // namespace
}  // namespace odonn::pipeline

// Tests for the extension modules: discrete phase levels (donn/discrete),
// the fabrication/thickness domain (optics/fabrication), Gaussian-beam
// analytics as a physics reference (optics/beams), model serialization
// (donn/serialize), simulated annealing 2*pi (smooth2pi/anneal), and data
// augmentation (data/augment).
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "data/augment.hpp"
#include "data/synthetic.hpp"
#include "donn/discrete.hpp"
#include "donn/reflection.hpp"
#include "donn/serialize.hpp"
#include "optics/beams.hpp"
#include "optics/fabrication.hpp"
#include "optics/propagate.hpp"
#include "smooth2pi/anneal.hpp"
#include "sparsify/block_sparsify.hpp"
#include "train/trainer.hpp"

namespace odonn {
namespace {

constexpr double kTwoPi = 2.0 * M_PI;

// ---------------------------------------------------------------- discrete

TEST(Discrete, QuantizeSnapsToNearestLevel) {
  MatrixD phase = {{0.1, 1.5}, {3.2, 6.2}};
  donn::QuantizeOptions opt;
  opt.levels = 4;  // levels at 0, pi/2, pi, 3pi/2
  const MatrixD q = donn::quantize_phase(phase, opt);
  EXPECT_NEAR(q(0, 0), 0.0, 1e-12);
  EXPECT_NEAR(q(0, 1), M_PI / 2.0, 1e-12);
  EXPECT_NEAR(q(1, 0), M_PI, 1e-12);
  EXPECT_NEAR(q(1, 1), 0.0, 1e-12);  // 6.2 is nearest to 2*pi == level 0
}

TEST(Discrete, QuantizeWrapsOutOfRangeValues) {
  MatrixD phase = {{-0.2, 7.0}};
  const MatrixD q = donn::quantize_phase(phase, {16, true});
  for (std::size_t i = 0; i < q.size(); ++i) {
    EXPECT_GE(q[i], 0.0);
    EXPECT_LT(q[i], kTwoPi);
  }
}

TEST(Discrete, ErrorDecreasesWithMoreLevels) {
  Rng rng(1);
  MatrixD phase(16, 16);
  for (auto& v : phase) v = rng.uniform(0.0, kTwoPi);
  double prev = 1e300;
  for (std::size_t levels : {2u, 4u, 8u, 16u, 64u}) {
    const double err = donn::quantization_error(phase, {levels, true});
    EXPECT_LT(err, prev);
    // Mean |error| of uniform phases vs k levels ~ step/4.
    EXPECT_NEAR(err, kTwoPi / static_cast<double>(levels) / 4.0,
                kTwoPi / static_cast<double>(levels) / 8.0);
    prev = err;
  }
}

TEST(Discrete, IndicesMatchQuantizedValues) {
  Rng rng(2);
  MatrixD phase(8, 8);
  for (auto& v : phase) v = rng.uniform(0.0, kTwoPi);
  donn::QuantizeOptions opt;
  opt.levels = 8;
  const auto idx = donn::quantize_indices(phase, opt);
  const auto q = donn::quantize_phase(phase, opt);
  for (std::size_t i = 0; i < q.size(); ++i) {
    EXPECT_LT(idx[i], 8u);
    EXPECT_NEAR(q[i], static_cast<double>(idx[i]) * kTwoPi / 8.0, 1e-12);
  }
}

TEST(Discrete, SteQuantizerForwardsQuantizedPhases) {
  Rng rng(3);
  std::vector<MatrixD> latent{MatrixD(4, 4), MatrixD(4, 4)};
  for (auto& layer : latent) {
    for (auto& v : layer) v = rng.uniform(0.0, kTwoPi);
  }
  donn::StePhaseQuantizer ste({8, true});
  const auto q = ste.forward(latent);
  ASSERT_EQ(q.size(), 2u);
  for (std::size_t l = 0; l < 2; ++l) {
    EXPECT_LT(max_abs_diff(q[l], donn::quantize_phase(latent[l], {8, true})),
              1e-15);
  }
  // STE backward is the identity.
  const auto& grads = ste.backward(latent);
  EXPECT_EQ(&grads, &latent);
}

TEST(Discrete, GumbelLevelSampleIsDistribution) {
  Rng rng(4);
  std::vector<MatrixD> logits(4, MatrixD(3, 3, 0.0));
  logits[2].fill(3.0);  // strongly prefer level 2
  const auto sample = donn::gumbel_level_sample(logits, 0.5, rng, false);
  for (std::size_t i = 0; i < 9; ++i) {
    double total = 0.0;
    for (const auto& p : sample.probs) total += p[i];
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_GT(sample.probs[2][i], 0.95);
    // Soft phase close to level 2's phase (2 * 2pi/4 = pi).
    EXPECT_NEAR(sample.soft_phase[i], M_PI, 0.3);
  }
}

TEST(Discrete, GumbelLevelSampleLowTauApproachesArgmax) {
  Rng rng(5);
  std::vector<MatrixD> logits(3, MatrixD(2, 2, 0.0));
  logits[1].fill(1.0);
  const auto hot = donn::gumbel_level_sample(logits, 5.0, rng, false);
  const auto cold = donn::gumbel_level_sample(logits, 0.05, rng, false);
  EXPECT_GT(cold.probs[1](0, 0), hot.probs[1](0, 0));
  EXPECT_GT(cold.probs[1](0, 0), 0.999);
}

TEST(Discrete, Validation) {
  MatrixD phase(2, 2, 0.0);
  EXPECT_THROW(donn::quantize_phase(phase, {1, true}), Error);
  Rng rng(6);
  std::vector<MatrixD> one(1, MatrixD(2, 2, 0.0));
  EXPECT_THROW(donn::gumbel_level_sample(one, 1.0, rng), Error);
}

// ------------------------------------------------------------- fabrication

TEST(Fabrication, ZoneHeightMatchesFormula) {
  optics::MaterialSpec mat;
  mat.refractive_index = 1.5;
  mat.wavelength = 600e-9;
  EXPECT_NEAR(mat.zone_height(), 1.2e-6, 1e-12);
}

TEST(Fabrication, PhaseThicknessRoundTrip) {
  Rng rng(7);
  MatrixD phase(8, 8);
  for (auto& v : phase) v = rng.uniform(0.0, 3.0 * kTwoPi);  // multi-zone
  optics::MaterialSpec mat;
  const MatrixD t = optics::phase_to_thickness(phase, mat, /*wrap=*/false);
  const MatrixD back = optics::thickness_to_phase(t, mat);
  EXPECT_LT(max_abs_diff(back, phase), 1e-9);
}

TEST(Fabrication, WrappedReliefStaysWithinOneZone) {
  MatrixD phase = {{0.0, kTwoPi + 1.0}, {3.0 * kTwoPi - 0.1, 2.0}};
  optics::MaterialSpec mat;
  const MatrixD t = optics::phase_to_thickness(phase, mat, /*wrap=*/true);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_GE(t[i], 0.0);
    EXPECT_LT(t[i], mat.zone_height() + 1e-15);
  }
}

TEST(Fabrication, ThicknessReportTracksRoughness) {
  Rng rng(8);
  MatrixD rough(12, 12);
  for (auto& v : rough) v = rng.uniform(0.0, kTwoPi);
  MatrixD smooth(12, 12, 3.0);
  optics::MaterialSpec mat;
  const auto rough_report = optics::thickness_report(rough, mat);
  const auto smooth_report = optics::thickness_report(smooth, mat);
  EXPECT_GT(rough_report.roughness_um, smooth_report.roughness_um);
  EXPECT_GT(rough_report.max_height_um, 0.0);
  EXPECT_GT(rough_report.mean_height_um, 0.0);
}

TEST(Fabrication, TwoPiLiftAddsExactlyOneZone) {
  // The 2*pi optimizer's physical meaning: +2*pi == one extra zone height.
  MatrixD phase = {{1.0}};
  MatrixD lifted = {{1.0 + kTwoPi}};
  optics::MaterialSpec mat;
  const double t0 = optics::phase_to_thickness(phase, mat, false)(0, 0);
  const double t1 = optics::phase_to_thickness(lifted, mat, false)(0, 0);
  EXPECT_NEAR(t1 - t0, mat.zone_height(), 1e-12);
}

TEST(Fabrication, Validation) {
  MatrixD phase(2, 2, 1.0);
  optics::MaterialSpec bad;
  bad.refractive_index = 1.0;
  EXPECT_THROW(optics::phase_to_thickness(phase, bad), Error);
}

// ------------------------------------------------------------------- beams

TEST(Beams, RayleighRangeAndRadius) {
  optics::GaussianBeam beam;
  beam.wavelength = 532e-9;
  beam.waist = 100e-6;
  const double zr = beam.rayleigh_range();
  EXPECT_NEAR(zr, M_PI * 1e-8 / 532e-9, 1e-6);
  EXPECT_DOUBLE_EQ(beam.radius_at(0.0), beam.waist);
  EXPECT_NEAR(beam.radius_at(zr), beam.waist * std::sqrt(2.0), 1e-12);
}

TEST(Beams, MeasuredRadiusMatchesAnalyticAtWaist) {
  optics::GaussianBeam beam;
  beam.waist = 80e-6;
  const optics::GridSpec grid{64, 8e-6};  // 512 um window
  const auto field = beam.sample_waist(grid);
  EXPECT_NEAR(optics::measured_beam_radius(field), beam.waist,
              0.03 * beam.waist);
}

TEST(Beams, NumericalPropagationMatchesAnalyticWaistGrowth) {
  // The physics acid test: propagate the sampled waist with the angular
  // spectrum method and compare the measured radius against w(z).
  optics::GaussianBeam beam;
  beam.waist = 60e-6;
  const optics::GridSpec grid{96, 8e-6};  // 768 um window
  const double z = 2.0 * beam.rayleigh_range();

  optics::Field field = beam.sample_waist(grid);
  optics::Propagator prop(grid, {{optics::KernelType::AngularSpectrum,
                                  beam.wavelength, z}, true});
  field = prop.forward(field);
  const double expected = beam.radius_at(z);
  EXPECT_NEAR(optics::measured_beam_radius(field), expected, 0.05 * expected);
}

// --------------------------------------------------------------- serialize

TEST(Serialize, RoundTripPreservesModel) {
  Rng rng(9);
  donn::DonnConfig cfg = donn::DonnConfig::scaled(16);
  cfg.num_layers = 2;
  donn::DonnModel model(cfg, rng);
  std::vector<sparsify::SparsityMask> masks;
  for (std::size_t l = 0; l < 2; ++l) {
    masks.push_back(sparsify::block_sparsify(model.phases()[l], {4, 0.25}));
  }
  model.set_masks(masks);

  const std::string path = ::testing::TempDir() + "/model.odnn";
  donn::save_model(model, path);
  const donn::DonnModel loaded = donn::load_model(path);

  EXPECT_EQ(loaded.config().grid.n, cfg.grid.n);
  EXPECT_DOUBLE_EQ(loaded.config().grid.pitch, cfg.grid.pitch);
  EXPECT_EQ(loaded.num_layers(), 2u);
  for (std::size_t l = 0; l < 2; ++l) {
    EXPECT_LT(max_abs_diff(loaded.phases()[l], model.phases()[l]), 1e-15);
    EXPECT_EQ(loaded.masks()[l], model.masks()[l]);
  }

  // Loaded model computes identical outputs.
  MatrixD image(16, 16, 0.0);
  image(8, 8) = 1.0;
  const auto input = optics::encode_image(image, cfg.grid);
  const auto a = model.detector_sums(input);
  const auto b = loaded.detector_sums(input);
  for (std::size_t c = 0; c < a.size(); ++c) EXPECT_DOUBLE_EQ(a[c], b[c]);
}

TEST(Serialize, RoundTripPreservesDetectorMode) {
  Rng rng(21);
  donn::DonnConfig cfg = donn::DonnConfig::scaled(16);
  cfg.num_layers = 5;
  cfg.detector = donn::DetectorMode::Differential;
  donn::DonnModel model(cfg, rng);

  const std::string path = ::testing::TempDir() + "/diff_model.odnn";
  donn::save_model(model, path);
  const donn::DonnModel loaded = donn::load_model(path);

  EXPECT_EQ(loaded.config().detector, donn::DetectorMode::Differential);
  EXPECT_EQ(loaded.num_layers(), 5u);
  EXPECT_EQ(loaded.detector().num_regions(), 2 * cfg.num_classes);

  MatrixD image(16, 16, 0.0);
  image(8, 8) = 1.0;
  const auto input = optics::encode_image(image, cfg.grid);
  const auto a = model.detector_sums(input);
  const auto b = loaded.detector_sums(input);
  for (std::size_t c = 0; c < a.size(); ++c) EXPECT_DOUBLE_EQ(a[c], b[c]);
}

TEST(Serialize, VersionOneStreamLoadsAsStandard) {
  // Checkpoints written before the detector-mode format bump (version 1,
  // no mode word after detector_size) must keep loading, as Standard.
  const donn::DonnConfig cfg = donn::DonnConfig::scaled(16);
  const std::string path = ::testing::TempDir() + "/v1_model.odnn";
  {
    std::ofstream out(path, std::ios::binary);
    const auto u32 = [&out](std::uint32_t v) {
      out.write(reinterpret_cast<const char*>(&v), sizeof(v));
    };
    const auto f64 = [&out](double v) {
      out.write(reinterpret_cast<const char*>(&v), sizeof(v));
    };
    out.write("ODNN", 4);
    u32(1);  // version 1: no detector mode word
    u32(static_cast<std::uint32_t>(cfg.grid.n));
    f64(cfg.grid.pitch);
    f64(cfg.wavelength);
    f64(cfg.distance);
    u32(static_cast<std::uint32_t>(cfg.kernel));
    u32(cfg.pad2x ? 1 : 0);
    u32(2);  // num_layers
    u32(static_cast<std::uint32_t>(cfg.num_classes));
    u32(static_cast<std::uint32_t>(cfg.detector_size));
    u32(2);  // stored layer count
    const MatrixD phi(cfg.grid.n, cfg.grid.n, 0.5);
    for (int l = 0; l < 2; ++l) {
      out.write(reinterpret_cast<const char*>(phi.data()),
                static_cast<std::streamsize>(phi.size() * sizeof(double)));
    }
    const std::uint8_t has_masks = 0;
    out.write(reinterpret_cast<const char*>(&has_masks), 1);
  }

  const donn::DonnModel loaded = donn::load_model(path);
  EXPECT_EQ(loaded.config().detector, donn::DetectorMode::Standard);
  EXPECT_EQ(loaded.num_layers(), 2u);
  EXPECT_DOUBLE_EQ(loaded.phases()[0](3, 3), 0.5);
}

TEST(Serialize, RejectsWrongMagic) {
  const std::string path = ::testing::TempDir() + "/bogus.odnn";
  std::ofstream out(path, std::ios::binary);
  out << "NOPE and then some bytes";
  out.close();
  EXPECT_THROW(donn::load_model(path), IoError);
}

TEST(Serialize, RejectsTruncation) {
  Rng rng(10);
  donn::DonnConfig cfg = donn::DonnConfig::scaled(16);
  donn::DonnModel model(cfg, rng);
  const std::string path = ::testing::TempDir() + "/trunc.odnn";
  donn::save_model(model, path);
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(content.data(), static_cast<std::streamsize>(content.size() / 3));
  out.close();
  EXPECT_THROW(donn::load_model(path), IoError);
}

TEST(Serialize, RejectsMissingFile) {
  EXPECT_THROW(donn::load_model("/nonexistent/m.odnn"), IoError);
}

// ------------------------------------------------------------------ anneal

TEST(Anneal, NeverWorseThanIdentity) {
  Rng rng(11);
  MatrixD phi(10, 10);
  for (auto& v : phi) v = rng.uniform(0.0, kTwoPi);
  const auto result = smooth2pi::anneal_2pi(phi, {});
  EXPECT_LE(result.roughness_after, result.roughness_before + 1e-9);
}

TEST(Anneal, FindsSingleFlipImprovements) {
  // One pixel at 0 surrounded by values near 2*pi: lifting it is a pure
  // single-flip gain that annealing must find.
  MatrixD phi(8, 8, 6.0);
  phi(4, 4) = 0.0;
  smooth2pi::AnnealOptions opt;
  opt.iterations = 5000;
  const auto result = smooth2pi::anneal_2pi(phi, opt);
  EXPECT_EQ(result.selection(4, 4), 1);
  EXPECT_LT(result.roughness_after, result.roughness_before);
}

TEST(Anneal, SelectionConsistentWithOptimizedMask) {
  Rng rng(12);
  MatrixD phi(8, 8);
  for (auto& v : phi) v = rng.uniform(0.0, kTwoPi);
  smooth2pi::AnnealOptions opt;
  opt.iterations = 3000;
  const auto result = smooth2pi::anneal_2pi(phi, opt);
  for (std::size_t i = 0; i < phi.size(); ++i) {
    const double expected =
        phi[i] + (result.selection[i] != 0 ? kTwoPi : 0.0);
    EXPECT_DOUBLE_EQ(result.optimized[i], expected);
  }
}

TEST(Anneal, MatchesExactDpOnSmallChains) {
  Rng rng(13);
  for (int trial = 0; trial < 4; ++trial) {
    const std::size_t n = 5 + rng.uniform_index(4);
    MatrixD row(1, n);
    std::vector<double> values(n);
    for (std::size_t i = 0; i < n; ++i) {
      values[i] = rng.bernoulli(0.4) ? 0.0 : rng.uniform(0.0, kTwoPi);
      row(0, i) = values[i];
    }
    roughness::RoughnessOptions ropt;
    smooth2pi::AnnealOptions opt;
    opt.iterations = 20000;
    opt.seed = 100 + static_cast<std::uint64_t>(trial);
    const auto annealed = smooth2pi::anneal_2pi(row, opt);
    const auto dp = smooth2pi::exact_1d_selection(values, ropt);
    MatrixD dp_mask(1, n);
    for (std::size_t i = 0; i < n; ++i) {
      dp_mask(0, i) = values[i] + (dp[i] != 0 ? kTwoPi : 0.0);
    }
    const double dp_score = roughness::mask_roughness(dp_mask, ropt);
    EXPECT_LE(annealed.roughness_after, dp_score * 1.05 + 1e-9);
  }
}

TEST(Anneal, Validation) {
  MatrixD phi(4, 4, 1.0);
  smooth2pi::AnnealOptions opt;
  opt.t_end = 2.0;  // above t_start
  EXPECT_THROW(smooth2pi::anneal_2pi(phi, opt), Error);
}

// ----------------------------------------------------------------- augment

TEST(Augment, ProducesDifferentViews) {
  const auto ds = data::make_synthetic(data::SyntheticFamily::Digits, 4, 14);
  Rng rng(15);
  const MatrixD a = data::augment_image(ds.image(0), rng);
  const MatrixD b = data::augment_image(ds.image(0), rng);
  EXPECT_GT(max_abs_diff(a, b), 0.01);
  EXPECT_EQ(a.rows(), ds.image(0).rows());
}

TEST(Augment, PreservesLabelsAndShape) {
  const auto ds = data::make_synthetic(data::SyntheticFamily::Letters, 12, 16);
  Rng rng(17);
  const auto aug = data::augment_dataset(ds, rng);
  ASSERT_EQ(aug.size(), ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(aug.label(i), ds.label(i));
  }
}

TEST(Augment, ZeroOptionsIsNearIdentity) {
  const auto ds = data::make_synthetic(data::SyntheticFamily::Digits, 2, 18);
  Rng rng(19);
  data::AugmentOptions opt;
  opt.max_rotate = 0.0;
  opt.scale_jitter = 0.0;
  opt.max_shift = 0.0;
  opt.noise_sigma = 0.0;
  const MatrixD same = data::augment_image(ds.image(0), rng, opt);
  EXPECT_LT(max_abs_diff(same, ds.image(0)), 1e-12);
}

// ---------------------------------------------------------------- reflection

TEST(Reflection, ZeroAmplitudeMatchesIdealForward) {
  Rng rng(23);
  donn::DonnConfig cfg = donn::DonnConfig::scaled(16);
  cfg.num_layers = 2;
  donn::DonnModel model(cfg, rng);
  MatrixD image(16, 16);
  for (auto& v : image) v = rng.uniform();
  const auto input = optics::encode_image(image, cfg.grid);

  const auto ideal = model.propagate_through(input);
  const auto reflective =
      donn::reflective_propagate_through(model, input, {0.0});
  EXPECT_LT(max_abs_diff(ideal.values(), reflective.values()), 1e-12);
}

TEST(Reflection, TransmissionLossReducesPower) {
  Rng rng(24);
  donn::DonnConfig cfg = donn::DonnConfig::scaled(16);
  donn::DonnModel model(cfg, rng);
  MatrixD image(16, 16);
  for (auto& v : image) v = rng.uniform();
  const auto input = optics::encode_image(image, cfg.grid);

  const double ideal_power = model.propagate_through(input).power();
  // First-order perturbation: each mask transmits (1 - r^2) of the power
  // and re-injects an O(r^2) bounce whose interference with the direct
  // field is not sign-definite — so assert boundedness, not monotonicity.
  donn::ReflectionOptions opt;
  opt.amplitude = 0.15;
  const double r2 = opt.amplitude * opt.amplitude;
  const double reflective_power =
      donn::reflective_propagate_through(model, input, opt).power();
  const double layers = static_cast<double>(model.num_layers());
  EXPECT_LT(reflective_power, ideal_power * (1.0 + 3.0 * layers * r2));
  EXPECT_GT(reflective_power, ideal_power * (1.0 - 3.0 * layers * r2));
}

TEST(Reflection, PerturbationGrowsWithAmplitude) {
  Rng rng(25);
  donn::DonnConfig cfg = donn::DonnConfig::scaled(16);
  donn::DonnModel model(cfg, rng);
  MatrixD image(16, 16);
  for (auto& v : image) v = rng.uniform();
  const auto input = optics::encode_image(image, cfg.grid);
  const auto ideal = model.propagate_through(input);

  double prev = 0.0;
  for (double r : {0.05, 0.15, 0.3}) {
    const auto field =
        donn::reflective_propagate_through(model, input, {r});
    const double diff = max_abs_diff(ideal.values(), field.values());
    EXPECT_GT(diff, prev);
    prev = diff;
  }
}

TEST(Reflection, PredictUsesDetectorLayout) {
  Rng rng(26);
  donn::DonnConfig cfg = donn::DonnConfig::scaled(16);
  donn::DonnModel model(cfg, rng);
  MatrixD image(16, 16);
  for (auto& v : image) v = rng.uniform();
  const auto input = optics::encode_image(image, cfg.grid);
  const std::size_t cls = donn::reflective_predict(model, input, {0.1});
  EXPECT_LT(cls, cfg.num_classes);
}

TEST(Reflection, Validation) {
  Rng rng(27);
  donn::DonnConfig cfg = donn::DonnConfig::scaled(16);
  donn::DonnModel model(cfg, rng);
  const auto input = optics::encode_image(MatrixD(16, 16, 0.5), cfg.grid);
  EXPECT_THROW(donn::reflective_propagate_through(model, input, {1.0}), Error);
  EXPECT_THROW(donn::reflective_propagate_through(model, input, {-0.1}), Error);
}

// --------------------------------------------------- init-scheme behavior

TEST(PhaseInit, FlatInitIsMuchSmootherThanUniform) {
  Rng r1(20), r2(20);
  donn::DonnConfig flat_cfg = donn::DonnConfig::scaled(32);
  donn::DonnConfig uni_cfg = flat_cfg;
  uni_cfg.init = donn::PhaseInit::Uniform;
  donn::DonnModel flat(flat_cfg, r1);
  donn::DonnModel uniform(uni_cfg, r2);
  const double flat_r = roughness::mask_roughness(flat.phases()[0]);
  const double uni_r = roughness::mask_roughness(uniform.phases()[0]);
  EXPECT_LT(flat_r, uni_r / 5.0);
}

}  // namespace
}  // namespace odonn

// Tests for src/slr: projection correctness, penalty gradients vs finite
// differences, multiplier/stepsize behavior, convergence of both SLR and
// ADMM on an analytically tractable quadratic problem.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "donn/gradcheck.hpp"
#include "slr/admm.hpp"
#include "slr/slr.hpp"
#include "sparsify/mask.hpp"

namespace odonn::slr {
namespace {

std::vector<MatrixD> random_weights(std::size_t layers, std::size_t n,
                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<MatrixD> out;
  for (std::size_t l = 0; l < layers; ++l) {
    MatrixD w(n, n);
    for (auto& v : w) v = rng.uniform(-2.0, 2.0);
    out.push_back(std::move(w));
  }
  return out;
}

SlrOptions test_options(double ratio = 0.25, std::size_t block = 2) {
  SlrOptions opt;
  opt.scheme.scheme = sparsify::Scheme::Block;
  opt.scheme.ratio = ratio;
  opt.scheme.block_size = block;
  return opt;
}

TEST(Slr, InitialZIsBlockSparseProjection) {
  const auto w = random_weights(2, 8, 1);
  SlrState state(w, test_options());
  for (const auto& z : state.z()) {
    std::size_t zeros = 0;
    for (std::size_t i = 0; i < z.size(); ++i) {
      if (z[i] == 0.0) ++zeros;
    }
    EXPECT_EQ(zeros, 16u);  // 25% of 64
  }
}

TEST(Slr, PenaltyGradientMatchesFiniteDifferences) {
  const auto w = random_weights(2, 6, 2);
  SlrState state(w, test_options(0.25, 3));
  // Perturb W so W != Z and Lambda != 0 after one round.
  state.round(w, /*surrogate_loss=*/1.0);

  for (std::size_t layer = 0; layer < w.size(); ++layer) {
    auto grads = std::vector<MatrixD>{MatrixD(6, 6, 0.0), MatrixD(6, 6, 0.0)};
    state.add_penalty_gradient(w, grads);
    const MatrixD numeric = donn::numerical_gradient(
        [&](const MatrixD& probe) {
          auto w2 = w;
          w2[layer] = probe;
          return state.penalty_value(w2);
        },
        w[layer], 1e-6);
    EXPECT_LT(donn::gradient_rel_error(grads[layer], numeric), 1e-6)
        << "layer " << layer;
  }
}

TEST(Slr, MasksMatchZSupport) {
  const auto w = random_weights(1, 8, 3);
  SlrState state(w, test_options());
  const auto masks = state.masks();
  ASSERT_EQ(masks.size(), 1u);
  for (std::size_t i = 0; i < masks[0].size(); ++i) {
    EXPECT_EQ(masks[0][i] == 0, state.z()[0][i] == 0.0);
  }
  EXPECT_NEAR(sparsify::sparsity_ratio(masks[0]), 0.25, 1e-12);
}

TEST(Slr, StepsizeAdvancesOnlyOnImprovement) {
  const auto w = random_weights(1, 8, 4);
  SlrState state(w, test_options());
  const std::size_t k0 = state.multiplier_updates();
  state.round(w, 10.0);  // first evaluation always counts as improvement
  const std::size_t k1 = state.multiplier_updates();
  EXPECT_GT(k1, k0);
  state.round(w, 20.0);  // worse surrogate: W-side update suppressed
  // The Z-side update still advances multipliers, but at most one extra.
  EXPECT_LE(state.multiplier_updates(), k1 + 1);
}

/// Quadratic toy problem: minimize ||W - T||^2 subject to block sparsity.
/// The constrained optimum keeps the largest-norm target blocks; both SLR
/// and ADMM should converge to a W close to the sparse projection of T.
template <typename State>
double solve_quadratic(State& state, std::vector<MatrixD>& w,
                       const MatrixD& target, int iterations, double lr,
                       bool is_slr) {
  for (int it = 0; it < iterations; ++it) {
    // W-step: a few gradient steps on 0.5||W-T||^2 + penalty.
    for (int gs = 0; gs < 5; ++gs) {
      std::vector<MatrixD> grads{MatrixD(w[0].rows(), w[0].cols(), 0.0)};
      for (std::size_t i = 0; i < w[0].size(); ++i) {
        grads[0][i] = w[0][i] - target[i];
      }
      state.add_penalty_gradient(w, grads);
      for (std::size_t i = 0; i < w[0].size(); ++i) {
        w[0][i] -= lr * grads[0][i];
      }
    }
    double data_loss = 0.0;
    for (std::size_t i = 0; i < w[0].size(); ++i) {
      const double d = w[0][i] - target[i];
      data_loss += 0.5 * d * d;
    }
    if constexpr (std::is_same_v<State, SlrState>) {
      state.round(w, data_loss + state.penalty_value(w));
    } else {
      state.round(w);
    }
    (void)is_slr;
  }
  // Distance of W to its own sparse projection (constraint violation).
  double violation = 0.0;
  for (std::size_t i = 0; i < w[0].size(); ++i) {
    const double d = w[0][i] - state.z()[0][i];
    violation += d * d;
  }
  return std::sqrt(violation);
}

/// Target with well-separated block norms: the four blocks in the top-left
/// quadrant are tiny, the rest are large — so the 0.25-sparse projection
/// support is unambiguous and stable.
MatrixD structured_target() {
  MatrixD target(8, 8, 0.0);
  Rng rng(5);
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      const bool tiny_quadrant = r < 4 && c < 4;
      target(r, c) = tiny_quadrant ? rng.uniform(-0.05, 0.05)
                                   : rng.uniform(1.5, 3.0);
    }
  }
  return target;
}

TEST(Slr, ConvergesOnQuadraticToyProblem) {
  const MatrixD target = structured_target();
  auto w = random_weights(1, 8, 6);

  SlrOptions opt = test_options();
  opt.rho = 1.0;
  opt.s0 = 0.3;  // toy problem: larger steps than the paper's DONN setting
  SlrState state(w, opt);
  const double initial_violation = [&] {
    double acc = 0.0;
    for (std::size_t i = 0; i < w[0].size(); ++i) {
      const double d = w[0][i] - state.z()[0][i];
      acc += d * d;
    }
    return std::sqrt(acc);
  }();
  const double violation =
      solve_quadratic(state, w, target, /*iterations=*/150, /*lr=*/0.2, true);
  // Multipliers pull W toward the block-sparse set...
  EXPECT_LT(violation, initial_violation * 0.5);
  // ...the projection zeroes the tiny quadrant...
  const auto masks = state.masks();
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(masks[0](r, c), 0);
  }
  // ...and W tracks the dense target on the kept blocks.
  for (std::size_t i = 0; i < w[0].size(); ++i) {
    if (masks[0][i] != 0) {
      EXPECT_NEAR(w[0][i], target[i], 0.5);
    }
  }
}

TEST(Admm, ConvergesOnQuadraticToyProblem) {
  const MatrixD target = structured_target();
  auto w = random_weights(1, 8, 8);

  AdmmOptions opt;
  opt.rho = 1.0;
  opt.scheme.scheme = sparsify::Scheme::Block;
  opt.scheme.ratio = 0.25;
  opt.scheme.block_size = 2;
  AdmmState state(w, opt);
  const double violation =
      solve_quadratic(state, w, target, /*iterations=*/150, /*lr=*/0.2, false);
  EXPECT_LT(violation, 0.5);
  const auto masks = state.masks();
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(masks[0](r, c), 0);
  }
}

TEST(Admm, PenaltyGradientMatchesFiniteDifferences) {
  const auto w = random_weights(1, 6, 9);
  AdmmOptions opt;
  opt.rho = 0.3;
  opt.scheme.block_size = 3;
  opt.scheme.ratio = 0.25;
  AdmmState state(w, opt);
  state.round(w);

  std::vector<MatrixD> grads{MatrixD(6, 6, 0.0)};
  state.add_penalty_gradient(w, grads);
  const MatrixD numeric = donn::numerical_gradient(
      [&](const MatrixD& probe) {
        return state.penalty_value({probe});
      },
      w[0], 1e-6);
  EXPECT_LT(donn::gradient_rel_error(grads[0], numeric), 1e-6);
}

TEST(Slr, OptionValidation) {
  const auto w = random_weights(1, 4, 10);
  SlrOptions opt = test_options();
  opt.rho = 0.0;
  EXPECT_THROW(SlrState(w, opt), Error);
  opt = test_options();
  opt.s0 = -1.0;
  EXPECT_THROW(SlrState(w, opt), Error);
  EXPECT_THROW(SlrState({}, test_options()), Error);
}

}  // namespace
}  // namespace odonn::slr

// Tests for src/sparsify: the three schemes of Fig. 3, their structural
// guarantees, exact ratios, and failure modes.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sparsify/schemes.hpp"
#include "tensor/stats.hpp"

namespace odonn::sparsify {
namespace {

MatrixD random_weights(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  MatrixD w(n, n);
  for (auto& v : w) v = rng.uniform(-3.0, 3.0);
  return w;
}

TEST(Mask, RatioAndKeptCount) {
  SparsityMask m = full_mask(4, 4);
  EXPECT_DOUBLE_EQ(sparsity_ratio(m), 0.0);
  EXPECT_EQ(kept_count(m), 16u);
  m(0, 0) = 0;
  m(1, 1) = 0;
  EXPECT_DOUBLE_EQ(sparsity_ratio(m), 2.0 / 16.0);
  EXPECT_EQ(kept_count(m), 14u);
}

TEST(Mask, ApplyZeroesMaskedEntries) {
  MatrixD w(2, 2, 5.0);
  SparsityMask m = full_mask(2, 2);
  m(0, 1) = 0;
  apply_mask(w, m);
  EXPECT_DOUBLE_EQ(w(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(w(0, 0), 5.0);
  MatrixD wrong(3, 3, 1.0);
  EXPECT_THROW(apply_mask(wrong, m), ShapeError);
}

TEST(BlockSparsify, ExactRatioOnDivisibleGrid) {
  const MatrixD w = random_weights(12, 1);
  for (double ratio : {0.0, 0.25, 0.5, 1.0}) {
    const auto mask = block_sparsify(w, {3, ratio});
    EXPECT_NEAR(sparsity_ratio(mask), ratio, 1e-12) << "ratio " << ratio;
  }
}

TEST(BlockSparsify, RemovesSmallestNormBlocks) {
  MatrixD w(4, 4, 10.0);
  // Make block (0, 0) tiny.
  w.set_block(0, 0, MatrixD(2, 2, 0.01));
  const auto mask = block_sparsify(w, {2, 0.25});
  EXPECT_EQ(mask(0, 0), 0);
  EXPECT_EQ(mask(1, 1), 0);
  EXPECT_EQ(mask(2, 2), 1);
}

TEST(BlockSparsify, ZeroedAreasAreContiguousBlocks) {
  const MatrixD w = random_weights(12, 2);
  const auto mask = block_sparsify(w, {4, 0.33});
  // Every 4x4 block must be all-zero or all-one.
  for (std::size_t br = 0; br < 3; ++br) {
    for (std::size_t bc = 0; bc < 3; ++bc) {
      const auto first = mask(br * 4, bc * 4);
      for (std::size_t r = 0; r < 4; ++r) {
        for (std::size_t c = 0; c < 4; ++c) {
          EXPECT_EQ(mask(br * 4 + r, bc * 4 + c), first);
        }
      }
    }
  }
}

TEST(BlockSparsify, ThresholdVariant) {
  MatrixD w(4, 4, 1.0);
  w.set_block(2, 2, MatrixD(2, 2, 100.0));
  // Block norms: 2.0 for small blocks, 200 for the big one.
  const auto mask = block_sparsify_threshold(w, 2, 3.0);
  EXPECT_EQ(mask(0, 0), 0);
  EXPECT_EQ(mask(3, 3), 1);
}

TEST(BlockSparsify, NormsMatchManualComputation) {
  MatrixD w = {{3.0, 0.0}, {0.0, 4.0}};
  const MatrixD norms = block_l2_norms(w, 2);
  ASSERT_EQ(norms.size(), 1u);
  EXPECT_DOUBLE_EQ(norms(0, 0), 5.0);
}

TEST(BlockSparsify, SelectionMaskValidatesRange) {
  EXPECT_THROW(block_mask_from_selection(6, 6, 2, {{3, 0}}), ShapeError);
  const auto mask = block_mask_from_selection(6, 6, 2, {{0, 0}});
  EXPECT_EQ(mask(0, 0), 0);
  EXPECT_EQ(mask(1, 1), 0);
  EXPECT_EQ(mask(2, 2), 1);
}

TEST(MagnitudeSparsify, ExactRatioAndSmallestRemoved) {
  MatrixD w(4, 4);
  for (std::size_t i = 0; i < 16; ++i) w[i] = static_cast<double>(i) - 8.0;
  const auto mask = magnitude_sparsify(w, {0.25});
  EXPECT_NEAR(sparsity_ratio(mask), 0.25, 1e-12);
  // Values are i-8, so |values| = 8..0..7. The four smallest are 0 (i=8),
  // the two 1s (i=7, i=9) and — by stable tie-break on the two 2s — i=6.
  EXPECT_EQ(mask[6], 0);
  EXPECT_EQ(mask[7], 0);
  EXPECT_EQ(mask[8], 0);
  EXPECT_EQ(mask[9], 0);
  EXPECT_EQ(mask[0], 1);  // -8 survives
}

TEST(MagnitudeSparsify, ThresholdVariantMatchesPercentile) {
  const MatrixD w = random_weights(10, 3);
  const double thr = abs_percentile(w, 30.0);
  const auto by_threshold = magnitude_sparsify_threshold(w, thr);
  // ~30% of entries fall strictly below the 30th |.| percentile.
  const double ratio = sparsity_ratio(by_threshold);
  EXPECT_NEAR(ratio, 0.3, 0.05);
}

TEST(BankBalanced, EveryBankHasIdenticalSparsity) {
  const MatrixD w = random_weights(12, 4);
  const auto mask = bank_balanced_sparsify(w, {4, 0.5});
  for (std::size_t r = 0; r < 12; ++r) {
    for (std::size_t b0 = 0; b0 < 12; b0 += 4) {
      std::size_t zeros = 0;
      for (std::size_t i = 0; i < 4; ++i) {
        if (mask(r, b0 + i) == 0) ++zeros;
      }
      EXPECT_EQ(zeros, 2u) << "row " << r << " bank " << b0;
    }
  }
}

TEST(BankBalanced, RemovesSmallestWithinEachBank) {
  MatrixD w = {{5.0, 0.1, 3.0, 4.0, 0.2, 6.0}};
  const auto mask = bank_balanced_sparsify(w, {3, 1.0 / 3.0});
  EXPECT_EQ(mask(0, 1), 0);  // 0.1 smallest in bank 0
  EXPECT_EQ(mask(0, 4), 0);  // 0.2 smallest in bank 1
  EXPECT_EQ(kept_count(mask), 4u);
}

TEST(BankBalanced, RejectsNonDividingBankSize) {
  const MatrixD w = random_weights(10, 5);
  EXPECT_THROW(bank_balanced_sparsify(w, {3, 0.5}), ShapeError);
}

TEST(Schemes, ParseNamesRoundTrip) {
  EXPECT_EQ(parse_scheme("block"), Scheme::Block);
  EXPECT_EQ(parse_scheme("magnitude"), Scheme::NonStructured);
  EXPECT_EQ(parse_scheme("bank-balanced"), Scheme::BankBalanced);
  EXPECT_THROW(parse_scheme("diagonal"), ConfigError);
  EXPECT_STREQ(scheme_name(Scheme::Block), "block");
}

TEST(Schemes, DispatchProducesRequestedRatio) {
  const MatrixD w = random_weights(12, 6);
  for (Scheme s : {Scheme::Block, Scheme::NonStructured, Scheme::BankBalanced}) {
    SchemeOptions opt;
    opt.scheme = s;
    opt.ratio = 1.0 / 3.0;
    opt.block_size = 2;
    opt.bank_size = 3;
    const auto mask = sparsify(w, opt);
    EXPECT_NEAR(sparsity_ratio(mask), 1.0 / 3.0, 0.02) << scheme_name(s);
  }
}

TEST(Schemes, RatioValidation) {
  const MatrixD w = random_weights(6, 7);
  EXPECT_THROW(block_sparsify(w, {2, -0.1}), Error);
  EXPECT_THROW(block_sparsify(w, {2, 1.1}), Error);
  EXPECT_THROW(magnitude_sparsify(w, {2.0}), Error);
}

TEST(Schemes, DeterministicForSameInput) {
  const MatrixD w = random_weights(12, 8);
  SchemeOptions opt;
  opt.ratio = 0.25;
  opt.block_size = 3;
  EXPECT_EQ(sparsify(w, opt), sparsify(w, opt));
}

}  // namespace
}  // namespace odonn::sparsify

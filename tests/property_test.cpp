// Cross-cutting property suites: algebraic identities and invariants that
// must hold across parameter grids — propagation unitarity/composition per
// kernel, the FFT convolution theorem, roughness symmetries and scaling,
// sparsifier ratio exactness across shapes, loss invariances, quantizer
// idempotence, and the 2*pi equivalence class of the forward model.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <tuple>

#include "common/rng.hpp"
#include "donn/discrete.hpp"
#include "donn/loss.hpp"
#include "donn/model.hpp"
#include "donn/phase_mask.hpp"
#include "fft/fft_plan.hpp"
#include "optics/encode.hpp"
#include "optics/propagate.hpp"
#include "roughness/roughness.hpp"
#include "sparsify/schemes.hpp"

namespace odonn {
namespace {

constexpr double kTwoPi = 2.0 * M_PI;

// ------------------------------------------------------ propagation algebra

class PropagationAlgebra
    : public ::testing::TestWithParam<
          std::tuple<optics::KernelType, std::size_t, double>> {};

TEST_P(PropagationAlgebra, AdjointIdentity) {
  const auto [kernel, n, z] = GetParam();
  const optics::GridSpec grid{n, 2e-6};
  Rng rng(100 + n);
  MatrixC xa(n, n), ya(n, n);
  for (auto& v : xa) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  for (auto& v : ya) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  const optics::Field x(grid, std::move(xa));
  const optics::Field y(grid, std::move(ya));

  optics::Propagator prop(grid, {{kernel, 532e-9, z}, false});
  const auto px = prop.forward(x);
  const auto psy = prop.adjoint(y);
  std::complex<double> lhs(0.0, 0.0), rhs(0.0, 0.0);
  for (std::size_t i = 0; i < x.values().size(); ++i) {
    lhs += std::conj(px.values()[i]) * y.values()[i];
    rhs += std::conj(x.values()[i]) * psy.values()[i];
  }
  EXPECT_LT(std::abs(lhs - rhs), 1e-9 * (std::abs(lhs) + 1.0));
}

TEST_P(PropagationAlgebra, LinearityOfPropagation) {
  const auto [kernel, n, z] = GetParam();
  const optics::GridSpec grid{n, 2e-6};
  Rng rng(200 + n);
  MatrixC aa(n, n), ba(n, n);
  for (auto& v : aa) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  for (auto& v : ba) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  const optics::Field a(grid, aa);
  const optics::Field b(grid, ba);
  const std::complex<double> alpha(0.3, -0.8);

  MatrixC combo(n, n);
  for (std::size_t i = 0; i < combo.size(); ++i) {
    combo[i] = aa[i] + alpha * ba[i];
  }
  optics::Propagator prop(grid, {{kernel, 532e-9, z}, false});
  const auto pa = prop.forward(a);
  const auto pb = prop.forward(b);
  const auto pc = prop.forward(optics::Field(grid, std::move(combo)));
  for (std::size_t i = 0; i < pa.values().size(); ++i) {
    const auto expected = pa.values()[i] + alpha * pb.values()[i];
    EXPECT_LT(std::abs(pc.values()[i] - expected), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, PropagationAlgebra,
    ::testing::Combine(::testing::Values(optics::KernelType::AngularSpectrum,
                                         optics::KernelType::BandLimitedASM,
                                         optics::KernelType::FresnelTF),
                       ::testing::Values<std::size_t>(16, 25, 32),
                       ::testing::Values(0.0, 0.005, 0.02)));

TEST(PropagationAlgebra, ConvolutionTheoremHolds) {
  // Propagation is a circular convolution: P(x)(r) == IFFT(FFT(x) .* H).
  // Verify via an impulse: the propagated impulse IS the kernel's impulse
  // response, and propagating any field equals circularly convolving with
  // that response.
  const std::size_t n = 16;
  const optics::GridSpec grid{n, 2e-6};
  optics::Propagator prop(grid, {{optics::KernelType::AngularSpectrum,
                                  532e-9, 0.01}, false});
  optics::Field impulse(grid);
  impulse(0, 0) = 1.0;
  const auto response = prop.forward(impulse);

  Rng rng(7);
  MatrixC xa(n, n);
  for (auto& v : xa) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  const optics::Field x(grid, xa);
  const auto px = prop.forward(x);

  // Direct circular convolution with the impulse response.
  for (std::size_t r = 0; r < n; r += 5) {
    for (std::size_t c = 0; c < n; c += 5) {
      std::complex<double> acc(0.0, 0.0);
      for (std::size_t sr = 0; sr < n; ++sr) {
        for (std::size_t sc = 0; sc < n; ++sc) {
          acc += xa(sr, sc) * response.values()((r + n - sr) % n,
                                                (c + n - sc) % n);
        }
      }
      EXPECT_LT(std::abs(px.values()(r, c) - acc), 1e-9);
    }
  }
}

// ------------------------------------------------------ roughness symmetry

class RoughnessSymmetry
    : public ::testing::TestWithParam<roughness::Neighborhood> {};

TEST_P(RoughnessSymmetry, InvariantUnderTransposeAndFlips) {
  roughness::RoughnessOptions opt;
  opt.neighborhood = GetParam();
  Rng rng(11);
  MatrixD w(9, 9);
  for (auto& v : w) v = rng.uniform(0.0, kTwoPi);

  MatrixD transposed(9, 9), flipped_h(9, 9), flipped_v(9, 9);
  for (std::size_t r = 0; r < 9; ++r) {
    for (std::size_t c = 0; c < 9; ++c) {
      transposed(c, r) = w(r, c);
      flipped_h(r, 8 - c) = w(r, c);
      flipped_v(8 - r, c) = w(r, c);
    }
  }
  const double base = roughness::mask_roughness(w, opt);
  EXPECT_NEAR(roughness::mask_roughness(transposed, opt), base, 1e-9);
  EXPECT_NEAR(roughness::mask_roughness(flipped_h, opt), base, 1e-9);
  EXPECT_NEAR(roughness::mask_roughness(flipped_v, opt), base, 1e-9);
}

TEST_P(RoughnessSymmetry, PositiveHomogeneous) {
  // R(aW) = a R(W) for a >= 0 (both reductions are 1-homogeneous).
  roughness::RoughnessOptions opt;
  opt.neighborhood = GetParam();
  Rng rng(12);
  MatrixD w(7, 7);
  for (auto& v : w) v = rng.uniform(0.0, kTwoPi);
  const double base = roughness::mask_roughness(w, opt);
  for (double a : {0.5, 2.0, 7.25}) {
    MatrixD scaled = w;
    scaled *= a;
    EXPECT_NEAR(roughness::mask_roughness(scaled, opt), a * base,
                1e-9 * a * base);
  }
}

TEST_P(RoughnessSymmetry, TriangleInequalityOverMasks) {
  // R is built from norms of linear maps of W, so R(W1 + W2) <= R(W1)+R(W2).
  roughness::RoughnessOptions opt;
  opt.neighborhood = GetParam();
  Rng rng(13);
  MatrixD a(6, 6), b(6, 6);
  for (auto& v : a) v = rng.uniform(-3.0, 3.0);
  for (auto& v : b) v = rng.uniform(-3.0, 3.0);
  EXPECT_LE(roughness::mask_roughness(a + b, opt),
            roughness::mask_roughness(a, opt) +
                roughness::mask_roughness(b, opt) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Neighborhoods, RoughnessSymmetry,
                         ::testing::Values(roughness::Neighborhood::Four,
                                           roughness::Neighborhood::Eight));

// ------------------------------------------------------- sparsifier ratios

class SparsifierRatios
    : public ::testing::TestWithParam<std::tuple<sparsify::Scheme, double>> {};

TEST_P(SparsifierRatios, AchievedRatioMatchesRequested) {
  const auto [scheme, ratio] = GetParam();
  Rng rng(21);
  MatrixD w(24, 24);
  for (auto& v : w) v = rng.uniform(-1.0, 1.0);
  sparsify::SchemeOptions opt;
  opt.scheme = scheme;
  opt.ratio = ratio;
  opt.block_size = 4;   // divides 24
  opt.bank_size = 4;    // divides 24
  const auto mask = sparsify::sparsify(w, opt);
  EXPECT_NEAR(sparsify::sparsity_ratio(mask), ratio, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SparsifierRatios,
    ::testing::Combine(::testing::Values(sparsify::Scheme::Block,
                                         sparsify::Scheme::NonStructured,
                                         sparsify::Scheme::BankBalanced),
                       ::testing::Values(0.0, 0.25, 0.5, 0.75)));

TEST(SparsifierProperty, MasksAreIdempotentUnderReapplication) {
  Rng rng(22);
  MatrixD w(12, 12);
  for (auto& v : w) v = rng.uniform(-1.0, 1.0);
  const auto mask = sparsify::block_sparsify(w, {3, 0.25});
  MatrixD once = w;
  sparsify::apply_mask(once, mask);
  MatrixD twice = once;
  sparsify::apply_mask(twice, mask);
  EXPECT_EQ(once, twice);
  // Re-deriving the mask from the masked weights keeps the same support
  // (the zeroed blocks have the lowest possible norm).
  const auto mask2 = sparsify::block_sparsify(once, {3, 0.25});
  EXPECT_EQ(sparsify::kept_count(mask2), sparsify::kept_count(mask));
}

// ------------------------------------------------------------- loss algebra

TEST(LossProperty, SoftmaxInvariantToConstantShift) {
  const std::vector<double> logits{0.4, -0.2, 1.1, 0.0};
  auto shifted = logits;
  for (auto& v : shifted) v += 123.0;
  const auto p = donn::softmax(logits);
  const auto q = donn::softmax(shifted);
  for (std::size_t i = 0; i < p.size(); ++i) EXPECT_NEAR(p[i], q[i], 1e-12);
}

TEST(LossProperty, CrossEntropyGradSumsToZeroWithoutNorm) {
  donn::LossOptions opt;
  opt.type = donn::LossType::CrossEntropy;
  opt.norm = donn::NormMode::None;
  const auto res = donn::evaluate_loss({0.3, 0.9, 0.1}, 1, opt);
  double total = 0.0;
  for (double g : res.grad_sums) total += g;
  EXPECT_NEAR(total, 0.0, 1e-12);  // softmax-CE gradient sums to zero
}

TEST(LossProperty, TotalPowerNormMakesLossScaleInvariant) {
  donn::LossOptions opt;  // TotalPower
  const std::vector<double> sums{0.2, 0.05, 0.6, 0.15};
  auto scaled = sums;
  for (auto& v : scaled) v *= 37.0;
  const auto a = donn::evaluate_loss(sums, 2, opt);
  const auto b = donn::evaluate_loss(scaled, 2, opt);
  EXPECT_NEAR(a.loss, b.loss, 1e-9);
  EXPECT_EQ(a.predicted, b.predicted);
}

TEST(LossProperty, LossDecreasesAsCorrectClassDominates) {
  donn::LossOptions opt;
  double prev = 1e300;
  for (double strength : {1.0, 2.0, 4.0, 8.0}) {
    std::vector<double> sums{1.0, 1.0, 1.0, 1.0};
    sums[2] = strength;
    const double loss = donn::evaluate_loss(sums, 2, opt).loss;
    EXPECT_LT(loss, prev);
    prev = loss;
  }
}

// --------------------------------------------------------------- quantizer

class QuantizerLevels : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QuantizerLevels, Idempotent) {
  const std::size_t levels = GetParam();
  Rng rng(31);
  MatrixD phase(8, 8);
  for (auto& v : phase) v = rng.uniform(0.0, kTwoPi);
  const auto once = donn::quantize_phase(phase, {levels, true});
  const auto twice = donn::quantize_phase(once, {levels, true});
  EXPECT_LT(max_abs_diff(once, twice), 1e-12);
}

TEST_P(QuantizerLevels, OutputOnLevelGrid) {
  const std::size_t levels = GetParam();
  Rng rng(32);
  MatrixD phase(8, 8);
  for (auto& v : phase) v = rng.uniform(-10.0, 10.0);
  const auto q = donn::quantize_phase(phase, {levels, true});
  const double step = kTwoPi / static_cast<double>(levels);
  for (std::size_t i = 0; i < q.size(); ++i) {
    const double k = q[i] / step;
    EXPECT_NEAR(k, std::round(k), 1e-9);
    EXPECT_GE(q[i], 0.0);
    EXPECT_LT(q[i], kTwoPi);
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, QuantizerLevels,
                         ::testing::Values(2, 3, 4, 8, 16, 256));

// ------------------------------------------------- 2*pi equivalence classes

TEST(TwoPiEquivalence, ForwardModelInvariantToAnyIntegerMultiple) {
  Rng rng(41);
  donn::DonnConfig cfg = donn::DonnConfig::scaled(16);
  cfg.num_layers = 2;
  donn::DonnModel model(cfg, rng);
  MatrixD image(16, 16);
  for (auto& v : image) v = rng.uniform();
  const auto input = optics::encode_image(image, cfg.grid);
  const auto base = model.detector_sums(input);

  auto phases = model.phases();
  Rng pick(42);
  for (auto& phi : phases) {
    for (std::size_t i = 0; i < phi.size(); ++i) {
      // Random integer multiples, including negative ones.
      const long k = static_cast<long>(pick.uniform_index(7)) - 3;
      phi[i] += static_cast<double>(k) * kTwoPi;
    }
  }
  model.set_phases(std::move(phases));
  const auto shifted = model.detector_sums(input);
  for (std::size_t c = 0; c < base.size(); ++c) {
    EXPECT_NEAR(shifted[c], base[c], 1e-8 * (base[c] + 1.0));
  }
}

TEST(TwoPiEquivalence, WrapPhaseIsInferenceIdentity) {
  Rng rng(43);
  donn::DonnConfig cfg = donn::DonnConfig::scaled(16);
  donn::DonnModel model(cfg, rng);
  MatrixD image(16, 16);
  for (auto& v : image) v = rng.uniform();
  const auto input = optics::encode_image(image, cfg.grid);
  const auto base = model.detector_sums(input);

  auto phases = model.phases();
  for (auto& phi : phases) {
    phi += MatrixD(16, 16, 4.0 * kTwoPi);  // push far out of range
    phi = donn::wrap_phase(phi);
  }
  model.set_phases(std::move(phases));
  const auto wrapped = model.detector_sums(input);
  for (std::size_t c = 0; c < base.size(); ++c) {
    EXPECT_NEAR(wrapped[c], base[c], 1e-8 * (base[c] + 1.0));
  }
}

// ----------------------------------------------------------- FFT identities

TEST(FftProperty, ConjugationSymmetry) {
  // FFT(conj(x)) == conj(reverse(FFT(x))) (frequency reversal).
  const std::size_t n = 24;  // Bluestein path
  Rng rng(51);
  std::vector<fft::Cplx> x(n);
  for (auto& v : x) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  auto fx = x;
  fft::transform(fx, fft::Direction::Forward);
  std::vector<fft::Cplx> cx(n);
  for (std::size_t i = 0; i < n; ++i) cx[i] = std::conj(x[i]);
  fft::transform(cx, fft::Direction::Forward);
  for (std::size_t k = 0; k < n; ++k) {
    const auto expected = std::conj(fx[(n - k) % n]);
    EXPECT_LT(std::abs(cx[k] - expected), 1e-9);
  }
}

TEST(FftProperty, RealInputHasHermitianSpectrum) {
  const std::size_t n = 20;
  Rng rng(52);
  std::vector<fft::Cplx> x(n);
  for (auto& v : x) v = {rng.uniform(-1.0, 1.0), 0.0};
  fft::transform(x, fft::Direction::Forward);
  for (std::size_t k = 1; k < n; ++k) {
    EXPECT_LT(std::abs(x[k] - std::conj(x[n - k])), 1e-9);
  }
}

}  // namespace
}  // namespace odonn

// Tests for src/train: optimizers (convergence + known update laws),
// schedules, metrics, and the Trainer end to end on small separable tasks,
// including the regularizer and SLR integrations.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "donn/model.hpp"
#include "fab/spec.hpp"
#include "roughness/report.hpp"
#include "train/metrics.hpp"
#include "train/optim.hpp"
#include "train/recipe.hpp"
#include "train/schedule.hpp"
#include "train/trainer.hpp"

namespace odonn::train {
namespace {

/// Quadratic objective 0.5 * ||w - target||^2 for optimizer tests.
MatrixD quadratic_grad(const MatrixD& w, const MatrixD& target) {
  MatrixD g = w;
  g -= target;
  return g;
}

TEST(Optim, SgdConvergesOnQuadratic) {
  MatrixD target(3, 3, 2.0);
  std::vector<MatrixD> w{MatrixD(3, 3, 0.0)};
  Sgd opt(0.3);
  for (int i = 0; i < 100; ++i) {
    std::vector<MatrixD> g{quadratic_grad(w[0], target)};
    opt.step(w, g);
  }
  EXPECT_LT(max_abs_diff(w[0], target), 1e-6);
}

TEST(Optim, MomentumAcceleratesConvergence) {
  MatrixD target(3, 3, 2.0);
  std::vector<MatrixD> plain{MatrixD(3, 3, 0.0)};
  std::vector<MatrixD> fast{MatrixD(3, 3, 0.0)};
  Sgd sgd(0.05);
  Sgd mom(0.05, 0.9);
  for (int i = 0; i < 40; ++i) {
    std::vector<MatrixD> g1{quadratic_grad(plain[0], target)};
    sgd.step(plain, g1);
    std::vector<MatrixD> g2{quadratic_grad(fast[0], target)};
    mom.step(fast, g2);
  }
  EXPECT_LT(max_abs_diff(fast[0], target), max_abs_diff(plain[0], target));
}

TEST(Optim, AdamFirstStepHasMagnitudeLr) {
  // With bias correction, Adam's very first update is lr * g/|g| (+eps).
  std::vector<MatrixD> w{MatrixD(1, 2, 0.0)};
  std::vector<MatrixD> g{MatrixD(1, 2, 0.0)};
  g[0][0] = 0.5;
  g[0][1] = -3.0;
  Adam opt(0.1);
  opt.step(w, g);
  EXPECT_NEAR(w[0][0], -0.1, 1e-6);
  EXPECT_NEAR(w[0][1], 0.1, 1e-6);
}

TEST(Optim, AdamConvergesOnQuadratic) {
  MatrixD target(4, 4, -1.5);
  std::vector<MatrixD> w{MatrixD(4, 4, 3.0)};
  Adam opt(0.2);
  for (int i = 0; i < 300; ++i) {
    std::vector<MatrixD> g{quadratic_grad(w[0], target)};
    opt.step(w, g);
  }
  EXPECT_LT(max_abs_diff(w[0], target), 1e-3);
}

TEST(Optim, ResetClearsState) {
  std::vector<MatrixD> w{MatrixD(1, 1, 0.0)};
  std::vector<MatrixD> g{MatrixD(1, 1, 1.0)};
  Adam opt(0.1);
  opt.step(w, g);
  const double first = w[0][0];
  opt.reset();
  std::vector<MatrixD> w2{MatrixD(1, 1, 0.0)};
  opt.step(w2, g);
  EXPECT_DOUBLE_EQ(w2[0][0], first);
}

TEST(Optim, FactoryAndValidation) {
  EXPECT_NO_THROW(make_optimizer("adam", 0.1));
  EXPECT_NO_THROW(make_optimizer("SGD", 0.1));
  EXPECT_NO_THROW(make_optimizer("adamw", 0.1));
  EXPECT_THROW(make_optimizer("lion", 0.1), ConfigError);
  EXPECT_THROW(Adam(-0.1), Error);
  std::vector<MatrixD> w{MatrixD(2, 2, 0.0)};
  std::vector<MatrixD> bad{MatrixD(3, 3, 0.0)};
  Sgd opt(0.1);
  EXPECT_THROW(opt.step(w, bad), ShapeError);
}

TEST(Schedule, ConstantStepCosine) {
  ConstantLr constant(0.5);
  EXPECT_DOUBLE_EQ(constant.at(0), 0.5);
  EXPECT_DOUBLE_EQ(constant.at(100), 0.5);

  StepDecayLr step(1.0, 0.5, 10);
  EXPECT_DOUBLE_EQ(step.at(9), 1.0);
  EXPECT_DOUBLE_EQ(step.at(10), 0.5);
  EXPECT_DOUBLE_EQ(step.at(25), 0.25);

  CosineLr cosine(1.0, 0.01, 10);
  EXPECT_DOUBLE_EQ(cosine.at(0), 1.0);
  EXPECT_NEAR(cosine.at(10), 0.01, 1e-12);
  EXPECT_GT(cosine.at(3), cosine.at(7));
}

TEST(Metrics, ConfusionMatrixAccuracyAndRecall) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(1, 0);  // one class-0 sample misread as 1
  cm.add(1, 1);
  cm.add(2, 2);
  EXPECT_EQ(cm.total(), 5u);
  EXPECT_NEAR(cm.accuracy(), 4.0 / 5.0, 1e-12);
  const auto recall = cm.per_class_recall();
  EXPECT_NEAR(recall[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(recall[1], 1.0, 1e-12);

  ConfusionMatrix other(3);
  other.add(0, 0);
  cm.merge(other);
  EXPECT_EQ(cm.total(), 6u);
  EXPECT_THROW(cm.add(3, 0), Error);
}

/// Binary task on the optical grid: class 0 lights the left half, class 1
/// the right half. Very separable; a DONN learns it in a couple of epochs.
data::Dataset halves_dataset(std::size_t n, std::size_t count,
                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<MatrixD> images;
  std::vector<std::size_t> labels;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t label = i % 2;
    MatrixD img(n, n, 0.0);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        const bool left = c < n / 2;
        if (left == (label == 0)) {
          img(r, c) = 0.6 + 0.4 * rng.uniform();
        } else if (rng.bernoulli(0.05)) {
          img(r, c) = 0.3 * rng.uniform();
        }
      }
    }
    images.push_back(std::move(img));
    labels.push_back(label);
  }
  return data::Dataset(std::move(images), std::move(labels), 2);
}

donn::DonnConfig tiny_config(std::size_t n = 24) {
  donn::DonnConfig cfg = donn::DonnConfig::scaled(n);
  cfg.num_layers = 2;
  cfg.num_classes = 2;
  return cfg;
}

TEST(Trainer, LearnsSeparableBinaryTask) {
  const auto cfg = tiny_config();
  Rng rng(3);
  donn::DonnModel model(cfg, rng);
  const auto train_set = halves_dataset(cfg.grid.n, 80, 1);
  const auto test_set = halves_dataset(cfg.grid.n, 40, 2);

  const double before = evaluate_accuracy(model, test_set);
  TrainOptions opt;
  opt.epochs = 4;
  opt.batch_size = 20;
  opt.lr = 0.2;
  opt.seed = 5;
  Trainer trainer(model, train_set, opt);
  const auto history = trainer.run();
  ASSERT_EQ(history.size(), 4u);
  for (const auto& st : history) {
    EXPECT_TRUE(std::isfinite(st.data_loss));
  }
  const double after = evaluate_accuracy(model, test_set);
  EXPECT_GT(after, 0.85);
  EXPECT_GE(after, before);
}

TEST(Trainer, RoughnessRegularizationLowersMaskRoughness) {
  const auto cfg = tiny_config();
  const auto train_set = halves_dataset(cfg.grid.n, 60, 3);

  auto run_with_p = [&](double p) {
    Rng rng(7);
    donn::DonnModel model(cfg, rng);
    TrainOptions opt;
    opt.epochs = 3;
    opt.batch_size = 20;
    opt.lr = 0.2;
    opt.seed = 9;
    opt.reg.roughness_p = p;
    Trainer trainer(model, train_set, opt);
    trainer.run();
    return roughness::report(model.phases()).overall;
  };
  const double rough_noreg = run_with_p(0.0);
  const double rough_reg = run_with_p(0.5);
  EXPECT_LT(rough_reg, rough_noreg * 0.9);
}

TEST(Trainer, SlrDrivesBlockSparsity) {
  const auto cfg = tiny_config();
  Rng rng(11);
  donn::DonnModel model(cfg, rng);
  const auto train_set = halves_dataset(cfg.grid.n, 60, 4);

  // Dense warmup.
  {
    TrainOptions opt;
    opt.epochs = 2;
    opt.batch_size = 20;
    opt.lr = 0.2;
    Trainer trainer(model, train_set, opt);
    trainer.run();
  }
  slr::SlrOptions slr_opt;
  slr_opt.scheme.scheme = sparsify::Scheme::Block;
  slr_opt.scheme.ratio = 0.25;
  slr_opt.scheme.block_size = 4;
  slr::SlrState state(model.phases(), slr_opt);
  {
    TrainOptions opt;
    opt.epochs = 2;
    opt.batch_size = 20;
    opt.lr = 0.01;
    opt.slr = &state;
    Trainer trainer(model, train_set, opt);
    trainer.run();
  }
  model.set_masks(state.masks());
  double total_sparsity = 0.0;
  for (const auto& m : model.masks()) {
    total_sparsity += sparsify::sparsity_ratio(m);
  }
  EXPECT_NEAR(total_sparsity / 2.0, 0.25, 1e-9);
  // Still better than chance after hard pruning.
  const auto test_set = halves_dataset(cfg.grid.n, 40, 5);
  EXPECT_GT(evaluate_accuracy(model, test_set), 0.6);
}

TEST(Trainer, DeployedAccuracyDoesNotBeatClean) {
  const auto cfg = tiny_config();
  Rng rng(13);
  donn::DonnModel model(cfg, rng);
  const auto train_set = halves_dataset(cfg.grid.n, 60, 6);
  TrainOptions opt;
  opt.epochs = 3;
  opt.batch_size = 20;
  opt.lr = 0.2;
  Trainer trainer(model, train_set, opt);
  trainer.run();

  const auto test_set = halves_dataset(cfg.grid.n, 40, 7);
  const double clean = evaluate_accuracy(model, test_set);
  donn::CrosstalkOptions strong;
  strong.strength = 0.9;
  strong.half_response = 0.3;
  const double deployed =
      evaluate_deployed_accuracy(model, test_set, strong);
  EXPECT_LE(deployed, clean + 0.05);
}

TEST(Trainer, RejectsBadConfigurations) {
  const auto cfg = tiny_config();
  Rng rng(17);
  donn::DonnModel model(cfg, rng);
  const auto good = halves_dataset(cfg.grid.n, 10, 8);
  const auto wrong_size = halves_dataset(cfg.grid.n / 2, 10, 8);
  TrainOptions opt;
  EXPECT_THROW(Trainer(model, wrong_size, opt), ShapeError);

  slr::SlrOptions so;
  so.scheme.block_size = 4;
  slr::SlrState s1(model.phases(), so);
  slr::AdmmState s2(model.phases(), {0.1, so.scheme});
  TrainOptions both;
  both.slr = &s1;
  both.admm = &s2;
  EXPECT_THROW(Trainer(model, good, both), Error);
}

TEST(Trainer, AugmentationTrainsAndGeneralizes) {
  const auto cfg = tiny_config();
  Rng rng(19);
  donn::DonnModel model(cfg, rng);
  const auto train_set = halves_dataset(cfg.grid.n, 60, 9);
  TrainOptions opt;
  opt.epochs = 3;
  opt.batch_size = 20;
  opt.lr = 0.2;
  opt.augment = true;
  opt.augment_options.noise_sigma = 0.05;
  Trainer trainer(model, train_set, opt);
  const auto history = trainer.run();
  for (const auto& st : history) EXPECT_TRUE(std::isfinite(st.data_loss));
  const auto test_set = halves_dataset(cfg.grid.n, 40, 10);
  EXPECT_GT(evaluate_accuracy(model, test_set), 0.8);
}

TEST(Trainer, RobustTrainingCountsRealizationsAndIsBitwiseDeterministic) {
  const auto cfg = tiny_config(16);
  const auto train_set = halves_dataset(cfg.grid.n, 60, 11);
  const auto stack =
      fab::parse_perturbation_stack("roughness(sigma_um=0.04,corr=2)");

  const auto run_robust = [&](bool per_epoch, std::uint64_t counter_start) {
    Rng rng(23);
    donn::DonnModel model(cfg, rng);
    TrainOptions opt;
    opt.epochs = 2;
    opt.batch_size = 20;  // 60 samples -> 3 batches per epoch
    opt.lr = 0.05;
    opt.robust.stack = &stack;
    opt.robust.realizations = 2;
    opt.robust.per_epoch = per_epoch;
    opt.robust.counter_start = counter_start;
    Trainer trainer(model, train_set, opt);
    const auto history = trainer.run();
    for (const auto& st : history) EXPECT_TRUE(std::isfinite(st.data_loss));
    return std::pair(trainer.realizations_sampled(), model.phases());
  };

  // Per-batch sampling: 2 epochs x 3 batches x K=2; per-epoch: 2 x K.
  const auto [per_batch_count, phases_a] = run_robust(false, 0);
  EXPECT_EQ(per_batch_count, 12u);
  const auto [per_epoch_count, phases_b] = run_robust(true, 0);
  EXPECT_EQ(per_epoch_count, 4u);
  // The two sampling cadences draw different streams -> different models.
  EXPECT_GT(max_abs_diff(phases_a[0], phases_b[0]), 0.0);

  // counter_start shifts the stream (resume contract) and is included in
  // the total.
  const auto [resumed_count, phases_c] = run_robust(false, 12);
  EXPECT_EQ(resumed_count, 24u);
  EXPECT_GT(max_abs_diff(phases_a[0], phases_c[0]), 0.0);

  // Bitwise determinism: identical options reproduce identical phases.
  const auto [replay_count, phases_replay] = run_robust(false, 0);
  EXPECT_EQ(replay_count, per_batch_count);
  for (std::size_t l = 0; l < phases_a.size(); ++l) {
    EXPECT_EQ(max_abs_diff(phases_a[l], phases_replay[l]), 0.0);
  }
}

TEST(Trainer, RobustTrainingLearnsUnderFabricationNoise) {
  // Noise-in-the-loop training on the separable task still learns it: the
  // expected-fabricated-loss objective is a usable training signal, and
  // the reported stats are the perturbed (not clean) quantities.
  const auto cfg = tiny_config(16);
  Rng rng(29);
  donn::DonnModel model(cfg, rng);
  const auto train_set = halves_dataset(cfg.grid.n, 80, 13);
  const auto test_set = halves_dataset(cfg.grid.n, 40, 14);
  const auto stack =
      fab::parse_perturbation_stack("roughness(sigma_um=0.03,corr=2)+misalign");

  TrainOptions opt;
  opt.epochs = 4;
  opt.batch_size = 20;
  opt.lr = 0.2;
  opt.robust.stack = &stack;
  opt.robust.realizations = 2;
  Trainer trainer(model, train_set, opt);
  const auto history = trainer.run();
  ASSERT_EQ(history.size(), 4u);
  for (const auto& st : history) {
    EXPECT_TRUE(std::isfinite(st.data_loss));
    EXPECT_GE(st.train_accuracy, 0.0);
    EXPECT_LE(st.train_accuracy, 1.0);
  }
  EXPECT_GT(evaluate_accuracy(model, test_set), 0.8);
}

TEST(Trainer, RobustTrainingRejectsZeroAndOddAntitheticRealizations) {
  const auto cfg = tiny_config(16);
  Rng rng(31);
  donn::DonnModel model(cfg, rng);
  const auto train_set = halves_dataset(cfg.grid.n, 20, 15);
  const auto stack = fab::parse_perturbation_stack("quantize(levels=8)");
  TrainOptions opt;
  opt.robust.stack = &stack;
  opt.robust.realizations = 0;
  EXPECT_THROW(Trainer(model, train_set, opt), Error);
  // Odd K with antithetic pairing would straddle pair boundaries across
  // steps (silent plain sampling) — rejected up front.
  opt.robust.realizations = 3;
  opt.robust.antithetic = true;
  EXPECT_THROW(Trainer(model, train_set, opt), Error);
  opt.robust.antithetic = false;
  EXPECT_NO_THROW(Trainer(model, train_set, opt));
}

TEST(Recipe, ParseAndNames) {
  EXPECT_EQ(parse_recipe("baseline"), RecipeKind::Baseline);
  EXPECT_EQ(parse_recipe("ours-c"), RecipeKind::OursC);
  EXPECT_EQ(parse_recipe("D"), RecipeKind::OursD);
  EXPECT_THROW(parse_recipe("ours-z"), ConfigError);
  EXPECT_STREQ(recipe_name(RecipeKind::OursB), "ours-b");
}

}  // namespace
}  // namespace odonn::train

// Tests for src/fft: correctness against the naive DFT, inverse round
// trips, Parseval, linearity, shift theorem, 2-D transforms, fftshift, and
// frequency coordinates — parameterized across power-of-two and Bluestein
// sizes (including the paper's 200).
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "fft/dft_ref.hpp"
#include "fft/fft2d.hpp"
#include "fft/fft_plan.hpp"

namespace odonn::fft {
namespace {

std::vector<Cplx> random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Cplx> signal(n);
  for (auto& v : signal) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  return signal;
}

double max_err(const std::vector<Cplx>& a, const std::vector<Cplx>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

TEST(FftPlan, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(200), 256u);
  EXPECT_EQ(next_pow2(257), 512u);
}

TEST(FftPlan, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(200));
  EXPECT_FALSE(is_pow2(0));
}

TEST(FftPlan, EngineSelection) {
  EXPECT_FALSE(Plan(64).uses_bluestein());
  EXPECT_TRUE(Plan(200).uses_bluestein());
  EXPECT_TRUE(Plan(13).uses_bluestein());
}

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  auto signal = random_signal(n, 100 + n);
  const auto expected = dft_reference(signal, Direction::Forward);
  Plan(n).execute(signal.data(), Direction::Forward);
  EXPECT_LT(max_err(signal, expected), 1e-9 * static_cast<double>(n));
}

TEST_P(FftSizes, InverseMatchesNaiveDft) {
  const std::size_t n = GetParam();
  auto signal = random_signal(n, 200 + n);
  const auto expected = dft_reference(signal, Direction::Inverse);
  Plan(n).execute(signal.data(), Direction::Inverse);
  EXPECT_LT(max_err(signal, expected), 1e-9 * static_cast<double>(n));
}

TEST_P(FftSizes, RoundTripIsIdentity) {
  const std::size_t n = GetParam();
  const auto original = random_signal(n, 300 + n);
  auto signal = original;
  const Plan plan(n);
  plan.execute(signal.data(), Direction::Forward);
  plan.execute(signal.data(), Direction::Inverse);
  EXPECT_LT(max_err(signal, original), 1e-10 * static_cast<double>(n));
}

TEST_P(FftSizes, ParsevalHolds) {
  const std::size_t n = GetParam();
  auto signal = random_signal(n, 400 + n);
  double time_energy = 0.0;
  for (const auto& v : signal) time_energy += std::norm(v);
  Plan(n).execute(signal.data(), Direction::Forward);
  double freq_energy = 0.0;
  for (const auto& v : signal) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy, time_energy * static_cast<double>(n),
              1e-8 * time_energy * static_cast<double>(n));
}

TEST_P(FftSizes, Linearity) {
  const std::size_t n = GetParam();
  const auto a = random_signal(n, 500 + n);
  const auto b = random_signal(n, 600 + n);
  const Cplx alpha(0.7, -0.3);
  std::vector<Cplx> combo(n);
  for (std::size_t i = 0; i < n; ++i) combo[i] = a[i] + alpha * b[i];

  auto fa = a, fb = b;
  const Plan plan(n);
  plan.execute(fa.data(), Direction::Forward);
  plan.execute(fb.data(), Direction::Forward);
  plan.execute(combo.data(), Direction::Forward);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_LT(std::abs(combo[i] - (fa[i] + alpha * fb[i])), 1e-9 * n);
  }
}

TEST_P(FftSizes, ImpulseTransformsToConstant) {
  const std::size_t n = GetParam();
  std::vector<Cplx> signal(n, Cplx(0.0, 0.0));
  signal[0] = Cplx(1.0, 0.0);
  Plan(n).execute(signal.data(), Direction::Forward);
  for (const auto& v : signal) EXPECT_LT(std::abs(v - Cplx(1.0, 0.0)), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16, 27,
                                           32, 50, 64, 100, 128, 200, 256));

TEST(Fft2d, MatchesNaive2dDft) {
  const std::size_t rows = 12, cols = 10;
  Rng rng(9);
  std::vector<Cplx> data(rows * cols);
  for (auto& v : data) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  const auto expected = dft2d_reference(data, rows, cols, Direction::Forward);
  transform_2d(data.data(), rows, cols, Direction::Forward);
  EXPECT_LT(max_err(data, expected), 1e-9);
}

TEST(Fft2d, RoundTrip) {
  const std::size_t rows = 20, cols = 20;
  Rng rng(10);
  std::vector<Cplx> data(rows * cols);
  for (auto& v : data) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  const auto original = data;
  transform_2d(data.data(), rows, cols, Direction::Forward);
  transform_2d(data.data(), rows, cols, Direction::Inverse);
  EXPECT_LT(max_err(data, original), 1e-10);
}

TEST(Fft2d, FftShiftMovesZeroBinToCenter) {
  const std::size_t n = 8;
  std::vector<Cplx> data(n * n, Cplx(0.0, 0.0));
  data[0] = Cplx(1.0, 0.0);  // DC bin
  fftshift_2d(data.data(), n, n);
  EXPECT_DOUBLE_EQ(data[(n / 2) * n + n / 2].real(), 1.0);
}

TEST(Fft2d, ShiftInverseShiftIsIdentityEvenAndOdd) {
  for (std::size_t n : {8u, 9u}) {
    std::vector<Cplx> data(n * n);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = Cplx(static_cast<double>(i), 0.0);
    }
    auto original = data;
    fftshift_2d(data.data(), n, n);
    ifftshift_2d(data.data(), n, n);
    EXPECT_LT(max_err(data, original), 0.0 + 1e-15);
  }
}

TEST(Fft2d, FftFreqsMatchNumpyConvention) {
  const auto f = fft_freqs(8, 0.5);  // spacing 0.5 => df = 1/4
  ASSERT_EQ(f.size(), 8u);
  EXPECT_DOUBLE_EQ(f[0], 0.0);
  EXPECT_DOUBLE_EQ(f[1], 0.25);
  EXPECT_DOUBLE_EQ(f[3], 0.75);
  EXPECT_DOUBLE_EQ(f[4], -1.0);
  EXPECT_DOUBLE_EQ(f[7], -0.25);
}

TEST(Fft2d, FftFreqsOddLength) {
  const auto f = fft_freqs(5, 1.0);
  EXPECT_DOUBLE_EQ(f[0], 0.0);
  EXPECT_DOUBLE_EQ(f[2], 0.4);
  EXPECT_DOUBLE_EQ(f[3], -0.4);
  EXPECT_DOUBLE_EQ(f[4], -0.2);
}

TEST(FftPlan, ShiftTheorem) {
  // Circular shift by s multiplies spectrum by exp(-2 pi i k s / n).
  const std::size_t n = 16, s = 3;
  auto signal = random_signal(n, 77);
  std::vector<Cplx> shifted(n);
  for (std::size_t i = 0; i < n; ++i) shifted[i] = signal[(i + s) % n];

  const Plan plan(n);
  auto f0 = signal;
  plan.execute(f0.data(), Direction::Forward);
  plan.execute(shifted.data(), Direction::Forward);
  for (std::size_t k = 0; k < n; ++k) {
    const double angle = 2.0 * M_PI * static_cast<double>(k * s % n) /
                         static_cast<double>(n);
    const Cplx expected = f0[k] * Cplx(std::cos(angle), std::sin(angle));
    EXPECT_LT(std::abs(shifted[k] - expected), 1e-9);
  }
}

TEST(FftPlan, ExecuteSpanChecksLength) {
  Plan plan(8);
  std::vector<Cplx> wrong(7);
  EXPECT_THROW(plan.execute(std::span<Cplx>(wrong), Direction::Forward),
               ShapeError);
}

TEST(FftPlan, PlanCacheReturnsSameInstance) {
  const auto a = plan_for(96);
  const auto b = plan_for(96);
  EXPECT_EQ(a.get(), b.get());
}

}  // namespace
}  // namespace odonn::fft

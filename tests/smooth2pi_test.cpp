// Tests for src/smooth2pi: Gumbel-sigmoid statistics, the exact 1-D DP
// (validated by exhaustive enumeration), greedy and Gumbel-Softmax solver
// quality, and the §III-D2 guarantee that 2*pi smoothing never hurts.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "roughness/roughness.hpp"
#include "smooth2pi/gumbel.hpp"
#include "smooth2pi/two_pi_opt.hpp"
#include "sparsify/block_sparsify.hpp"

namespace odonn::smooth2pi {
namespace {

constexpr double kTwoPi = 2.0 * M_PI;

TEST(Gumbel, SigmoidBasics) {
  EXPECT_DOUBLE_EQ(sigmoid(0.0), 0.5);
  EXPECT_NEAR(sigmoid(100.0), 1.0, 1e-12);
  EXPECT_NEAR(sigmoid(-100.0), 0.0, 1e-12);
  EXPECT_NEAR(sigmoid(2.0) + sigmoid(-2.0), 1.0, 1e-12);
}

TEST(Gumbel, SampleMeanTracksLogitSign) {
  Rng rng(1);
  double mean_pos = 0.0, mean_neg = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    mean_pos += gumbel_sigmoid_sample(2.0, 1.0, rng);
    mean_neg += gumbel_sigmoid_sample(-2.0, 1.0, rng);
  }
  mean_pos /= n;
  mean_neg /= n;
  EXPECT_GT(mean_pos, 0.75);
  EXPECT_LT(mean_neg, 0.25);
  EXPECT_NEAR(mean_pos + mean_neg, 1.0, 0.02);  // symmetry
}

TEST(Gumbel, LowTemperatureSharpensSamples) {
  Rng rng(2);
  int extreme_hot = 0, extreme_cold = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (std::abs(gumbel_sigmoid_sample(0.5, 5.0, rng) - 0.5) > 0.45) ++extreme_hot;
    if (std::abs(gumbel_sigmoid_sample(0.5, 0.05, rng) - 0.5) > 0.45) ++extreme_cold;
  }
  EXPECT_GT(extreme_cold, extreme_hot * 3);
}

TEST(Gumbel, AnnealInterpolatesLinearly) {
  EXPECT_DOUBLE_EQ(anneal_tau(2.0, 0.2, 0, 10), 2.0);
  EXPECT_DOUBLE_EQ(anneal_tau(2.0, 0.2, 9, 10), 0.2);
  EXPECT_NEAR(anneal_tau(2.0, 0.2, 4, 9), 1.1, 1e-12);
  EXPECT_DOUBLE_EQ(anneal_tau(2.0, 0.2, 0, 1), 0.2);
}

/// Brute-force optimum for tiny 1-row instances.
double brute_force_1d(const std::vector<double>& values,
                      const roughness::RoughnessOptions& ropt,
                      std::vector<std::uint8_t>* best_sel = nullptr) {
  const std::size_t n = values.size();
  double best = 1e300;
  for (std::size_t bits = 0; bits < (std::size_t{1} << n); ++bits) {
    MatrixD row(1, n);
    for (std::size_t i = 0; i < n; ++i) {
      row(0, i) = values[i] + (((bits >> i) & 1U) != 0 ? kTwoPi : 0.0);
    }
    const double r = roughness::mask_roughness(row, ropt);
    if (r < best) {
      best = r;
      if (best_sel != nullptr) {
        best_sel->assign(n, 0);
        for (std::size_t i = 0; i < n; ++i) {
          (*best_sel)[i] = static_cast<std::uint8_t>((bits >> i) & 1U);
        }
      }
    }
  }
  return best;
}

double selection_roughness(const std::vector<double>& values,
                           const std::vector<std::uint8_t>& sel,
                           const roughness::RoughnessOptions& ropt) {
  MatrixD row(1, values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    row(0, i) = values[i] + (sel[i] != 0 ? kTwoPi : 0.0);
  }
  return roughness::mask_roughness(row, ropt);
}

class Dp1d : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Dp1d, MatchesBruteForceOnRandomInstances) {
  Rng rng(GetParam());
  const std::size_t n = 2 + rng.uniform_index(9);  // 2..10
  std::vector<double> values(n);
  for (auto& v : values) v = rng.uniform(0.0, kTwoPi);
  // Mix in some zeros as sparsified pixels.
  for (auto& v : values) {
    if (rng.bernoulli(0.3)) v = 0.0;
  }
  for (auto nb : {roughness::Neighborhood::Four, roughness::Neighborhood::Eight}) {
    roughness::RoughnessOptions ropt;
    ropt.neighborhood = nb;
    const auto dp = exact_1d_selection(values, ropt);
    const double dp_score = selection_roughness(values, dp, ropt);
    const double brute = brute_force_1d(values, ropt);
    EXPECT_NEAR(dp_score, brute, 1e-9) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Dp1d, ::testing::Range<std::uint64_t>(1, 13));

TEST(Greedy, NeverWorseThanIdentityAndMatchesDpOn1d) {
  Rng rng(50);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 4 + rng.uniform_index(6);
    MatrixD row(1, n);
    std::vector<double> values(n);
    for (std::size_t i = 0; i < n; ++i) {
      values[i] = rng.bernoulli(0.4) ? 0.0 : rng.uniform(0.0, kTwoPi);
      row(0, i) = values[i];
    }
    roughness::RoughnessOptions ropt;
    const auto result = greedy_2pi(row, ropt);
    EXPECT_LE(result.roughness_after, result.roughness_before + 1e-12);
    // Greedy is locally optimal; on these tiny chains it should be within
    // 10% of the DP optimum.
    const auto dp = exact_1d_selection(values, ropt);
    const double dp_score = selection_roughness(values, dp, ropt);
    EXPECT_LE(result.roughness_after, dp_score * 1.10 + 1e-9);
    EXPECT_GE(result.roughness_after, dp_score - 1e-9);  // DP is optimal
  }
}

MatrixD sparsified_phase_mask(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  MatrixD phi(n, n);
  // A smooth-ish trained mask: values near 5 rad with mild variation.
  for (auto& v : phi) v = 5.0 + rng.uniform(-0.4, 0.4);
  const auto mask = sparsify::block_sparsify(phi, {n / 4, 0.25});
  sparsify::apply_mask(phi, mask);
  return phi;
}

TEST(Optimize2Pi, ReducesRoughnessOfSparsifiedMask) {
  // Sparsified pixels sit at 0 while their surroundings sit near 5 rad
  // (~2*pi - 1.3): lifting the zeros by 2*pi brings them within ~1.3 rad,
  // so a large reduction must be found (the paper's §III-D2 scenario).
  const MatrixD phi = sparsified_phase_mask(16, 3);
  TwoPiOptions opt;
  opt.iterations = 200;
  const auto result = optimize_2pi(phi, opt);
  EXPECT_LT(result.roughness_after, result.roughness_before * 0.9);
  EXPECT_GT(result.added_count, 0u);
}

TEST(Optimize2Pi, NeverWorseThanIdentity) {
  Rng rng(4);
  for (int trial = 0; trial < 4; ++trial) {
    MatrixD phi(10, 10);
    for (auto& v : phi) v = rng.uniform(0.0, kTwoPi);
    TwoPiOptions opt;
    opt.iterations = 60;
    opt.seed = 100 + static_cast<std::uint64_t>(trial);
    const auto result = optimize_2pi(phi, opt);
    EXPECT_LE(result.roughness_after, result.roughness_before + 1e-12);
  }
}

TEST(Optimize2Pi, DeterministicForSameSeed) {
  const MatrixD phi = sparsified_phase_mask(12, 5);
  TwoPiOptions opt;
  opt.iterations = 80;
  const auto a = optimize_2pi(phi, opt);
  const auto b = optimize_2pi(phi, opt);
  EXPECT_EQ(a.selection, b.selection);
  EXPECT_DOUBLE_EQ(a.roughness_after, b.roughness_after);
}

TEST(Optimize2Pi, DeterministicRelaxationAlsoWorks) {
  const MatrixD phi = sparsified_phase_mask(12, 6);
  TwoPiOptions opt;
  opt.iterations = 150;
  opt.stochastic = false;
  const auto result = optimize_2pi(phi, opt);
  EXPECT_LT(result.roughness_after, result.roughness_before * 0.95);
}

TEST(Optimize2Pi, SelectionMatchesOptimizedValues) {
  const MatrixD phi = sparsified_phase_mask(12, 7);
  const auto result = optimize_2pi(phi, {});
  for (std::size_t i = 0; i < phi.size(); ++i) {
    const double expected = phi[i] + (result.selection[i] != 0 ? kTwoPi : 0.0);
    EXPECT_DOUBLE_EQ(result.optimized[i], expected);
  }
  std::size_t count = 0;
  for (std::size_t i = 0; i < result.selection.size(); ++i) {
    if (result.selection[i] != 0) ++count;
  }
  EXPECT_EQ(count, result.added_count);
}

TEST(Optimize2Pi, GumbelComparableToGreedyOnSparsifiedMasks) {
  const MatrixD phi = sparsified_phase_mask(16, 8);
  TwoPiOptions opt;
  opt.iterations = 300;
  const auto gs = optimize_2pi(phi, opt);
  const auto greedy = greedy_2pi(phi);
  // GS should land within 15% of the greedy local optimum.
  EXPECT_LE(gs.roughness_after, greedy.roughness_after * 1.15);
}

TEST(Optimize2PiAll, ProcessesEveryLayer) {
  std::vector<MatrixD> masks{sparsified_phase_mask(12, 9),
                             sparsified_phase_mask(12, 10)};
  TwoPiOptions opt;
  opt.iterations = 100;
  const auto results = optimize_2pi_all(masks, opt);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    EXPECT_LE(r.roughness_after, r.roughness_before + 1e-12);
  }
}

}  // namespace
}  // namespace odonn::smooth2pi

// Tests for src/optics: propagation physics (energy conservation, adjoint
// identity, semigroup property, agreement with the direct Rayleigh-
// Sommerfeld reference), kernels and encoding.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "optics/encode.hpp"
#include "optics/field.hpp"
#include "optics/grid.hpp"
#include "optics/kernels.hpp"
#include "optics/propagate.hpp"
#include "optics/rs_direct.hpp"

namespace odonn::optics {
namespace {

constexpr double kLambda = 532e-9;

GridSpec test_grid(std::size_t n = 32) {
  // Pitch chosen so the pixel pitch exceeds lambda/2: every spatial
  // frequency on the grid is propagating (no evanescent loss), which makes
  // the ASM operator exactly unitary.
  return {n, 2e-6};
}

Field random_field(const GridSpec& grid, std::uint64_t seed) {
  Rng rng(seed);
  MatrixC amp(grid.n, grid.n);
  for (auto& v : amp) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  return Field(grid, std::move(amp));
}

Field gaussian_beam(const GridSpec& grid, double waist_fraction = 0.15) {
  const auto coords = spatial_coords(grid);
  const double waist = grid.extent() * waist_fraction;
  MatrixC amp(grid.n, grid.n);
  for (std::size_t r = 0; r < grid.n; ++r) {
    for (std::size_t c = 0; c < grid.n; ++c) {
      const double rr = coords[r] * coords[r] + coords[c] * coords[c];
      amp(r, c) = {std::exp(-rr / (waist * waist)), 0.0};
    }
  }
  Field f(grid, std::move(amp));
  f.normalize_power();
  return f;
}

std::complex<double> inner(const Field& a, const Field& b) {
  std::complex<double> acc(0.0, 0.0);
  for (std::size_t i = 0; i < a.values().size(); ++i) {
    acc += std::conj(a.values()[i]) * b.values()[i];
  }
  return acc;
}

TEST(Grid, ValidateRejectsBadSpecs) {
  EXPECT_THROW(validate({1, 1e-6}), ConfigError);
  EXPECT_THROW(validate({16, 0.0}), ConfigError);
  EXPECT_NO_THROW(validate({16, 1e-6}));
}

TEST(Grid, SpatialCoordsAreCenteredAndSpaced) {
  const GridSpec grid{8, 2.0};
  const auto x = spatial_coords(grid);
  EXPECT_DOUBLE_EQ(x[4], 0.0);  // center sample at n/2
  EXPECT_DOUBLE_EQ(x[5] - x[4], 2.0);
  EXPECT_DOUBLE_EQ(x[0], -8.0);
}

TEST(Field, PowerAndNormalization) {
  Field f = random_field(test_grid(16), 1);
  f.normalize_power(2.5);
  EXPECT_NEAR(f.power(), 2.5, 1e-12);
  const MatrixD intensity = f.intensity();
  EXPECT_NEAR(intensity.sum(), 2.5, 1e-12);
}

TEST(Field, ZeroFieldNormalizeIsNoop) {
  Field f(test_grid(8));
  f.normalize_power();
  EXPECT_DOUBLE_EQ(f.power(), 0.0);
}

TEST(Kernels, ParseNames) {
  EXPECT_EQ(parse_kernel("asm"), KernelType::AngularSpectrum);
  EXPECT_EQ(parse_kernel("BLASM"), KernelType::BandLimitedASM);
  EXPECT_EQ(parse_kernel("fresnel"), KernelType::FresnelTF);
  EXPECT_THROW(parse_kernel("warp"), ConfigError);
}

TEST(Kernels, ZeroDistanceIsIdentityKernel) {
  const auto h = transfer_function(test_grid(16), {KernelType::AngularSpectrum,
                                                   kLambda, 0.0});
  for (std::size_t i = 0; i < h.size(); ++i) {
    EXPECT_LT(std::abs(h[i] - std::complex<double>(1.0, 0.0)), 1e-12);
  }
}

TEST(Kernels, PropagatingBandHasUnitMagnitude) {
  const auto grid = test_grid(32);
  const auto h = transfer_function(grid, {KernelType::AngularSpectrum,
                                          kLambda, 0.01});
  for (std::size_t i = 0; i < h.size(); ++i) {
    EXPECT_NEAR(std::abs(h[i]), 1.0, 1e-12);  // all-propagating grid
  }
}

TEST(Kernels, EvanescentComponentsDecay) {
  // Sub-wavelength pitch puts high frequencies beyond 1/lambda.
  const GridSpec grid{32, 0.2e-6};
  const auto h = transfer_function(grid, {KernelType::AngularSpectrum,
                                          kLambda, 5e-6});
  // The highest frequency bin should be strongly attenuated.
  const std::size_t mid = 16;
  EXPECT_LT(std::abs(h(mid, mid)), 0.1);
  EXPECT_NEAR(std::abs(h(0, 0)), 1.0, 1e-12);
}

TEST(Kernels, BandLimitedZeroesAliasedFrequencies) {
  const auto grid = test_grid(32);
  // Large z so the band limit bites.
  const auto h = transfer_function(grid, {KernelType::BandLimitedASM,
                                          kLambda, 0.5});
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < h.size(); ++i) {
    if (std::abs(h[i]) == 0.0) ++zeros;
  }
  EXPECT_GT(zeros, h.size() / 4);
  EXPECT_NEAR(std::abs(h(0, 0)), 1.0, 1e-12);  // DC survives
}

TEST(Propagate, EnergyConservedOnPropagatingGrid) {
  const auto grid = test_grid(32);
  const Field in = random_field(grid, 2);
  Propagator prop(grid, {{KernelType::AngularSpectrum, kLambda, 0.02}, false});
  const Field out = prop.forward(in);
  EXPECT_NEAR(out.power(), in.power(), 1e-9 * in.power());
}

TEST(Propagate, ZeroDistanceIsIdentity) {
  const auto grid = test_grid(16);
  const Field in = random_field(grid, 3);
  Propagator prop(grid, {{KernelType::AngularSpectrum, kLambda, 0.0}, false});
  const Field out = prop.forward(in);
  EXPECT_LT(max_abs_diff(out.values(), in.values()), 1e-11);
}

TEST(Propagate, AdjointIdentityHolds) {
  // <P x, y> == <x, P* y> for random fields.
  const auto grid = test_grid(24);
  const Field x = random_field(grid, 4);
  const Field y = random_field(grid, 5);
  for (bool pad : {false, true}) {
    Propagator prop(grid, {{KernelType::AngularSpectrum, kLambda, 0.015}, pad});
    const auto lhs = inner(prop.forward(x), y);
    const auto rhs = inner(x, prop.adjoint(y));
    EXPECT_LT(std::abs(lhs - rhs), 1e-10 * std::abs(lhs) + 1e-12);
  }
}

TEST(Propagate, SemigroupComposition) {
  // P(z1) P(z2) == P(z1 + z2) for the unpadded transfer-function method.
  const auto grid = test_grid(32);
  const Field in = gaussian_beam(grid);
  const KernelSpec spec{KernelType::AngularSpectrum, kLambda, 0.02};
  Propagator whole(grid, {spec, false});
  const Field direct = whole.forward(in);
  const Field stepped = propagate_in_steps(in, spec, 4, false);
  EXPECT_LT(max_abs_diff(direct.values(), stepped.values()), 1e-9);
}

TEST(Propagate, ForwardThenBackwardDistanceRestoresField) {
  // P(z) followed by the adjoint (= back-propagation for unitary H) is the
  // identity on an all-propagating grid.
  const auto grid = test_grid(32);
  const Field in = random_field(grid, 6);
  Propagator prop(grid, {{KernelType::AngularSpectrum, kLambda, 0.01}, false});
  const Field back = prop.adjoint(prop.forward(in));
  EXPECT_LT(max_abs_diff(back.values(), in.values()), 1e-10);
}

TEST(Propagate, MatchesDirectRayleighSommerfeld) {
  // Spectral ASM and the O(n^4) direct RS convolution agree on a centered
  // Gaussian beam — but only in a geometry where the directly sampled RS
  // kernel is Nyquist-adequate: the kernel's local fringe frequency
  // k*(x/r)*pitch must stay below pi, i.e. max offset / z <= lambda/(2*pitch).
  // 32 x 16 um window, z = 60 mm satisfies that with margin while the beam
  // (waist 0.12 * aperture) stays inside the window.
  const GridSpec grid{32, 16e-6};
  const double z = 0.06;
  const Field in = gaussian_beam(grid, 0.12);
  Propagator prop(grid, {{KernelType::AngularSpectrum, kLambda, z}, true});
  const Field spectral = prop.forward(in);
  const Field direct = rs_direct_propagate(in, kLambda, z);

  const auto corr = inner(spectral, direct);
  const double denom = std::sqrt(spectral.power() * direct.power());
  EXPECT_GT(std::abs(corr) / denom, 0.95);
}

TEST(Propagate, FresnelAgreesWithAsmInParaxialRegime) {
  const GridSpec grid{32, 10e-6};
  const double z = 0.05;  // strongly paraxial at this aperture
  const Field in = gaussian_beam(grid, 0.12);
  Propagator asm_prop(grid, {{KernelType::AngularSpectrum, kLambda, z}, false});
  Propagator fre_prop(grid, {{KernelType::FresnelTF, kLambda, z}, false});
  const Field a = asm_prop.forward(in);
  const Field f = fre_prop.forward(in);
  const auto corr = inner(a, f);
  EXPECT_GT(std::abs(corr) / std::sqrt(a.power() * f.power()), 0.999);
}

TEST(Encode, AmplitudeEncodingNormalizesPower) {
  MatrixD image(16, 16, 0.0);
  image(8, 8) = 1.0;
  image(8, 9) = 0.5;
  const GridSpec grid{16, 1e-6};
  const Field f = encode_image(image, grid);
  EXPECT_NEAR(f.power(), 1.0, 1e-12);
  EXPECT_GT(std::abs(f(8, 8)), std::abs(f(8, 9)));
}

TEST(Encode, PhaseEncodingHasUniformMagnitude) {
  Rng rng(8);
  MatrixD image(8, 8);
  for (auto& v : image) v = rng.uniform();
  const GridSpec grid{8, 1e-6};
  EncodeOptions opt;
  opt.mode = Encoding::Phase;
  opt.normalize_power = false;
  const Field f = encode_image(image, grid, opt);
  for (std::size_t i = 0; i < f.values().size(); ++i) {
    EXPECT_NEAR(std::abs(f.values()[i]), 1.0, 1e-12);
  }
}

TEST(Encode, ResizedEncodingMatchesManualResize) {
  Rng rng(9);
  MatrixD small(7, 7);
  for (auto& v : small) v = rng.uniform();
  const GridSpec grid{21, 1e-6};
  const Field f = encode_resized(small, grid);
  EXPECT_EQ(f.n(), 21u);
  EXPECT_NEAR(f.power(), 1.0, 1e-12);
}

TEST(Encode, ShapeMismatchThrows) {
  MatrixD image(8, 8, 0.1);
  EXPECT_THROW(encode_image(image, {16, 1e-6}), ShapeError);
}

}  // namespace
}  // namespace odonn::optics

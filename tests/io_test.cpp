// Tests for src/io: PGM round trip, PPM output, CSV writer, colormaps,
// mask rendering.
#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "io/colormap.hpp"
#include "io/csv.hpp"
#include "io/mask_render.hpp"
#include "io/pgm.hpp"

namespace odonn::io {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(Pgm, RoundTripWithinQuantization) {
  Rng rng(1);
  MatrixD img(9, 13);
  for (auto& v : img) v = rng.uniform();
  const auto path = temp_path("round.pgm");
  write_pgm(path, img);
  const MatrixD back = read_pgm(path);
  ASSERT_EQ(back.rows(), 9u);
  ASSERT_EQ(back.cols(), 13u);
  EXPECT_LT(max_abs_diff(back, img), 1.0 / 255.0 + 1e-9);
}

TEST(Pgm, CustomRangeMapsLinearly) {
  MatrixD img(1, 3);
  img[0] = -1.0;
  img[1] = 0.0;
  img[2] = 1.0;
  const auto path = temp_path("range.pgm");
  write_pgm(path, img, -1.0, 1.0);
  const MatrixD back = read_pgm(path);
  EXPECT_NEAR(back[0], 0.0, 1e-9);
  EXPECT_NEAR(back[1], 0.5, 3e-3);
  EXPECT_NEAR(back[2], 1.0, 1e-9);
}

TEST(Pgm, ReadRejectsMalformedFiles) {
  const auto path = temp_path("bad.pgm");
  std::ofstream out(path);
  out << "P2\n2 2\n255\n0 0 0 0\n";  // ASCII PGM, not P5
  out.close();
  EXPECT_THROW(read_pgm(path), IoError);
  EXPECT_THROW(read_pgm(temp_path("missing.pgm")), IoError);
}

TEST(Pgm, WriteValidation) {
  EXPECT_THROW(write_pgm(temp_path("x.pgm"), MatrixD()), Error);
  MatrixD img(2, 2, 0.5);
  EXPECT_THROW(write_pgm(temp_path("x.pgm"), img, 1.0, 0.0), Error);
}

TEST(Ppm, WritesExpectedHeaderAndSize) {
  std::vector<Rgb> pixels(6, Rgb{10, 20, 30});
  const auto path = temp_path("img.ppm");
  write_ppm(path, pixels, 2, 3);
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  std::size_t w = 0, h = 0, maxv = 0;
  in >> magic >> w >> h >> maxv;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(w, 3u);
  EXPECT_EQ(h, 2u);
  in.get();
  std::string rest((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(rest.size(), 18u);  // 6 pixels x 3 bytes
}

TEST(Ppm, PixelCountMismatchThrows) {
  std::vector<Rgb> pixels(5);
  EXPECT_THROW(write_ppm(temp_path("bad.ppm"), pixels, 2, 3), ShapeError);
}

TEST(Colormap, ViridisEndpointsAndMonotoneLuma) {
  const Rgb low = viridis(0.0);
  const Rgb high = viridis(1.0);
  // Dark purple -> bright yellow.
  EXPECT_LT(low[1], 40);
  EXPECT_GT(high[0], 200);
  EXPECT_GT(high[1], 200);
  double prev_luma = -1.0;
  for (int i = 0; i <= 16; ++i) {
    const Rgb c = viridis(i / 16.0);
    const double luma = 0.299 * c[0] + 0.587 * c[1] + 0.114 * c[2];
    EXPECT_GT(luma, prev_luma);  // perceptually ordered ramp
    prev_luma = luma;
  }
}

TEST(Colormap, PhaseWheelIsCyclic) {
  const Rgb a = phase_wheel(0.0);
  const Rgb b = phase_wheel(1.0);
  EXPECT_EQ(a, b);
}

TEST(Csv, WritesHeaderAndRows) {
  const auto path = temp_path("data.csv");
  {
    CsvWriter csv(path, {"x", "y"});
    csv.row(std::vector<double>{1.0, 2.5});
    csv.row(std::vector<std::string>{"a", "b"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2.5");
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
}

TEST(Csv, CellCountMismatchThrows) {
  CsvWriter csv(temp_path("bad.csv"), {"a", "b", "c"});
  EXPECT_THROW(csv.row(std::vector<double>{1.0}), ShapeError);
}

TEST(MaskRender, WritesUpscaledPpm) {
  Rng rng(2);
  MatrixD phase(8, 8);
  for (auto& v : phase) v = rng.uniform(0.0, 6.28);
  phase(0, 0) = 0.0;  // sparsified pixel
  const auto path = temp_path("mask.ppm");
  MaskRenderOptions opt;
  opt.upscale = 3;
  render_phase_mask(path, phase, opt);

  std::ifstream in(path, std::ios::binary);
  std::string magic;
  std::size_t w = 0, h = 0;
  in >> magic >> w >> h;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(w, 24u);
  EXPECT_EQ(h, 24u);
}

}  // namespace
}  // namespace odonn::io

// End-to-end integration tests: the full recipe pipeline (train -> SLR
// sparsify -> 2*pi smooth -> evaluate) on a reduced configuration, checking
// the paper's qualitative claims hold on fresh synthetic data.
#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"
#include "data/transform.hpp"
#include "smooth2pi/two_pi_opt.hpp"
#include "train/recipe.hpp"
#include "train/trainer.hpp"

namespace odonn::train {
namespace {

struct TinySetup {
  RecipeOptions options;
  data::Dataset train;
  data::Dataset test;
};

TinySetup tiny_setup(std::uint64_t seed = 21) {
  TinySetup setup;
  setup.options.model = donn::DonnConfig::scaled(32);
  setup.options.model.num_layers = 2;
  setup.options.epochs_dense = 2;
  setup.options.epochs_sparse = 1;
  setup.options.epochs_finetune = 1;
  setup.options.batch_size = 25;
  setup.options.roughness_p = 0.1;
  setup.options.intra_q = 0.03;
  setup.options.scheme.block_size = 4;
  setup.options.scheme.ratio = 0.1;
  setup.options.two_pi.iterations = 2000;
  setup.options.seed = seed;

  const auto full = data::make_synthetic(data::SyntheticFamily::Digits, 360,
                                         seed + 1);
  const auto resized = data::resize_dataset(full, 32);
  Rng rng(seed + 2);
  auto [train, test] = resized.split(0.75, rng);
  setup.train = std::move(train);
  setup.test = std::move(test);
  return setup;
}

class RecipePipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    setup_ = new TinySetup(tiny_setup());
    baseline_ = new RecipeResult(run_recipe(RecipeKind::Baseline,
                                            setup_->options, setup_->train,
                                            setup_->test));
    ours_c_ = new RecipeResult(run_recipe(RecipeKind::OursC, setup_->options,
                                          setup_->train, setup_->test));
  }
  static void TearDownTestSuite() {
    delete setup_;
    delete baseline_;
    delete ours_c_;
    setup_ = nullptr;
    baseline_ = nullptr;
    ours_c_ = nullptr;
  }

  static TinySetup* setup_;
  static RecipeResult* baseline_;
  static RecipeResult* ours_c_;
};

TinySetup* RecipePipeline::setup_ = nullptr;
RecipeResult* RecipePipeline::baseline_ = nullptr;
RecipeResult* RecipePipeline::ours_c_ = nullptr;

TEST_F(RecipePipeline, BaselineLearnsAboveChance) {
  // 10-class task, chance = 0.1; even the tiny config should be well clear.
  EXPECT_GT(baseline_->accuracy, 0.35);
  EXPECT_DOUBLE_EQ(baseline_->sparsity, 0.0);
}

TEST_F(RecipePipeline, RoughnessAwareRecipeIsSmoother) {
  // The paper's central claim (Tables II-V): sparsity + roughness training
  // yields lower roughness than the baseline, at modest accuracy cost.
  EXPECT_LT(ours_c_->roughness_after, baseline_->roughness_before);
  EXPECT_GT(ours_c_->accuracy, baseline_->accuracy - 0.25);
}

TEST_F(RecipePipeline, TwoPiNeverIncreasesRoughness) {
  EXPECT_LE(baseline_->roughness_after, baseline_->roughness_before + 1e-9);
  EXPECT_LE(ours_c_->roughness_after, ours_c_->roughness_before + 1e-9);
}

TEST_F(RecipePipeline, SparsityHitsConfiguredRatio) {
  EXPECT_NEAR(ours_c_->sparsity, setup_->options.scheme.ratio, 0.02);
}

TEST_F(RecipePipeline, DeploymentGapNarrowsWithSmoothing) {
  // The motivation (§II-B): deployment degrades accuracy; smoother masks
  // degrade less. Check the smoothed variant is not worse than the raw
  // deployment of the same recipe.
  EXPECT_GE(ours_c_->deployed_accuracy_after_2pi + 0.05,
            ours_c_->deployed_accuracy);
}

TEST(Integration, TwoPiSmoothingPreservesInference) {
  // Train briefly, then verify §III-D2's core identity on real trained
  // masks: predictions before and after 2*pi addition are identical.
  auto setup = tiny_setup(33);
  Rng rng(setup.options.seed);
  donn::DonnModel model(setup.options.model, rng);
  TrainOptions topt;
  topt.epochs = 1;
  topt.batch_size = 25;
  topt.lr = 0.2;
  Trainer trainer(model, setup.train, topt);
  trainer.run();

  const double acc_before = evaluate_accuracy(model, setup.test);
  smooth2pi::TwoPiOptions tp;
  tp.iterations = 100;
  const auto results = smooth2pi::optimize_2pi_all(model.phases(), tp);
  std::vector<MatrixD> smoothed;
  for (const auto& r : results) smoothed.push_back(r.optimized);
  model.set_phases(std::move(smoothed));
  const double acc_after = evaluate_accuracy(model, setup.test);
  EXPECT_NEAR(acc_before, acc_after, 1.0 / static_cast<double>(setup.test.size()) + 1e-9);
}

TEST(Integration, TrainingIsReproducibleForFixedSeed) {
  auto setup = tiny_setup(55);
  setup.options.epochs_dense = 1;
  const auto a = run_recipe(RecipeKind::Baseline, setup.options, setup.train,
                            setup.test);
  const auto b = run_recipe(RecipeKind::Baseline, setup.options, setup.train,
                            setup.test);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
  EXPECT_DOUBLE_EQ(a.roughness_before, b.roughness_before);
}

}  // namespace
}  // namespace odonn::train

// Tests for src/serve: batched-vs-single-sample parity (bit-for-bit on
// predictions, detector sums and intensities, including pad2x and masked
// models), FFT-plan reuse across batches, registry round-trips through
// donn/serialize, engine request/future semantics under concurrent
// submission, and the stats percentile rules.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <future>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "donn/model.hpp"
#include "donn/serialize.hpp"
#include "fft/fft_plan.hpp"
#include "optics/encode.hpp"
#include "serve/batched_forward.hpp"
#include "serve/engine.hpp"
#include "serve/registry.hpp"
#include "serve/stats.hpp"
#include "sparsify/schemes.hpp"

namespace odonn::serve {
namespace {

donn::DonnConfig tiny_config(std::size_t n = 16, std::size_t layers = 2) {
  donn::DonnConfig cfg = donn::DonnConfig::scaled(n);
  cfg.num_layers = layers;
  cfg.init = donn::PhaseInit::Uniform;  // structured masks, not near-flat
  return cfg;
}

donn::DonnModel make_model(const donn::DonnConfig& cfg, std::uint64_t seed) {
  Rng rng(seed);
  return donn::DonnModel(cfg, rng);
}

std::vector<optics::Field> random_inputs(const optics::GridSpec& grid,
                                         std::size_t count,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<optics::Field> inputs;
  inputs.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    MatrixD image(grid.n, grid.n);
    for (auto& v : image) v = rng.uniform();
    inputs.push_back(optics::encode_image(image, grid));
  }
  return inputs;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(PropagatorInplace, MatchesFieldEntryPointExactly) {
  const donn::DonnConfig cfg = tiny_config(16, 1);
  const donn::DonnModel model = make_model(cfg, 11);
  const auto inputs = random_inputs(cfg.grid, 1, 12);

  const optics::Field via_field = model.propagator().forward(inputs[0]);
  MatrixC buf = inputs[0].values();
  optics::Propagator::Workspace workspace;
  model.propagator().forward_inplace(buf, workspace);
  EXPECT_EQ(max_abs_diff(via_field.values(), buf), 0.0);

  const optics::Field adj_field = model.propagator().adjoint(inputs[0]);
  MatrixC adj_buf = inputs[0].values();
  model.propagator().adjoint_inplace(adj_buf, workspace);
  EXPECT_EQ(max_abs_diff(adj_field.values(), adj_buf), 0.0);
}

TEST(PropagatorInplace, Pad2xMatchesFieldEntryPoint) {
  donn::DonnConfig cfg = tiny_config(16, 1);
  cfg.pad2x = true;
  const donn::DonnModel model = make_model(cfg, 13);
  const auto inputs = random_inputs(cfg.grid, 1, 14);

  const optics::Field via_field = model.propagator().forward(inputs[0]);
  MatrixC buf = inputs[0].values();
  optics::Propagator::Workspace workspace;
  model.propagator().forward_inplace(buf, workspace);
  EXPECT_EQ(max_abs_diff(via_field.values(), buf), 0.0);

  // Workspace reuse across calls must not change results.
  MatrixC again = inputs[0].values();
  model.propagator().forward_inplace(again, workspace);
  EXPECT_EQ(max_abs_diff(via_field.values(), again), 0.0);
}

TEST(ModulationTables, MatchPhaseMasks) {
  const donn::DonnConfig cfg = tiny_config(16, 3);
  const donn::DonnModel model = make_model(cfg, 21);
  const auto mods = model.modulation_tables();
  ASSERT_EQ(mods.size(), model.num_layers());
  for (std::size_t l = 0; l < mods.size(); ++l) {
    const MatrixD& phi = model.phases()[l];
    for (std::size_t i = 0; i < phi.size(); ++i) {
      EXPECT_EQ(mods[l][i].real(), std::cos(phi[i]));
      EXPECT_EQ(mods[l][i].imag(), std::sin(phi[i]));
    }
  }
}

TEST(BatchedInference, BitForBitParityWithSingleSample) {
  const donn::DonnConfig cfg = tiny_config(16, 3);
  const donn::DonnModel model = make_model(cfg, 31);
  const auto inputs = random_inputs(cfg.grid, 9, 32);

  const auto predictions = model.predict_batch(inputs);
  const auto sums = model.detector_sums_batch(inputs);
  const auto intensities = model.output_intensity_batch(inputs);
  ASSERT_EQ(predictions.size(), inputs.size());
  ASSERT_EQ(sums.size(), inputs.size());
  ASSERT_EQ(intensities.size(), inputs.size());

  for (std::size_t k = 0; k < inputs.size(); ++k) {
    EXPECT_EQ(predictions[k], model.predict(inputs[k]));
    const auto single_sums = model.detector_sums(inputs[k]);
    ASSERT_EQ(sums[k].size(), single_sums.size());
    for (std::size_t c = 0; c < single_sums.size(); ++c) {
      // Exact equality: the batched path performs identical arithmetic.
      EXPECT_EQ(sums[k][c], single_sums[c]);
    }
    EXPECT_EQ(max_abs_diff(intensities[k], model.output_intensity(inputs[k])),
              0.0);
  }
}

TEST(BatchedInference, Pad2xParity) {
  donn::DonnConfig cfg = tiny_config(16, 2);
  cfg.pad2x = true;
  const donn::DonnModel model = make_model(cfg, 41);
  const auto inputs = random_inputs(cfg.grid, 5, 42);

  const auto sums = model.detector_sums_batch(inputs);
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    const auto single = model.detector_sums(inputs[k]);
    for (std::size_t c = 0; c < single.size(); ++c) {
      EXPECT_EQ(sums[k][c], single[c]);
    }
  }
}

TEST(BatchedInference, SparsifiedModelParity) {
  const donn::DonnConfig cfg = tiny_config(16, 2);
  donn::DonnModel model = make_model(cfg, 51);
  sparsify::SchemeOptions scheme;
  scheme.scheme = sparsify::Scheme::Block;
  scheme.ratio = 0.2;
  scheme.block_size = 2;
  std::vector<sparsify::SparsityMask> masks;
  for (const auto& phi : model.phases()) {
    masks.push_back(sparsify::sparsify(phi, scheme));
  }
  model.set_masks(std::move(masks));

  const auto inputs = random_inputs(cfg.grid, 6, 52);
  const auto predictions = model.predict_batch(inputs);
  const auto sums = model.detector_sums_batch(inputs);
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    EXPECT_EQ(predictions[k], model.predict(inputs[k]));
    const auto single = model.detector_sums(inputs[k]);
    for (std::size_t c = 0; c < single.size(); ++c) {
      EXPECT_EQ(sums[k][c], single[c]);
    }
  }
}

TEST(BatchedInference, EmptyBatchAndShapeErrors) {
  const donn::DonnConfig cfg = tiny_config(16, 2);
  const donn::DonnModel model = make_model(cfg, 61);
  EXPECT_TRUE(model.predict_batch({}).empty());

  const auto wrong = random_inputs(donn::DonnConfig::scaled(32).grid, 1, 62);
  EXPECT_THROW(model.predict_batch(wrong), ShapeError);

  std::vector<MatrixC> bad_mods(model.num_layers() - 1);
  std::vector<std::size_t> predictions;
  EXPECT_THROW(
      model.infer_batch({}, bad_mods, &predictions, nullptr, nullptr),
      ShapeError);
}

TEST(BatchedForwardPass, FusedKernelBitForBitParity) {
  // Power-of-two grid without padding -> the cross-sample vectorized
  // BatchKernel serves the batch; its per-lane arithmetic must match the
  // single-sample path exactly, including ragged final lane groups.
  const donn::DonnConfig cfg = tiny_config(16, 3);
  auto model = std::make_shared<const donn::DonnModel>(make_model(cfg, 171));
  const BatchedForward forward(model);
  ASSERT_TRUE(forward.fused());

  const auto inputs = random_inputs(cfg.grid, 9, 172);  // 9 = 2*4 + 1 lanes
  const auto result = forward.run(inputs);
  ASSERT_EQ(result.predictions.size(), inputs.size());
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    EXPECT_EQ(result.predictions[k], model->predict(inputs[k]));
    const auto single = model->detector_sums(inputs[k]);
    ASSERT_EQ(result.detector_sums[k].size(), single.size());
    for (std::size_t c = 0; c < single.size(); ++c) {
      EXPECT_EQ(result.detector_sums[k][c], single[c]);
    }
  }
  EXPECT_TRUE(forward.run({}).predictions.empty());
}

TEST(BatchedForwardPass, DifferentialDetectorBitForBitParity) {
  // The fused kernel routes its region sums through the ReadoutStrategy:
  // differential pair scores (signed) and argmax must match the
  // single-sample path exactly.
  donn::DonnConfig cfg = tiny_config(16, 3);
  cfg.detector = donn::DetectorMode::Differential;
  auto model = std::make_shared<const donn::DonnModel>(make_model(cfg, 181));
  const BatchedForward forward(model);
  ASSERT_TRUE(forward.fused());

  const auto inputs = random_inputs(cfg.grid, 9, 182);
  const auto result = forward.run(inputs);
  ASSERT_EQ(result.predictions.size(), inputs.size());
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    EXPECT_EQ(result.predictions[k], model->predict(inputs[k]));
    const auto single = model->detector_sums(inputs[k]);
    ASSERT_EQ(result.detector_sums[k].size(), cfg.num_classes);
    for (std::size_t c = 0; c < single.size(); ++c) {
      EXPECT_EQ(result.detector_sums[k][c], single[c]);
    }
  }
}

TEST(BatchedForwardPass, BluesteinGridFallsBackWithParity) {
  // 20 is not a power of two: the generic infer_batch path must serve the
  // batch (no fused kernel) with the same exact-parity guarantee.
  const donn::DonnConfig cfg = tiny_config(20, 2);
  auto model = std::make_shared<const donn::DonnModel>(make_model(cfg, 181));
  const BatchedForward forward(model);
  ASSERT_FALSE(forward.fused());

  const auto inputs = random_inputs(cfg.grid, 5, 182);
  const auto result = forward.run(inputs);
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    EXPECT_EQ(result.predictions[k], model->predict(inputs[k]));
    const auto single = model->detector_sums(inputs[k]);
    for (std::size_t c = 0; c < single.size(); ++c) {
      EXPECT_EQ(result.detector_sums[k][c], single[c]);
    }
  }
}

TEST(BatchedForwardPass, Pad2xFallsBackWithParity) {
  donn::DonnConfig cfg = tiny_config(16, 2);
  cfg.pad2x = true;
  auto model = std::make_shared<const donn::DonnModel>(make_model(cfg, 191));
  const BatchedForward forward(model);
  ASSERT_FALSE(forward.fused());
  const auto inputs = random_inputs(cfg.grid, 3, 192);
  const auto predictions = forward.predict(inputs);
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    EXPECT_EQ(predictions[k], model->predict(inputs[k]));
  }
}

TEST(BatchedForwardPass, ReusesPlansAcrossBatches) {
  // Bluestein grid -> the generic infer_batch path, which goes through the
  // shared fft::plan_for cache (the fused radix-2 kernel snapshots its own
  // tables at construction and never touches the cache at run time).
  const donn::DonnConfig cfg = tiny_config(20, 2);
  auto model = std::make_shared<const donn::DonnModel>(make_model(cfg, 71));
  const BatchedForward forward(model);
  const auto inputs = random_inputs(cfg.grid, 4, 72);

  const auto first = forward.run(inputs);  // warm-up: builds any new plans
  const auto before = fft::plan_cache_stats();
  const auto second = forward.run(inputs);
  const auto after = fft::plan_cache_stats();

  // Identical results batch to batch, with zero new FFT plans built and the
  // existing ones re-served from the cache.
  ASSERT_EQ(first.predictions.size(), second.predictions.size());
  for (std::size_t k = 0; k < first.predictions.size(); ++k) {
    EXPECT_EQ(first.predictions[k], second.predictions[k]);
    for (std::size_t c = 0; c < first.detector_sums[k].size(); ++c) {
      EXPECT_EQ(first.detector_sums[k][c], second.detector_sums[k][c]);
    }
  }
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.cached_lengths, before.cached_lengths);
  EXPECT_GT(after.hits, before.hits);
}

TEST(Registry, AddGetNamesErase) {
  ModelRegistry registry;
  const donn::DonnConfig cfg = tiny_config(16, 2);
  registry.add("dense", make_model(cfg, 81));
  registry.add("smoothed", make_model(cfg, 82));
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.names(), (std::vector<std::string>{"dense", "smoothed"}));
  EXPECT_NE(registry.find("dense"), nullptr);
  EXPECT_EQ(registry.find("absent"), nullptr);
  EXPECT_THROW(registry.get("absent"), ConfigError);
  EXPECT_TRUE(registry.erase("dense"));
  EXPECT_FALSE(registry.erase("dense"));
  EXPECT_EQ(registry.size(), 1u);
}

TEST(Registry, SerializeRoundTripServesIdentically) {
  const donn::DonnConfig cfg = tiny_config(16, 2);
  const donn::DonnModel model = make_model(cfg, 91);
  const std::string path = temp_path("serve_registry_model.odnn");
  donn::save_model(model, path);

  ModelRegistry registry;
  const auto loaded = registry.load("reloaded", path);
  ASSERT_EQ(loaded->num_layers(), model.num_layers());
  for (std::size_t l = 0; l < model.num_layers(); ++l) {
    EXPECT_EQ(max_abs_diff(loaded->phases()[l], model.phases()[l]), 0.0);
  }

  const auto inputs = random_inputs(cfg.grid, 5, 92);
  const auto from_disk = loaded->predict_batch(inputs);
  const auto in_memory = model.predict_batch(inputs);
  EXPECT_EQ(from_disk, in_memory);
}

TEST(Registry, SaveLoadRoundTripSharesOneCodePath) {
  const donn::DonnConfig cfg = tiny_config(16, 2);
  ModelRegistry registry;
  registry.add("published", make_model(cfg, 93));
  const std::string path = temp_path("serve_registry_save.odnn");
  registry.save("published", path);
  EXPECT_THROW(registry.save("absent", path), ConfigError);

  ModelRegistry other;
  const auto reloaded = other.load("reloaded", path);
  const auto original = registry.get("published");
  ASSERT_EQ(reloaded->num_layers(), original->num_layers());
  for (std::size_t l = 0; l < original->num_layers(); ++l) {
    EXPECT_EQ(max_abs_diff(reloaded->phases()[l], original->phases()[l]), 0.0);
  }
}

TEST(Registry, TruncatedCheckpointFailsWithIoErrorAndPublishesNothing) {
  const donn::DonnConfig cfg = tiny_config(16, 2);
  ModelRegistry registry;
  registry.add("published", make_model(cfg, 94));
  const std::string path = temp_path("serve_registry_truncated.odnn");
  registry.save("published", path);

  // Chop the checkpoint mid-phase-data: load must throw IoError and must
  // not leave a half-loaded entry behind.
  std::error_code ec;
  const auto full = std::filesystem::file_size(path, ec);
  ASSERT_FALSE(ec);
  std::filesystem::resize_file(path, full / 2, ec);
  ASSERT_FALSE(ec);

  ModelRegistry other;
  EXPECT_THROW(other.load("broken", path), IoError);
  EXPECT_EQ(other.size(), 0u);
  EXPECT_EQ(other.find("broken"), nullptr);
}

TEST(Stats, NearestRankPercentilesAndCounters) {
  ServeStats stats;
  // 1ms..100ms: p50 = 50ms, p90 = 90ms, p99 = 99ms, max = 100ms.
  for (int ms = 1; ms <= 100; ++ms) {
    stats.record_request(static_cast<double>(ms) * 1e-3);
  }
  stats.record_batch(60);
  stats.record_batch(40);
  const auto snap = stats.snapshot();
  EXPECT_EQ(snap.requests, 100u);
  EXPECT_EQ(snap.batches, 2u);
  EXPECT_DOUBLE_EQ(snap.mean_batch_size, 50.0);
  EXPECT_NEAR(snap.p50_ms, 50.0, 1e-9);
  EXPECT_NEAR(snap.p90_ms, 90.0, 1e-9);
  EXPECT_NEAR(snap.p99_ms, 99.0, 1e-9);
  EXPECT_NEAR(snap.max_ms, 100.0, 1e-9);

  stats.reset();
  const auto cleared = stats.snapshot();
  EXPECT_EQ(cleared.requests, 0u);
  EXPECT_EQ(cleared.p99_ms, 0.0);
}

TEST(Stats, SingleRequestWindowFallsBackToItsLatency) {
  // One completed request: first and last completion coincide, so the
  // wall-clock window collapses to zero. The slowest latency stands in,
  // so a smoke bench with one request still reports a finite RPS.
  ServeStats stats;
  stats.record_request(0.004);
  const auto snap = stats.snapshot();
  EXPECT_EQ(snap.requests, 1u);
  EXPECT_NEAR(snap.window_seconds, 0.004, 1e-12);
  EXPECT_NEAR(snap.throughput_rps, 250.0, 1e-6);
}

TEST(Engine, WarmEngineServesFromPlanCacheOnly) {
  auto registry = std::make_shared<ModelRegistry>();
  const donn::DonnConfig cfg = tiny_config(16, 2);
  registry->add("m", make_model(cfg, 171));
  const auto inputs = random_inputs(cfg.grid, 24, 172);

  InferenceEngine engine(registry);
  // Warm-up traffic builds whatever plan lengths this grid needs.
  for (std::size_t k = 0; k < 8; ++k) {
    (void)engine.submit("m", inputs[k]).get();
  }
  const auto warm = fft::plan_cache_stats();
  for (std::size_t k = 8; k < inputs.size(); ++k) {
    (void)engine.submit("m", inputs[k]).get();
  }
  const auto after = fft::plan_cache_stats();
  // A warmed engine is all cache hits: misses and resident lengths stay
  // flat while hits grow with traffic.
  EXPECT_EQ(after.misses, warm.misses);
  EXPECT_EQ(after.cached_lengths, warm.cached_lengths);
  EXPECT_GT(after.hits, warm.hits);
}

TEST(Engine, ResolvesRequestsMatchingSingleSamplePath) {
  auto registry = std::make_shared<ModelRegistry>();
  const donn::DonnConfig cfg = tiny_config(16, 2);
  auto model = registry->add("m", make_model(cfg, 101));
  const auto inputs = random_inputs(cfg.grid, 20, 102);

  InferenceEngine engine(registry);
  std::vector<std::future<PredictResult>> futures;
  for (const auto& input : inputs) {
    futures.push_back(engine.submit("m", input));
  }
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    PredictResult result = futures[k].get();
    EXPECT_EQ(result.predicted, model->predict(inputs[k]));
    const auto single = model->detector_sums(inputs[k]);
    ASSERT_EQ(result.detector_sums.size(), single.size());
    for (std::size_t c = 0; c < single.size(); ++c) {
      EXPECT_EQ(result.detector_sums[c], single[c]);
    }
  }
  const auto snap = engine.stats();
  EXPECT_EQ(snap.requests, inputs.size());
  EXPECT_EQ(snap.errors, 0u);
  EXPECT_GE(snap.mean_batch_size, 1.0);
}

TEST(Engine, ConcurrentSubmissionStress) {
  auto registry = std::make_shared<ModelRegistry>();
  const donn::DonnConfig cfg = tiny_config(16, 2);
  auto model = registry->add("m", make_model(cfg, 111));

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 25;
  const auto inputs = random_inputs(cfg.grid, kThreads * kPerThread, 112);
  std::vector<std::size_t> expected;
  expected.reserve(inputs.size());
  for (const auto& input : inputs) expected.push_back(model->predict(input));

  EngineOptions options;
  options.max_batch = 16;
  InferenceEngine engine(registry, options);

  std::vector<std::size_t> got(inputs.size(), ~std::size_t{0});
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const std::size_t k = t * kPerThread + i;
        got[k] = engine.submit("m", inputs[k]).get().predicted;
      }
    });
  }
  for (auto& client : clients) client.join();

  for (std::size_t k = 0; k < inputs.size(); ++k) {
    EXPECT_EQ(got[k], expected[k]) << "sample " << k;
  }
  const auto snap = engine.stats();
  EXPECT_EQ(snap.requests, inputs.size());
  EXPECT_EQ(snap.errors, 0u);
  EXPECT_GE(snap.batches, 1u);
  EXPECT_GT(snap.throughput_rps, 0.0);
}

TEST(Engine, ServesMultipleVariantsInOneBatchWindow) {
  auto registry = std::make_shared<ModelRegistry>();
  const donn::DonnConfig cfg = tiny_config(16, 2);
  auto dense = registry->add("dense", make_model(cfg, 121));
  auto smoothed = registry->add("smoothed", make_model(cfg, 122));
  const auto inputs = random_inputs(cfg.grid, 12, 123);

  InferenceEngine engine(registry);
  std::vector<std::future<PredictResult>> dense_futures;
  std::vector<std::future<PredictResult>> smoothed_futures;
  for (const auto& input : inputs) {
    dense_futures.push_back(engine.submit("dense", input));
    smoothed_futures.push_back(engine.submit("smoothed", input));
  }
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    EXPECT_EQ(dense_futures[k].get().predicted, dense->predict(inputs[k]));
    EXPECT_EQ(smoothed_futures[k].get().predicted,
              smoothed->predict(inputs[k]));
  }
}

TEST(Engine, UnknownModelRejectsViaFuture) {
  auto registry = std::make_shared<ModelRegistry>();
  const donn::DonnConfig cfg = tiny_config(16, 2);
  registry->add("m", make_model(cfg, 131));
  const auto inputs = random_inputs(cfg.grid, 1, 132);

  InferenceEngine engine(registry);
  auto future = engine.submit("no-such-model", inputs[0]);
  EXPECT_THROW(future.get(), ConfigError);
  auto ok = engine.submit("m", inputs[0]);
  EXPECT_NO_THROW(ok.get());
  EXPECT_EQ(engine.stats().errors, 1u);
}

TEST(Engine, BadInputFailsAloneWithoutPoisoningItsBatch) {
  auto registry = std::make_shared<ModelRegistry>();
  const donn::DonnConfig cfg = tiny_config(16, 2);
  auto model = registry->add("m", make_model(cfg, 161));
  const auto good = random_inputs(cfg.grid, 4, 162);
  const auto bad = random_inputs(donn::DonnConfig::scaled(32).grid, 1, 163);

  // Long batch window so the malformed request is co-batched with valid
  // ones; only its own future may fail.
  EngineOptions options;
  options.batch_window = std::chrono::microseconds(20000);
  options.max_batch = 8;
  InferenceEngine engine(registry, options);
  std::vector<std::future<PredictResult>> futures;
  futures.push_back(engine.submit("m", good[0]));
  futures.push_back(engine.submit("m", bad[0]));
  futures.push_back(engine.submit("m", good[1]));

  EXPECT_EQ(futures[0].get().predicted, model->predict(good[0]));
  EXPECT_THROW(futures[1].get(), ShapeError);
  EXPECT_EQ(futures[2].get().predicted, model->predict(good[1]));
  EXPECT_EQ(engine.stats().errors, 1u);
}

TEST(Engine, ShutdownDrainsQueuedWorkAndRejectsNewWork) {
  auto registry = std::make_shared<ModelRegistry>();
  const donn::DonnConfig cfg = tiny_config(16, 2);
  registry->add("m", make_model(cfg, 141));
  const auto inputs = random_inputs(cfg.grid, 10, 142);

  InferenceEngine engine(registry);
  std::vector<std::future<PredictResult>> futures;
  for (const auto& input : inputs) {
    futures.push_back(engine.submit("m", input));
  }
  engine.shutdown();
  for (auto& future : futures) EXPECT_NO_THROW(future.get());
  EXPECT_THROW(engine.submit("m", inputs[0]), Error);
  EXPECT_EQ(engine.pending(), 0u);
}

TEST(Engine, HotSwapPicksUpReplacedModel) {
  auto registry = std::make_shared<ModelRegistry>();
  const donn::DonnConfig cfg = tiny_config(16, 2);
  registry->add("m", make_model(cfg, 151));
  const auto inputs = random_inputs(cfg.grid, 3, 152);

  InferenceEngine engine(registry);
  for (const auto& input : inputs) engine.submit("m", input).get();

  // Replace the published snapshot; subsequent requests must be served by
  // the new masks (plan cache rebuilds against the new pointer).
  auto replacement = registry->add("m", make_model(cfg, 153));
  for (const auto& input : inputs) {
    EXPECT_EQ(engine.submit("m", input).get().predicted,
              replacement->predict(input));
  }
}

}  // namespace
}  // namespace odonn::serve

// Tests for src/roughness: the Eq. 3-4 definitions against the paper's
// printed figures, analytic gradients vs finite differences, and the
// intra-block variance of Fig. 4.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "donn/gradcheck.hpp"
#include "roughness/intra_block.hpp"
#include "roughness/report.hpp"
#include "roughness/roughness.hpp"
#include "sparsify/schemes.hpp"

namespace odonn::roughness {
namespace {

/// The 6x6 example matrix printed in the paper's Fig. 3 / Fig. 4.
MatrixD figure_matrix() {
  return {{4.7, 5.7, 0.9, 0.4, 2.6, 8.6}, {4.5, 0.9, 3.8, 1.5, 5.4, 3.7},
          {0.1, 5.7, 9.0, 3.2, 2.1, 0.7}, {4.7, 9.7, 7.8, 2.5, 0.8, 3.9},
          {1.1, 0.7, 0.6, 0.1, 4.4, 1.8}, {5.6, 0.4, 1.8, 0.4, 9.8, 2.3}};
}

/// The block selection shown in the figures (derived from Fig. 4's per-block
/// variance grid: blocks (1,0), (1,2), (2,1) are zeroed).
MatrixD figure_block_sparsified() {
  MatrixD w = figure_matrix();
  const auto mask = sparsify::block_mask_from_selection(
      6, 6, 2, {{1, 0}, {1, 2}, {2, 1}});
  sparsify::apply_mask(w, mask);
  return w;
}

TEST(Roughness, ConstantMaskHasOnlyBoundaryRoughness) {
  // All-equal interior values: interior pixels away from the boundary have
  // zero roughness; boundary pixels see the zero padding.
  MatrixD m(5, 5, 2.0);
  const MatrixD map = roughness_map(m);
  EXPECT_NEAR(map(2, 2), 0.0, 1e-9);
  EXPECT_GT(map(0, 0), 0.0);
  EXPECT_GT(map(0, 2), 0.0);
}

TEST(Roughness, SinglePixelFourNeighbor) {
  // Fig. 2 definitional check: one non-zero pixel in the center of a 3x3
  // mask. 4-neighbor (literal Eq. 3, k_scale=1): center pixel has 4 equal
  // differences of |v|, so R(center) = sqrt(4 v^2)/4 = v/2.
  MatrixD m(3, 3, 0.0);
  m(1, 1) = 2.0;
  RoughnessOptions opt;
  opt.neighborhood = Neighborhood::Four;
  opt.k_scale = 1.0;
  const MatrixD map = roughness_map(m, opt);
  EXPECT_NEAR(map(1, 1), 1.0, 1e-12);
  // Each edge-adjacent neighbor sees exactly one difference of 2.0.
  EXPECT_NEAR(map(0, 1), std::sqrt(4.0) / 4.0, 1e-12);
  // Corner pixels are diagonal to the center: no 4-neighbor difference.
  EXPECT_NEAR(map(0, 0), 0.0, 1e-12);
}

TEST(Roughness, SinglePixelEightNeighborSeesDiagonals) {
  MatrixD m(3, 3, 0.0);
  m(1, 1) = 2.0;
  RoughnessOptions opt;
  opt.neighborhood = Neighborhood::Eight;
  opt.k_scale = 1.0;
  const MatrixD map = roughness_map(m, opt);
  EXPECT_GT(map(0, 0), 0.0);  // corners now see the center diagonally
  EXPECT_NEAR(map(1, 1), std::sqrt(8.0 * 4.0) / 8.0, 1e-12);
}

TEST(Roughness, Fig3BlockValueReproduced) {
  // Paper Fig. 3(a): block-sparsified matrix, 8-neighbor roughness 23.78.
  // The figure does not print WHICH three blocks its illustration zeroes;
  // with the selection recovered from Fig. 4 the score is 22.68, and the
  // best-matching 3-block selection gives 23.69 — so the assertion here is
  // necessarily looser than the non-structured/bank cases. The ordering
  // claim (block lowest) is tested exactly below.
  EXPECT_NEAR(mask_roughness(figure_block_sparsified()), 23.78, 1.2);
}

TEST(Roughness, Fig3NonStructuredValueReproduced) {
  MatrixD w = figure_matrix();
  const auto mask = sparsify::magnitude_sparsify(w, {12.0 / 36.0});
  sparsify::apply_mask(w, mask);
  EXPECT_NEAR(mask_roughness(w), 25.80, 0.15);
}

TEST(Roughness, Fig3BankBalancedValueReproduced) {
  MatrixD w = figure_matrix();
  const auto mask = sparsify::bank_balanced_sparsify(w, {3, 1.0 / 3.0});
  sparsify::apply_mask(w, mask);
  EXPECT_NEAR(mask_roughness(w), 25.88, 0.15);
}

TEST(Roughness, Fig3OrderingBlockLowest) {
  // The figure's claim: block < non-structured and block < bank-balanced at
  // the same sparsity.
  MatrixD block = figure_block_sparsified();
  MatrixD nonstruct = figure_matrix();
  sparsify::apply_mask(nonstruct,
                       sparsify::magnitude_sparsify(nonstruct, {12.0 / 36.0}));
  MatrixD bank = figure_matrix();
  sparsify::apply_mask(bank,
                       sparsify::bank_balanced_sparsify(bank, {3, 1.0 / 3.0}));
  const double rb = mask_roughness(block);
  EXPECT_LT(rb, mask_roughness(nonstruct));
  EXPECT_LT(rb, mask_roughness(bank));
}

TEST(Roughness, MeanAbsReduceInvertsFigureOrdering) {
  // Documented negative result: the elementwise |.| reading does NOT
  // reproduce the figure's non-structured < bank ordering, which is why
  // L2Norm is the default.
  RoughnessOptions opt;
  opt.reduce = PixelReduce::MeanAbs;
  MatrixD nonstruct = figure_matrix();
  sparsify::apply_mask(nonstruct,
                       sparsify::magnitude_sparsify(nonstruct, {12.0 / 36.0}));
  MatrixD bank = figure_matrix();
  sparsify::apply_mask(bank,
                       sparsify::bank_balanced_sparsify(bank, {3, 1.0 / 3.0}));
  EXPECT_GT(mask_roughness(nonstruct, opt), mask_roughness(bank, opt));
}

TEST(Roughness, KScaleIsAPureRescale) {
  const MatrixD w = figure_matrix();
  RoughnessOptions one;
  one.k_scale = 1.0;
  RoughnessOptions two;
  two.k_scale = 2.0;
  EXPECT_NEAR(mask_roughness(w, one), 2.0 * mask_roughness(w, two), 1e-9);
}

TEST(Roughness, SmootherMaskScoresLower) {
  Rng rng(5);
  MatrixD rough(16, 16);
  for (auto& v : rough) v = rng.uniform(0.0, 2.0 * M_PI);
  // Smooth version: 3x3 box blur.
  MatrixD smooth(16, 16, 0.0);
  for (long r = 0; r < 16; ++r) {
    for (long c = 0; c < 16; ++c) {
      double acc = 0.0;
      int cnt = 0;
      for (long dr = -1; dr <= 1; ++dr) {
        for (long dc = -1; dc <= 1; ++dc) {
          const long nr = r + dr, nc = c + dc;
          if (nr < 0 || nc < 0 || nr >= 16 || nc >= 16) continue;
          acc += rough(static_cast<std::size_t>(nr), static_cast<std::size_t>(nc));
          ++cnt;
        }
      }
      smooth(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) =
          acc / cnt;
    }
  }
  EXPECT_LT(mask_roughness(smooth), mask_roughness(rough));
}

class RoughnessGrad
    : public ::testing::TestWithParam<std::tuple<Neighborhood, PixelReduce>> {};

TEST_P(RoughnessGrad, MatchesFiniteDifferences) {
  const auto [nb, reduce] = GetParam();
  RoughnessOptions opt;
  opt.neighborhood = nb;
  opt.reduce = reduce;
  opt.eps = 1e-12;

  Rng rng(42);
  MatrixD w(6, 6);
  for (auto& v : w) v = rng.uniform(0.5, 6.0);  // away from |d|=0 kinks

  MatrixD analytic(6, 6, 0.0);
  roughness_with_grad(w, analytic, 1.0, opt);
  const MatrixD numeric = donn::numerical_gradient(
      [&](const MatrixD& m) { return mask_roughness(m, opt); }, w, 1e-6);
  EXPECT_LT(donn::gradient_rel_error(analytic, numeric), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, RoughnessGrad,
    ::testing::Combine(::testing::Values(Neighborhood::Four,
                                         Neighborhood::Eight),
                       ::testing::Values(PixelReduce::L2Norm,
                                         PixelReduce::MeanAbs)));

TEST(Roughness, GradScaleFoldsIntoGradient) {
  MatrixD w = figure_matrix();
  MatrixD g1(6, 6, 0.0), g3(6, 6, 0.0);
  roughness_with_grad(w, g1, 1.0);
  roughness_with_grad(w, g3, 3.0);
  for (std::size_t i = 0; i < g1.size(); ++i) {
    EXPECT_NEAR(g3[i], 3.0 * g1[i], 1e-12);
  }
}

TEST(Roughness, ValueMatchesMapSum) {
  const MatrixD w = figure_matrix();
  MatrixD g(6, 6, 0.0);
  const double via_grad = roughness_with_grad(w, g, 1.0);
  EXPECT_NEAR(via_grad, mask_roughness(w), 1e-9);
}

TEST(IntraBlock, Fig4AvgVarReproducedExactly) {
  // Paper Fig. 4: 2x2 blocks, three sparsified blocks counted as zero,
  // AvgVar = 4.835 (sample variance).
  const MatrixD w = figure_block_sparsified();
  IntraBlockOptions opt;
  opt.block_size = 2;
  EXPECT_NEAR(intra_block_variance_mean(w, opt), 4.835, 5e-3);
}

TEST(IntraBlock, Fig4PerBlockValues) {
  const MatrixD w = figure_block_sparsified();
  IntraBlockOptions opt;
  opt.block_size = 2;
  const MatrixD map = block_variance_map(w, opt);
  ASSERT_EQ(map.rows(), 3u);
  // The figure prints one decimal; 0.08 covers its display rounding (e.g.
  // the true 6.8492 is shown as 6.9).
  EXPECT_NEAR(map(0, 0), 4.4, 0.08);
  EXPECT_NEAR(map(0, 1), 2.3, 0.08);
  EXPECT_NEAR(map(0, 2), 6.9, 0.08);
  EXPECT_NEAR(map(1, 0), 0.0, 1e-12);
  EXPECT_NEAR(map(1, 1), 10.6, 0.08);
  EXPECT_NEAR(map(1, 2), 0.0, 1e-12);
  EXPECT_NEAR(map(2, 0), 6.0, 0.08);
  EXPECT_NEAR(map(2, 1), 0.0, 1e-12);
  EXPECT_NEAR(map(2, 2), 13.4, 0.08);
}

TEST(IntraBlock, ConstantBlocksHaveZeroVariance) {
  MatrixD w(4, 4, 3.0);
  IntraBlockOptions opt;
  opt.block_size = 2;
  EXPECT_DOUBLE_EQ(intra_block_variance_sum(w, opt), 0.0);
}

TEST(IntraBlock, PartialEdgeTilesUseTrueExtent) {
  // 5x5 mask with block 2 -> 3x3 tile grid including 1-wide edges.
  MatrixD w(5, 5, 0.0);
  w(4, 4) = 2.0;  // bottom-right 1x1 tile: single element, variance 0
  IntraBlockOptions opt;
  opt.block_size = 2;
  const MatrixD map = block_variance_map(w, opt);
  ASSERT_EQ(map.rows(), 3u);
  EXPECT_DOUBLE_EQ(map(2, 2), 0.0);
}

TEST(IntraBlock, GradientMatchesFiniteDifferences) {
  Rng rng(43);
  MatrixD w(6, 6);
  for (auto& v : w) v = rng.uniform(0.0, 5.0);
  IntraBlockOptions opt;
  opt.block_size = 2;

  MatrixD analytic(6, 6, 0.0);
  intra_block_variance_with_grad(w, analytic, 1.0, opt);
  const MatrixD numeric = donn::numerical_gradient(
      [&](const MatrixD& m) { return intra_block_variance_sum(m, opt); }, w,
      1e-6);
  EXPECT_LT(donn::gradient_rel_error(analytic, numeric), 1e-6);
}

TEST(IntraBlock, PopulationVarianceOption) {
  MatrixD w = {{0.0, 2.0}, {0.0, 2.0}};
  IntraBlockOptions sample;
  sample.block_size = 2;
  IntraBlockOptions pop = sample;
  pop.sample_variance = false;
  EXPECT_NEAR(intra_block_variance_sum(w, sample), 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(intra_block_variance_sum(w, pop), 1.0, 1e-12);
}

TEST(Report, OverallIsAverageOfLayers) {
  const MatrixD a = figure_matrix();
  MatrixD b = a;
  b *= 2.0;
  const auto rep = report({a, b});
  ASSERT_EQ(rep.per_layer.size(), 2u);
  EXPECT_NEAR(rep.per_layer[1], 2.0 * rep.per_layer[0], 1e-9);
  EXPECT_NEAR(rep.overall, (rep.per_layer[0] + rep.per_layer[1]) / 2.0, 1e-12);
}

}  // namespace
}  // namespace odonn::roughness

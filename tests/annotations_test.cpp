// Tests for common/thread_annotations.hpp.
//
// Two contracts: (1) off clang, every ODONN_* annotation macro expands to
// NOTHING — gcc builds of the annotated tree are byte-identical to
// unannotated code; (2) the annotated wrapper types (Mutex, MutexLock,
// CondVar) behave exactly like the std types they wrap, so converting a
// subsystem to them can never change runtime behavior.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

namespace odonn {
namespace {

// Two-level stringize so the annotation macro expands BEFORE # captures it.
#define ODONN_TEST_STR_IMPL(...) #__VA_ARGS__
#define ODONN_TEST_STR(...) ODONN_TEST_STR_IMPL(__VA_ARGS__)

#if !ODONN_THREAD_ANNOTATIONS_ENABLED
TEST(ThreadAnnotations, MacrosExpandToNothingOffClang) {
  // Each macro must stringize to the empty string: any residue would mean
  // non-clang compilers see tokens they may not understand.
  EXPECT_STREQ(ODONN_TEST_STR(ODONN_CAPABILITY("mutex")), "");
  EXPECT_STREQ(ODONN_TEST_STR(ODONN_SCOPED_CAPABILITY), "");
  EXPECT_STREQ(ODONN_TEST_STR(ODONN_GUARDED_BY(some_mutex)), "");
  EXPECT_STREQ(ODONN_TEST_STR(ODONN_PT_GUARDED_BY(some_mutex)), "");
  EXPECT_STREQ(ODONN_TEST_STR(ODONN_REQUIRES(some_mutex)), "");
  EXPECT_STREQ(ODONN_TEST_STR(ODONN_ACQUIRE(some_mutex)), "");
  EXPECT_STREQ(ODONN_TEST_STR(ODONN_RELEASE(some_mutex)), "");
  EXPECT_STREQ(ODONN_TEST_STR(ODONN_TRY_ACQUIRE(true, some_mutex)), "");
  EXPECT_STREQ(ODONN_TEST_STR(ODONN_EXCLUDES(some_mutex)), "");
  EXPECT_STREQ(ODONN_TEST_STR(ODONN_RETURN_CAPABILITY(some_mutex)), "");
  EXPECT_STREQ(ODONN_TEST_STR(ODONN_NO_THREAD_SAFETY_ANALYSIS), "");
}
#else
TEST(ThreadAnnotations, MacrosExpandToAttributesOnClang) {
  EXPECT_NE(std::strlen(ODONN_TEST_STR(ODONN_GUARDED_BY(some_mutex))), 0u);
  EXPECT_NE(std::strlen(ODONN_TEST_STR(ODONN_REQUIRES(some_mutex))), 0u);
}
#endif

TEST(ThreadAnnotations, MutexIsZeroOverhead) {
  // The wrapper adds annotations, not state.
  static_assert(sizeof(Mutex) == sizeof(std::mutex));
  static_assert(ODONN_THREAD_ANNOTATIONS_ENABLED == 0 ||
                ODONN_THREAD_ANNOTATIONS_ENABLED == 1);
}

TEST(ThreadAnnotations, MutexLocksAndTryLocks) {
  Mutex mu;
  mu.lock();
  EXPECT_FALSE(mu.try_lock());  // non-recursive, already held
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(ThreadAnnotations, MutexLockGuardsScope) {
  Mutex mu;
  {
    MutexLock lock(mu);
    EXPECT_FALSE(mu.try_lock());
  }
  EXPECT_TRUE(mu.try_lock());  // released at scope exit
  mu.unlock();
}

TEST(ThreadAnnotations, MutexExcludesOtherThreads) {
  Mutex mu;
  int shared = 0;
  constexpr int kIters = 2000;
  auto bump = [&] {
    for (int i = 0; i < kIters; ++i) {
      MutexLock lock(mu);
      ++shared;
    }
  };
  std::thread a(bump);
  std::thread b(bump);
  a.join();
  b.join();
  EXPECT_EQ(shared, 2 * kIters);
}

TEST(ThreadAnnotations, CondVarWakesOnPredicate) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int observed = -1;

  std::thread waiter([&] {
    MutexLock lock(mu);
    cv.wait(mu, [&]() ODONN_REQUIRES(mu) { return ready; });
    observed = 42;
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
  EXPECT_EQ(observed, 42);
}

TEST(ThreadAnnotations, CondVarWaitForTimesOutAndSucceeds) {
  Mutex mu;
  CondVar cv;
  bool flag = false;

  {
    MutexLock lock(mu);
    // Never signalled: must time out with the predicate still false.
    const bool woke = cv.wait_for(mu, std::chrono::milliseconds(5),
                                  [&]() ODONN_REQUIRES(mu) { return flag; });
    EXPECT_FALSE(woke);
  }

  std::thread signaller([&] {
    {
      MutexLock lock(mu);
      flag = true;
    }
    cv.notify_all();
  });
  {
    MutexLock lock(mu);
    const bool woke = cv.wait_for(mu, std::chrono::seconds(30),
                                  [&]() ODONN_REQUIRES(mu) { return flag; });
    EXPECT_TRUE(woke);
  }
  signaller.join();
}

TEST(ThreadAnnotations, CondVarNotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  int woken = 0;

  std::vector<std::thread> waiters;
  for (int i = 0; i < 4; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      cv.wait(mu, [&]() ODONN_REQUIRES(mu) { return go; });
      ++woken;
    });
  }
  {
    MutexLock lock(mu);
    go = true;
  }
  cv.notify_all();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(woken, 4);
}

}  // namespace
}  // namespace odonn

// src/fab tests: perturbation statistics (roughness-field RMS and
// correlation length), quantization exactness, per-model determinism, spec
// parsing, and the MonteCarloEvaluator's determinism / common-random-number
// contracts.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>

#include "common/error.hpp"
#include "data/synthetic.hpp"
#include "data/transform.hpp"
#include "fab/montecarlo.hpp"
#include "fab/perturbation.hpp"
#include "fab/spec.hpp"
#include "optics/fabrication.hpp"

namespace odonn::fab {
namespace {

constexpr double kTwoPi = 2.0 * M_PI;

MatrixD random_phase(std::size_t n, Rng& rng, double lo = 0.0,
                     double hi = kTwoPi) {
  MatrixD phase(n, n);
  for (auto& v : phase) v = rng.uniform(lo, hi);
  return phase;
}

double sample_rms(const MatrixD& m) {
  double acc = 0.0;
  for (const auto& v : m) acc += v * v;
  return std::sqrt(acc / static_cast<double>(m.size()));
}

// ------------------------------------------------- gaussian random field

TEST(GaussianRandomField, UnitRmsExactAndSeedDeterministic) {
  Rng rng(11);
  const MatrixD field = gaussian_random_field(64, 64, 3.0, rng);
  EXPECT_NEAR(sample_rms(field), 1.0, 1e-12);

  Rng again(11);
  const MatrixD replay = gaussian_random_field(64, 64, 3.0, again);
  EXPECT_EQ(max_abs_diff(field, replay), 0.0);

  Rng other(12);
  const MatrixD different = gaussian_random_field(64, 64, 3.0, other);
  EXPECT_GT(max_abs_diff(field, different), 0.1);
}

TEST(GaussianRandomField, CorrelationLengthMatchesSpec) {
  // The normalized autocorrelation of the field is exp(-(d/L)^2): at lag
  // d = L it must be close to e^-1, and far beyond L close to zero.
  const double L = 4.0;
  const std::size_t n = 192;
  Rng rng(21);
  const MatrixD field = gaussian_random_field(n, n, L, rng);

  const auto autocorr_at = [&](std::size_t lag) {
    double num = 0.0, den = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c + lag < n; ++c) {
        num += field(r, c) * field(r, c + lag);
      }
    }
    for (const auto& v : field) den += v * v;
    // Scale the lagged sum to the same pair count as the variance sum.
    return (num / static_cast<double>(n * (n - lag))) /
           (den / static_cast<double>(n * n));
  };

  const double at_L = autocorr_at(static_cast<std::size_t>(L));
  EXPECT_NEAR(at_L, std::exp(-1.0), 0.12);
  EXPECT_LT(std::abs(autocorr_at(static_cast<std::size_t>(4.0 * L))), 0.15);
}

TEST(GaussianRandomField, ZeroCorrelationIsWhite) {
  const std::size_t n = 128;
  Rng rng(31);
  const MatrixD field = gaussian_random_field(n, n, 0.0, rng);
  EXPECT_NEAR(sample_rms(field), 1.0, 1e-12);
  // Neighboring pixels essentially uncorrelated.
  double num = 0.0, den = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c + 1 < n; ++c) num += field(r, c) * field(r, c + 1);
  }
  for (const auto& v : field) den += v * v;
  EXPECT_LT(std::abs(num / den), 0.05);
}

// ------------------------------------------------------ surface roughness

TEST(SurfaceRoughness, InjectedPhaseRmsMatchesThicknessSpec) {
  SurfaceRoughnessOptions options;
  options.sigma_um = 0.08;
  options.correlation_px = 2.0;
  const SurfaceRoughness model(options);

  Rng rng(41);
  FabricatedDevice device{{random_phase(48, rng)}, {}};
  const MatrixD original = device.phases[0];
  Rng stream(42);
  model.apply(device, stream);

  // phase <-> thickness is linear and the field has exact unit RMS, so the
  // injected phase RMS is exactly 2*pi * sigma / zone_height.
  const MatrixD diff = device.phases[0] - original;
  const double expected =
      kTwoPi * options.sigma_um * 1e-6 / options.material.zone_height();
  EXPECT_NEAR(sample_rms(diff), expected, expected * 1e-9);
}

// ------------------------------------------------------------ quantization

TEST(QuantizeLevels, ExactlyOnLevelGridAndIdempotent) {
  const std::size_t levels = 8;
  const QuantizeLevels model(QuantizeLevelsOptions{levels});
  const double step = kTwoPi / static_cast<double>(levels);

  Rng rng(51);
  // Multi-zone relief (the 2*pi optimizer's output shape): [-2*pi, 4*pi).
  FabricatedDevice device{{random_phase(32, rng, -kTwoPi, 2.0 * kTwoPi)}, {}};
  Rng unused(0);
  model.apply(device, unused);

  for (const auto& v : device.phases[0]) {
    const double k = v / step;
    EXPECT_NEAR(k, std::round(k), 1e-9) << "value off the level grid: " << v;
  }
  // Wrapped into one zone, at most `levels` distinct values survive.
  std::set<long> wrapped;
  for (const auto& v : device.phases[0]) {
    long k = std::lround(v / step) % static_cast<long>(levels);
    if (k < 0) k += static_cast<long>(levels);
    wrapped.insert(k);
  }
  EXPECT_LE(wrapped.size(), levels);

  FabricatedDevice twice = device;
  model.apply(twice, unused);
  EXPECT_EQ(max_abs_diff(device.phases[0], twice.phases[0]), 0.0);
}

TEST(QuantizeLevels, PreservesFullTwoPiZones) {
  // Printing resolution must not wrap away the smoother's +2*pi zones:
  // quantize(phi + 2*pi) == quantize(phi) + 2*pi.
  const QuantizeLevels model(QuantizeLevelsOptions{16});
  Rng rng(61);
  FabricatedDevice base{{random_phase(16, rng)}, {}};
  FabricatedDevice lifted = base;
  lifted.phases[0].transform([](double v) { return v + kTwoPi; });

  Rng unused(0);
  model.apply(base, unused);
  model.apply(lifted, unused);
  MatrixD shifted_back = lifted.phases[0];
  shifted_back.transform([](double v) { return v - kTwoPi; });
  EXPECT_LT(max_abs_diff(base.phases[0], shifted_back), 1e-9);
}

// ------------------------------------------------------------ misalignment

TEST(LateralMisalignment, ZeroSigmaIsIdentityAndDrawsAreConsumed) {
  Rng rng(71);
  const MatrixD original = random_phase(24, rng);

  const LateralMisalignment none(MisalignmentOptions{0.0});
  FabricatedDevice device{{original}, {}};
  Rng stream_a(5);
  none.apply(device, stream_a);
  EXPECT_EQ(max_abs_diff(device.phases[0], original), 0.0);
  // Draws happen even at sigma 0 (fixed stream layout): the stream advanced.
  Rng stream_b(5);
  EXPECT_NE(stream_a.next_u64(), stream_b.next_u64());

  const LateralMisalignment some(MisalignmentOptions{0.4});
  FabricatedDevice shifted{{original}, {}};
  Rng stream_c(5);
  some.apply(shifted, stream_c);
  EXPECT_GT(max_abs_diff(shifted.phases[0], original), 0.0);
}

TEST(LateralMisalignment, PerLayerIndependentShifts) {
  Rng rng(81);
  const MatrixD original = random_phase(24, rng);
  const LateralMisalignment model(MisalignmentOptions{0.5});
  FabricatedDevice device{{original, original}, {}};
  Rng stream(9);
  model.apply(device, stream);
  // Same input mask, different per-layer draws -> different outputs.
  EXPECT_GT(max_abs_diff(device.phases[0], device.phases[1]), 0.0);
}

// ----------------------------------------------------------------- detune

TEST(WavelengthDetune, UniformPhaseRescaleAcrossLayers) {
  WavelengthDetuneOptions options;
  options.sigma_rel = 0.01;
  const WavelengthDetune model(options);

  Rng rng(91);
  FabricatedDevice device{{random_phase(16, rng, 0.5, kTwoPi),
                           random_phase(16, rng, 0.5, kTwoPi)},
                          {}};
  const std::vector<MatrixD> original = device.phases;
  Rng stream(13);
  model.apply(device, stream);

  // One laser: every pixel of every layer rescales by the same factor.
  const double factor = device.phases[0][0] / original[0][0];
  EXPECT_NE(factor, 1.0);
  for (std::size_t l = 0; l < 2; ++l) {
    for (std::size_t i = 0; i < original[l].size(); ++i) {
      EXPECT_NEAR(device.phases[l][i] / original[l][i], factor, 1e-9);
    }
  }
}

// --------------------------------------------------------------- ctjitter

TEST(CrosstalkJitter, ClampsStrengthToUnitInterval) {
  const CrosstalkJitter model(CrosstalkJitterOptions{10.0});  // huge spread
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    FabricatedDevice device{{}, {}};
    device.crosstalk.strength = 0.5;
    Rng stream(seed);
    model.apply(device, stream);
    EXPECT_GE(device.crosstalk.strength, 0.0);
    EXPECT_LE(device.crosstalk.strength, 1.0);
  }
}

// ------------------------------------------------------------ spec parser

TEST(SpecParser, ParsesNamesArgsAndDefaults) {
  const auto stack = parse_perturbation_stack(
      "roughness(sigma_um=0.1,corr=3.5)+quantize(levels=8)+misalign+detune("
      "sigma_rel=0.01)+ctjitter");
  ASSERT_EQ(stack.size(), 5u);
  EXPECT_EQ(stack[0]->name(), "roughness");
  const auto& rough = dynamic_cast<const SurfaceRoughness&>(*stack[0]);
  EXPECT_DOUBLE_EQ(rough.options().sigma_um, 0.1);
  EXPECT_DOUBLE_EQ(rough.options().correlation_px, 3.5);
  const auto& quant = dynamic_cast<const QuantizeLevels&>(*stack[1]);
  EXPECT_EQ(quant.options().levels, 8u);
  const auto& mis = dynamic_cast<const LateralMisalignment&>(*stack[2]);
  EXPECT_DOUBLE_EQ(mis.options().sigma_px, MisalignmentOptions{}.sigma_px);
  EXPECT_EQ(stack[3]->name(), "detune");
  EXPECT_EQ(stack[4]->name(), "ctjitter");
}

TEST(SpecParser, DescribeRoundTrips) {
  const std::string spec =
      "roughness(sigma_um=0.05,corr=2)+quantize(levels=16)";
  const auto stack = parse_perturbation_stack(spec);
  const std::string described = describe_stack(stack);
  const auto reparsed = parse_perturbation_stack(described);
  EXPECT_EQ(describe_stack(reparsed), described);
}

TEST(SpecParser, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_perturbation_stack(""), ConfigError);
  EXPECT_THROW(parse_perturbation_stack("frobnicate"), ConfigError);
  EXPECT_THROW(parse_perturbation_stack("roughness(bogus=1)"), ConfigError);
  EXPECT_THROW(parse_perturbation_stack("roughness(sigma_um=abc)"),
               ConfigError);
  EXPECT_THROW(parse_perturbation_stack("roughness(sigma_um=0.1"),
               ConfigError);
  EXPECT_THROW(parse_perturbation_stack("roughness+"), ConfigError);
  // Invalid parameter values fail the model's own precondition checks.
  EXPECT_THROW(parse_perturbation_stack("quantize(levels=1)"), Error);
  // Non-integer / negative level counts must not be cast to size_t.
  EXPECT_THROW(parse_perturbation_stack("quantize(levels=-3)"), ConfigError);
  EXPECT_THROW(parse_perturbation_stack("quantize(levels=7.5)"), ConfigError);
}

TEST(SpecParser, PlusInsideArgumentsIsNotASeparator) {
  // strtod numbers may contain '+': splitting happens only at depth 0.
  const auto stack = parse_perturbation_stack(
      "roughness(sigma_um=1e+0,corr=+2)+quantize(levels=16)");
  ASSERT_EQ(stack.size(), 2u);
  const auto& rough = dynamic_cast<const SurfaceRoughness&>(*stack[0]);
  EXPECT_DOUBLE_EQ(rough.options().sigma_um, 1.0);
  EXPECT_DOUBLE_EQ(rough.options().correlation_px, 2.0);
}

// ------------------------------------------------------------ monte carlo

struct McSetup {
  donn::DonnModel model;
  data::Dataset eval;
};

McSetup mc_setup(std::uint64_t seed = 7) {
  donn::DonnConfig config = donn::DonnConfig::scaled(16);
  config.num_layers = 2;
  config.init = donn::PhaseInit::Uniform;
  Rng rng(seed);
  donn::DonnModel model(config, rng);
  const auto raw =
      data::make_synthetic(data::SyntheticFamily::Digits, 40, seed + 1);
  return {std::move(model), data::resize_dataset(raw, 16)};
}

TEST(RealizationSeed, CounterBasedStreamsAreDistinct) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t r = 0; r < 256; ++r) {
    seen.insert(realization_seed(7, r));
  }
  EXPECT_EQ(seen.size(), 256u);
  EXPECT_EQ(realization_seed(7, 3), realization_seed(7, 3));
  EXPECT_NE(realization_seed(7, 3), realization_seed(8, 3));
}

TEST(RealizationRng, PlainModeMatchesSeededStream) {
  Rng via_helper = realization_rng(7, 5, /*antithetic=*/false);
  Rng direct(realization_seed(7, 5));
  for (int i = 0; i < 8; ++i) EXPECT_EQ(via_helper.next_u64(), direct.next_u64());
}

TEST(RealizationRng, AntitheticPairsShareSeedWithMirroredNormals) {
  // Pair (2m, 2m+1) consumes the SAME uniform stream; the odd member's
  // normal draws are exact sign flips.
  Rng even = realization_rng(7, 4, /*antithetic=*/true);
  Rng odd = realization_rng(7, 5, /*antithetic=*/true);
  EXPECT_FALSE(even.antithetic());
  EXPECT_TRUE(odd.antithetic());
  for (int i = 0; i < 16; ++i) {
    const double z = even.normal();
    EXPECT_EQ(odd.normal(), -z);  // bitwise: negation is exact
  }
  // Distinct pairs draw from distinct seeds (realizations 4,5 -> pair 2;
  // realizations 6,7 -> pair 3).
  EXPECT_NE(realization_rng(7, 6, true).next_u64(),
            realization_rng(7, 4, true).next_u64());
}

TEST(GaussianRandomField, AntitheticStreamYieldsExactMirrorField) {
  // The GRF pipeline (white normals -> separable blur -> exact-RMS
  // renormalization) commutes with negation in IEEE arithmetic, so the
  // antithetic partner's field is the bitwise negation of the plain one.
  Rng plain = realization_rng(11, 2, /*antithetic=*/true);   // even: plain
  Rng mirror = realization_rng(11, 3, /*antithetic=*/true);  // odd: flipped
  const MatrixD field = gaussian_random_field(32, 32, 2.0, plain);
  const MatrixD anti = gaussian_random_field(32, 32, 2.0, mirror);
  for (std::size_t i = 0; i < field.size(); ++i) {
    EXPECT_EQ(anti[i], -field[i]) << "pixel " << i;
  }
}

TEST(MonteCarloEvaluatorTest, RepeatedEvaluationIsBitwiseIdentical) {
  const McSetup setup = mc_setup();
  MonteCarloOptions options;
  options.realizations = 6;
  options.seed = 99;
  const MonteCarloEvaluator evaluator(setup.eval, options);
  const auto stack = parse_perturbation_stack(kDefaultPerturbationSpec);

  const auto first = evaluator.evaluate("m", setup.model, stack);
  const auto second = evaluator.evaluate("m", setup.model, stack);
  ASSERT_EQ(first.accuracies.size(), 6u);
  for (std::size_t r = 0; r < first.accuracies.size(); ++r) {
    EXPECT_EQ(first.accuracies[r], second.accuracies[r]);
  }
  EXPECT_EQ(first.digest(), second.digest());

  MonteCarloOptions reseeded = options;
  reseeded.seed = 100;
  const MonteCarloEvaluator other(setup.eval, reseeded);
  EXPECT_NE(other.evaluate("m", setup.model, stack).digest(), first.digest());
}

TEST(MonteCarloEvaluatorTest, ReportStatisticsAreConsistent) {
  const McSetup setup = mc_setup(17);
  MonteCarloOptions options;
  options.realizations = 8;
  options.yield_threshold = 0.0;  // everything passes
  const MonteCarloEvaluator evaluator(setup.eval, options);
  const auto stack = parse_perturbation_stack("roughness(sigma_um=0.03)");
  const auto report = evaluator.evaluate("m", setup.model, stack);

  ASSERT_EQ(report.accuracies.size(), 8u);
  double sum = 0.0, lo = 1.0, hi = 0.0;
  for (const double acc : report.accuracies) {
    sum += acc;
    lo = std::min(lo, acc);
    hi = std::max(hi, acc);
  }
  EXPECT_DOUBLE_EQ(report.mean, sum / 8.0);
  EXPECT_DOUBLE_EQ(report.min, lo);
  EXPECT_DOUBLE_EQ(report.max, hi);
  EXPECT_GE(report.p50, report.p5);
  EXPECT_GE(report.p95, report.p50);
  EXPECT_DOUBLE_EQ(report.yield, 1.0);
  EXPECT_DOUBLE_EQ(yield_at(report, 2.0), 0.0);  // accuracy never exceeds 1
  EXPECT_DOUBLE_EQ(yield_at(report, report.min), 1.0);
}

TEST(MonteCarloEvaluatorTest, CommonRandomNumbersAcrossVariants) {
  const McSetup setup_a = mc_setup(23);
  const McSetup setup_b = mc_setup(29);  // a different model, same grid
  MonteCarloOptions options;
  options.realizations = 4;
  const MonteCarloEvaluator evaluator(setup_a.eval, options);
  const auto stack = parse_perturbation_stack(kDefaultPerturbationSpec);

  // compare() must equal the two standalone evaluations exactly: the
  // perturbation draws depend on (seed, r) only, never on the model.
  const auto paired = evaluator.compare(
      {{"a", &setup_a.model}, {"b", &setup_b.model}}, stack);
  ASSERT_EQ(paired.size(), 2u);
  EXPECT_EQ(paired[0].digest(),
            evaluator.evaluate("a", setup_a.model, stack).digest());
  EXPECT_EQ(paired[1].digest(),
            evaluator.evaluate("b", setup_b.model, stack).digest());
}

TEST(MonteCarloEvaluatorTest, AntitheticReportsAreDeterministicAndPaired) {
  const McSetup setup = mc_setup(43);
  MonteCarloOptions options;
  options.realizations = 6;
  options.antithetic = true;
  const MonteCarloEvaluator evaluator(setup.eval, options);
  const auto stack = parse_perturbation_stack("roughness(sigma_um=0.05)");

  const auto report = evaluator.evaluate("m", setup.model, stack);
  EXPECT_EQ(report.digest(), evaluator.evaluate("m", setup.model, stack).digest());

  // Antithetic draws differ from the plain stream at equal (seed, R).
  MonteCarloOptions plain = options;
  plain.antithetic = false;
  const MonteCarloEvaluator plain_eval(setup.eval, plain);
  EXPECT_NE(plain_eval.evaluate("m", setup.model, stack).digest(),
            report.digest());
}

TEST(MonteCarloEvaluatorTest, AntitheticLowersMeanEstimatorVariance) {
  // The variance-reduction claim: across independent evaluator seeds, the
  // spread of the R-realization mean-accuracy estimate is measurably
  // smaller with antithetic pairs than with plain streams at equal R (the
  // pair mean cancels the accuracy response's linear term in the noise).
  const McSetup setup = mc_setup(47);
  const auto stack = parse_perturbation_stack("roughness(sigma_um=0.06,corr=2)");

  const auto estimator_variance = [&](bool antithetic) {
    std::vector<double> means;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      MonteCarloOptions options;
      options.realizations = 8;
      options.seed = seed * 101;
      options.antithetic = antithetic;
      const MonteCarloEvaluator evaluator(setup.eval, options);
      means.push_back(evaluator.evaluate("m", setup.model, stack).mean);
    }
    double mu = 0.0;
    for (const double m : means) mu += m;
    mu /= static_cast<double>(means.size());
    double var = 0.0;
    for (const double m : means) var += (m - mu) * (m - mu);
    return var / static_cast<double>(means.size());
  };

  const double var_plain = estimator_variance(false);
  const double var_anti = estimator_variance(true);
  EXPECT_LT(var_anti, var_plain)
      << "plain " << var_plain << " vs antithetic " << var_anti;
}

TEST(MonteCarloEvaluatorTest, ConcurrentEvaluatesOnOneInstanceAreSafe) {
  // The encoding cache is shared across evaluate() calls; two concurrent
  // evaluations of one evaluator must neither race on it nor change any
  // result (regression: the cache used to be rebuilt unguarded inside the
  // const call).
  const McSetup setup_a = mc_setup(53);
  const McSetup setup_b = mc_setup(59);
  MonteCarloOptions options;
  options.realizations = 4;
  const MonteCarloEvaluator evaluator(setup_a.eval, options);
  const auto stack = parse_perturbation_stack(kDefaultPerturbationSpec);

  const auto expected_a = evaluator.evaluate("a", setup_a.model, stack);
  const auto expected_b = evaluator.evaluate("b", setup_b.model, stack);

  for (int round = 0; round < 4; ++round) {
    RobustnessReport got_a, got_b;
    std::thread ta([&] { got_a = evaluator.evaluate("a", setup_a.model, stack); });
    std::thread tb([&] { got_b = evaluator.evaluate("b", setup_b.model, stack); });
    ta.join();
    tb.join();
    EXPECT_EQ(got_a.digest(), expected_a.digest());
    EXPECT_EQ(got_b.digest(), expected_b.digest());
  }
}

TEST(MonteCarloEvaluatorTest, RejectsGridMismatchAndEmptyConfig) {
  const McSetup setup = mc_setup(31);
  MonteCarloOptions options;
  options.realizations = 0;
  EXPECT_THROW(MonteCarloEvaluator(setup.eval, options), Error);

  options.realizations = 2;
  const auto raw =
      data::make_synthetic(data::SyntheticFamily::Digits, 10, 5);
  const auto wrong_grid = data::resize_dataset(raw, 20);  // model is 16
  const MonteCarloEvaluator evaluator(wrong_grid, options);
  const auto stack = parse_perturbation_stack("quantize");
  EXPECT_THROW(evaluator.evaluate("m", setup.model, stack), Error);
}

}  // namespace
}  // namespace odonn::fab

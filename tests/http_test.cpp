// Tests for src/obs/http_server: the dependency-free observability HTTP
// plane. An ephemeral-port server is started per test (no fixed ports, no
// collisions), scraped with the in-repo obs::http_get client, and checked
// for: exact byte equality between the /metrics body and
// MetricsRegistry::to_text() (the scrape counts itself BEFORE rendering),
// /healthz build provenance, typed error statuses (404/405/500), graceful
// stop, and concurrent scrapes.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "obs/http_server.hpp"
#include "obs/obs.hpp"

namespace odonn {
namespace {

constexpr const char* kLoopback = "127.0.0.1";

TEST(HttpServer, BindsEphemeralPortAndServesRegisteredRoute) {
  obs::HttpServer server;
  server.handle("/ping", [](const obs::HttpRequest& request) {
    obs::HttpResponse response;
    response.body = "pong " + request.path;
    return response;
  });
  server.start();
  ASSERT_NE(server.port(), 0);
  EXPECT_TRUE(server.running());

  const auto result = obs::http_get(kLoopback, server.port(), "/ping");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.status, 200);
  EXPECT_EQ(result.body, "pong /ping");
  // Query strings are stripped before dispatch.
  const auto with_query =
      obs::http_get(kLoopback, server.port(), "/ping?x=1&y=2");
  ASSERT_TRUE(with_query.ok) << with_query.error;
  EXPECT_EQ(with_query.status, 200);
  EXPECT_EQ(with_query.body, "pong /ping");

  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent
}

TEST(HttpServer, MetricsBodyIsByteIdenticalToTextExporter) {
  obs::MetricsRegistry::global().counter("test.http.scrape").add(3);
  obs::HttpServer server;
  obs::register_obs_routes(server);
  server.start();

  // The handler bumps obs.http.requests BEFORE rendering, so the body the
  // scraper receives already includes its own scrape and must equal a
  // to_text() taken right after — the Prometheus-compatibility contract.
  const auto result = obs::http_get(kLoopback, server.port(), "/metrics");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.status, 200);
  EXPECT_EQ(result.body, obs::MetricsRegistry::global().to_text());
  EXPECT_NE(result.body.find("odonn_test_http_scrape 3"), std::string::npos);
  EXPECT_NE(result.body.find("# HELP odonn_serve_requests"),
            std::string::npos);
}

TEST(HttpServer, MetricsJsonAndSpansRoutesServeJson) {
  obs::HttpServer server;
  obs::register_obs_routes(server);
  server.start();

  const auto metrics =
      obs::http_get(kLoopback, server.port(), "/metrics.json");
  ASSERT_TRUE(metrics.ok) << metrics.error;
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("\"build\""), std::string::npos);
  EXPECT_NE(metrics.body.find("\"metrics\""), std::string::npos);
  EXPECT_NE(metrics.body.find("\"trace_dropped\""), std::string::npos);

  const auto spans = obs::http_get(kLoopback, server.port(), "/spans");
  ASSERT_TRUE(spans.ok) << spans.error;
  EXPECT_EQ(spans.status, 200);
  EXPECT_EQ(spans.body.front(), '[');
  EXPECT_EQ(spans.body.back(), ']');
}

TEST(HttpServer, HealthzReportsBuildInfoAndExtras) {
  obs::HttpServer server;
  obs::ObsRouteOptions routes;
  routes.health_extra = [] { return std::string("\"replicas\": 3"); };
  obs::register_obs_routes(server, routes);
  server.start();

  const auto result = obs::http_get(kLoopback, server.port(), "/healthz");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.status, 200);
  EXPECT_NE(result.body.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(result.body.find("\"git_sha\": \""), std::string::npos);
  EXPECT_NE(result.body.find("\"compiler\": \""), std::string::npos);
  EXPECT_NE(result.body.find("\"obs_disabled\": false"), std::string::npos);
  EXPECT_NE(result.body.find("\"uptime_s\": "), std::string::npos);
  EXPECT_NE(result.body.find("\"replicas\": 3"), std::string::npos);
}

TEST(HttpServer, TypedErrorStatusesAndErrorCounter) {
  auto& errors = obs::MetricsRegistry::global().counter("obs.http.errors");
  const std::uint64_t before = errors.value();

  obs::HttpServer server;
  server.handle("/boom", [](const obs::HttpRequest&) -> obs::HttpResponse {
    throw Error("intentional handler failure");
  });
  server.start();

  const auto missing = obs::http_get(kLoopback, server.port(), "/missing");
  ASSERT_TRUE(missing.ok) << missing.error;
  EXPECT_EQ(missing.status, 404);
  EXPECT_NE(missing.body.find("/missing"), std::string::npos);

  const auto post =
      obs::http_get(kLoopback, server.port(), "/boom", 5000, "POST");
  ASSERT_TRUE(post.ok) << post.error;
  EXPECT_EQ(post.status, 405);

  const auto boom = obs::http_get(kLoopback, server.port(), "/boom");
  ASSERT_TRUE(boom.ok) << boom.error;
  EXPECT_EQ(boom.status, 500);
  EXPECT_NE(boom.body.find("intentional handler failure"), std::string::npos);

  EXPECT_EQ(errors.value() - before, 3u);
  EXPECT_EQ(server.requests_served(), 3u);
}

TEST(HttpServer, ConcurrentScrapesAllSucceed) {
  obs::HttpServer server;
  obs::register_obs_routes(server);
  server.start();
  const std::uint16_t port = server.port();

  constexpr int kClients = 8;
  constexpr int kPerClient = 4;
  std::vector<std::thread> clients;
  std::vector<int> failures(kClients, 0);
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([port, c, &failures] {
      for (int i = 0; i < kPerClient; ++i) {
        const auto result = obs::http_get(kLoopback, port, "/metrics");
        if (!result.ok || result.status != 200 || result.body.empty()) {
          ++failures[c];
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(failures[c], 0) << c;
  EXPECT_EQ(server.requests_served(),
            static_cast<std::uint64_t>(kClients) * kPerClient);
}

TEST(HttpServer, ClientReportsTransportErrors) {
  // Nothing listens on this port (we bind-and-close to find a free one).
  obs::HttpServer probe;
  probe.start();
  const std::uint16_t dead_port = probe.port();
  probe.stop();

  const auto result = obs::http_get(kLoopback, dead_port, "/metrics", 500);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.error.empty());

  const auto bad_host = obs::http_get("not-an-ip", 80, "/", 500);
  EXPECT_FALSE(bad_host.ok);
  EXPECT_NE(bad_host.error.find("IPv4"), std::string::npos);
}

TEST(HttpServer, RejectsInvalidConfiguration) {
  obs::HttpServerOptions no_threads;
  no_threads.handler_threads = 0;
  EXPECT_THROW(obs::HttpServer{no_threads}, Error);

  obs::HttpServerOptions bad_address;
  bad_address.bind_address = "definitely.not.an.address";
  obs::HttpServer server(bad_address);
  EXPECT_THROW(server.start(), ConfigError);

  obs::HttpServer routes;
  EXPECT_THROW(routes.handle("no-slash", [](const obs::HttpRequest&) {
    return obs::HttpResponse{};
  }),
               Error);
}

}  // namespace
}  // namespace odonn

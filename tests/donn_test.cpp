// Tests for src/donn: detector geometry, losses (with gradient checks), the
// DiffMod backward, full-model gradient checks against finite differences,
// 2*pi inference invariance, sparsity masking and the crosstalk model.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "donn/crosstalk.hpp"
#include "donn/detector.hpp"
#include "donn/gradcheck.hpp"
#include "donn/loss.hpp"
#include "donn/model.hpp"
#include "donn/phase_mask.hpp"
#include "optics/encode.hpp"
#include "roughness/roughness.hpp"

namespace odonn::donn {
namespace {

DonnConfig tiny_config(std::size_t n = 16, std::size_t layers = 2) {
  DonnConfig cfg = DonnConfig::scaled(n);
  cfg.num_layers = layers;
  return cfg;
}

optics::Field random_input(const optics::GridSpec& grid, std::uint64_t seed) {
  Rng rng(seed);
  MatrixD image(grid.n, grid.n);
  for (auto& v : image) v = rng.uniform();
  return optics::encode_image(image, grid);
}

TEST(PhaseMask, RandomInitInRange) {
  Rng rng(1);
  const MatrixD phi = random_phase_mask(8, rng);
  for (std::size_t i = 0; i < phi.size(); ++i) {
    EXPECT_GE(phi[i], 0.0);
    EXPECT_LT(phi[i], 2.0 * M_PI);
  }
}

TEST(PhaseMask, WrapPhaseIntoPrincipalRange) {
  MatrixD phi = {{-0.5, 7.0}, {13.0, 2.0 * M_PI}};
  const MatrixD wrapped = wrap_phase(phi);
  for (std::size_t i = 0; i < wrapped.size(); ++i) {
    EXPECT_GE(wrapped[i], 0.0);
    EXPECT_LT(wrapped[i], 2.0 * M_PI);
  }
  EXPECT_NEAR(wrapped(0, 0), 2.0 * M_PI - 0.5, 1e-12);
}

TEST(PhaseMask, ModulationIsUnitMagnitude) {
  Rng rng(2);
  const MatrixD phi = random_phase_mask(6, rng);
  const MatrixC w = modulation(phi);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(std::abs(w[i]), 1.0, 1e-12);
  }
}

TEST(Detector, PaperLayoutTenRegions) {
  const auto layout = DetectorLayout::evenly_spaced(200, 10, 20);
  EXPECT_EQ(layout.num_classes(), 10u);
  for (const auto& region : layout.regions()) {
    EXPECT_EQ(region.size, 20u);
    EXPECT_LE(region.r0 + region.size, 200u);
  }
}

class DetectorLayouts
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(DetectorLayouts, FitAndDisjoint) {
  const auto [grid_n, classes] = GetParam();
  const std::size_t region = std::max<std::size_t>(2, grid_n / 10);
  const auto layout = DetectorLayout::evenly_spaced(grid_n, classes, region);
  EXPECT_EQ(layout.num_classes(), classes);
  // Disjointness is enforced by the constructor; also check readout of an
  // all-ones plane sums to classes * region^2.
  MatrixD ones(grid_n, grid_n, 1.0);
  const auto sums = layout.readout(ones);
  for (double s : sums) {
    EXPECT_DOUBLE_EQ(s, static_cast<double>(region * region));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DetectorLayouts,
    ::testing::Combine(::testing::Values<std::size_t>(40, 64, 100, 200),
                       ::testing::Values<std::size_t>(2, 4, 6, 10)));

TEST(Detector, OverlappingRegionsRejected) {
  EXPECT_THROW(DetectorLayout(10, {{0, 0, 4}, {2, 2, 4}}), ConfigError);
  EXPECT_THROW(DetectorLayout(10, {{8, 8, 4}}), ConfigError);
}

TEST(Detector, ReadoutScatterAdjoint) {
  // <readout(I), g> == <I, scatter(g)> — readout and scatter are adjoint.
  const auto layout = DetectorLayout::evenly_spaced(20, 4, 3);
  Rng rng(3);
  MatrixD intensity(20, 20);
  for (auto& v : intensity) v = rng.uniform();
  std::vector<double> g{0.3, -1.2, 0.5, 2.0};

  const auto sums = layout.readout(intensity);
  double lhs = 0.0;
  for (std::size_t c = 0; c < 4; ++c) lhs += sums[c] * g[c];

  const MatrixD scattered = layout.scatter(g);
  double rhs = 0.0;
  for (std::size_t i = 0; i < intensity.size(); ++i) {
    rhs += intensity[i] * scattered[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-10);
}

TEST(Detector, PredictReturnsArgmaxRegion) {
  const auto layout = DetectorLayout::evenly_spaced(20, 4, 3);
  MatrixD intensity(20, 20, 0.0);
  const auto& winner = layout.regions()[2];
  intensity(winner.r0, winner.c0) = 5.0;
  EXPECT_EQ(layout.predict(intensity), 2u);
}

TEST(Detector, DifferentialPairsScoreAndPredict) {
  // Each class k reads region 2k (positive) minus region 2k+1 (negative).
  const auto strategy = ReadoutStrategy::evenly_spaced(
      DetectorMode::Differential, 20, 4, 3);
  EXPECT_EQ(strategy.num_classes(), 4u);
  EXPECT_EQ(strategy.num_regions(), 8u);

  MatrixD intensity(20, 20, 0.0);
  const auto& pos = strategy.layout().regions()[4];  // class 2, + region
  const auto& neg = strategy.layout().regions()[5];  // class 2, - region
  intensity(pos.r0, pos.c0) = 5.0;
  intensity(neg.r0, neg.c0) = 1.5;
  const auto scores = strategy.readout(intensity);
  ASSERT_EQ(scores.size(), 4u);
  EXPECT_DOUBLE_EQ(scores[2], 3.5);
  EXPECT_EQ(strategy.predict(intensity), 2u);

  // Negative-region energy drives the score below zero.
  intensity(neg.r0, neg.c0) = 9.0;
  EXPECT_DOUBLE_EQ(strategy.readout(intensity)[2], -4.0);
}

TEST(Detector, DifferentialReadoutScatterAdjoint) {
  // <readout(I), g> == <I, scatter(g)> must hold through the +/- pair
  // mapping, not just for the raw layout.
  const auto strategy = ReadoutStrategy::evenly_spaced(
      DetectorMode::Differential, 20, 4, 3);
  Rng rng(4);
  MatrixD intensity(20, 20);
  for (auto& v : intensity) v = rng.uniform();
  const std::vector<double> g{0.3, -1.2, 0.5, 2.0};

  const auto scores = strategy.readout(intensity);
  double lhs = 0.0;
  for (std::size_t c = 0; c < 4; ++c) lhs += scores[c] * g[c];

  const MatrixD scattered = strategy.scatter(g);
  double rhs = 0.0;
  for (std::size_t i = 0; i < intensity.size(); ++i) {
    rhs += intensity[i] * scattered[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-10);
}

TEST(Detector, DifferentialScatterMatchesFiniteDifferencesPerPair) {
  // FD parity per region pair: bumping a pixel in the + region of class k
  // moves score k by +h, in the - region by -h, elsewhere not at all.
  const auto strategy = ReadoutStrategy::evenly_spaced(
      DetectorMode::Differential, 20, 3, 3);
  Rng rng(5);
  MatrixD intensity(20, 20);
  for (auto& v : intensity) v = rng.uniform();

  const double h = 1e-6;
  for (std::size_t k = 0; k < strategy.num_classes(); ++k) {
    std::vector<double> g(strategy.num_classes(), 0.0);
    g[k] = 1.0;
    const MatrixD scattered = strategy.scatter(g);
    for (std::size_t pair = 0; pair < 2; ++pair) {
      const auto& region = strategy.layout().regions()[2 * k + pair];
      MatrixD bumped = intensity;
      bumped(region.r0, region.c0) += h;
      const double numeric =
          (strategy.readout(bumped)[k] - strategy.readout(intensity)[k]) / h;
      const double expected = (pair == 0) ? 1.0 : -1.0;
      EXPECT_NEAR(numeric, expected, 1e-6) << "class " << k << " pair " << pair;
      EXPECT_DOUBLE_EQ(scattered(region.r0, region.c0), expected);
    }
  }
}

TEST(Detector, DifferentialNeedsEvenRegions) {
  EXPECT_THROW(ReadoutStrategy(DetectorMode::Differential,
                               DetectorLayout::evenly_spaced(20, 3, 3)),
               Error);
}

TEST(Detector, ModeNamesRoundTrip) {
  EXPECT_EQ(parse_detector_mode("standard"), DetectorMode::Standard);
  EXPECT_EQ(parse_detector_mode("differential"), DetectorMode::Differential);
  EXPECT_STREQ(detector_mode_name(DetectorMode::Differential), "differential");
  EXPECT_THROW(parse_detector_mode("argmax"), ConfigError);
}

TEST(Loss, SoftmaxIsStableAndNormalized) {
  const auto p = softmax({1000.0, 1001.0, 999.0});
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-12);
  EXPECT_GT(p[1], p[0]);
  EXPECT_GT(p[0], p[2]);
}

TEST(Loss, PerfectPredictionHasLowLoss) {
  LossOptions opt;
  const auto good = evaluate_loss({100.0, 0.1, 0.1, 0.1}, 0, opt);
  const auto bad = evaluate_loss({100.0, 0.1, 0.1, 0.1}, 1, opt);
  EXPECT_LT(good.loss, bad.loss);
  EXPECT_EQ(good.predicted, 0u);
}

class LossGrad : public ::testing::TestWithParam<std::tuple<LossType, NormMode>> {};

TEST_P(LossGrad, MatchesFiniteDifferences) {
  const auto [type, norm] = GetParam();
  LossOptions opt;
  opt.type = type;
  opt.norm = norm;
  const std::vector<double> sums{0.31, 0.12, 0.44, 0.08, 0.21};
  const std::size_t label = 2;
  const auto result = evaluate_loss(sums, label, opt);

  const double h = 1e-7;
  for (std::size_t j = 0; j < sums.size(); ++j) {
    auto hi = sums, lo = sums;
    hi[j] += h;
    lo[j] -= h;
    const double numeric = (evaluate_loss(hi, label, opt).loss -
                            evaluate_loss(lo, label, opt).loss) /
                           (2.0 * h);
    EXPECT_NEAR(result.grad_sums[j], numeric, 1e-5)
        << "logit " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, LossGrad,
    ::testing::Combine(::testing::Values(LossType::SoftmaxMse,
                                         LossType::CrossEntropy),
                       ::testing::Values(NormMode::None, NormMode::TotalPower)));

TEST(Loss, TotalPowerNormalizesSignedScoresByAbsSum) {
  // Regression for differential readout: signed scores used to normalize by
  // the raw sum, which can cancel toward zero and blow the logits up (or
  // flip their signs). The scale must use sum(|s|).
  LossOptions opt;
  opt.norm = NormMode::TotalPower;
  // Raw sum = 0.0 exactly; abs sum = 0.84.
  const std::vector<double> sums{0.4, -0.39, 0.02, -0.03};
  const auto result = evaluate_loss(sums, 0, opt);
  EXPECT_TRUE(std::isfinite(result.loss));
  EXPECT_EQ(result.predicted, 0u);

  const double h = 1e-7;
  for (std::size_t j = 0; j < sums.size(); ++j) {
    auto hi = sums, lo = sums;
    hi[j] += h;
    lo[j] -= h;
    const double numeric = (evaluate_loss(hi, 0, opt).loss -
                            evaluate_loss(lo, 0, opt).loss) /
                           (2.0 * h);
    EXPECT_NEAR(result.grad_sums[j], numeric, 1e-5) << "logit " << j;
  }
}

class SignedLossGrad
    : public ::testing::TestWithParam<std::tuple<LossType, NormMode>> {};

TEST_P(SignedLossGrad, MatchesFiniteDifferences) {
  const auto [type, norm] = GetParam();
  LossOptions opt;
  opt.type = type;
  opt.norm = norm;
  const std::vector<double> sums{0.31, -0.12, 0.44, -0.08, 0.21};
  const std::size_t label = 1;
  const auto result = evaluate_loss(sums, label, opt);

  const double h = 1e-7;
  for (std::size_t j = 0; j < sums.size(); ++j) {
    auto hi = sums, lo = sums;
    hi[j] += h;
    lo[j] -= h;
    const double numeric = (evaluate_loss(hi, label, opt).loss -
                            evaluate_loss(lo, label, opt).loss) /
                           (2.0 * h);
    EXPECT_NEAR(result.grad_sums[j], numeric, 1e-5) << "logit " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, SignedLossGrad,
    ::testing::Combine(::testing::Values(LossType::SoftmaxMse,
                                         LossType::CrossEntropy),
                       ::testing::Values(NormMode::None, NormMode::TotalPower)));

TEST(Loss, InvalidInputsThrow) {
  EXPECT_THROW(evaluate_loss({1.0}, 0, {}), Error);
  EXPECT_THROW(evaluate_loss({1.0, 2.0}, 5, {}), Error);
}

TEST(Model, ForwardIsDeterministic) {
  Rng rng(7);
  DonnModel model(tiny_config(), rng);
  const auto input = random_input(model.config().grid, 11);
  const auto a = model.detector_sums(input);
  const auto b = model.detector_sums(input);
  EXPECT_EQ(a, b);
}

TEST(Model, EnergyConservedThroughLayers) {
  // Phase-only modulation and unitary propagation preserve power.
  Rng rng(8);
  DonnModel model(tiny_config(32, 3), rng);
  const auto input = random_input(model.config().grid, 12);
  const auto output = model.propagate_through(input);
  EXPECT_NEAR(output.power(), input.power(), 1e-6 * input.power());
}

TEST(Model, TwoPiPhaseShiftLeavesInferenceInvariant) {
  // The §III-D2 identity: adding 2*pi to any phase pixel leaves the forward
  // pass numerically unchanged (up to fp rounding in cos/sin).
  Rng rng(9);
  DonnModel model(tiny_config(), rng);
  const auto input = random_input(model.config().grid, 13);
  const auto before = model.detector_sums(input);

  auto phases = model.phases();
  Rng pick(99);
  for (auto& phi : phases) {
    for (std::size_t i = 0; i < phi.size(); ++i) {
      if (pick.bernoulli(0.3)) phi[i] += 2.0 * M_PI;
    }
  }
  model.set_phases(std::move(phases));
  const auto after = model.detector_sums(input);
  for (std::size_t c = 0; c < before.size(); ++c) {
    EXPECT_NEAR(after[c], before[c], 1e-9 * (before[c] + 1.0));
  }
}

TEST(Model, ForwardBackwardGradientMatchesFiniteDifferences) {
  Rng rng(10);
  DonnConfig cfg = tiny_config(16, 2);
  DonnModel model(cfg, rng);
  const auto input = random_input(cfg.grid, 14);
  const std::size_t label = 3;
  LossOptions loss_opt;

  auto grads = model.zero_gradients();
  model.forward_backward(input, label, grads, loss_opt);

  // Check a probe subset of each layer's gradient entries numerically.
  for (std::size_t layer = 0; layer < model.num_layers(); ++layer) {
    const MatrixD numeric = numerical_gradient(
        [&](const MatrixD& probe) {
          DonnModel m2 = model;
          auto phases = m2.phases();
          phases[layer] = probe;
          m2.set_phases(std::move(phases));
          return evaluate_loss(m2.detector_sums(input), label, loss_opt).loss;
        },
        model.phases()[layer], 1e-5);
    EXPECT_LT(gradient_rel_error(grads[layer], numeric), 2e-4)
        << "layer " << layer;
  }
}

TEST(Model, FiveLayerGradientMatchesFiniteDifferences) {
  // Per-layer adjoint through the deep stack: the five-layer recipe axis
  // must backpropagate correctly through every mask, not just the first two.
  Rng rng(12);
  DonnConfig cfg = tiny_config(16, 5);
  DonnModel model(cfg, rng);
  const auto input = random_input(cfg.grid, 15);
  const std::size_t label = 1;
  LossOptions loss_opt;

  auto grads = model.zero_gradients();
  model.forward_backward(input, label, grads, loss_opt);

  for (std::size_t layer = 0; layer < model.num_layers(); ++layer) {
    const MatrixD numeric = numerical_gradient(
        [&](const MatrixD& probe) {
          DonnModel m2 = model;
          auto phases = m2.phases();
          phases[layer] = probe;
          m2.set_phases(std::move(phases));
          return evaluate_loss(m2.detector_sums(input), label, loss_opt).loss;
        },
        model.phases()[layer], 1e-5);
    EXPECT_LT(gradient_rel_error(grads[layer], numeric), 2e-4)
        << "layer " << layer;
  }
}

TEST(Model, DifferentialGradientMatchesFiniteDifferences) {
  // The differential scatter adjoint must agree with FD through the full
  // optical stack (signed scores feed the TotalPower-normalized loss).
  Rng rng(13);
  DonnConfig cfg = tiny_config(16, 3);
  cfg.detector = DetectorMode::Differential;
  DonnModel model(cfg, rng);
  EXPECT_EQ(model.detector().num_regions(), 2 * cfg.num_classes);
  const auto input = random_input(cfg.grid, 16);
  const std::size_t label = 4;
  LossOptions loss_opt;

  auto grads = model.zero_gradients();
  model.forward_backward(input, label, grads, loss_opt);

  for (std::size_t layer = 0; layer < model.num_layers(); ++layer) {
    const MatrixD numeric = numerical_gradient(
        [&](const MatrixD& probe) {
          DonnModel m2 = model;
          auto phases = m2.phases();
          phases[layer] = probe;
          m2.set_phases(std::move(phases));
          return evaluate_loss(m2.detector_sums(input), label, loss_opt).loss;
        },
        model.phases()[layer], 1e-5);
    EXPECT_LT(gradient_rel_error(grads[layer], numeric), 2e-4)
        << "layer " << layer;
  }
}

TEST(Model, MasksZeroPhasesAndGradients) {
  Rng rng(11);
  DonnModel model(tiny_config(), rng);
  std::vector<sparsify::SparsityMask> masks;
  for (std::size_t l = 0; l < model.num_layers(); ++l) {
    sparsify::SparsityMask m(16, 16, 1);
    m(0, 0) = 0;
    m(5, 7) = 0;
    masks.push_back(std::move(m));
  }
  model.set_masks(masks);
  EXPECT_DOUBLE_EQ(model.phases()[0](0, 0), 0.0);
  EXPECT_DOUBLE_EQ(model.phases()[1](5, 7), 0.0);

  auto grads = model.zero_gradients();
  const auto input = random_input(model.config().grid, 15);
  model.forward_backward(input, 0, grads, {});
  model.mask_gradients(grads);
  EXPECT_DOUBLE_EQ(grads[0](0, 0), 0.0);
  EXPECT_DOUBLE_EQ(grads[1](5, 7), 0.0);
}

TEST(Model, ConfigValidation) {
  Rng rng(12);
  DonnConfig cfg = tiny_config();
  cfg.num_layers = 0;
  EXPECT_THROW(DonnModel(cfg, rng), Error);
  EXPECT_THROW(DonnConfig::scaled(8), Error);
}

TEST(Model, ScaledConfigKeepsMixingRatio) {
  for (std::size_t n : {32u, 64u, 128u}) {
    const DonnConfig cfg = DonnConfig::scaled(n);
    const double mixing = cfg.wavelength * cfg.distance /
                          (static_cast<double>(n) * cfg.grid.pitch *
                           cfg.grid.pitch);
    EXPECT_NEAR(mixing, 0.5735, 1e-6) << "n=" << n;
  }
}

TEST(Crosstalk, SmoothMaskNearlyUnchanged) {
  MatrixD smooth(16, 16, 3.0);
  const MatrixD deployed = apply_crosstalk(smooth);
  // Interior is constant => zero roughness => no change there.
  EXPECT_NEAR(deployed(8, 8), 3.0, 1e-9);
}

TEST(Crosstalk, RoughMaskDistortedMoreThanSmoothMask) {
  Rng rng(13);
  MatrixD rough(16, 16);
  for (auto& v : rough) v = rng.uniform(0.0, 2.0 * M_PI);
  MatrixD smooth(16, 16);
  for (std::size_t r = 0; r < 16; ++r) {
    for (std::size_t c = 0; c < 16; ++c) {
      smooth(r, c) = 0.1 * static_cast<double>(r + c);  // gentle ramp
    }
  }
  // Compare mean interior distortion (the boundary's zero padding makes
  // even the smooth ramp "rough" at the rim, by design).
  const auto interior_mean_change = [](const MatrixD& a, const MatrixD& b) {
    double acc = 0.0;
    std::size_t count = 0;
    for (std::size_t r = 2; r < a.rows() - 2; ++r) {
      for (std::size_t c = 2; c < a.cols() - 2; ++c) {
        acc += std::abs(a(r, c) - b(r, c));
        ++count;
      }
    }
    return acc / static_cast<double>(count);
  };
  const double rough_change =
      interior_mean_change(apply_crosstalk(rough), rough);
  const double smooth_change =
      interior_mean_change(apply_crosstalk(smooth), smooth);
  EXPECT_GT(rough_change, 4.0 * smooth_change);
}

TEST(Crosstalk, StrengthZeroIsIdentity) {
  Rng rng(14);
  MatrixD phi(8, 8);
  for (auto& v : phi) v = rng.uniform(0.0, 6.0);
  CrosstalkOptions opt;
  opt.strength = 0.0;
  EXPECT_LT(max_abs_diff(apply_crosstalk(phi, opt), phi), 1e-12);
}

TEST(Crosstalk, OptionValidation) {
  MatrixD phi(4, 4, 1.0);
  CrosstalkOptions bad;
  bad.strength = 1.5;
  EXPECT_THROW(apply_crosstalk(phi, bad), Error);
  bad.strength = 0.5;
  bad.half_response = 0.0;
  EXPECT_THROW(apply_crosstalk(phi, bad), Error);
}

}  // namespace
}  // namespace odonn::donn

// Exercises the exact paper geometry (§IV-A1): 200x200 grid (Bluestein FFT
// path), 36 um pixels, 532 nm, 27.94 cm spacing, three layers, ten 20x20
// detector regions. These tests are heavier than the unit suites (a few
// hundred ms each) but prove the full-scale configuration is functional,
// not just the reduced CPU-sized one.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "donn/model.hpp"
#include "donn/serialize.hpp"
#include "optics/encode.hpp"
#include "roughness/report.hpp"
#include "smooth2pi/two_pi_opt.hpp"
#include "sparsify/block_sparsify.hpp"

namespace odonn {
namespace {

TEST(PaperScale, ConfigMatchesPublishedConstants) {
  const donn::DonnConfig cfg = donn::DonnConfig::paper();
  EXPECT_EQ(cfg.grid.n, 200u);
  EXPECT_DOUBLE_EQ(cfg.grid.pitch, 36e-6);
  EXPECT_DOUBLE_EQ(cfg.wavelength, 532e-9);
  EXPECT_DOUBLE_EQ(cfg.distance, 0.2794);
  EXPECT_EQ(cfg.num_layers, 3u);
  EXPECT_EQ(cfg.detector_size, 20u);
  // Mask physical extent: 200 * 36 um = 7.2 mm (the paper's 720 um x 720 um
  // figure is per 20-pixel detector cell; the full layer is 7.2 mm).
  EXPECT_NEAR(cfg.grid.extent(), 7.2e-3, 1e-12);
}

TEST(PaperScale, ScaledConfigRecoversPaperPitchAt200) {
  const donn::DonnConfig scaled = donn::DonnConfig::scaled(200);
  EXPECT_NEAR(scaled.grid.pitch, 36e-6, 0.05e-6);
}

TEST(PaperScale, ForwardPassEnergyAndDeterminism) {
  Rng rng(1);
  donn::DonnModel model(donn::DonnConfig::paper(), rng);
  MatrixD image(200, 200, 0.0);
  for (std::size_t r = 80; r < 120; ++r) {
    for (std::size_t c = 80; c < 120; ++c) image(r, c) = 1.0;
  }
  const auto input = optics::encode_image(image, model.config().grid);
  const auto sums_a = model.detector_sums(input);
  const auto sums_b = model.detector_sums(input);
  EXPECT_EQ(sums_a, sums_b);
  ASSERT_EQ(sums_a.size(), 10u);
  double total = 0.0;
  for (double s : sums_a) {
    EXPECT_GE(s, 0.0);
    total += s;
  }
  EXPECT_GT(total, 0.0);
  EXPECT_LE(total, 1.0 + 1e-9);  // detector regions capture <= total power

  const auto out = model.propagate_through(input);
  EXPECT_NEAR(out.power(), input.power(), 1e-6 * input.power());
}

TEST(PaperScale, BackwardPassProducesFiniteGradients) {
  Rng rng(2);
  donn::DonnModel model(donn::DonnConfig::paper(), rng);
  MatrixD image(200, 200, 0.0);
  image(100, 100) = 1.0;
  const auto input = optics::encode_image(image, model.config().grid);
  auto grads = model.zero_gradients();
  const auto result = model.forward_backward(input, 3, grads, {});
  EXPECT_TRUE(std::isfinite(result.loss));
  double norm = 0.0;
  for (const auto& g : grads) {
    for (std::size_t i = 0; i < g.size(); ++i) {
      ASSERT_TRUE(std::isfinite(g[i]));
      norm += g[i] * g[i];
    }
  }
  EXPECT_GT(norm, 0.0);
}

TEST(PaperScale, PaperBlockSparsificationGeometry) {
  // Block 25 on the 200-grid: an 8x8 block grid, ratio 0.1 -> 6 zeroed
  // blocks = 3750 pixels = 9.375% (llround(0.1 * 64) = 6).
  Rng rng(3);
  donn::DonnModel model(donn::DonnConfig::paper(), rng);
  const auto mask = sparsify::block_sparsify(model.phases()[0], {25, 0.1});
  EXPECT_NEAR(sparsify::sparsity_ratio(mask), 6.0 * 625.0 / 40000.0, 1e-12);
}

TEST(PaperScale, TwoPiOptimizerRunsOnSparsifiedPaperMask) {
  Rng rng(4);
  MatrixD phi(200, 200);
  for (auto& v : phi) v = 5.0 + rng.uniform(-0.3, 0.3);
  sparsify::apply_mask(phi, sparsify::block_sparsify(phi, {25, 0.1}));
  smooth2pi::TwoPiOptions opt;
  opt.iterations = 600;  // reduced for test runtime; never-worse still holds
  const auto result = smooth2pi::optimize_2pi(phi, opt);
  EXPECT_LE(result.roughness_after, result.roughness_before + 1e-9);
  // The warm start alone lifts the sparsified zeros, which on this mask is
  // already a strict improvement.
  EXPECT_LT(result.roughness_after, result.roughness_before);
}

TEST(PaperScale, SerializationRoundTripAt200) {
  Rng rng(5);
  donn::DonnModel model(donn::DonnConfig::paper(), rng);
  const std::string path = ::testing::TempDir() + "/paper.odnn";
  donn::save_model(model, path);
  const auto loaded = donn::load_model(path);
  EXPECT_EQ(loaded.config().grid.n, 200u);
  for (std::size_t l = 0; l < model.num_layers(); ++l) {
    EXPECT_LT(max_abs_diff(loaded.phases()[l], model.phases()[l]), 1e-15);
  }
}

}  // namespace
}  // namespace odonn

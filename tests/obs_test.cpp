// Tests for src/obs: registry semantics and thread-safety, histogram
// window/percentile parity with the repo-wide nearest-rank rule, trace
// span nesting/ordering, exporter shapes, and the ODONN_OBS_DISABLE
// no-op proof (tests/helpers/obs_disabled_helper.cpp is the one TU in
// this binary compiled with the macro layer disabled).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "helpers/obs_disabled_helper.hpp"
#include "obs/obs.hpp"
#include "tensor/stats.hpp"

namespace odonn {
namespace {

TEST(Counter, AddValueReset) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, MaxWatermarkSurvivesDrop) {
  obs::Gauge g;
  g.set(5);
  g.set(2);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max_value(), 5);
  g.add(10);
  EXPECT_EQ(g.value(), 12);
  EXPECT_EQ(g.max_value(), 12);
  g.reset();
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.max_value(), 0);
}

TEST(Histogram, EmptySnapshotIsZeroed) {
  obs::Histogram h;
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0.0);
  EXPECT_EQ(snap.min, 0.0);
  EXPECT_EQ(snap.max, 0.0);
  EXPECT_EQ(snap.p50, 0.0);
  EXPECT_EQ(snap.p90, 0.0);
  EXPECT_EQ(snap.p99, 0.0);
}

TEST(Histogram, PercentilesMatchNearestRankRule) {
  // Fewer observations than the window: percentiles must agree exactly
  // with percentile_nearest_rank over the full sample, same as fab's
  // robustness percentiles and serve's latency percentiles.
  obs::Histogram h;
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) {
    const double v = static_cast<double>((i * 37) % 500) * 0.5;
    h.observe(v);
    values.push_back(v);
  }
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 500u);
  EXPECT_EQ(snap.min, 0.0);
  EXPECT_EQ(snap.max, 0.5 * 499.0);
  EXPECT_EQ(snap.p50, percentile_nearest_rank(values, 0.5));
  EXPECT_EQ(snap.p90, percentile_nearest_rank(values, 0.9));
  EXPECT_EQ(snap.p99, percentile_nearest_rank(values, 0.99));
}

TEST(Histogram, WindowBoundedButTotalsCoverEverything) {
  // Ring window of 8: percentiles see only the last 8 observations,
  // count/sum/min/max keep covering all of them.
  obs::Histogram h(8);
  double sum = 0.0;
  for (int i = 1; i <= 20; ++i) {
    h.observe(static_cast<double>(i));
    sum += static_cast<double>(i);
  }
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 20u);
  EXPECT_EQ(snap.sum, sum);
  EXPECT_EQ(snap.min, 1.0);
  EXPECT_EQ(snap.max, 20.0);
  const std::vector<double> retained = {13, 14, 15, 16, 17, 18, 19, 20};
  EXPECT_EQ(snap.p50, percentile_nearest_rank(retained, 0.5));
  EXPECT_EQ(snap.p90, percentile_nearest_rank(retained, 0.9));
  EXPECT_EQ(snap.p99, percentile_nearest_rank(retained, 0.99));
}

TEST(MetricsRegistry, ConcurrentLookupAndAddIsExact) {
  auto& registry = obs::MetricsRegistry::global();
  auto& counter = registry.counter("test.concurrent");
  counter.reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kPerThread; ++i) {
        // Lookup + add on every iteration: stresses the registry map
        // under contention, not just the atomic.
        registry.counter("test.concurrent").add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Node stability: repeated lookups return the same instrument.
  EXPECT_EQ(&registry.counter("test.concurrent"), &counter);
}

TEST(MetricsRegistry, NameBoundToOneKind) {
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("test.kind");
  EXPECT_THROW(registry.gauge("test.kind"), ConfigError);
  EXPECT_THROW(registry.histogram("test.kind"), ConfigError);
  EXPECT_THROW(registry.counter("serve.queue_depth"), ConfigError);
}

TEST(MetricsRegistry, BuiltinSchemaPreRegistered) {
  const auto names = obs::MetricsRegistry::global().names();
  const auto has = [&names](const char* name) {
    return std::find(names.begin(), names.end(), name) != names.end();
  };
  EXPECT_TRUE(has("serve.requests"));
  EXPECT_TRUE(has("serve.latency_ms"));
  EXPECT_TRUE(has("serve.queue_depth"));
  EXPECT_TRUE(has("fft.plan_cache.hits"));
  EXPECT_TRUE(has("train.epochs"));
  EXPECT_TRUE(has("fab.realizations"));
  EXPECT_TRUE(has("pipeline.stages_run"));
  EXPECT_TRUE(has("parallel.tasks"));
  EXPECT_TRUE(has("parallel.queue_wait_us.depth1"));
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(MetricsRegistry, JsonExporterShape) {
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("test.json.counter").reset();
  registry.counter("test.json.counter").add(3);
  registry.gauge("test.json.gauge").reset();
  registry.gauge("test.json.gauge").set(7);
  registry.gauge("test.json.gauge").set(2);
  registry.histogram("test.json.hist").reset();
  registry.histogram("test.json.hist").observe(1.5);
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.counter\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.gauge\": {\"value\": 2, \"max\": 7}"),
            std::string::npos);
  EXPECT_NE(json.find("\"test.json.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(MetricsRegistry, TextExporterIsPrometheusShaped) {
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("test.text.counter").reset();
  registry.counter("test.text.counter").add(9);
  registry.histogram("test.text.hist").reset();
  registry.histogram("test.text.hist").observe(4.0);
  const std::string text = registry.to_text();
  EXPECT_NE(text.find("# TYPE odonn_test_text_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("odonn_test_text_counter 9"), std::string::npos);
  EXPECT_NE(text.find("# TYPE odonn_test_text_hist summary"),
            std::string::npos);
  EXPECT_NE(text.find("odonn_test_text_hist{quantile=\"0.5\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("odonn_test_text_hist_count 1"), std::string::npos);
  EXPECT_NE(text.find("odonn_test_text_hist_sum 4"), std::string::npos);
  EXPECT_NE(text.find("# TYPE odonn_serve_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("odonn_serve_queue_depth_max "), std::string::npos);
}

TEST(MetricsRegistry, NativeHistogramBucketsGoldenShape) {
  auto& registry = obs::MetricsRegistry::global();
  auto& hist = registry.histogram("test.buckets.hist");
  hist.reset();
  hist.observe(0.003);
  hist.observe(0.003);
  hist.observe(40.0);
  hist.observe(99999.0);  // above the last bound: +Inf only

  const auto snap = hist.snapshot();
  ASSERT_EQ(snap.buckets.size(), obs::Histogram::bucket_bounds().size());

  const std::string text = registry.to_text();
  const std::string prom = "odonn_test_buckets_hist_hist";
  EXPECT_NE(text.find("# TYPE " + prom + " histogram"), std::string::npos);
  // Cumulative le= semantics: nothing at or below 0.0025, both 0.003
  // observations by 0.005, all finite-bucketed ones by 50.
  EXPECT_NE(text.find(prom + "_bucket{le=\"0.0025\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find(prom + "_bucket{le=\"0.005\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find(prom + "_bucket{le=\"25\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find(prom + "_bucket{le=\"50\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find(prom + "_bucket{le=\"10000\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find(prom + "_bucket{le=\"+Inf\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find(prom + "_sum "), std::string::npos);
  EXPECT_NE(text.find(prom + "_count 4\n"), std::string::npos);
  // The quantile summary family is still exported alongside.
  EXPECT_NE(text.find("# TYPE odonn_test_buckets_hist summary"),
            std::string::npos);
  hist.reset();
  const auto zeroed = hist.snapshot();
  ASSERT_EQ(zeroed.buckets.size(), obs::Histogram::bucket_bounds().size());
  EXPECT_TRUE(std::all_of(zeroed.buckets.begin(), zeroed.buckets.end(),
                          [](std::uint64_t c) { return c == 0; }));
}

TEST(MetricsRegistry, ResetZeroesInPlace) {
  auto& registry = obs::MetricsRegistry::global();
  auto& counter = registry.counter("test.reset.counter");
  counter.add(5);
  registry.reset();
  EXPECT_EQ(counter.value(), 0u);
  // The node survived: the cached reference is still the live instrument.
  counter.add(2);
  EXPECT_EQ(registry.counter("test.reset.counter").value(), 2u);
}

TEST(Trace, SpansInertWhileDisabled) {
  obs::set_tracing(false);
  obs::clear_trace();
  {
    obs::TraceSpan span("never.recorded");
  }
  EXPECT_TRUE(obs::trace_events().empty());
}

TEST(Trace, NestedSpansRecordDepthAndContainment) {
  obs::set_tracing(true);
  obs::clear_trace();
  {
    obs::TraceSpan outer("outer");
    {
      obs::TraceSpan inner("inner");
    }
  }
  obs::set_tracing(false);
  const auto events = obs::trace_events();
  ASSERT_EQ(events.size(), 2u);
  // Completion order: inner finishes first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[0].depth, 2u);
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_EQ(events[0].tid, events[1].tid);
  // [start, start+dur] containment per thread is what Chrome-trace uses
  // to rebuild the nesting.
  EXPECT_GE(events[0].start_us, events[1].start_us);
  EXPECT_LE(events[0].start_us + events[0].duration_us,
            events[1].start_us + events[1].duration_us);
  const std::string chrome = obs::trace_to_chrome_json();
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\": \"inner\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\": \"X\""), std::string::npos);
  const std::string spans = obs::spans_json();
  EXPECT_NE(spans.find("\"duration_us\""), std::string::npos);
  obs::clear_trace();
}

TEST(Trace, ThreadTagsAreDenseAndStable) {
  const std::uint32_t main_tag = obs::thread_tag();
  EXPECT_EQ(obs::thread_tag(), main_tag);
  std::uint32_t other_tag = main_tag;
  std::thread worker([&other_tag] { other_tag = obs::thread_tag(); });
  worker.join();
  EXPECT_NE(other_tag, main_tag);
}

TEST(TraceFlush, StreamsCompletedSpansAsJsonLines) {
  const std::string path = ::testing::TempDir() + "/trace_flush.jsonl";
  obs::set_tracing(true);
  obs::clear_trace();
  obs::set_trace_flush_file(path);
  {
    obs::TraceSpan outer("flush.outer");
    obs::TraceSpan inner("flush.inner");
  }
  obs::set_tracing(false);
  obs::close_trace_flush_file();
  obs::close_trace_flush_file();  // idempotent
  EXPECT_EQ(obs::trace_flushed(), 2u);

  // One JSON line per completed span, completion order (inner first),
  // carrying the same fields as spans_json() elements.
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"name\": \"flush.inner\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"name\": \"flush.outer\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"depth\": 2"), std::string::npos);
  EXPECT_NE(lines[0].find("\"duration_us\""), std::string::npos);
  obs::clear_trace();
}

TEST(TraceFlush, OverflowCountsFlushedNotDroppedWithSinkAttached) {
  obs::set_tracing(true);
  obs::clear_trace();
  // Fill the bounded buffer (64k events) with no sink: the next span is
  // genuinely lost and counts as dropped.
  for (std::size_t i = 0; i < (std::size_t{1} << 16); ++i) {
    obs::TraceSpan span("fill");
  }
  EXPECT_EQ(obs::trace_dropped(), 0u);
  {
    obs::TraceSpan span("lost");
  }
  EXPECT_EQ(obs::trace_dropped(), 1u);

  // With a sink attached the overflow spans are durable on disk: flushed
  // advances, dropped does not.
  const std::string path = ::testing::TempDir() + "/trace_overflow.jsonl";
  obs::set_trace_flush_file(path);
  {
    obs::TraceSpan span("kept.a");
  }
  {
    obs::TraceSpan span("kept.b");
  }
  obs::set_tracing(false);
  obs::close_trace_flush_file();
  EXPECT_EQ(obs::trace_dropped(), 1u);
  EXPECT_EQ(obs::trace_flushed(), 2u);
  std::ifstream in(path);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("kept.a"), std::string::npos);
  EXPECT_NE(all.find("kept.b"), std::string::npos);
  obs::clear_trace();
}

TEST(TraceFlush, BadPathThrowsAndReattachResetsCounter) {
  EXPECT_THROW(
      obs::set_trace_flush_file(::testing::TempDir() +
                                "/no_such_dir_for_trace/spans.jsonl"),
      IoError);

  const std::string first = ::testing::TempDir() + "/trace_first.jsonl";
  const std::string second = ::testing::TempDir() + "/trace_second.jsonl";
  obs::set_tracing(true);
  obs::clear_trace();
  obs::set_trace_flush_file(first);
  {
    obs::TraceSpan span("into.first");
  }
  EXPECT_EQ(obs::trace_flushed(), 1u);
  obs::set_trace_flush_file(second);  // replaces the sink, resets the count
  EXPECT_EQ(obs::trace_flushed(), 0u);
  {
    obs::TraceSpan span("into.second");
  }
  obs::set_tracing(false);
  obs::close_trace_flush_file();
  EXPECT_EQ(obs::trace_flushed(), 1u);
  std::ifstream in(second);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("into.second"), std::string::npos);
  EXPECT_EQ(all.find("into.first"), std::string::npos);
  obs::clear_trace();
}

TEST(ObsDisabled, MacrosEvaluateNothingAndRegisterNothing) {
  EXPECT_EQ(obs_disabled::run_disabled_instrumentation(), 0);
  for (const auto& name : obs::MetricsRegistry::global().names()) {
    EXPECT_NE(name.rfind("disabled.", 0), 0u) << name;
  }
}

TEST(ExportJson, CombinedShape) {
  const std::string combined = obs::export_json();
  EXPECT_NE(combined.find("\"build\""), std::string::npos);
  EXPECT_NE(combined.find("\"metrics\""), std::string::npos);
  EXPECT_NE(combined.find("\"spans\""), std::string::npos);
  EXPECT_NE(combined.find("\"trace_dropped\""), std::string::npos);
  EXPECT_NE(combined.find("\"trace_flushed\""), std::string::npos);
}

TEST(Histogram, P999MatchesNearestRankRule) {
  // p999 uses the same repo-wide nearest-rank rule as p50/p90/p99 and
  // flows into both exporters.
  obs::Histogram h;
  std::vector<double> values;
  for (int i = 0; i < 700; ++i) {
    const double v = static_cast<double>((i * 53) % 700) * 0.25;
    h.observe(v);
    values.push_back(v);
  }
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.p999, percentile_nearest_rank(values, 0.999));
  EXPECT_GE(snap.p999, snap.p99);
}

TEST(MetricsRegistry, TextExporterEmitsHelpAndP999Quantile) {
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("test.help.counter").reset();
  registry.counter("test.help.counter").add(1);
  auto& hist = registry.histogram("test.help.hist");
  hist.reset();
  for (int i = 1; i <= 9; ++i) hist.observe(static_cast<double>(i));
  const std::string text = registry.to_text();
  // Every family gets a HELP line naming the dotted source metric,
  // immediately followed by its TYPE line.
  EXPECT_NE(
      text.find("# HELP odonn_test_help_counter odonn metric "
                "'test.help.counter'\n# TYPE odonn_test_help_counter counter"),
      std::string::npos);
  EXPECT_NE(text.find("# HELP odonn_test_help_hist odonn metric "
                      "'test.help.hist'\n# TYPE odonn_test_help_hist summary"),
            std::string::npos);
  // Histograms carry the p999 quantile alongside 0.5/0.9/0.99.
  EXPECT_NE(text.find("odonn_test_help_hist{quantile=\"0.99\"} 9"),
            std::string::npos);
  EXPECT_NE(text.find("odonn_test_help_hist{quantile=\"0.999\"} 9"),
            std::string::npos);
  // The serve attribution schema is pre-registered and renders sanitized.
  EXPECT_NE(text.find("# TYPE odonn_serve_attr_queue_wait_ms summary"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE odonn_serve_attr_batch_wait_ms summary"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE odonn_serve_attr_compute_ms summary"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE odonn_obs_http_requests counter"),
            std::string::npos);
}

TEST(MetricsRegistry, JsonExporterCarriesP999) {
  auto& registry = obs::MetricsRegistry::global();
  auto& hist = registry.histogram("test.p999.hist");
  hist.reset();
  for (int i = 1; i <= 4; ++i) hist.observe(static_cast<double>(i));
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"p999\": 4"), std::string::npos);
}

TEST(BuildInfo, ReportsProvenanceAndUptime) {
  const std::string info = obs::build_info_json();
  EXPECT_NE(info.find("\"git_sha\": \""), std::string::npos);
  EXPECT_NE(info.find("\"compiler\": \""), std::string::npos);
  // This TU builds WITHOUT ODONN_OBS_DISABLE (the disabled helper proves
  // the other mode), and the flags reflect live runtime state.
  EXPECT_NE(info.find("\"obs_disabled\": false"), std::string::npos);
  EXPECT_NE(info.find("\"obs_detail\": "), std::string::npos);
  EXPECT_NE(info.find("\"tracing\": "), std::string::npos);
  EXPECT_NE(info.find("\"uptime_s\": "), std::string::npos);
  EXPECT_GT(obs::process_uptime_seconds(), 0.0);
  // Uptime is monotone.
  const double first = obs::process_uptime_seconds();
  EXPECT_GE(obs::process_uptime_seconds(), first);
}

TEST(Trace, RecordSpanCarriesRequestIdThroughExports) {
  obs::set_tracing(true);
  obs::clear_trace();
  obs::record_span("attr.request", 100, 50, 1, 77);
  obs::record_span("attr.anonymous", 200, 10, 2);  // request_id 0
  obs::set_tracing(false);

  const auto events = obs::trace_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].request_id, 77u);
  EXPECT_EQ(events[0].start_us, 100);
  EXPECT_EQ(events[0].duration_us, 50);
  EXPECT_EQ(events[1].request_id, 0u);

  // request_id is emitted only when nonzero, in both span exports.
  const std::string spans = obs::spans_json();
  EXPECT_NE(spans.find("\"name\": \"attr.request\", \"tid\": "),
            std::string::npos);
  EXPECT_NE(spans.find("\"request_id\": 77"), std::string::npos);
  const std::size_t anon = spans.find("attr.anonymous");
  ASSERT_NE(anon, std::string::npos);
  EXPECT_EQ(spans.find("\"request_id\"", anon), std::string::npos);
  const std::string chrome = obs::trace_to_chrome_json();
  EXPECT_NE(chrome.find("\"request_id\": 77"), std::string::npos);
  obs::clear_trace();
}

TEST(Trace, RecordSpanInertWhileDisabled) {
  obs::set_tracing(false);
  obs::clear_trace();
  obs::record_span("never.recorded", 0, 1, 1, 5);
  EXPECT_TRUE(obs::trace_events().empty());
}

}  // namespace
}  // namespace odonn

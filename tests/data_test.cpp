// Tests for src/data: dataset container, synthetic glyph generators
// (determinism, balance, class separability), IDX round trips and failure
// injection, transforms.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/error.hpp"
#include "data/dataset.hpp"
#include "data/idx.hpp"
#include "data/synthetic.hpp"
#include "data/transform.hpp"
#include "tensor/stats.hpp"

namespace odonn::data {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(Dataset, ConstructionValidates) {
  std::vector<MatrixD> images{MatrixD(4, 4, 0.5)};
  EXPECT_THROW(Dataset(images, {1, 2}, 10), Error);    // count mismatch
  EXPECT_THROW(Dataset(images, {11}, 10), Error);      // label out of range
  std::vector<MatrixD> ragged{MatrixD(4, 4), MatrixD(5, 5)};
  EXPECT_THROW(Dataset(ragged, {0, 1}, 10), ShapeError);
}

TEST(Dataset, SubsetAndHistogram) {
  std::vector<MatrixD> images(6, MatrixD(2, 2, 0.0));
  const Dataset ds(images, {0, 1, 0, 2, 1, 0}, 3);
  const auto hist = ds.class_histogram();
  EXPECT_EQ(hist[0], 3u);
  EXPECT_EQ(hist[1], 2u);
  EXPECT_EQ(hist[2], 1u);
  const Dataset sub = ds.subset(2, 3);
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_EQ(sub.label(0), 0u);
  EXPECT_THROW(ds.subset(4, 4), Error);
}

TEST(Dataset, SplitPreservesAllSamples) {
  std::vector<MatrixD> images(10, MatrixD(2, 2, 0.0));
  const Dataset ds(images, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 10);
  Rng rng(1);
  const auto [train, test] = ds.split(0.7, rng);
  EXPECT_EQ(train.size(), 7u);
  EXPECT_EQ(test.size(), 3u);
  auto hist = train.class_histogram();
  const auto test_hist = test.class_histogram();
  for (std::size_t c = 0; c < 10; ++c) hist[c] += test_hist[c];
  for (std::size_t c = 0; c < 10; ++c) EXPECT_EQ(hist[c], 1u);
}

class Families : public ::testing::TestWithParam<SyntheticFamily> {};

TEST_P(Families, DeterministicForSameSeed) {
  const auto a = make_synthetic(GetParam(), 30, 42);
  const auto b = make_synthetic(GetParam(), 30, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.label(i), b.label(i));
    EXPECT_LT(max_abs_diff(a.image(i), b.image(i)), 1e-15);
  }
}

TEST_P(Families, ClassBalanced) {
  const auto ds = make_synthetic(GetParam(), 200, 7);
  const auto hist = ds.class_histogram();
  for (std::size_t c = 0; c < 10; ++c) EXPECT_EQ(hist[c], 20u);
}

TEST_P(Families, ImagesAreNormalizedAndNonTrivial) {
  const auto ds = make_synthetic(GetParam(), 20, 9);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const auto& img = ds.image(i);
    EXPECT_EQ(img.rows(), 28u);
    EXPECT_GE(min_value(img), 0.0);
    EXPECT_LE(max_value(img), 1.0);
    EXPECT_GT(img.sum(), 5.0);          // glyph ink present
    EXPECT_LT(img.sum(), 28.0 * 28.0 * 0.8);  // not saturated
  }
}

TEST_P(Families, IntraClassVariationExists) {
  // Two samples of the same class must differ (jitter), but share structure.
  SyntheticOptions opt;
  opt.noise_sigma = 0.0;
  Rng rng(11);
  const MatrixD a = render_glyph(GetParam(), 3, rng, opt);
  const MatrixD b = render_glyph(GetParam(), 3, rng, opt);
  EXPECT_GT(max_abs_diff(a, b), 0.1);
}

TEST_P(Families, ClassesAreSeparableByTemplateCorrelation) {
  // Build per-class mean templates; each sample should correlate best with
  // its own class template for a clear majority of samples.
  const auto family = GetParam();
  const auto train = make_synthetic(family, 300, 5);
  std::vector<MatrixD> templates(10, MatrixD(28, 28, 0.0));
  std::vector<std::size_t> counts(10, 0);
  for (std::size_t i = 0; i < train.size(); ++i) {
    templates[train.label(i)] += train.image(i);
    ++counts[train.label(i)];
  }
  for (std::size_t c = 0; c < 10; ++c) {
    templates[c] *= 1.0 / static_cast<double>(counts[c]);
  }
  const auto test = make_synthetic(family, 100, 77);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    double best = -1e300;
    std::size_t best_c = 0;
    for (std::size_t c = 0; c < 10; ++c) {
      double dot = 0.0, norm = 1e-12;
      for (std::size_t p = 0; p < templates[c].size(); ++p) {
        dot += templates[c][p] * test.image(i)[p];
        norm += templates[c][p] * templates[c][p];
      }
      const double score = dot / std::sqrt(norm);
      if (score > best) {
        best = score;
        best_c = c;
      }
    }
    if (best_c == test.label(i)) ++correct;
  }
  // Template correlation is a weak classifier; 60% on a 10-class task is
  // far above the 10% chance floor and confirms the labels carry signal.
  EXPECT_GT(correct, 60u) << family_name(family);
}

INSTANTIATE_TEST_SUITE_P(All, Families,
                         ::testing::Values(SyntheticFamily::Digits,
                                           SyntheticFamily::Fashion,
                                           SyntheticFamily::Kana,
                                           SyntheticFamily::Letters));

TEST(Synthetic, FamiliesAreDistinct) {
  SyntheticOptions opt;
  opt.noise_sigma = 0.0;
  Rng r1(5), r2(5);
  const MatrixD digit = render_glyph(SyntheticFamily::Digits, 0, r1, opt);
  const MatrixD fashion = render_glyph(SyntheticFamily::Fashion, 0, r2, opt);
  EXPECT_GT(max_abs_diff(digit, fashion), 0.5);
}

TEST(Synthetic, ParseFamilyAcceptsPaperNames) {
  EXPECT_EQ(parse_family("mnist"), SyntheticFamily::Digits);
  EXPECT_EQ(parse_family("FMNIST"), SyntheticFamily::Fashion);
  EXPECT_EQ(parse_family("kmnist"), SyntheticFamily::Kana);
  EXPECT_EQ(parse_family("emnist"), SyntheticFamily::Letters);
  EXPECT_THROW(parse_family("cifar"), ConfigError);
}

TEST(Synthetic, InvalidClassThrows) {
  Rng rng(1);
  EXPECT_THROW(render_glyph(SyntheticFamily::Digits, 10, rng), Error);
}

TEST(Idx, RoundTripPreservesData) {
  const auto ds = make_synthetic(SyntheticFamily::Digits, 12, 3);
  const auto img_path = temp_path("idx_images.bin");
  const auto lbl_path = temp_path("idx_labels.bin");
  write_idx(ds, img_path, lbl_path);
  const auto loaded = load_idx(img_path, lbl_path);
  ASSERT_EQ(loaded.size(), ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(loaded.label(i), ds.label(i));
    // u8 quantization bound.
    EXPECT_LT(max_abs_diff(loaded.image(i), ds.image(i)), 1.0 / 255.0 + 1e-9);
  }
}

TEST(Idx, MissingFileThrowsIoError) {
  EXPECT_THROW(load_idx("/nonexistent/images", "/nonexistent/labels"), IoError);
}

TEST(Idx, BadMagicRejected) {
  const auto img_path = temp_path("bad_magic.bin");
  std::ofstream out(img_path, std::ios::binary);
  const char junk[16] = {0x12, 0x34, 0x56, 0x78, 0, 0, 0, 1, 0, 0, 0, 2,
                         0, 0, 0, 2};
  out.write(junk, sizeof(junk));
  out.close();
  const auto ds = make_synthetic(SyntheticFamily::Digits, 1, 1);
  const auto lbl_path = temp_path("good_labels.bin");
  write_idx(ds, temp_path("good_images.bin"), lbl_path);
  EXPECT_THROW(load_idx(img_path, lbl_path), IoError);
}

TEST(Idx, TruncatedImageDataRejected) {
  const auto ds = make_synthetic(SyntheticFamily::Digits, 4, 2);
  const auto img_path = temp_path("trunc_images.bin");
  const auto lbl_path = temp_path("trunc_labels.bin");
  write_idx(ds, img_path, lbl_path);
  // Chop the images file.
  std::ifstream in(img_path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(img_path, std::ios::binary | std::ios::trunc);
  out.write(content.data(), static_cast<std::streamsize>(content.size() / 2));
  out.close();
  EXPECT_THROW(load_idx(img_path, lbl_path), IoError);
}

TEST(Idx, CountMismatchRejected) {
  const auto a = make_synthetic(SyntheticFamily::Digits, 4, 2);
  const auto b = make_synthetic(SyntheticFamily::Digits, 6, 2);
  const auto img_a = temp_path("mismatch_images.bin");
  const auto lbl_a = temp_path("mismatch_labels_a.bin");
  const auto img_b = temp_path("mismatch_images_b.bin");
  const auto lbl_b = temp_path("mismatch_labels_b.bin");
  write_idx(a, img_a, lbl_a);
  write_idx(b, img_b, lbl_b);
  EXPECT_THROW(load_idx(img_a, lbl_b), IoError);
}

TEST(Transform, AffineIdentityIsExact) {
  Rng rng(4);
  MatrixD img(12, 12);
  for (auto& v : img) v = rng.uniform();
  const MatrixD warped = affine_warp(img, 0.0, 1.0, 0.0, 0.0);
  EXPECT_LT(max_abs_diff(warped, img), 1e-12);
}

TEST(Transform, AffineShiftMovesContent) {
  MatrixD img(12, 12, 0.0);
  img(6, 6) = 1.0;
  const MatrixD shifted = affine_warp(img, 0.0, 1.0, 2.0, 1.0);
  EXPECT_NEAR(shifted(7, 8), 1.0, 1e-9);
  EXPECT_NEAR(shifted(6, 6), 0.0, 1e-9);
}

TEST(Transform, NoiseIsClampedToUnitRange) {
  MatrixD img(8, 8, 0.95);
  Rng rng(5);
  const MatrixD noisy = add_noise(img, 0.5, rng);
  EXPECT_LE(max_value(noisy), 1.0);
  EXPECT_GE(min_value(noisy), 0.0);
  EXPECT_GT(max_abs_diff(noisy, img), 0.01);
}

TEST(Transform, ResizeDatasetChangesShapeOnly) {
  const auto ds = make_synthetic(SyntheticFamily::Digits, 5, 6);
  const auto resized = resize_dataset(ds, 56);
  ASSERT_EQ(resized.size(), ds.size());
  EXPECT_EQ(resized.image(0).rows(), 56u);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(resized.label(i), ds.label(i));
  }
}

}  // namespace
}  // namespace odonn::data

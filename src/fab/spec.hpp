// Textual perturbation-stack specs, so CLI and pipeline configs can select
// fabrication imperfections with one key=value argument:
//
//   perturb=roughness(sigma_um=0.05,corr=2)+quantize(levels=8)+misalign
//
// Grammar: stack  := model ('+' model)*
//          model  := name [ '(' arg (',' arg)* ')' ]
//          arg    := key '=' number
// Names: roughness (sigma_um, corr), quantize (levels), misalign (sigma_px),
// detune (sigma_rel), ctjitter (sigma). A name without parentheses (or with
// empty ones) takes that model's defaults. Unknown names or keys throw
// ConfigError — same fail-fast contract as Config::strict.
#pragma once

#include <string>

#include "fab/perturbation.hpp"

namespace odonn::fab {

/// Parses a stack spec; throws ConfigError on syntax errors, unknown model
/// names, unknown argument keys or unparsable numbers.
PerturbationStack parse_perturbation_stack(const std::string& spec);

/// The default deployment-variability stack used when no spec is given:
/// correlated surface roughness + 16-level printing + slight misalignment.
extern const char* const kDefaultPerturbationSpec;

}  // namespace odonn::fab

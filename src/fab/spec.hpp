// Textual perturbation-stack specs, so CLI and pipeline configs can select
// fabrication imperfections with one key=value argument:
//
//   perturb=roughness(sigma_um=0.05,corr=2)+quantize(levels=8)+misalign
//
// Grammar: stack  := model ('+' model)*
//          model  := name [ '(' arg (',' arg)* ')' ]
//          arg    := key '=' number
// Names: roughness (sigma_um, corr, layer), quantize (levels, layer),
// misalign (sigma_px), detune (sigma_rel), ctjitter (sigma). A name without
// parentheses (or with empty ones) takes that model's defaults. roughness
// and quantize accept layer=K to restrict the imperfection to mask K of a
// multi-layer stack (default -1 = all layers), so per-layer severity specs
// like roughness(sigma_um=0.1,layer=0)+roughness(sigma_um=0.02,layer=4)
// compose. Unknown names or keys throw ConfigError — same fail-fast
// contract as Config::strict.
#pragma once

#include <string>

#include "fab/perturbation.hpp"

namespace odonn::fab {

/// Parses a stack spec; throws ConfigError on syntax errors, unknown model
/// names, unknown argument keys or unparsable numbers.
PerturbationStack parse_perturbation_stack(const std::string& spec);

/// The default deployment-variability stack used when no spec is given:
/// correlated surface roughness + 16-level printing + slight misalignment.
extern const char* const kDefaultPerturbationSpec;

}  // namespace odonn::fab

// Fabrication-variability perturbation models.
//
// The paper's argument is the gap between numerical modelling and physical
// deployment; the repo's single deterministic crosstalk emulation answers
// "what happens to ONE fabricated device". This module supplies the sources
// of device-to-device variation so src/fab/montecarlo.hpp can turn that one
// point into a distribution: each PerturbationModel applies one seeded,
// per-realization imperfection to a FabricatedDevice (the phase masks about
// to be deployed plus the crosstalk options they will be deployed under).
//
// Models provided (all physically parameterized):
//   * SurfaceRoughness    — correlated Gaussian random-field height error,
//                           added in thickness space via optics::fabrication
//                           and converted back to phase;
//   * QuantizeLevels      — height quantization to N print levels in
//                           ABSOLUTE height steps, so full 2*pi zones
//                           survive (deterministic; deliberately NOT the
//                           kinoform wrap of donn::quantize_phase, which
//                           would collapse the smoother's multi-zone
//                           relief);
//   * LateralMisalignment — per-layer sub-pixel lateral shift (bilinear);
//   * WavelengthDetune    — source-wavelength error: the printed relief is
//                           fixed, the realized phase rescales by
//                           lambda0/lambda' (via MaterialSpec);
//   * CrosstalkJitter     — device-to-device spread of the interpixel
//                           crosstalk strength around its nominal value.
//
// Determinism contract: apply() draws only from the passed Rng, in a fixed
// order, so a realization is a pure function of (device, seed) — the Monte-
// Carlo evaluator relies on this for thread-count-independent results and
// for common random numbers across model variants.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "donn/crosstalk.hpp"
#include "donn/model.hpp"
#include "optics/fabrication.hpp"
#include "tensor/matrix.hpp"

namespace odonn::fab {

/// One virtual device about to be "fabricated": the phase masks that will be
/// printed plus the crosstalk model they will be deployed under.
struct FabricatedDevice {
  std::vector<MatrixD> phases;
  donn::CrosstalkOptions crosstalk;
};

class PerturbationModel {
 public:
  virtual ~PerturbationModel() = default;

  /// Short identifier used in specs, logs and JSON ("roughness", ...).
  virtual std::string name() const = 0;

  /// Human-readable parameterization, e.g. "roughness(sigma_um=0.05,corr=2)".
  virtual std::string describe() const = 0;

  /// Applies one realization of the imperfection, drawing only from `rng`.
  virtual void apply(FabricatedDevice& device, Rng& rng) const = 0;
};

using PerturbationStack = std::vector<std::unique_ptr<PerturbationModel>>;

/// Applies every model in order (the order is part of the physical story:
/// surface error, then printing quantization, then assembly misalignment,
/// then source detuning, then crosstalk spread).
void apply_stack(const PerturbationStack& stack, FabricatedDevice& device,
                 Rng& rng);

/// "model+model+..." description of a stack (round-trips through
/// fab::parse_perturbation_stack).
std::string describe_stack(const PerturbationStack& stack);

/// Counter-based per-realization seed: a pure function of (base, r), so
/// realization streams are independent of thread count and of each other.
std::uint64_t realization_seed(std::uint64_t base, std::uint64_t realization);

/// The per-realization RNG stream shared by the Monte-Carlo evaluator and
/// the robust trainer. Plain mode: realization r draws from
/// realization_seed(base, r). Antithetic mode: realizations are consumed
/// as mirrored PAIRS — 2m and 2m+1 share realization_seed(base, m), with
/// the odd member's normal draws sign-flipped (Rng::set_antithetic), so a
/// pair brackets the same draw and the pair mean cancels the response's
/// linear term (variance reduction; a ROADMAP follow-up of PR 3).
Rng realization_rng(std::uint64_t base, std::uint64_t realization,
                    bool antithetic);

/// One fabricated deployment of `model`: applies `stack` to its phase
/// masks (drawing from `rng`) under `crosstalk` and, when requested,
/// deploys the perturbed masks through the interpixel-crosstalk emulation.
/// The returned model has its sparsity masks cleared (perturbed surfaces
/// are dense reliefs). Shared by MonteCarloEvaluator and train::Trainer's
/// robust mode so both walk the identical deployment path.
donn::DonnModel realize_device(const donn::DonnModel& model,
                               const PerturbationStack& stack,
                               const donn::CrosstalkOptions& crosstalk,
                               bool deploy_crosstalk, Rng& rng);

/// Correlated Gaussian random field: white standard normals blurred with a
/// separable Gaussian kernel and renormalized to EXACT unit sample RMS.
/// `correlation_px` is the e^-1 lag of the field's normalized
/// autocorrelation (blur kernel sigma = correlation_px / 2, since the
/// autocorrelation of blurred white noise is the kernel's self-convolution).
/// correlation_px == 0 yields unit-RMS white noise.
MatrixD gaussian_random_field(std::size_t rows, std::size_t cols,
                              double correlation_px, Rng& rng);

// ------------------------------------------------------ concrete models

struct SurfaceRoughnessOptions {
  double sigma_um = 0.05;       ///< RMS height error of the print [um]
  double correlation_px = 2.0;  ///< lateral correlation length [pixels]
  long layer = -1;              ///< restrict to this mask index (-1 = all),
                                ///< for per-layer severity in multi-layer
                                ///< stacks; draws occur only for the
                                ///< targeted layer
  optics::MaterialSpec material = {};
};

/// Correlated surface-roughness field: phase -> thickness (unwrapped relief,
/// preserving the 2*pi optimizer's zones), add sigma_um * GRF, -> phase.
class SurfaceRoughness final : public PerturbationModel {
 public:
  explicit SurfaceRoughness(const SurfaceRoughnessOptions& options);
  std::string name() const override { return "roughness"; }
  std::string describe() const override;
  void apply(FabricatedDevice& device, Rng& rng) const override;
  const SurfaceRoughnessOptions& options() const { return options_; }

 private:
  SurfaceRoughnessOptions options_;
};

struct QuantizeLevelsOptions {
  std::size_t levels = 16;  ///< printable height levels over one 2*pi zone
  long layer = -1;          ///< restrict to this mask index (-1 = all)
};

/// Height quantization to N print levels (deterministic: draws nothing).
class QuantizeLevels final : public PerturbationModel {
 public:
  explicit QuantizeLevels(const QuantizeLevelsOptions& options);
  std::string name() const override { return "quantize"; }
  std::string describe() const override;
  void apply(FabricatedDevice& device, Rng& rng) const override;
  const QuantizeLevelsOptions& options() const { return options_; }

 private:
  QuantizeLevelsOptions options_;
};

struct MisalignmentOptions {
  double sigma_px = 0.25;  ///< per-axis shift stddev [pixels], sub-pixel
};

/// Per-layer lateral misalignment: each mask is shifted by an independent
/// (dx, dy) ~ N(0, sigma_px^2) with bilinear resampling (zero fill at the
/// aperture edge — the mount, not the mask).
class LateralMisalignment final : public PerturbationModel {
 public:
  explicit LateralMisalignment(const MisalignmentOptions& options);
  std::string name() const override { return "misalign"; }
  std::string describe() const override;
  void apply(FabricatedDevice& device, Rng& rng) const override;
  const MisalignmentOptions& options() const { return options_; }

 private:
  MisalignmentOptions options_;
};

struct WavelengthDetuneOptions {
  double sigma_rel = 0.002;  ///< relative wavelength error stddev
  optics::MaterialSpec material = {};
};

/// Source-wavelength detuning: one draw per device (all layers share the
/// laser). The printed relief is fixed; the realized phase is
/// thickness * 2*pi*(n-1)/lambda', i.e. the ideal phase scaled by
/// lambda0/lambda'.
class WavelengthDetune final : public PerturbationModel {
 public:
  explicit WavelengthDetune(const WavelengthDetuneOptions& options);
  std::string name() const override { return "detune"; }
  std::string describe() const override;
  void apply(FabricatedDevice& device, Rng& rng) const override;
  const WavelengthDetuneOptions& options() const { return options_; }

 private:
  WavelengthDetuneOptions options_;
};

struct CrosstalkJitterOptions {
  double sigma = 0.1;  ///< additive stddev on CrosstalkOptions::strength
};

/// Device-to-device crosstalk-strength spread: strength' = clamp(strength +
/// N(0, sigma^2), 0, 1). One draw per device.
class CrosstalkJitter final : public PerturbationModel {
 public:
  explicit CrosstalkJitter(const CrosstalkJitterOptions& options);
  std::string name() const override { return "ctjitter"; }
  std::string describe() const override;
  void apply(FabricatedDevice& device, Rng& rng) const override;
  const CrosstalkJitterOptions& options() const { return options_; }

 private:
  CrosstalkJitterOptions options_;
};

}  // namespace odonn::fab

#include "fab/perturbation.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"
#include "data/transform.hpp"
#include "donn/discrete.hpp"

namespace odonn::fab {

namespace {

std::string format_double(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

}  // namespace

void apply_stack(const PerturbationStack& stack, FabricatedDevice& device,
                 Rng& rng) {
  for (const auto& model : stack) model->apply(device, rng);
}

std::string describe_stack(const PerturbationStack& stack) {
  std::string out;
  for (const auto& model : stack) {
    if (!out.empty()) out += "+";
    out += model->describe();
  }
  return out;
}

std::uint64_t realization_seed(std::uint64_t base, std::uint64_t realization) {
  // SplitMix64 over (base ^ golden-ratio-spread counter): independent of
  // thread assignment, collision-free over realization indices.
  SplitMix64 mixer(base ^ (0x9e3779b97f4a7c15ULL * (realization + 1)));
  return mixer.next();
}

Rng realization_rng(std::uint64_t base, std::uint64_t realization,
                    bool antithetic) {
  if (!antithetic) return Rng(realization_seed(base, realization));
  Rng rng(realization_seed(base, realization / 2));
  rng.set_antithetic(realization % 2 == 1);
  return rng;
}

donn::DonnModel realize_device(const donn::DonnModel& model,
                               const PerturbationStack& stack,
                               const donn::CrosstalkOptions& crosstalk,
                               bool deploy_crosstalk, Rng& rng) {
  FabricatedDevice device{model.phases(), crosstalk};
  apply_stack(stack, device, rng);
  if (deploy_crosstalk) {
    for (auto& phase : device.phases) {
      phase = donn::apply_crosstalk(phase, device.crosstalk);
    }
  }
  donn::DonnModel realized = model;
  realized.clear_masks();  // perturbed surfaces are dense reliefs
  realized.set_phases(std::move(device.phases));
  return realized;
}

MatrixD gaussian_random_field(std::size_t rows, std::size_t cols,
                              double correlation_px, Rng& rng) {
  ODONN_CHECK(rows > 0 && cols > 0, "gaussian_random_field: empty shape");
  ODONN_CHECK(correlation_px >= 0.0,
              "gaussian_random_field: correlation length must be >= 0");
  MatrixD field(rows, cols);
  for (auto& v : field) v = rng.normal();

  if (correlation_px > 0.0) {
    // The autocorrelation of white noise blurred with a Gaussian of stddev
    // s is that kernel's self-convolution — a Gaussian of stddev s*sqrt(2):
    // rho(d) = exp(-d^2 / (4 s^2)). Choosing s = L/2 puts the e^-1 lag of
    // rho exactly at d = L, which is this module's definition of the
    // correlation length.
    const double sigma = correlation_px / 2.0;
    const long radius = std::max<long>(1, static_cast<long>(
                                              std::ceil(3.0 * sigma)));
    std::vector<double> kernel(static_cast<std::size_t>(2 * radius + 1));
    for (long k = -radius; k <= radius; ++k) {
      kernel[static_cast<std::size_t>(k + radius)] =
          std::exp(-0.5 * static_cast<double>(k * k) / (sigma * sigma));
    }
    // Separable zero-padded convolution: rows, then columns.
    MatrixD tmp(rows, cols, 0.0);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        double acc = 0.0;
        for (long k = -radius; k <= radius; ++k) {
          const long cc = static_cast<long>(c) + k;
          if (cc < 0 || cc >= static_cast<long>(cols)) continue;
          acc += kernel[static_cast<std::size_t>(k + radius)] *
                 field(r, static_cast<std::size_t>(cc));
        }
        tmp(r, c) = acc;
      }
    }
    for (std::size_t c = 0; c < cols; ++c) {
      for (std::size_t r = 0; r < rows; ++r) {
        double acc = 0.0;
        for (long k = -radius; k <= radius; ++k) {
          const long rr = static_cast<long>(r) + k;
          if (rr < 0 || rr >= static_cast<long>(rows)) continue;
          acc += kernel[static_cast<std::size_t>(k + radius)] *
                 tmp(static_cast<std::size_t>(rr), c);
        }
        field(r, c) = acc;
      }
    }
  }

  // Exact unit sample RMS, so callers control the output RMS precisely.
  double sum_sq = 0.0;
  for (const auto& v : field) sum_sq += v * v;
  const double rms = std::sqrt(sum_sq / static_cast<double>(field.size()));
  ODONN_CHECK(rms > 0.0, "gaussian_random_field: degenerate field");
  field *= 1.0 / rms;
  return field;
}

// ------------------------------------------------------ SurfaceRoughness

SurfaceRoughness::SurfaceRoughness(const SurfaceRoughnessOptions& options)
    : options_(options) {
  ODONN_CHECK(options_.sigma_um >= 0.0,
              "roughness perturbation: sigma_um must be >= 0");
  ODONN_CHECK(options_.correlation_px >= 0.0,
              "roughness perturbation: correlation must be >= 0");
}

std::string SurfaceRoughness::describe() const {
  std::string out = "roughness(sigma_um=" + format_double(options_.sigma_um) +
                    ",corr=" + format_double(options_.correlation_px);
  if (options_.layer >= 0) {
    out += ",layer=" + std::to_string(options_.layer);
  }
  return out + ")";
}

void SurfaceRoughness::apply(FabricatedDevice& device, Rng& rng) const {
  const double sigma_m = options_.sigma_um * 1e-6;
  ODONN_CHECK(options_.layer < 0 ||
                  static_cast<std::size_t>(options_.layer) <
                      device.phases.size(),
              "roughness perturbation: layer index out of range");
  for (std::size_t l = 0; l < device.phases.size(); ++l) {
    if (options_.layer >= 0 && static_cast<std::size_t>(options_.layer) != l) {
      continue;  // untargeted layers draw nothing (spec defines the stream)
    }
    MatrixD& phase = device.phases[l];
    // Height error lives on the printed relief: convert the (unwrapped,
    // zone-preserving) thickness map, add the correlated field, convert
    // back. The conversions are linear, so the injected phase RMS is
    // exactly 2*pi * sigma / zone_height.
    MatrixD thickness =
        optics::phase_to_thickness(phase, options_.material, /*wrap=*/false);
    const MatrixD field = gaussian_random_field(
        phase.rows(), phase.cols(), options_.correlation_px, rng);
    for (std::size_t i = 0; i < thickness.size(); ++i) {
      thickness[i] += sigma_m * field[i];
    }
    phase = optics::thickness_to_phase(thickness, options_.material);
  }
}

// -------------------------------------------------------- QuantizeLevels

QuantizeLevels::QuantizeLevels(const QuantizeLevelsOptions& options)
    : options_(options) {
  ODONN_CHECK(options_.levels >= 2,
              "quantize perturbation: need at least 2 levels");
}

std::string QuantizeLevels::describe() const {
  std::string out = "quantize(levels=" + std::to_string(options_.levels);
  if (options_.layer >= 0) {
    out += ",layer=" + std::to_string(options_.layer);
  }
  return out + ")";
}

void QuantizeLevels::apply(FabricatedDevice& device, Rng& /*rng*/) const {
  // The printer quantizes ABSOLUTE height in steps of zone_height/levels
  // (equivalently phase in steps of 2*pi/levels) — full 2*pi zones are an
  // exact number of steps, so the 2*pi optimizer's multi-zone relief is
  // preserved rather than wrapped away (donn::quantize_phase's kinoform
  // wrap would collapse smoothed and unsmoothed masks to the same levels).
  ODONN_CHECK(options_.layer < 0 ||
                  static_cast<std::size_t>(options_.layer) <
                      device.phases.size(),
              "quantize perturbation: layer index out of range");
  const double step = 2.0 * M_PI / static_cast<double>(options_.levels);
  for (std::size_t l = 0; l < device.phases.size(); ++l) {
    if (options_.layer >= 0 && static_cast<std::size_t>(options_.layer) != l) {
      continue;
    }
    device.phases[l].transform([step](double v) {
      return static_cast<double>(std::lround(v / step)) * step;
    });
  }
}

// --------------------------------------------------- LateralMisalignment

LateralMisalignment::LateralMisalignment(const MisalignmentOptions& options)
    : options_(options) {
  ODONN_CHECK(options_.sigma_px >= 0.0,
              "misalign perturbation: sigma_px must be >= 0");
}

std::string LateralMisalignment::describe() const {
  return "misalign(sigma_px=" + format_double(options_.sigma_px) + ")";
}

void LateralMisalignment::apply(FabricatedDevice& device, Rng& rng) const {
  for (auto& phase : device.phases) {
    // Fixed draw order (dx then dy per layer) keeps realizations a pure
    // function of the seed even when sigma_px == 0.
    const double dx = rng.normal(0.0, options_.sigma_px);
    const double dy = rng.normal(0.0, options_.sigma_px);
    if (dx == 0.0 && dy == 0.0) continue;
    phase = data::affine_warp(phase, /*angle=*/0.0, /*scale=*/1.0, dx, dy);
  }
}

// ----------------------------------------------------- WavelengthDetune

WavelengthDetune::WavelengthDetune(const WavelengthDetuneOptions& options)
    : options_(options) {
  ODONN_CHECK(options_.sigma_rel >= 0.0,
              "detune perturbation: sigma_rel must be >= 0");
}

std::string WavelengthDetune::describe() const {
  return "detune(sigma_rel=" + format_double(options_.sigma_rel) + ")";
}

void WavelengthDetune::apply(FabricatedDevice& device, Rng& rng) const {
  // One laser per device: a single draw detunes every layer coherently.
  const double delta =
      std::clamp(rng.normal(0.0, options_.sigma_rel), -0.5, 0.5);
  if (delta == 0.0) return;
  optics::MaterialSpec detuned = options_.material;
  detuned.wavelength = options_.material.wavelength * (1.0 + delta);
  for (auto& phase : device.phases) {
    const MatrixD thickness =
        optics::phase_to_thickness(phase, options_.material, /*wrap=*/false);
    phase = optics::thickness_to_phase(thickness, detuned);
  }
}

// ------------------------------------------------------ CrosstalkJitter

CrosstalkJitter::CrosstalkJitter(const CrosstalkJitterOptions& options)
    : options_(options) {
  ODONN_CHECK(options_.sigma >= 0.0,
              "ctjitter perturbation: sigma must be >= 0");
}

std::string CrosstalkJitter::describe() const {
  return "ctjitter(sigma=" + format_double(options_.sigma) + ")";
}

void CrosstalkJitter::apply(FabricatedDevice& device, Rng& rng) const {
  device.crosstalk.strength = std::clamp(
      device.crosstalk.strength + rng.normal(0.0, options_.sigma), 0.0, 1.0);
}

}  // namespace odonn::fab

#include "fab/spec.hpp"

#include <cmath>
#include <cstdlib>
#include <map>
#include <utility>

#include "common/config.hpp"
#include "common/error.hpp"

namespace odonn::fab {

const char* const kDefaultPerturbationSpec =
    "roughness(sigma_um=0.05,corr=2)+quantize(levels=16)+misalign("
    "sigma_px=0.25)";

namespace {

using Args = std::map<std::string, double>;

double parse_number(const std::string& token, const std::string& context) {
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0') {
    throw ConfigError("perturbation spec: cannot parse '" + token +
                      "' as a number in " + context);
  }
  return value;
}

/// Splits "name(k=v,k=v)" into the name and a parsed argument map.
std::pair<std::string, Args> parse_model_token(const std::string& token) {
  const auto paren = token.find('(');
  std::string name = token.substr(0, paren);
  if (name.empty()) {
    throw ConfigError("perturbation spec: empty model name in '" + token +
                      "'");
  }
  Args args;
  if (paren != std::string::npos) {
    if (token.back() != ')') {
      throw ConfigError("perturbation spec: missing ')' in '" + token + "'");
    }
    const std::string body =
        token.substr(paren + 1, token.size() - paren - 2);
    if (!body.empty()) {
      for (const std::string& arg : split_csv(body)) {
        const auto eq = arg.find('=');
        if (eq == std::string::npos || eq == 0) {
          throw ConfigError("perturbation spec: expected key=value, got '" +
                            arg + "' in '" + token + "'");
        }
        args[arg.substr(0, eq)] =
            parse_number(arg.substr(eq + 1), "'" + token + "'");
      }
    }
  }
  return {std::move(name), std::move(args)};
}

/// Takes (and erases) one argument, so leftovers can be rejected.
double take(Args& args, const std::string& key, double dflt) {
  const auto it = args.find(key);
  if (it == args.end()) return dflt;
  const double value = it->second;
  args.erase(it);
  return value;
}

void reject_leftovers(const Args& args, const std::string& name) {
  if (args.empty()) return;
  throw ConfigError("perturbation spec: unknown argument '" +
                    args.begin()->first + "' for model '" + name + "'");
}

/// Optional per-layer restriction: layer=-1 (default) hits every mask,
/// layer=K only mask K of a multi-layer stack.
long take_layer(Args& args, const std::string& name) {
  const double layer = take(args, "layer", -1.0);
  if (!(layer >= -1.0 && layer <= 64.0 && layer == std::floor(layer))) {
    throw ConfigError("perturbation spec: " + name +
                      " layer must be an integer in [-1, 64]");
  }
  return static_cast<long>(layer);
}

std::unique_ptr<PerturbationModel> build_model(const std::string& name,
                                               Args args) {
  if (name == "roughness") {
    SurfaceRoughnessOptions options;
    options.sigma_um = take(args, "sigma_um", options.sigma_um);
    options.correlation_px = take(args, "corr", options.correlation_px);
    options.layer = take_layer(args, name);
    reject_leftovers(args, name);
    return std::make_unique<SurfaceRoughness>(options);
  }
  if (name == "quantize") {
    QuantizeLevelsOptions options;
    const double levels =
        take(args, "levels", static_cast<double>(options.levels));
    // Validate in double space: a negative or huge value cast to size_t is
    // undefined behavior, not a level count.
    if (!(levels >= 2.0 && levels <= 65536.0 &&
          levels == std::floor(levels))) {
      throw ConfigError(
          "perturbation spec: quantize levels must be an integer in "
          "[2, 65536]");
    }
    options.levels = static_cast<std::size_t>(levels);
    options.layer = take_layer(args, name);
    reject_leftovers(args, name);
    return std::make_unique<QuantizeLevels>(options);
  }
  if (name == "misalign") {
    MisalignmentOptions options;
    options.sigma_px = take(args, "sigma_px", options.sigma_px);
    reject_leftovers(args, name);
    return std::make_unique<LateralMisalignment>(options);
  }
  if (name == "detune") {
    WavelengthDetuneOptions options;
    options.sigma_rel = take(args, "sigma_rel", options.sigma_rel);
    reject_leftovers(args, name);
    return std::make_unique<WavelengthDetune>(options);
  }
  if (name == "ctjitter") {
    CrosstalkJitterOptions options;
    options.sigma = take(args, "sigma", options.sigma);
    reject_leftovers(args, name);
    return std::make_unique<CrosstalkJitter>(options);
  }
  throw ConfigError("perturbation spec: unknown model '" + name +
                    "' (expected roughness, quantize, misalign, detune or "
                    "ctjitter)");
}

}  // namespace

PerturbationStack parse_perturbation_stack(const std::string& spec) {
  // Split on '+' at parenthesis depth 0 only: strtod numbers like "1e+3"
  // or "+0.5" are legal inside an argument list.
  std::vector<std::string> tokens;
  std::string current;
  int depth = 0;
  for (const char c : spec) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == '+' && depth == 0) {
      tokens.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  tokens.push_back(current);

  PerturbationStack stack;
  for (const std::string& token : tokens) {
    if (token.empty()) {
      throw ConfigError("perturbation spec: empty model entry in '" + spec +
                        "'");
    }
    auto [name, args] = parse_model_token(token);
    stack.push_back(build_model(name, std::move(args)));
  }
  return stack;
}

}  // namespace odonn::fab

#include "fab/montecarlo.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "obs/obs.hpp"
#include "serve/batched_forward.hpp"
#include "tensor/stats.hpp"

namespace odonn::fab {

namespace {

double accuracy_of(const std::vector<std::size_t>& predictions,
                   const data::Dataset& eval) {
  std::size_t correct = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    correct += predictions[i] == eval.label(i) ? 1 : 0;
  }
  return static_cast<double>(correct) /
         static_cast<double>(predictions.size());
}

/// Batched accuracy of `model` (by value: the caller hands over the
/// perturbed copy) via the plan-cached serve path.
double batched_accuracy(donn::DonnModel model,
                        const std::vector<optics::Field>& inputs,
                        const data::Dataset& eval) {
  const auto published =
      std::make_shared<const donn::DonnModel>(std::move(model));
  const serve::BatchedForward forward(published);
  return accuracy_of(forward.predict(inputs), eval);
}

}  // namespace

std::uint64_t RobustnessReport::digest() const {
  // The shared FNV-1a-over-double-bits fold (tensor/stats): any single-bit
  // difference in any realization's accuracy changes the digest.
  std::uint64_t hash = kFnv1aBasis;
  hash = fnv1a_mix(hash, clean_accuracy);
  for (const double acc : accuracies) hash = fnv1a_mix(hash, acc);
  return hash;
}

double yield_at(const RobustnessReport& report, double threshold) {
  if (report.accuracies.empty()) return 0.0;
  std::size_t pass = 0;
  for (const double acc : report.accuracies) pass += acc >= threshold ? 1 : 0;
  return static_cast<double>(pass) /
         static_cast<double>(report.accuracies.size());
}

double percentile(const RobustnessReport& report, double q) {
  if (report.accuracies.empty()) return 0.0;
  // The repo-wide nearest-rank rule (tensor/stats) — shared with serve's
  // latency percentiles, boundary-exact at integral q*R.
  return percentile_nearest_rank(report.accuracies, q);
}

MonteCarloEvaluator::MonteCarloEvaluator(const data::Dataset& eval_set,
                                         const MonteCarloOptions& options)
    : eval_(eval_set), options_(options) {
  ODONN_CHECK(options_.realizations > 0,
              "monte carlo: need at least one realization");
  ODONN_CHECK(!eval_.empty(), "monte carlo: eval set is empty");
}

std::shared_ptr<const std::vector<optics::Field>>
MonteCarloEvaluator::encoded_inputs(const optics::GridSpec& grid) const {
  // Encode the eval set once and cache it: every realization of every
  // variant shares the same input fields. The cache is replaced (never
  // mutated in place) under the mutex, so concurrent evaluate() calls are
  // safe: each caller keeps its own shared_ptr snapshot for the whole run.
  MutexLock lock(cache_mutex_);
  if (inputs_ == nullptr || !(inputs_grid_ == grid)) {
    auto encoded = std::make_shared<std::vector<optics::Field>>();
    encoded->reserve(eval_.size());
    for (std::size_t i = 0; i < eval_.size(); ++i) {
      encoded->push_back(
          optics::encode_image(eval_.image(i), grid, options_.encode));
    }
    inputs_ = std::move(encoded);
    inputs_grid_ = grid;
  }
  return inputs_;
}

RobustnessReport MonteCarloEvaluator::evaluate(
    const std::string& name, const donn::DonnModel& model,
    const PerturbationStack& stack) const {
  ODONN_OBS_SPAN(eval_span, "fab.evaluate:" + name);
  const optics::GridSpec grid = model.config().grid;
  ODONN_CHECK(eval_.image(0).rows() == grid.n &&
                  eval_.image(0).cols() == grid.n,
              "monte carlo: eval images must match the model grid (use "
              "data::resize_dataset)");

  const std::shared_ptr<const std::vector<optics::Field>> snapshot =
      encoded_inputs(grid);
  const std::vector<optics::Field>& inputs = *snapshot;

  RobustnessReport report;
  report.model_name = name;
  report.realizations = options_.realizations;
  report.yield_threshold = options_.yield_threshold;
  report.clean_accuracy = batched_accuracy(model, inputs, eval_);

  report.accuracies.assign(options_.realizations, 0.0);
  // Parallel across realizations; the nested batched forward runs inline on
  // each worker (common/parallel runs nested loops on the caller thread).
  // Each slot is written exactly once at its realization index, so the
  // report is bitwise independent of thread count and scheduling.
  parallel_for(0, options_.realizations, [&](std::size_t r) {
    const auto realization_start = std::chrono::steady_clock::now();
    Rng rng = realization_rng(options_.seed, r, options_.antithetic);
    donn::DonnModel realized = realize_device(
        model, stack, options_.crosstalk, options_.deploy_crosstalk, rng);
    report.accuracies[r] = batched_accuracy(std::move(realized), inputs, eval_);
    ODONN_OBS_COUNT("fab.realizations", 1);
    ODONN_OBS_HIST("fab.realization_ms",
                   std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - realization_start)
                       .count());
  });

  double sum = 0.0;
  report.min = report.accuracies.front();
  report.max = report.accuracies.front();
  for (const double acc : report.accuracies) {
    sum += acc;
    report.min = std::min(report.min, acc);
    report.max = std::max(report.max, acc);
  }
  report.mean = sum / static_cast<double>(report.accuracies.size());
  double var = 0.0;
  for (const double acc : report.accuracies) {
    var += (acc - report.mean) * (acc - report.mean);
  }
  report.stddev =
      std::sqrt(var / static_cast<double>(report.accuracies.size()));
  report.p5 = percentile(report, 0.05);
  report.p50 = percentile(report, 0.50);
  report.p95 = percentile(report, 0.95);
  report.yield = yield_at(report, options_.yield_threshold);
  return report;
}

std::vector<RobustnessReport> MonteCarloEvaluator::compare(
    const std::vector<std::pair<std::string, const donn::DonnModel*>>&
        variants,
    const PerturbationStack& stack) const {
  std::vector<RobustnessReport> reports;
  reports.reserve(variants.size());
  for (const auto& [name, model] : variants) {
    ODONN_CHECK(model != nullptr, "monte carlo: null model variant");
    // Realization seeds depend only on (options.seed, r): every variant
    // sees the same perturbation draws — common random numbers.
    reports.push_back(evaluate(name, *model, stack));
  }
  return reports;
}

}  // namespace odonn::fab

#include "fab/montecarlo.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "serve/batched_forward.hpp"

namespace odonn::fab {

namespace {

double accuracy_of(const std::vector<std::size_t>& predictions,
                   const data::Dataset& eval) {
  std::size_t correct = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    correct += predictions[i] == eval.label(i) ? 1 : 0;
  }
  return static_cast<double>(correct) /
         static_cast<double>(predictions.size());
}

/// Batched accuracy of `model` (by value: the caller hands over the
/// perturbed copy) via the plan-cached serve path.
double batched_accuracy(donn::DonnModel model,
                        const std::vector<optics::Field>& inputs,
                        const data::Dataset& eval) {
  const auto published =
      std::make_shared<const donn::DonnModel>(std::move(model));
  const serve::BatchedForward forward(published);
  return accuracy_of(forward.predict(inputs), eval);
}

}  // namespace

std::uint64_t RobustnessReport::digest() const {
  // FNV-1a over the IEEE-754 bit patterns: any single-bit difference in any
  // realization's accuracy changes the digest.
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  const auto mix = [&hash](double value) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    for (int shift = 0; shift < 64; shift += 8) {
      hash ^= (bits >> shift) & 0xffULL;
      hash *= 0x100000001b3ULL;
    }
  };
  mix(clean_accuracy);
  for (const double acc : accuracies) mix(acc);
  return hash;
}

double yield_at(const RobustnessReport& report, double threshold) {
  if (report.accuracies.empty()) return 0.0;
  std::size_t pass = 0;
  for (const double acc : report.accuracies) pass += acc >= threshold ? 1 : 0;
  return static_cast<double>(pass) /
         static_cast<double>(report.accuracies.size());
}

double percentile(const RobustnessReport& report, double q) {
  if (report.accuracies.empty()) return 0.0;
  std::vector<double> sorted = report.accuracies;
  std::sort(sorted.begin(), sorted.end());
  std::size_t rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size()) + 0.999999);
  rank = std::max<std::size_t>(1, std::min(rank, sorted.size()));
  return sorted[rank - 1];
}

std::uint64_t realization_seed(std::uint64_t base, std::uint64_t realization) {
  // SplitMix64 over (base ^ golden-ratio-spread counter): independent of
  // thread assignment, collision-free over realization indices.
  SplitMix64 mixer(base ^ (0x9e3779b97f4a7c15ULL * (realization + 1)));
  return mixer.next();
}

MonteCarloEvaluator::MonteCarloEvaluator(const data::Dataset& eval_set,
                                         const MonteCarloOptions& options)
    : eval_(eval_set), options_(options) {
  ODONN_CHECK(options_.realizations > 0,
              "monte carlo: need at least one realization");
  ODONN_CHECK(!eval_.empty(), "monte carlo: eval set is empty");
}

RobustnessReport MonteCarloEvaluator::evaluate(
    const std::string& name, const donn::DonnModel& model,
    const PerturbationStack& stack) const {
  const optics::GridSpec grid = model.config().grid;
  ODONN_CHECK(eval_.image(0).rows() == grid.n &&
                  eval_.image(0).cols() == grid.n,
              "monte carlo: eval images must match the model grid (use "
              "data::resize_dataset)");

  // Encode the eval set once and cache it: every realization of every
  // variant shares the same input fields.
  if (inputs_.empty() || !(inputs_grid_ == grid)) {
    inputs_.clear();
    inputs_.reserve(eval_.size());
    for (std::size_t i = 0; i < eval_.size(); ++i) {
      inputs_.push_back(
          optics::encode_image(eval_.image(i), grid, options_.encode));
    }
    inputs_grid_ = grid;
  }
  const std::vector<optics::Field>& inputs = inputs_;

  RobustnessReport report;
  report.model_name = name;
  report.realizations = options_.realizations;
  report.yield_threshold = options_.yield_threshold;
  report.clean_accuracy = batched_accuracy(model, inputs, eval_);

  report.accuracies.assign(options_.realizations, 0.0);
  // Parallel across realizations; the nested batched forward runs inline on
  // each worker (common/parallel runs nested loops on the caller thread).
  // Each slot is written exactly once at its realization index, so the
  // report is bitwise independent of thread count and scheduling.
  parallel_for(0, options_.realizations, [&](std::size_t r) {
    Rng rng(realization_seed(options_.seed, r));
    FabricatedDevice device{model.phases(), options_.crosstalk};
    apply_stack(stack, device, rng);
    if (options_.deploy_crosstalk) {
      for (auto& phase : device.phases) {
        phase = donn::apply_crosstalk(phase, device.crosstalk);
      }
    }
    donn::DonnModel realized = model;
    realized.clear_masks();  // perturbed surfaces are dense reliefs
    realized.set_phases(std::move(device.phases));
    report.accuracies[r] = batched_accuracy(std::move(realized), inputs, eval_);
  });

  double sum = 0.0;
  report.min = report.accuracies.front();
  report.max = report.accuracies.front();
  for (const double acc : report.accuracies) {
    sum += acc;
    report.min = std::min(report.min, acc);
    report.max = std::max(report.max, acc);
  }
  report.mean = sum / static_cast<double>(report.accuracies.size());
  double var = 0.0;
  for (const double acc : report.accuracies) {
    var += (acc - report.mean) * (acc - report.mean);
  }
  report.stddev =
      std::sqrt(var / static_cast<double>(report.accuracies.size()));
  report.p5 = percentile(report, 0.05);
  report.p50 = percentile(report, 0.50);
  report.p95 = percentile(report, 0.95);
  report.yield = yield_at(report, options_.yield_threshold);
  return report;
}

std::vector<RobustnessReport> MonteCarloEvaluator::compare(
    const std::vector<std::pair<std::string, const donn::DonnModel*>>&
        variants,
    const PerturbationStack& stack) const {
  std::vector<RobustnessReport> reports;
  reports.reserve(variants.size());
  for (const auto& [name, model] : variants) {
    ODONN_CHECK(model != nullptr, "monte carlo: null model variant");
    // Realization seeds depend only on (options.seed, r): every variant
    // sees the same perturbation draws — common random numbers.
    reports.push_back(evaluate(name, *model, stack));
  }
  return reports;
}

}  // namespace odonn::fab

// Parallel Monte-Carlo robustness evaluation over fabrication variability.
//
// The MonteCarloEvaluator fans R device realizations across the shared
// thread pool: realization r perturbs the model's phase masks with a
// PerturbationStack seeded from a counter-based stream (pure function of
// (base seed, r) — results are bitwise independent of ODONN_THREADS and of
// scheduling), optionally deploys the perturbed masks through the
// interpixel-crosstalk emulation, and measures test accuracy with the
// plan-cached batched forward path from src/serve. The per-realization
// accuracies aggregate into a RobustnessReport: mean/std/min/max,
// percentiles, and yield (the fraction of fabricated devices that clear an
// accuracy spec) — the question "what accuracy distribution do I get across
// many fabricated devices?" that a single deterministic deployment point
// cannot answer.
//
// Common random numbers: realization seeds depend only on (seed, r), never
// on the model, so evaluate()-ing two model variants (e.g. baseline vs
// 2*pi-smoothed) subjects them to IDENTICAL perturbation draws; compare()
// packages that A/B.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.hpp"
#include "data/dataset.hpp"
#include "donn/model.hpp"
#include "fab/perturbation.hpp"
#include "optics/encode.hpp"
#include "optics/grid.hpp"

namespace odonn::fab {

struct MonteCarloOptions {
  std::size_t realizations = 32;
  std::uint64_t seed = 7;
  /// Antithetic realization pairs (fab::realization_rng): realizations
  /// (2m, 2m+1) share one seed with mirrored Gaussian draws, lowering the
  /// variance of the mean-accuracy estimator at equal R. Works best with
  /// an even R so every pair is complete.
  bool antithetic = false;
  /// Accuracy a fabricated device must reach to count toward yield.
  double yield_threshold = 0.5;
  /// Deploy each realization through the interpixel-crosstalk emulation
  /// (the nominal options below, possibly jittered by the stack).
  bool deploy_crosstalk = true;
  donn::CrosstalkOptions crosstalk = {};
  optics::EncodeOptions encode = {};
};

struct RobustnessReport {
  std::string model_name;
  std::size_t realizations = 0;
  double clean_accuracy = 0.0;  ///< unperturbed, crosstalk-free reference
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p5 = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double yield = 0.0;  ///< fraction of realizations >= yield_threshold
  double yield_threshold = 0.5;
  /// Per-realization accuracies, indexed by realization id (fixed order).
  std::vector<double> accuracies;

  /// FNV-1a hash over the exact bit patterns of clean_accuracy and every
  /// per-realization accuracy: two reports are bitwise identical iff their
  /// digests match (scripts/check.sh compares this across ODONN_THREADS).
  std::uint64_t digest() const;
};

/// Yield of an existing report at a different accuracy spec (reports keep
/// the per-realization accuracies, so yield curves need no re-simulation).
double yield_at(const RobustnessReport& report, double threshold);

/// Nearest-rank percentile of the report's accuracy distribution (the
/// repo-wide odonn::nearest_rank rule from tensor/stats).
double percentile(const RobustnessReport& report, double q);

class MonteCarloEvaluator {
 public:
  /// `eval_set` images must already match the model grid (the trainer's
  /// convention; use data::resize_dataset). The dataset must outlive the
  /// evaluator.
  MonteCarloEvaluator(const data::Dataset& eval_set,
                      const MonteCarloOptions& options);

  const MonteCarloOptions& options() const { return options_; }

  /// Runs R realizations of `stack` against `model` (parallel across
  /// realizations; each realization reuses the batched plan-cached forward
  /// path across the whole eval set).
  RobustnessReport evaluate(const std::string& name,
                            const donn::DonnModel& model,
                            const PerturbationStack& stack) const;

  /// Evaluates several variants under common random numbers (identical
  /// perturbation draws per realization index) — the fair yield A/B.
  std::vector<RobustnessReport> compare(
      const std::vector<std::pair<std::string, const donn::DonnModel*>>&
          variants,
      const PerturbationStack& stack) const;

 private:
  /// Encoded eval fields for the grid they were built against. Shared
  /// immutable snapshot: evaluate() holds its own reference for the whole
  /// run, so a concurrent rebuild for a different grid can never mutate a
  /// vector another call is still reading.
  std::shared_ptr<const std::vector<optics::Field>> encoded_inputs(
      const optics::GridSpec& grid) const;

  const data::Dataset& eval_;
  MonteCarloOptions options_;
  /// Encoded eval fields, built on first use and reused across
  /// evaluate()/compare() calls. Guarded by cache_mutex_ so concurrent
  /// evaluate() calls on one instance are safe (each call still owns the
  /// realization-level parallelism inside it).
  mutable Mutex cache_mutex_;
  mutable std::shared_ptr<const std::vector<optics::Field>> inputs_
      ODONN_GUARDED_BY(cache_mutex_);
  mutable optics::GridSpec inputs_grid_ ODONN_GUARDED_BY(cache_mutex_){};
};

}  // namespace odonn::fab

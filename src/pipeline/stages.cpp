#include "pipeline/stages.hpp"

#include <filesystem>
#include <utility>

#include "common/error.hpp"
#include "roughness/report.hpp"
#include "slr/slr.hpp"
#include "smooth2pi/two_pi_opt.hpp"
#include "train/trainer.hpp"

namespace odonn::pipeline {

namespace {

// Mirrors the TrainOptions base that train::run_recipe historically built;
// the parity test depends on this mapping staying byte-for-byte identical.
train::TrainOptions base_train_options(const train::RecipeOptions& options,
                                       RegularizerFlags flags) {
  train::TrainOptions base;
  base.batch_size = options.batch_size;
  base.loss = options.loss;
  base.seed = options.seed + 1;
  base.verbose = options.verbose;
  base.reg.roughness = options.roughness;
  base.reg.intra = options.intra;
  if (flags.roughness) base.reg.roughness_p = options.roughness_p;
  if (flags.intra) base.reg.intra_q = options.intra_q;
  return base;
}

double overall_sparsity(const donn::DonnModel& model) {
  if (!model.has_masks()) return 0.0;
  double total = 0.0;
  for (const auto& m : model.masks()) total += sparsify::sparsity_ratio(m);
  return total / static_cast<double>(model.masks().size());
}

}  // namespace

// ---------------------------------------------------------------- Train

TrainStage::TrainStage(train::RecipeOptions options, RegularizerFlags flags)
    : options_(std::move(options)), flags_(flags) {}

void TrainStage::run(ArtifactStore& store) {
  if (!store.has_model(artifacts::kMainModel)) {
    Rng rng(options_.seed);
    store.put_model(artifacts::kMainModel,
                    donn::DonnModel(options_.model, rng));
  }
  donn::DonnModel& model = store.mutable_model(artifacts::kMainModel);
  train::TrainOptions dense = base_train_options(options_, flags_);
  dense.epochs = options_.epochs_dense;
  dense.lr = options_.lr_dense;
  train::Trainer trainer(model, store.train(), dense);
  trainer.run();
}

// ------------------------------------------------------------- Sparsify

SparsifyStage::SparsifyStage(train::RecipeOptions options,
                             RegularizerFlags flags)
    : options_(std::move(options)), flags_(flags) {}

void SparsifyStage::run(ArtifactStore& store) {
  donn::DonnModel& model = store.mutable_model(artifacts::kMainModel);
  const train::TrainOptions base = base_train_options(options_, flags_);

  slr::SlrOptions slr_options = options_.slr;
  slr_options.scheme = options_.scheme;
  slr::SlrState slr_state(model.phases(), slr_options);
  {
    train::TrainOptions sparse = base;
    sparse.epochs = options_.epochs_sparse;
    sparse.lr = options_.lr_sparse;
    sparse.slr = &slr_state;
    train::Trainer trainer(model, store.train(), sparse);
    trainer.run();
  }
  model.set_masks(slr_state.masks());
  if (options_.epochs_finetune > 0) {
    train::TrainOptions finetune = base;
    finetune.epochs = options_.epochs_finetune;
    finetune.lr = options_.lr_sparse;
    train::Trainer trainer(model, store.train(), finetune);
    trainer.run();
  }
}

// --------------------------------------------------------------- Smooth

SmoothTwoPiStage::SmoothTwoPiStage(train::RecipeOptions options)
    : options_(std::move(options)) {}

void SmoothTwoPiStage::run(ArtifactStore& store) {
  const donn::DonnModel& model = store.model(artifacts::kMainModel);

  smooth2pi::TwoPiOptions two_pi = options_.two_pi;
  two_pi.roughness = options_.roughness;
  two_pi.seed = options_.seed + 99;
  const auto layer_results =
      smooth2pi::optimize_2pi_all(model.phases(), two_pi);
  std::vector<MatrixD> smoothed;
  smoothed.reserve(layer_results.size());
  double after_sum = 0.0;
  for (const auto& lr : layer_results) {
    smoothed.push_back(lr.optimized);
    after_sum += lr.roughness_after;
  }
  store.put_metric(artifacts::kRoughnessAfter,
                   after_sum / static_cast<double>(layer_results.size()));

  donn::DonnModel smoothed_model = model;
  smoothed_model.clear_masks();  // +2*pi pixels are no longer exact zeros
  smoothed_model.set_phases(std::move(smoothed));
  store.put_model(artifacts::kSmoothedModel, std::move(smoothed_model));
}

// ----------------------------------------------------------------- Eval

EvaluateStage::EvaluateStage(train::RecipeOptions options)
    : options_(std::move(options)) {}

void EvaluateStage::run(ArtifactStore& store) {
  const donn::DonnModel& model = store.model(artifacts::kMainModel);
  store.put_metric(artifacts::kAccuracy,
                   train::evaluate_accuracy(model, store.test()));
  store.put_metric(artifacts::kDeployedAccuracy,
                   train::evaluate_deployed_accuracy(model, store.test(),
                                                     options_.crosstalk));
  if (store.has_model(artifacts::kSmoothedModel)) {
    store.put_metric(
        artifacts::kDeployedAccuracyAfter2Pi,
        train::evaluate_deployed_accuracy(
            store.model(artifacts::kSmoothedModel), store.test(),
            options_.crosstalk));
  }
}

// --------------------------------------------------------------- Report

ReportStage::ReportStage(train::RecipeOptions options)
    : options_(std::move(options)) {}

void ReportStage::run(ArtifactStore& store) {
  const donn::DonnModel& model = store.model(artifacts::kMainModel);
  const auto before = roughness::report(model.phases(), options_.roughness);
  store.put_metric(artifacts::kRoughnessBefore, before.overall);
  store.put_metric(artifacts::kSparsity, overall_sparsity(model));
}

// -------------------------------------------------------------- Publish

PublishStage::PublishStage(std::shared_ptr<serve::ModelRegistry> registry,
                           std::string base_name, std::string save_dir)
    : registry_(std::move(registry)),
      base_name_(std::move(base_name)),
      save_dir_(std::move(save_dir)) {
  ODONN_CHECK(registry_ != nullptr, "publish stage: registry must be set");
  ODONN_CHECK(!base_name_.empty(),
              "publish stage: base name must be non-empty");
}

void PublishStage::run(ArtifactStore& store) {
  std::vector<std::string> published;
  registry_->add(base_name_, donn::DonnModel(store.model(artifacts::kMainModel)));
  published.push_back(base_name_);
  if (store.has_model(artifacts::kSmoothedModel)) {
    const std::string name = base_name_ + "-smoothed";
    registry_->add(name,
                   donn::DonnModel(store.model(artifacts::kSmoothedModel)));
    published.push_back(name);
  }
  if (!save_dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(save_dir_, ec);
    if (ec) {
      throw IoError("cannot create publish directory " + save_dir_ + ": " +
                    ec.message());
    }
    for (const std::string& name : published) {
      registry_->save(
          name, (std::filesystem::path(save_dir_) / (name + ".odnn")).string());
    }
  }
}

}  // namespace odonn::pipeline

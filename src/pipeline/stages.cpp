#include "pipeline/stages.hpp"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "common/error.hpp"
#include "data/idx.hpp"
#include "data/transform.hpp"
#include "fab/montecarlo.hpp"
#include "fab/spec.hpp"
#include "roughness/report.hpp"
#include "slr/slr.hpp"
#include "smooth2pi/two_pi_opt.hpp"
#include "train/trainer.hpp"

namespace odonn::pipeline {

namespace {

// Mirrors the TrainOptions base that train::run_recipe historically built;
// the parity test depends on this mapping staying byte-for-byte identical.
train::TrainOptions base_train_options(const train::RecipeOptions& options,
                                       RegularizerFlags flags) {
  train::TrainOptions base;
  base.batch_size = options.batch_size;
  base.loss = options.loss;
  base.seed = options.seed + 1;
  base.verbose = options.verbose;
  base.reg.roughness = options.roughness;
  base.reg.intra = options.intra;
  if (flags.roughness) base.reg.roughness_p = options.roughness_p;
  if (flags.intra) base.reg.intra_q = options.intra_q;
  return base;
}

double overall_sparsity(const donn::DonnModel& model) {
  if (!model.has_masks()) return 0.0;
  double total = 0.0;
  for (const auto& m : model.masks()) total += sparsify::sparsity_ratio(m);
  return total / static_cast<double>(model.masks().size());
}

}  // namespace

// ------------------------------------------------------------------ Data

namespace {

data::Dataset load_idx_resized(const DatasetStageOptions& options,
                               const char* images, const char* labels) {
  const std::filesystem::path dir(options.data_dir);
  return data::resize_dataset(
      data::load_idx((dir / images).string(), (dir / labels).string()),
      options.grid);
}

}  // namespace

std::pair<data::Dataset, data::Dataset> load_or_synthesize(
    const DatasetStageOptions& options) {
  ODONN_CHECK(options.train_fraction > 0.0 && options.train_fraction < 1.0,
              "dataset stage: train_fraction must be in (0, 1)");
  if (!options.data_dir.empty()) {
    return {load_idx_resized(options, "train-images-idx3-ubyte",
                             "train-labels-idx1-ubyte"),
            load_idx_resized(options, "t10k-images-idx3-ubyte",
                             "t10k-labels-idx1-ubyte")};
  }
  // Same arithmetic (seed offsets, resize, split) the CLI drivers have
  // always used, so pre-attached and stage-produced datasets are identical.
  const auto raw = data::make_synthetic(options.family, options.samples,
                                        options.seed + 10);
  const auto resized = data::resize_dataset(raw, options.grid);
  Rng split_rng(options.seed + 11);
  return resized.split(options.train_fraction, split_rng);
}

data::Dataset load_eval_set(const DatasetStageOptions& options) {
  if (!options.data_dir.empty()) {
    return load_idx_resized(options, "t10k-images-idx3-ubyte",
                            "t10k-labels-idx1-ubyte");
  }
  return load_or_synthesize(options).second;
}

DatasetStage::DatasetStage(DatasetStageOptions options)
    : options_(std::move(options)) {}

void DatasetStage::run(ArtifactStore& store) {
  auto [train, test] = load_or_synthesize(options_);
  store.put_data(std::move(train), std::move(test));
}

// ---------------------------------------------------------------- Train

TrainStage::TrainStage(train::RecipeOptions options, RegularizerFlags flags)
    : options_(std::move(options)), flags_(flags) {}

void TrainStage::run(ArtifactStore& store) {
  if (!store.has_model(artifacts::kMainModel)) {
    Rng rng(options_.seed);
    store.put_model(artifacts::kMainModel,
                    donn::DonnModel(options_.model, rng));
  }
  donn::DonnModel& model = store.mutable_model(artifacts::kMainModel);
  train::TrainOptions dense = base_train_options(options_, flags_);
  dense.epochs = options_.epochs_dense;
  dense.lr = options_.lr_dense;
  train::Trainer trainer(model, store.train(), dense);
  trainer.run();
}

// ---------------------------------------------------------- RobustTrain

RobustTrainStage::RobustTrainStage(train::RecipeOptions options,
                                   RegularizerFlags flags,
                                   RobustTrainStageOptions robust)
    : options_(std::move(options)),
      flags_(flags),
      robust_(std::move(robust)) {
  ODONN_CHECK(robust_.realizations > 0,
              "robust_train stage: need at least one realization");
}

void RobustTrainStage::run(ArtifactStore& store) {
  if (!store.has_model(artifacts::kMainModel)) {
    Rng rng(options_.seed);
    store.put_model(artifacts::kMainModel,
                    donn::DonnModel(options_.model, rng));
  }
  donn::DonnModel& model = store.mutable_model(artifacts::kMainModel);

  // Split the dense budget into clean warm-up + noise-in-the-loop epochs
  // (see RobustTrainStageOptions::warmup_epochs); total epochs — and thus
  // the clean-accuracy budget — match a plain TrainStage exactly.
  const long total = static_cast<long>(options_.epochs_dense);
  long warmup = robust_.warmup_epochs;
  if (warmup < 0) warmup = total - std::max<long>(1, total / 4);
  warmup = std::clamp<long>(warmup, 0, total);
  const long robust_epochs = total - warmup;

  if (warmup > 0) {
    train::TrainOptions clean = base_train_options(options_, flags_);
    clean.epochs = static_cast<std::size_t>(warmup);
    clean.lr = options_.lr_dense;
    train::Trainer trainer(model, store.train(), clean);
    trainer.run();
  }
  if (robust_epochs > 0) {
    const fab::PerturbationStack stack = fab::parse_perturbation_stack(
        robust_.perturb.empty() ? fab::kDefaultPerturbationSpec
                                : robust_.perturb);
    train::TrainOptions dense = base_train_options(options_, flags_);
    dense.epochs = static_cast<std::size_t>(robust_epochs);
    dense.lr = options_.lr_dense * robust_.lr_scale;
    dense.robust.stack = &stack;
    dense.robust.realizations = robust_.realizations;
    dense.robust.antithetic = robust_.antithetic;
    dense.robust.per_epoch = robust_.per_epoch;
    dense.robust.deploy_crosstalk = robust_.deploy_crosstalk;
    dense.robust.crosstalk = options_.crosstalk;
    dense.robust.seed = options_.seed + 500;  // apart from train/smooth/mc
    // Continuation training on a checkpointed model resumes the
    // realization stream where the previous run stopped (counter
    // round-trips exactly: metrics are doubles, integral up to 2^53).
    if (store.has_metric(artifacts::kRobustTrainRealizations)) {
      dense.robust.counter_start = static_cast<std::uint64_t>(
          store.metric(artifacts::kRobustTrainRealizations));
    }
    train::Trainer trainer(model, store.train(), dense);
    trainer.run();
    store.put_metric(artifacts::kRobustTrainRealizations,
                     static_cast<double>(trainer.realizations_sampled()));
  } else if (!store.has_metric(artifacts::kRobustTrainRealizations)) {
    // All-warm-up configuration: the declared output must still exist, but
    // a counter restored from a checkpoint is NOT reset — a later robust
    // session resumes the stream where the previous one stopped.
    store.put_metric(artifacts::kRobustTrainRealizations, 0.0);
  }
}

// ------------------------------------------------------------- Sparsify

SparsifyStage::SparsifyStage(train::RecipeOptions options,
                             RegularizerFlags flags)
    : options_(std::move(options)), flags_(flags) {}

void SparsifyStage::run(ArtifactStore& store) {
  donn::DonnModel& model = store.mutable_model(artifacts::kMainModel);
  const train::TrainOptions base = base_train_options(options_, flags_);

  slr::SlrOptions slr_options = options_.slr;
  slr_options.scheme = options_.scheme;
  slr::SlrState slr_state(model.phases(), slr_options);
  {
    train::TrainOptions sparse = base;
    sparse.epochs = options_.epochs_sparse;
    sparse.lr = options_.lr_sparse;
    sparse.slr = &slr_state;
    train::Trainer trainer(model, store.train(), sparse);
    trainer.run();
  }
  model.set_masks(slr_state.masks());
  if (options_.epochs_finetune > 0) {
    train::TrainOptions finetune = base;
    finetune.epochs = options_.epochs_finetune;
    finetune.lr = options_.lr_sparse;
    train::Trainer trainer(model, store.train(), finetune);
    trainer.run();
  }
}

// --------------------------------------------------------------- Smooth

SmoothTwoPiStage::SmoothTwoPiStage(train::RecipeOptions options)
    : options_(std::move(options)) {}

void SmoothTwoPiStage::run(ArtifactStore& store) {
  const donn::DonnModel& model = store.model(artifacts::kMainModel);

  smooth2pi::TwoPiOptions two_pi = options_.two_pi;
  two_pi.roughness = options_.roughness;
  two_pi.seed = options_.seed + 99;
  const auto layer_results =
      smooth2pi::optimize_2pi_all(model.phases(), two_pi);
  std::vector<MatrixD> smoothed;
  smoothed.reserve(layer_results.size());
  double after_sum = 0.0;
  for (std::size_t i = 0; i < layer_results.size(); ++i) {
    const auto& lr = layer_results[i];
    smoothed.push_back(lr.optimized);
    after_sum += lr.roughness_after;
    // Per-layer detail next to the overall mean, so multi-layer stacks show
    // which mask the smoother actually flattened.
    store.put_metric(std::string(artifacts::kRoughnessAfter) + ".layer" +
                         std::to_string(i),
                     lr.roughness_after);
  }
  store.put_metric(artifacts::kRoughnessAfter,
                   after_sum / static_cast<double>(layer_results.size()));

  donn::DonnModel smoothed_model = model;
  smoothed_model.clear_masks();  // +2*pi pixels are no longer exact zeros
  smoothed_model.set_phases(std::move(smoothed));
  store.put_model(artifacts::kSmoothedModel, std::move(smoothed_model));
}

// ----------------------------------------------------------------- Eval

EvaluateStage::EvaluateStage(train::RecipeOptions options)
    : options_(std::move(options)) {}

void EvaluateStage::run(ArtifactStore& store) {
  const donn::DonnModel& model = store.model(artifacts::kMainModel);
  store.put_metric(artifacts::kAccuracy,
                   train::evaluate_accuracy(model, store.test()));
  store.put_metric(artifacts::kDeployedAccuracy,
                   train::evaluate_deployed_accuracy(model, store.test(),
                                                     options_.crosstalk));
  if (store.has_model(artifacts::kSmoothedModel)) {
    store.put_metric(
        artifacts::kDeployedAccuracyAfter2Pi,
        train::evaluate_deployed_accuracy(
            store.model(artifacts::kSmoothedModel), store.test(),
            options_.crosstalk));
  }
}

// --------------------------------------------------------------- Robust

RobustEvalStage::RobustEvalStage(train::RecipeOptions options,
                                 RobustStageOptions robust)
    : options_(std::move(options)), robust_(std::move(robust)) {
  ODONN_CHECK(robust_.realizations > 0,
              "robust stage: need at least one realization");
}

void RobustEvalStage::run(ArtifactStore& store) {
  const fab::PerturbationStack stack = fab::parse_perturbation_stack(
      robust_.perturb.empty() ? fab::kDefaultPerturbationSpec
                              : robust_.perturb);
  fab::MonteCarloOptions mc;
  mc.realizations = robust_.realizations;
  mc.seed = options_.seed + 1000;  // own stream, apart from train/smooth
  mc.antithetic = robust_.antithetic;
  mc.yield_threshold = robust_.yield_threshold;
  mc.crosstalk = options_.crosstalk;
  const fab::MonteCarloEvaluator evaluator(store.test(), mc);

  const auto put = [&store](const char* mean_key, const char* std_key,
                            const char* min_key, const char* p50_key,
                            const char* yield_key,
                            const fab::RobustnessReport& report) {
    store.put_metric(mean_key, report.mean);
    store.put_metric(std_key, report.stddev);
    store.put_metric(min_key, report.min);
    store.put_metric(p50_key, report.p50);
    store.put_metric(yield_key, report.yield);
  };
  // Realization seeds depend only on (mc.seed, r): main and smoothed see
  // identical perturbation draws (common random numbers).
  put(artifacts::kRobustMean, artifacts::kRobustStd, artifacts::kRobustMin,
      artifacts::kRobustP50, artifacts::kRobustYield,
      evaluator.evaluate(artifacts::kMainModel,
                         store.model(artifacts::kMainModel), stack));
  if (store.has_model(artifacts::kSmoothedModel)) {
    put(artifacts::kRobustSmoothedMean, artifacts::kRobustSmoothedStd,
        artifacts::kRobustSmoothedMin, artifacts::kRobustSmoothedP50,
        artifacts::kRobustSmoothedYield,
        evaluator.evaluate(artifacts::kSmoothedModel,
                           store.model(artifacts::kSmoothedModel), stack));
  }
}

// --------------------------------------------------------------- Report

ReportStage::ReportStage(train::RecipeOptions options)
    : options_(std::move(options)) {}

void ReportStage::run(ArtifactStore& store) {
  const donn::DonnModel& model = store.model(artifacts::kMainModel);
  const auto before = roughness::report(model.phases(), options_.roughness);
  store.put_metric(artifacts::kRoughnessBefore, before.overall);
  for (std::size_t i = 0; i < before.per_layer.size(); ++i) {
    store.put_metric(std::string(artifacts::kRoughnessBefore) + ".layer" +
                         std::to_string(i),
                     before.per_layer[i]);
  }
  store.put_metric(artifacts::kSparsity, overall_sparsity(model));
}

// -------------------------------------------------------------- Publish

PublishStage::PublishStage(std::shared_ptr<serve::ModelRegistry> registry,
                           std::string base_name, std::string save_dir)
    : registry_(std::move(registry)),
      base_name_(std::move(base_name)),
      save_dir_(std::move(save_dir)) {
  ODONN_CHECK(registry_ != nullptr, "publish stage: registry must be set");
  ODONN_CHECK(!base_name_.empty(),
              "publish stage: base name must be non-empty");
}

void PublishStage::run(ArtifactStore& store) {
  std::vector<std::string> published;
  registry_->add(base_name_, donn::DonnModel(store.model(artifacts::kMainModel)));
  published.push_back(base_name_);
  if (store.has_model(artifacts::kSmoothedModel)) {
    const std::string name = base_name_ + "-smoothed";
    registry_->add(name,
                   donn::DonnModel(store.model(artifacts::kSmoothedModel)));
    published.push_back(name);
  }
  if (!save_dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(save_dir_, ec);
    if (ec) {
      throw IoError("cannot create publish directory " + save_dir_ + ": " +
                    ec.message());
    }
    for (const std::string& name : published) {
      registry_->save(
          name, (std::filesystem::path(save_dir_) / (name + ".odnn")).string());
    }
  }
}

}  // namespace odonn::pipeline

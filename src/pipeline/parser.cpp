#include "pipeline/parser.hpp"

#include <algorithm>
#include <cctype>
#include <memory>

#include "common/error.hpp"

namespace odonn::pipeline {

StageKind parse_stage_kind(const std::string& name) {
  std::string low(name.size(), '\0');
  std::transform(name.begin(), name.end(), low.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (low == "data" || low == "dataset") return StageKind::Dataset;
  if (low == "train") return StageKind::Train;
  if (low == "robust_train") return StageKind::RobustTrain;
  if (low == "sparsify") return StageKind::Sparsify;
  if (low == "smooth") return StageKind::Smooth;
  if (low == "eval" || low == "evaluate") return StageKind::Evaluate;
  if (low == "robust") return StageKind::Robust;
  if (low == "report") return StageKind::Report;
  if (low == "publish") return StageKind::Publish;
  throw ConfigError(
      "unknown pipeline stage '" + name +
      "' (expected data, train, robust_train, sparsify, smooth, eval, "
      "robust, report or publish)");
}

PipelineSpec spec_for_recipe(train::RecipeKind kind) {
  PipelineSpec spec;
  const bool sparsify = kind == train::RecipeKind::OursB ||
                        kind == train::RecipeKind::OursC ||
                        kind == train::RecipeKind::OursD;
  spec.stages.push_back(StageKind::Train);
  if (sparsify) spec.stages.push_back(StageKind::Sparsify);
  spec.stages.push_back(StageKind::Report);
  spec.stages.push_back(StageKind::Smooth);
  spec.stages.push_back(StageKind::Evaluate);
  spec.flags.roughness = kind == train::RecipeKind::OursA ||
                         kind == train::RecipeKind::OursC ||
                         kind == train::RecipeKind::OursD;
  spec.flags.intra = kind == train::RecipeKind::OursD;
  return spec;
}

std::vector<StageKind> parse_stage_list(const std::string& csv) {
  std::vector<StageKind> stages;
  for (const std::string& token : split_csv(csv)) {
    if (token.empty()) {
      throw ConfigError("empty stage name in pipeline list '" + csv + "'");
    }
    stages.push_back(parse_stage_kind(token));
  }
  if (stages.empty()) throw ConfigError("pipeline stage list is empty");
  return stages;
}

PipelineSpec spec_from_config(const Config& cfg) {
  PipelineSpec spec =
      spec_for_recipe(train::parse_recipe(cfg.get_string("recipe", "ours-c")));
  if (cfg.has("pipeline")) {
    spec.stages = parse_stage_list(cfg.get_string("pipeline", ""));
  }
  spec.flags.roughness = cfg.get_bool("roughness", spec.flags.roughness);
  spec.flags.intra = cfg.get_bool("intra", spec.flags.intra);
  if (cfg.get_bool("robust_train", false)) {
    apply_robust_train(spec);
  }
  return spec;
}

void apply_robust_train(PipelineSpec& spec) {
  for (StageKind& stage : spec.stages) {
    if (stage == StageKind::Train) stage = StageKind::RobustTrain;
  }
}

train::RecipeOptions options_from_config(const Config& cfg) {
  train::RecipeOptions opt;
  const std::size_t grid =
      static_cast<std::size_t>(cfg.get_int("grid", 48));
  opt.model = donn::DonnConfig::scaled(grid);
  opt.model.num_layers = static_cast<std::size_t>(
      cfg.get_int("layers", static_cast<long>(opt.model.num_layers)));
  opt.model.detector = donn::parse_detector_mode(
      cfg.get_enum("detector", "standard", {"standard", "differential"}));
  const std::string init = cfg.get_enum("init", "flat", {"flat", "uniform"});
  opt.model.init =
      init == "flat" ? donn::PhaseInit::Flat : donn::PhaseInit::Uniform;

  opt.epochs_dense = static_cast<std::size_t>(cfg.get_int("epochs", 3));
  opt.epochs_sparse = static_cast<std::size_t>(cfg.get_int(
      "epochs_sparse",
      static_cast<long>(std::max<std::size_t>(1, opt.epochs_dense / 2))));
  opt.epochs_finetune =
      static_cast<std::size_t>(cfg.get_int("epochs_finetune", 1));
  opt.batch_size = static_cast<std::size_t>(cfg.get_int("batch", 50));
  opt.lr_dense = cfg.get_double("lr", opt.lr_dense);
  opt.lr_sparse = cfg.get_double("lr_sparse", opt.lr_sparse);
  opt.roughness_p = cfg.get_double("p", opt.roughness_p);
  opt.intra_q = cfg.get_double("q", opt.intra_q);
  opt.scheme.ratio = cfg.get_double("sparsity", opt.scheme.ratio);
  opt.scheme.block_size =
      static_cast<std::size_t>(cfg.get_int("block", 5));
  opt.two_pi.iterations = static_cast<std::size_t>(cfg.get_int(
      "two_pi_iters", static_cast<long>(opt.two_pi.iterations)));
  opt.crosstalk.strength =
      cfg.get_double("crosstalk", opt.crosstalk.strength);
  opt.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 7));
  opt.verbose = cfg.get_bool("verbose", false);
  return opt;
}

DatasetStageOptions dataset_options_from_config(const Config& cfg) {
  DatasetStageOptions opt;
  opt.family = data::parse_family(cfg.get_string("dataset", "mnist"));
  opt.data_dir = cfg.get_string("data_dir", "");
  opt.samples = static_cast<std::size_t>(cfg.get_int("samples", 1200));
  opt.grid = static_cast<std::size_t>(cfg.get_int("grid", 48));
  opt.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 7));
  return opt;
}

RobustStageOptions robust_options_from_config(const Config& cfg) {
  RobustStageOptions opt;
  opt.perturb = cfg.get_string("perturb", "");
  const long realizations = cfg.get_int("realizations", 16);
  if (realizations < 1) {
    throw ConfigError("realizations must be >= 1");
  }
  opt.realizations = static_cast<std::size_t>(realizations);
  opt.yield_threshold =
      cfg.get_double("yield_threshold", opt.yield_threshold);
  opt.antithetic = cfg.get_bool("antithetic", opt.antithetic);
  return opt;
}

RobustTrainStageOptions robust_train_options_from_config(const Config& cfg) {
  RobustTrainStageOptions opt;
  opt.perturb = cfg.get_string("perturb", "");
  const long realizations =
      cfg.get_int("train_realizations", static_cast<long>(opt.realizations));
  if (realizations < 1) {
    throw ConfigError("train_realizations must be >= 1");
  }
  opt.realizations = static_cast<std::size_t>(realizations);
  // antithetic= drives training and MC evaluation together (the common
  // case); train_antithetic= overrides just the training streams, e.g. to
  // keep evaluation digests comparable while pairing the gradient draws.
  opt.antithetic = cfg.get_bool(
      "train_antithetic", cfg.get_bool("antithetic", opt.antithetic));
  if (opt.antithetic && opt.realizations % 2 != 0) {
    throw ConfigError(
        "train_realizations must be even with antithetic pairing (pass "
        "train_antithetic=0 for plain training streams)");
  }
  opt.per_epoch =
      cfg.get_enum("train_resample", "batch", {"batch", "epoch"}) == "epoch";
  opt.warmup_epochs = cfg.get_int("train_warmup", opt.warmup_epochs);
  opt.deploy_crosstalk =
      cfg.get_bool("train_crosstalk", opt.deploy_crosstalk);
  opt.lr_scale = cfg.get_double("train_lr_scale", opt.lr_scale);
  if (opt.lr_scale <= 0.0) {
    throw ConfigError("train_lr_scale must be > 0");
  }
  return opt;
}

std::vector<std::string> config_keys() {
  return {"recipe",          "pipeline",  "roughness", "intra",
          "grid",            "layers",    "detector",  "init",
          "epochs",
          "epochs_sparse",   "epochs_finetune",        "batch",
          "lr",              "lr_sparse", "p",         "q",
          "sparsity",        "block",     "two_pi_iters",
          "crosstalk",       "seed",      "verbose",   "data_dir",
          "perturb",         "realizations",           "yield_threshold",
          "antithetic",      "robust_train",           "train_realizations",
          "train_resample",  "train_warmup",           "train_lr_scale",
          "train_crosstalk", "train_antithetic"};
}

Pipeline build_pipeline(const PipelineSpec& spec,
                        const train::RecipeOptions& options,
                        const BuildContext& context) {
  ODONN_CHECK(!spec.stages.empty(), "pipeline spec has no stages");
  Pipeline pipe;
  for (const StageKind kind : spec.stages) {
    switch (kind) {
      case StageKind::Dataset:
        pipe.add(std::make_unique<DatasetStage>(context.data));
        break;
      case StageKind::Robust:
        pipe.add(std::make_unique<RobustEvalStage>(options, context.robust));
        break;
      case StageKind::Train:
        pipe.add(std::make_unique<TrainStage>(options, spec.flags));
        break;
      case StageKind::RobustTrain:
        pipe.add(std::make_unique<RobustTrainStage>(options, spec.flags,
                                                    context.robust_train));
        break;
      case StageKind::Sparsify:
        pipe.add(std::make_unique<SparsifyStage>(options, spec.flags));
        break;
      case StageKind::Smooth:
        pipe.add(std::make_unique<SmoothTwoPiStage>(options));
        break;
      case StageKind::Evaluate:
        pipe.add(std::make_unique<EvaluateStage>(options));
        break;
      case StageKind::Report:
        pipe.add(std::make_unique<ReportStage>(options));
        break;
      case StageKind::Publish:
        if (!context.registry) {
          throw ConfigError(
              "pipeline contains a publish stage but no model registry was "
              "provided");
        }
        pipe.add(std::make_unique<PublishStage>(
            context.registry, context.publish_name, context.publish_dir));
        break;
    }
  }
  return pipe;
}

}  // namespace odonn::pipeline

#include "pipeline/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace odonn::pipeline {

namespace fs = std::filesystem;

namespace {

using Clock = std::chrono::steady_clock;

/// Trace-span name for one stage run: "stage:<label>/<name>" with the
/// job label when the executor provided one.
std::string span_name(const RunOptions& options, const std::string& stage) {
  if (options.trace_label.empty()) return "stage:" + stage;
  return "stage:" + options.trace_label + "/" + stage;
}

// A checkpoint directory counts as complete only once its marker exists;
// the marker is written last, so a crash mid-save is never resumed from.
bool checkpoint_complete(const std::string& dir) {
  return fs::exists(fs::path(dir) / "done");
}

void write_marker(const std::string& dir) {
  const std::string path = (fs::path(dir) / "done").string();
  std::ofstream out(path);
  if (!out) throw IoError("cannot create checkpoint marker " + path);
}

}  // namespace

Pipeline& Pipeline::add(std::unique_ptr<Stage> stage) {
  ODONN_CHECK(stage != nullptr, "pipeline: stage must be non-null");
  stages_.push_back(std::move(stage));
  return *this;
}

void Pipeline::set_observer(PipelineObserver observer) {
  observer_ = std::move(observer);
}

void Pipeline::validate(const ArtifactStore& store) const {
  ODONN_CHECK(!stages_.empty(), "pipeline: no stages configured");
  std::vector<std::string> produced;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const Stage& stage = *stages_[i];
    const std::vector<std::string> outputs = stage.outputs();
    for (std::size_t a = 0; a < outputs.size(); ++a) {
      for (std::size_t b = a + 1; b < outputs.size(); ++b) {
        if (outputs[a] == outputs[b]) {
          throw ConfigError("pipeline: stage #" + std::to_string(i + 1) +
                            " '" + stage.name() + "' declares output '" +
                            outputs[a] + "' more than once");
        }
      }
    }
    for (const std::string& key : stage.inputs()) {
      const bool from_store = store.has_key(key);
      const bool from_stage =
          std::find(produced.begin(), produced.end(), key) != produced.end();
      if (!from_store && !from_stage) {
        throw ConfigError("pipeline: stage #" + std::to_string(i + 1) + " '" +
                          stage.name() + "' needs artifact '" + key +
                          "' which no earlier stage produces");
      }
    }
    for (const std::string& key : outputs) produced.push_back(key);
  }
}

std::string Pipeline::checkpoint_path(const std::string& dir,
                                      std::size_t index) const {
  return (fs::path(dir) /
          (std::to_string(index) + "_" + stages_[index]->name()))
      .string();
}

std::vector<StageTiming> Pipeline::run(ArtifactStore& store,
                                       const RunOptions& options) {
  validate(store);
  ODONN_CHECK(!options.resume || !options.checkpoint_dir.empty(),
              "pipeline: resume requires a checkpoint_dir");

  std::vector<StageTiming> timings;
  timings.reserve(stages_.size());

  // Fast-forward past the latest complete checkpoint of this stage list.
  std::size_t start = 0;
  if (options.resume) {
    for (std::size_t i = stages_.size(); i-- > 0;) {
      const std::string dir = checkpoint_path(options.checkpoint_dir, i);
      if (checkpoint_complete(dir)) {
        store.load_checkpoint(dir);
        start = i + 1;
        break;
      }
    }
  }
  for (std::size_t i = 0; i < start; ++i) {
    Stage& stage = *stages_[i];
    StageTiming timing{i, stage.name(), 0.0, /*skipped=*/true};
    if (stage.has_side_effects()) {
      // External effects (registry publishes, artifact exports) are not
      // captured in checkpoints: replay the stage against the restored
      // store so a resumed run is equivalent to an uninterrupted one.
      if (observer_.on_stage_start) observer_.on_stage_start(i, stage);
      const Clock::time_point t0 = Clock::now();
      {
        ODONN_OBS_SPAN(stage_span, span_name(options, stage.name()));
        stage.run(store);
      }
      ODONN_OBS_COUNT("pipeline.stages_run", 1);
      timing.seconds =
          std::chrono::duration<double>(Clock::now() - t0).count();
      timing.skipped = false;
    }
    if (observer_.on_stage_end) observer_.on_stage_end(timing);
    timings.push_back(std::move(timing));
  }

  for (std::size_t i = start; i < stages_.size(); ++i) {
    Stage& stage = *stages_[i];
    if (observer_.on_stage_start) observer_.on_stage_start(i, stage);
    const Clock::time_point t0 = Clock::now();
    {
      ODONN_OBS_SPAN(stage_span, span_name(options, stage.name()));
      stage.run(store);
    }
    ODONN_OBS_COUNT("pipeline.stages_run", 1);
    StageTiming timing{i, stage.name(),
                       std::chrono::duration<double>(Clock::now() - t0).count(),
                       /*skipped=*/false};
    if (!options.checkpoint_dir.empty()) {
      const std::string dir = checkpoint_path(options.checkpoint_dir, i);
      // Clear any previous run's checkpoint first: its 'done' marker (and
      // stale artifact files) must never survive into a partial overwrite.
      std::filesystem::remove_all(dir);
      store.save_checkpoint(dir);
      write_marker(dir);
    }
    if (observer_.on_stage_end) observer_.on_stage_end(timing);
    timings.push_back(std::move(timing));
  }
  return timings;
}

}  // namespace odonn::pipeline

// ArtifactStore — the blackboard that pipeline stages read from and write
// to. Artifacts are typed and named:
//   * datasets ("data.train" / "data.test") — either non-owning views
//     supplied by the caller before the pipeline runs (set_data) or owned
//     copies produced by a stage (put_data, e.g. DatasetStage);
//   * models   ("model.<name>")             — owned DonnModel instances
//     ("main" is the working model, "smoothed" the 2*pi-optimized copy);
//   * metrics  ("metric.<name>")            — scalar results (accuracy,
//     roughness_before, ...).
// The dotted keys are what Stage::inputs()/outputs() declare and what
// Pipeline::validate() checks; typed accessors are what stage code uses.
//
// Checkpointing: save_checkpoint() persists every model (donn/serialize —
// the same container ModelRegistry::save/load use) plus a metrics text file
// into one directory; load_checkpoint() restores them, which is how
// Pipeline resumes mid-sequence.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "donn/model.hpp"

namespace odonn::pipeline {

class ArtifactStore {
 public:
  /// Attaches non-owning train/test datasets (must outlive the store's use).
  /// Replaces any owned datasets installed via put_data.
  void set_data(const data::Dataset* train, const data::Dataset* test);

  /// Installs OWNED train/test datasets (a DatasetStage's outputs live in
  /// the store itself). Replaces any attached views.
  void put_data(data::Dataset train, data::Dataset test);

  bool has_data() const { return train_ != nullptr && test_ != nullptr; }
  const data::Dataset& train() const;
  const data::Dataset& test() const;

  void put_model(const std::string& name, donn::DonnModel model);
  bool has_model(const std::string& name) const;
  const donn::DonnModel& model(const std::string& name) const;
  donn::DonnModel& mutable_model(const std::string& name);
  std::vector<std::string> model_names() const;

  void put_metric(const std::string& name, double value);
  bool has_metric(const std::string& name) const;
  double metric(const std::string& name) const;
  std::vector<std::string> metric_names() const;

  /// Resolves a dotted artifact key ("data.train", "model.main",
  /// "metric.accuracy") against the current contents.
  bool has_key(const std::string& key) const;

  /// Writes all models (<name>.odnn) and metrics (metrics.txt) into `dir`
  /// (created if needed). Throws IoError on filesystem failure.
  void save_checkpoint(const std::string& dir) const;

  /// Restores models/metrics previously written by save_checkpoint,
  /// replacing same-named artifacts. Throws IoError on malformed content.
  void load_checkpoint(const std::string& dir);

 private:
  // Views point either at caller-owned datasets (set_data) or at the owned_
  // copies below (put_data); accessors only ever read the views.
  const data::Dataset* train_ = nullptr;
  const data::Dataset* test_ = nullptr;
  std::unique_ptr<data::Dataset> owned_train_;
  std::unique_ptr<data::Dataset> owned_test_;
  std::map<std::string, donn::DonnModel> models_;
  std::map<std::string, double> metrics_;
};

}  // namespace odonn::pipeline

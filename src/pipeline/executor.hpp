// ParallelTableRunner — concurrent execution of independent pipelines.
//
// A paper table (and the fig6 hyperparameter sweep) is N independent
// recipe pipelines over one shared read-only dataset pair. The runner
// executes them as parallel_tasks lanes on the shared pool: at most
// `jobs` pipelines in flight, each with an inner thread budget so an
// M-recipe table on T threads neither oversubscribes (M pipelines each
// assuming T workers) nor serializes (a pipeline on a pool thread falling
// back to inline loops, the pre-nesting-aware behavior).
//
// Determinism contract: every job owns its ArtifactStore, pipelines only
// share immutable inputs (datasets attached by `setup`), and all shared
// caches (fft plans, encode snapshots) are order-independent — so results
// are BITWISE identical to the sequential jobs=1 path for any jobs= and
// any ODONN_THREADS (scripts/check.sh digests a jobs=1 vs jobs=4 table).
//
// Failure: the lowest-index job's exception is rethrown after in-flight
// jobs finish; jobs not yet started are abandoned. Completed jobs that
// were checkpointing keep their checkpoints, so a rerun with resume=true
// fast-forwards them (tests/executor_test.cpp).
//
// Streaming progress: ExecutorOptions::progress receives one event at
// every stage start and end of every job AS IT HAPPENS (not buffered until
// the table returns). Events from concurrent jobs are serialized through
// an internal mutex, so the sink itself need not be thread-safe; ordering
// across jobs is scheduling-dependent, ordering within a job is the stage
// order. Installing a progress sink overwrites any observer previously
// set on the job pipelines (the runner implements streaming through the
// same observer slot).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "pipeline/pipeline.hpp"

namespace odonn::pipeline {

/// One streamed stage event from a running table. `finished == false` is
/// a stage start (seconds/skipped not yet meaningful); `finished == true`
/// carries the stage's StageTiming fields.
struct StageProgressEvent {
  std::size_t job = 0;      ///< index into the submitted job vector
  std::string label;        ///< PipelineJob::label
  std::size_t stage = 0;    ///< stage index within the job's pipeline
  std::string stage_name;
  bool finished = false;
  double seconds = 0.0;     ///< valid when finished
  bool skipped = false;     ///< valid when finished
};

/// Called under the runner's progress mutex — events never interleave,
/// but the sink should stay cheap (it blocks that job's next stage).
using ProgressSink = std::function<void(const StageProgressEvent&)>;

struct ExecutorOptions {
  /// Max pipelines in flight. 1 = the sequential reference path (runs on
  /// the caller, full pool budget per job — exactly the classic loop).
  std::size_t jobs = 1;
  /// Inner parallel budget per running job; 0 = thread_count() split
  /// evenly across the concurrent lanes.
  std::size_t inner_threads = 0;
  /// Streaming per-stage progress (see header comment). May be empty.
  ProgressSink progress;
};

struct PipelineJob {
  std::string label;
  Pipeline pipeline;
  RunOptions run_options;
  /// Runs before the pipeline, on the job's own store — attach shared
  /// datasets, seed models, etc. May be empty.
  std::function<void(ArtifactStore&)> setup;
};

struct JobResult {
  std::string label;
  ArtifactStore store;
  std::vector<StageTiming> timings;
  double seconds = 0.0;  ///< wall-clock of this job (setup + pipeline)
};

class ParallelTableRunner {
 public:
  explicit ParallelTableRunner(ExecutorOptions options = {});

  /// Executes every job and returns their results in job order.
  std::vector<JobResult> run(std::vector<PipelineJob> jobs) const;

 private:
  ExecutorOptions options_;
};

}  // namespace odonn::pipeline

// Concrete pipeline stages for the paper's workflow. Together they
// reproduce train::run_recipe exactly (tests/pipeline_test.cpp asserts
// bit-for-bit parity): every stage performs the same arithmetic, in the
// same order, with the same RNG streams as the monolithic path.
//
// Shared artifact names:
//   model  "main"      — the working model (created by TrainStage)
//   model  "smoothed"  — 2*pi-optimized copy (created by SmoothTwoPiStage)
//   metric "accuracy", "deployed_accuracy", "deployed_accuracy_after_2pi",
//          "roughness_before", "roughness_after", "sparsity"
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "pipeline/stage.hpp"
#include "serve/registry.hpp"
#include "train/recipe.hpp"

namespace odonn::pipeline {

namespace artifacts {
inline constexpr const char* kMainModel = "main";
inline constexpr const char* kSmoothedModel = "smoothed";
inline constexpr const char* kAccuracy = "accuracy";
inline constexpr const char* kDeployedAccuracy = "deployed_accuracy";
inline constexpr const char* kDeployedAccuracyAfter2Pi =
    "deployed_accuracy_after_2pi";
inline constexpr const char* kRoughnessBefore = "roughness_before";
inline constexpr const char* kRoughnessAfter = "roughness_after";
inline constexpr const char* kSparsity = "sparsity";
}  // namespace artifacts

/// Which of the paper's regularizers a training stage applies (the only
/// difference between Baseline and Ours-A, and between Ours-C and Ours-D).
struct RegularizerFlags {
  bool roughness = false;  ///< Eq. 5 roughness term (factor p)
  bool intra = false;      ///< Eq. 8 intra-block smoothness term (factor q)
};

/// Dense training. Creates model.main (seeded from options.seed) when the
/// store does not already hold one — so a checkpointed model can be trained
/// further — then runs epochs_dense at lr_dense.
class TrainStage : public Stage {
 public:
  TrainStage(train::RecipeOptions options, RegularizerFlags flags);
  std::string name() const override { return "train"; }
  std::vector<std::string> inputs() const override { return {"data.train"}; }
  std::vector<std::string> outputs() const override { return {"model.main"}; }
  void run(ArtifactStore& store) override;

 private:
  train::RecipeOptions options_;
  RegularizerFlags flags_;
};

/// SLR block-sparsity training (§III-C2): penalty-coupled training epochs,
/// hard prune to the SLR support, then mask-frozen fine-tuning.
class SparsifyStage : public Stage {
 public:
  SparsifyStage(train::RecipeOptions options, RegularizerFlags flags);
  std::string name() const override { return "sparsify"; }
  std::vector<std::string> inputs() const override {
    return {"data.train", "model.main"};
  }
  std::vector<std::string> outputs() const override { return {"model.main"}; }
  void run(ArtifactStore& store) override;

 private:
  train::RecipeOptions options_;
  RegularizerFlags flags_;
};

/// 2*pi periodic roughness optimization (§III-D2). Produces model.smoothed
/// (inference-equivalent in the ideal simulation) and metric.roughness_after.
class SmoothTwoPiStage : public Stage {
 public:
  explicit SmoothTwoPiStage(train::RecipeOptions options);
  std::string name() const override { return "smooth"; }
  std::vector<std::string> inputs() const override { return {"model.main"}; }
  std::vector<std::string> outputs() const override {
    return {"model.smoothed", "metric.roughness_after"};
  }
  void run(ArtifactStore& store) override;

 private:
  train::RecipeOptions options_;
};

/// Clean + crosstalk-deployed test accuracy of model.main; when
/// model.smoothed exists, also its deployed accuracy (the paper's
/// "after 2*pi" deployment column).
class EvaluateStage : public Stage {
 public:
  explicit EvaluateStage(train::RecipeOptions options);
  std::string name() const override { return "eval"; }
  std::vector<std::string> inputs() const override {
    return {"data.test", "model.main"};
  }
  std::vector<std::string> outputs() const override {
    return {"metric.accuracy", "metric.deployed_accuracy"};
  }
  void run(ArtifactStore& store) override;

 private:
  train::RecipeOptions options_;
};

/// Roughness metrics of the trained masks (R_overall before smoothing,
/// §IV-B) and the achieved sparsity ratio.
class ReportStage : public Stage {
 public:
  explicit ReportStage(train::RecipeOptions options);
  std::string name() const override { return "report"; }
  std::vector<std::string> inputs() const override { return {"model.main"}; }
  std::vector<std::string> outputs() const override {
    return {"metric.roughness_before", "metric.sparsity"};
  }
  void run(ArtifactStore& store) override;

 private:
  train::RecipeOptions options_;
};

/// Publishes model.main (as `<base_name>`) and, when present,
/// model.smoothed (as `<base_name>-smoothed`) into a serve::ModelRegistry,
/// handing training artifacts straight to the PR-1 inference engine. With a
/// non-empty save_dir every published entry is also checkpointed to
/// `<save_dir>/<published name>.odnn` via ModelRegistry::save, so the
/// on-disk artifact and the served snapshot share one serialization path.
class PublishStage : public Stage {
 public:
  PublishStage(std::shared_ptr<serve::ModelRegistry> registry,
               std::string base_name, std::string save_dir = "");
  std::string name() const override { return "publish"; }
  std::vector<std::string> inputs() const override { return {"model.main"}; }
  bool has_side_effects() const override { return true; }
  void run(ArtifactStore& store) override;

 private:
  std::shared_ptr<serve::ModelRegistry> registry_;
  std::string base_name_;
  std::string save_dir_;
};

}  // namespace odonn::pipeline

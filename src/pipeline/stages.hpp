// Concrete pipeline stages for the paper's workflow. Together they
// reproduce train::run_recipe exactly (tests/pipeline_test.cpp asserts
// bit-for-bit parity): every stage performs the same arithmetic, in the
// same order, with the same RNG streams as the monolithic path.
//
// Shared artifact names:
//   model  "main"      — the working model (created by TrainStage)
//   model  "smoothed"  — 2*pi-optimized copy (created by SmoothTwoPiStage)
//   metric "accuracy", "deployed_accuracy", "deployed_accuracy_after_2pi",
//          "roughness_before", "roughness_after", "sparsity"
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "data/synthetic.hpp"
#include "pipeline/stage.hpp"
#include "serve/registry.hpp"
#include "train/recipe.hpp"

namespace odonn::pipeline {

namespace artifacts {
inline constexpr const char* kMainModel = "main";
inline constexpr const char* kSmoothedModel = "smoothed";
inline constexpr const char* kAccuracy = "accuracy";
inline constexpr const char* kDeployedAccuracy = "deployed_accuracy";
inline constexpr const char* kDeployedAccuracyAfter2Pi =
    "deployed_accuracy_after_2pi";
inline constexpr const char* kRoughnessBefore = "roughness_before";
inline constexpr const char* kRoughnessAfter = "roughness_after";
inline constexpr const char* kSparsity = "sparsity";
// Monte-Carlo robustness metrics (RobustEvalStage). The model.main report;
// when model.smoothed exists a second set with the "robust_smoothed_"
// prefix is produced.
inline constexpr const char* kRobustMean = "robust_mean";
inline constexpr const char* kRobustStd = "robust_std";
inline constexpr const char* kRobustMin = "robust_min";
inline constexpr const char* kRobustP50 = "robust_p50";
inline constexpr const char* kRobustYield = "robust_yield";
inline constexpr const char* kRobustSmoothedMean = "robust_smoothed_mean";
inline constexpr const char* kRobustSmoothedStd = "robust_smoothed_std";
inline constexpr const char* kRobustSmoothedMin = "robust_smoothed_min";
inline constexpr const char* kRobustSmoothedP50 = "robust_smoothed_p50";
inline constexpr const char* kRobustSmoothedYield = "robust_smoothed_yield";
// RobustTrainStage: total realizations drawn from the robust training
// stream. Checkpointed with the other metrics, so a resumed pipeline that
// trains further continues the identical stream.
inline constexpr const char* kRobustTrainRealizations =
    "robust_train_realizations";
}  // namespace artifacts

/// Which of the paper's regularizers a training stage applies (the only
/// difference between Baseline and Ours-A, and between Ours-C and Ours-D).
struct RegularizerFlags {
  bool roughness = false;  ///< Eq. 5 roughness term (factor p)
  bool intra = false;      ///< Eq. 8 intra-block smoothness term (factor q)
};

/// How a DatasetStage obtains its data: real IDX files (MNIST container
/// format) from data_dir when set, else the synthetic generator — with
/// identical downstream arithmetic (resize to the optical grid, then a
/// deterministic shuffled split).
struct DatasetStageOptions {
  data::SyntheticFamily family = data::SyntheticFamily::Digits;
  /// Directory holding train-images-idx3-ubyte / train-labels-idx1-ubyte /
  /// t10k-images-idx3-ubyte / t10k-labels-idx1-ubyte. Empty -> synthetic.
  std::string data_dir;
  std::size_t samples = 1200;  ///< synthetic total (split train/test)
  std::size_t grid = 48;       ///< optical grid side (resize target)
  double train_fraction = 0.8;
  std::uint64_t seed = 7;
};

/// Loads (IDX) or synthesizes the train/test datasets described by
/// `options`. Shared by DatasetStage and the CLI drivers so the pipeline
/// path and the pre-attached path produce byte-identical datasets.
std::pair<data::Dataset, data::Dataset> load_or_synthesize(
    const DatasetStageOptions& options);

/// Evaluation split only: with data_dir set this reads just the t10k IDX
/// pair (no 60k-image train load for eval-only workloads like
/// `odonn_cli robust model=`); the synthetic fallback matches
/// load_or_synthesize's test half exactly.
data::Dataset load_eval_set(const DatasetStageOptions& options);

/// Produces data.train / data.test (owned by the store). Replayed on
/// checkpoint resume: datasets are deliberately not part of checkpoints
/// (they can be gigabytes and are cheap to re-derive), so a resumed
/// pipeline re-runs this stage to repopulate the store.
class DatasetStage : public Stage {
 public:
  explicit DatasetStage(DatasetStageOptions options);
  std::string name() const override { return "data"; }
  std::vector<std::string> outputs() const override {
    return {"data.train", "data.test"};
  }
  bool has_side_effects() const override { return true; }  // see class doc
  void run(ArtifactStore& store) override;

 private:
  DatasetStageOptions options_;
};

/// Dense training. Creates model.main (seeded from options.seed) when the
/// store does not already hold one — so a checkpointed model can be trained
/// further — then runs epochs_dense at lr_dense.
class TrainStage : public Stage {
 public:
  TrainStage(train::RecipeOptions options, RegularizerFlags flags);
  std::string name() const override { return "train"; }
  std::vector<std::string> inputs() const override { return {"data.train"}; }
  std::vector<std::string> outputs() const override { return {"model.main"}; }
  void run(ArtifactStore& store) override;

 private:
  train::RecipeOptions options_;
  RegularizerFlags flags_;
};

/// Noise-in-the-loop robust-training options for RobustTrainStage (the
/// perturbation stack is kept as its textual spec, like RobustStageOptions,
/// so the stage stays copyable and descriptions printable).
struct RobustTrainStageOptions {
  std::string perturb;  ///< fab spec; empty -> fab::kDefaultPerturbationSpec
  std::size_t realizations = 2;  ///< K device samples per optimizer step
  bool antithetic = true;        ///< mirrored realization pairs
  bool per_epoch = false;        ///< resample per epoch instead of per batch
  /// Clean warm-up epochs before the noise-in-the-loop epochs (the stage's
  /// epochs_dense total is split warmup + robust). Noise-averaged
  /// gradients steer best near convergence — training from scratch under
  /// fabrication noise mostly slows learning — so the default (-1) warms
  /// up for all but the final quarter: max(1, epochs_dense/4) robust
  /// epochs.
  long warmup_epochs = -1;
  /// lr factor for the robust epochs: the noise-averaged surrogate wants
  /// smaller steps than clean dense training (same spirit as the recipe's
  /// lr_sparse fine-tune phases).
  double lr_scale = 0.1;
  /// Deploy each training realization through the interpixel-crosstalk
  /// emulation. Off by default: for ADDITIVE fabrication noise the
  /// straight-through gradient is an unbiased estimator of the expected
  /// fabricated loss, but through the roughness-gated crosstalk blur it
  /// acquires a bias that can dominate the update (the blur rides on the
  /// injected GRF, not on the clean mask). The Monte-Carlo evaluator still
  /// deploys crosstalk — training adapts to the noise, evaluation keeps
  /// the full deployment path.
  bool deploy_crosstalk = false;
};

/// Robust dense training: like TrainStage, but every optimizer step
/// averages gradients over K fabrication realizations of the current
/// device (train::RobustTrainOptions), so the recipe optimizes the
/// EXPECTED fabricated accuracy rather than the clean one. Produces
/// model.main plus metric.robust_train_realizations — the sampled-
/// realization counter, serialized via the store so checkpoint-resumed
/// continuation training draws the same stream an uninterrupted run would.
class RobustTrainStage : public Stage {
 public:
  RobustTrainStage(train::RecipeOptions options, RegularizerFlags flags,
                   RobustTrainStageOptions robust);
  std::string name() const override { return "robust_train"; }
  std::vector<std::string> inputs() const override { return {"data.train"}; }
  std::vector<std::string> outputs() const override {
    return {"model.main", "metric.robust_train_realizations"};
  }
  void run(ArtifactStore& store) override;

 private:
  train::RecipeOptions options_;
  RegularizerFlags flags_;
  RobustTrainStageOptions robust_;
};

/// SLR block-sparsity training (§III-C2): penalty-coupled training epochs,
/// hard prune to the SLR support, then mask-frozen fine-tuning.
class SparsifyStage : public Stage {
 public:
  SparsifyStage(train::RecipeOptions options, RegularizerFlags flags);
  std::string name() const override { return "sparsify"; }
  std::vector<std::string> inputs() const override {
    return {"data.train", "model.main"};
  }
  std::vector<std::string> outputs() const override { return {"model.main"}; }
  void run(ArtifactStore& store) override;

 private:
  train::RecipeOptions options_;
  RegularizerFlags flags_;
};

/// 2*pi periodic roughness optimization (§III-D2). Produces model.smoothed
/// (inference-equivalent in the ideal simulation) and metric.roughness_after.
class SmoothTwoPiStage : public Stage {
 public:
  explicit SmoothTwoPiStage(train::RecipeOptions options);
  std::string name() const override { return "smooth"; }
  std::vector<std::string> inputs() const override { return {"model.main"}; }
  std::vector<std::string> outputs() const override {
    return {"model.smoothed", "metric.roughness_after"};
  }
  void run(ArtifactStore& store) override;

 private:
  train::RecipeOptions options_;
};

/// Clean + crosstalk-deployed test accuracy of model.main; when
/// model.smoothed exists, also its deployed accuracy (the paper's
/// "after 2*pi" deployment column).
class EvaluateStage : public Stage {
 public:
  explicit EvaluateStage(train::RecipeOptions options);
  std::string name() const override { return "eval"; }
  std::vector<std::string> inputs() const override {
    return {"data.test", "model.main"};
  }
  std::vector<std::string> outputs() const override {
    return {"metric.accuracy", "metric.deployed_accuracy"};
  }
  void run(ArtifactStore& store) override;

 private:
  train::RecipeOptions options_;
};

/// Monte-Carlo fabrication-robustness options for RobustEvalStage (the
/// perturbation stack is kept as its textual spec so the stage stays
/// copyable and checkpoint descriptions stay printable).
struct RobustStageOptions {
  std::string perturb;  ///< fab spec; empty -> fab::kDefaultPerturbationSpec
  std::size_t realizations = 16;
  double yield_threshold = 0.5;
  /// Antithetic realization pairs (MonteCarloOptions::antithetic). Off by
  /// default: plain streams keep report digests comparable with earlier
  /// runs; turn on for lower-variance means at equal R.
  bool antithetic = false;
};

/// Monte-Carlo robustness evaluation (src/fab): R perturbed realizations of
/// model.main (and model.smoothed when present) against data.test, under
/// the recipe's nominal crosstalk deployment. Produces the
/// metric.robust_* family; metrics checkpoint via the store, so a resumed
/// pipeline reproduces the identical report without re-simulating.
class RobustEvalStage : public Stage {
 public:
  RobustEvalStage(train::RecipeOptions options, RobustStageOptions robust);
  std::string name() const override { return "robust"; }
  std::vector<std::string> inputs() const override {
    return {"data.test", "model.main"};
  }
  std::vector<std::string> outputs() const override {
    return {"metric.robust_mean", "metric.robust_yield"};
  }
  void run(ArtifactStore& store) override;

 private:
  train::RecipeOptions options_;
  RobustStageOptions robust_;
};

/// Roughness metrics of the trained masks (R_overall before smoothing,
/// §IV-B) and the achieved sparsity ratio.
class ReportStage : public Stage {
 public:
  explicit ReportStage(train::RecipeOptions options);
  std::string name() const override { return "report"; }
  std::vector<std::string> inputs() const override { return {"model.main"}; }
  std::vector<std::string> outputs() const override {
    return {"metric.roughness_before", "metric.sparsity"};
  }
  void run(ArtifactStore& store) override;

 private:
  train::RecipeOptions options_;
};

/// Publishes model.main (as `<base_name>`) and, when present,
/// model.smoothed (as `<base_name>-smoothed`) into a serve::ModelRegistry,
/// handing training artifacts straight to the PR-1 inference engine. With a
/// non-empty save_dir every published entry is also checkpointed to
/// `<save_dir>/<published name>.odnn` via ModelRegistry::save, so the
/// on-disk artifact and the served snapshot share one serialization path.
class PublishStage : public Stage {
 public:
  PublishStage(std::shared_ptr<serve::ModelRegistry> registry,
               std::string base_name, std::string save_dir = "");
  std::string name() const override { return "publish"; }
  std::vector<std::string> inputs() const override { return {"model.main"}; }
  bool has_side_effects() const override { return true; }
  void run(ArtifactStore& store) override;

 private:
  std::shared_ptr<serve::ModelRegistry> registry_;
  std::string base_name_;
  std::string save_dir_;
};

}  // namespace odonn::pipeline

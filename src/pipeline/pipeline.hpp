// Pipeline — ordered stage execution over one ArtifactStore.
//
// Features on top of "call run() in a loop":
//   * validate(): checks every stage's declared inputs are satisfiable from
//     the store's initial contents plus earlier stages' declared outputs,
//     before any compute runs (a bad `pipeline=` string fails in
//     milliseconds, not after an hour of training);
//   * observers: per-stage start/end callbacks with wall-clock timing;
//   * checkpointing: with a checkpoint directory set, the full store is
//     persisted after every stage (donn/serialize for models), and
//     resume=true fast-forwards past the longest prefix of stages whose
//     checkpoints are already on disk — except stages with external side
//     effects (Stage::has_side_effects, e.g. publish), which are replayed
//     against the restored store since checkpoints cannot capture them.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pipeline/artifact_store.hpp"
#include "pipeline/stage.hpp"

namespace odonn::pipeline {

/// Per-stage record returned by run() (and passed to observers).
struct StageTiming {
  std::size_t index = 0;
  std::string name;
  double seconds = 0.0;
  bool skipped = false;  ///< satisfied from a checkpoint instead of running
};

struct PipelineObserver {
  std::function<void(std::size_t index, const Stage& stage)> on_stage_start;
  std::function<void(const StageTiming&)> on_stage_end;
};

struct RunOptions {
  /// When non-empty, the store is checkpointed to
  /// `<dir>/<index>_<stage name>/` after each stage completes.
  std::string checkpoint_dir;
  /// Resume from the latest complete checkpoint that matches this
  /// pipeline's stage sequence (requires checkpoint_dir).
  bool resume = false;
  /// Observability only: per-stage trace spans are named
  /// "stage:<trace_label>/<stage name>" when set ("stage:<stage name>"
  /// otherwise). The parallel executor fills in the job label so spans
  /// from concurrent recipes stay attributable.
  std::string trace_label;
};

class Pipeline {
 public:
  Pipeline() = default;
  Pipeline(Pipeline&&) = default;
  Pipeline& operator=(Pipeline&&) = default;

  Pipeline& add(std::unique_ptr<Stage> stage);

  std::size_t size() const { return stages_.size(); }
  const Stage& stage(std::size_t index) const { return *stages_.at(index); }

  void set_observer(PipelineObserver observer);

  /// Throws ConfigError naming the first stage whose declared inputs cannot
  /// be satisfied by `store` plus the outputs of preceding stages.
  void validate(const ArtifactStore& store) const;

  /// Validates, then runs every stage in order. Returns per-stage timings
  /// (skipped=true for checkpoint-satisfied stages).
  std::vector<StageTiming> run(ArtifactStore& store,
                               const RunOptions& options = {});

 private:
  std::string checkpoint_path(const std::string& dir, std::size_t index) const;

  std::vector<std::unique_ptr<Stage>> stages_;
  PipelineObserver observer_;
};

}  // namespace odonn::pipeline

// Declarative pipeline construction.
//
// A workflow is named either by a stage list ("pipeline=train,sparsify,
// smooth,eval,report,publish") or by one of the paper's recipe shortcuts
// ("recipe=ours-d"); the Baseline/Ours-A..D variants are nothing but five
// stage lists plus regularizer flags (spec_for_recipe). options_from_config
// maps the flat key=value Config onto train::RecipeOptions, and
// config_keys() exposes the full accepted key set for Config::strict().
#pragma once

#include <string>
#include <vector>

#include "common/config.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/stages.hpp"
#include "train/recipe.hpp"

namespace odonn::pipeline {

enum class StageKind {
  Dataset,
  Train,
  RobustTrain,
  Sparsify,
  Smooth,
  Evaluate,
  Robust,
  Report,
  Publish,
};

StageKind parse_stage_kind(const std::string& name);

/// A fully-specified workflow: which stages, with which regularizers.
struct PipelineSpec {
  std::vector<StageKind> stages;
  RegularizerFlags flags;
};

/// The paper's five variants as stage lists (§IV-B):
///   baseline/ours-a:  train, report, smooth, eval   (flags differ)
///   ours-b/c/d:       train, sparsify, report, smooth, eval
PipelineSpec spec_for_recipe(train::RecipeKind kind);

/// Parses a comma-separated stage list; throws ConfigError on unknown
/// names or an empty list.
std::vector<StageKind> parse_stage_list(const std::string& csv);

/// Swaps every Train stage for RobustTrain (the `robust_train=1` mapping;
/// exposed for drivers that assemble specs without spec_from_config).
void apply_robust_train(PipelineSpec& spec);

/// Spec from Config: `recipe=` picks a shortcut, `pipeline=` overrides the
/// stage list, `roughness=`/`intra=` override the regularizer flags, and
/// `robust_train=1` swaps every train stage for its noise-in-the-loop
/// robust_train counterpart. Defaults to recipe=ours-c's spec when neither
/// recipe nor pipeline is present.
PipelineSpec spec_from_config(const Config& cfg);

/// RecipeOptions from flat config keys (grid=, samples-independent):
/// epochs/epochs_sparse/epochs_finetune, batch, lr/lr_sparse, p, q,
/// sparsity, block, layers, init=flat|uniform, crosstalk, two_pi_iters,
/// seed, verbose.
train::RecipeOptions options_from_config(const Config& cfg);

/// DatasetStageOptions from flat config keys: dataset= (family), data_dir=,
/// samples=, grid=, seed= — the DatasetStage / driver data-preparation
/// contract.
DatasetStageOptions dataset_options_from_config(const Config& cfg);

/// RobustStageOptions from flat config keys: perturb=, realizations=,
/// yield_threshold=, antithetic=.
RobustStageOptions robust_options_from_config(const Config& cfg);

/// RobustTrainStageOptions from flat config keys: perturb= (shared with
/// the robust eval stage), train_realizations=, antithetic= (shared;
/// train_antithetic= overrides training independently),
/// train_resample=batch|epoch, train_warmup=, train_lr_scale=,
/// train_crosstalk=.
RobustTrainStageOptions robust_train_options_from_config(const Config& cfg);

/// Every config key understood by spec_from_config/options_from_config
/// (for Config::strict; callers append their own driver-level keys).
std::vector<std::string> config_keys();

/// Everything build_pipeline needs beyond the spec and recipe options.
struct BuildContext {
  /// Required when the spec contains Publish.
  std::shared_ptr<serve::ModelRegistry> registry;
  std::string publish_name = "pipeline";
  /// When non-empty, PublishStage also saves each published model here.
  std::string publish_dir;
  /// Used when the spec contains a Dataset stage.
  DatasetStageOptions data;
  /// Used when the spec contains a Robust stage.
  RobustStageOptions robust;
  /// Used when the spec contains a RobustTrain stage.
  RobustTrainStageOptions robust_train;
};

/// Instantiates the stage objects for a spec. Throws ConfigError when the
/// spec needs a registry and the context has none.
Pipeline build_pipeline(const PipelineSpec& spec,
                        const train::RecipeOptions& options,
                        const BuildContext& context = {});

}  // namespace odonn::pipeline

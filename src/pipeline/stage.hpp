// Stage — one unit of the experiment workflow (paper §III: dense training,
// SLR sparsification, 2*pi smoothing, evaluation, reporting, publishing).
//
// A stage declares the artifact keys it consumes and produces (see
// artifact_store.hpp for the dotted-key convention) so a Pipeline can
// validate a whole sequence before any compute runs, and implements run()
// against the shared ArtifactStore. Stages hold their own options; they
// must not keep state across run() calls so a pipeline can be re-run on a
// fresh store.
#pragma once

#include <string>
#include <vector>

#include "pipeline/artifact_store.hpp"

namespace odonn::pipeline {

class Stage {
 public:
  virtual ~Stage() = default;

  /// Short identifier used in logs, timings and checkpoint paths.
  virtual std::string name() const = 0;

  /// Artifact keys that must exist in the store before run().
  virtual std::vector<std::string> inputs() const { return {}; }

  /// Artifact keys this stage guarantees to have produced after run().
  /// (A stage may additionally produce optional artifacts it does not
  /// declare, e.g. EvaluateStage's smoothed-model metrics.)
  virtual std::vector<std::string> outputs() const { return {}; }

  /// True when run() has effects outside the ArtifactStore (registry
  /// publishes, file exports). Checkpoint resume replays such stages
  /// instead of skipping them — their effects are not in the checkpoint.
  virtual bool has_side_effects() const { return false; }

  virtual void run(ArtifactStore& store) = 0;
};

}  // namespace odonn::pipeline

#include "pipeline/executor.hpp"

#include <chrono>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace odonn::pipeline {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

ParallelTableRunner::ParallelTableRunner(ExecutorOptions options)
    : options_(options) {
  ODONN_CHECK(options_.jobs >= 1, "executor: jobs must be >= 1");
}

std::vector<JobResult> ParallelTableRunner::run(
    std::vector<PipelineJob> jobs) const {
  std::vector<JobResult> results(jobs.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    tasks.push_back([&jobs, &results, i] {
      PipelineJob& job = jobs[i];
      JobResult& result = results[i];
      result.label = job.label;
      const Clock::time_point t0 = Clock::now();
      if (job.setup) job.setup(result.store);
      result.timings = job.pipeline.run(result.store, job.run_options);
      result.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    });
  }
  parallel_tasks(std::move(tasks), options_.jobs, options_.inner_threads);
  return results;
}

}  // namespace odonn::pipeline

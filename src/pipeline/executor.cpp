#include "pipeline/executor.hpp"

#include <chrono>
#include <memory>
#include "common/thread_annotations.hpp"
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "obs/obs.hpp"

namespace odonn::pipeline {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

ParallelTableRunner::ParallelTableRunner(ExecutorOptions options)
    : options_(std::move(options)) {
  ODONN_CHECK(options_.jobs >= 1, "executor: jobs must be >= 1");
}

std::vector<JobResult> ParallelTableRunner::run(
    std::vector<PipelineJob> jobs) const {
  std::vector<JobResult> results(jobs.size());
  // One mutex serializes every progress callback across all concurrent
  // jobs, so the sink itself need not be thread-safe and events never
  // interleave inside it.
  const auto progress_mutex = std::make_shared<Mutex>();
  std::vector<std::function<void()>> tasks;
  tasks.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    PipelineJob& job = jobs[i];
    // Attribute stage trace spans to this job unless the caller already
    // chose a label (observability only — never feeds back into the run).
    if (job.run_options.trace_label.empty()) {
      job.run_options.trace_label = job.label;
    }
    if (options_.progress) {
      // Streaming progress rides the pipeline observer slot: stage events
      // escape the job live instead of waiting for the table to return.
      PipelineObserver observer;
      observer.on_stage_start = [this, progress_mutex, &jobs, i](
                                    std::size_t index, const Stage& stage) {
        StageProgressEvent event;
        event.job = i;
        event.label = jobs[i].label;
        event.stage = index;
        event.stage_name = stage.name();
        event.finished = false;
        ODONN_OBS_COUNT("pipeline.progress_events", 1);
        MutexLock lock(*progress_mutex);
        options_.progress(event);
      };
      observer.on_stage_end = [this, progress_mutex, &jobs, i](
                                  const StageTiming& timing) {
        StageProgressEvent event;
        event.job = i;
        event.label = jobs[i].label;
        event.stage = timing.index;
        event.stage_name = timing.name;
        event.finished = true;
        event.seconds = timing.seconds;
        event.skipped = timing.skipped;
        ODONN_OBS_COUNT("pipeline.progress_events", 1);
        MutexLock lock(*progress_mutex);
        options_.progress(event);
      };
      job.pipeline.set_observer(std::move(observer));
    }
    tasks.push_back([&jobs, &results, i] {
      PipelineJob& task_job = jobs[i];
      JobResult& result = results[i];
      result.label = task_job.label;
      ODONN_OBS_SPAN(job_span, "job:" + task_job.label);
      const Clock::time_point t0 = Clock::now();
      if (task_job.setup) task_job.setup(result.store);
      result.timings = task_job.pipeline.run(result.store,
                                             task_job.run_options);
      result.seconds =
          std::chrono::duration<double>(Clock::now() - t0).count();
      ODONN_OBS_COUNT("pipeline.jobs_run", 1);
    });
  }
  parallel_tasks(std::move(tasks), options_.jobs, options_.inner_threads);
  return results;
}

}  // namespace odonn::pipeline

// Pipeline-backed definitions of train::run_recipe / run_recipes /
// run_table.
//
// They live here (not in src/train/) so the dependency arrow stays
// one-way: pipeline composes train's Trainer/options, train never depends
// on pipeline or serve headers. The declarations remain in
// train/recipe.hpp — callers are unaffected.
//
// run_recipes executes the requested recipes through a
// pipeline::ParallelTableRunner: independent pipelines, each over its own
// ArtifactStore sharing only the immutable datasets, optionally jobs= at
// a time on the shared pool. Recipes are deterministic given their
// options, so the rows are bitwise identical to the sequential path for
// any jobs=/thread-count combination.
#include <chrono>
#include <filesystem>

#include "common/error.hpp"
#include "common/log.hpp"
#include "pipeline/executor.hpp"
#include "pipeline/parser.hpp"
#include "train/recipe.hpp"

namespace odonn::train {

namespace {

namespace pl = odonn::pipeline;

RecipeResult result_from_store(const std::string& name,
                               const pl::ArtifactStore& store) {
  RecipeResult result;
  result.name = name;
  result.accuracy = store.metric(pl::artifacts::kAccuracy);
  result.roughness_before = store.metric(pl::artifacts::kRoughnessBefore);
  result.roughness_after = store.metric(pl::artifacts::kRoughnessAfter);
  result.deployed_accuracy = store.metric(pl::artifacts::kDeployedAccuracy);
  result.deployed_accuracy_after_2pi =
      store.metric(pl::artifacts::kDeployedAccuracyAfter2Pi);
  result.sparsity = store.metric(pl::artifacts::kSparsity);
  result.trained_phases = store.model(pl::artifacts::kMainModel).phases();
  result.smoothed_phases = store.model(pl::artifacts::kSmoothedModel).phases();
  return result;
}

}  // namespace

RecipeResult run_recipe(RecipeKind kind, const RecipeOptions& options,
                        const data::Dataset& train,
                        const data::Dataset& test) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point t0 = Clock::now();
  pl::ArtifactStore store;
  store.set_data(&train, &test);
  pl::Pipeline pipe = pl::build_pipeline(pl::spec_for_recipe(kind), options);
  pipe.run(store);

  RecipeResult result = result_from_store(recipe_name(kind), store);
  result.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  if (options.verbose) {
    log::info() << result.name << ": acc " << result.accuracy << " R_before "
                << result.roughness_before << " R_after "
                << result.roughness_after;
  }
  return result;
}

std::vector<RecipeResult> run_recipes(const std::vector<RecipeRequest>& requests,
                                      const data::Dataset& train,
                                      const data::Dataset& test,
                                      const TableRunOptions& table) {
  std::vector<pl::PipelineJob> jobs;
  jobs.reserve(requests.size());
  for (const RecipeRequest& request : requests) {
    pl::PipelineJob job;
    job.label = request.label.empty() ? recipe_name(request.kind)
                                      : request.label;
    if (!table.checkpoint_dir.empty()) {
      // Labels name the per-recipe checkpoint subdirectories: a duplicate
      // would interleave two jobs' checkpoints in one directory (and let
      // resume= fast-forward one request from the other's artifacts).
      for (const pl::PipelineJob& earlier : jobs) {
        if (earlier.label == job.label) {
          throw ConfigError(
              "run_recipes: duplicate recipe label '" + job.label +
              "' with checkpoint_dir set; give each request a unique label");
        }
      }
    }
    job.pipeline = pl::build_pipeline(pl::spec_for_recipe(request.kind),
                                      request.options);
    if (!table.checkpoint_dir.empty()) {
      job.run_options.checkpoint_dir =
          (std::filesystem::path(table.checkpoint_dir) / job.label).string();
      job.run_options.resume = table.resume;
    }
    job.setup = [&train, &test](pl::ArtifactStore& store) {
      store.set_data(&train, &test);
    };
    jobs.push_back(std::move(job));
  }

  pl::ExecutorOptions executor;
  executor.jobs = table.jobs;
  executor.inner_threads = table.inner_threads;
  if (table.progress) {
    // Adapt the train-layer sink to the executor's event type (the two
    // structs mirror each other; train must not include pipeline headers).
    executor.progress = [&table](const pl::StageProgressEvent& event) {
      TableProgress progress;
      progress.label = event.label;
      progress.stage = event.stage;
      progress.stage_name = event.stage_name;
      progress.finished = event.finished;
      progress.seconds = event.seconds;
      progress.skipped = event.skipped;
      table.progress(progress);
    };
  }
  auto job_results = pl::ParallelTableRunner(executor).run(std::move(jobs));

  std::vector<RecipeResult> rows;
  rows.reserve(job_results.size());
  for (std::size_t i = 0; i < job_results.size(); ++i) {
    RecipeResult row = result_from_store(job_results[i].label,
                                         job_results[i].store);
    row.seconds = job_results[i].seconds;
    if (requests[i].options.verbose) {
      log::info() << row.name << ": acc " << row.accuracy << " R_before "
                  << row.roughness_before << " R_after "
                  << row.roughness_after;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<RecipeResult> run_table(const RecipeOptions& options,
                                    const data::Dataset& train,
                                    const data::Dataset& test,
                                    const TableRunOptions& table) {
  std::vector<RecipeRequest> requests;
  for (RecipeKind kind : {RecipeKind::Baseline, RecipeKind::OursA,
                          RecipeKind::OursB, RecipeKind::OursC,
                          RecipeKind::OursD}) {
    requests.push_back(RecipeRequest{kind, options, ""});
  }
  return run_recipes(requests, train, test, table);
}

}  // namespace odonn::train

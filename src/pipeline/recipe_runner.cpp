// Pipeline-backed definitions of train::run_recipe / train::run_table.
//
// They live here (not in src/train/) so the dependency arrow stays
// one-way: pipeline composes train's Trainer/options, train never depends
// on pipeline or serve headers. The declarations remain in
// train/recipe.hpp — callers are unaffected — and the monolithic parity
// oracle stays in src/train/recipe.cpp.
#include "common/log.hpp"
#include "pipeline/parser.hpp"
#include "train/recipe.hpp"

namespace odonn::train {

RecipeResult run_recipe(RecipeKind kind, const RecipeOptions& options,
                        const data::Dataset& train,
                        const data::Dataset& test) {
  namespace pl = odonn::pipeline;
  pl::ArtifactStore store;
  store.set_data(&train, &test);
  pl::Pipeline pipe = pl::build_pipeline(pl::spec_for_recipe(kind), options);
  pipe.run(store);

  RecipeResult result;
  result.name = recipe_name(kind);
  result.accuracy = store.metric(pl::artifacts::kAccuracy);
  result.roughness_before = store.metric(pl::artifacts::kRoughnessBefore);
  result.roughness_after = store.metric(pl::artifacts::kRoughnessAfter);
  result.deployed_accuracy = store.metric(pl::artifacts::kDeployedAccuracy);
  result.deployed_accuracy_after_2pi =
      store.metric(pl::artifacts::kDeployedAccuracyAfter2Pi);
  result.sparsity = store.metric(pl::artifacts::kSparsity);
  result.trained_phases = store.model(pl::artifacts::kMainModel).phases();
  result.smoothed_phases = store.model(pl::artifacts::kSmoothedModel).phases();

  if (options.verbose) {
    log::info() << result.name << ": acc " << result.accuracy << " R_before "
                << result.roughness_before << " R_after "
                << result.roughness_after;
  }
  return result;
}

std::vector<RecipeResult> run_table(const RecipeOptions& options,
                                    const data::Dataset& train,
                                    const data::Dataset& test) {
  std::vector<RecipeResult> rows;
  for (RecipeKind kind : {RecipeKind::Baseline, RecipeKind::OursA,
                          RecipeKind::OursB, RecipeKind::OursC,
                          RecipeKind::OursD}) {
    rows.push_back(run_recipe(kind, options, train, test));
  }
  return rows;
}

}  // namespace odonn::train

#include "pipeline/artifact_store.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "donn/serialize.hpp"

namespace odonn::pipeline {

namespace fs = std::filesystem;

void ArtifactStore::set_data(const data::Dataset* train,
                             const data::Dataset* test) {
  owned_train_.reset();
  owned_test_.reset();
  train_ = train;
  test_ = test;
}

void ArtifactStore::put_data(data::Dataset train, data::Dataset test) {
  owned_train_ = std::make_unique<data::Dataset>(std::move(train));
  owned_test_ = std::make_unique<data::Dataset>(std::move(test));
  train_ = owned_train_.get();
  test_ = owned_test_.get();
}

const data::Dataset& ArtifactStore::train() const {
  ODONN_CHECK(train_ != nullptr, "artifact store: no train dataset attached");
  return *train_;
}

const data::Dataset& ArtifactStore::test() const {
  ODONN_CHECK(test_ != nullptr, "artifact store: no test dataset attached");
  return *test_;
}

void ArtifactStore::put_model(const std::string& name, donn::DonnModel model) {
  ODONN_CHECK(!name.empty(), "artifact store: model name must be non-empty");
  models_.insert_or_assign(name, std::move(model));
}

bool ArtifactStore::has_model(const std::string& name) const {
  return models_.count(name) > 0;
}

const donn::DonnModel& ArtifactStore::model(const std::string& name) const {
  auto it = models_.find(name);
  if (it == models_.end()) {
    throw ConfigError("artifact store: no model '" + name + "'");
  }
  return it->second;
}

donn::DonnModel& ArtifactStore::mutable_model(const std::string& name) {
  auto it = models_.find(name);
  if (it == models_.end()) {
    throw ConfigError("artifact store: no model '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> ArtifactStore::model_names() const {
  std::vector<std::string> out;
  out.reserve(models_.size());
  for (const auto& [name, _] : models_) out.push_back(name);
  return out;
}

void ArtifactStore::put_metric(const std::string& name, double value) {
  ODONN_CHECK(!name.empty(), "artifact store: metric name must be non-empty");
  metrics_[name] = value;
}

bool ArtifactStore::has_metric(const std::string& name) const {
  return metrics_.count(name) > 0;
}

double ArtifactStore::metric(const std::string& name) const {
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    throw ConfigError("artifact store: no metric '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> ArtifactStore::metric_names() const {
  std::vector<std::string> out;
  out.reserve(metrics_.size());
  for (const auto& [name, _] : metrics_) out.push_back(name);
  return out;
}

bool ArtifactStore::has_key(const std::string& key) const {
  const auto dot = key.find('.');
  if (dot == std::string::npos) return false;
  const std::string kind = key.substr(0, dot);
  const std::string name = key.substr(dot + 1);
  if (kind == "data") {
    return (name == "train" && train_ != nullptr) ||
           (name == "test" && test_ != nullptr);
  }
  if (kind == "model") return has_model(name);
  if (kind == "metric") return has_metric(name);
  return false;
}

void ArtifactStore::save_checkpoint(const std::string& dir) const {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    throw IoError("cannot create checkpoint directory " + dir + ": " +
                  ec.message());
  }
  for (const auto& [name, model] : models_) {
    donn::save_model(model, (fs::path(dir) / (name + ".odnn")).string());
  }
  const std::string metrics_path = (fs::path(dir) / "metrics.txt").string();
  std::ofstream out(metrics_path);
  if (!out) throw IoError("cannot create " + metrics_path);
  for (const auto& [name, value] : metrics_) {
    // %.17g round-trips IEEE doubles exactly, so resumed pipelines report
    // bit-identical metrics.
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out << name << ' ' << buf << '\n';
  }
  if (!out) throw IoError("failed writing " + metrics_path);
}

void ArtifactStore::load_checkpoint(const std::string& dir) {
  if (!fs::is_directory(dir)) {
    throw IoError("checkpoint directory not found: " + dir);
  }
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".odnn") continue;
    put_model(entry.path().stem().string(),
              donn::load_model(entry.path().string()));
  }
  const std::string metrics_path = (fs::path(dir) / "metrics.txt").string();
  std::ifstream in(metrics_path);
  if (!in) throw IoError("checkpoint missing " + metrics_path);
  std::string name;
  double value = 0.0;
  while (in >> name >> value) put_metric(name, value);
  if (!in.eof()) throw IoError("malformed metrics in " + metrics_path);
}

}  // namespace odonn::pipeline

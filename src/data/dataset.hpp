// In-memory labeled image dataset. Images are grayscale matrices in [0, 1];
// labels are class indices. Real IDX files (MNIST and friends) load through
// data/idx.hpp; synthetic stand-ins come from data/synthetic.hpp.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "tensor/matrix.hpp"

namespace odonn::data {

class Dataset {
 public:
  Dataset() = default;
  Dataset(std::vector<MatrixD> images, std::vector<std::size_t> labels,
          std::size_t num_classes);

  std::size_t size() const { return images_.size(); }
  bool empty() const { return images_.empty(); }
  std::size_t num_classes() const { return num_classes_; }

  const MatrixD& image(std::size_t i) const;
  std::size_t label(std::size_t i) const;

  /// Contiguous slice [begin, begin+count).
  Dataset subset(std::size_t begin, std::size_t count) const;

  /// Deterministic shuffle + split into (train, test) with `train_fraction`
  /// of the samples in train.
  std::pair<Dataset, Dataset> split(double train_fraction, Rng& rng) const;

  /// Per-class sample counts (used by tests to check balance).
  std::vector<std::size_t> class_histogram() const;

 private:
  std::vector<MatrixD> images_;
  std::vector<std::size_t> labels_;
  std::size_t num_classes_ = 0;
};

}  // namespace odonn::data

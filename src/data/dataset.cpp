#include "data/dataset.hpp"

#include <numeric>

#include "common/error.hpp"

namespace odonn::data {

Dataset::Dataset(std::vector<MatrixD> images, std::vector<std::size_t> labels,
                 std::size_t num_classes)
    : images_(std::move(images)),
      labels_(std::move(labels)),
      num_classes_(num_classes) {
  ODONN_CHECK(images_.size() == labels_.size(),
              "dataset: image/label count mismatch");
  ODONN_CHECK(num_classes_ >= 1, "dataset: need at least one class");
  for (std::size_t lbl : labels_) {
    ODONN_CHECK(lbl < num_classes_, "dataset: label out of range");
  }
  if (!images_.empty()) {
    const std::size_t rows = images_.front().rows();
    const std::size_t cols = images_.front().cols();
    for (const auto& img : images_) {
      ODONN_CHECK_SHAPE(img.rows() == rows && img.cols() == cols,
                        "dataset: inconsistent image shapes");
    }
  }
}

const MatrixD& Dataset::image(std::size_t i) const {
  ODONN_CHECK(i < images_.size(), "dataset: index out of range");
  return images_[i];
}

std::size_t Dataset::label(std::size_t i) const {
  ODONN_CHECK(i < labels_.size(), "dataset: index out of range");
  return labels_[i];
}

Dataset Dataset::subset(std::size_t begin, std::size_t count) const {
  ODONN_CHECK(begin + count <= images_.size(), "dataset: subset out of range");
  std::vector<MatrixD> images(images_.begin() + static_cast<std::ptrdiff_t>(begin),
                              images_.begin() + static_cast<std::ptrdiff_t>(begin + count));
  std::vector<std::size_t> labels(labels_.begin() + static_cast<std::ptrdiff_t>(begin),
                                  labels_.begin() + static_cast<std::ptrdiff_t>(begin + count));
  return Dataset(std::move(images), std::move(labels), num_classes_);
}

std::pair<Dataset, Dataset> Dataset::split(double train_fraction,
                                           Rng& rng) const {
  ODONN_CHECK(train_fraction >= 0.0 && train_fraction <= 1.0,
              "dataset: train_fraction must be in [0, 1]");
  std::vector<std::size_t> order(size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  const std::size_t train_count = static_cast<std::size_t>(
      train_fraction * static_cast<double>(size()));

  std::vector<MatrixD> train_images, test_images;
  std::vector<std::size_t> train_labels, test_labels;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const std::size_t idx = order[i];
    if (i < train_count) {
      train_images.push_back(images_[idx]);
      train_labels.push_back(labels_[idx]);
    } else {
      test_images.push_back(images_[idx]);
      test_labels.push_back(labels_[idx]);
    }
  }
  return {Dataset(std::move(train_images), std::move(train_labels), num_classes_),
          Dataset(std::move(test_images), std::move(test_labels), num_classes_)};
}

std::vector<std::size_t> Dataset::class_histogram() const {
  std::vector<std::size_t> hist(num_classes_, 0);
  for (std::size_t lbl : labels_) ++hist[lbl];
  return hist;
}

}  // namespace odonn::data

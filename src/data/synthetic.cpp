#include "data/synthetic.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/error.hpp"

namespace odonn::data {

namespace {

constexpr double kPi = M_PI;

/// Point in glyph coordinates: the unit square [0,1]^2, origin top-left.
struct Pt {
  double x;
  double y;
};

/// Affine jitter applied to glyph control points around the glyph center.
struct Jitter {
  double angle = 0.0;
  double scale = 1.0;
  double dx = 0.0;
  double dy = 0.0;
  double thickness = 1.0;

  Pt apply(const Pt& p) const {
    const double cx = p.x - 0.5;
    const double cy = p.y - 0.5;
    const double ca = std::cos(angle);
    const double sa = std::sin(angle);
    return {0.5 + scale * (ca * cx - sa * cy) + dx,
            0.5 + scale * (sa * cx + ca * cy) + dy};
  }
};

/// Grayscale canvas with soft-edged stroke stamping.
class Canvas {
 public:
  explicit Canvas(std::size_t n) : image_(n, n, 0.0), n_(n) {}

  MatrixD take() { return std::move(image_); }

  /// Stamps a disc of radius `r` (unit coordinates) at p, soft 0.7px edge.
  void stamp(const Pt& p, double r) {
    const double size = static_cast<double>(n_);
    const double px = p.x * size;
    const double py = p.y * size;
    const double pr = r * size;
    const double aa = 0.7;
    const long lo_r = static_cast<long>(std::floor(py - pr - 1.0));
    const long hi_r = static_cast<long>(std::ceil(py + pr + 1.0));
    const long lo_c = static_cast<long>(std::floor(px - pr - 1.0));
    const long hi_c = static_cast<long>(std::ceil(px + pr + 1.0));
    for (long rr = std::max(0L, lo_r);
         rr <= std::min(static_cast<long>(n_) - 1, hi_r); ++rr) {
      for (long cc = std::max(0L, lo_c);
           cc <= std::min(static_cast<long>(n_) - 1, hi_c); ++cc) {
        const double d = std::hypot(static_cast<double>(cc) + 0.5 - px,
                                    static_cast<double>(rr) + 0.5 - py);
        double v = 0.0;
        if (d <= pr) {
          v = 1.0;
        } else if (d < pr + aa) {
          v = 1.0 - (d - pr) / aa;
        }
        auto& cell = image_(static_cast<std::size_t>(rr),
                            static_cast<std::size_t>(cc));
        cell = std::max(cell, v);
      }
    }
  }

  void line(const Pt& a, const Pt& b, double thickness) {
    const double len = std::hypot(b.x - a.x, b.y - a.y);
    const std::size_t steps =
        std::max<std::size_t>(2, static_cast<std::size_t>(
                                     len * static_cast<double>(n_) * 2.0));
    for (std::size_t i = 0; i <= steps; ++i) {
      const double t = static_cast<double>(i) / static_cast<double>(steps);
      stamp({a.x + t * (b.x - a.x), a.y + t * (b.y - a.y)}, thickness / 2.0);
    }
  }

  /// Elliptical arc centered at c with radii (rx, ry), angles in radians
  /// (0 = +x axis, increasing clockwise in image coordinates).
  void arc(const Pt& c, double rx, double ry, double a0, double a1,
           double thickness, const Jitter& jit) {
    const std::size_t steps = 96;
    for (std::size_t i = 0; i <= steps; ++i) {
      const double t = a0 + (a1 - a0) * static_cast<double>(i) /
                                static_cast<double>(steps);
      const Pt p = jit.apply({c.x + rx * std::cos(t), c.y + ry * std::sin(t)});
      stamp(p, thickness / 2.0);
    }
  }

  /// Quadratic Bezier through control points (jitter already applied by
  /// callers passing transformed points).
  void bezier(const Pt& p0, const Pt& p1, const Pt& p2, double thickness) {
    const std::size_t steps = 64;
    for (std::size_t i = 0; i <= steps; ++i) {
      const double t = static_cast<double>(i) / static_cast<double>(steps);
      const double u = 1.0 - t;
      stamp({u * u * p0.x + 2.0 * u * t * p1.x + t * t * p2.x,
             u * u * p0.y + 2.0 * u * t * p1.y + t * t * p2.y},
            thickness / 2.0);
    }
  }

  /// Fills the convex/concave polygon (even-odd scanline).
  void fill_polygon(const std::vector<Pt>& pts) {
    if (pts.size() < 3) return;
    const double size = static_cast<double>(n_);
    for (std::size_t row = 0; row < n_; ++row) {
      const double y = (static_cast<double>(row) + 0.5) / size;
      std::vector<double> xs;
      for (std::size_t i = 0; i < pts.size(); ++i) {
        const Pt& a = pts[i];
        const Pt& b = pts[(i + 1) % pts.size()];
        if ((a.y <= y && b.y > y) || (b.y <= y && a.y > y)) {
          xs.push_back(a.x + (y - a.y) / (b.y - a.y) * (b.x - a.x));
        }
      }
      std::sort(xs.begin(), xs.end());
      for (std::size_t i = 0; i + 1 < xs.size(); i += 2) {
        const long c0 = std::max(0L, static_cast<long>(std::ceil(xs[i] * size - 0.5)));
        const long c1 = std::min(static_cast<long>(n_) - 1,
                                 static_cast<long>(std::floor(xs[i + 1] * size - 0.5)));
        for (long c = c0; c <= c1; ++c) {
          image_(row, static_cast<std::size_t>(c)) = 1.0;
        }
      }
    }
  }

  void fill_polygon(const std::vector<Pt>& pts, const Jitter& jit) {
    std::vector<Pt> transformed;
    transformed.reserve(pts.size());
    for (const auto& p : pts) transformed.push_back(jit.apply(p));
    fill_polygon(transformed);
  }

 private:
  MatrixD image_;
  std::size_t n_;
};

// ---------------------------------------------------------------------------
// Glyph programs. All coordinates in [0,1]^2 with a ~0.12 margin.
// ---------------------------------------------------------------------------

void draw_digit(Canvas& cv, std::size_t cls, const Jitter& j, double th) {
  auto L = [&](Pt a, Pt b) { cv.line(j.apply(a), j.apply(b), th); };
  auto B = [&](Pt a, Pt c, Pt b) { cv.bezier(j.apply(a), j.apply(c), j.apply(b), th); };
  switch (cls) {
    case 0:
      cv.arc({0.5, 0.5}, 0.22, 0.32, 0.0, 2.0 * kPi, th, j);
      break;
    case 1:
      L({0.42, 0.28}, {0.55, 0.16});
      L({0.55, 0.16}, {0.55, 0.84});
      break;
    case 2:
      cv.arc({0.5, 0.34}, 0.20, 0.18, -kPi, 0.12, th, j);
      L({0.68, 0.40}, {0.32, 0.82});
      L({0.32, 0.82}, {0.72, 0.82});
      break;
    case 3:
      cv.arc({0.48, 0.33}, 0.18, 0.17, -kPi * 0.9, kPi * 0.5, th, j);
      cv.arc({0.48, 0.66}, 0.20, 0.18, -kPi * 0.5, kPi * 0.9, th, j);
      break;
    case 4:
      L({0.62, 0.16}, {0.30, 0.62});
      L({0.30, 0.62}, {0.74, 0.62});
      L({0.62, 0.16}, {0.62, 0.84});
      break;
    case 5:
      L({0.68, 0.18}, {0.36, 0.18});
      L({0.36, 0.18}, {0.34, 0.48});
      cv.arc({0.50, 0.64}, 0.19, 0.19, -kPi * 0.55, kPi * 0.75, th, j);
      break;
    case 6:
      B({0.62, 0.16}, {0.34, 0.30}, {0.34, 0.62});
      cv.arc({0.51, 0.65}, 0.17, 0.17, 0.0, 2.0 * kPi, th, j);
      break;
    case 7:
      L({0.30, 0.18}, {0.70, 0.18});
      L({0.70, 0.18}, {0.42, 0.84});
      break;
    case 8:
      cv.arc({0.5, 0.33}, 0.16, 0.15, 0.0, 2.0 * kPi, th, j);
      cv.arc({0.5, 0.66}, 0.19, 0.17, 0.0, 2.0 * kPi, th, j);
      break;
    case 9:
      cv.arc({0.50, 0.35}, 0.17, 0.17, 0.0, 2.0 * kPi, th, j);
      B({0.67, 0.38}, {0.66, 0.66}, {0.46, 0.84});
      break;
    default:
      throw ConfigError("digit class out of range");
  }
}

void draw_fashion(Canvas& cv, std::size_t cls, const Jitter& j, double th) {
  auto P = [&](std::initializer_list<Pt> pts) {
    cv.fill_polygon(std::vector<Pt>(pts), j);
  };
  auto L = [&](Pt a, Pt b) { cv.line(j.apply(a), j.apply(b), th); };
  switch (cls) {
    case 0:  // t-shirt: torso + short sleeves
      P({{0.36, 0.30}, {0.64, 0.30}, {0.62, 0.78}, {0.38, 0.78}});
      P({{0.22, 0.30}, {0.40, 0.26}, {0.42, 0.44}, {0.26, 0.46}});
      P({{0.60, 0.26}, {0.78, 0.30}, {0.74, 0.46}, {0.58, 0.44}});
      break;
    case 1:  // trouser: two legs from a waistband
      P({{0.36, 0.20}, {0.64, 0.20}, {0.64, 0.30}, {0.36, 0.30}});
      P({{0.36, 0.30}, {0.49, 0.30}, {0.47, 0.84}, {0.36, 0.84}});
      P({{0.51, 0.30}, {0.64, 0.30}, {0.64, 0.84}, {0.53, 0.84}});
      break;
    case 2:  // pullover: torso + long sleeves
      P({{0.36, 0.28}, {0.64, 0.28}, {0.63, 0.80}, {0.37, 0.80}});
      P({{0.20, 0.30}, {0.38, 0.26}, {0.38, 0.72}, {0.24, 0.74}});
      P({{0.62, 0.26}, {0.80, 0.30}, {0.76, 0.74}, {0.62, 0.72}});
      break;
    case 3:  // dress: fitted top flaring out
      P({{0.42, 0.18}, {0.58, 0.18}, {0.56, 0.42}, {0.72, 0.84},
         {0.28, 0.84}, {0.44, 0.42}});
      break;
    case 4:  // coat: long body, open front line
      P({{0.34, 0.24}, {0.66, 0.24}, {0.68, 0.84}, {0.32, 0.84}});
      L({0.50, 0.26}, {0.50, 0.82});
      P({{0.20, 0.26}, {0.36, 0.24}, {0.34, 0.66}, {0.22, 0.66}});
      P({{0.64, 0.24}, {0.80, 0.26}, {0.78, 0.66}, {0.66, 0.66}});
      break;
    case 5:  // sandal: sole + two straps
      P({{0.20, 0.68}, {0.80, 0.68}, {0.82, 0.78}, {0.18, 0.78}});
      L({0.30, 0.68}, {0.44, 0.48});
      L({0.44, 0.48}, {0.58, 0.68});
      L({0.62, 0.52}, {0.72, 0.68});
      break;
    case 6:  // shirt: torso + collar V + buttons line
      P({{0.36, 0.26}, {0.64, 0.26}, {0.63, 0.80}, {0.37, 0.80}});
      L({0.44, 0.26}, {0.50, 0.36});
      L({0.56, 0.26}, {0.50, 0.36});
      L({0.50, 0.38}, {0.50, 0.78});
      break;
    case 7:  // sneaker: low wedge
      P({{0.18, 0.62}, {0.52, 0.56}, {0.66, 0.44}, {0.82, 0.60},
         {0.82, 0.74}, {0.18, 0.74}});
      break;
    case 8:  // bag: body + handle
      P({{0.28, 0.44}, {0.72, 0.44}, {0.74, 0.80}, {0.26, 0.80}});
      cv.arc({0.5, 0.42}, 0.14, 0.16, -kPi, 0.0, th, j);
      break;
    case 9:  // ankle boot: shaft + foot
      P({{0.40, 0.22}, {0.58, 0.22}, {0.58, 0.56}, {0.78, 0.64},
         {0.78, 0.78}, {0.40, 0.78}});
      break;
    default:
      throw ConfigError("fashion class out of range");
  }
}

void draw_kana(Canvas& cv, std::size_t cls, const Jitter& j, double th) {
  auto L = [&](Pt a, Pt b) { cv.line(j.apply(a), j.apply(b), th); };
  auto B = [&](Pt a, Pt c, Pt b) { cv.bezier(j.apply(a), j.apply(c), j.apply(b), th); };
  switch (cls) {
    case 0:  // o-like: cross + sweeping loop
      L({0.50, 0.16}, {0.50, 0.60});
      L({0.28, 0.34}, {0.72, 0.34});
      B({0.50, 0.60}, {0.24, 0.86}, {0.40, 0.62});
      B({0.50, 0.60}, {0.80, 0.70}, {0.58, 0.86});
      break;
    case 1:  // ki-like: two bars + curved tail
      L({0.30, 0.28}, {0.72, 0.22});
      L({0.28, 0.44}, {0.74, 0.38});
      L({0.54, 0.14}, {0.48, 0.66});
      B({0.48, 0.66}, {0.44, 0.88}, {0.66, 0.80});
      break;
    case 2:  // su-like: bar + loop with long tail
      L({0.26, 0.30}, {0.76, 0.30});
      B({0.56, 0.30}, {0.70, 0.52}, {0.48, 0.56});
      B({0.48, 0.56}, {0.30, 0.60}, {0.52, 0.40});
      B({0.52, 0.46}, {0.54, 0.72}, {0.40, 0.88});
      break;
    case 3:  // tsu-like: three dots + sweeping arc
      cv.arc({0.5, 0.42}, 0.30, 0.26, 0.15 * kPi, 0.85 * kPi, th, j);
      L({0.28, 0.26}, {0.32, 0.36});
      L({0.46, 0.20}, {0.48, 0.32});
      L({0.64, 0.22}, {0.62, 0.34});
      break;
    case 4:  // na-like: cross + hook + dot
      L({0.34, 0.24}, {0.34, 0.62});
      L({0.20, 0.40}, {0.50, 0.34});
      B({0.62, 0.28}, {0.58, 0.60}, {0.46, 0.80});
      L({0.66, 0.56}, {0.70, 0.70});
      break;
    case 5:  // ha-like: vertical + branching curve
      L({0.32, 0.20}, {0.32, 0.80});
      B({0.32, 0.48}, {0.56, 0.30}, {0.70, 0.22});
      B({0.32, 0.52}, {0.60, 0.56}, {0.68, 0.84});
      break;
    case 6:  // ma-like: two bars + loop tail
      L({0.26, 0.28}, {0.74, 0.28});
      L({0.30, 0.46}, {0.70, 0.46});
      L({0.52, 0.16}, {0.52, 0.64});
      cv.arc({0.48, 0.72}, 0.10, 0.09, 0.0, 2.0 * kPi, th, j);
      break;
    case 7:  // ya-like: slanted loop + crossing stroke
      B({0.30, 0.36}, {0.54, 0.14}, {0.70, 0.34});
      B({0.70, 0.34}, {0.60, 0.52}, {0.40, 0.50});
      L({0.46, 0.22}, {0.56, 0.86});
      break;
    case 8:  // re-like: vertical + angular sweep
      L({0.34, 0.18}, {0.34, 0.82});
      L({0.34, 0.40}, {0.62, 0.24});
      B({0.62, 0.24}, {0.66, 0.60}, {0.74, 0.82});
      break;
    case 9:  // wo-like: bar + zigzag + arc
      L({0.28, 0.26}, {0.72, 0.26});
      L({0.52, 0.26}, {0.36, 0.52});
      L({0.36, 0.52}, {0.62, 0.50});
      B({0.62, 0.50}, {0.56, 0.78}, {0.36, 0.84});
      break;
    default:
      throw ConfigError("kana class out of range");
  }
}

void draw_letter(Canvas& cv, std::size_t cls, const Jitter& j, double th) {
  auto L = [&](Pt a, Pt b) { cv.line(j.apply(a), j.apply(b), th); };
  switch (cls) {
    case 0:  // A
      L({0.30, 0.84}, {0.50, 0.16});
      L({0.50, 0.16}, {0.70, 0.84});
      L({0.38, 0.58}, {0.62, 0.58});
      break;
    case 1:  // B
      L({0.34, 0.16}, {0.34, 0.84});
      cv.arc({0.36, 0.33}, 0.18, 0.17, -kPi / 2.0, kPi / 2.0, th, j);
      cv.arc({0.36, 0.67}, 0.21, 0.17, -kPi / 2.0, kPi / 2.0, th, j);
      break;
    case 2:  // C
      cv.arc({0.54, 0.50}, 0.24, 0.32, kPi * 0.3, kPi * 1.7, th, j);
      break;
    case 3:  // D
      L({0.34, 0.16}, {0.34, 0.84});
      cv.arc({0.36, 0.50}, 0.26, 0.34, -kPi / 2.0, kPi / 2.0, th, j);
      break;
    case 4:  // E
      L({0.34, 0.16}, {0.34, 0.84});
      L({0.34, 0.16}, {0.68, 0.16});
      L({0.34, 0.50}, {0.62, 0.50});
      L({0.34, 0.84}, {0.68, 0.84});
      break;
    case 5:  // F
      L({0.34, 0.16}, {0.34, 0.84});
      L({0.34, 0.16}, {0.68, 0.16});
      L({0.34, 0.50}, {0.62, 0.50});
      break;
    case 6:  // G
      cv.arc({0.52, 0.50}, 0.24, 0.32, kPi * 0.3, kPi * 1.75, th, j);
      L({0.76, 0.56}, {0.56, 0.56});
      L({0.74, 0.56}, {0.74, 0.74});
      break;
    case 7:  // H
      L({0.32, 0.16}, {0.32, 0.84});
      L({0.68, 0.16}, {0.68, 0.84});
      L({0.32, 0.50}, {0.68, 0.50});
      break;
    case 8:  // I
      L({0.40, 0.16}, {0.60, 0.16});
      L({0.50, 0.16}, {0.50, 0.84});
      L({0.40, 0.84}, {0.60, 0.84});
      break;
    case 9:  // J
      L({0.44, 0.16}, {0.70, 0.16});
      L({0.60, 0.16}, {0.60, 0.66});
      cv.arc({0.46, 0.66}, 0.14, 0.16, 0.0, kPi, th, j);
      break;
    default:
      throw ConfigError("letter class out of range");
  }
}

}  // namespace

SyntheticFamily parse_family(const std::string& name) {
  std::string low(name.size(), '\0');
  std::transform(name.begin(), name.end(), low.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (low == "digits" || low == "mnist") return SyntheticFamily::Digits;
  if (low == "fashion" || low == "fmnist") return SyntheticFamily::Fashion;
  if (low == "kana" || low == "kmnist") return SyntheticFamily::Kana;
  if (low == "letters" || low == "emnist") return SyntheticFamily::Letters;
  throw ConfigError("unknown synthetic family '" + name + "'");
}

const char* family_name(SyntheticFamily family) {
  switch (family) {
    case SyntheticFamily::Digits: return "digits";
    case SyntheticFamily::Fashion: return "fashion";
    case SyntheticFamily::Kana: return "kana";
    case SyntheticFamily::Letters: return "letters";
  }
  return "?";
}

MatrixD render_glyph(SyntheticFamily family, std::size_t cls, Rng& rng,
                     const SyntheticOptions& options) {
  ODONN_CHECK(cls < 10, "render_glyph: class must be 0-9");
  ODONN_CHECK(options.image_size >= 12, "render_glyph: image too small");

  Jitter jit;
  jit.angle = rng.uniform(-options.max_rotate, options.max_rotate);
  jit.scale = 1.0 + rng.uniform(-options.scale_jitter, options.scale_jitter);
  jit.dx = rng.uniform(-options.max_shift, options.max_shift);
  jit.dy = rng.uniform(-options.max_shift, options.max_shift);
  jit.thickness =
      1.0 + rng.uniform(-options.thickness_jitter, options.thickness_jitter);

  const double th = 0.055 * jit.thickness * jit.scale;
  Canvas canvas(options.image_size);
  switch (family) {
    case SyntheticFamily::Digits: draw_digit(canvas, cls, jit, th); break;
    case SyntheticFamily::Fashion: draw_fashion(canvas, cls, jit, th); break;
    case SyntheticFamily::Kana: draw_kana(canvas, cls, jit, th); break;
    case SyntheticFamily::Letters: draw_letter(canvas, cls, jit, th); break;
  }

  MatrixD image = canvas.take();
  if (options.noise_sigma > 0.0) {
    for (std::size_t i = 0; i < image.size(); ++i) {
      image[i] = std::clamp(image[i] + rng.normal(0.0, options.noise_sigma),
                            0.0, 1.0);
    }
  }
  return image;
}

Dataset make_synthetic(SyntheticFamily family, std::size_t count,
                       std::uint64_t seed, const SyntheticOptions& options) {
  ODONN_CHECK(count >= 1, "make_synthetic: count must be >= 1");
  Rng rng(seed);
  std::vector<std::size_t> labels(count);
  for (std::size_t i = 0; i < count; ++i) labels[i] = i % 10;
  rng.shuffle(labels);

  std::vector<MatrixD> images;
  images.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    images.push_back(render_glyph(family, labels[i], rng, options));
  }
  return Dataset(std::move(images), std::move(labels), 10);
}

}  // namespace odonn::data

#include "data/augment.hpp"

#include "common/error.hpp"
#include "data/transform.hpp"

namespace odonn::data {

MatrixD augment_image(const MatrixD& image, Rng& rng,
                      const AugmentOptions& options) {
  ODONN_CHECK(!image.empty(), "augment_image: empty image");
  const double angle = rng.uniform(-options.max_rotate, options.max_rotate);
  const double scale =
      1.0 + rng.uniform(-options.scale_jitter, options.scale_jitter);
  const double dx = rng.uniform(-options.max_shift, options.max_shift);
  const double dy = rng.uniform(-options.max_shift, options.max_shift);
  MatrixD out = affine_warp(image, angle, scale, dx, dy);
  if (options.noise_sigma > 0.0) {
    out = add_noise(out, options.noise_sigma, rng);
  }
  return out;
}

Dataset augment_dataset(const Dataset& dataset, Rng& rng,
                        const AugmentOptions& options) {
  ODONN_CHECK(!dataset.empty(), "augment_dataset: empty dataset");
  std::vector<MatrixD> images;
  std::vector<std::size_t> labels;
  images.reserve(dataset.size());
  labels.reserve(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    images.push_back(augment_image(dataset.image(i), rng, options));
    labels.push_back(dataset.label(i));
  }
  return Dataset(std::move(images), std::move(labels), dataset.num_classes());
}

}  // namespace odonn::data

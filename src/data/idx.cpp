#include "data/idx.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <vector>

#include "common/error.hpp"

namespace odonn::data {

namespace {

constexpr std::uint32_t kImagesMagic = 0x00000803;
constexpr std::uint32_t kLabelsMagic = 0x00000801;

std::uint32_t read_u32_be(std::istream& in, const std::string& path) {
  unsigned char bytes[4];
  in.read(reinterpret_cast<char*>(bytes), 4);
  if (!in) throw IoError("truncated IDX header in " + path);
  return (static_cast<std::uint32_t>(bytes[0]) << 24) |
         (static_cast<std::uint32_t>(bytes[1]) << 16) |
         (static_cast<std::uint32_t>(bytes[2]) << 8) |
         static_cast<std::uint32_t>(bytes[3]);
}

void write_u32_be(std::ostream& out, std::uint32_t value) {
  const unsigned char bytes[4] = {
      static_cast<unsigned char>((value >> 24) & 0xff),
      static_cast<unsigned char>((value >> 16) & 0xff),
      static_cast<unsigned char>((value >> 8) & 0xff),
      static_cast<unsigned char>(value & 0xff)};
  out.write(reinterpret_cast<const char*>(bytes), 4);
}

}  // namespace

Dataset load_idx(const std::string& images_path,
                 const std::string& labels_path, std::size_t num_classes) {
  std::ifstream img_in(images_path, std::ios::binary);
  if (!img_in) throw IoError("cannot open IDX images file " + images_path);
  std::ifstream lbl_in(labels_path, std::ios::binary);
  if (!lbl_in) throw IoError("cannot open IDX labels file " + labels_path);

  if (read_u32_be(img_in, images_path) != kImagesMagic) {
    throw IoError("bad IDX magic in " + images_path);
  }
  const std::uint32_t count = read_u32_be(img_in, images_path);
  const std::uint32_t rows = read_u32_be(img_in, images_path);
  const std::uint32_t cols = read_u32_be(img_in, images_path);
  if (rows == 0 || cols == 0) throw IoError("empty IDX image shape");

  if (read_u32_be(lbl_in, labels_path) != kLabelsMagic) {
    throw IoError("bad IDX magic in " + labels_path);
  }
  const std::uint32_t label_count = read_u32_be(lbl_in, labels_path);
  if (label_count != count) {
    throw IoError("IDX image/label count mismatch between " + images_path +
                  " and " + labels_path);
  }

  std::vector<MatrixD> images;
  images.reserve(count);
  std::vector<unsigned char> buffer(static_cast<std::size_t>(rows) * cols);
  for (std::uint32_t i = 0; i < count; ++i) {
    img_in.read(reinterpret_cast<char*>(buffer.data()),
                static_cast<std::streamsize>(buffer.size()));
    if (!img_in) throw IoError("truncated IDX image data in " + images_path);
    MatrixD img(rows, cols);
    for (std::size_t p = 0; p < buffer.size(); ++p) {
      img[p] = static_cast<double>(buffer[p]) / 255.0;
    }
    images.push_back(std::move(img));
  }

  std::vector<std::size_t> labels(count);
  std::vector<unsigned char> lbl_buffer(count);
  lbl_in.read(reinterpret_cast<char*>(lbl_buffer.data()),
              static_cast<std::streamsize>(lbl_buffer.size()));
  if (!lbl_in) throw IoError("truncated IDX label data in " + labels_path);
  for (std::uint32_t i = 0; i < count; ++i) {
    labels[i] = lbl_buffer[i];
  }
  return Dataset(std::move(images), std::move(labels), num_classes);
}

void write_idx(const Dataset& dataset, const std::string& images_path,
               const std::string& labels_path) {
  ODONN_CHECK(!dataset.empty(), "write_idx: empty dataset");
  std::ofstream img_out(images_path, std::ios::binary);
  if (!img_out) throw IoError("cannot create IDX images file " + images_path);
  std::ofstream lbl_out(labels_path, std::ios::binary);
  if (!lbl_out) throw IoError("cannot create IDX labels file " + labels_path);

  const auto& first = dataset.image(0);
  write_u32_be(img_out, kImagesMagic);
  write_u32_be(img_out, static_cast<std::uint32_t>(dataset.size()));
  write_u32_be(img_out, static_cast<std::uint32_t>(first.rows()));
  write_u32_be(img_out, static_cast<std::uint32_t>(first.cols()));
  std::vector<unsigned char> buffer(first.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const auto& img = dataset.image(i);
    for (std::size_t p = 0; p < img.size(); ++p) {
      const double v = std::clamp(img[p], 0.0, 1.0);
      buffer[p] = static_cast<unsigned char>(std::lround(v * 255.0));
    }
    img_out.write(reinterpret_cast<const char*>(buffer.data()),
                  static_cast<std::streamsize>(buffer.size()));
  }

  write_u32_be(lbl_out, kLabelsMagic);
  write_u32_be(lbl_out, static_cast<std::uint32_t>(dataset.size()));
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const unsigned char lbl = static_cast<unsigned char>(dataset.label(i));
    lbl_out.write(reinterpret_cast<const char*>(&lbl), 1);
  }
  if (!img_out || !lbl_out) throw IoError("failed writing IDX files");
}

}  // namespace odonn::data

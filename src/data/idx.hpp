// IDX file format (the MNIST container format) reader/writer. If the real
// MNIST/FMNIST/KMNIST/EMNIST files are present on disk the experiment
// drivers load them through this module; otherwise they fall back to the
// synthetic generators. The writer exists for round-trip tests and for
// exporting synthetic datasets.
//
// Format: big-endian; magic 0x00000803 for u8 image tensors (count, rows,
// cols), 0x00000801 for u8 label vectors.
#pragma once

#include <cstdint>
#include <string>

#include "data/dataset.hpp"

namespace odonn::data {

/// Loads an images file + labels file pair into a Dataset (pixels scaled to
/// [0, 1]). Throws IoError on missing files, bad magic or truncation.
Dataset load_idx(const std::string& images_path, const std::string& labels_path,
                 std::size_t num_classes = 10);

/// Writes a dataset to the IDX pair (pixels quantized to u8).
void write_idx(const Dataset& dataset, const std::string& images_path,
               const std::string& labels_path);

}  // namespace odonn::data

// Image transforms used by the data pipeline: augmentation warps and the
// dataset->optical-grid preparation step (resize + optional centered embed).
#pragma once

#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "tensor/matrix.hpp"

namespace odonn::data {

/// Affine warp (rotate by `angle` rad around the center, scale, translate by
/// (dx, dy) pixels) with bilinear sampling and zero fill.
MatrixD affine_warp(const MatrixD& src, double angle, double scale, double dx,
                    double dy);

/// Additive clipped Gaussian noise.
MatrixD add_noise(const MatrixD& src, double sigma, Rng& rng);

/// Upsamples every image to target_n x target_n (bilinear), the paper's
/// 28x28 -> 200x200 interpolation (§IV-A1).
Dataset resize_dataset(const Dataset& dataset, std::size_t target_n);

}  // namespace odonn::data

// Training-time augmentation: random affine jitter + noise applied per
// epoch, matching the style of variation the synthetic generators bake in
// but applicable to any dataset (including real IDX files).
#pragma once

#include "common/rng.hpp"
#include "data/dataset.hpp"

namespace odonn::data {

struct AugmentOptions {
  double max_rotate = 0.15;   ///< [rad]
  double scale_jitter = 0.1;  ///< multiplicative
  double max_shift = 1.5;     ///< [pixels]
  double noise_sigma = 0.02;
};

/// One randomly augmented view of an image.
MatrixD augment_image(const MatrixD& image, Rng& rng,
                      const AugmentOptions& options = {});

/// A fully augmented copy of the dataset (fresh draws per call — call once
/// per epoch for epoch-wise augmentation).
Dataset augment_dataset(const Dataset& dataset, Rng& rng,
                        const AugmentOptions& options = {});

}  // namespace odonn::data

// Procedural stand-ins for the paper's four datasets (§IV-A1).
//
// Real MNIST/FMNIST/KMNIST/EMNIST are loaded via data/idx.hpp when present;
// in a fully offline environment these generators produce four *distinct*
// 10-class 28x28 grayscale tasks that exercise exactly the same DONN code
// paths (see DESIGN.md §2):
//   * Digits  — stroke-rendered digits 0-9                  (MNIST stand-in)
//   * Fashion — filled apparel silhouettes                  (FMNIST stand-in)
//   * Kana    — cursive multi-stroke glyphs                 (KMNIST stand-in)
//   * Letters — stroke-rendered letters A-J                 (EMNIST stand-in)
// Every sample is drawn with randomized affine jitter (shift / rotation /
// scale), stroke-thickness jitter and additive pixel noise, so classes have
// genuine intra-class variation and the tasks are not trivially separable.
#pragma once

#include <cstdint>
#include <string>

#include "data/dataset.hpp"

namespace odonn::data {

enum class SyntheticFamily { Digits, Fashion, Kana, Letters };

/// Accepts family names and the paper's dataset names:
/// "digits"/"mnist", "fashion"/"fmnist", "kana"/"kmnist",
/// "letters"/"emnist".
SyntheticFamily parse_family(const std::string& name);
const char* family_name(SyntheticFamily family);

struct SyntheticOptions {
  std::size_t image_size = 28;
  double noise_sigma = 0.03;       ///< additive Gaussian pixel noise
  double max_shift = 0.08;         ///< translation jitter (fraction of size)
  double max_rotate = 0.22;        ///< rotation jitter [rad]
  double scale_jitter = 0.12;      ///< multiplicative scale jitter
  double thickness_jitter = 0.35;  ///< stroke thickness jitter (fraction)
};

/// Renders a single jittered glyph for class `cls` (0-9).
MatrixD render_glyph(SyntheticFamily family, std::size_t cls, Rng& rng,
                     const SyntheticOptions& options = {});

/// Builds a class-balanced dataset of `count` samples (labels shuffled).
Dataset make_synthetic(SyntheticFamily family, std::size_t count,
                       std::uint64_t seed, const SyntheticOptions& options = {});

}  // namespace odonn::data

#include "data/transform.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "tensor/resize.hpp"

namespace odonn::data {

MatrixD affine_warp(const MatrixD& src, double angle, double scale, double dx,
                    double dy) {
  ODONN_CHECK(!src.empty(), "affine_warp: empty image");
  ODONN_CHECK(scale > 0.0, "affine_warp: scale must be positive");
  const double rows = static_cast<double>(src.rows());
  const double cols = static_cast<double>(src.cols());
  const double cr = (rows - 1.0) / 2.0;
  const double cc = (cols - 1.0) / 2.0;
  const double ca = std::cos(angle);
  const double sa = std::sin(angle);
  MatrixD out(src.rows(), src.cols(), 0.0);
  // Inverse mapping: for each destination pixel find the source sample.
  for (std::size_t r = 0; r < src.rows(); ++r) {
    for (std::size_t c = 0; c < src.cols(); ++c) {
      const double yr = (static_cast<double>(r) - cr - dy) / scale;
      const double xc = (static_cast<double>(c) - cc - dx) / scale;
      const double sr = ca * yr + sa * xc + cr;
      const double sc = -sa * yr + ca * xc + cc;
      if (sr < 0.0 || sc < 0.0 || sr > rows - 1.0 || sc > cols - 1.0) continue;
      const std::size_t r0 = static_cast<std::size_t>(sr);
      const std::size_t c0 = static_cast<std::size_t>(sc);
      const std::size_t r1 = std::min(r0 + 1, src.rows() - 1);
      const std::size_t c1 = std::min(c0 + 1, src.cols() - 1);
      const double fr = sr - static_cast<double>(r0);
      const double fc = sc - static_cast<double>(c0);
      const double top = src(r0, c0) * (1.0 - fc) + src(r0, c1) * fc;
      const double bot = src(r1, c0) * (1.0 - fc) + src(r1, c1) * fc;
      out(r, c) = top * (1.0 - fr) + bot * fr;
    }
  }
  return out;
}

MatrixD add_noise(const MatrixD& src, double sigma, Rng& rng) {
  ODONN_CHECK(sigma >= 0.0, "add_noise: sigma must be >= 0");
  MatrixD out = src;
  if (sigma == 0.0) return out;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = std::clamp(out[i] + rng.normal(0.0, sigma), 0.0, 1.0);
  }
  return out;
}

Dataset resize_dataset(const Dataset& dataset, std::size_t target_n) {
  ODONN_CHECK(!dataset.empty(), "resize_dataset: empty dataset");
  std::vector<MatrixD> images;
  std::vector<std::size_t> labels;
  images.reserve(dataset.size());
  labels.reserve(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    images.push_back(bilinear_resize(dataset.image(i), target_n, target_n));
    labels.push_back(dataset.label(i));
  }
  return Dataset(std::move(images), std::move(labels), dataset.num_classes());
}

}  // namespace odonn::data

// CSV writer for sweep outputs (Fig. 6 data series).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace odonn::io {

class CsvWriter {
 public:
  /// Opens `path` and writes the header row. Throws IoError on failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& columns);

  /// Writes one row; the cell count must match the header.
  void row(const std::vector<double>& cells);
  void row(const std::vector<std::string>& cells);

 private:
  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace odonn::io

#include "io/pgm.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "common/error.hpp"

namespace odonn::io {

void write_pgm(const std::string& path, const MatrixD& image, double lo,
               double hi) {
  ODONN_CHECK(!image.empty(), "write_pgm: empty image");
  ODONN_CHECK(hi > lo, "write_pgm: hi must exceed lo");
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot create " + path);
  out << "P5\n" << image.cols() << ' ' << image.rows() << "\n255\n";
  std::vector<unsigned char> row(image.cols());
  for (std::size_t r = 0; r < image.rows(); ++r) {
    for (std::size_t c = 0; c < image.cols(); ++c) {
      const double v = std::clamp((image(r, c) - lo) / (hi - lo), 0.0, 1.0);
      row[c] = static_cast<unsigned char>(std::lround(v * 255.0));
    }
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size()));
  }
  if (!out) throw IoError("failed writing " + path);
}

MatrixD read_pgm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open " + path);
  std::string magic;
  in >> magic;
  if (magic != "P5") throw IoError("not a binary PGM: " + path);
  std::size_t cols = 0, rows = 0, maxval = 0;
  in >> cols >> rows >> maxval;
  if (!in || cols == 0 || rows == 0 || maxval == 0 || maxval > 255) {
    throw IoError("malformed PGM header in " + path);
  }
  in.get();  // single whitespace after header
  std::vector<unsigned char> data(rows * cols);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
  if (!in) throw IoError("truncated PGM data in " + path);
  MatrixD image(rows, cols);
  for (std::size_t i = 0; i < data.size(); ++i) {
    image[i] = static_cast<double>(data[i]) / static_cast<double>(maxval);
  }
  return image;
}

void write_ppm(const std::string& path, const std::vector<Rgb>& pixels,
               std::size_t rows, std::size_t cols) {
  ODONN_CHECK_SHAPE(pixels.size() == rows * cols,
                    "write_ppm: pixel count does not match shape");
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot create " + path);
  out << "P6\n" << cols << ' ' << rows << "\n255\n";
  for (const auto& px : pixels) {
    out.write(reinterpret_cast<const char*>(px.data()), 3);
  }
  if (!out) throw IoError("failed writing " + path);
}

}  // namespace odonn::io

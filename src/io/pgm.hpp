// Minimal netpbm writers/readers: binary PGM (P5) for grayscale and binary
// PPM (P6) for color. Used to dump phase-mask galleries (paper Fig. 5) and
// diffraction patterns without any external image dependency.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "tensor/matrix.hpp"

namespace odonn::io {

using Rgb = std::array<std::uint8_t, 3>;

/// Writes `image` (expected range [lo, hi], linearly mapped to 0-255).
void write_pgm(const std::string& path, const MatrixD& image, double lo = 0.0,
               double hi = 1.0);

/// Reads a binary P5 PGM back into [0, 1]. Throws IoError on malformed input.
MatrixD read_pgm(const std::string& path);

/// Writes an RGB image stored row-major (rows x cols pixels).
void write_ppm(const std::string& path, const std::vector<Rgb>& pixels,
               std::size_t rows, std::size_t cols);

}  // namespace odonn::io

// Viridis-like perceptually ordered colormap for phase-mask renders.
#pragma once

#include "io/pgm.hpp"

namespace odonn::io {

/// Maps t in [0, 1] (clamped) to an RGB color along a viridis-style ramp.
Rgb viridis(double t);

/// Cyclic colormap for phase values (wraps smoothly at 0 == 2*pi).
Rgb phase_wheel(double t);

}  // namespace odonn::io

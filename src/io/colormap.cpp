#include "io/colormap.hpp"

#include <algorithm>
#include <cmath>

namespace odonn::io {

namespace {

/// Control points sampled from the matplotlib viridis ramp.
constexpr double kViridis[9][3] = {
    {0.267, 0.005, 0.329}, {0.283, 0.141, 0.458}, {0.254, 0.265, 0.530},
    {0.207, 0.372, 0.553}, {0.164, 0.471, 0.558}, {0.128, 0.567, 0.551},
    {0.135, 0.659, 0.518}, {0.478, 0.821, 0.318}, {0.993, 0.906, 0.144}};

std::uint8_t to_byte(double v) {
  return static_cast<std::uint8_t>(
      std::lround(std::clamp(v, 0.0, 1.0) * 255.0));
}

}  // namespace

Rgb viridis(double t) {
  t = std::clamp(t, 0.0, 1.0);
  const double pos = t * 8.0;
  const std::size_t idx = std::min<std::size_t>(7, static_cast<std::size_t>(pos));
  const double frac = pos - static_cast<double>(idx);
  Rgb out{};
  for (int ch = 0; ch < 3; ++ch) {
    const double v = kViridis[idx][ch] * (1.0 - frac) +
                     kViridis[idx + 1][ch] * frac;
    out[static_cast<std::size_t>(ch)] = to_byte(v);
  }
  return out;
}

Rgb phase_wheel(double t) {
  // Smooth cyclic map: offset cosine ramps per channel.
  const double angle = 2.0 * M_PI * (t - std::floor(t));
  return {to_byte(0.5 + 0.5 * std::cos(angle)),
          to_byte(0.5 + 0.5 * std::cos(angle - 2.0 * M_PI / 3.0)),
          to_byte(0.5 + 0.5 * std::cos(angle - 4.0 * M_PI / 3.0))};
}

}  // namespace odonn::io

#include "io/csv.hpp"

#include <sstream>

#include "common/error.hpp"

namespace odonn::io {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& columns)
    : out_(path), columns_(columns.size()) {
  if (!out_) throw IoError("cannot create " + path);
  ODONN_CHECK(!columns.empty(), "CsvWriter: no columns");
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << columns[i];
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<double>& cells) {
  ODONN_CHECK_SHAPE(cells.size() == columns_, "CsvWriter: cell count mismatch");
  std::ostringstream line;
  line.precision(10);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) line << ',';
    line << cells[i];
  }
  out_ << line.str() << '\n';
  if (!out_) throw IoError("CSV write failed");
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  ODONN_CHECK_SHAPE(cells.size() == columns_, "CsvWriter: cell count mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
  if (!out_) throw IoError("CSV write failed");
}

}  // namespace odonn::io

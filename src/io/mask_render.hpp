// Phase-mask visualization (paper Fig. 5): renders a phase mask to a
// colormapped PPM, with sparsified (exact-zero) pixels drawn black so the
// cleared blocks stand out like the figure's black squares.
#pragma once

#include <string>

#include "tensor/matrix.hpp"

namespace odonn::io {

struct MaskRenderOptions {
  bool wrap_to_2pi = true;   ///< display modulo 2*pi (inference-equivalent)
  bool zeros_black = true;   ///< paint exact-zero pixels black
  std::size_t upscale = 2;   ///< integer pixel replication for visibility
};

void render_phase_mask(const std::string& path, const MatrixD& phase,
                       const MaskRenderOptions& options = {});

}  // namespace odonn::io

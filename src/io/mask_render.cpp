#include "io/mask_render.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "io/colormap.hpp"
#include "io/pgm.hpp"

namespace odonn::io {

void render_phase_mask(const std::string& path, const MatrixD& phase,
                       const MaskRenderOptions& options) {
  ODONN_CHECK(!phase.empty(), "render_phase_mask: empty mask");
  ODONN_CHECK(options.upscale >= 1, "render_phase_mask: upscale must be >= 1");
  const double two_pi = 2.0 * M_PI;
  const std::size_t up = options.upscale;
  const std::size_t rows = phase.rows() * up;
  const std::size_t cols = phase.cols() * up;
  std::vector<Rgb> pixels(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double v = phase(r / up, c / up);
      Rgb color;
      if (options.zeros_black && v == 0.0) {
        color = {0, 0, 0};
      } else if (options.wrap_to_2pi) {
        double w = std::fmod(v, two_pi);
        if (w < 0.0) w += two_pi;
        color = viridis(w / two_pi);
      } else {
        color = viridis(v / two_pi);
      }
      pixels[r * cols + c] = color;
    }
  }
  write_ppm(path, pixels, rows, cols);
}

}  // namespace odonn::io

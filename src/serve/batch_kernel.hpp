// BatchKernel — cross-sample vectorized batched propagation.
//
// This is the optimization batching uniquely enables: the naive per-sample
// path cannot amortize anything across samples, but a batch can be packed
// lane-major (structure-of-arrays, kLanes samples side by side) so one
// butterfly/kernel/modulation sweep advances kLanes samples at once. Twiddle
// loads, loop control and the libstdc++ complex NaN-recovery branches are
// paid once per lane group instead of once per sample, and the inner lane
// loops auto-vectorize.
//
// Exactness: each lane performs the same IEEE add/mul sequence as the
// scalar pipeline (fft::Plan radix-2 butterflies -> transfer-function
// multiply -> modulation multiply -> |.|^2 -> region sums, in the same
// order), so per-sample results are bitwise identical to
// DonnModel::predict / detector_sums — tests/serve_test.cpp asserts this.
//
// Scope: power-of-two grids without 2x padding (the radix-2 plan shape).
// BatchedForward falls back to DonnModel::infer_batch otherwise.
//
// Thread safety: immutable after construction; run() is const and
// parallelizes over lane groups via common/parallel.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "donn/model.hpp"

namespace odonn::serve {

class BatchKernel {
 public:
  /// Samples packed side by side in one SoA sweep.
  static constexpr std::size_t kLanes = 4;

  /// True when this kernel can serve the model (radix-2 grid, no pad2x).
  static bool supports(const donn::DonnModel& model);

  /// Snapshots the transfer function and the per-layer modulation tables
  /// (the same tables the fallback path uses). `model` must outlive this.
  BatchKernel(const donn::DonnModel& model,
              const std::vector<MatrixC>& modulations);

  /// Batched inference: fills predictions[k] / sums[k] (each output
  /// optional) for every input. Deterministic and thread-count independent.
  void run(const std::vector<optics::Field>& inputs,
           std::vector<std::size_t>* predictions,
           std::vector<std::vector<double>>* sums) const;

 private:
  void fft_pass(double* re, double* im, bool inverse) const;
  void transform_2d(double* re, double* im, double* col_re, double* col_im,
                    bool inverse) const;
  void propagate(double* re, double* im, double* col_re,
                 double* col_im) const;

  const donn::DonnModel* model_;
  std::size_t n_ = 0;
  // Transfer function and modulation tables, split into planes so the lane
  // loops touch plain double arrays.
  std::vector<double> kernel_re_, kernel_im_;
  std::vector<std::vector<double>> mod_re_, mod_im_;
  // Radix-2 tables, same values as the cached fft::Plan builds.
  std::vector<double> tw_re_, tw_im_, itw_im_;
  std::vector<std::size_t> bit_reverse_;
};

}  // namespace odonn::serve

// ServeCluster — N continuously-batched InferenceEngine replicas behind the
// single submit() facade callers already know.
//
// One registry, N replicas: every replica serves every published model (the
// registry hands out immutable snapshots, so replicas share model memory
// and differ only in their drain thread, request queue and plan cache).
// Each replica runs with continuous (in-flight) batching by default and a
// pinned inner thread budget — an even split of the shared pool unless the
// caller overrides it — so R replicas give R concurrent kernels without
// oversubscribing common/parallel.
//
// Routing:
//   * LeastLoaded (default): the replica with the shortest queue takes the
//     request (ties break to the lowest index). Best for uniform traffic.
//   * Hash: FNV-1a of the model name picks the replica — model-affinity
//     routing, so each replica's plan cache only ever holds its share of
//     the published models (cuts modulation-table residency R-fold when
//     many variants are served).
// Routing never changes results: predictions are bitwise identical to the
// single-engine path for the same inputs, whichever replica serves them.
//
// Admission control and backpressure are per replica (bounded queue depth,
// reject-with-OverloadError or block, from EngineOptions); the cluster
// exposes the summed admitted/rejected counts. shutdown() is a graceful
// drain: every admitted future resolves before it returns.
//
// Thread safety: submit()/stats()/pending() are safe from any thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "serve/engine.hpp"
#include "serve/registry.hpp"

namespace odonn::serve {

/// How the cluster picks a replica for each request.
enum class Routing {
  LeastLoaded,  ///< shortest queue wins, ties to the lowest index
  Hash,         ///< FNV-1a(model name) — model-affinity routing
};

struct ClusterOptions {
  std::size_t replicas = 2;
  Routing routing = Routing::LeastLoaded;
  /// Continuous (in-flight) batching on every replica — the default and
  /// the point of replication; false falls back to window batching (an
  /// A/B the load bench can drive).
  bool continuous = true;
  /// Template applied to every replica. `continuous` here is overridden by
  /// the cluster-level flag above; `inner_threads` 0 = an even split of
  /// the shared pool across replicas (at least 1); `label` must stay
  /// empty — the cluster labels replicas itself ("replica0", "replica1",
  /// ...) when `label_replicas` is set.
  EngineOptions engine;
  /// Register per-replica obs instruments (serve.replicaK.*).
  bool label_replicas = true;
};

class ServeCluster {
 public:
  explicit ServeCluster(std::shared_ptr<ModelRegistry> registry,
                        ClusterOptions options = {});
  ~ServeCluster();

  ServeCluster(const ServeCluster&) = delete;
  ServeCluster& operator=(const ServeCluster&) = delete;

  /// Same contract as InferenceEngine::submit — the future resolves to the
  /// prediction or to the typed error (unknown model, grid mismatch,
  /// OverloadError under Reject backpressure at the routed replica).
  std::future<PredictResult> submit(const std::string& model_name,
                                    optics::Field input);

  /// Gracefully drains every replica: all admitted futures resolve before
  /// this returns. Idempotent; called by the destructor.
  void shutdown();

  std::size_t replica_count() const { return replicas_.size(); }
  const ClusterOptions& options() const { return options_; }

  /// Queued-but-not-yet-batched requests, summed over replicas.
  std::size_t pending() const;

  /// Per-replica queue depths (index = replica).
  std::vector<std::size_t> replica_pending() const;

  std::uint64_t admitted() const;
  std::uint64_t rejected() const;

  /// Cluster-level aggregates plus the per-replica snapshots they came
  /// from. Counters sum; cluster percentiles are computed over the
  /// concatenated replica latency windows (quantiles of quantiles would
  /// not be exact).
  struct ClusterSnapshot {
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::size_t queue_depth = 0;          ///< summed pending()
    double throughput_rps = 0.0;          ///< summed per-replica RPS
    double mean_batch_size = 0.0;         ///< batch-weighted mean
    /// True cluster-level latency percentiles: nearest-rank over the
    /// CONCATENATED retained windows of every replica (not a merge of
    /// per-replica quantiles).
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    double p999_ms = 0.0;
    /// Percentiles of one latency-attribution component, computed the same
    /// way as the cluster latency percentiles (nearest-rank over the
    /// concatenated replica attribution windows).
    struct AttributionSummary {
      double p50_ms = 0.0;
      double p99_ms = 0.0;
      double p999_ms = 0.0;
    };
    AttributionSummary queue_wait;  ///< submit -> dequeued
    AttributionSummary batch_wait;  ///< dequeued -> kernel launch
    AttributionSummary compute;     ///< kernel launch -> done
    std::vector<ServeStats::Snapshot> replicas;
    std::vector<std::size_t> replica_queue_depth;
  };
  ClusterSnapshot stats() const;

  /// Clears every replica's counters and latency windows.
  void reset_stats();

  /// Direct access for tests and snapshot printers.
  const InferenceEngine& replica(std::size_t index) const {
    return *replicas_.at(index);
  }

 private:
  std::size_t route(const std::string& model_name) const;

  ClusterOptions options_;
  std::vector<std::unique_ptr<InferenceEngine>> replicas_;
};

/// Canonical JSON rendering of a ClusterSnapshot: one object with the
/// cluster aggregates, the latency percentiles, an "attr" sub-object
/// holding the queue_wait / batch_wait / compute percentile summaries,
/// and the per-replica queue depths. This exact string is what the HTTP
/// plane serves at GET /snapshot and what `snapshot_file=` appends one
/// line of per interval (tests assert the equality). Numbers use
/// obs::format_double (shortest round-trip), so bodies are byte-stable
/// for identical snapshots.
std::string cluster_snapshot_json(const ServeCluster::ClusterSnapshot& snap);

}  // namespace odonn::serve

// ServeStats — latency percentiles and throughput counters for the serving
// engine.
//
// Request latencies (submit -> response ready) go into a fixed-capacity
// ring so memory stays bounded under sustained traffic; percentiles are
// computed over the retained window with the repo-wide nearest-rank rule
// (odonn::nearest_rank in tensor/stats: p(q) = sorted[ceil(q*count)]
// counting from 1, boundary-exact at integral q*count). Throughput is
// completed requests divided by the span between the first and last
// completion; when that span is zero (a single request, or several on one
// clock tick) the slowest request's latency stands in as the window so
// smoke benches never report 0 RPS.
//
// record_* calls also mirror into the process-wide metrics registry
// (obs/obs.hpp: serve.requests / serve.batches / serve.errors counters,
// serve.latency_ms / serve.batch_size histograms).
//
// Thread safety: all members are safe for concurrent use (internal mutex).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/thread_annotations.hpp"

namespace odonn::serve {

/// Per-request latency attribution: where a request's end-to-end latency
/// went. queue_wait covers submit -> taken off the admission queue,
/// batch_wait covers batch formation (dequeue -> kernel launch for the
/// request's model group), compute covers the kernel itself. The three
/// components are stamped from one monotonic RequestContext, so they sum
/// to the end-to-end latency up to FP rounding of the conversions.
struct Attribution {
  double queue_wait_s = 0.0;
  double batch_wait_s = 0.0;
  double compute_s = 0.0;
};

class ServeStats {
 public:
  using Clock = std::chrono::steady_clock;

  struct Snapshot {
    std::uint64_t requests = 0;   ///< completed requests
    std::uint64_t batches = 0;    ///< BatchedForward invocations
    std::uint64_t errors = 0;     ///< requests failed with an exception
    double mean_batch_size = 0.0;
    double p50_ms = 0.0;
    double p90_ms = 0.0;
    double p99_ms = 0.0;
    double p999_ms = 0.0;
    double max_ms = 0.0;
    /// First-to-last completion span; the slowest request's latency when
    /// that span collapses to zero (single-request fallback).
    double window_seconds = 0.0;
    double throughput_rps = 0.0;     ///< requests / window_seconds
  };

  /// Records one completed request with its submit->done latency and the
  /// attribution breakdown (also mirrored into the serve.attr.* obs
  /// histograms).
  void record_request(double latency_seconds, const Attribution& attr = {});

  /// Records one drained batch of `size` samples.
  void record_batch(std::size_t size);

  /// Records a request that completed with an error.
  void record_error();

  Snapshot snapshot() const;

  /// Copy of the retained latency window (seconds, unordered). What
  /// ServeCluster concatenates across replicas for true cluster-level
  /// percentiles.
  std::vector<double> latency_window() const;

  /// Retained attribution windows (seconds, unordered), rings sharing the
  /// latency window's cursor: index k of each vector belongs to the same
  /// request as latency_window()[k]. Concatenated across replicas for the
  /// cluster-level attribution percentiles.
  struct AttributionWindows {
    std::vector<double> queue_wait;
    std::vector<double> batch_wait;
    std::vector<double> compute;
  };
  AttributionWindows attribution_window() const;

  /// Clears all counters and the latency/attribution windows.
  void reset();

 private:
  static constexpr std::size_t kWindowCapacity = 1 << 15;

  mutable Mutex mutex_;
  /// Ring of latency seconds.
  std::vector<double> window_ ODONN_GUARDED_BY(mutex_);
  std::vector<double> queue_wait_window_ ODONN_GUARDED_BY(mutex_);
  std::vector<double> batch_wait_window_ ODONN_GUARDED_BY(mutex_);
  std::vector<double> compute_window_ ODONN_GUARDED_BY(mutex_);
  /// Ring write cursor (all four rings).
  std::size_t next_ ODONN_GUARDED_BY(mutex_) = 0;
  std::uint64_t requests_ ODONN_GUARDED_BY(mutex_) = 0;
  std::uint64_t batches_ ODONN_GUARDED_BY(mutex_) = 0;
  std::uint64_t batched_samples_ ODONN_GUARDED_BY(mutex_) = 0;
  std::uint64_t errors_ ODONN_GUARDED_BY(mutex_) = 0;
  double max_latency_ ODONN_GUARDED_BY(mutex_) = 0.0;
  bool have_first_ ODONN_GUARDED_BY(mutex_) = false;
  Clock::time_point first_done_ ODONN_GUARDED_BY(mutex_){};
  Clock::time_point last_done_ ODONN_GUARDED_BY(mutex_){};
};

}  // namespace odonn::serve

// BatchedForward — plan-reusing batch-of-fields inference over a published
// (immutable) DONN model.
//
// Construction snapshots the per-layer modulation tables exp(i*phi) once;
// every subsequent run() shares that snapshot plus the model's cached
// propagation kernel and FFT plans across all samples of every batch, and
// parallelizes over samples via common/parallel. Deployment-style workloads
// (Li et al. 2022; Shi & Zhang 2020 treat trained masks as fixed artifacts
// evaluated under many inputs) are exactly this read-only shape.
//
// Thread safety: immutable after construction; run()/predict() may be
// called concurrently from any number of threads. Results are
// bitwise-identical to DonnModel's single-sample path.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "donn/model.hpp"
#include "serve/batch_kernel.hpp"

namespace odonn::serve {

class BatchedForward {
 public:
  /// Snapshots the modulation tables of `model`. The model must stay
  /// unmodified (and alive — the pointer is retained) while served.
  explicit BatchedForward(std::shared_ptr<const donn::DonnModel> model);

  const donn::DonnModel& model() const { return *model_; }
  const std::shared_ptr<const donn::DonnModel>& model_ptr() const {
    return model_;
  }

  struct Result {
    std::vector<std::size_t> predictions;       ///< argmax class per sample
    std::vector<std::vector<double>> detector_sums;  ///< raw per-class sums
  };

  /// Evaluates the whole batch; result vectors are indexed like `inputs`.
  Result run(const std::vector<optics::Field>& inputs) const;

  /// Predictions only (skips materializing per-class sums).
  std::vector<std::size_t> predict(
      const std::vector<optics::Field>& inputs) const;

  /// Whether this pass runs the cross-sample vectorized BatchKernel (true
  /// for radix-2 grids without pad2x) or the generic infer_batch fallback.
  bool fused() const { return kernel_ != nullptr; }

 private:
  std::shared_ptr<const donn::DonnModel> model_;
  std::vector<MatrixC> modulations_;
  std::unique_ptr<const BatchKernel> kernel_;  ///< null -> fallback path
};

}  // namespace odonn::serve

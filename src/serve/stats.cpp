#include "serve/stats.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "tensor/stats.hpp"

namespace odonn::serve {

namespace {

/// Nearest-rank percentile over an unsorted copy; q in [0, 1]. The rank
/// comes from the shared odonn::nearest_rank rule (tensor/stats) so serve,
/// fab and tensor percentiles agree on boundary ranks; nth_element keeps
/// this O(n) for the latency window.
double percentile(std::vector<double>& values, double q) {
  if (values.empty()) return 0.0;
  const std::size_t index = nearest_rank(q, values.size()) - 1;
  std::nth_element(values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(index),
                   values.end());
  return values[index];
}

}  // namespace

void ServeStats::record_request(double latency_seconds,
                                const Attribution& attr) {
  ODONN_OBS_COUNT("serve.requests", 1);
  ODONN_OBS_HIST("serve.latency_ms", latency_seconds * 1e3);
  ODONN_OBS_HIST("serve.attr.queue_wait_ms", attr.queue_wait_s * 1e3);
  ODONN_OBS_HIST("serve.attr.batch_wait_ms", attr.batch_wait_s * 1e3);
  ODONN_OBS_HIST("serve.attr.compute_ms", attr.compute_s * 1e3);
  const Clock::time_point now = Clock::now();
  MutexLock lock(mutex_);
  ++requests_;
  if (window_.size() < kWindowCapacity) {
    window_.push_back(latency_seconds);
    queue_wait_window_.push_back(attr.queue_wait_s);
    batch_wait_window_.push_back(attr.batch_wait_s);
    compute_window_.push_back(attr.compute_s);
  } else {
    window_[next_] = latency_seconds;
    queue_wait_window_[next_] = attr.queue_wait_s;
    batch_wait_window_[next_] = attr.batch_wait_s;
    compute_window_[next_] = attr.compute_s;
    next_ = (next_ + 1) % kWindowCapacity;
  }
  max_latency_ = std::max(max_latency_, latency_seconds);
  if (!have_first_) {
    have_first_ = true;
    first_done_ = now;
  }
  last_done_ = now;
}

void ServeStats::record_batch(std::size_t size) {
  ODONN_OBS_COUNT("serve.batches", 1);
  ODONN_OBS_HIST("serve.batch_size", size);
  MutexLock lock(mutex_);
  ++batches_;
  batched_samples_ += size;
}

void ServeStats::record_error() {
  ODONN_OBS_COUNT("serve.errors", 1);
  MutexLock lock(mutex_);
  ++errors_;
}

ServeStats::Snapshot ServeStats::snapshot() const {
  std::vector<double> window;
  Snapshot snap;
  {
    MutexLock lock(mutex_);
    window = window_;
    snap.requests = requests_;
    snap.batches = batches_;
    snap.errors = errors_;
    snap.mean_batch_size =
        batches_ == 0 ? 0.0
                      : static_cast<double>(batched_samples_) /
                            static_cast<double>(batches_);
    snap.max_ms = max_latency_ * 1e3;
    if (have_first_) {
      snap.window_seconds =
          std::chrono::duration<double>(last_done_ - first_done_).count();
      if (snap.window_seconds <= 0.0 && requests_ >= 1) {
        // A single completed request (or several on one clock tick) spans
        // zero wall time, which would report 0 RPS (and previously an
        // infinite/zero split). Fall back to the slowest request's latency
        // as the window: the honest lower bound on elapsed serving time.
        snap.window_seconds = max_latency_;
      }
    }
  }
  snap.p50_ms = percentile(window, 0.50) * 1e3;
  snap.p90_ms = percentile(window, 0.90) * 1e3;
  snap.p99_ms = percentile(window, 0.99) * 1e3;
  snap.p999_ms = percentile(window, 0.999) * 1e3;
  if (snap.window_seconds > 0.0) {
    snap.throughput_rps =
        static_cast<double>(snap.requests) / snap.window_seconds;
  }
  return snap;
}

std::vector<double> ServeStats::latency_window() const {
  MutexLock lock(mutex_);
  return window_;
}

ServeStats::AttributionWindows ServeStats::attribution_window() const {
  MutexLock lock(mutex_);
  return AttributionWindows{queue_wait_window_, batch_wait_window_,
                            compute_window_};
}

void ServeStats::reset() {
  MutexLock lock(mutex_);
  window_.clear();
  queue_wait_window_.clear();
  batch_wait_window_.clear();
  compute_window_.clear();
  next_ = 0;
  requests_ = batches_ = batched_samples_ = errors_ = 0;
  max_latency_ = 0.0;
  have_first_ = false;
}

}  // namespace odonn::serve

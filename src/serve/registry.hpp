// ModelRegistry — named, immutable model variants for one serving process.
//
// The paper's pipeline produces several artifacts from one training run
// (dense-trained, SLR-sparsified, 2*pi-smoothed masks); the registry lets a
// single InferenceEngine A/B all of them by name. Models enter either
// in-memory (add) or from donn/serialize checkpoints (load) and are
// published as shared_ptr<const DonnModel>, which is what makes concurrent
// serving safe: replacing a name swaps the pointer, in-flight batches keep
// their snapshot alive.
//
// Thread safety: all members are safe for concurrent use (internal mutex).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.hpp"
#include "donn/model.hpp"

namespace odonn::serve {

class ModelRegistry {
 public:
  /// Publishes `model` under `name` (replaces any existing entry) and
  /// returns the published snapshot.
  std::shared_ptr<const donn::DonnModel> add(const std::string& name,
                                             donn::DonnModel model);

  /// Loads a donn/serialize checkpoint from `path` and publishes it under
  /// `name`. Throws IoError on malformed files.
  std::shared_ptr<const donn::DonnModel> load(const std::string& name,
                                              const std::string& path);

  /// Round-trip counterpart of load(): writes the registered model `name`
  /// to `path` as a donn/serialize checkpoint, so pipeline checkpoints and
  /// registry loads share one on-disk format. Throws ConfigError when the
  /// name is unknown, IoError on write failure.
  void save(const std::string& name, const std::string& path) const;

  /// Snapshot for `name`, or nullptr when absent.
  std::shared_ptr<const donn::DonnModel> find(const std::string& name) const;

  /// Snapshot for `name`; throws ConfigError when absent.
  std::shared_ptr<const donn::DonnModel> get(const std::string& name) const;

  /// Removes `name`; returns whether an entry was removed. In-flight users
  /// of the snapshot are unaffected.
  bool erase(const std::string& name);

  /// Registered names, sorted.
  std::vector<std::string> names() const;

  std::size_t size() const;

 private:
  mutable Mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<const donn::DonnModel>>
      models_ ODONN_GUARDED_BY(mutex_);
};

}  // namespace odonn::serve

#include "serve/registry.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "donn/serialize.hpp"

namespace odonn::serve {

std::shared_ptr<const donn::DonnModel> ModelRegistry::add(
    const std::string& name, donn::DonnModel model) {
  ODONN_CHECK(!name.empty(), "registry: model name must be non-empty");
  auto snapshot =
      std::make_shared<const donn::DonnModel>(std::move(model));
  MutexLock lock(mutex_);
  models_[name] = snapshot;
  return snapshot;
}

std::shared_ptr<const donn::DonnModel> ModelRegistry::load(
    const std::string& name, const std::string& path) {
  // Deserialize outside the lock: checkpoint I/O can be slow and must not
  // stall concurrent lookups.
  return add(name, donn::load_model(path));
}

void ModelRegistry::save(const std::string& name,
                         const std::string& path) const {
  // Serialize outside the lock, from the immutable snapshot: a slow disk
  // must not stall concurrent lookups.
  donn::save_model(*get(name), path);
}

std::shared_ptr<const donn::DonnModel> ModelRegistry::find(
    const std::string& name) const {
  MutexLock lock(mutex_);
  auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second;
}

std::shared_ptr<const donn::DonnModel> ModelRegistry::get(
    const std::string& name) const {
  auto model = find(name);
  if (!model) throw ConfigError("registry: unknown model '" + name + "'");
  return model;
}

bool ModelRegistry::erase(const std::string& name) {
  MutexLock lock(mutex_);
  return models_.erase(name) > 0;
}

std::vector<std::string> ModelRegistry::names() const {
  std::vector<std::string> out;
  {
    MutexLock lock(mutex_);
    out.reserve(models_.size());
    for (const auto& [name, model] : models_) out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t ModelRegistry::size() const {
  MutexLock lock(mutex_);
  return models_.size();
}

}  // namespace odonn::serve

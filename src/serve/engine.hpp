// InferenceEngine — asynchronous request queue in front of BatchedForward.
//
// Callers submit (model name, input field) pairs and get a std::future per
// request. A dedicated drain thread collects requests into batches — waiting
// up to `batch_window` for the queue to reach `max_batch` once work is
// pending — groups them by model, and evaluates each group with a cached,
// plan-reusing BatchedForward (rebuilt only when the registry entry for that
// name is replaced, so steady traffic pays the modulation-table setup once
// per published model, not per batch). Within a batch, sample-level
// parallelism comes from common/parallel inside infer_batch.
//
// Shutdown is graceful: the drain thread finishes everything already queued
// before exiting; submissions after shutdown() throw.
//
// Thread safety: submit()/stats()/pending() are safe from any thread.
#pragma once

#include <chrono>
#include <cstddef>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/batched_forward.hpp"
#include "serve/registry.hpp"
#include "serve/stats.hpp"

namespace odonn::serve {

struct EngineOptions {
  /// Largest batch handed to one BatchedForward call.
  std::size_t max_batch = 64;
  /// How long the drain thread waits for a partial batch to fill before
  /// running it anyway. Zero serves whatever is queued immediately.
  std::chrono::microseconds batch_window{200};
  /// Backpressure bound: submit() throws once this many requests queue up.
  std::size_t max_queue = 1 << 16;
};

struct PredictResult {
  std::size_t predicted = 0;            ///< argmax class
  std::vector<double> detector_sums;    ///< raw per-class intensity sums
};

class InferenceEngine {
 public:
  explicit InferenceEngine(std::shared_ptr<ModelRegistry> registry,
                           EngineOptions options = {});
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Enqueues one sample against the named registry model. The future
  /// resolves to the prediction, or to an exception (unknown model, grid
  /// mismatch). Throws Error when the engine is shut down or the queue is
  /// at max_queue.
  std::future<PredictResult> submit(const std::string& model_name,
                                    optics::Field input);

  /// Drains all queued requests, then stops the worker. Idempotent; called
  /// by the destructor.
  void shutdown();

  /// Requests queued but not yet drained into a batch.
  std::size_t pending() const;

  const EngineOptions& options() const { return options_; }

  ServeStats::Snapshot stats() const { return stats_.snapshot(); }

  /// Clears counters and the latency window (e.g. between a warm-up phase
  /// and a measured run). In-flight requests keep completing normally.
  void reset_stats() { stats_.reset(); }

 private:
  struct Request {
    std::string model;
    optics::Field input;
    std::promise<PredictResult> promise;
    ServeStats::Clock::time_point enqueued;
  };

  void drain_loop();
  void run_group(const std::string& model_name, std::vector<Request*> group);

  std::shared_ptr<ModelRegistry> registry_;
  EngineOptions options_;
  ServeStats stats_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  bool stopping_ = false;

  /// Drain-thread-only plan cache (no lock needed): name -> forward pass
  /// built against a specific published model snapshot.
  std::unordered_map<std::string, BatchedForward> plans_;

  std::thread worker_;
};

}  // namespace odonn::serve

// InferenceEngine — asynchronous request queue in front of BatchedForward.
//
// Callers submit (model name, input field) pairs and get a std::future per
// request. A dedicated drain thread collects requests into batches, groups
// them by model, and evaluates each group with a cached, plan-reusing
// BatchedForward (rebuilt only when the registry entry for that name is
// replaced, so steady traffic pays the modulation-table setup once per
// published model, not per batch). Within a batch, sample-level parallelism
// comes from common/parallel inside infer_batch, capped by
// `inner_threads` when set (how a cluster replica pins its share of the
// shared pool).
//
// Two batching disciplines:
//   * window (default): once work is pending, the drain thread waits up to
//     `batch_window` for the queue to reach `max_batch` before running a
//     partial batch — maximizes batch size under bursty offered load;
//   * continuous (`continuous = true`): requests are admitted into the
//     next batch THE MOMENT the kernel frees up — whatever is queued when
//     a batch finishes forms the next batch immediately, and the window is
//     never waited out. A request arriving while batch k runs is served by
//     batch k+1. This is the in-flight batching discipline a replicated
//     serve cluster uses: the kernel never idles while work is queued.
//
// Admission control: the queue is bounded at `max_queue`. When full,
// `backpressure` picks the policy — Reject throws a typed OverloadError
// (retryable overload, distinguishable from real failures) and counts the
// rejection; Block parks the submitter until the drain thread frees a slot.
//
// Shutdown is a graceful drain: every ADMITTED request's future resolves
// before the worker exits; submissions after shutdown() (and submitters
// still blocked on backpressure at shutdown) throw.
//
// Observability: global serve.* instruments are always recorded; a
// non-empty `label` additionally registers per-replica instruments
// (serve.<label>.queue_depth / requests / rejected / latency_ms /
// batch_size) so exports distinguish replicas by name suffix alone.
//
// Thread safety: submit()/stats()/pending() are safe from any thread.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.hpp"
#include "serve/batched_forward.hpp"
#include "serve/registry.hpp"
#include "serve/stats.hpp"

namespace odonn::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace odonn::obs

namespace odonn::serve {

/// What submit() does when the request queue sits at max_queue.
enum class Backpressure {
  Reject,  ///< throw OverloadError (and count the rejection)
  Block,   ///< park the submitter until the drain thread frees a slot
};

struct EngineOptions {
  /// Largest batch handed to one BatchedForward call.
  std::size_t max_batch = 64;
  /// How long the drain thread waits for a partial batch to fill before
  /// running it anyway. Zero serves whatever is queued immediately.
  /// Ignored in continuous mode.
  std::chrono::microseconds batch_window{200};
  /// Admission bound: the deepest the request queue may grow.
  std::size_t max_queue = 1 << 16;
  /// Continuous (in-flight) batching: admit queued requests into the next
  /// batch the moment the kernel frees up instead of waiting out
  /// batch_window.
  bool continuous = false;
  /// Policy when the queue is at max_queue.
  Backpressure backpressure = Backpressure::Reject;
  /// Inner parallelism budget for batch evaluation (pool workers a batch's
  /// parallel_for may fan out to). 0 = unrestricted. Cluster replicas pin
  /// this to their share of the pool.
  std::size_t inner_threads = 0;
  /// Per-replica metrics label: non-empty registers
  /// serve.<label>.{queue_depth,requests,rejected,latency_ms,batch_size}.
  std::string label;
  /// Diagnostic/test hook, called on the drain thread with the batch size
  /// right after a batch is taken off the queue and before it runs. While
  /// it executes the kernel counts as busy: requests submitted from other
  /// threads during the call land in the NEXT batch (what the continuous
  /// admission test pins down).
  std::function<void(std::size_t)> on_batch_start;
};

/// Where a completed request's end-to-end latency went. All four figures
/// derive from one set of monotonic stamps taken as the request moved
/// through the engine (submit -> dequeue -> kernel launch -> done), so
/// queue_wait + batch_wait + compute equals total up to FP rounding of
/// the per-component conversions.
struct LatencyBreakdown {
  std::uint64_t request_id = 0;  ///< process-unique id, nonzero once served
  double queue_wait_s = 0.0;     ///< submit -> taken off the admission queue
  double batch_wait_s = 0.0;     ///< dequeue -> kernel launch (batch
                                 ///< formation, incl. the on_batch_start
                                 ///< hook)
  double compute_s = 0.0;        ///< kernel launch -> results ready
  double total_s = 0.0;          ///< submit -> response ready
};

struct PredictResult {
  std::size_t predicted = 0;            ///< argmax class
  std::vector<double> detector_sums;    ///< raw per-class intensity sums
  LatencyBreakdown latency;             ///< per-request attribution
};

class InferenceEngine {
 public:
  explicit InferenceEngine(std::shared_ptr<ModelRegistry> registry,
                           EngineOptions options = {});
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Enqueues one sample against the named registry model. The future
  /// resolves to the prediction, or to an exception (unknown model, grid
  /// mismatch). Throws OverloadError when the queue is at max_queue under
  /// Backpressure::Reject, Error when the engine is shut down.
  std::future<PredictResult> submit(const std::string& model_name,
                                    optics::Field input);

  /// Drains all queued requests, then stops the worker. Idempotent; called
  /// by the destructor. Submitters blocked on backpressure are woken and
  /// throw.
  void shutdown();

  /// Requests queued but not yet drained into a batch.
  std::size_t pending() const;

  /// Requests accepted into the queue / rejected by admission control.
  std::uint64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  std::uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

  const EngineOptions& options() const { return options_; }

  ServeStats::Snapshot stats() const { return stats_.snapshot(); }

  /// Retained request-latency window (seconds) — see
  /// ServeStats::latency_window.
  std::vector<double> latency_window() const {
    return stats_.latency_window();
  }

  /// Retained attribution windows (seconds) — see
  /// ServeStats::attribution_window. Concatenated across replicas for the
  /// cluster-level attribution percentiles.
  ServeStats::AttributionWindows attribution_window() const {
    return stats_.attribution_window();
  }

  /// Clears counters and the latency window (e.g. between a warm-up phase
  /// and a measured run). In-flight requests keep completing normally.
  void reset_stats();

 private:
  struct Request {
    std::string model;
    optics::Field input;
    std::promise<PredictResult> promise;
    std::uint64_t id = 0;  ///< process-unique (shared across replicas)
    ServeStats::Clock::time_point enqueued;
    ServeStats::Clock::time_point dequeued;  ///< stamped once per batch
  };

  /// Per-replica labelled instruments (null when options_.label is empty
  /// or observability is compiled out). Registered once at construction;
  /// the registry guarantees node stability so raw pointers stay valid.
  struct LabelledMetrics {
    obs::Gauge* queue_depth = nullptr;
    obs::Counter* requests = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Histogram* latency_ms = nullptr;
    obs::Histogram* batch_size = nullptr;
  };

  void drain_loop();
  void run_group(const std::string& model_name, std::vector<Request*> group);
  void note_queue_depth(std::size_t depth);

  std::shared_ptr<ModelRegistry> registry_;
  EngineOptions options_;
  ServeStats stats_;
  LabelledMetrics labelled_;

  mutable Mutex mutex_;
  CondVar cv_;        ///< work available / stopping
  CondVar space_cv_;  ///< queue slot freed (Block mode)
  std::deque<Request> queue_ ODONN_GUARDED_BY(mutex_);
  bool stopping_ ODONN_GUARDED_BY(mutex_) = false;

  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> rejected_{0};

  /// Drain-thread-only plan cache (no lock needed): name -> forward pass
  /// built against a specific published model snapshot.
  std::unordered_map<std::string, BatchedForward> plans_;

  std::thread worker_;
};

}  // namespace odonn::serve

#include "serve/batched_forward.hpp"

#include "common/error.hpp"

namespace odonn::serve {

BatchedForward::BatchedForward(std::shared_ptr<const donn::DonnModel> model)
    : model_(std::move(model)) {
  ODONN_CHECK(model_ != nullptr, "BatchedForward: null model");
  modulations_ = model_->modulation_tables();
  if (BatchKernel::supports(*model_)) {
    kernel_ = std::make_unique<const BatchKernel>(*model_, modulations_);
  }
}

namespace {

/// The fused kernel pays for full lane groups, so a batch that would leave
/// most of the last group idle is cheaper on the generic path. Either path
/// produces bitwise-identical results, so routing is purely a cost choice.
bool worth_fusing(std::size_t batch_size) {
  return batch_size >= BatchKernel::kLanes - 1;
}

}  // namespace

BatchedForward::Result BatchedForward::run(
    const std::vector<optics::Field>& inputs) const {
  Result result;
  if (kernel_ && worth_fusing(inputs.size())) {
    kernel_->run(inputs, &result.predictions, &result.detector_sums);
  } else {
    model_->infer_batch(inputs, modulations_, &result.predictions,
                        &result.detector_sums, nullptr);
  }
  return result;
}

std::vector<std::size_t> BatchedForward::predict(
    const std::vector<optics::Field>& inputs) const {
  std::vector<std::size_t> predictions;
  if (kernel_ && worth_fusing(inputs.size())) {
    kernel_->run(inputs, &predictions, nullptr);
  } else {
    model_->infer_batch(inputs, modulations_, &predictions, nullptr, nullptr);
  }
  return predictions;
}

}  // namespace odonn::serve

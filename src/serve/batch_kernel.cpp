#include "serve/batch_kernel.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "fft/fft_plan.hpp"

namespace odonn::serve {

namespace {

constexpr std::size_t L = BatchKernel::kLanes;

}  // namespace

bool BatchKernel::supports(const donn::DonnModel& model) {
  return fft::is_pow2(model.config().grid.n) && !model.config().pad2x;
}

BatchKernel::BatchKernel(const donn::DonnModel& model,
                         const std::vector<MatrixC>& modulations)
    : model_(&model), n_(model.config().grid.n) {
  ODONN_CHECK(supports(model), "BatchKernel: unsupported model geometry");
  ODONN_CHECK_SHAPE(modulations.size() == model.num_layers(),
                    "BatchKernel: modulation table count mismatch");

  const MatrixC& transfer = model.propagator().transfer();
  kernel_re_.resize(transfer.size());
  kernel_im_.resize(transfer.size());
  for (std::size_t i = 0; i < transfer.size(); ++i) {
    kernel_re_[i] = transfer[i].real();
    kernel_im_[i] = transfer[i].imag();
  }
  mod_re_.resize(modulations.size());
  mod_im_.resize(modulations.size());
  for (std::size_t l = 0; l < modulations.size(); ++l) {
    const MatrixC& w = modulations[l];
    ODONN_CHECK_SHAPE(w.rows() == n_ && w.cols() == n_,
                      "BatchKernel: modulation table shape mismatch");
    mod_re_[l].resize(w.size());
    mod_im_[l].resize(w.size());
    for (std::size_t i = 0; i < w.size(); ++i) {
      mod_re_[l][i] = w[i].real();
      mod_im_[l][i] = w[i].imag();
    }
  }

  // The same table builders fft::Plan uses, so every butterfly multiplies
  // by bitwise-identical factors.
  const auto twiddles = fft::radix2_twiddles(n_);
  tw_re_.resize(twiddles.size());
  tw_im_.resize(twiddles.size());
  itw_im_.resize(twiddles.size());
  for (std::size_t k = 0; k < twiddles.size(); ++k) {
    tw_re_[k] = twiddles[k].real();
    tw_im_[k] = twiddles[k].imag();
    itw_im_[k] = -tw_im_[k];  // conj, exactly as Plan::execute(Inverse)
  }
  bit_reverse_ = fft::bit_reverse_permutation(n_);
}

/// One length-n radix-2 transform over a contiguous SoA segment of n lane
/// groups — the butterfly order of fft::Plan::pow2_transform, applied to
/// kLanes samples per sweep.
void BatchKernel::fft_pass(double* re, double* im, bool inverse) const {
  const std::size_t n = n_;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = bit_reverse_[i];
    if (i < j) {
      for (std::size_t s = 0; s < L; ++s) {
        std::swap(re[i * L + s], re[j * L + s]);
        std::swap(im[i * L + s], im[j * L + s]);
      }
    }
  }
  const double* tw_im = inverse ? itw_im_.data() : tw_im_.data();
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len >> 1;
    const std::size_t stride = n / len;
    for (std::size_t base = 0; base < n; base += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const double wr = tw_re_[k * stride];
        const double wi = tw_im[k * stride];
        double* pr = re + (base + k) * L;
        double* pi = im + (base + k) * L;
        double* qr = re + (base + k + half) * L;
        double* qi = im + (base + k + half) * L;
        for (std::size_t s = 0; s < L; ++s) {
          const double odd_r = qr[s] * wr - qi[s] * wi;
          const double odd_i = qr[s] * wi + qi[s] * wr;
          const double even_r = pr[s];
          const double even_i = pi[s];
          pr[s] = even_r + odd_r;
          pi[s] = even_i + odd_i;
          qr[s] = even_r - odd_r;
          qi[s] = even_i - odd_i;
        }
      }
    }
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < n * L; ++i) {
      re[i] *= scale;
      im[i] *= scale;
    }
  }
}

/// Rows-then-columns 2-D transform, mirroring fft::transform_2d: rows are
/// contiguous lane groups; columns gather into a scratch segment, transform
/// and scatter back.
void BatchKernel::transform_2d(double* re, double* im, double* col_re,
                               double* col_im, bool inverse) const {
  const std::size_t n = n_;
  for (std::size_t r = 0; r < n; ++r) {
    fft_pass(re + r * n * L, im + r * n * L, inverse);
  }
  for (std::size_t c = 0; c < n; ++c) {
    for (std::size_t r = 0; r < n; ++r) {
      const std::size_t src = (r * n + c) * L;
      for (std::size_t s = 0; s < L; ++s) {
        col_re[r * L + s] = re[src + s];
        col_im[r * L + s] = im[src + s];
      }
    }
    fft_pass(col_re, col_im, inverse);
    for (std::size_t r = 0; r < n; ++r) {
      const std::size_t dst = (r * n + c) * L;
      for (std::size_t s = 0; s < L; ++s) {
        re[dst + s] = col_re[r * L + s];
        im[dst + s] = col_im[r * L + s];
      }
    }
  }
}

/// Free-space propagation F^{-1} diag(H) F over the whole lane group.
void BatchKernel::propagate(double* re, double* im, double* col_re,
                            double* col_im) const {
  transform_2d(re, im, col_re, col_im, /*inverse=*/false);
  const std::size_t count = n_ * n_;
  for (std::size_t i = 0; i < count; ++i) {
    const double kr = kernel_re_[i];
    const double ki = kernel_im_[i];
    double* pr = re + i * L;
    double* pi = im + i * L;
    for (std::size_t s = 0; s < L; ++s) {
      const double vr = pr[s] * kr - pi[s] * ki;
      const double vi = pr[s] * ki + pi[s] * kr;
      pr[s] = vr;
      pi[s] = vi;
    }
  }
  transform_2d(re, im, col_re, col_im, /*inverse=*/true);
}

void BatchKernel::run(const std::vector<optics::Field>& inputs,
                      std::vector<std::size_t>* predictions,
                      std::vector<std::vector<double>>* sums) const {
  for (const auto& input : inputs) {
    ODONN_CHECK_SHAPE(input.grid() == model_->config().grid,
                      "BatchKernel: input grid mismatch");
  }
  if (predictions) predictions->resize(inputs.size());
  if (sums) sums->resize(inputs.size());
  if (inputs.empty()) return;

  const std::size_t n = n_;
  const std::size_t count = n * n;
  const std::size_t groups = (inputs.size() + L - 1) / L;
  const auto& detector = model_->detector();

  parallel_for_chunks(
      0, groups,
      [&](std::size_t lo, std::size_t hi) {
        std::vector<double> re(count * L), im(count * L);
        std::vector<double> col_re(n * L), col_im(n * L);
        for (std::size_t g = lo; g < hi; ++g) {
          const std::size_t first = g * L;
          const std::size_t lanes = std::min(L, inputs.size() - first);
          // Pack lane-major; idle lanes replicate lane 0 (their results are
          // discarded — lanes never interact).
          for (std::size_t s = 0; s < L; ++s) {
            const MatrixC& values =
                inputs[first + (s < lanes ? s : 0)].values();
            for (std::size_t i = 0; i < count; ++i) {
              re[i * L + s] = values[i].real();
              im[i * L + s] = values[i].imag();
            }
          }

          for (std::size_t l = 0; l < mod_re_.size(); ++l) {
            propagate(re.data(), im.data(), col_re.data(), col_im.data());
            const double* mr = mod_re_[l].data();
            const double* mi = mod_im_[l].data();
            for (std::size_t i = 0; i < count; ++i) {
              double* pr = re.data() + i * L;
              double* pi = im.data() + i * L;
              for (std::size_t s = 0; s < L; ++s) {
                const double vr = pr[s] * mr[i] - pi[s] * mi[i];
                const double vi = pr[s] * mi[i] + pi[s] * mr[i];
                pr[s] = vr;
                pi[s] = vi;
              }
            }
          }
          propagate(re.data(), im.data(), col_re.data(), col_im.data());

          // Detector readout straight off the lane group: same per-pixel
          // |f|^2 values accumulated in the same region order as
          // DetectorLayout::readout on a full intensity plane, then mapped
          // to class scores by the model's ReadoutStrategy (identity in
          // Standard mode, +/- pair differences in Differential mode).
          const auto& regions = detector.layout().regions();
          for (std::size_t s = 0; s < lanes; ++s) {
            const std::size_t k = first + s;
            std::vector<double> region_sums(regions.size(), 0.0);
            for (std::size_t rg = 0; rg < regions.size(); ++rg) {
              const auto& region = regions[rg];
              double acc = 0.0;
              for (std::size_t r = region.r0; r < region.r0 + region.size;
                   ++r) {
                for (std::size_t c = region.c0; c < region.c0 + region.size;
                     ++c) {
                  const std::size_t i = (r * n + c) * L + s;
                  acc += re[i] * re[i] + im[i] * im[i];
                }
              }
              region_sums[rg] = acc;
            }
            auto class_sums =
                detector.scores_from_region_sums(std::move(region_sums));
            if (predictions) {
              (*predictions)[k] = static_cast<std::size_t>(
                  std::max_element(class_sums.begin(), class_sums.end()) -
                  class_sums.begin());
            }
            if (sums) (*sums)[k] = std::move(class_sums);
          }
        }
      },
      /*grain=*/1);
}

}  // namespace odonn::serve

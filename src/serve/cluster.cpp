#include "serve/cluster.hpp"

#include <algorithm>
#include <utility>

#include <sstream>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "obs/metrics.hpp"
#include "tensor/stats.hpp"

namespace odonn::serve {

namespace {

/// FNV-1a over the model name bytes — the routing hash. Stable across
/// processes and platforms so request placement is reproducible.
std::uint64_t name_hash(const std::string& name) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : name) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

ServeCluster::ServeCluster(std::shared_ptr<ModelRegistry> registry,
                           ClusterOptions options)
    : options_(std::move(options)) {
  ODONN_CHECK(registry != nullptr, "cluster: null registry");
  ODONN_CHECK(options_.replicas >= 1, "cluster: replicas must be >= 1");
  ODONN_CHECK(options_.engine.label.empty(),
              "cluster: engine.label is assigned per replica; leave it empty");

  EngineOptions engine = options_.engine;
  engine.continuous = options_.continuous;
  if (engine.inner_threads == 0) {
    // Even split of the shared pool: R concurrent kernels that together
    // use the whole pool instead of each trying to claim all of it.
    engine.inner_threads =
        std::max<std::size_t>(1, thread_count() / options_.replicas);
  }
  options_.engine = engine;

  replicas_.reserve(options_.replicas);
  for (std::size_t i = 0; i < options_.replicas; ++i) {
    EngineOptions replica_options = engine;
    if (options_.label_replicas) {
      replica_options.label = "replica" + std::to_string(i);
    }
    replicas_.push_back(
        std::make_unique<InferenceEngine>(registry, replica_options));
  }
}

ServeCluster::~ServeCluster() { shutdown(); }

std::size_t ServeCluster::route(const std::string& model_name) const {
  if (replicas_.size() == 1) return 0;
  if (options_.routing == Routing::Hash) {
    return static_cast<std::size_t>(name_hash(model_name) % replicas_.size());
  }
  // Least-loaded: shortest queue wins, ties to the lowest index. The read
  // is racy across replicas by design — placement only moves load, never
  // results.
  std::size_t best = 0;
  std::size_t best_depth = replicas_[0]->pending();
  for (std::size_t i = 1; i < replicas_.size(); ++i) {
    const std::size_t depth = replicas_[i]->pending();
    if (depth < best_depth) {
      best = i;
      best_depth = depth;
    }
  }
  return best;
}

std::future<PredictResult> ServeCluster::submit(const std::string& model_name,
                                                optics::Field input) {
  return replicas_[route(model_name)]->submit(model_name, std::move(input));
}

void ServeCluster::shutdown() {
  for (auto& replica : replicas_) replica->shutdown();
}

std::size_t ServeCluster::pending() const {
  std::size_t total = 0;
  for (const auto& replica : replicas_) total += replica->pending();
  return total;
}

std::vector<std::size_t> ServeCluster::replica_pending() const {
  std::vector<std::size_t> depths;
  depths.reserve(replicas_.size());
  for (const auto& replica : replicas_) depths.push_back(replica->pending());
  return depths;
}

std::uint64_t ServeCluster::admitted() const {
  std::uint64_t total = 0;
  for (const auto& replica : replicas_) total += replica->admitted();
  return total;
}

std::uint64_t ServeCluster::rejected() const {
  std::uint64_t total = 0;
  for (const auto& replica : replicas_) total += replica->rejected();
  return total;
}

ServeCluster::ClusterSnapshot ServeCluster::stats() const {
  ClusterSnapshot snap;
  snap.replicas.reserve(replicas_.size());
  snap.replica_queue_depth.reserve(replicas_.size());
  std::uint64_t batches = 0;
  double batched_samples = 0.0;
  std::vector<double> merged_window;
  ServeStats::AttributionWindows merged_attr;
  for (const auto& replica : replicas_) {
    const ServeStats::Snapshot s = replica->stats();
    snap.requests += s.requests;
    snap.errors += s.errors;
    snap.throughput_rps += s.throughput_rps;
    batches += s.batches;
    batched_samples += s.mean_batch_size * static_cast<double>(s.batches);
    snap.replicas.push_back(s);
    const std::size_t depth = replica->pending();
    snap.queue_depth += depth;
    snap.replica_queue_depth.push_back(depth);
    const std::vector<double> window = replica->latency_window();
    merged_window.insert(merged_window.end(), window.begin(), window.end());
    const ServeStats::AttributionWindows attr = replica->attribution_window();
    merged_attr.queue_wait.insert(merged_attr.queue_wait.end(),
                                  attr.queue_wait.begin(),
                                  attr.queue_wait.end());
    merged_attr.batch_wait.insert(merged_attr.batch_wait.end(),
                                  attr.batch_wait.begin(),
                                  attr.batch_wait.end());
    merged_attr.compute.insert(merged_attr.compute.end(),
                               attr.compute.begin(), attr.compute.end());
  }
  snap.admitted = admitted();
  snap.rejected = rejected();
  if (batches > 0) {
    snap.mean_batch_size = batched_samples / static_cast<double>(batches);
  }
  const auto summarize = [](const std::vector<double>& window) {
    ClusterSnapshot::AttributionSummary summary;
    if (!window.empty()) {
      summary.p50_ms = percentile_nearest_rank(window, 0.50) * 1e3;
      summary.p99_ms = percentile_nearest_rank(window, 0.99) * 1e3;
      summary.p999_ms = percentile_nearest_rank(window, 0.999) * 1e3;
    }
    return summary;
  };
  if (!merged_window.empty()) {
    snap.p50_ms = percentile_nearest_rank(merged_window, 0.50) * 1e3;
    snap.p99_ms = percentile_nearest_rank(merged_window, 0.99) * 1e3;
    snap.p999_ms = percentile_nearest_rank(merged_window, 0.999) * 1e3;
  }
  snap.queue_wait = summarize(merged_attr.queue_wait);
  snap.batch_wait = summarize(merged_attr.batch_wait);
  snap.compute = summarize(merged_attr.compute);
  return snap;
}

void ServeCluster::reset_stats() {
  for (auto& replica : replicas_) replica->reset_stats();
}

std::string cluster_snapshot_json(
    const ServeCluster::ClusterSnapshot& snap) {
  using obs::format_double;
  const auto attr_json =
      [](const ServeCluster::ClusterSnapshot::AttributionSummary& s) {
        return "{\"p50_ms\": " + obs::format_double(s.p50_ms) +
               ", \"p99_ms\": " + obs::format_double(s.p99_ms) +
               ", \"p999_ms\": " + obs::format_double(s.p999_ms) + "}";
      };
  std::ostringstream out;
  out << "{\"requests\": " << snap.requests << ", \"errors\": " << snap.errors
      << ", \"admitted\": " << snap.admitted
      << ", \"rejected\": " << snap.rejected
      << ", \"queue_depth\": " << snap.queue_depth
      << ", \"throughput_rps\": " << format_double(snap.throughput_rps)
      << ", \"mean_batch_size\": " << format_double(snap.mean_batch_size)
      << ", \"p50_ms\": " << format_double(snap.p50_ms)
      << ", \"p99_ms\": " << format_double(snap.p99_ms)
      << ", \"p999_ms\": " << format_double(snap.p999_ms)
      << ", \"attr\": {\"queue_wait\": " << attr_json(snap.queue_wait)
      << ", \"batch_wait\": " << attr_json(snap.batch_wait)
      << ", \"compute\": " << attr_json(snap.compute) << "}"
      << ", \"replicas\": " << snap.replicas.size()
      << ", \"replica_queue_depth\": [";
  for (std::size_t i = 0; i < snap.replica_queue_depth.size(); ++i) {
    out << (i == 0 ? "" : ", ") << snap.replica_queue_depth[i];
  }
  out << "]}";
  return out.str();
}

}  // namespace odonn::serve

#include "serve/engine.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "obs/obs.hpp"

namespace odonn::serve {

namespace {

/// Process-wide request id source. Starts at 1 so an id of 0 always means
/// "never served" (span exports key off nonzero ids); shared across every
/// engine so cluster replicas never collide.
std::atomic<std::uint64_t> g_next_request_id{1};

}  // namespace

InferenceEngine::InferenceEngine(std::shared_ptr<ModelRegistry> registry,
                                 EngineOptions options)
    : registry_(std::move(registry)), options_(std::move(options)) {
  ODONN_CHECK(registry_ != nullptr, "engine: null registry");
  ODONN_CHECK(options_.max_batch >= 1, "engine: max_batch must be >= 1");
  ODONN_CHECK(options_.max_queue >= 1, "engine: max_queue must be >= 1");
#ifndef ODONN_OBS_DISABLE
  if (!options_.label.empty()) {
    // Per-replica suffix convention: serve.<label>.<instrument>, so the
    // JSON/Prometheus exports distinguish replicas without any new
    // registry API (odonn_serve_replica0_queue_depth and friends).
    auto& registry_obs = obs::MetricsRegistry::global();
    const std::string prefix = "serve." + options_.label + ".";
    labelled_.queue_depth = &registry_obs.gauge(prefix + "queue_depth");
    labelled_.requests = &registry_obs.counter(prefix + "requests");
    labelled_.rejected = &registry_obs.counter(prefix + "rejected");
    labelled_.latency_ms = &registry_obs.histogram(prefix + "latency_ms");
    labelled_.batch_size = &registry_obs.histogram(prefix + "batch_size");
  }
#endif
  worker_ = std::thread([this] { drain_loop(); });
}

InferenceEngine::~InferenceEngine() { shutdown(); }

void InferenceEngine::note_queue_depth(std::size_t depth) {
  ODONN_OBS_GAUGE_SET("serve.queue_depth", depth);
  if (labelled_.queue_depth != nullptr) {
    labelled_.queue_depth->set(static_cast<std::int64_t>(depth));
  }
}

std::future<PredictResult> InferenceEngine::submit(
    const std::string& model_name, optics::Field input) {
  Request request;
  request.model = model_name;
  request.input = std::move(input);
  request.id = g_next_request_id.fetch_add(1, std::memory_order_relaxed);
  request.enqueued = ServeStats::Clock::now();
  std::future<PredictResult> future = request.promise.get_future();
  {
    MutexLock lock(mutex_);
    if (stopping_) throw Error("engine: submit after shutdown");
    if (queue_.size() >= options_.max_queue) {
      if (options_.backpressure == Backpressure::Reject) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        ODONN_OBS_COUNT("serve.rejected", 1);
        if (labelled_.rejected != nullptr) labelled_.rejected->add(1);
        throw OverloadError(
            "engine: request queue full (depth " +
            std::to_string(options_.max_queue) +
            "); retry later or switch backpressure to block");
      }
      // Block: park until the drain thread frees a slot (or shutdown).
      space_cv_.wait(mutex_, [this]() ODONN_REQUIRES(mutex_) {
        return stopping_ || queue_.size() < options_.max_queue;
      });
      if (stopping_) throw Error("engine: submit after shutdown");
    }
    queue_.push_back(std::move(request));
    admitted_.fetch_add(1, std::memory_order_relaxed);
    ODONN_OBS_COUNT("serve.admitted", 1);
    note_queue_depth(queue_.size());
  }
  cv_.notify_one();
  return future;
}

void InferenceEngine::shutdown() {
  {
    MutexLock lock(mutex_);
    if (stopping_ && !worker_.joinable()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  space_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

std::size_t InferenceEngine::pending() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

void InferenceEngine::reset_stats() {
  stats_.reset();
  admitted_.store(0, std::memory_order_relaxed);
  rejected_.store(0, std::memory_order_relaxed);
}

void InferenceEngine::drain_loop() {
  // Pin this replica's share of the shared pool for every batch the drain
  // thread evaluates (0 = unrestricted, the single-engine default).
  ScopedThreadBudget budget(options_.inner_threads);
  for (;;) {
    std::vector<Request> batch;
    {
      MutexLock lock(mutex_);
      cv_.wait(mutex_, [this]() ODONN_REQUIRES(mutex_) {
        return stopping_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // stopping, fully drained

      // Window mode: once work is pending, give co-submitted traffic a
      // short chance to fill the batch — unless we are shutting down, in
      // which case drain as fast as possible. Continuous mode never waits:
      // the kernel just freed up (or the engine was idle), so whatever is
      // queued right now forms the next batch immediately.
      if (!options_.continuous && !stopping_ &&
          queue_.size() < options_.max_batch &&
          options_.batch_window.count() > 0) {
        cv_.wait_for(mutex_, options_.batch_window,
                     [this]() ODONN_REQUIRES(mutex_) {
                       return stopping_ || queue_.size() >= options_.max_batch;
                     });
      }

      const std::size_t take = std::min(queue_.size(), options_.max_batch);
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      note_queue_depth(queue_.size());
    }
    // Slots freed: wake submitters parked on Backpressure::Block.
    space_cv_.notify_all();

    // One dequeue stamp for the whole batch: every member left the queue
    // at the same drain, and a single clock read keeps attribution cheap.
    // Taken BEFORE on_batch_start so hook time lands in batch_wait.
    const ServeStats::Clock::time_point dequeued = ServeStats::Clock::now();
    for (Request& request : batch) request.dequeued = dequeued;

    if (options_.on_batch_start) options_.on_batch_start(batch.size());

    // Group by model, preserving submission order within each group.
    std::vector<std::pair<std::string, std::vector<Request*>>> groups;
    for (Request& request : batch) {
      auto it = std::find_if(groups.begin(), groups.end(), [&](const auto& g) {
        return g.first == request.model;
      });
      if (it == groups.end()) {
        groups.emplace_back(request.model, std::vector<Request*>{});
        it = std::prev(groups.end());
      }
      it->second.push_back(&request);
    }
    for (auto& [name, group] : groups) {
      run_group(name, std::move(group));
    }

    // Drop plan-cache entries whose registry name is gone, so erased or
    // superseded snapshots (masks, modulation tables, kernel planes) don't
    // stay resident for the engine's whole lifetime.
    for (auto it = plans_.begin(); it != plans_.end();) {
      if (registry_->find(it->first) == nullptr) {
        it = plans_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void InferenceEngine::run_group(const std::string& model_name,
                                std::vector<Request*> group) {
  const auto fail = [&](std::exception_ptr error) {
    for (Request* request : group) {
      stats_.record_error();
      request->promise.set_exception(error);
    }
  };

  std::shared_ptr<const donn::DonnModel> model = registry_->find(model_name);
  if (!model) {
    fail(std::make_exception_ptr(
        ConfigError("registry: unknown model '" + model_name + "'")));
    return;
  }

  // Plan reuse: rebuild the forward pass only when the registry published a
  // new snapshot under this name.
  auto it = plans_.find(model_name);
  if (it == plans_.end() || it->second.model_ptr() != model) {
    it = plans_.insert_or_assign(model_name, BatchedForward(model)).first;
  }
  const BatchedForward& forward = it->second;

  // Reject malformed requests individually before batching, so one bad
  // input cannot poison the co-batched valid ones.
  std::vector<Request*> valid;
  valid.reserve(group.size());
  for (Request* request : group) {
    if (request->input.grid() == model->config().grid) {
      valid.push_back(request);
    } else {
      stats_.record_error();
      request->promise.set_exception(std::make_exception_ptr(ShapeError(
          "engine: input grid does not match model '" + model_name + "'")));
    }
  }
  group = std::move(valid);
  if (group.empty()) return;

  std::vector<optics::Field> inputs;
  inputs.reserve(group.size());
  for (Request* request : group) inputs.push_back(std::move(request->input));

  const ServeStats::Clock::time_point kernel_start = ServeStats::Clock::now();
  BatchedForward::Result result;
  try {
    result = forward.run(inputs);
  } catch (...) {
    fail(std::current_exception());
    return;
  }

  stats_.record_batch(group.size());
  if (labelled_.batch_size != nullptr) {
    labelled_.batch_size->observe(static_cast<double>(group.size()));
  }
  const ServeStats::Clock::time_point done = ServeStats::Clock::now();
  const auto seconds = [](ServeStats::Clock::duration d) {
    return std::chrono::duration<double>(d).count();
  };
  const auto micros = [](ServeStats::Clock::duration d) {
    return std::chrono::duration_cast<std::chrono::microseconds>(d).count();
  };
  const bool tracing = obs::tracing_enabled();
  for (std::size_t i = 0; i < group.size(); ++i) {
    Request& request = *group[i];
    PredictResult prediction;
    prediction.predicted = result.predictions[i];
    prediction.detector_sums = std::move(result.detector_sums[i]);
    // All four figures come from the same stamps, so the components sum
    // to the total up to per-component FP rounding.
    Attribution attr;
    attr.queue_wait_s = seconds(request.dequeued - request.enqueued);
    attr.batch_wait_s = seconds(kernel_start - request.dequeued);
    attr.compute_s = seconds(done - kernel_start);
    const double latency = seconds(done - request.enqueued);
    prediction.latency.request_id = request.id;
    prediction.latency.queue_wait_s = attr.queue_wait_s;
    prediction.latency.batch_wait_s = attr.batch_wait_s;
    prediction.latency.compute_s = attr.compute_s;
    prediction.latency.total_s = latency;
    stats_.record_request(latency, attr);
    if (labelled_.requests != nullptr) labelled_.requests->add(1);
    if (labelled_.latency_ms != nullptr) {
      labelled_.latency_ms->observe(latency * 1e3);
    }
    if (tracing) {
      // Four spans linked by request_id: the request envelope plus one
      // child per attribution component, so a Chrome-trace viewer shows
      // exactly where each request's latency went.
      const std::int64_t t_enq = obs::trace_timestamp_us(request.enqueued);
      const std::int64_t t_deq = obs::trace_timestamp_us(request.dequeued);
      const std::int64_t t_kernel = obs::trace_timestamp_us(kernel_start);
      obs::record_span("request", t_enq, micros(done - request.enqueued), 1,
                       request.id);
      obs::record_span("request/queue_wait", t_enq,
                       micros(request.dequeued - request.enqueued), 2,
                       request.id);
      obs::record_span("request/batch_wait", t_deq,
                       micros(kernel_start - request.dequeued), 2, request.id);
      obs::record_span("request/compute", t_kernel, micros(done - kernel_start),
                       2, request.id);
    }
    request.promise.set_value(std::move(prediction));
  }
}

}  // namespace odonn::serve

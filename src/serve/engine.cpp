#include "serve/engine.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace odonn::serve {

InferenceEngine::InferenceEngine(std::shared_ptr<ModelRegistry> registry,
                                 EngineOptions options)
    : registry_(std::move(registry)), options_(options) {
  ODONN_CHECK(registry_ != nullptr, "engine: null registry");
  ODONN_CHECK(options_.max_batch >= 1, "engine: max_batch must be >= 1");
  ODONN_CHECK(options_.max_queue >= 1, "engine: max_queue must be >= 1");
  worker_ = std::thread([this] { drain_loop(); });
}

InferenceEngine::~InferenceEngine() { shutdown(); }

std::future<PredictResult> InferenceEngine::submit(
    const std::string& model_name, optics::Field input) {
  Request request;
  request.model = model_name;
  request.input = std::move(input);
  request.enqueued = ServeStats::Clock::now();
  std::future<PredictResult> future = request.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) throw Error("engine: submit after shutdown");
    if (queue_.size() >= options_.max_queue) {
      throw Error("engine: request queue full");
    }
    queue_.push_back(std::move(request));
    ODONN_OBS_GAUGE_SET("serve.queue_depth", queue_.size());
  }
  cv_.notify_one();
  return future;
}

void InferenceEngine::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && !worker_.joinable()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

std::size_t InferenceEngine::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void InferenceEngine::drain_loop() {
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, fully drained

      // Batch window: once work is pending, give co-submitted traffic a
      // short chance to fill the batch — unless we are shutting down, in
      // which case drain as fast as possible.
      if (!stopping_ && queue_.size() < options_.max_batch &&
          options_.batch_window.count() > 0) {
        cv_.wait_for(lock, options_.batch_window, [this] {
          return stopping_ || queue_.size() >= options_.max_batch;
        });
      }

      const std::size_t take = std::min(queue_.size(), options_.max_batch);
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      ODONN_OBS_GAUGE_SET("serve.queue_depth", queue_.size());
    }

    // Group by model, preserving submission order within each group.
    std::vector<std::pair<std::string, std::vector<Request*>>> groups;
    for (Request& request : batch) {
      auto it = std::find_if(groups.begin(), groups.end(), [&](const auto& g) {
        return g.first == request.model;
      });
      if (it == groups.end()) {
        groups.emplace_back(request.model, std::vector<Request*>{});
        it = std::prev(groups.end());
      }
      it->second.push_back(&request);
    }
    for (auto& [name, group] : groups) {
      run_group(name, std::move(group));
    }

    // Drop plan-cache entries whose registry name is gone, so erased or
    // superseded snapshots (masks, modulation tables, kernel planes) don't
    // stay resident for the engine's whole lifetime.
    for (auto it = plans_.begin(); it != plans_.end();) {
      if (registry_->find(it->first) == nullptr) {
        it = plans_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void InferenceEngine::run_group(const std::string& model_name,
                                std::vector<Request*> group) {
  const auto fail = [&](std::exception_ptr error) {
    for (Request* request : group) {
      stats_.record_error();
      request->promise.set_exception(error);
    }
  };

  std::shared_ptr<const donn::DonnModel> model = registry_->find(model_name);
  if (!model) {
    fail(std::make_exception_ptr(
        ConfigError("registry: unknown model '" + model_name + "'")));
    return;
  }

  // Plan reuse: rebuild the forward pass only when the registry published a
  // new snapshot under this name.
  auto it = plans_.find(model_name);
  if (it == plans_.end() || it->second.model_ptr() != model) {
    it = plans_.insert_or_assign(model_name, BatchedForward(model)).first;
  }
  const BatchedForward& forward = it->second;

  // Reject malformed requests individually before batching, so one bad
  // input cannot poison the co-batched valid ones.
  std::vector<Request*> valid;
  valid.reserve(group.size());
  for (Request* request : group) {
    if (request->input.grid() == model->config().grid) {
      valid.push_back(request);
    } else {
      stats_.record_error();
      request->promise.set_exception(std::make_exception_ptr(ShapeError(
          "engine: input grid does not match model '" + model_name + "'")));
    }
  }
  group = std::move(valid);
  if (group.empty()) return;

  std::vector<optics::Field> inputs;
  inputs.reserve(group.size());
  for (Request* request : group) inputs.push_back(std::move(request->input));

  BatchedForward::Result result;
  try {
    result = forward.run(inputs);
  } catch (...) {
    fail(std::current_exception());
    return;
  }

  stats_.record_batch(group.size());
  const ServeStats::Clock::time_point done = ServeStats::Clock::now();
  for (std::size_t i = 0; i < group.size(); ++i) {
    PredictResult prediction;
    prediction.predicted = result.predictions[i];
    prediction.detector_sums = std::move(result.detector_sums[i]);
    stats_.record_request(
        std::chrono::duration<double>(done - group[i]->enqueued).count());
    group[i]->promise.set_value(std::move(prediction));
  }
}

}  // namespace odonn::serve

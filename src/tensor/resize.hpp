// Image-style resampling helpers: the paper interpolates 28x28 dataset
// images up to the 200x200 optical grid (§IV-A1); we additionally support
// embedding a resized image centered in a larger aperture.
#pragma once

#include <cstddef>

#include "tensor/matrix.hpp"

namespace odonn {

/// Bilinear resampling with edge clamping (align_corners=true semantics:
/// corners map to corners, which matches torch's interpolate used by DONN
/// codebases for upscaling masks).
MatrixD bilinear_resize(const MatrixD& src, std::size_t out_rows,
                        std::size_t out_cols);

/// Nearest-neighbor resampling (used for label-like / mask-like grids).
MatrixD nearest_resize(const MatrixD& src, std::size_t out_rows,
                       std::size_t out_cols);

/// Places `src` centered inside a rows x cols canvas filled with `fill`.
/// src must fit.
MatrixD embed_centered(const MatrixD& src, std::size_t rows, std::size_t cols,
                       double fill = 0.0);

}  // namespace odonn

#include "tensor/resize.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace odonn {

MatrixD bilinear_resize(const MatrixD& src, std::size_t out_rows,
                        std::size_t out_cols) {
  ODONN_CHECK(!src.empty(), "bilinear_resize: empty source");
  ODONN_CHECK(out_rows >= 1 && out_cols >= 1,
              "bilinear_resize: empty destination");
  MatrixD out(out_rows, out_cols);
  const double row_scale =
      out_rows == 1 ? 0.0
                    : static_cast<double>(src.rows() - 1) /
                          static_cast<double>(out_rows - 1);
  const double col_scale =
      out_cols == 1 ? 0.0
                    : static_cast<double>(src.cols() - 1) /
                          static_cast<double>(out_cols - 1);
  for (std::size_t r = 0; r < out_rows; ++r) {
    const double src_r = static_cast<double>(r) * row_scale;
    const std::size_t r0 = static_cast<std::size_t>(src_r);
    const std::size_t r1 = std::min(r0 + 1, src.rows() - 1);
    const double fr = src_r - static_cast<double>(r0);
    for (std::size_t c = 0; c < out_cols; ++c) {
      const double src_c = static_cast<double>(c) * col_scale;
      const std::size_t c0 = static_cast<std::size_t>(src_c);
      const std::size_t c1 = std::min(c0 + 1, src.cols() - 1);
      const double fc = src_c - static_cast<double>(c0);
      const double top = src(r0, c0) * (1.0 - fc) + src(r0, c1) * fc;
      const double bot = src(r1, c0) * (1.0 - fc) + src(r1, c1) * fc;
      out(r, c) = top * (1.0 - fr) + bot * fr;
    }
  }
  return out;
}

MatrixD nearest_resize(const MatrixD& src, std::size_t out_rows,
                       std::size_t out_cols) {
  ODONN_CHECK(!src.empty(), "nearest_resize: empty source");
  ODONN_CHECK(out_rows >= 1 && out_cols >= 1,
              "nearest_resize: empty destination");
  MatrixD out(out_rows, out_cols);
  for (std::size_t r = 0; r < out_rows; ++r) {
    std::size_t src_r = (r * src.rows()) / out_rows;
    src_r = std::min(src_r, src.rows() - 1);
    for (std::size_t c = 0; c < out_cols; ++c) {
      std::size_t src_c = (c * src.cols()) / out_cols;
      src_c = std::min(src_c, src.cols() - 1);
      out(r, c) = src(src_r, src_c);
    }
  }
  return out;
}

MatrixD embed_centered(const MatrixD& src, std::size_t rows, std::size_t cols,
                       double fill) {
  ODONN_CHECK_SHAPE(src.rows() <= rows && src.cols() <= cols,
                    "embed_centered: source larger than canvas");
  MatrixD out(rows, cols, fill);
  const std::size_t r0 = (rows - src.rows()) / 2;
  const std::size_t c0 = (cols - src.cols()) / 2;
  out.set_block(r0, c0, src);
  return out;
}

}  // namespace odonn

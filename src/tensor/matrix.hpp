// Dense row-major 2-D array used everywhere in odonn (phase masks, fields,
// images, gradients). Value-semantic, bounds-checked in at(), unchecked in
// operator() for hot loops. Deliberately small: no expression templates, no
// views that outlive their parent — the paper's pipeline only needs whole-
// matrix elementwise work plus block reads/writes.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace odonn {

template <typename T>
class Matrix {
 public:
  using value_type = T;

  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  /// Builds from nested initializer lists; all rows must be equal length.
  Matrix(std::initializer_list<std::initializer_list<T>> rows) {
    rows_ = rows.size();
    cols_ = rows_ == 0 ? 0 : rows.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& row : rows) {
      ODONN_CHECK_SHAPE(row.size() == cols_,
                        "initializer rows must have equal length");
      data_.insert(data_.end(), row.begin(), row.end());
    }
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  T& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const T& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  T& at(std::size_t r, std::size_t c) {
    ODONN_CHECK_SHAPE(r < rows_ && c < cols_, "Matrix::at out of range");
    return data_[r * cols_ + c];
  }
  const T& at(std::size_t r, std::size_t c) const {
    ODONN_CHECK_SHAPE(r < rows_ && c < cols_, "Matrix::at out of range");
    return data_[r * cols_ + c];
  }

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  /// Elementwise in-place map.
  template <typename Fn>
  void transform(Fn&& fn) {
    for (auto& v : data_) v = fn(v);
  }

  /// Elementwise out-of-place map (possibly changing element type).
  template <typename Fn>
  auto map(Fn&& fn) const {
    using U = decltype(fn(std::declval<T>()));
    Matrix<U> out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i) out[i] = fn(data_[i]);
    return out;
  }

  T sum() const {
    T acc{};
    for (const auto& v : data_) acc += v;
    return acc;
  }

  Matrix& operator+=(const Matrix& other) {
    ODONN_CHECK_SHAPE(same_shape(other), "operator+= shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other[i];
    return *this;
  }

  Matrix& operator-=(const Matrix& other) {
    ODONN_CHECK_SHAPE(same_shape(other), "operator-= shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other[i];
    return *this;
  }

  Matrix& operator*=(T scalar) {
    for (auto& v : data_) v *= scalar;
    return *this;
  }

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, T scalar) { return a *= scalar; }
  friend Matrix operator*(T scalar, Matrix a) { return a *= scalar; }

  /// Elementwise (Hadamard) product.
  friend Matrix hadamard(const Matrix& a, const Matrix& b) {
    ODONN_CHECK_SHAPE(a.same_shape(b), "hadamard shape mismatch");
    Matrix out(a.rows_, a.cols_);
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
    return out;
  }

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

  /// Copies an h x w sub-block starting at (r0, c0).
  Matrix block(std::size_t r0, std::size_t c0, std::size_t h,
               std::size_t w) const {
    ODONN_CHECK_SHAPE(r0 + h <= rows_ && c0 + w <= cols_,
                      "Matrix::block out of range");
    Matrix out(h, w);
    for (std::size_t r = 0; r < h; ++r) {
      for (std::size_t c = 0; c < w; ++c) out(r, c) = (*this)(r0 + r, c0 + c);
    }
    return out;
  }

  /// Writes `src` into this matrix with top-left corner at (r0, c0).
  void set_block(std::size_t r0, std::size_t c0, const Matrix& src) {
    ODONN_CHECK_SHAPE(r0 + src.rows_ <= rows_ && c0 + src.cols_ <= cols_,
                      "Matrix::set_block out of range");
    for (std::size_t r = 0; r < src.rows_; ++r) {
      for (std::size_t c = 0; c < src.cols_; ++c) {
        (*this)(r0 + r, c0 + c) = src(r, c);
      }
    }
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using MatrixD = Matrix<double>;
using MatrixC = Matrix<std::complex<double>>;
using MatrixU8 = Matrix<std::uint8_t>;

/// "RxC" shape string for error messages.
std::string shape_string(std::size_t rows, std::size_t cols);

/// Max |a-b| over all elements; shapes must match.
double max_abs_diff(const MatrixD& a, const MatrixD& b);
double max_abs_diff(const MatrixC& a, const MatrixC& b);

/// Frobenius norm.
double frobenius_norm(const MatrixD& m);
double frobenius_norm(const MatrixC& m);

}  // namespace odonn

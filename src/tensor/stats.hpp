// Scalar statistics over matrices — used by the sparsifiers (percentile
// thresholds), intra-block smoothness (variance) and bench reporting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"

namespace odonn {

double mean(const MatrixD& m);

/// Population variance (divide by N), matching the paper's per-block
/// variance in Fig. 4.
double variance(const MatrixD& m);
double stddev(const MatrixD& m);

double min_value(const MatrixD& m);
double max_value(const MatrixD& m);

/// q-th percentile (q in [0, 100]) with linear interpolation between ranks,
/// matching numpy.percentile's default. Input copied and sorted.
double percentile(std::vector<double> values, double q);

/// 1-based nearest-rank index for quantile q in [0, 1] over n samples:
/// ceil(q*n) clamped to [1, n]. The repo-wide rank rule — fab's robustness
/// percentiles and serve's latency percentiles both route through it.
/// Products q*n that are integral in exact arithmetic but land one ulp
/// above the integer in doubles (e.g. 0.05 * 20) are snapped down, so the
/// rank never drifts up at exact-multiple boundaries. q = 0 maps to rank 1
/// (the minimum), q = 1 to rank n (the maximum).
std::size_t nearest_rank(double q, std::size_t n);

/// Nearest-rank quantile (q in [0, 1], no interpolation): the sorted
/// sample at nearest_rank(q, n). Input copied and sorted.
double percentile_nearest_rank(std::vector<double> values, double q);

/// Percentile of |values| of a matrix (used by magnitude sparsifiers).
double abs_percentile(const MatrixD& m, double q);

/// FNV-1a offset basis — start value for the digest fold below.
inline constexpr std::uint64_t kFnv1aBasis = 0xcbf29ce484222325ULL;

/// Folds one double's IEEE-754 bit pattern into an FNV-1a hash: the
/// repo-wide digest convention (fab::RobustnessReport::digest, the bench
/// train digests). Any single-bit difference in any folded value changes
/// the hash, which is what the cross-ODONN_THREADS determinism checks in
/// scripts/check.sh compare.
std::uint64_t fnv1a_mix(std::uint64_t hash, double value);

}  // namespace odonn

// Scalar statistics over matrices — used by the sparsifiers (percentile
// thresholds), intra-block smoothness (variance) and bench reporting.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/matrix.hpp"

namespace odonn {

double mean(const MatrixD& m);

/// Population variance (divide by N), matching the paper's per-block
/// variance in Fig. 4.
double variance(const MatrixD& m);
double stddev(const MatrixD& m);

double min_value(const MatrixD& m);
double max_value(const MatrixD& m);

/// q-th percentile (q in [0, 100]) with linear interpolation between ranks,
/// matching numpy.percentile's default. Input copied and sorted.
double percentile(std::vector<double> values, double q);

/// Percentile of |values| of a matrix (used by magnitude sparsifiers).
double abs_percentile(const MatrixD& m, double q);

}  // namespace odonn

#include "tensor/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/error.hpp"

namespace odonn {

double mean(const MatrixD& m) {
  ODONN_CHECK(!m.empty(), "mean of empty matrix");
  return m.sum() / static_cast<double>(m.size());
}

double variance(const MatrixD& m) {
  ODONN_CHECK(!m.empty(), "variance of empty matrix");
  const double mu = mean(m);
  double acc = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    const double d = m[i] - mu;
    acc += d * d;
  }
  return acc / static_cast<double>(m.size());
}

double stddev(const MatrixD& m) { return std::sqrt(variance(m)); }

double min_value(const MatrixD& m) {
  ODONN_CHECK(!m.empty(), "min of empty matrix");
  return *std::min_element(m.begin(), m.end());
}

double max_value(const MatrixD& m) {
  ODONN_CHECK(!m.empty(), "max of empty matrix");
  return *std::max_element(m.begin(), m.end());
}

double percentile(std::vector<double> values, double q) {
  ODONN_CHECK(!values.empty(), "percentile of empty vector");
  ODONN_CHECK(q >= 0.0 && q <= 100.0, "percentile q must be in [0, 100]");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double rank = q / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

std::size_t nearest_rank(double q, std::size_t n) {
  ODONN_CHECK(n > 0, "nearest_rank of empty sample");
  ODONN_CHECK(q >= 0.0 && q <= 1.0, "nearest_rank q must be in [0, 1]");
  // The epsilon absorbs one-ulp-high products like 0.05 * 20 ==
  // 1.0000000000000002, whose ceil would otherwise skip a rank; it is far
  // below the 1/n spacing of distinct ranks for any practical n.
  const double scaled = q * static_cast<double>(n);
  const auto rank = static_cast<std::size_t>(std::ceil(scaled - 1e-9));
  return std::max<std::size_t>(1, std::min(rank, n));
}

double percentile_nearest_rank(std::vector<double> values, double q) {
  ODONN_CHECK(!values.empty(), "percentile of empty vector");
  std::sort(values.begin(), values.end());
  return values[nearest_rank(q, values.size()) - 1];
}

double abs_percentile(const MatrixD& m, double q) {
  std::vector<double> mags(m.size());
  for (std::size_t i = 0; i < m.size(); ++i) mags[i] = std::abs(m[i]);
  return percentile(std::move(mags), q);
}

std::uint64_t fnv1a_mix(std::uint64_t hash, double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  for (int shift = 0; shift < 64; shift += 8) {
    hash ^= (bits >> shift) & 0xffULL;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace odonn

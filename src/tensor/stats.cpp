#include "tensor/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace odonn {

double mean(const MatrixD& m) {
  ODONN_CHECK(!m.empty(), "mean of empty matrix");
  return m.sum() / static_cast<double>(m.size());
}

double variance(const MatrixD& m) {
  ODONN_CHECK(!m.empty(), "variance of empty matrix");
  const double mu = mean(m);
  double acc = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    const double d = m[i] - mu;
    acc += d * d;
  }
  return acc / static_cast<double>(m.size());
}

double stddev(const MatrixD& m) { return std::sqrt(variance(m)); }

double min_value(const MatrixD& m) {
  ODONN_CHECK(!m.empty(), "min of empty matrix");
  return *std::min_element(m.begin(), m.end());
}

double max_value(const MatrixD& m) {
  ODONN_CHECK(!m.empty(), "max of empty matrix");
  return *std::max_element(m.begin(), m.end());
}

double percentile(std::vector<double> values, double q) {
  ODONN_CHECK(!values.empty(), "percentile of empty vector");
  ODONN_CHECK(q >= 0.0 && q <= 100.0, "percentile q must be in [0, 100]");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double rank = q / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double abs_percentile(const MatrixD& m, double q) {
  std::vector<double> mags(m.size());
  for (std::size_t i = 0; i < m.size(); ++i) mags[i] = std::abs(m[i]);
  return percentile(std::move(mags), q);
}

}  // namespace odonn

#include "tensor/matrix.hpp"

#include <cmath>

namespace odonn {

std::string shape_string(std::size_t rows, std::size_t cols) {
  return std::to_string(rows) + "x" + std::to_string(cols);
}

double max_abs_diff(const MatrixD& a, const MatrixD& b) {
  ODONN_CHECK_SHAPE(a.same_shape(b), "max_abs_diff shape mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

double max_abs_diff(const MatrixC& a, const MatrixC& b) {
  ODONN_CHECK_SHAPE(a.same_shape(b), "max_abs_diff shape mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

double frobenius_norm(const MatrixD& m) {
  double acc = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) acc += m[i] * m[i];
  return std::sqrt(acc);
}

double frobenius_norm(const MatrixC& m) {
  double acc = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) acc += std::norm(m[i]);
  return std::sqrt(acc);
}

}  // namespace odonn

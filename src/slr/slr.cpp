#include "slr/slr.hpp"

#include <cmath>

#include "common/error.hpp"

namespace odonn::slr {

SlrState::SlrState(const std::vector<MatrixD>& weights,
                   const SlrOptions& options)
    : options_(options), s_(options.s0) {
  ODONN_CHECK(!weights.empty(), "SLR: no weights");
  ODONN_CHECK(options.rho > 0.0, "SLR: rho must be positive");
  ODONN_CHECK(options.s0 > 0.0, "SLR: s0 must be positive");
  ODONN_CHECK(options.M >= 1, "SLR: M must be >= 1");
  z_ = project(weights);
  lambda_.reserve(weights.size());
  for (const auto& w : weights) lambda_.emplace_back(w.rows(), w.cols(), 0.0);
  prev_violation_ = violation_norm(weights);
}

std::vector<MatrixD> SlrState::project(
    const std::vector<MatrixD>& weights) const {
  std::vector<MatrixD> projected;
  projected.reserve(weights.size());
  for (const auto& w : weights) {
    const auto mask = sparsify::sparsify(w, options_.scheme);
    MatrixD z = w;
    sparsify::apply_mask(z, mask);
    projected.push_back(std::move(z));
  }
  return projected;
}

double SlrState::violation_norm(const std::vector<MatrixD>& weights) const {
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    for (std::size_t j = 0; j < weights[i].size(); ++j) {
      const double d = weights[i][j] - z_[i][j];
      acc += d * d;
    }
  }
  return std::sqrt(acc);
}

double SlrState::penalty_value(const std::vector<MatrixD>& weights) const {
  ODONN_CHECK_SHAPE(weights.size() == z_.size(), "SLR: layer count mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    for (std::size_t j = 0; j < weights[i].size(); ++j) {
      const double d = weights[i][j] - z_[i][j];
      acc += lambda_[i][j] * d + 0.5 * options_.rho * d * d;
    }
  }
  return acc;
}

void SlrState::add_penalty_gradient(const std::vector<MatrixD>& weights,
                                    std::vector<MatrixD>& grads) const {
  ODONN_CHECK_SHAPE(weights.size() == z_.size() && grads.size() == z_.size(),
                    "SLR: layer count mismatch");
  for (std::size_t i = 0; i < weights.size(); ++i) {
    for (std::size_t j = 0; j < weights[i].size(); ++j) {
      grads[i][j] += lambda_[i][j] + options_.rho * (weights[i][j] - z_[i][j]);
    }
  }
}

void SlrState::advance_multipliers(const std::vector<MatrixD>& weights) {
  const double violation = violation_norm(weights);
  if (violation <= 1e-15) return;  // constraints satisfied; nothing to push

  ++k_;
  const double kf = static_cast<double>(k_);
  // Zhao–Luh schedule: alpha_k = 1 - 1/(M k^p), p = 1 - 1/k^r.
  const double p = 1.0 - 1.0 / std::pow(kf, options_.r);
  const double alpha =
      1.0 - 1.0 / (static_cast<double>(options_.M) * std::pow(kf, p));
  if (k_ > 1 && prev_violation_ > 1e-15) {
    s_ = alpha * s_ * prev_violation_ / violation;
  }
  for (std::size_t i = 0; i < weights.size(); ++i) {
    for (std::size_t j = 0; j < weights[i].size(); ++j) {
      lambda_[i][j] += s_ * (weights[i][j] - z_[i][j]);
    }
  }
  prev_violation_ = violation;
}

bool SlrState::round(const std::vector<MatrixD>& weights,
                     double surrogate_loss) {
  // Surrogate optimality check on the W-step result.
  const bool improved =
      !have_surrogate_ || surrogate_loss < best_surrogate_;
  if (improved) {
    best_surrogate_ = surrogate_loss;
    have_surrogate_ = true;
    advance_multipliers(weights);
  }

  // Z subproblem: argmin_Z tr(L^T(W-Z)) + rho/2||W-Z||^2 + g(Z)
  //             = project(W + Lambda/rho) onto the sparse set.
  std::vector<MatrixD> shifted;
  shifted.reserve(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    MatrixD m = weights[i];
    for (std::size_t j = 0; j < m.size(); ++j) {
      m[j] += lambda_[i][j] / options_.rho;
    }
    shifted.push_back(std::move(m));
  }
  auto new_z = project(shifted);
  bool support_changed = false;
  for (std::size_t i = 0; i < new_z.size() && !support_changed; ++i) {
    for (std::size_t j = 0; j < new_z[i].size(); ++j) {
      if ((new_z[i][j] == 0.0) != (z_[i][j] == 0.0)) {
        support_changed = true;
        break;
      }
    }
  }
  z_ = std::move(new_z);

  // Z-side surrogate check: the Z-step minimizes the Lagrangian in Z, so it
  // cannot increase it; advance the multipliers on the new violation.
  advance_multipliers(weights);
  return support_changed;
}

std::vector<sparsify::SparsityMask> SlrState::masks() const {
  std::vector<sparsify::SparsityMask> masks;
  masks.reserve(z_.size());
  for (const auto& z : z_) {
    sparsify::SparsityMask mask(z.rows(), z.cols(), 1);
    for (std::size_t j = 0; j < z.size(); ++j) {
      if (z[j] == 0.0) mask[j] = 0;
    }
    masks.push_back(std::move(mask));
  }
  return masks;
}

}  // namespace odonn::slr

// Surrogate Lagrangian Relaxation (SLR) block-sparsity optimizer
// (paper §III-C2; Gurevin et al., IJCAI'20).
//
// The constrained problem min_W loss(W) s.t. W block-sparse is relaxed with
// duplicate variables Z and multipliers Lambda (Eq. 6-7):
//   L(W, Z, Lambda) = loss(W) + sum_i tr(Lambda_i^T (W_i - Z_i))
//                   + (rho/2) sum_i ||W_i - Z_i||_F^2
// and solved by alternating two subproblems:
//   1. W-step  — the trainer minimizes L over W (normal gradient steps on
//      loss plus the penalty gradient Lambda + rho (W - Z) from this class);
//   2. Z-step  — closed form: Euclidean projection of W + Lambda/rho onto
//      the block-sparse set (keep the top blocks by L2 norm).
// Multipliers advance with the surrogate subgradient rule: they are only
// updated when the surrogate optimality condition (the Lagrangian decreased
// since the last update) holds, with the Zhao–Luh stepsize schedule
//   alpha_k = 1 - 1/(M * k^p),  p = 1 - 1/k^r,
//   s_k = alpha_k * s_{k-1} * ||v_{k-1}|| / ||v_k||,   v = W - Z.
// Defaults follow the paper's §IV-A2: rho=0.1, M=300, r=0.1, s0=0.01.
#pragma once

#include <cstddef>
#include <vector>

#include "sparsify/schemes.hpp"
#include "tensor/matrix.hpp"

namespace odonn::slr {

struct SlrOptions {
  double rho = 0.1;
  double s0 = 0.01;
  double r = 0.1;
  std::size_t M = 300;
  sparsify::SchemeOptions scheme{};  ///< target sparsity pattern for Z
};

class SlrState {
 public:
  /// Initializes Z_i = project(W_i), Lambda_i = 0.
  SlrState(const std::vector<MatrixD>& weights, const SlrOptions& options);

  const SlrOptions& options() const { return options_; }
  const std::vector<MatrixD>& z() const { return z_; }
  const std::vector<MatrixD>& lambda() const { return lambda_; }
  std::size_t multiplier_updates() const { return k_; }
  double stepsize() const { return s_; }

  /// Penalty part of the Lagrangian: sum_i tr(L^T(W-Z)) + rho/2 ||W-Z||^2.
  double penalty_value(const std::vector<MatrixD>& weights) const;

  /// Adds d(penalty)/dW_i = Lambda_i + rho (W_i - Z_i) into `grads`.
  void add_penalty_gradient(const std::vector<MatrixD>& weights,
                            std::vector<MatrixD>& grads) const;

  /// Runs one SLR round after the trainer's W-step:
  ///  * if `surrogate_loss` (loss+penalty after the W-step) improved on the
  ///    last evaluation, advance the multipliers (W-side update);
  ///  * solve the Z subproblem (projection);
  ///  * if the Lagrangian improved again, advance the multipliers (Z-side).
  /// Returns true if Z changed support.
  bool round(const std::vector<MatrixD>& weights, double surrogate_loss);

  /// Final block-sparsity masks induced by the current Z support.
  std::vector<sparsify::SparsityMask> masks() const;

 private:
  void advance_multipliers(const std::vector<MatrixD>& weights);
  std::vector<MatrixD> project(const std::vector<MatrixD>& weights) const;
  double violation_norm(const std::vector<MatrixD>& weights) const;

  SlrOptions options_;
  std::vector<MatrixD> z_;
  std::vector<MatrixD> lambda_;
  double s_;                 ///< current stepsize
  std::size_t k_ = 0;        ///< multiplier update count
  double prev_violation_ = 0.0;
  double best_surrogate_ = 0.0;
  bool have_surrogate_ = false;
};

}  // namespace odonn::slr

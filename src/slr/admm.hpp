// Classic ADMM model-compression comparator (Boyd et al.; Zhang et al.
// ECCV'18) — the method SLR improves on. Scaled-dual form:
//   W-step: trainer minimizes loss + (rho/2)||W - Z + U||^2
//   Z-step: Z = project(W + U) onto the sparse set
//   U-step: U += W - Z
// Kept deliberately simple; bench/ablation_design contrasts its convergence
// with SLR's surrogate-stepsize multipliers.
#pragma once

#include <cstddef>
#include <vector>

#include "sparsify/schemes.hpp"
#include "tensor/matrix.hpp"

namespace odonn::slr {

struct AdmmOptions {
  double rho = 0.1;
  sparsify::SchemeOptions scheme{};
};

class AdmmState {
 public:
  AdmmState(const std::vector<MatrixD>& weights, const AdmmOptions& options);

  const std::vector<MatrixD>& z() const { return z_; }

  /// (rho/2) sum ||W - Z + U||^2.
  double penalty_value(const std::vector<MatrixD>& weights) const;

  /// Adds rho (W - Z + U) into `grads`.
  void add_penalty_gradient(const std::vector<MatrixD>& weights,
                            std::vector<MatrixD>& grads) const;

  /// Z-step followed by the dual update. Returns true if the Z support
  /// changed.
  bool round(const std::vector<MatrixD>& weights);

  std::vector<sparsify::SparsityMask> masks() const;

 private:
  std::vector<MatrixD> project(const std::vector<MatrixD>& weights) const;

  AdmmOptions options_;
  std::vector<MatrixD> z_;
  std::vector<MatrixD> u_;
};

}  // namespace odonn::slr

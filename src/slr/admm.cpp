#include "slr/admm.hpp"

#include "common/error.hpp"

namespace odonn::slr {

AdmmState::AdmmState(const std::vector<MatrixD>& weights,
                     const AdmmOptions& options)
    : options_(options) {
  ODONN_CHECK(!weights.empty(), "ADMM: no weights");
  ODONN_CHECK(options.rho > 0.0, "ADMM: rho must be positive");
  z_ = project(weights);
  u_.reserve(weights.size());
  for (const auto& w : weights) u_.emplace_back(w.rows(), w.cols(), 0.0);
}

std::vector<MatrixD> AdmmState::project(
    const std::vector<MatrixD>& weights) const {
  std::vector<MatrixD> projected;
  projected.reserve(weights.size());
  for (const auto& w : weights) {
    const auto mask = sparsify::sparsify(w, options_.scheme);
    MatrixD z = w;
    sparsify::apply_mask(z, mask);
    projected.push_back(std::move(z));
  }
  return projected;
}

double AdmmState::penalty_value(const std::vector<MatrixD>& weights) const {
  ODONN_CHECK_SHAPE(weights.size() == z_.size(), "ADMM: layer count mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    for (std::size_t j = 0; j < weights[i].size(); ++j) {
      const double d = weights[i][j] - z_[i][j] + u_[i][j];
      acc += 0.5 * options_.rho * d * d;
    }
  }
  return acc;
}

void AdmmState::add_penalty_gradient(const std::vector<MatrixD>& weights,
                                     std::vector<MatrixD>& grads) const {
  ODONN_CHECK_SHAPE(weights.size() == z_.size() && grads.size() == z_.size(),
                    "ADMM: layer count mismatch");
  for (std::size_t i = 0; i < weights.size(); ++i) {
    for (std::size_t j = 0; j < weights[i].size(); ++j) {
      grads[i][j] += options_.rho * (weights[i][j] - z_[i][j] + u_[i][j]);
    }
  }
}

bool AdmmState::round(const std::vector<MatrixD>& weights) {
  std::vector<MatrixD> shifted;
  shifted.reserve(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    MatrixD m = weights[i];
    m += u_[i];
    shifted.push_back(std::move(m));
  }
  auto new_z = project(shifted);
  bool support_changed = false;
  for (std::size_t i = 0; i < new_z.size() && !support_changed; ++i) {
    for (std::size_t j = 0; j < new_z[i].size(); ++j) {
      if ((new_z[i][j] == 0.0) != (z_[i][j] == 0.0)) {
        support_changed = true;
        break;
      }
    }
  }
  z_ = std::move(new_z);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    for (std::size_t j = 0; j < weights[i].size(); ++j) {
      u_[i][j] += weights[i][j] - z_[i][j];
    }
  }
  return support_changed;
}

std::vector<sparsify::SparsityMask> AdmmState::masks() const {
  std::vector<sparsify::SparsityMask> masks;
  masks.reserve(z_.size());
  for (const auto& z : z_) {
    sparsify::SparsityMask mask(z.rows(), z.cols(), 1);
    for (std::size_t j = 0; j < z.size(); ++j) {
      if (z[j] == 0.0) mask[j] = 0;
    }
    masks.push_back(std::move(mask));
  }
  return masks;
}

}  // namespace odonn::slr

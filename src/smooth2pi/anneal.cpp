#include "smooth2pi/anneal.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace odonn::smooth2pi {

namespace {

constexpr double kTwoPi = 2.0 * M_PI;

/// Sum of per-pixel roughness over the 3x3 window around (r, c) — the part
/// of R(W) a flip at (r, c) can change. Mirrors the greedy solver's local
/// evaluation (two_pi_opt.cpp).
double window_roughness(const MatrixD& m, long r, long c,
                        const roughness::RoughnessOptions& opt) {
  const long rows = static_cast<long>(m.rows());
  const long cols = static_cast<long>(m.cols());
  const bool eight = opt.neighborhood == roughness::Neighborhood::Eight;
  const double k = static_cast<double>(opt.neighborhood) *
                   (opt.reduce == roughness::PixelReduce::L2Norm ? opt.k_scale
                                                                 : 1.0);
  double acc = 0.0;
  for (long pr = r - 1; pr <= r + 1; ++pr) {
    for (long pc = c - 1; pc <= c + 1; ++pc) {
      if (pr < 0 || pc < 0 || pr >= rows || pc >= cols) continue;
      const double center = m(static_cast<std::size_t>(pr),
                              static_cast<std::size_t>(pc));
      double sum = 0.0;
      for (long dr = -1; dr <= 1; ++dr) {
        for (long dc = -1; dc <= 1; ++dc) {
          if (dr == 0 && dc == 0) continue;
          if (!eight && dr != 0 && dc != 0) continue;
          const long nr = pr + dr;
          const long nc = pc + dc;
          const double v = (nr < 0 || nc < 0 || nr >= rows || nc >= cols)
                               ? 0.0
                               : m(static_cast<std::size_t>(nr),
                                   static_cast<std::size_t>(nc));
          const double d = v - center;
          sum += (opt.reduce == roughness::PixelReduce::L2Norm) ? d * d
                                                                : std::abs(d);
        }
      }
      acc += (opt.reduce == roughness::PixelReduce::L2Norm)
                 ? std::sqrt(sum) / k
                 : sum / k;
    }
  }
  return acc;
}

}  // namespace

TwoPiResult anneal_2pi(const MatrixD& mask, const AnnealOptions& options) {
  ODONN_CHECK(!mask.empty(), "anneal_2pi: empty mask");
  ODONN_CHECK(options.iterations >= 1, "anneal_2pi: need >= 1 iteration");
  ODONN_CHECK(options.t_start >= options.t_end && options.t_end > 0.0,
              "anneal_2pi: temperatures must satisfy t_start >= t_end > 0");

  Rng rng(options.seed);
  MatrixD current = mask;
  MatrixU8 selection(mask.rows(), mask.cols(), 0);
  MatrixU8 best_selection = selection;
  double current_roughness = roughness::mask_roughness(current, options.roughness);
  const double initial_roughness = current_roughness;
  double best_roughness = current_roughness;

  const double decay =
      std::pow(options.t_end / options.t_start,
               1.0 / static_cast<double>(options.iterations));
  double temperature = options.t_start;

  for (std::size_t it = 0; it < options.iterations; ++it, temperature *= decay) {
    const std::size_t idx = static_cast<std::size_t>(
        rng.uniform_index(mask.size()));
    const long r = static_cast<long>(idx / mask.cols());
    const long c = static_cast<long>(idx % mask.cols());

    const double before = window_roughness(current, r, c, options.roughness);
    const double delta_phase = (selection[idx] != 0) ? -kTwoPi : kTwoPi;
    current[idx] += delta_phase;
    const double after = window_roughness(current, r, c, options.roughness);
    const double delta = after - before;

    const bool accept =
        delta <= 0.0 || rng.uniform() < std::exp(-delta / temperature);
    if (accept) {
      selection[idx] = selection[idx] != 0 ? 0 : 1;
      current_roughness += delta;
      if (current_roughness < best_roughness) {
        best_roughness = current_roughness;
        best_selection = selection;
      }
    } else {
      current[idx] -= delta_phase;  // reject: revert
    }
  }

  TwoPiResult result;
  result.roughness_before = initial_roughness;
  if (best_roughness < initial_roughness) {
    result.selection = std::move(best_selection);
    result.optimized = mask;
    std::size_t added = 0;
    for (std::size_t i = 0; i < mask.size(); ++i) {
      if (result.selection[i] != 0) {
        result.optimized[i] += kTwoPi;
        ++added;
      }
    }
    result.added_count = added;
    // Recompute exactly (incremental tracking accumulates fp drift).
    result.roughness_after =
        roughness::mask_roughness(result.optimized, options.roughness);
  } else {
    result.optimized = mask;
    result.selection = MatrixU8(mask.rows(), mask.cols(), 0);
    result.roughness_after = initial_roughness;
    result.added_count = 0;
  }
  return result;
}

std::vector<TwoPiResult> anneal_2pi_all(const std::vector<MatrixD>& masks,
                                        const AnnealOptions& options) {
  std::vector<TwoPiResult> results;
  results.reserve(masks.size());
  for (std::size_t i = 0; i < masks.size(); ++i) {
    AnnealOptions opt = options;
    opt.seed = options.seed + i * 0x9e3779b9ULL;  // independent noise per layer
    results.push_back(anneal_2pi(masks[i], opt));
  }
  return results;
}

}  // namespace odonn::smooth2pi

// Gumbel-Softmax / Gumbel-sigmoid relaxation utilities (Jang et al. 2016),
// used by the 2*pi combinatorial smoother (§III-D2). For the binary
// 0-vs-2*pi choice the two-logit softmax reduces to a sigmoid over the
// logit difference with a Logistic(0,1) perturbation (difference of two
// independent Gumbels).
#pragma once

#include <vector>

#include "common/rng.hpp"

namespace odonn::smooth2pi {

/// sigmoid(x) with overflow protection.
double sigmoid(double x);

/// Soft binary Gumbel-Softmax sample: sigmoid((theta + G1 - G2)/tau).
/// G1 - G2 ~ Logistic(0, 1). tau > 0 is the temperature.
double gumbel_sigmoid_sample(double theta, double tau, Rng& rng);

/// Deterministic relaxation (no noise): sigmoid(theta / tau).
double soft_select(double theta, double tau);

/// Linear temperature annealing from tau_start to tau_end across
/// `iterations` steps (step in [0, iterations-1]).
double anneal_tau(double tau_start, double tau_end, std::size_t step,
                  std::size_t iterations);

}  // namespace odonn::smooth2pi

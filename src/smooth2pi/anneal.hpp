// Simulated-annealing reference solver for the 2*pi selection problem.
// Slower than Gumbel-Softmax but derivative-free; used by the ablation
// bench and as a third independent check on solution quality (GS and greedy
// should land within a few percent of annealing on DONN-sized masks).
#pragma once

#include <cstdint>

#include "smooth2pi/two_pi_opt.hpp"

namespace odonn::smooth2pi {

struct AnnealOptions {
  std::size_t iterations = 20000;   ///< proposed single-pixel flips
  double t_start = 1.0;             ///< initial temperature (roughness units)
  double t_end = 1e-3;              ///< final temperature (geometric schedule)
  std::uint64_t seed = 0x5ca1e;
  roughness::RoughnessOptions roughness = {};
};

/// Metropolis annealing over per-pixel 0/2*pi flips. Never returns a
/// selection worse than the identity.
TwoPiResult anneal_2pi(const MatrixD& mask, const AnnealOptions& options = {});

}  // namespace odonn::smooth2pi

// Simulated-annealing reference solver for the 2*pi selection problem.
// Slower than Gumbel-Softmax but derivative-free; used by the ablation
// bench and as a third independent check on solution quality (GS and greedy
// should land within a few percent of annealing on DONN-sized masks).
#pragma once

#include <cstdint>
#include <vector>

#include "smooth2pi/two_pi_opt.hpp"

namespace odonn::smooth2pi {

struct AnnealOptions {
  std::size_t iterations = 20000;   ///< proposed single-pixel flips
  double t_start = 1.0;             ///< initial temperature (roughness units)
  double t_end = 1e-3;              ///< final temperature (geometric schedule)
  std::uint64_t seed = 0x5ca1e;
  roughness::RoughnessOptions roughness = {};
};

/// Metropolis annealing over per-pixel 0/2*pi flips. Never returns a
/// selection worse than the identity.
TwoPiResult anneal_2pi(const MatrixD& mask, const AnnealOptions& options = {});

/// Anneals every mask of a multi-layer stack, layer i with its own RNG
/// stream (seed + i * golden-ratio increment, the same per-layer idiom as
/// optimize_2pi_all) so layers decorrelate and results are independent of
/// how many layers precede them.
std::vector<TwoPiResult> anneal_2pi_all(const std::vector<MatrixD>& masks,
                                        const AnnealOptions& options = {});

}  // namespace odonn::smooth2pi

#include "smooth2pi/two_pi_opt.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "smooth2pi/gumbel.hpp"

namespace odonn::smooth2pi {

namespace {

constexpr double kTwoPi = 2.0 * M_PI;

/// Roughness of the single pixel (r, c) under the mask's current values,
/// with the usual zero padding. Mirrors roughness_map for one pixel.
double pixel_roughness(const MatrixD& m, long r, long c,
                       const roughness::RoughnessOptions& opt) {
  static const std::array<std::array<int, 2>, 8> kOff = {{{-1, -1}, {-1, 0},
                                                          {-1, 1}, {0, -1},
                                                          {0, 1}, {1, -1},
                                                          {1, 0}, {1, 1}}};
  const bool eight = opt.neighborhood == roughness::Neighborhood::Eight;
  const long rows = static_cast<long>(m.rows());
  const long cols = static_cast<long>(m.cols());
  const double center = m(static_cast<std::size_t>(r),
                          static_cast<std::size_t>(c));
  double acc = 0.0;
  for (const auto& o : kOff) {
    if (!eight && o[0] != 0 && o[1] != 0) continue;  // skip diagonals
    const long nr = r + o[0];
    const long nc = c + o[1];
    const double v = (nr < 0 || nc < 0 || nr >= rows || nc >= cols)
                         ? 0.0
                         : m(static_cast<std::size_t>(nr),
                             static_cast<std::size_t>(nc));
    const double d = v - center;
    acc += (opt.reduce == roughness::PixelReduce::L2Norm) ? d * d
                                                          : std::abs(d);
  }
  const double k = static_cast<double>(opt.neighborhood) *
                   (opt.reduce == roughness::PixelReduce::L2Norm ? opt.k_scale
                                                                 : 1.0);
  return (opt.reduce == roughness::PixelReduce::L2Norm) ? std::sqrt(acc) / k
                                                        : acc / k;
}

/// Sum of pixel roughness over the 3x3 window around (r, c) — everything a
/// single flip at (r, c) can affect.
double window_roughness(const MatrixD& m, long r, long c,
                        const roughness::RoughnessOptions& opt) {
  const long rows = static_cast<long>(m.rows());
  const long cols = static_cast<long>(m.cols());
  double acc = 0.0;
  for (long dr = -1; dr <= 1; ++dr) {
    for (long dc = -1; dc <= 1; ++dc) {
      const long nr = r + dr;
      const long nc = c + dc;
      if (nr < 0 || nc < 0 || nr >= rows || nc >= cols) continue;
      acc += pixel_roughness(m, nr, nc, opt);
    }
  }
  return acc;
}

TwoPiResult finalize(const MatrixD& original, MatrixU8 selection,
                     const roughness::RoughnessOptions& ropt) {
  TwoPiResult result;
  result.roughness_before = roughness::mask_roughness(original, ropt);
  MatrixD candidate = original;
  std::size_t added = 0;
  for (std::size_t i = 0; i < candidate.size(); ++i) {
    if (selection[i] != 0) {
      candidate[i] += kTwoPi;
      ++added;
    }
  }
  const double after = roughness::mask_roughness(candidate, ropt);
  if (after <= result.roughness_before) {
    result.optimized = std::move(candidate);
    result.selection = std::move(selection);
    result.roughness_after = after;
    result.added_count = added;
  } else {
    // Never return a worse mask than the identity selection.
    result.optimized = original;
    result.selection = MatrixU8(original.rows(), original.cols(), 0);
    result.roughness_after = result.roughness_before;
    result.added_count = 0;
  }
  return result;
}

}  // namespace

TwoPiResult optimize_2pi(const MatrixD& mask, const TwoPiOptions& options) {
  ODONN_CHECK(!mask.empty(), "optimize_2pi: empty mask");
  ODONN_CHECK(options.iterations >= 1, "optimize_2pi: need >= 1 iteration");
  const std::size_t size = mask.size();

  // Warm start: sparsified pixels are exact zeros sitting far below their
  // "high positive" neighbors (§III-D2) — bias their logits toward the
  // +2*pi choice. The hard-decode guard in finalize() keeps the result
  // never worse than identity, and the gradient updates pull back any pixel
  // the bias got wrong.
  MatrixD theta(mask.rows(), mask.cols(), 0.0);
  for (std::size_t i = 0; i < size; ++i) {
    if (mask[i] == 0.0) theta[i] = 2.0;
  }
  MatrixD adam_m(mask.rows(), mask.cols(), 0.0);
  MatrixD adam_v(mask.rows(), mask.cols(), 0.0);
  const double beta1 = 0.9, beta2 = 0.999, adam_eps = 1e-8;

  Rng rng(options.seed);
  MatrixD soft(mask.rows(), mask.cols(), 0.0);
  MatrixD relaxed(mask.rows(), mask.cols(), 0.0);
  MatrixD grad_relaxed(mask.rows(), mask.cols(), 0.0);

  MatrixU8 best_selection(mask.rows(), mask.cols(), 0);
  double best_roughness = roughness::mask_roughness(mask, options.roughness);

  const auto evaluate_hard = [&]() {
    MatrixU8 sel(mask.rows(), mask.cols(), 0);
    MatrixD hard = mask;
    for (std::size_t i = 0; i < size; ++i) {
      if (theta[i] > 0.0) {
        sel[i] = 1;
        hard[i] += kTwoPi;
      }
    }
    const double r = roughness::mask_roughness(hard, options.roughness);
    if (r < best_roughness) {
      best_roughness = r;
      best_selection = std::move(sel);
    }
  };

  // Score the warm start itself before any noisy update — on sparsified
  // masks "lift every zero" is already a strong candidate.
  evaluate_hard();

  for (std::size_t it = 0; it < options.iterations; ++it) {
    const double tau =
        anneal_tau(options.tau_start, options.tau_end, it, options.iterations);

    // Forward: soft selection and relaxed mask.
    for (std::size_t i = 0; i < size; ++i) {
      soft[i] = options.stochastic
                    ? gumbel_sigmoid_sample(theta[i], tau, rng)
                    : soft_select(theta[i], tau);
      relaxed[i] = mask[i] + kTwoPi * soft[i];
    }

    // Backward: dR/d(relaxed) -> dR/dtheta via the sigmoid chain.
    grad_relaxed.fill(0.0);
    roughness::roughness_with_grad(relaxed, grad_relaxed, 1.0,
                                   options.roughness);
    const double step_count = static_cast<double>(it + 1);
    const double bc1 = 1.0 - std::pow(beta1, step_count);
    const double bc2 = 1.0 - std::pow(beta2, step_count);
    for (std::size_t i = 0; i < size; ++i) {
      const double g = grad_relaxed[i] * kTwoPi * soft[i] * (1.0 - soft[i]) / tau;
      adam_m[i] = beta1 * adam_m[i] + (1.0 - beta1) * g;
      adam_v[i] = beta2 * adam_v[i] + (1.0 - beta2) * g * g;
      theta[i] -= options.lr * (adam_m[i] / bc1) /
                  (std::sqrt(adam_v[i] / bc2) + adam_eps);
    }

    if ((it + 1) % 10 == 0 || it + 1 == options.iterations) evaluate_hard();
  }
  return finalize(mask, std::move(best_selection), options.roughness);
}

TwoPiResult greedy_2pi(const MatrixD& mask,
                       const roughness::RoughnessOptions& ropt,
                       std::size_t max_passes) {
  ODONN_CHECK(!mask.empty(), "greedy_2pi: empty mask");
  const long rows = static_cast<long>(mask.rows());
  const long cols = static_cast<long>(mask.cols());

  MatrixD current = mask;
  MatrixU8 selection(mask.rows(), mask.cols(), 0);
  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    bool flipped = false;
    for (long r = 0; r < rows; ++r) {
      for (long c = 0; c < cols; ++c) {
        const double before = window_roughness(current, r, c, ropt);
        const std::size_t ri = static_cast<std::size_t>(r);
        const std::size_t ci = static_cast<std::size_t>(c);
        const double delta = (selection(ri, ci) != 0) ? -kTwoPi : kTwoPi;
        current(ri, ci) += delta;
        const double after = window_roughness(current, r, c, ropt);
        if (after + 1e-12 < before) {
          selection(ri, ci) = selection(ri, ci) != 0 ? 0 : 1;
          flipped = true;
        } else {
          current(ri, ci) -= delta;  // revert
        }
      }
    }
    if (!flipped) break;
  }
  return finalize(mask, std::move(selection), ropt);
}

std::vector<std::uint8_t> exact_1d_selection(
    const std::vector<double>& values,
    const roughness::RoughnessOptions& ropt) {
  const std::size_t n = values.size();
  ODONN_CHECK(n >= 1, "exact_1d_selection: empty input");
  const bool eight = ropt.neighborhood == roughness::Neighborhood::Eight;
  // A 1 x n mask: the left/right neighbors are real, everything else is
  // zero padding — 2 pad terms for 4-neighborhood, 6 for 8-neighborhood.
  const double pad_terms = eight ? 6.0 : 2.0;
  const double k = static_cast<double>(ropt.neighborhood) *
                   (ropt.reduce == roughness::PixelReduce::L2Norm ? ropt.k_scale
                                                                  : 1.0);

  const auto value_of = [&](std::size_t i, int s) {
    return values[i] + (s != 0 ? kTwoPi : 0.0);
  };
  // cost of pixel i given selections of (i-1, i, i+1); out-of-range
  // neighbors use the zero padding.
  const auto cost = [&](std::size_t i, int sl, int sc, int sr) {
    const double wc = value_of(i, sc);
    const double dl = (i == 0 ? 0.0 : value_of(i - 1, sl)) - wc;
    const double dr = (i + 1 >= n ? 0.0 : value_of(i + 1, sr)) - wc;
    if (ropt.reduce == roughness::PixelReduce::L2Norm) {
      return std::sqrt(dl * dl + dr * dr + pad_terms * wc * wc) / k;
    }
    return (std::abs(dl) + std::abs(dr) + pad_terms * std::abs(wc)) / k;
  };

  if (n == 1) {
    return {cost(0, 0, 1, 0) < cost(0, 0, 0, 0) ? std::uint8_t{1}
                                                : std::uint8_t{0}};
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // g[b][c] = best cost of pixels 0..i-1 with (s_{i-1}, s_i) = (b, c).
  std::array<std::array<double, 2>, 2> g{};
  std::vector<std::array<std::array<std::uint8_t, 2>, 2>> parent(n);
  for (int b = 0; b < 2; ++b) {
    for (int c = 0; c < 2; ++c) g[b][c] = cost(0, 0, b, c);
  }
  for (std::size_t i = 1; i + 1 <= n - 1; ++i) {
    std::array<std::array<double, 2>, 2> next{{{kInf, kInf}, {kInf, kInf}}};
    for (int c = 0; c < 2; ++c) {
      for (int d = 0; d < 2; ++d) {
        for (int b = 0; b < 2; ++b) {
          const double cand = g[b][c] + cost(i, b, c, d);
          if (cand < next[c][d]) {
            next[c][d] = cand;
            parent[i][c][d] = static_cast<std::uint8_t>(b);
          }
        }
      }
    }
    g = next;
  }
  // Close with the last pixel's cost (right neighbor is padding).
  double best = kInf;
  int best_b = 0, best_c = 0;
  for (int b = 0; b < 2; ++b) {
    for (int c = 0; c < 2; ++c) {
      const double cand = g[b][c] + cost(n - 1, b, c, 0);
      if (cand < best) {
        best = cand;
        best_b = b;
        best_c = c;
      }
    }
  }
  std::vector<std::uint8_t> sel(n);
  sel[n - 1] = static_cast<std::uint8_t>(best_c);
  // n >= 2 past the n == 1 early return, but gcc's range analysis cannot
  // carry that bound across the DP under sanitizer instrumentation and
  // flags sel[n - 2] as a potential overflow; the guard restates the
  // invariant where the optimizer can see it.
  if (n >= 2) {
    sel[n - 2] = static_cast<std::uint8_t>(best_b);
    for (std::size_t i = n - 2; i >= 1; --i) {
      const std::uint8_t b = parent[i][sel[i]][sel[i + 1]];
      sel[i - 1] = b;
    }
  }
  return sel;
}

std::vector<TwoPiResult> optimize_2pi_all(const std::vector<MatrixD>& masks,
                                          const TwoPiOptions& options) {
  std::vector<TwoPiResult> results;
  results.reserve(masks.size());
  TwoPiOptions opt = options;
  for (std::size_t i = 0; i < masks.size(); ++i) {
    opt.seed = options.seed + i * 0x9e3779b9ULL;  // independent noise per layer
    results.push_back(optimize_2pi(masks[i], opt));
  }
  return results;
}

}  // namespace odonn::smooth2pi

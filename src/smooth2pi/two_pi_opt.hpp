// 2*pi periodic phase optimization (paper §III-D2).
//
// Phase modulation is 2*pi-periodic, so adding 2*pi to any pixel leaves the
// DONN's inference bit-identical while changing the roughness score. The
// paper formulates the per-pixel add-0-or-2*pi choice as a combinatorial
// optimization solved with Gumbel-Softmax + gradient descent; this module
// implements that solver plus two references:
//   * a greedy coordinate-descent (sweep until no single flip helps), and
//   * an exact DP for single-row masks (4-neighborhood), used by tests to
//     certify solution quality.
// All solvers never return a selection worse than the identity.
#pragma once

#include <cstdint>
#include <vector>

#include "roughness/roughness.hpp"
#include "tensor/matrix.hpp"

namespace odonn::smooth2pi {

struct TwoPiOptions {
  /// Gradient steps on the selection logits. Lifting a whole sparsified
  /// block is a cooperative move: single-flip local search (greedy,
  /// annealing) cannot cross it, and the soft relaxation needs the
  /// temperature anneal to play out before the hard decode stabilizes —
  /// 800 iterations fails on masks where 2500 recovers the exact optimum
  /// (the per-iteration cost is one roughness gradient, ~0.1 ms at 64x64).
  std::size_t iterations = 2500;
  double lr = 0.3;              ///< Adam step size on the selection logits
  double tau_start = 2.0;       ///< Gumbel-Softmax temperature annealing
  double tau_end = 0.2;
  bool stochastic = true;       ///< false = deterministic sigmoid relaxation
  std::uint64_t seed = 0x2718;
  roughness::RoughnessOptions roughness = {};
};

struct TwoPiResult {
  MatrixD optimized;         ///< W + 2*pi * selection
  MatrixU8 selection;        ///< 1 where 2*pi was added
  double roughness_before = 0.0;
  double roughness_after = 0.0;
  std::size_t added_count = 0;
};

/// Gumbel-Softmax solver (the paper's method).
TwoPiResult optimize_2pi(const MatrixD& mask, const TwoPiOptions& options = {});

/// Greedy sweeps: flip any pixel whose flip lowers roughness; repeat until a
/// full pass makes no flip (or max_passes). Deterministic.
TwoPiResult greedy_2pi(const MatrixD& mask,
                       const roughness::RoughnessOptions& roughness = {},
                       std::size_t max_passes = 64);

/// Exact minimum-roughness selection for a single-row mask under the
/// 4-neighborhood (second-order chain DP over (s_{i-1}, s_i) states).
std::vector<std::uint8_t> exact_1d_selection(
    const std::vector<double>& values,
    const roughness::RoughnessOptions& roughness = {});

/// Applies a solver to every layer of a DONN system and returns per-layer
/// results (convenience for recipes/benches).
std::vector<TwoPiResult> optimize_2pi_all(const std::vector<MatrixD>& masks,
                                          const TwoPiOptions& options = {});

}  // namespace odonn::smooth2pi

#include "smooth2pi/gumbel.hpp"

#include <cmath>

#include "common/error.hpp"

namespace odonn::smooth2pi {

double sigmoid(double x) {
  if (x >= 0.0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

double gumbel_sigmoid_sample(double theta, double tau, Rng& rng) {
  ODONN_CHECK(tau > 0.0, "gumbel_sigmoid_sample: tau must be positive");
  const double noise = rng.gumbel() - rng.gumbel();  // Logistic(0,1)
  return sigmoid((theta + noise) / tau);
}

double soft_select(double theta, double tau) {
  ODONN_CHECK(tau > 0.0, "soft_select: tau must be positive");
  return sigmoid(theta / tau);
}

double anneal_tau(double tau_start, double tau_end, std::size_t step,
                  std::size_t iterations) {
  ODONN_CHECK(tau_start > 0.0 && tau_end > 0.0, "anneal_tau: tau must be > 0");
  if (iterations <= 1) return tau_end;
  const double t = static_cast<double>(step) /
                   static_cast<double>(iterations - 1);
  return tau_start + (tau_end - tau_start) * t;
}

}  // namespace odonn::smooth2pi

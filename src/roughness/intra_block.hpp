// Intra-block smoothness (paper §III-D1, Eq. 8, Fig. 4).
//
// The mask is partitioned into block_size x block_size tiles; the variance of
// each tile is computed and reduced. Fig. 4 reproduces with the *sample*
// variance (denominator m-1), sparsified tiles contributing zero, and the
// "AvgVar" display being the mean over tiles; the Eq. 8 regularizer
// R_intra(W) uses the sum over tiles.
#pragma once

#include <cstddef>

#include "tensor/matrix.hpp"

namespace odonn::roughness {

struct IntraBlockOptions {
  std::size_t block_size = 2;
  bool sample_variance = true;  ///< divide by m-1 (matches Fig. 4); false => m
};

/// Per-tile variance grid of shape ceil(rows/b) x ceil(cols/b). Partial
/// edge tiles (when b does not divide the mask) use their true element count.
MatrixD block_variance_map(const MatrixD& mask, const IntraBlockOptions& options);

/// R_intra(W): sum of per-tile variances (the Eq. 8 regularizer).
double intra_block_variance_sum(const MatrixD& mask,
                                const IntraBlockOptions& options);

/// Mean of per-tile variances (the "AvgVar" quantity printed in Fig. 4).
double intra_block_variance_mean(const MatrixD& mask,
                                 const IntraBlockOptions& options);

/// Variance sum together with d(sum)/dW accumulated into `grad` with factor
/// `scale` (so callers fold the q regularization factor directly).
double intra_block_variance_with_grad(const MatrixD& mask, MatrixD& grad,
                                      double scale,
                                      const IntraBlockOptions& options);

}  // namespace odonn::roughness

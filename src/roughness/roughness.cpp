#include "roughness/roughness.hpp"

#include <array>
#include <cmath>

#include "common/error.hpp"

namespace odonn::roughness {

namespace {

struct Offset {
  int dr;
  int dc;
};

constexpr std::array<Offset, 4> kFour = {{{-1, 0}, {0, -1}, {0, 1}, {1, 0}}};
constexpr std::array<Offset, 8> kEight = {{{-1, -1}, {-1, 0}, {-1, 1},
                                           {0, -1}, {0, 1},
                                           {1, -1}, {1, 0}, {1, 1}}};

/// Value at (r, c) with one-pixel zero padding outside the mask.
inline double padded(const MatrixD& m, long r, long c) {
  if (r < 0 || c < 0 || r >= static_cast<long>(m.rows()) ||
      c >= static_cast<long>(m.cols())) {
    return 0.0;
  }
  return m(static_cast<std::size_t>(r), static_cast<std::size_t>(c));
}

template <typename Fn>
void for_each_neighbor(Neighborhood nb, Fn&& fn) {
  if (nb == Neighborhood::Four) {
    for (const auto& o : kFour) fn(o);
  } else {
    for (const auto& o : kEight) fn(o);
  }
}

}  // namespace

MatrixD roughness_map(const MatrixD& mask, const RoughnessOptions& options) {
  ODONN_CHECK(!mask.empty(), "roughness_map: empty mask");
  ODONN_CHECK(options.k_scale > 0.0, "roughness: k_scale must be positive");
  const double k = static_cast<double>(options.neighborhood) *
                   (options.reduce == PixelReduce::L2Norm ? options.k_scale : 1.0);
  MatrixD out(mask.rows(), mask.cols());
  for (std::size_t r = 0; r < mask.rows(); ++r) {
    for (std::size_t c = 0; c < mask.cols(); ++c) {
      const double center = mask(r, c);
      double acc = 0.0;
      for_each_neighbor(options.neighborhood, [&](const Offset& o) {
        const double d = padded(mask, static_cast<long>(r) + o.dr,
                                static_cast<long>(c) + o.dc) -
                         center;
        acc += (options.reduce == PixelReduce::L2Norm) ? d * d : std::abs(d);
      });
      out(r, c) = (options.reduce == PixelReduce::L2Norm)
                      ? std::sqrt(acc) / k
                      : acc / k;
    }
  }
  return out;
}

double mask_roughness(const MatrixD& mask, const RoughnessOptions& options) {
  return roughness_map(mask, options).sum();
}

double roughness_with_grad(const MatrixD& mask, MatrixD& grad, double scale,
                           const RoughnessOptions& options) {
  ODONN_CHECK(!mask.empty(), "roughness_with_grad: empty mask");
  ODONN_CHECK_SHAPE(grad.same_shape(mask),
                    "roughness_with_grad: gradient shape mismatch");
  ODONN_CHECK(options.k_scale > 0.0, "roughness: k_scale must be positive");
  const double k = static_cast<double>(options.neighborhood) *
                   (options.reduce == PixelReduce::L2Norm ? options.k_scale : 1.0);
  const long rows = static_cast<long>(mask.rows());
  const long cols = static_cast<long>(mask.cols());
  double total = 0.0;

  if (options.reduce == PixelReduce::L2Norm) {
    // R(p) = (1/k) sqrt(sum_q d_q^2 + eps), d_q = w_q - w_p.
    // dR(p)/dw_p = -(1/k) sum_q d_q / sqrt(.), dR(p)/dw_q = (1/k) d_q / sqrt(.)
    for (long r = 0; r < rows; ++r) {
      for (long c = 0; c < cols; ++c) {
        const double center = mask(static_cast<std::size_t>(r),
                                   static_cast<std::size_t>(c));
        double sum_sq = options.eps;
        for_each_neighbor(options.neighborhood, [&](const Offset& o) {
          const double d = padded(mask, r + o.dr, c + o.dc) - center;
          sum_sq += d * d;
        });
        const double root = std::sqrt(sum_sq);
        total += root / k;
        const double inv = scale / (k * root);
        double center_grad = 0.0;
        for_each_neighbor(options.neighborhood, [&](const Offset& o) {
          const long nr = r + o.dr;
          const long nc = c + o.dc;
          const double d = padded(mask, nr, nc) - center;
          center_grad -= d * inv;
          if (nr >= 0 && nc >= 0 && nr < rows && nc < cols) {
            grad(static_cast<std::size_t>(nr), static_cast<std::size_t>(nc)) +=
                d * inv;
          }
        });
        grad(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) +=
            center_grad;
      }
    }
    return total;
  }

  // MeanAbs: R(p) = (1/k) sum_q |d_q|; d|d|/dd = d / sqrt(d^2 + eps).
  for (long r = 0; r < rows; ++r) {
    for (long c = 0; c < cols; ++c) {
      const double center = mask(static_cast<std::size_t>(r),
                                 static_cast<std::size_t>(c));
      for_each_neighbor(options.neighborhood, [&](const Offset& o) {
        const long nr = r + o.dr;
        const long nc = c + o.dc;
        const double d = padded(mask, nr, nc) - center;
        total += std::abs(d) / k;
        const double sign = d / std::sqrt(d * d + options.eps);
        const double g = scale * sign / k;
        grad(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) -= g;
        if (nr >= 0 && nc >= 0 && nr < rows && nc < cols) {
          grad(static_cast<std::size_t>(nr), static_cast<std::size_t>(nc)) += g;
        }
      });
    }
  }
  return total;
}

}  // namespace odonn::roughness

#include "roughness/report.hpp"

#include "common/error.hpp"

namespace odonn::roughness {

RoughnessReport report(const std::vector<MatrixD>& masks,
                       const RoughnessOptions& options) {
  ODONN_CHECK(!masks.empty(), "roughness report requires at least one mask");
  RoughnessReport rep;
  rep.per_layer.reserve(masks.size());
  double sum = 0.0;
  for (const auto& mask : masks) {
    const double r = mask_roughness(mask, options);
    rep.per_layer.push_back(r);
    sum += r;
  }
  rep.overall = sum / static_cast<double>(masks.size());
  return rep;
}

}  // namespace odonn::roughness

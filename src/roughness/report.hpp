// System-level roughness reporting (paper §IV-B): the DONN roughness score
// R_overall is the average of R(W) over all phase masks in the system.
#pragma once

#include <vector>

#include "roughness/roughness.hpp"
#include "tensor/matrix.hpp"

namespace odonn::roughness {

struct RoughnessReport {
  std::vector<double> per_layer;  ///< R(W_i) for each diffractive layer
  double overall = 0.0;           ///< average over layers (R_overall)
};

RoughnessReport report(const std::vector<MatrixD>& masks,
                       const RoughnessOptions& options = {});

}  // namespace odonn::roughness

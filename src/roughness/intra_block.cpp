#include "roughness/intra_block.hpp"

#include "common/error.hpp"

namespace odonn::roughness {

namespace {

struct TileRange {
  std::size_t r0, r1, c0, c1;
  std::size_t count() const { return (r1 - r0) * (c1 - c0); }
};

template <typename Fn>
void for_each_tile(const MatrixD& mask, std::size_t b, Fn&& fn) {
  for (std::size_t r0 = 0; r0 < mask.rows(); r0 += b) {
    const std::size_t r1 = std::min(mask.rows(), r0 + b);
    for (std::size_t c0 = 0; c0 < mask.cols(); c0 += b) {
      const std::size_t c1 = std::min(mask.cols(), c0 + b);
      fn(TileRange{r0, r1, c0, c1});
    }
  }
}

double tile_variance(const MatrixD& mask, const TileRange& t,
                     bool sample_variance) {
  const double m = static_cast<double>(t.count());
  if (t.count() < 2) return 0.0;
  double sum = 0.0;
  for (std::size_t r = t.r0; r < t.r1; ++r) {
    for (std::size_t c = t.c0; c < t.c1; ++c) sum += mask(r, c);
  }
  const double mu = sum / m;
  double acc = 0.0;
  for (std::size_t r = t.r0; r < t.r1; ++r) {
    for (std::size_t c = t.c0; c < t.c1; ++c) {
      const double d = mask(r, c) - mu;
      acc += d * d;
    }
  }
  return acc / (sample_variance ? m - 1.0 : m);
}

void check_options(const MatrixD& mask, const IntraBlockOptions& options) {
  ODONN_CHECK(!mask.empty(), "intra_block: empty mask");
  ODONN_CHECK(options.block_size >= 1, "intra_block: block_size must be >= 1");
}

}  // namespace

MatrixD block_variance_map(const MatrixD& mask,
                           const IntraBlockOptions& options) {
  check_options(mask, options);
  const std::size_t b = options.block_size;
  const std::size_t tr = (mask.rows() + b - 1) / b;
  const std::size_t tc = (mask.cols() + b - 1) / b;
  MatrixD out(tr, tc);
  for_each_tile(mask, b, [&](const TileRange& t) {
    out(t.r0 / b, t.c0 / b) = tile_variance(mask, t, options.sample_variance);
  });
  return out;
}

double intra_block_variance_sum(const MatrixD& mask,
                                const IntraBlockOptions& options) {
  return block_variance_map(mask, options).sum();
}

double intra_block_variance_mean(const MatrixD& mask,
                                 const IntraBlockOptions& options) {
  const MatrixD map = block_variance_map(mask, options);
  return map.sum() / static_cast<double>(map.size());
}

double intra_block_variance_with_grad(const MatrixD& mask, MatrixD& grad,
                                      double scale,
                                      const IntraBlockOptions& options) {
  check_options(mask, options);
  ODONN_CHECK_SHAPE(grad.same_shape(mask),
                    "intra_block: gradient shape mismatch");
  double total = 0.0;
  for_each_tile(mask, options.block_size, [&](const TileRange& t) {
    const double m = static_cast<double>(t.count());
    if (t.count() < 2) return;
    double sum = 0.0;
    for (std::size_t r = t.r0; r < t.r1; ++r) {
      for (std::size_t c = t.c0; c < t.c1; ++c) sum += mask(r, c);
    }
    const double mu = sum / m;
    const double denom = options.sample_variance ? m - 1.0 : m;
    double acc = 0.0;
    for (std::size_t r = t.r0; r < t.r1; ++r) {
      for (std::size_t c = t.c0; c < t.c1; ++c) {
        const double d = mask(r, c) - mu;
        acc += d * d;
        // dVar/dx_j = 2 (x_j - mu) / denom  (the -mu chain term cancels
        // because sum_j (x_j - mu) = 0).
        grad(r, c) += scale * 2.0 * d / denom;
      }
    }
    total += acc / denom;
  });
  return total;
}

}  // namespace odonn::roughness

// Roughness modelling (paper §III-B, Eq. 3-4).
//
// The roughness of pixel p is the reduced L2 difference between p and its
// 4- or 8-neighborhood, with one-pixel zero padding at the boundary (virtual
// zero neighbors, k stays fixed). The mask roughness R(W) is the sum of all
// per-pixel values. Two reductions of the neighbor-difference vector are
// provided:
//   * L2Norm:  R(p) = sqrt(sum_q (w_q - w_p)^2) / (k * k_scale) — vector L2
//     norm. With the default k_scale = 2 this reproduces the values printed
//     in the paper's Fig. 3 (23.78 / 25.80 / 25.88) to within the figure's
//     one-decimal display rounding, and it is the only reading that also
//     reproduces the figure's ordering block < non-structured < bank.
//     Set k_scale = 1 for the literal Eq. 3 normalization (global scale
//     factors do not change any of the paper's percentage-reduction claims).
//   * MeanAbs: R(p) = (1/k) * sum_q |w_q - w_p| — elementwise reading, kept
//     for ablation (it inverts the Fig. 3 ordering, see tests).
// Both are differentiable almost everywhere; gradients use an eps-smoothed
// norm so training never hits the kink at identical neighbors.
#pragma once

#include <cstddef>

#include "tensor/matrix.hpp"

namespace odonn::roughness {

enum class Neighborhood { Four = 4, Eight = 8 };

enum class PixelReduce { L2Norm, MeanAbs };

struct RoughnessOptions {
  Neighborhood neighborhood = Neighborhood::Eight;
  PixelReduce reduce = PixelReduce::L2Norm;
  double eps = 1e-12;     ///< smoothing inside sqrt/abs for gradients
  double k_scale = 2.0;   ///< divisor = k * k_scale (2 matches Fig. 3; 1 = literal Eq. 3)
};

/// Per-pixel roughness map R(p) (same shape as the mask).
MatrixD roughness_map(const MatrixD& mask, const RoughnessOptions& options = {});

/// Whole-mask roughness R(W) = sum_p R(p) (Eq. 4).
double mask_roughness(const MatrixD& mask, const RoughnessOptions& options = {});

/// R(W) together with dR/dW for training-time regularization (Eq. 5).
/// Returns the value; writes the gradient (accumulated into `grad` scaled by
/// `scale`, so callers can fold the regularization factor p directly).
double roughness_with_grad(const MatrixD& mask, MatrixD& grad, double scale,
                           const RoughnessOptions& options = {});

}  // namespace odonn::roughness

#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include "common/thread_annotations.hpp"
#include <sstream>
#include <utility>

#include "common/error.hpp"

namespace odonn::obs {
namespace {

constexpr std::size_t kMaxTraceEvents = std::size_t{1} << 16;

/// -1 = read ODONN_TRACE on first use; 0/1 afterwards.
std::atomic<int> g_tracing{-1};

struct TraceState {
  Mutex mutex;
  std::vector<TraceEvent> events ODONN_GUARDED_BY(mutex);
  std::atomic<std::uint64_t> dropped{0};
  /// Streaming sink (span flush-to-file); null when detached.
  std::FILE* flush_file ODONN_GUARDED_BY(mutex) = nullptr;
  std::atomic<std::uint64_t> flushed{0};
};

/// Leaked: spans on pool workers may finish during static destruction.
TraceState& state() {
  static TraceState* s = new TraceState();
  return *s;
}

/// Process trace epoch: all span timestamps are offsets from the first
/// clock read, keeping exported values small and run-relative.
std::chrono::steady_clock::time_point epoch() {
  static const std::chrono::steady_clock::time_point t0 =
      std::chrono::steady_clock::now();
  return t0;
}

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch())
      .count();
}

std::atomic<std::uint32_t> g_next_thread_tag{0};
thread_local std::uint32_t t_thread_tag = 0xffffffffu;
thread_local std::uint32_t t_span_depth = 0;

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += "_";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// One JSON line / spans_json() element for a completed span. request_id
/// is emitted only when set so pre-existing span consumers see unchanged
/// lines.
std::string span_json(const TraceEvent& event) {
  std::string line = "{\"name\": \"" + json_escape(event.name) +
                     "\", \"tid\": " + std::to_string(event.tid) +
                     ", \"depth\": " + std::to_string(event.depth) +
                     ", \"start_us\": " + std::to_string(event.start_us) +
                     ", \"duration_us\": " +
                     std::to_string(event.duration_us);
  if (event.request_id != 0) {
    line += ", \"request_id\": " + std::to_string(event.request_id);
  }
  line += "}";
  return line;
}

/// Shared tail of TraceSpan::finish() and record_span(): stream to the
/// flush sink (if attached) and append to the bounded buffer, counting
/// overflow as flushed-with-sink / dropped-without.
void append_event(TraceEvent event) {
  TraceState& s = state();
  MutexLock lock(s.mutex);
  if (s.flush_file != nullptr) {
    // Streaming sink: one JSON line per completed span (same fields as a
    // spans_json() element), written whole under the state mutex so lines
    // from concurrent threads never interleave.
    const std::string line = span_json(event) + "\n";
    std::fwrite(line.data(), 1, line.size(), s.flush_file);
    s.flushed.fetch_add(1, std::memory_order_relaxed);
  }
  if (s.events.size() >= kMaxTraceEvents) {
    // With a sink attached the span is already durable on disk, so it is
    // flushed, not dropped; without one it is lost and counted.
    if (s.flush_file == nullptr) {
      s.dropped.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  s.events.push_back(std::move(event));
}

}  // namespace

bool tracing_enabled() {
  int s = g_tracing.load(std::memory_order_relaxed);
  if (s < 0) {
    const char* env = std::getenv("ODONN_TRACE");
    s = (env != nullptr && env[0] == '1') ? 1 : 0;
    g_tracing.store(s, std::memory_order_relaxed);
  }
  return s != 0;
}

void set_tracing(bool enabled) {
  if (enabled) {
    epoch();  // pin the epoch before the first span
  }
  g_tracing.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

std::uint32_t thread_tag() {
  if (t_thread_tag == 0xffffffffu) {
    t_thread_tag = g_next_thread_tag.fetch_add(1, std::memory_order_relaxed);
  }
  return t_thread_tag;
}

std::int64_t trace_timestamp_us(std::chrono::steady_clock::time_point t) {
  return std::chrono::duration_cast<std::chrono::microseconds>(t - epoch())
      .count();
}

void record_span(std::string name, std::int64_t start_us,
                 std::int64_t duration_us, std::uint32_t depth,
                 std::uint64_t request_id) {
  if (!tracing_enabled()) {
    return;
  }
  TraceEvent event;
  event.name = std::move(name);
  event.tid = thread_tag();
  event.depth = depth;
  event.start_us = start_us;
  event.duration_us = duration_us;
  event.request_id = request_id;
  append_event(std::move(event));
}

std::vector<TraceEvent> trace_events() {
  TraceState& s = state();
  MutexLock lock(s.mutex);
  return s.events;
}

void clear_trace() {
  TraceState& s = state();
  MutexLock lock(s.mutex);
  s.events.clear();
  s.dropped.store(0, std::memory_order_relaxed);
}

std::uint64_t trace_dropped() {
  return state().dropped.load(std::memory_order_relaxed);
}

void set_trace_flush_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    throw IoError("trace: cannot open flush file " + path);
  }
  TraceState& s = state();
  MutexLock lock(s.mutex);
  if (s.flush_file != nullptr) std::fclose(s.flush_file);
  s.flush_file = file;
  s.flushed.store(0, std::memory_order_relaxed);
}

void close_trace_flush_file() {
  TraceState& s = state();
  MutexLock lock(s.mutex);
  if (s.flush_file != nullptr) {
    std::fclose(s.flush_file);
    s.flush_file = nullptr;
  }
}

std::uint64_t trace_flushed() {
  return state().flushed.load(std::memory_order_relaxed);
}

std::string trace_to_chrome_json() {
  const std::vector<TraceEvent> events = trace_events();
  std::ostringstream out;
  out << "{\"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& e : events) {
    out << (first ? "" : ", ") << "{\"name\": \"" << json_escape(e.name)
        << "\", \"cat\": \"odonn\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
        << e.tid << ", \"ts\": " << e.start_us
        << ", \"dur\": " << e.duration_us << ", \"args\": {\"depth\": "
        << e.depth;
    if (e.request_id != 0) {
      out << ", \"request_id\": " << e.request_id;
    }
    out << "}}";
    first = false;
  }
  out << "]}";
  return out.str();
}

std::string spans_json() {
  const std::vector<TraceEvent> events = trace_events();
  std::ostringstream out;
  out << "[";
  bool first = true;
  for (const TraceEvent& e : events) {
    out << (first ? "" : ", ") << span_json(e);
    first = false;
  }
  out << "]";
  return out.str();
}

TraceSpan::TraceSpan(std::string name) {
  if (!tracing_enabled()) {
    return;
  }
  active_ = true;
  name_ = std::move(name);
  depth_ = ++t_span_depth;
  start_us_ = now_us();
}

void TraceSpan::finish() {
  const std::int64_t end_us = now_us();
  TraceEvent event;
  event.name = std::move(name_);
  event.tid = thread_tag();
  event.depth = depth_;
  event.start_us = start_us_;
  event.duration_us = end_us - start_us_;
  --t_span_depth;
  active_ = false;
  append_event(std::move(event));
}

}  // namespace odonn::obs

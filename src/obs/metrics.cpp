#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "tensor/stats.hpp"

namespace odonn::obs {

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  double parsed = std::strtod(buffer, nullptr);
  for (int precision = 1; precision < 17; ++precision) {
    char candidate[64];
    std::snprintf(candidate, sizeof(candidate), "%.*g", precision, value);
    if (std::strtod(candidate, nullptr) == parsed) {
      return candidate;
    }
  }
  return buffer;
}

namespace {

std::string prometheus_name(const std::string& name) {
  std::string out = "odonn_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

Histogram::Histogram(std::size_t capacity)
    : window_(capacity > 0 ? capacity : 1, 0.0),
      buckets_(bucket_bounds().size(), 0) {}

const std::vector<double>& Histogram::bucket_bounds() {
  // Hand-written literals (not computed in a loop) so every bound is an
  // exact short decimal and the le= labels print exactly.
  static const std::vector<double> bounds = {
      0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,  0.25, 0.5,  1.0,  2.5,
      5.0,   10.0,   25.0,  50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
      10000.0};
  return bounds;
}

void Histogram::observe(double value) {
  MutexLock lock(mutex_);
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  const auto& bounds = bucket_bounds();
  const auto bucket = std::lower_bound(bounds.begin(), bounds.end(), value);
  if (bucket != bounds.end()) {  // above the top bound: +Inf only
    ++buckets_[static_cast<std::size_t>(bucket - bounds.begin())];
  }
  window_[next_] = value;
  ++next_;
  if (next_ == window_.size()) {
    next_ = 0;
    wrapped_ = true;
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  std::vector<double> retained;
  Snapshot snap;
  snap.buckets.assign(bucket_bounds().size(), 0);
  {
    MutexLock lock(mutex_);
    if (count_ == 0) {
      return snap;
    }
    snap.count = count_;
    snap.sum = sum_;
    snap.min = min_;
    snap.max = max_;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      cumulative += buckets_[i];
      snap.buckets[i] = cumulative;
    }
    const std::size_t retained_count = wrapped_ ? window_.size() : next_;
    retained.assign(window_.begin(),
                    window_.begin() + static_cast<std::ptrdiff_t>(
                                          retained_count));
  }
  std::sort(retained.begin(), retained.end());
  const auto at = [&retained](double q) {
    return retained[odonn::nearest_rank(q, retained.size()) - 1];
  };
  snap.p50 = at(0.50);
  snap.p90 = at(0.90);
  snap.p99 = at(0.99);
  snap.p999 = at(0.999);
  return snap;
}

void Histogram::reset() {
  MutexLock lock(mutex_);
  next_ = 0;
  wrapped_ = false;
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
  std::fill(buckets_.begin(), buckets_.end(), 0);
}

struct MetricsRegistry::Entry {
  enum class Kind { Counter, Gauge, Histogram };

  explicit Entry(Kind k, std::size_t capacity = Histogram::kDefaultCapacity)
      : kind(k) {
    switch (kind) {
      case Kind::Counter:
        counter = std::make_unique<obs::Counter>();
        break;
      case Kind::Gauge:
        gauge = std::make_unique<obs::Gauge>();
        break;
      case Kind::Histogram:
        histogram = std::make_unique<obs::Histogram>(capacity);
        break;
    }
  }

  Kind kind;
  std::unique_ptr<obs::Counter> counter;
  std::unique_ptr<obs::Gauge> gauge;
  std::unique_ptr<obs::Histogram> histogram;
};

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    // Builtin schema: every instrument the codebase wires up, registered
    // eagerly so exports from any entry point carry the full set (a table
    // run's metrics.json still shows the serve/fft counters, zero-valued).
    r->counter("serve.requests");
    r->counter("serve.batches");
    r->counter("serve.errors");
    r->counter("serve.admitted");
    r->counter("serve.rejected");
    r->histogram("serve.latency_ms");
    r->histogram("serve.batch_size");
    r->gauge("serve.queue_depth");
    // Per-request latency attribution: submit->dequeue (admission queue),
    // dequeue->kernel (batch formation), kernel->done (compute). Summed
    // they equal the end-to-end serve.latency_ms sample for that request.
    r->histogram("serve.attr.queue_wait_ms");
    r->histogram("serve.attr.batch_wait_ms");
    r->histogram("serve.attr.compute_ms");
    r->counter("obs.http.requests");
    r->counter("obs.http.errors");
    r->counter("fft.plan_cache.hits");
    r->counter("fft.plan_cache.misses");
    r->gauge("fft.plan_cache.lengths");
    r->counter("train.epochs");
    r->counter("train.robust_realizations");
    r->histogram("train.grad_slice_ms");
    r->counter("fab.realizations");
    r->histogram("fab.realization_ms");
    r->counter("pipeline.stages_run");
    r->counter("pipeline.jobs_run");
    r->counter("pipeline.progress_events");
    r->counter("parallel.tasks");
    r->histogram("parallel.queue_wait_us.depth1");
    r->histogram("parallel.queue_wait_us.depth2");
    r->histogram("parallel.queue_wait_us.depth3");
    r->histogram("parallel.queue_wait_us.depth4");
    return r;
  }();
  return *registry;
}

MetricsRegistry::MetricsRegistry() = default;

Counter& MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    it = entries_
             .emplace(name, std::make_unique<Entry>(Entry::Kind::Counter))
             .first;
  } else if (it->second->kind != Entry::Kind::Counter) {
    throw ConfigError("metric '" + name +
                      "' already registered as a different kind");
  }
  return *it->second->counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    it = entries_.emplace(name, std::make_unique<Entry>(Entry::Kind::Gauge))
             .first;
  } else if (it->second->kind != Entry::Kind::Gauge) {
    throw ConfigError("metric '" + name +
                      "' already registered as a different kind");
  }
  return *it->second->gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::size_t capacity) {
  MutexLock lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    it = entries_
             .emplace(name,
                      std::make_unique<Entry>(Entry::Kind::Histogram,
                                              capacity))
             .first;
  } else if (it->second->kind != Entry::Kind::Histogram) {
    throw ConfigError("metric '" + name +
                      "' already registered as a different kind");
  }
  return *it->second->histogram;
}

std::vector<std::string> MetricsRegistry::names() const {
  MutexLock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    (void)entry;
    out.push_back(name);
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  // Snapshot entry pointers under the lock, format outside it: instruments
  // are node-stable and internally synchronized, and Histogram::snapshot()
  // takes its own mutex.
  std::vector<std::pair<std::string, const Entry*>> items;
  {
    MutexLock lock(mutex_);
    items.reserve(entries_.size());
    for (const auto& [name, entry] : entries_) {
      items.emplace_back(name, entry.get());
    }
  }
  std::ostringstream counters;
  std::ostringstream gauges;
  std::ostringstream histograms;
  bool first_counter = true;
  bool first_gauge = true;
  bool first_histogram = true;
  for (const auto& [name, entry] : items) {
    switch (entry->kind) {
      case Entry::Kind::Counter:
        counters << (first_counter ? "" : ", ") << "\"" << name
                 << "\": " << entry->counter->value();
        first_counter = false;
        break;
      case Entry::Kind::Gauge:
        gauges << (first_gauge ? "" : ", ") << "\"" << name
               << "\": {\"value\": " << entry->gauge->value()
               << ", \"max\": " << entry->gauge->max_value() << "}";
        first_gauge = false;
        break;
      case Entry::Kind::Histogram: {
        const Histogram::Snapshot snap = entry->histogram->snapshot();
        histograms << (first_histogram ? "" : ", ") << "\"" << name
                   << "\": {\"count\": " << snap.count
                   << ", \"sum\": " << format_double(snap.sum)
                   << ", \"min\": " << format_double(snap.min)
                   << ", \"max\": " << format_double(snap.max)
                   << ", \"p50\": " << format_double(snap.p50)
                   << ", \"p90\": " << format_double(snap.p90)
                   << ", \"p99\": " << format_double(snap.p99)
                   << ", \"p999\": " << format_double(snap.p999) << "}";
        first_histogram = false;
        break;
      }
    }
  }
  std::ostringstream out;
  out << "{\"counters\": {" << counters.str() << "}, \"gauges\": {"
      << gauges.str() << "}, \"histograms\": {" << histograms.str() << "}}";
  return out.str();
}

std::string MetricsRegistry::to_text() const {
  std::vector<std::pair<std::string, const Entry*>> items;
  {
    MutexLock lock(mutex_);
    items.reserve(entries_.size());
    for (const auto& [name, entry] : entries_) {
      items.emplace_back(name, entry.get());
    }
  }
  std::ostringstream out;
  for (const auto& [name, entry] : items) {
    const std::string prom = prometheus_name(name);
    // HELP carries the dotted registry name so a scrape can be mapped back
    // to the instrument without undoing the sanitization.
    out << "# HELP " << prom << " odonn metric '" << name << "'\n";
    switch (entry->kind) {
      case Entry::Kind::Counter:
        out << "# TYPE " << prom << " counter\n"
            << prom << " " << entry->counter->value() << "\n";
        break;
      case Entry::Kind::Gauge:
        out << "# TYPE " << prom << " gauge\n"
            << prom << " " << entry->gauge->value() << "\n"
            << prom << "_max " << entry->gauge->max_value() << "\n";
        break;
      case Entry::Kind::Histogram: {
        const Histogram::Snapshot snap = entry->histogram->snapshot();
        out << "# TYPE " << prom << " summary\n"
            << prom << "{quantile=\"0.5\"} " << format_double(snap.p50)
            << "\n"
            << prom << "{quantile=\"0.9\"} " << format_double(snap.p90)
            << "\n"
            << prom << "{quantile=\"0.99\"} " << format_double(snap.p99)
            << "\n"
            << prom << "{quantile=\"0.999\"} " << format_double(snap.p999)
            << "\n"
            << prom << "_sum " << format_double(snap.sum) << "\n"
            << prom << "_count " << snap.count << "\n";
        // Native-histogram companion family: cumulative le= buckets are
        // mergeable across processes, which the quantile summary is not.
        const std::string hist = prom + "_hist";
        const auto& bounds = Histogram::bucket_bounds();
        out << "# HELP " << hist << " odonn metric '" << name
            << "' (native histogram buckets)\n"
            << "# TYPE " << hist << " histogram\n";
        for (std::size_t i = 0; i < bounds.size(); ++i) {
          // Plain decimal (never scientific) for le= labels: "50", not
          // "5e+01" — the Prometheus bucket-label convention.
          char le[32];
          std::snprintf(le, sizeof(le), "%.10g", bounds[i]);
          out << hist << "_bucket{le=\"" << le << "\"} " << snap.buckets[i]
              << "\n";
        }
        out << hist << "_bucket{le=\"+Inf\"} " << snap.count << "\n"
            << hist << "_sum " << format_double(snap.sum) << "\n"
            << hist << "_count " << snap.count << "\n";
        break;
      }
    }
  }
  return out.str();
}

void MetricsRegistry::reset() {
  std::vector<Entry*> items;
  {
    MutexLock lock(mutex_);
    items.reserve(entries_.size());
    for (const auto& [name, entry] : entries_) {
      (void)name;
      items.push_back(entry.get());
    }
  }
  for (Entry* entry : items) {
    switch (entry->kind) {
      case Entry::Kind::Counter:
        entry->counter->reset();
        break;
      case Entry::Kind::Gauge:
        entry->gauge->reset();
        break;
      case Entry::Kind::Histogram:
        entry->histogram->reset();
        break;
    }
  }
}

namespace {

/// -1 = read ODONN_OBS_DETAIL on first use; 0/1 afterwards.
std::atomic<int> g_detail{-1};

}  // namespace

bool detail_enabled() {
  int state = g_detail.load(std::memory_order_relaxed);
  if (state < 0) {
    const char* env = std::getenv("ODONN_OBS_DETAIL");
    state = (env != nullptr && env[0] == '1') ? 1 : 0;
    g_detail.store(state, std::memory_order_relaxed);
  }
  return state != 0;
}

void set_detail(bool enabled) {
  g_detail.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace odonn::obs

// HttpServer — dependency-free observability HTTP plane (POSIX sockets).
//
// A deliberately small HTTP/1.1 server for scraping, not serving: GET-only,
// Connection: close on every response, one accept thread plus a small
// handler pool. It exists so a live serve process can expose /metrics,
// /metrics.json, /healthz, /snapshot and /spans to curl / Prometheus
// without pulling in any HTTP library the container doesn't have.
//
// Lifecycle: construct with options, register handlers, start(), stop().
// start() binds and begins accepting; port 0 binds an ephemeral port and
// port() reports the resolved one (how tests avoid collisions). stop() is
// graceful: the accept thread closes the listener, workers finish every
// connection already accepted, then exit. The destructor calls stop().
//
// Determinism contract: the HTTP plane only READS observability state —
// handlers render registry/trace/snapshot text. Serving scrapes never
// feeds back into computation, so prediction digests are bitwise
// identical with the server on or off (scripts/check.sh asserts this).
//
// Instrumentation: every accepted request bumps obs.http.requests BEFORE
// the handler renders, so the /metrics body it returns already includes
// the scrape itself and is byte-identical to a to_text() call taken after
// it. Non-200 outcomes (404/405/500, parse failures) also bump
// obs.http.errors.
//
// Thread safety: handle() may be called from any thread before or after
// start(); start()/stop() are not reentrant.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.hpp"

namespace odonn::obs {

/// Parsed request line of an accepted connection.
struct HttpRequest {
  std::string method;  ///< e.g. "GET"
  std::string target;  ///< raw request target, query string included
  std::string path;    ///< target with any "?query" suffix stripped
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

struct HttpServerOptions {
  /// Interface to bind. Loopback by default: this is an operator plane,
  /// not a public service.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (resolved via port()).
  std::uint16_t port = 0;
  /// Worker threads rendering responses. Scrapes are cheap; two keep a
  /// slow reader from blocking the next scrape.
  std::size_t handler_threads = 2;
  /// Reject request heads larger than this (we never need more than a
  /// request line and a few headers).
  std::size_t max_request_bytes = 8192;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(HttpServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers `handler` for exact-match `path` (e.g. "/metrics").
  /// Re-registering a path replaces the handler.
  void handle(const std::string& path, Handler handler);

  /// Binds, listens and starts the accept thread + worker pool. Throws
  /// IoError when the bind address/port is unavailable.
  void start();

  /// Graceful shutdown: stops accepting, drains already-accepted
  /// connections, joins all threads. Idempotent; called by the destructor.
  void stop();

  /// Resolved listening port (the ephemeral port when options.port was 0).
  /// Valid after start().
  std::uint16_t port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Requests fully served (any status) since start().
  std::uint64_t requests_served() const;

 private:
  void accept_loop();
  void worker_loop();
  void serve_connection(int fd);
  HttpResponse dispatch(const HttpRequest& request);

  HttpServerOptions options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  /// Atomic so running() is safe from any thread while start()/stop() run
  /// on the controlling thread (start()/stop() themselves are not
  /// reentrant).
  std::atomic<bool> running_{false};

  mutable Mutex mutex_;
  CondVar cv_;
  /// Accepted fds awaiting a worker.
  std::deque<int> pending_ ODONN_GUARDED_BY(mutex_);
  bool stopping_ ODONN_GUARDED_BY(mutex_) = false;
  std::uint64_t served_ ODONN_GUARDED_BY(mutex_) = 0;

  std::unordered_map<std::string, Handler> handlers_ ODONN_GUARDED_BY(mutex_);

  std::thread acceptor_;
  std::vector<std::thread> workers_;
};

/// Extra wiring for register_obs_routes.
struct ObsRouteOptions {
  /// Extra JSON fields spliced into the /healthz object (must be either
  /// empty or a fragment like `"replicas": 2, "draining": false`).
  std::function<std::string()> health_extra;
};

/// Registers the standard observability routes on `server`:
///   GET /metrics       Prometheus text (MetricsRegistry::to_text(),
///                      content type "text/plain; version=0.0.4;
///                      charset=utf-8"; body byte-identical to to_text())
///   GET /metrics.json  obs::export_json()
///   GET /healthz       {"status": "ok", "build": <build_info_json()>,
///                      "uptime_s": N[, <health_extra fragment>]}
///   GET /spans         obs::spans_json()
void register_obs_routes(HttpServer& server, ObsRouteOptions options = {});

/// Minimal blocking HTTP/1.1 client for the CLI smoke tool and tests (no
/// curl dependency in the container). Connects to host:port, sends one
/// `method path` request, reads until the peer closes.
struct HttpGetResult {
  bool ok = false;    ///< transport-level success (response parsed)
  int status = 0;     ///< HTTP status code when ok
  std::string body;   ///< response body when ok
  std::string error;  ///< transport error description when !ok
};
HttpGetResult http_get(const std::string& host, std::uint16_t port,
                       const std::string& path, int timeout_ms = 5000,
                       const std::string& method = "GET");

}  // namespace odonn::obs

// Umbrella header for the observability subsystem: pulls in the metrics
// registry and trace spans and defines the instrumentation macros the rest
// of the codebase uses.
//
// The macros cache the registry lookup in a function-local static (one
// mutexed map lookup per call SITE, then a single relaxed atomic RMW per
// call), and compiling with -DODONN_OBS_DISABLE collapses every macro to a
// no-op with the name/value expressions unevaluated — the zero-cost
// escape hatch the determinism guarantee is checked against
// (tests/helpers/obs_disabled_helper.cpp builds against that mode).
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace odonn::obs {

/// Combined export: {"build": <build_info_json()>,
/// "metrics": <MetricsRegistry::to_json()>, "spans": <spans_json()>,
/// "trace_dropped": N, "trace_flushed": N}. The shape written by the CLI
/// `metrics=` key, served at GET /metrics.json, and embedded in bench
/// records.
std::string export_json();

/// Seconds since the process-wide obs clock was first pinned (static init
/// of the obs library) — the uptime figure /healthz reports.
double process_uptime_seconds();

/// Build/provenance record: {"git_sha": "...", "compiler": "...",
/// "obs_disabled": bool (whether the obs LIBRARY was compiled with
/// ODONN_OBS_DISABLE), "obs_detail": bool, "tracing": bool,
/// "uptime_s": N}. The detail/tracing flags are the live runtime state,
/// so a scrape shows whether the run it hit had collection switched on.
std::string build_info_json();

}  // namespace odonn::obs

#ifdef ODONN_OBS_DISABLE

#define ODONN_OBS_COUNT(name, ...) \
  do {                             \
  } while (0)
#define ODONN_OBS_GAUGE_SET(name, ...) \
  do {                                 \
  } while (0)
#define ODONN_OBS_HIST(name, ...) \
  do {                            \
  } while (0)
/// Declares an inert span; the name expression is never evaluated.
#define ODONN_OBS_SPAN(var, ...) ::odonn::obs::TraceSpan var

#else

/// Adds the (variadic, so commas are fine) count expression to counter
/// `name` (registered on first execution of the call site, cached
/// thereafter).
#define ODONN_OBS_COUNT(name, ...)                                     \
  do {                                                                 \
    static ::odonn::obs::Counter& odonn_obs_instrument_ =              \
        ::odonn::obs::MetricsRegistry::global().counter(name);         \
    odonn_obs_instrument_.add(static_cast<std::uint64_t>(__VA_ARGS__)); \
  } while (0)

#define ODONN_OBS_GAUGE_SET(name, ...)                                 \
  do {                                                                 \
    static ::odonn::obs::Gauge& odonn_obs_instrument_ =                \
        ::odonn::obs::MetricsRegistry::global().gauge(name);           \
    odonn_obs_instrument_.set(static_cast<std::int64_t>(__VA_ARGS__)); \
  } while (0)

#define ODONN_OBS_HIST(name, ...)                                      \
  do {                                                                 \
    static ::odonn::obs::Histogram& odonn_obs_instrument_ =            \
        ::odonn::obs::MetricsRegistry::global().histogram(name);       \
    odonn_obs_instrument_.observe(static_cast<double>(__VA_ARGS__));   \
  } while (0)

/// Declares a named RAII span `var` covering the rest of the scope; inert
/// (no clock reads, no allocation) unless tracing_enabled().
#define ODONN_OBS_SPAN(var, ...) \
  ::odonn::obs::TraceSpan var { __VA_ARGS__ }

#endif  // ODONN_OBS_DISABLE

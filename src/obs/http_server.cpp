#include "obs/http_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace odonn::obs {

namespace {

/// Reason phrases for the statuses this plane actually emits.
const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Internal Server Error";
  }
}

/// Per-connection socket timeouts so a stalled peer can never wedge a
/// worker past a few seconds.
void set_socket_timeouts(int fd, int seconds) {
  timeval tv{};
  tv.tv_sec = seconds;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) return;  // peer gone; nothing sensible to do on a scrape
    sent += static_cast<std::size_t>(n);
  }
}

void write_response(int fd, const HttpResponse& response) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     status_text(response.status) + "\r\n";
  head += "Content-Type: " + response.content_type + "\r\n";
  head += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  head += "Connection: close\r\n\r\n";
  write_all(fd, head + response.body);
}

}  // namespace

HttpServer::HttpServer(HttpServerOptions options)
    : options_(std::move(options)) {
  ODONN_CHECK(options_.handler_threads >= 1,
              "http: handler_threads must be >= 1");
  ODONN_CHECK(options_.max_request_bytes >= 64,
              "http: max_request_bytes must be >= 64");
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(const std::string& path, Handler handler) {
  ODONN_CHECK(!path.empty() && path.front() == '/',
              "http: route path must start with '/'");
  ODONN_CHECK(handler != nullptr, "http: null handler");
  MutexLock lock(mutex_);
  handlers_[path] = std::move(handler);
}

void HttpServer::start() {
  ODONN_CHECK(!running(), "http: start() called twice");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw IoError("http: socket() failed");
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    throw ConfigError("http: invalid bind address '" + options_.bind_address +
                      "'");
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    throw IoError("http: cannot bind " + options_.bind_address + ":" +
                  std::to_string(options_.port) + " (" +
                  std::strerror(err) + ")");
  }
  if (::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    throw IoError("http: listen() failed (" + std::string(std::strerror(err)) +
                  ")");
  }

  // Resolve the actual port (meaningful when options_.port == 0).
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    ::close(fd);
    throw IoError("http: getsockname() failed");
  }
  port_ = ntohs(bound.sin_port);

  listen_fd_ = fd;
  {
    MutexLock lock(mutex_);
    stopping_ = false;
    served_ = 0;
  }
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { accept_loop(); });
  workers_.reserve(options_.handler_threads);
  for (std::size_t i = 0; i < options_.handler_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void HttpServer::stop() {
  if (!running()) return;
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

std::uint64_t HttpServer::requests_served() const {
  MutexLock lock(mutex_);
  return served_;
}

void HttpServer::accept_loop() {
  for (;;) {
    {
      MutexLock lock(mutex_);
      if (stopping_) return;
    }
    // Short poll so the stop flag is observed within ~100ms without
    // resorting to signals or a self-pipe.
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    set_socket_timeouts(client, 5);
    {
      MutexLock lock(mutex_);
      if (stopping_) {
        // Shutting down: refuse politely rather than strand the peer.
        ::close(client);
        return;
      }
      pending_.push_back(client);
    }
    cv_.notify_one();
  }
}

void HttpServer::worker_loop() {
  for (;;) {
    int fd = -1;
    {
      MutexLock lock(mutex_);
      cv_.wait(mutex_, [this]() ODONN_REQUIRES(mutex_) {
        return stopping_ || !pending_.empty();
      });
      if (pending_.empty()) return;  // stopping and fully drained
      fd = pending_.front();
      pending_.pop_front();
    }
    serve_connection(fd);
  }
}

void HttpServer::serve_connection(int fd) {
  // Read the request head (we never accept bodies on this plane).
  std::string head;
  char buffer[1024];
  while (head.size() < options_.max_request_bytes &&
         head.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    head.append(buffer, static_cast<std::size_t>(n));
  }

  HttpResponse response;
  const std::size_t line_end = head.find("\r\n");
  const std::size_t sp1 = head.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : head.find(' ', sp1 + 1);
  if (line_end == std::string::npos || sp1 == std::string::npos ||
      sp2 == std::string::npos || sp2 > line_end) {
    ODONN_OBS_COUNT("obs.http.errors", 1);
    response.status = 400;
    response.body = "malformed request\n";
  } else {
    HttpRequest request;
    request.method = head.substr(0, sp1);
    request.target = head.substr(sp1 + 1, sp2 - sp1 - 1);
    request.path = request.target.substr(0, request.target.find('?'));
    response = dispatch(request);
  }
  // Count BEFORE the response bytes leave: a client that has received its
  // response must already be visible in requests_served() (tests join
  // their clients and then assert the exact count).
  {
    MutexLock lock(mutex_);
    ++served_;
  }
  write_response(fd, response);
  ::close(fd);
}

HttpResponse HttpServer::dispatch(const HttpRequest& request) {
  // Count the scrape BEFORE the handler renders: the /metrics body a
  // scraper receives then already includes its own request, making it
  // byte-identical to a to_text() call taken right after (tests assert
  // this equality).
  ODONN_OBS_COUNT("obs.http.requests", 1);

  HttpResponse response;
  if (request.method != "GET") {
    ODONN_OBS_COUNT("obs.http.errors", 1);
    response.status = 405;
    response.body = "only GET is supported\n";
    return response;
  }
  Handler handler;
  {
    MutexLock lock(mutex_);
    auto it = handlers_.find(request.path);
    if (it != handlers_.end()) handler = it->second;
  }
  if (!handler) {
    ODONN_OBS_COUNT("obs.http.errors", 1);
    response.status = 404;
    response.body = "no route for " + request.path + "\n";
    return response;
  }
  try {
    return handler(request);
  } catch (const std::exception& e) {
    ODONN_OBS_COUNT("obs.http.errors", 1);
    response.status = 500;
    response.body = std::string("handler failed: ") + e.what() + "\n";
    return response;
  } catch (...) {
    ODONN_OBS_COUNT("obs.http.errors", 1);
    response.status = 500;
    response.body = "handler failed\n";
    return response;
  }
}

void register_obs_routes(HttpServer& server, ObsRouteOptions options) {
  server.handle("/metrics", [](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = MetricsRegistry::global().to_text();
    return response;
  });
  server.handle("/metrics.json", [](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = export_json();
    return response;
  });
  server.handle("/spans", [](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = spans_json();
    return response;
  });
  server.handle("/healthz", [extra = std::move(options.health_extra)](
                                const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    std::string body = "{\"status\": \"ok\", \"build\": " + build_info_json() +
                       ", \"uptime_s\": " +
                       format_double(process_uptime_seconds());
    if (extra) {
      const std::string fragment = extra();
      if (!fragment.empty()) body += ", " + fragment;
    }
    body += "}";
    response.body = std::move(body);
    return response;
  });
}

HttpGetResult http_get(const std::string& host, std::uint16_t port,
                       const std::string& path, int timeout_ms,
                       const std::string& method) {
  HttpGetResult result;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    result.error = "socket() failed";
    return result;
  }
  const int timeout_s = timeout_ms <= 0 ? 1 : (timeout_ms + 999) / 1000;
  set_socket_timeouts(fd, timeout_s);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    result.error = "invalid host '" + host + "' (IPv4 literal required)";
    return result;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    result.error = "connect failed (" + std::string(std::strerror(err)) + ")";
    return result;
  }

  const std::string request = method + " " + path + " HTTP/1.1\r\nHost: " +
                              host + "\r\nConnection: close\r\n\r\n";
  write_all(fd, request);

  std::string raw;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    raw.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);

  // "HTTP/1.1 <code> ...\r\n...\r\n\r\n<body>"
  const std::size_t sp = raw.find(' ');
  const std::size_t split = raw.find("\r\n\r\n");
  if (sp == std::string::npos || split == std::string::npos ||
      raw.compare(0, 5, "HTTP/") != 0) {
    result.error = raw.empty() ? "empty response" : "malformed response";
    return result;
  }
  result.status = std::atoi(raw.c_str() + sp + 1);
  result.body = raw.substr(split + 4);
  result.ok = result.status != 0;
  return result;
}

}  // namespace odonn::obs

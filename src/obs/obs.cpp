#include "obs/obs.hpp"

#include <chrono>
#include <sstream>

namespace odonn::obs {

namespace {

// Pinned at static init so /healthz uptime covers (almost) the whole
// process life, not the time since the first scrape.
const std::chrono::steady_clock::time_point g_process_start =
    std::chrono::steady_clock::now();

}  // namespace

double process_uptime_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       g_process_start)
      .count();
}

std::string build_info_json() {
#ifdef ODONN_GIT_SHA
  const char* git_sha = ODONN_GIT_SHA;
#else
  const char* git_sha = "unknown";
#endif
#ifdef ODONN_OBS_DISABLE
  const bool obs_disabled = true;
#else
  const bool obs_disabled = false;
#endif
#if defined(__VERSION__)
  const char* compiler = __VERSION__;
#else
  const char* compiler = "unknown";
#endif
  std::ostringstream out;
  out << "{\"git_sha\": \"" << git_sha << "\", \"compiler\": \"" << compiler
      << "\", \"obs_disabled\": " << (obs_disabled ? "true" : "false")
      << ", \"obs_detail\": " << (detail_enabled() ? "true" : "false")
      << ", \"tracing\": " << (tracing_enabled() ? "true" : "false")
      << ", \"uptime_s\": " << format_double(process_uptime_seconds()) << "}";
  return out.str();
}

std::string export_json() {
  std::ostringstream out;
  out << "{\"build\": " << build_info_json()
      << ", \"metrics\": " << MetricsRegistry::global().to_json()
      << ", \"spans\": " << spans_json()
      << ", \"trace_dropped\": " << trace_dropped()
      << ", \"trace_flushed\": " << trace_flushed() << "}";
  return out.str();
}

}  // namespace odonn::obs

#include "obs/obs.hpp"

#include <sstream>

namespace odonn::obs {

std::string export_json() {
  std::ostringstream out;
  out << "{\"metrics\": " << MetricsRegistry::global().to_json()
      << ", \"spans\": " << spans_json()
      << ", \"trace_dropped\": " << trace_dropped()
      << ", \"trace_flushed\": " << trace_flushed() << "}";
  return out.str();
}

}  // namespace odonn::obs

// Process-wide metrics registry: lock-free atomic counters and gauges plus
// bounded-window histograms, exported as JSON or Prometheus-style text.
//
// Design constraints (the reason this subsystem may be wired into the hot
// deterministic paths at all):
//   * Collection NEVER feeds back into computation — instruments only read
//     clocks and bump atomics, so every phase/report digest is bitwise
//     identical with metrics on or off (scripts/check.sh asserts this).
//   * Counter/Gauge updates are single relaxed atomic RMWs; histograms take
//     a short mutex but sit off the per-sample inner loops (per batch, per
//     task, per realization at most).
//   * Call sites go through the ODONN_OBS_* macros in obs/obs.hpp, which
//     cache the registry lookup in a function-local static and collapse to
//     nothing under ODONN_OBS_DISABLE.
//
// The registry is a leaked process-global (like the parallel thread pool):
// worker threads may still bump counters during static destruction.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"

namespace odonn::obs {

/// Shortest round-trip double formatting shared by the obs exporters and
/// the serve snapshot JSON (integral values print without an exponent or
/// trailing dot, matching the bench JSON convention).
std::string format_double(double value);

/// Monotonic event count. Relaxed atomics: totals are exact, cross-counter
/// ordering is not promised (exporters snapshot, they don't reconcile).
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (queue depth, cache size) with a high-watermark that
/// survives the level dropping back down.
class Gauge {
 public:
  void set(std::int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    update_max(v);
  }
  void add(std::int64_t delta) {
    update_max(value_.fetch_add(delta, std::memory_order_relaxed) + delta);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  std::int64_t max_value() const {
    return max_.load(std::memory_order_relaxed);
  }
  void reset() {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  void update_max(std::int64_t v) {
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Bounded sliding-window histogram: keeps the most recent `capacity`
/// observations in a ring plus running count/sum/min/max over ALL
/// observations. Percentiles use the repo-wide nearest-rank rule
/// (odonn::nearest_rank) over the retained window.
class Histogram {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;

  explicit Histogram(std::size_t capacity = kDefaultCapacity);

  /// Fixed log-spaced bucket bounds (1-2.5-5 per decade, 1e-3 .. 1e4)
  /// shared by every instrument: microseconds to ten seconds when the unit
  /// is ms, and 1..10000 for dimensionless series like batch sizes.
  /// Observations above the last bound count only toward +Inf.
  static const std::vector<double>& bucket_bounds();

  void observe(double value);

  struct Snapshot {
    std::uint64_t count = 0;  ///< all observations, not just retained ones
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
    /// Cumulative native-histogram counts: buckets[i] = observations with
    /// value <= bucket_bounds()[i], over ALL observations (running, like
    /// count/sum — not windowed). The +Inf bucket is `count`.
    std::vector<std::uint64_t> buckets;
  };

  /// Zeroed snapshot when nothing was observed.
  Snapshot snapshot() const;

  void reset();

 private:
  mutable Mutex mutex_;
  std::vector<double> window_ ODONN_GUARDED_BY(mutex_);
  std::size_t next_ ODONN_GUARDED_BY(mutex_) = 0;
  bool wrapped_ ODONN_GUARDED_BY(mutex_) = false;
  std::uint64_t count_ ODONN_GUARDED_BY(mutex_) = 0;
  double sum_ ODONN_GUARDED_BY(mutex_) = 0.0;
  double min_ ODONN_GUARDED_BY(mutex_) = 0.0;
  double max_ ODONN_GUARDED_BY(mutex_) = 0.0;
  /// Per-bound counts (non-cumulative).
  std::vector<std::uint64_t> buckets_ ODONN_GUARDED_BY(mutex_);
};

/// Name -> instrument map. Instruments are created on first use and never
/// destroyed or moved (std::map node stability), so call sites may cache
/// references in function-local statics. A name is bound to one kind for
/// the life of the process; re-requesting it as a different kind throws.
class MetricsRegistry {
 public:
  /// The process-wide registry (leaked, never destroyed). Pre-registers
  /// the builtin instrument names wired through the codebase so exports
  /// always contain the full schema, zero-valued where a subsystem did
  /// not run.
  static MetricsRegistry& global();

  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::size_t capacity = Histogram::kDefaultCapacity);

  /// All registered names, sorted (the map order).
  std::vector<std::string> names() const;

  /// JSON object {"counters": {...}, "gauges": {...}, "histograms": {...}}
  /// with names sorted; gauges carry {"value", "max"}, histograms carry
  /// {"count", "sum", "min", "max", "p50", "p90", "p99", "p999"}.
  std::string to_json() const;

  /// Prometheus-style exposition: dots in names become underscores, every
  /// metric is prefixed "odonn_" and preceded by # HELP / # TYPE lines;
  /// histograms export as summaries (quantile-labelled samples for
  /// 0.5/0.9/0.99/0.999 plus _count/_sum) AND as a native-histogram family
  /// "<name>_hist" with cumulative le=-labelled _bucket samples over
  /// Histogram::bucket_bounds() plus _hist_sum/_hist_count, so scrapers
  /// can aggregate across processes (quantile summaries cannot be merged;
  /// buckets can). All quantiles go through the repo-wide
  /// odonn::nearest_rank rule, so they agree with the serve benches to the
  /// bit. This is the exact body `GET /metrics` serves (tests assert byte
  /// equality).
  std::string to_text() const;

  /// Zeroes every instrument IN PLACE — nodes survive so cached references
  /// held by call-site statics stay valid.
  void reset();

 private:
  struct Entry;

  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Entry>> entries_
      ODONN_GUARDED_BY(mutex_);
};

/// Per-task detail collection (queue-wait timestamps in the thread pool).
/// Off by default — the coarse counters/gauges/histograms are always on —
/// and switched on by the CLI `metrics=`/`trace=` keys or ODONN_OBS_DETAIL=1.
bool detail_enabled();
void set_detail(bool enabled);

}  // namespace odonn::obs

// Scoped wall-clock trace spans with parent/child nesting, collected into
// a process-global bounded event list and exported as Chrome-trace JSON
// (chrome://tracing / Perfetto "traceEvents" complete events) or a plain
// span list.
//
// Spans are RAII: construction stamps the start, destruction appends one
// event. Nesting depth is tracked per thread, so a span opened inside
// another span on the same thread records depth parent+1 — enough to
// reconstruct the tree without explicit parent ids (Chrome-trace infers
// the same nesting from the [ts, ts+dur] containment per tid).
//
// Tracing is OFF by default (spans constructed while disabled are inert:
// no clock reads, no allocation) and switched on by the CLI
// `metrics=`/`trace=` keys or ODONN_TRACE=1. Like the metrics registry,
// collection never feeds back into computation.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace odonn::obs {

struct TraceEvent {
  std::string name;
  std::uint32_t tid = 0;    ///< small per-process thread tag, not the OS id
  std::uint32_t depth = 0;  ///< 1 = top-level span on its thread
  std::int64_t start_us = 0;  ///< since the process trace epoch
  std::int64_t duration_us = 0;
  /// Nonzero links the span to a serve request: the engine emits one
  /// umbrella "request" span plus queue_wait/batch_wait/compute children,
  /// all carrying the same id, so the Chrome-trace export groups a
  /// request's whole latency breakdown under one args.request_id.
  std::uint64_t request_id = 0;
};

bool tracing_enabled();
void set_tracing(bool enabled);

/// Snapshot of all finished spans, in completion order.
std::vector<TraceEvent> trace_events();

/// Drops all collected events (the bounded buffer refills afterwards).
void clear_trace();

/// Events dropped because the bounded buffer (64k events) was full AND no
/// flush file was attached to take them.
std::uint64_t trace_dropped();

/// Attaches a streaming span sink: every span completed from now on is
/// ALSO appended to `path` as one JSON line (same fields as spans_json()
/// elements), so sustained runs — a serve load bench, a long table — keep
/// a complete record even after the in-memory buffer caps out. With a sink
/// attached, buffer-full events count as flushed, not dropped. Truncates
/// any existing file; replaces any previously attached sink. Throws
/// IoError when the file cannot be opened.
void set_trace_flush_file(const std::string& path);

/// Flushes and detaches the streaming sink. Idempotent, safe when no sink
/// is attached.
void close_trace_flush_file();

/// Spans appended to the flush file since it was attached.
std::uint64_t trace_flushed();

/// Chrome-trace format: {"traceEvents": [{"name", "cat", "ph": "X", "pid",
/// "tid", "ts", "dur", "args": {"depth"}}]}. Load in chrome://tracing or
/// https://ui.perfetto.dev.
std::string trace_to_chrome_json();

/// Plain JSON array of spans: [{"name", "tid", "depth", "start_us",
/// "duration_us"}] — the shape embedded in metrics exports.
std::string spans_json();

/// Small dense tag for the calling thread (0, 1, 2, ... in first-use
/// order). Also used by the log timestamp prefix.
std::uint32_t thread_tag();

/// Converts a steady-clock stamp into the trace timebase (microseconds
/// since the process trace epoch) — how the serve engine turns its
/// RequestContext stamps into span timestamps.
std::int64_t trace_timestamp_us(std::chrono::steady_clock::time_point t);

/// Appends one completed span directly (no RAII scope): used for spans
/// whose start/end were stamped elsewhere, e.g. the per-request
/// queue_wait/batch_wait/compute attribution intervals reconstructed on
/// the serve drain thread. No-op while tracing is disabled. The event is
/// tagged with the calling thread and flows through the same bounded
/// buffer + flush sink as RAII spans.
void record_span(std::string name, std::int64_t start_us,
                 std::int64_t duration_us, std::uint32_t depth,
                 std::uint64_t request_id = 0);

/// RAII span. The default constructor is inert (used by the disabled-macro
/// path); the named constructor is inert too when tracing is off.
class TraceSpan {
 public:
  TraceSpan() = default;
  explicit TraceSpan(std::string name);
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (active_) {
      finish();
    }
  }

 private:
  void finish();

  bool active_ = false;
  std::string name_;
  std::uint32_t depth_ = 0;
  std::int64_t start_us_ = 0;
};

}  // namespace odonn::obs

#include "sparsify/magnitude_sparsify.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/error.hpp"

namespace odonn::sparsify {

SparsityMask magnitude_sparsify(const MatrixD& weights,
                                const MagnitudeSparsifyOptions& options) {
  ODONN_CHECK(!weights.empty(), "magnitude_sparsify: empty weights");
  ODONN_CHECK(options.ratio >= 0.0 && options.ratio <= 1.0,
              "magnitude_sparsify: ratio must be in [0, 1]");
  const std::size_t to_zero = static_cast<std::size_t>(
      std::llround(options.ratio * static_cast<double>(weights.size())));
  SparsityMask mask = full_mask(weights.rows(), weights.cols());
  if (to_zero == 0) return mask;

  std::vector<std::size_t> order(weights.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return std::abs(weights[a]) < std::abs(weights[b]);
                   });
  for (std::size_t i = 0; i < to_zero; ++i) mask[order[i]] = 0;
  return mask;
}

SparsityMask magnitude_sparsify_threshold(const MatrixD& weights,
                                          double threshold) {
  ODONN_CHECK(!weights.empty(), "magnitude_sparsify_threshold: empty weights");
  SparsityMask mask = full_mask(weights.rows(), weights.cols());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (std::abs(weights[i]) < threshold) mask[i] = 0;
  }
  return mask;
}

}  // namespace odonn::sparsify

// Binary sparsity masks: 1 = keep, 0 = zeroed pixel. Produced by the three
// sparsification schemes and applied multiplicatively to phase masks both in
// training (mask-frozen updates) and at deployment.
#pragma once

#include <cstddef>

#include "tensor/matrix.hpp"

namespace odonn::sparsify {

using SparsityMask = MatrixU8;

/// Fraction of zeroed entries in [0, 1].
double sparsity_ratio(const SparsityMask& mask);

/// Number of kept (non-zero) entries.
std::size_t kept_count(const SparsityMask& mask);

/// Zeroes the weights wherever the mask is 0 (in place).
void apply_mask(MatrixD& weights, const SparsityMask& mask);

/// Returns an all-ones (keep everything) mask.
SparsityMask full_mask(std::size_t rows, std::size_t cols);

}  // namespace odonn::sparsify

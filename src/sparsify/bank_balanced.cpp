#include "sparsify/bank_balanced.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/error.hpp"

namespace odonn::sparsify {

SparsityMask bank_balanced_sparsify(const MatrixD& weights,
                                    const BankBalancedOptions& options) {
  ODONN_CHECK(!weights.empty(), "bank_balanced_sparsify: empty weights");
  ODONN_CHECK(options.bank_size >= 1, "bank_balanced_sparsify: bad bank size");
  ODONN_CHECK(options.ratio >= 0.0 && options.ratio <= 1.0,
              "bank_balanced_sparsify: ratio must be in [0, 1]");
  ODONN_CHECK_SHAPE(weights.cols() % options.bank_size == 0,
                    "bank_balanced_sparsify: bank size must divide columns");

  const std::size_t per_bank = static_cast<std::size_t>(
      std::llround(options.ratio * static_cast<double>(options.bank_size)));
  SparsityMask mask = full_mask(weights.rows(), weights.cols());
  if (per_bank == 0) return mask;

  std::vector<std::size_t> order(options.bank_size);
  for (std::size_t r = 0; r < weights.rows(); ++r) {
    for (std::size_t b0 = 0; b0 < weights.cols(); b0 += options.bank_size) {
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return std::abs(weights(r, b0 + a)) <
                                std::abs(weights(r, b0 + b));
                       });
      for (std::size_t i = 0; i < per_bank; ++i) mask(r, b0 + order[i]) = 0;
    }
  }
  return mask;
}

}  // namespace odonn::sparsify

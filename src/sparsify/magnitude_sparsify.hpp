// Non-structured magnitude sparsification (paper §III-C1, Fig. 3b; Han et
// al. 2015): individual weights with the smallest absolute value are zeroed,
// regardless of position. Highest flexibility, but the surviving weights are
// scattered — which is why it scores worse on roughness than block sparsity.
#pragma once

#include "sparsify/mask.hpp"
#include "tensor/matrix.hpp"

namespace odonn::sparsify {

struct MagnitudeSparsifyOptions {
  /// Fraction of elements to zero (by ascending |w|, ties by scan order).
  double ratio = 0.1;
};

SparsityMask magnitude_sparsify(const MatrixD& weights,
                                const MagnitudeSparsifyOptions& options);

/// Zeroes every element with |w| strictly below `threshold`.
SparsityMask magnitude_sparsify_threshold(const MatrixD& weights,
                                          double threshold);

}  // namespace odonn::sparsify

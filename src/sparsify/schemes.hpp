// Unified front-end over the three sparsification schemes so recipes,
// benches and the Fig. 3 comparison can switch by name.
#pragma once

#include <string>

#include "sparsify/bank_balanced.hpp"
#include "sparsify/block_sparsify.hpp"
#include "sparsify/magnitude_sparsify.hpp"

namespace odonn::sparsify {

enum class Scheme { Block, NonStructured, BankBalanced };

/// Parses "block" | "nonstructured" | "bank" (case-insensitive).
Scheme parse_scheme(const std::string& name);
const char* scheme_name(Scheme scheme);

struct SchemeOptions {
  Scheme scheme = Scheme::Block;
  double ratio = 0.1;
  std::size_t block_size = 2;  ///< block schemes
  std::size_t bank_size = 3;   ///< bank-balanced
};

SparsityMask sparsify(const MatrixD& weights, const SchemeOptions& options);

}  // namespace odonn::sparsify

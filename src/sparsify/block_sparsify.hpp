// Block sparsification (paper §III-C1, Fig. 3a): the weight matrix is
// partitioned into equal-sized blocks; whole blocks whose L2 norm falls
// below a threshold (or percentile rank) are zeroed. Operating on blocks
// rather than elements leaves contiguous cleared areas, which is what gives
// block sparsity the lowest roughness of the three schemes.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "sparsify/mask.hpp"
#include "tensor/matrix.hpp"

namespace odonn::sparsify {

struct BlockSparsifyOptions {
  std::size_t block_size = 2;
  /// Fraction of blocks to zero (by ascending L2 norm). Ties broken by
  /// block scan order for determinism.
  double ratio = 0.1;
};

/// Per-block L2 norms, shape ceil(rows/b) x ceil(cols/b); partial edge
/// blocks use their true extent.
MatrixD block_l2_norms(const MatrixD& weights, std::size_t block_size);

/// Mask zeroing the `ratio` fraction of blocks with smallest L2 norm.
SparsityMask block_sparsify(const MatrixD& weights,
                            const BlockSparsifyOptions& options);

/// Mask zeroing every block whose L2 norm is strictly below `threshold`.
SparsityMask block_sparsify_threshold(const MatrixD& weights,
                                      std::size_t block_size,
                                      double threshold);

/// Mask zeroing an explicit set of blocks (block-grid coordinates); used by
/// tests to reproduce the paper's illustrative figures exactly.
SparsityMask block_mask_from_selection(std::size_t rows, std::size_t cols,
                                       std::size_t block_size,
                                       const std::vector<std::pair<std::size_t, std::size_t>>& zero_blocks);

}  // namespace odonn::sparsify

#include "sparsify/schemes.hpp"

#include <algorithm>
#include <cctype>

#include "common/error.hpp"

namespace odonn::sparsify {

Scheme parse_scheme(const std::string& name) {
  std::string low(name.size(), '\0');
  std::transform(name.begin(), name.end(), low.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (low == "block") return Scheme::Block;
  if (low == "nonstructured" || low == "non-structured" || low == "magnitude") {
    return Scheme::NonStructured;
  }
  if (low == "bank" || low == "bank-balanced" || low == "bankbalanced") {
    return Scheme::BankBalanced;
  }
  throw ConfigError("unknown sparsification scheme '" + name + "'");
}

const char* scheme_name(Scheme scheme) {
  switch (scheme) {
    case Scheme::Block: return "block";
    case Scheme::NonStructured: return "nonstructured";
    case Scheme::BankBalanced: return "bank";
  }
  return "?";
}

SparsityMask sparsify(const MatrixD& weights, const SchemeOptions& options) {
  switch (options.scheme) {
    case Scheme::Block:
      return block_sparsify(weights, {options.block_size, options.ratio});
    case Scheme::NonStructured:
      return magnitude_sparsify(weights, {options.ratio});
    case Scheme::BankBalanced:
      return bank_balanced_sparsify(weights,
                                    {options.bank_size, options.ratio});
  }
  throw ConfigError("unhandled sparsification scheme");
}

}  // namespace odonn::sparsify

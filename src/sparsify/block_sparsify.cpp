#include "sparsify/block_sparsify.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/error.hpp"

namespace odonn::sparsify {

namespace {

void zero_block(SparsityMask& mask, std::size_t block_size, std::size_t br,
                std::size_t bc) {
  const std::size_t r0 = br * block_size;
  const std::size_t c0 = bc * block_size;
  const std::size_t r1 = std::min(mask.rows(), r0 + block_size);
  const std::size_t c1 = std::min(mask.cols(), c0 + block_size);
  for (std::size_t r = r0; r < r1; ++r) {
    for (std::size_t c = c0; c < c1; ++c) mask(r, c) = 0;
  }
}

}  // namespace

MatrixD block_l2_norms(const MatrixD& weights, std::size_t block_size) {
  ODONN_CHECK(!weights.empty(), "block_l2_norms: empty weights");
  ODONN_CHECK(block_size >= 1, "block_l2_norms: block_size must be >= 1");
  const std::size_t tr = (weights.rows() + block_size - 1) / block_size;
  const std::size_t tc = (weights.cols() + block_size - 1) / block_size;
  MatrixD norms(tr, tc);
  for (std::size_t br = 0; br < tr; ++br) {
    const std::size_t r0 = br * block_size;
    const std::size_t r1 = std::min(weights.rows(), r0 + block_size);
    for (std::size_t bc = 0; bc < tc; ++bc) {
      const std::size_t c0 = bc * block_size;
      const std::size_t c1 = std::min(weights.cols(), c0 + block_size);
      double acc = 0.0;
      for (std::size_t r = r0; r < r1; ++r) {
        for (std::size_t c = c0; c < c1; ++c) acc += weights(r, c) * weights(r, c);
      }
      norms(br, bc) = std::sqrt(acc);
    }
  }
  return norms;
}

SparsityMask block_sparsify(const MatrixD& weights,
                            const BlockSparsifyOptions& options) {
  ODONN_CHECK(options.ratio >= 0.0 && options.ratio <= 1.0,
              "block_sparsify: ratio must be in [0, 1]");
  const MatrixD norms = block_l2_norms(weights, options.block_size);
  const std::size_t num_blocks = norms.size();
  const std::size_t to_zero = static_cast<std::size_t>(
      std::llround(options.ratio * static_cast<double>(num_blocks)));

  SparsityMask mask = full_mask(weights.rows(), weights.cols());
  if (to_zero == 0) return mask;

  std::vector<std::size_t> order(num_blocks);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return norms[a] < norms[b];
                   });
  for (std::size_t i = 0; i < to_zero; ++i) {
    const std::size_t idx = order[i];
    zero_block(mask, options.block_size, idx / norms.cols(),
               idx % norms.cols());
  }
  return mask;
}

SparsityMask block_sparsify_threshold(const MatrixD& weights,
                                      std::size_t block_size,
                                      double threshold) {
  const MatrixD norms = block_l2_norms(weights, block_size);
  SparsityMask mask = full_mask(weights.rows(), weights.cols());
  for (std::size_t br = 0; br < norms.rows(); ++br) {
    for (std::size_t bc = 0; bc < norms.cols(); ++bc) {
      if (norms(br, bc) < threshold) zero_block(mask, block_size, br, bc);
    }
  }
  return mask;
}

SparsityMask block_mask_from_selection(
    std::size_t rows, std::size_t cols, std::size_t block_size,
    const std::vector<std::pair<std::size_t, std::size_t>>& zero_blocks) {
  ODONN_CHECK(block_size >= 1, "block_mask_from_selection: bad block size");
  SparsityMask mask = full_mask(rows, cols);
  const std::size_t tr = (rows + block_size - 1) / block_size;
  const std::size_t tc = (cols + block_size - 1) / block_size;
  for (const auto& [br, bc] : zero_blocks) {
    ODONN_CHECK_SHAPE(br < tr && bc < tc,
                      "block_mask_from_selection: block out of range");
    zero_block(mask, block_size, br, bc);
  }
  return mask;
}

}  // namespace odonn::sparsify

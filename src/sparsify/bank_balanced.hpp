// Bank-balanced sparsification (paper §III-C1, Fig. 3c; Cao et al. FPGA'19):
// each row is split into equal-sized banks and the same number of smallest-
// magnitude elements is zeroed inside every bank, so sparsity is identical
// across banks (good for hardware scheduling, poor for roughness).
#pragma once

#include <cstddef>

#include "sparsify/mask.hpp"
#include "tensor/matrix.hpp"

namespace odonn::sparsify {

struct BankBalancedOptions {
  std::size_t bank_size = 3;  ///< elements per bank along a row
  double ratio = 0.1;         ///< fraction zeroed within every bank
};

/// Requires bank_size to divide the column count (banks are hardware lanes;
/// ragged banks would break the balance property). Throws ShapeError.
SparsityMask bank_balanced_sparsify(const MatrixD& weights,
                                    const BankBalancedOptions& options);

}  // namespace odonn::sparsify

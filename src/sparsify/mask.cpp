#include "sparsify/mask.hpp"

#include "common/error.hpp"

namespace odonn::sparsify {

double sparsity_ratio(const SparsityMask& mask) {
  ODONN_CHECK(!mask.empty(), "sparsity_ratio: empty mask");
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i] == 0) ++zeros;
  }
  return static_cast<double>(zeros) / static_cast<double>(mask.size());
}

std::size_t kept_count(const SparsityMask& mask) {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i] != 0) ++kept;
  }
  return kept;
}

void apply_mask(MatrixD& weights, const SparsityMask& mask) {
  ODONN_CHECK_SHAPE(weights.rows() == mask.rows() &&
                        weights.cols() == mask.cols(),
                    "apply_mask: shape mismatch");
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (mask[i] == 0) weights[i] = 0.0;
  }
}

SparsityMask full_mask(std::size_t rows, std::size_t cols) {
  return SparsityMask(rows, cols, 1);
}

}  // namespace odonn::sparsify

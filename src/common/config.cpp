#include "common/config.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "common/error.hpp"

namespace odonn {

namespace {

std::string to_env_name(const std::string& key) {
  std::string name = "ODONN_";
  for (char c : key) {
    if (c == '.' || c == '-') {
      name.push_back('_');
    } else {
      name.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    }
  }
  return name;
}

bool parse_bool(const std::string& raw, const std::string& key) {
  std::string low(raw.size(), '\0');
  std::transform(raw.begin(), raw.end(), low.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (low == "1" || low == "true" || low == "yes" || low == "on") return true;
  if (low == "0" || low == "false" || low == "no" || low == "off") return false;
  throw ConfigError("key '" + key + "': cannot parse '" + raw + "' as bool");
}

std::string join_with_commas(const std::vector<std::string>& items) {
  std::string out;
  for (const auto& item : items) {
    if (!out.empty()) out += ", ";
    out += item;
  }
  return out;
}

}  // namespace

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= csv.size()) {
    const std::size_t end = std::min(csv.find(',', begin), csv.size());
    out.push_back(csv.substr(begin, end - begin));
    begin = end + 1;
  }
  return out;
}

Config Config::from_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) == 0) token = token.substr(2);
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw ConfigError("expected key=value argument, got '" +
                        std::string(argv[i]) + "'");
    }
    cfg.set(token.substr(0, eq), token.substr(eq + 1));
  }
  return cfg;
}

std::optional<std::string> Config::env(const std::string& key) {
  if (const char* value = std::getenv(to_env_name(key).c_str())) {
    return std::string(value);
  }
  return std::nullopt;
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

bool Config::has(const std::string& key) const {
  return values_.count(key) > 0 || env(key).has_value();
}

std::optional<std::string> Config::lookup(const std::string& key) const {
  if (auto it = values_.find(key); it != values_.end()) return it->second;
  return env(key);
}

std::string Config::get_string(const std::string& key,
                               const std::string& dflt) const {
  return lookup(key).value_or(dflt);
}

long Config::get_int(const std::string& key, long dflt) const {
  const auto raw = lookup(key);
  if (!raw) return dflt;
  char* end = nullptr;
  const long value = std::strtol(raw->c_str(), &end, 10);
  if (end == raw->c_str() || *end != '\0') {
    throw ConfigError("key '" + key + "': cannot parse '" + *raw + "' as int");
  }
  return value;
}

double Config::get_double(const std::string& key, double dflt) const {
  const auto raw = lookup(key);
  if (!raw) return dflt;
  char* end = nullptr;
  const double value = std::strtod(raw->c_str(), &end);
  if (end == raw->c_str() || *end != '\0') {
    throw ConfigError("key '" + key + "': cannot parse '" + *raw + "' as double");
  }
  return value;
}

bool Config::get_bool(const std::string& key, bool dflt) const {
  const auto raw = lookup(key);
  if (!raw) return dflt;
  return parse_bool(*raw, key);
}

std::string Config::get_enum(const std::string& key, const std::string& dflt,
                             std::initializer_list<const char*> allowed) const {
  const std::string value = get_string(key, dflt);
  for (const char* candidate : allowed) {
    if (value == candidate) return value;
  }
  throw ConfigError(
      "key '" + key + "': invalid value '" + value + "' (expected one of: " +
      join_with_commas({allowed.begin(), allowed.end()}) + ")");
}

void Config::strict(const std::vector<std::string>& allowed) const {
  for (const auto& [key, _] : values_) {
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      throw ConfigError("unrecognized key '" + key + "' (accepted keys: " +
                        join_with_commas(allowed) + ")");
    }
  }
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

}  // namespace odonn

// Deterministic random-number generation for odonn.
//
// All stochastic components (weight init, data synthesis, Gumbel noise, batch
// shuffling) draw from SplitMix64-seeded xoshiro256++ streams so every
// experiment is reproducible from a single integer seed. std::mt19937 is
// deliberately avoided: its seeding is easy to get wrong and it is slow for
// the bulk sampling done by the synthetic data generators.
#pragma once

#include <array>
#include <cstdint>

namespace odonn {

/// SplitMix64: used to expand a user seed into xoshiro state. Also a decent
/// standalone generator for hashing-style uses.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ 1.0 — fast, high-quality, 2^256-1 period.
class Rng {
 public:
  /// Seeds the four 64-bit words via SplitMix64 per the reference recipe.
  explicit Rng(std::uint64_t seed = 0x0ddba11ULL);

  /// Uniform 64-bit integer.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box–Muller (cached second variate). With the
  /// antithetic flag set, returns the NEGATED variate of the plain stream.
  double normal();

  /// Normal with given mean / stddev (antithetic mirrors about the mean).
  double normal(double mean, double stddev);

  /// Antithetic mode: every normal draw is mirrored (z -> -z) while the
  /// underlying uniform stream advances identically, so an antithetic Rng
  /// seeded like a plain one consumes the exact same u64 sequence and
  /// yields the exact sign-flipped Gaussian variates. This is the variance
  /// -reduction primitive behind src/fab's paired realization streams;
  /// uniform()/gumbel()/bernoulli() are deliberately unaffected.
  void set_antithetic(bool on) { antithetic_ = on; }
  bool antithetic() const { return antithetic_; }

  /// Standard Gumbel(0,1): -log(-log(U)), U ~ Uniform(0,1), clamped away
  /// from 0 and 1 so the result is always finite.
  double gumbel();

  /// Bernoulli(p).
  bool bernoulli(double p);

  /// Fisher–Yates shuffle of indices [0, n) into `out` (resized).
  template <typename Container>
  void shuffle(Container& items) {
    if (items.size() < 2) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i + 1));
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  /// Derives an independent child stream; used to hand one RNG per thread or
  /// per sample without correlation between streams.
  Rng split();

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
  bool antithetic_ = false;
};

}  // namespace odonn

// Clang Thread Safety Analysis annotations + the annotated lock types the
// analysis needs to see.
//
// The repo's headline guarantee — bitwise-identical digests across
// ODONN_THREADS, jobs=, replica counts and obs on/off — rests on a handful
// of mutex-protected structures (thread pool, serve engine/cluster, obs
// registry/trace, pipeline executor, fab encode cache, fft plan cache,
// log emitter). These macros let clang check the locking discipline at
// compile time (-Wthread-safety -Werror=thread-safety, enabled
// automatically for clang builds in CMakeLists.txt); on every other
// compiler they expand to NOTHING, so gcc builds are byte-identical to the
// unannotated code (tests/annotations_test.cpp proves the no-op expansion).
//
// libstdc++'s std::mutex carries no capability attributes, so the analysis
// cannot track std::lock_guard / std::condition_variable. Annotated
// wrappers live here instead:
//   * odonn::Mutex      — std::mutex annotated as a capability
//   * odonn::MutexLock  — scoped acquire/release (std::lock_guard shape)
//   * odonn::CondVar    — condition_variable_any over Mutex; wait()
//                         declares ODONN_REQUIRES(mutex) so the analysis
//                         knows the lock is held across the wait
// Concurrent code in src/ uses these instead of the std types; the
// wrappers add no state and inline away to the std calls.
//
// Annotation cheat sheet (all no-ops off clang):
//   ODONN_GUARDED_BY(mu)   member may only be read/written with mu held
//   ODONN_PT_GUARDED_BY(mu) pointee of a pointer member guarded by mu
//   ODONN_REQUIRES(mu)     function may only be called with mu held
//   ODONN_ACQUIRE(mu)      function acquires mu and does not release it
//   ODONN_RELEASE(mu)      function releases mu
//   ODONN_EXCLUDES(mu)     function must NOT be called with mu held
//                          (documents public entry points; catches
//                          self-deadlock)
//   ODONN_NO_THREAD_SAFETY_ANALYSIS  opt a function out (needs a comment
//                          saying why at every use site)
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define ODONN_THREAD_ANNOTATIONS_ENABLED 1
#define ODONN_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define ODONN_THREAD_ANNOTATIONS_ENABLED 0
#define ODONN_THREAD_ANNOTATION_ATTRIBUTE(x)
#endif

#define ODONN_CAPABILITY(x) ODONN_THREAD_ANNOTATION_ATTRIBUTE(capability(x))
#define ODONN_SCOPED_CAPABILITY \
  ODONN_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)
#define ODONN_GUARDED_BY(x) ODONN_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))
#define ODONN_PT_GUARDED_BY(x) \
  ODONN_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))
#define ODONN_REQUIRES(...) \
  ODONN_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define ODONN_ACQUIRE(...) \
  ODONN_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define ODONN_RELEASE(...) \
  ODONN_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define ODONN_TRY_ACQUIRE(...) \
  ODONN_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#define ODONN_EXCLUDES(...) \
  ODONN_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))
#define ODONN_RETURN_CAPABILITY(x) \
  ODONN_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))
#define ODONN_NO_THREAD_SAFETY_ANALYSIS \
  ODONN_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

namespace odonn {

/// std::mutex annotated as a thread-safety capability. Same size and
/// semantics as std::mutex; exists only so clang can track which functions
/// hold it.
class ODONN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ODONN_ACQUIRE() { m_.lock(); }
  void unlock() ODONN_RELEASE() { m_.unlock(); }
  bool try_lock() ODONN_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// std::lock_guard over Mutex, annotated as a scoped capability so the
/// analysis credits the lock for the lifetime of the guard.
class ODONN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ODONN_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() ODONN_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over the annotated Mutex (condition_variable_any
/// accepts any BasicLockable). wait() declares ODONN_REQUIRES(mu): callers
/// must hold the lock, and the analysis treats it as held across the wait —
/// matching the actual unlock/relock the CV performs internally.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) ODONN_REQUIRES(mu) { cv_.wait(mu); }

  template <typename Predicate>
  void wait(Mutex& mu, Predicate pred) ODONN_REQUIRES(mu) {
    cv_.wait(mu, pred);
  }

  template <typename Rep, typename Period, typename Predicate>
  bool wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& dur,
                Predicate pred) ODONN_REQUIRES(mu) {
    return cv_.wait_for(mu, dur, pred);
  }

  template <typename Clock, typename Duration, typename Predicate>
  bool wait_until(Mutex& mu,
                  const std::chrono::time_point<Clock, Duration>& deadline,
                  Predicate pred) ODONN_REQUIRES(mu) {
    return cv_.wait_until(mu, deadline, pred);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace odonn

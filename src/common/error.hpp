// Typed error hierarchy and checked-precondition macros used across odonn.
//
// All library errors derive from odonn::Error so callers can catch the whole
// family; subclasses distinguish configuration, shape, I/O and numerical
// failures for targeted handling in tests and tools.
#pragma once

#include <stdexcept>
#include <string>

namespace odonn {

/// Root of the odonn exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Invalid user-supplied configuration (bad option value, missing key, ...).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error("config: " + what) {}
};

/// Dimension / shape mismatch between tensors, fields or masks.
class ShapeError : public Error {
 public:
  explicit ShapeError(const std::string& what) : Error("shape: " + what) {}
};

/// File-format or filesystem failure (IDX parsing, image writing, ...).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error("io: " + what) {}
};

/// Numerical breakdown (non-finite loss, divergent optimizer, ...).
class NumericsError : public Error {
 public:
  explicit NumericsError(const std::string& what) : Error("numerics: " + what) {}
};

/// Admission-control rejection: the serving queue is at its depth bound and
/// the backpressure policy is reject. Retryable by the caller — the typed
/// class lets load generators and clients distinguish overload from real
/// failures.
class OverloadError : public Error {
 public:
  explicit OverloadError(const std::string& what)
      : Error("overload: " + what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& msg);
}  // namespace detail

}  // namespace odonn

/// Precondition check that throws odonn::Error with location info.
#define ODONN_CHECK(cond, msg)                                               \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::odonn::detail::throw_check_failure("check", #cond, __FILE__,         \
                                           __LINE__, (msg));                 \
    }                                                                        \
  } while (false)

/// Shape-specific variant of ODONN_CHECK (throws odonn::ShapeError).
#define ODONN_CHECK_SHAPE(cond, msg)                                         \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::odonn::detail::throw_check_failure("shape", #cond, __FILE__,         \
                                           __LINE__, (msg));                 \
    }                                                                        \
  } while (false)

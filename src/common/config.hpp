// Key=value configuration used by examples and bench binaries.
//
// Sources, in increasing precedence: built-in defaults, ODONN_* environment
// variables, command-line "key=value" arguments. Typed getters throw
// ConfigError on malformed values so bad invocations fail fast.
#pragma once

#include <initializer_list>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace odonn {

/// Splits a comma-separated value into tokens (no trimming; empty tokens
/// preserved so callers can reject them). "" yields one empty token —
/// list-valued config keys share this one splitter.
std::vector<std::string> split_csv(const std::string& csv);

class Config {
 public:
  Config() = default;

  /// Parses argv entries of the form key=value (a leading "--" is allowed).
  /// Non key=value tokens throw ConfigError.
  static Config from_args(int argc, const char* const* argv);

  /// Reads ODONN_<KEY> (upper-cased, '.'->'_') from the environment.
  static std::optional<std::string> env(const std::string& key);

  void set(const std::string& key, const std::string& value);
  bool has(const std::string& key) const;

  /// Typed getters with defaults; environment overrides the default, a
  /// command-line value overrides both.
  std::string get_string(const std::string& key, const std::string& dflt) const;
  long get_int(const std::string& key, long dflt) const;
  double get_double(const std::string& key, double dflt) const;
  bool get_bool(const std::string& key, bool dflt) const;

  /// String getter restricted to a closed value set: the stored (or
  /// default) value must be one of `allowed`, otherwise ConfigError lists
  /// the alternatives. Matching is exact (values are case-sensitive).
  std::string get_enum(const std::string& key, const std::string& dflt,
                       std::initializer_list<const char*> allowed) const;

  /// Rejects unrecognized keys: every explicitly-set key (command line /
  /// set()) must appear in `allowed`, otherwise ConfigError names the
  /// offending key and the accepted set — so a typo like
  /// `epochs_dens=10` fails fast instead of being silently ignored.
  /// Environment variables are not checked (unrelated ODONN_* vars may
  /// exist legitimately).
  void strict(const std::vector<std::string>& allowed) const;

  /// Keys present on the command line (for echoing configs in bench logs).
  std::vector<std::string> keys() const;

 private:
  std::optional<std::string> lookup(const std::string& key) const;

  std::map<std::string, std::string> values_;
};

}  // namespace odonn

// Key=value configuration used by examples and bench binaries.
//
// Sources, in increasing precedence: built-in defaults, ODONN_* environment
// variables, command-line "key=value" arguments. Typed getters throw
// ConfigError on malformed values so bad invocations fail fast.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace odonn {

class Config {
 public:
  Config() = default;

  /// Parses argv entries of the form key=value (a leading "--" is allowed).
  /// Non key=value tokens throw ConfigError.
  static Config from_args(int argc, const char* const* argv);

  /// Reads ODONN_<KEY> (upper-cased, '.'->'_') from the environment.
  static std::optional<std::string> env(const std::string& key);

  void set(const std::string& key, const std::string& value);
  bool has(const std::string& key) const;

  /// Typed getters with defaults; environment overrides the default, a
  /// command-line value overrides both.
  std::string get_string(const std::string& key, const std::string& dflt) const;
  long get_int(const std::string& key, long dflt) const;
  double get_double(const std::string& key, double dflt) const;
  bool get_bool(const std::string& key, bool dflt) const;

  /// Keys present on the command line (for echoing configs in bench logs).
  std::vector<std::string> keys() const;

 private:
  std::optional<std::string> lookup(const std::string& key) const;

  std::map<std::string, std::string> values_;
};

}  // namespace odonn

// Minimal leveled logger. Intentionally tiny: benches and examples use it for
// progress lines; library code logs only at Debug level so default runs stay
// quiet. Controlled by ODONN_LOG_LEVEL (error|warn|info|debug) or set_level().
#pragma once

#include <sstream>
#include <string>

namespace odonn::log {

enum class Level : int { Error = 0, Warn = 1, Info = 2, Debug = 3 };

/// Global log threshold; messages above it are dropped.
Level level();
void set_level(Level lvl);

/// Parse "error"/"warn"/"info"/"debug" (case-insensitive); throws ConfigError.
Level parse_level(const std::string& name);

namespace detail {
void emit(Level lvl, const std::string& message);
}

/// Stream-style log line: LOG(Info) << "epoch " << e;
class Line {
 public:
  explicit Line(Level lvl) : lvl_(lvl) {}
  ~Line() { detail::emit(lvl_, os_.str()); }
  Line(const Line&) = delete;
  Line& operator=(const Line&) = delete;

  template <typename T>
  Line& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  Level lvl_;
  std::ostringstream os_;
};

inline Line error() { return Line(Level::Error); }
inline Line warn() { return Line(Level::Warn); }
inline Line info() { return Line(Level::Info); }
inline Line debug() { return Line(Level::Debug); }

}  // namespace odonn::log

// Minimal leveled logger. Intentionally tiny: benches and examples use it for
// progress lines; library code logs only at Debug level so default runs stay
// quiet. Controlled by ODONN_LOG_LEVEL (error|warn|info|debug) or set_level().
//
// Emission is line-atomic: the whole line (prefix + message + newline) is
// formatted into one buffer and written with a single mutexed fwrite, so
// lines from concurrent table jobs never interleave mid-line. Set
// ODONN_LOG_TIMESTAMPS=1 (or set_timestamps(true)) to prefix each line
// with an ISO-8601 UTC timestamp and a dense per-thread tag.
#pragma once

#include <sstream>
#include <string>

namespace odonn::log {

enum class Level : int { Error = 0, Warn = 1, Info = 2, Debug = 3 };

/// Global log threshold; messages above it are dropped.
Level level();
void set_level(Level lvl);

/// Parse "error"/"warn"/"info"/"debug" (case-insensitive); throws ConfigError.
Level parse_level(const std::string& name);

/// Prefix lines with "2026-01-31T12:34:56.789Z t<thread>"; defaults to the
/// ODONN_LOG_TIMESTAMPS environment variable ("1" enables).
void set_timestamps(bool enabled);

namespace detail {
void emit(Level lvl, const std::string& message);
}

/// Stream-style log line: LOG(Info) << "epoch " << e;
class Line {
 public:
  explicit Line(Level lvl) : lvl_(lvl) {}
  ~Line() { detail::emit(lvl_, os_.str()); }
  Line(const Line&) = delete;
  Line& operator=(const Line&) = delete;

  template <typename T>
  Line& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  Level lvl_;
  std::ostringstream os_;
};

inline Line error() { return Line(Level::Error); }
inline Line warn() { return Line(Level::Warn); }
inline Line info() { return Line(Level::Info); }
inline Line debug() { return Line(Level::Debug); }

}  // namespace odonn::log

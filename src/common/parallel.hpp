// Shared thread pool and deterministic parallel loops.
//
// odonn parallelizes at two levels: across samples in a mini-batch (training)
// and across rows of large transforms (FFT columns, kernels). Both go through
// parallel_for, which chunks an index range over a process-wide pool.
// Reductions use per-chunk partials combined in chunk order so results are
// bitwise independent of thread scheduling.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace odonn {

/// Number of worker threads in the shared pool (>= 1). Honors
/// ODONN_THREADS if set, else hardware_concurrency().
std::size_t thread_count();

/// Overrides the pool size; must be called before the first parallel_for
/// (later calls throw, the pool is fixed once built).
void set_thread_count(std::size_t n);

/// Runs fn(i) for i in [begin, end) across the pool. `grain` is the minimum
/// number of iterations per task; small ranges run inline on the caller.
/// fn must not throw across threads (exceptions are captured and rethrown
/// on the caller after the loop completes, first-chunk-first).
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 1);

/// Chunked variant: fn(chunk_begin, chunk_end) — lets the body hoist
/// per-chunk setup (scratch buffers, RNG streams).
void parallel_for_chunks(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& fn,
                         std::size_t grain = 1);

/// Deterministic sum-reduction: partials are produced per chunk and summed
/// in ascending chunk order regardless of completion order.
double parallel_sum(std::size_t begin, std::size_t end,
                    const std::function<double(std::size_t)>& fn,
                    std::size_t grain = 64);

}  // namespace odonn

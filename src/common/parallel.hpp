// Shared thread pool and deterministic parallel loops.
//
// odonn parallelizes at three levels: across independent pipelines of a
// table (parallel_tasks), across samples in a mini-batch (training) and
// across rows of large transforms (FFT columns, kernels). Everything runs
// on one process-wide pool. The pool is NESTING-AWARE:
//   * a task started by parallel_tasks carries a thread BUDGET — its inner
//     parallel_for calls fan out to the shared pool within that budget
//     instead of serializing (leaf chunks run with budget 1, so doubly
//     nested loops still run inline);
//   * every submitter HELPS while waiting: instead of idling in the latch
//     it drains queued work at its own nesting depth or deeper, which both
//     keeps the caller busy and makes nested waits deadlock-free.
// Reductions use fixed-slice partials combined in slice order, so results
// are bitwise independent of thread scheduling, of ODONN_THREADS and of
// how work was nested.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace odonn {

/// Number of worker threads in the shared pool (>= 1). Honors
/// ODONN_THREADS if set, else hardware_concurrency().
std::size_t thread_count();

/// Overrides the pool size. Must be called before the pool is built (it is
/// built lazily by the first parallel call that fans out). Once the pool
/// exists, a call with the CURRENT size is a no-op; a conflicting size
/// throws a catchable ConfigError naming both counts.
void set_thread_count(std::size_t n);

/// Runs fn(i) for i in [begin, end) across the pool. `grain` is the minimum
/// number of iterations per task; small ranges run inline on the caller.
/// fn must not throw across threads (exceptions are captured and rethrown
/// on the caller after the loop completes).
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 1);

/// Chunked variant: fn(chunk_begin, chunk_end) — lets the body hoist
/// per-chunk setup (scratch buffers, RNG streams).
void parallel_for_chunks(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& fn,
                         std::size_t grain = 1);

/// Upper bound on the number of partial sums parallel_sum materializes.
/// The slice layout is a pure function of (range length, grain, this cap)
/// — never of the worker count — so the summation tree, and therefore the
/// result bits, are identical for every ODONN_THREADS and nesting context.
inline constexpr std::size_t kParallelSumChunkCap = 1024;

/// Deterministic sum-reduction: fixed-layout slices are summed internally
/// left-to-right and combined in ascending slice order regardless of
/// completion order. Slices cover `grain` indices each until the
/// kParallelSumChunkCap cap binds, after which they grow uniformly so the
/// partial buffer stays O(cap) instead of O(total/grain).
double parallel_sum(std::size_t begin, std::size_t end,
                    const std::function<double(std::size_t)>& fn,
                    std::size_t grain = 64);

/// Runs every element of `tasks` concurrently on the shared pool, at most
/// `max_concurrent` (0 = all) in flight at once. Each task executes with
/// an inner parallelism budget of `inner_budget` threads (0 = the current
/// budget split evenly across the concurrent lanes): nested parallel_for
/// calls inside a task fan out to the shared pool within that budget. The
/// caller helps drain pool work while waiting.
///
/// With one lane (or a single-thread budget) the tasks run inline on the
/// caller in index order — the sequential reference path. On failure the
/// lowest-index captured exception is rethrown after all in-flight tasks
/// finish; tasks not yet started by then are abandoned.
void parallel_tasks(std::vector<std::function<void()>> tasks,
                    std::size_t max_concurrent = 0,
                    std::size_t inner_budget = 0);

/// Pins the CALLING thread's inner parallelism budget for the current
/// scope: parallel_for/parallel_sum/parallel_tasks issued from this thread
/// fan out to at most `budget` pool workers (1 = run inline, 0 = restore
/// the unrestricted default). Restores the previous budget on destruction.
/// This is how long-lived threads that are not pool tasks — e.g. a serve
/// replica's drain thread — claim a fixed share of the shared pool without
/// wrapping every call in parallel_tasks. Results are unaffected (all
/// deterministic reductions use fixed-slice layouts); only scheduling is.
class ScopedThreadBudget {
 public:
  explicit ScopedThreadBudget(std::size_t budget);
  ~ScopedThreadBudget();
  ScopedThreadBudget(const ScopedThreadBudget&) = delete;
  ScopedThreadBudget& operator=(const ScopedThreadBudget&) = delete;

 private:
  std::size_t saved_;
};

}  // namespace odonn

#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace odonn {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  ODONN_CHECK(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  ODONN_CHECK(n > 0, "uniform_index requires n > 0");
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = n * (~0ULL / n);
  std::uint64_t x = next_u64();
  while (x >= limit) x = next_u64();
  return x % n;
}

double Rng::normal() {
  // The cache stores the PLAIN variate; the antithetic sign is applied at
  // return so toggling the flag between draws still mirrors exactly.
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return antithetic_ ? -cached_normal_ : cached_normal_;
  }
  // Box–Muller; u1 kept away from zero so log() is finite.
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  const double value = radius * std::cos(angle);
  return antithetic_ ? -value : value;
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::gumbel() {
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  if (u > 1.0 - 1e-16) u = 1.0 - 1e-16;
  return -std::log(-std::log(u));
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::split() {
  Rng child(0);
  SplitMix64 sm(next_u64() ^ 0xa5a5a5a5a5a5a5a5ULL);
  for (auto& word : child.s_) word = sm.next();
  return child;
}

}  // namespace odonn

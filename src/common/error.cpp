#include "common/error.hpp"

#include <cstring>
#include <sstream>

namespace odonn::detail {

[[noreturn]] void throw_check_failure(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& msg) {
  // Strip leading directories so messages stay short and stable in tests.
  const char* base = std::strrchr(file, '/');
  base = (base != nullptr) ? base + 1 : file;

  std::ostringstream os;
  os << msg << " [" << expr << " at " << base << ':' << line << ']';
  if (std::strcmp(kind, "shape") == 0) {
    throw ShapeError(os.str());
  }
  throw Error(os.str());
}

}  // namespace odonn::detail

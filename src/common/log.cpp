#include "common/log.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

#include "common/error.hpp"
#include "common/thread_annotations.hpp"
#include "obs/trace.hpp"

namespace odonn::log {

namespace {

std::atomic<int> g_level{-1};  // -1 = uninitialized, read env on first use
std::atomic<int> g_timestamps{-1};  // -1 = read ODONN_LOG_TIMESTAMPS first
/// Serializes line emission only (stderr is the protected resource; the
/// line buffer is function-local, so nothing is GUARDED_BY this mutex).
Mutex g_emit_mutex;

bool timestamps_enabled() {
  int state = g_timestamps.load(std::memory_order_relaxed);
  if (state < 0) {
    const char* env = std::getenv("ODONN_LOG_TIMESTAMPS");
    state = (env != nullptr && env[0] == '1') ? 1 : 0;
    g_timestamps.store(state, std::memory_order_relaxed);
  }
  return state != 0;
}

/// "2026-01-31T12:34:56.789Z" — UTC with millisecond resolution.
std::string iso8601_now() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char buffer[40];
  const std::size_t len =
      std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%S", &utc);
  std::snprintf(buffer + len, sizeof(buffer) - len, ".%03dZ",
                static_cast<int>(millis));
  return buffer;
}

int init_from_env() {
  const char* env = std::getenv("ODONN_LOG_LEVEL");
  if (env == nullptr) return static_cast<int>(Level::Info);
  try {
    return static_cast<int>(parse_level(env));
  } catch (const Error&) {
    return static_cast<int>(Level::Info);
  }
}

const char* tag(Level lvl) {
  switch (lvl) {
    case Level::Error: return "E";
    case Level::Warn:  return "W";
    case Level::Info:  return "I";
    case Level::Debug: return "D";
  }
  return "?";
}

}  // namespace

Level level() {
  int lvl = g_level.load(std::memory_order_relaxed);
  if (lvl < 0) {
    lvl = init_from_env();
    g_level.store(lvl, std::memory_order_relaxed);
  }
  return static_cast<Level>(lvl);
}

void set_level(Level lvl) {
  g_level.store(static_cast<int>(lvl), std::memory_order_relaxed);
}

Level parse_level(const std::string& name) {
  std::string low(name.size(), '\0');
  std::transform(name.begin(), name.end(), low.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (low == "error") return Level::Error;
  if (low == "warn" || low == "warning") return Level::Warn;
  if (low == "info") return Level::Info;
  if (low == "debug") return Level::Debug;
  throw ConfigError("unknown log level '" + name + "'");
}

void set_timestamps(bool enabled) {
  g_timestamps.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

namespace detail {

void emit(Level lvl, const std::string& message) {
  if (static_cast<int>(lvl) > static_cast<int>(level())) return;
  // Format the entire line first, then write it with ONE call under the
  // mutex: concurrent table jobs never tear each other's lines, even
  // through stdio buffering boundaries.
  std::string line;
  line.reserve(message.size() + 48);
  line += "[odonn ";
  if (timestamps_enabled()) {
    line += iso8601_now();
    line += " t";
    line += std::to_string(obs::thread_tag());
    line += ' ';
  }
  line += tag(lvl);
  line += "] ";
  line += message;
  line += '\n';
  MutexLock lock(g_emit_mutex);
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace detail

}  // namespace odonn::log

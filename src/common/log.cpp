#include "common/log.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/error.hpp"

namespace odonn::log {

namespace {

std::atomic<int> g_level{-1};  // -1 = uninitialized, read env on first use
std::mutex g_emit_mutex;

int init_from_env() {
  const char* env = std::getenv("ODONN_LOG_LEVEL");
  if (env == nullptr) return static_cast<int>(Level::Info);
  try {
    return static_cast<int>(parse_level(env));
  } catch (const Error&) {
    return static_cast<int>(Level::Info);
  }
}

const char* tag(Level lvl) {
  switch (lvl) {
    case Level::Error: return "E";
    case Level::Warn:  return "W";
    case Level::Info:  return "I";
    case Level::Debug: return "D";
  }
  return "?";
}

}  // namespace

Level level() {
  int lvl = g_level.load(std::memory_order_relaxed);
  if (lvl < 0) {
    lvl = init_from_env();
    g_level.store(lvl, std::memory_order_relaxed);
  }
  return static_cast<Level>(lvl);
}

void set_level(Level lvl) {
  g_level.store(static_cast<int>(lvl), std::memory_order_relaxed);
}

Level parse_level(const std::string& name) {
  std::string low(name.size(), '\0');
  std::transform(name.begin(), name.end(), low.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (low == "error") return Level::Error;
  if (low == "warn" || low == "warning") return Level::Warn;
  if (low == "info") return Level::Info;
  if (low == "debug") return Level::Debug;
  throw ConfigError("unknown log level '" + name + "'");
}

namespace detail {

void emit(Level lvl, const std::string& message) {
  if (static_cast<int>(lvl) > static_cast<int>(level())) return;
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[odonn %s] %s\n", tag(lvl), message.c_str());
}

}  // namespace detail

}  // namespace odonn::log

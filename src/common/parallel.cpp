#include "common/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <queue>
#include <thread>

#include "common/error.hpp"

namespace odonn {

namespace {

/// Simple work-queue thread pool. Built lazily on first use; lives for the
/// process. Tasks are plain std::function<void()>; submitters wait on a
/// per-batch countdown latch.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t n) {
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  std::size_t size() const { return workers_.size(); }

  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      tasks_.push(std::move(task));
    }
    cv_.notify_one();
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
        if (stopping_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      task();
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

std::size_t g_requested_threads = 0;  // 0 = auto
std::atomic<bool> g_pool_built{false};
std::mutex g_pool_mutex;

std::size_t default_thread_count() {
  if (const char* env = std::getenv("ODONN_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n >= 1) return static_cast<std::size_t>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool& pool() {
  static ThreadPool* instance = [] {
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    const std::size_t n =
        g_requested_threads > 0 ? g_requested_threads : default_thread_count();
    g_pool_built.store(true);
    return new ThreadPool(n);
  }();
  return *instance;
}

/// Guards against nested parallel_for deadlocking by running nested calls
/// inline on the caller thread.
thread_local bool t_inside_parallel = false;

struct Latch {
  std::mutex m;
  std::condition_variable cv;
  std::size_t remaining;
  std::exception_ptr first_error;

  explicit Latch(std::size_t n) : remaining(n) {}

  void count_down(std::exception_ptr err) {
    std::lock_guard<std::mutex> lock(m);
    if (err && !first_error) first_error = err;
    if (--remaining == 0) cv.notify_all();
  }

  void wait() {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [this] { return remaining == 0; });
    if (first_error) std::rethrow_exception(first_error);
  }
};

}  // namespace

std::size_t thread_count() {
  if (g_pool_built.load()) return pool().size();
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  return g_requested_threads > 0 ? g_requested_threads : default_thread_count();
}

void set_thread_count(std::size_t n) {
  ODONN_CHECK(n >= 1, "thread count must be >= 1");
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  ODONN_CHECK(!g_pool_built.load(),
              "set_thread_count must be called before first parallel_for");
  g_requested_threads = n;
}

void parallel_for_chunks(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& fn,
                         std::size_t grain) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const std::size_t total = end - begin;
  const std::size_t workers = thread_count();

  if (t_inside_parallel || workers <= 1 || total <= grain) {
    fn(begin, end);
    return;
  }

  // Cap chunk count at ~4x workers for load balance without queue churn.
  std::size_t chunks = std::min(total / grain + (total % grain != 0 ? 1 : 0),
                                workers * 4);
  if (chunks <= 1) {
    fn(begin, end);
    return;
  }
  const std::size_t step = (total + chunks - 1) / chunks;
  chunks = (total + step - 1) / step;

  Latch latch(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * step;
    const std::size_t hi = std::min(end, lo + step);
    pool().submit([&fn, &latch, lo, hi] {
      t_inside_parallel = true;
      std::exception_ptr err;
      try {
        fn(lo, hi);
      } catch (...) {
        err = std::current_exception();
      }
      t_inside_parallel = false;
      latch.count_down(err);
    });
  }
  latch.wait();
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  parallel_for_chunks(
      begin, end,
      [&fn](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      },
      grain);
}

double parallel_sum(std::size_t begin, std::size_t end,
                    const std::function<double(std::size_t)>& fn,
                    std::size_t grain) {
  if (begin >= end) return 0.0;
  const std::size_t total = end - begin;
  if (grain == 0) grain = 1;
  const std::size_t chunks = (total + grain - 1) / grain;
  std::vector<double> partials(chunks, 0.0);
  parallel_for_chunks(
      0, chunks,
      [&](std::size_t clo, std::size_t chi) {
        for (std::size_t c = clo; c < chi; ++c) {
          const std::size_t lo = begin + c * grain;
          const std::size_t hi = std::min(end, lo + grain);
          double acc = 0.0;
          for (std::size_t i = lo; i < hi; ++i) acc += fn(i);
          partials[c] = acc;
        }
      },
      1);
  double total_sum = 0.0;
  for (double p : partials) total_sum += p;  // fixed order => deterministic
  return total_sum;
}

}  // namespace odonn

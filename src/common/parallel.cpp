#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/thread_annotations.hpp"
#include "obs/obs.hpp"

namespace odonn {

namespace {

/// Nesting context of the current thread. `depth` counts how many pool-task
/// levels are above this frame (0 = a plain caller thread); `budget` is how
/// many workers this context may fan out to (0 = the whole pool). Leaf
/// chunk tasks run with budget 1, so a parallel_for nested inside another
/// parallel_for's body still runs inline; parallel_tasks lanes get an
/// explicit share so a pipeline running as a task keeps parallelizing.
thread_local std::size_t t_depth = 0;
thread_local std::size_t t_budget = 0;

/// Installs a task's nesting context for its execution and restores the
/// previous one afterwards (the same thread may interleave contexts when
/// it helps drain the queue while waiting).
class ContextGuard {
 public:
  ContextGuard(std::size_t depth, std::size_t budget)
      : saved_depth_(t_depth), saved_budget_(t_budget) {
    t_depth = depth;
    t_budget = budget;
  }
  ~ContextGuard() {
    t_depth = saved_depth_;
    t_budget = saved_budget_;
  }
  ContextGuard(const ContextGuard&) = delete;
  ContextGuard& operator=(const ContextGuard&) = delete;

 private:
  std::size_t saved_depth_;
  std::size_t saved_budget_;
};

#ifndef ODONN_OBS_DISABLE
/// Per-depth queue-wait histograms (submit -> pop latency). Depths beyond
/// 4 fold into the depth4 bucket. Only sampled when obs::detail_enabled()
/// — stamping every task with a clock read is detail-level overhead.
void observe_queue_wait(std::size_t depth, double wait_us) {
  static obs::Histogram* const hists[4] = {
      &obs::MetricsRegistry::global().histogram(
          "parallel.queue_wait_us.depth1"),
      &obs::MetricsRegistry::global().histogram(
          "parallel.queue_wait_us.depth2"),
      &obs::MetricsRegistry::global().histogram(
          "parallel.queue_wait_us.depth3"),
      &obs::MetricsRegistry::global().histogram(
          "parallel.queue_wait_us.depth4"),
  };
  const std::size_t index = std::min<std::size_t>(depth, 4) - 1;
  hists[index]->observe(wait_us);
}
#endif  // ODONN_OBS_DISABLE

/// Work-queue thread pool. Built lazily on first fan-out; lives for the
/// process. Tasks carry their nesting depth so a waiting submitter only
/// helps with work at its own depth or deeper — a latch waiter never picks
/// up a shallower (potentially long-running) task that would delay its own
/// return, while the depth-0 caller may run anything.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t n) {
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      MutexLock lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  std::size_t size() const { return workers_.size(); }

  void submit(std::size_t depth, std::function<void()> fn)
      ODONN_EXCLUDES(mutex_) {
    Task task{std::move(fn), depth, {}, false};
#ifndef ODONN_OBS_DISABLE
    if (obs::detail_enabled()) {
      task.submitted = std::chrono::steady_clock::now();
      task.timed = true;
    }
#endif
    {
      MutexLock lock(mutex_);
      tasks_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

  /// Runs one queued task with depth >= min_depth on the calling thread.
  /// Returns false when no such task is queued.
  bool try_help(std::size_t min_depth) ODONN_EXCLUDES(mutex_) {
    Task task;
    {
      MutexLock lock(mutex_);
      for (auto it = tasks_.begin(); it != tasks_.end(); ++it) {
        if (it->depth >= min_depth) {
          task = std::move(*it);
          tasks_.erase(it);
          break;
        }
      }
    }
    if (!task.fn) return false;
    note_pop(task);
    task.fn();
    return true;
  }

 private:
  struct Task {
    std::function<void()> fn;
    std::size_t depth = 0;
    /// Submit timestamp for the queue-wait histograms; only stamped (and
    /// `timed` set) when obs::detail_enabled() at submit time.
    std::chrono::steady_clock::time_point submitted{};
    bool timed = false;
  };

  /// Observability bookkeeping at the moment a task leaves the queue.
  /// Reads clocks and bumps atomics only — no effect on scheduling.
  static void note_pop(const Task& task) {
    ODONN_OBS_COUNT("parallel.tasks", 1);
#ifndef ODONN_OBS_DISABLE
    if (task.timed) {
      const double wait_us =
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - task.submitted)
              .count();
      observe_queue_wait(task.depth, wait_us);
    }
#else
    (void)task;
#endif
  }

  void worker_loop() {
    for (;;) {
      Task task;
      {
        MutexLock lock(mutex_);
        cv_.wait(mutex_,
                 [this]() ODONN_REQUIRES(mutex_) {
                   return stopping_ || !tasks_.empty();
                 });
        if (stopping_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
      note_pop(task);
      task.fn();
    }
  }

  Mutex mutex_;
  CondVar cv_;
  std::deque<Task> tasks_ ODONN_GUARDED_BY(mutex_);
  std::vector<std::thread> workers_;
  bool stopping_ ODONN_GUARDED_BY(mutex_) = false;
};

Mutex g_pool_mutex;
std::size_t g_requested_threads ODONN_GUARDED_BY(g_pool_mutex) = 0;  // 0 = auto
std::atomic<bool> g_pool_built{false};

std::size_t default_thread_count() {
  if (const char* env = std::getenv("ODONN_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n >= 1) return static_cast<std::size_t>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool& pool() {
  static ThreadPool* instance = [] {
    MutexLock lock(g_pool_mutex);
    const std::size_t n =
        g_requested_threads > 0 ? g_requested_threads : default_thread_count();
    g_pool_built.store(true);
    return new ThreadPool(n);
  }();
  return *instance;
}

/// Countdown latch whose wait() HELPS: while tasks of this batch (or any
/// deeper work) sit in the queue, the waiter runs them on its own thread
/// instead of idling. Liveness: a waiter only sleeps once the queue holds
/// nothing at its depth or deeper, which means every task of its batch is
/// already executing on some thread — each will count_down and wake it.
struct Latch {
  Mutex m;
  CondVar cv;
  std::size_t remaining ODONN_GUARDED_BY(m);
  std::exception_ptr first_error ODONN_GUARDED_BY(m);

  explicit Latch(std::size_t n) : remaining(n) {}

  void count_down(std::exception_ptr err) ODONN_EXCLUDES(m) {
    MutexLock lock(m);
    if (err && !first_error) first_error = err;
    if (--remaining == 0) cv.notify_all();
  }

  void wait_helping(ThreadPool& help, std::size_t min_depth)
      ODONN_EXCLUDES(m) {
    for (;;) {
      {
        MutexLock lock(m);
        if (remaining == 0) break;
      }
      if (!help.try_help(min_depth)) {
        MutexLock lock(m);
        if (remaining == 0) break;
        // Sleep until a count_down. Work enqueued while we sleep belongs
        // to other batches; its own submitters (or free workers) run it.
        cv.wait(m);
      }
    }
    MutexLock lock(m);
    if (first_error) std::rethrow_exception(first_error);
  }
};

}  // namespace

std::size_t thread_count() {
  if (g_pool_built.load()) return pool().size();
  MutexLock lock(g_pool_mutex);
  return g_requested_threads > 0 ? g_requested_threads : default_thread_count();
}

void set_thread_count(std::size_t n) {
  if (n < 1) throw ConfigError("set_thread_count: thread count must be >= 1");
  MutexLock lock(g_pool_mutex);
  if (g_pool_built.load()) {
    // The pool cannot be resized once built (worker threads and queued
    // work reference it), but re-stating the current size is harmless —
    // common when a CLI parses threads= after some parallel warm-up ran.
    const std::size_t current = pool().size();
    if (current == n) return;
    throw ConfigError(
        "set_thread_count(" + std::to_string(n) +
        "): the shared pool is already running " + std::to_string(current) +
        " thread(s), fixed by the first parallel call; pass threads= before "
        "any parallel work or set ODONN_THREADS instead");
  }
  g_requested_threads = n;
}

void parallel_for_chunks(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& fn,
                         std::size_t grain) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const std::size_t total = end - begin;
  // Fan out within this context's budget: the whole pool at top level, an
  // explicit share inside a parallel_tasks lane, one thread inside a leaf
  // chunk (nested loops run inline).
  const std::size_t budget = t_budget == 0 ? thread_count() : t_budget;

  if (budget <= 1 || total <= grain) {
    fn(begin, end);
    return;
  }

  // Cap chunk count at ~4x the budget for load balance without queue churn.
  std::size_t chunks = std::min(total / grain + (total % grain != 0 ? 1 : 0),
                                budget * 4);
  if (chunks <= 1) {
    fn(begin, end);
    return;
  }
  const std::size_t step = (total + chunks - 1) / chunks;
  chunks = (total + step - 1) / step;

  const std::size_t depth = t_depth + 1;
  Latch latch(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * step;
    const std::size_t hi = std::min(end, lo + step);
    pool().submit(depth, [&fn, &latch, lo, hi, depth] {
      ContextGuard context(depth, /*budget=*/1);
      std::exception_ptr err;
      try {
        fn(lo, hi);
      } catch (...) {
        err = std::current_exception();
      }
      latch.count_down(err);
    });
  }
  latch.wait_helping(pool(), depth);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  parallel_for_chunks(
      begin, end,
      [&fn](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      },
      grain);
}

double parallel_sum(std::size_t begin, std::size_t end,
                    const std::function<double(std::size_t)>& fn,
                    std::size_t grain) {
  if (begin >= end) return 0.0;
  if (grain == 0) grain = 1;
  const std::size_t total = end - begin;
  // Fixed-slice layout: a pure function of (total, grain, cap) — never of
  // the worker count or nesting context — so the summation tree is bitwise
  // reproducible for any ODONN_THREADS. Slices are `grain` wide until the
  // cap binds; then they grow uniformly so the partial buffer stays O(cap)
  // instead of O(total/grain).
  std::size_t step = grain;
  if ((total + grain - 1) / grain > kParallelSumChunkCap) {
    step = (total + kParallelSumChunkCap - 1) / kParallelSumChunkCap;
  }
  const std::size_t chunks = (total + step - 1) / step;
  std::vector<double> partials(chunks, 0.0);
  parallel_for_chunks(
      0, chunks,
      [&](std::size_t clo, std::size_t chi) {
        for (std::size_t c = clo; c < chi; ++c) {
          const std::size_t lo = begin + c * step;
          const std::size_t hi = std::min(end, lo + step);
          double acc = 0.0;
          for (std::size_t i = lo; i < hi; ++i) acc += fn(i);
          partials[c] = acc;
        }
      },
      1);
  double total_sum = 0.0;
  for (double p : partials) total_sum += p;  // fixed order => deterministic
  return total_sum;
}

void parallel_tasks(std::vector<std::function<void()>> tasks,
                    std::size_t max_concurrent, std::size_t inner_budget) {
  const std::size_t n = tasks.size();
  if (n == 0) return;
  const std::size_t budget = t_budget == 0 ? thread_count() : t_budget;
  const std::size_t lanes =
      max_concurrent == 0 ? n : std::min(n, max_concurrent);

  if (lanes <= 1 || budget <= 1) {
    // Sequential reference path: index order on the caller, full current
    // budget per task, first error propagates immediately.
    for (auto& task : tasks) task();
    return;
  }

  const std::size_t share = inner_budget != 0
                                ? inner_budget
                                : std::max<std::size_t>(1, budget / lanes);
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::vector<std::exception_ptr> errors(n);
  const std::size_t depth = t_depth + 1;
  Latch latch(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    pool().submit(depth, [&tasks, &next, &failed, &errors, n, depth, share,
                          &latch] {
      ContextGuard context(depth, share);
      for (;;) {
        if (failed.load(std::memory_order_relaxed)) break;
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        try {
          tasks[i]();
        } catch (...) {
          errors[i] = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      }
      latch.count_down(nullptr);
    });
  }
  latch.wait_helping(pool(), depth);
  for (std::size_t i = 0; i < n; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
}

ScopedThreadBudget::ScopedThreadBudget(std::size_t budget)
    : saved_(t_budget) {
  t_budget = budget;
}

ScopedThreadBudget::~ScopedThreadBudget() { t_budget = saved_; }

}  // namespace odonn

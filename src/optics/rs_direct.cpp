#include "optics/rs_direct.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace odonn::optics {

Field rs_direct_propagate(const Field& input, double wavelength, double z) {
  ODONN_CHECK(wavelength > 0.0, "wavelength must be positive");
  ODONN_CHECK(z > 0.0, "rs_direct_propagate requires z > 0");
  const GridSpec& grid = input.grid();
  const std::size_t n = grid.n;
  const double pitch = grid.pitch;
  const double area = pitch * pitch;

  // Precompute the impulse response on the (2n-1)^2 lattice of displacement
  // vectors, indexed by (dr + n - 1, dc + n - 1).
  const std::size_t kdim = 2 * n - 1;
  MatrixC w(kdim, kdim);
  const std::complex<double> inv_ilambda =
      1.0 / std::complex<double>(0.0, wavelength);
  for (std::size_t i = 0; i < kdim; ++i) {
    const double dy = (static_cast<double>(i) - static_cast<double>(n - 1)) * pitch;
    for (std::size_t j = 0; j < kdim; ++j) {
      const double dx = (static_cast<double>(j) - static_cast<double>(n - 1)) * pitch;
      const double r2 = dx * dx + dy * dy + z * z;
      const double r = std::sqrt(r2);
      const double phase = 2.0 * M_PI * r / wavelength;
      const std::complex<double> osc(std::cos(phase), std::sin(phase));
      w(i, j) = (z / r2) * (1.0 / (2.0 * M_PI * r) + inv_ilambda) * osc * area;
    }
  }

  Field out(grid);
  parallel_for(0, n, [&](std::size_t r) {
    for (std::size_t c = 0; c < n; ++c) {
      std::complex<double> acc(0.0, 0.0);
      for (std::size_t sr = 0; sr < n; ++sr) {
        const std::size_t ir = r + (n - 1) - sr;
        for (std::size_t sc = 0; sc < n; ++sc) {
          const std::size_t ic = c + (n - 1) - sc;
          acc += input(sr, sc) * w(ir, ic);
        }
      }
      out(r, c) = acc;
    }
  });
  return out;
}

}  // namespace odonn::optics

#include "optics/field.hpp"

#include <cmath>

#include "common/error.hpp"

namespace odonn::optics {

Field::Field(const GridSpec& grid)
    : grid_(grid), values_(grid.n, grid.n, std::complex<double>(0.0, 0.0)) {
  validate(grid);
}

Field::Field(const GridSpec& grid, MatrixC amplitude)
    : grid_(grid), values_(std::move(amplitude)) {
  validate(grid);
  ODONN_CHECK_SHAPE(values_.rows() == grid.n && values_.cols() == grid.n,
                    "field amplitude shape must match grid");
}

MatrixD Field::intensity() const {
  MatrixD out(values_.rows(), values_.cols());
  for (std::size_t i = 0; i < values_.size(); ++i) out[i] = std::norm(values_[i]);
  return out;
}

double Field::power() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i) acc += std::norm(values_[i]);
  return acc;
}

void Field::normalize_power(double target) {
  ODONN_CHECK(target > 0.0, "normalize_power target must be positive");
  const double p = power();
  if (p <= 0.0) return;
  const double scale = std::sqrt(target / p);
  for (auto& v : values_) v *= scale;
}

}  // namespace odonn::optics

#include "optics/beams.hpp"

#include <cmath>

#include "common/error.hpp"

namespace odonn::optics {

double GaussianBeam::rayleigh_range() const {
  ODONN_CHECK(wavelength > 0.0 && waist > 0.0,
              "gaussian beam: wavelength and waist must be positive");
  return M_PI * waist * waist / wavelength;
}

double GaussianBeam::radius_at(double z) const {
  const double zr = rayleigh_range();
  return waist * std::sqrt(1.0 + (z / zr) * (z / zr));
}

double GaussianBeam::gouy_phase_at(double z) const {
  return std::atan(z / rayleigh_range());
}

Field GaussianBeam::sample_waist(const GridSpec& grid) const {
  validate(grid);
  ODONN_CHECK(waist > 0.0, "gaussian beam: waist must be positive");
  const auto coords = spatial_coords(grid);
  MatrixC amp(grid.n, grid.n);
  const double inv_w0_sq = 1.0 / (waist * waist);
  for (std::size_t r = 0; r < grid.n; ++r) {
    for (std::size_t c = 0; c < grid.n; ++c) {
      const double r2 = coords[r] * coords[r] + coords[c] * coords[c];
      amp(r, c) = {std::exp(-r2 * inv_w0_sq), 0.0};
    }
  }
  Field field(grid, std::move(amp));
  field.normalize_power();
  return field;
}

double measured_beam_radius(const Field& field) {
  const auto coords = spatial_coords(field.grid());
  const MatrixD intensity = field.intensity();
  double total = 0.0;
  double second_moment = 0.0;
  for (std::size_t r = 0; r < field.n(); ++r) {
    for (std::size_t c = 0; c < field.n(); ++c) {
      const double w = intensity(r, c);
      total += w;
      second_moment += w * (coords[r] * coords[r] + coords[c] * coords[c]);
    }
  }
  ODONN_CHECK(total > 0.0, "measured_beam_radius: zero-power field");
  // For I ~ exp(-2 r^2 / w^2) in 2-D: <r^2> = w^2 / 2, so w = sqrt(2 <r^2>).
  return std::sqrt(2.0 * second_moment / total);
}

}  // namespace odonn::optics

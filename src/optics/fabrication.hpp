// Fabrication model: phase <-> material thickness for 3D-printed masks.
//
// The paper quantifies interpixel crosstalk "using adjacency pixel
// THICKNESS differences" — the physical mask is a relief surface whose
// local height sets the phase delay:
//     phi = 2*pi * (n_material - 1) * t / lambda      (transmission mask)
// so a phase step of 2*pi corresponds to one "zone height"
//     t_2pi = lambda / (n_material - 1).
// This module converts trained phase masks to printable thickness maps
// (wrapping into [0, t_2pi) like a kinoform, or keeping multi-level
// "unwrapped" relief where the 2*pi optimizer intentionally adds full
// zones), and reports roughness in physical micrometers.
#pragma once

#include "roughness/roughness.hpp"
#include "tensor/matrix.hpp"

namespace odonn::optics {

struct MaterialSpec {
  double refractive_index = 1.72;  ///< printable resin at 0.4 THz..532nm-ish
  double wavelength = 532e-9;      ///< design wavelength [m]

  /// Thickness producing a full 2*pi delay.
  double zone_height() const;
};

/// Phase [rad] -> thickness [m]. With wrap=true the relief is folded into
/// one zone height (kinoform); with wrap=false the full multi-zone relief
/// is kept (preserves the 2*pi optimizer's intent).
MatrixD phase_to_thickness(const MatrixD& phase, const MaterialSpec& material,
                           bool wrap = false);

/// Thickness [m] -> phase [rad] (exact inverse for wrap=false).
MatrixD thickness_to_phase(const MatrixD& thickness,
                           const MaterialSpec& material);

struct ThicknessReport {
  double roughness_um = 0.0;   ///< Eq. 3/4 roughness evaluated on thickness [um]
  double max_height_um = 0.0;  ///< tallest feature (print constraint)
  double mean_height_um = 0.0;
};

/// Physical-units roughness of the printed relief for one mask.
ThicknessReport thickness_report(const MatrixD& phase,
                                 const MaterialSpec& material,
                                 bool wrap = false,
                                 const roughness::RoughnessOptions& options = {});

}  // namespace odonn::optics

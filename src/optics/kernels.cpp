#include "optics/kernels.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace odonn::optics {

KernelType parse_kernel(const std::string& name) {
  std::string low(name.size(), '\0');
  std::transform(name.begin(), name.end(), low.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (low == "asm" || low == "angular" || low == "angular_spectrum") {
    return KernelType::AngularSpectrum;
  }
  if (low == "blasm" || low == "bandlimited" || low == "band_limited") {
    return KernelType::BandLimitedASM;
  }
  if (low == "fresnel" || low == "fresnel_tf") return KernelType::FresnelTF;
  throw ConfigError("unknown propagation kernel '" + name + "'");
}

const char* kernel_name(KernelType type) {
  switch (type) {
    case KernelType::AngularSpectrum: return "asm";
    case KernelType::BandLimitedASM: return "blasm";
    case KernelType::FresnelTF: return "fresnel";
  }
  return "?";
}

namespace {

MatrixC angular_spectrum(const GridSpec& grid, double wavelength, double z,
                         bool band_limited) {
  const auto freqs = frequency_coords(grid);
  const double inv_lambda_sq = 1.0 / (wavelength * wavelength);
  MatrixC h(grid.n, grid.n);

  // Band limit (Matsushima & Shimobaba 2009): frequencies whose local fringe
  // period is under-sampled by the window alias; cut them. du is the
  // frequency sampling step 1/(n*pitch).
  double f_limit = std::numeric_limits<double>::infinity();
  if (band_limited && z > 0.0) {
    // Nyquist bound on the kernel's local fringe frequency:
    //   u_limit = 1 / (lambda * sqrt((2 du z)^2 + 1)),  du = 1/(n*pitch).
    const double du = 1.0 / grid.extent();
    const double s = 2.0 * du * z;
    f_limit = 1.0 / (wavelength * std::sqrt(s * s + 1.0));
  }

  for (std::size_t r = 0; r < grid.n; ++r) {
    const double fy = freqs[r];
    for (std::size_t c = 0; c < grid.n; ++c) {
      const double fx = freqs[c];
      if (band_limited &&
          (std::abs(fx) > f_limit || std::abs(fy) > f_limit)) {
        h(r, c) = {0.0, 0.0};
        continue;
      }
      const double arg = inv_lambda_sq - fx * fx - fy * fy;
      if (arg >= 0.0) {
        const double phase = 2.0 * M_PI * z * std::sqrt(arg);
        h(r, c) = {std::cos(phase), std::sin(phase)};
      } else {
        // Evanescent: decays exponentially with distance.
        const double decay = std::exp(-2.0 * M_PI * z * std::sqrt(-arg));
        h(r, c) = {decay, 0.0};
      }
    }
  }
  return h;
}

MatrixC fresnel_tf(const GridSpec& grid, double wavelength, double z) {
  const auto freqs = frequency_coords(grid);
  const double k = 2.0 * M_PI / wavelength;
  const double carrier = k * z;  // global phase exp(i k z)
  MatrixC h(grid.n, grid.n);
  for (std::size_t r = 0; r < grid.n; ++r) {
    const double fy = freqs[r];
    for (std::size_t c = 0; c < grid.n; ++c) {
      const double fx = freqs[c];
      const double phase = carrier - M_PI * wavelength * z * (fx * fx + fy * fy);
      h(r, c) = {std::cos(phase), std::sin(phase)};
    }
  }
  return h;
}

}  // namespace

MatrixC transfer_function(const GridSpec& grid, const KernelSpec& spec) {
  validate(grid);
  ODONN_CHECK(spec.wavelength > 0.0, "wavelength must be positive");
  ODONN_CHECK(spec.distance >= 0.0, "propagation distance must be >= 0");
  switch (spec.type) {
    case KernelType::AngularSpectrum:
      return angular_spectrum(grid, spec.wavelength, spec.distance, false);
    case KernelType::BandLimitedASM:
      return angular_spectrum(grid, spec.wavelength, spec.distance, true);
    case KernelType::FresnelTF:
      return fresnel_tf(grid, spec.wavelength, spec.distance);
  }
  throw ConfigError("unhandled kernel type");
}

}  // namespace odonn::optics

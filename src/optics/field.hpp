// Scalar complex optical field sampled on a GridSpec. Carries its grid so
// propagators and layers can verify geometric compatibility.
#pragma once

#include "optics/grid.hpp"
#include "tensor/matrix.hpp"

namespace odonn::optics {

class Field {
 public:
  Field() = default;

  /// Zero field on the given grid.
  explicit Field(const GridSpec& grid);

  /// Takes ownership of amplitude samples; shape must be grid.n x grid.n.
  Field(const GridSpec& grid, MatrixC amplitude);

  const GridSpec& grid() const { return grid_; }
  std::size_t n() const { return grid_.n; }

  MatrixC& values() { return values_; }
  const MatrixC& values() const { return values_; }

  std::complex<double>& operator()(std::size_t r, std::size_t c) {
    return values_(r, c);
  }
  const std::complex<double>& operator()(std::size_t r, std::size_t c) const {
    return values_(r, c);
  }

  /// |f|^2 per sample.
  MatrixD intensity() const;

  /// Total power: sum of intensity (no pitch^2 factor — every consumer in
  /// odonn works with the same grid, so the area element cancels).
  double power() const;

  /// Scales so power() == target (no-op on an all-zero field).
  void normalize_power(double target = 1.0);

 private:
  GridSpec grid_{};
  MatrixC values_{};
};

}  // namespace odonn::optics

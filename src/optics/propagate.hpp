// FFT-based free-space propagation P = F^{-1} diag(H) F with cached kernel
// and optional 2x zero-padding (linear- vs circular-convolution ablation).
//
// The adjoint operator P* = F^{-1} diag(conj(H)) F is exposed for
// backpropagation: because the forward/inverse FFT scalings cancel, the
// adjoint reuses the same machinery with the conjugated kernel
// (see DESIGN.md §4).
#pragma once

#include <memory>

#include "optics/field.hpp"
#include "optics/kernels.hpp"

namespace odonn::optics {

struct PropagatorOptions {
  KernelSpec kernel;
  bool pad2x = false;  ///< zero-pad to 2n before applying H (suppresses wrap-around)
};

class Propagator {
 public:
  Propagator(const GridSpec& grid, const PropagatorOptions& options);

  const GridSpec& grid() const { return grid_; }
  const PropagatorOptions& options() const { return options_; }

  /// Applies P to the field (same grid in and out).
  Field forward(const Field& input) const;

  /// Applies the adjoint P* (used to pull gradients back through free space).
  Field adjoint(const Field& grad_output) const;

  /// The cached transfer function (on the padded grid if pad2x).
  const MatrixC& transfer() const { return kernel_; }

 private:
  Field apply(const Field& input, bool conjugate_kernel) const;

  GridSpec grid_;
  PropagatorOptions options_;
  GridSpec work_grid_;  ///< grid_ or 2x padded
  MatrixC kernel_;
};

/// Composes a propagation over z via `steps` sequential applications of
/// z/steps. Used by tests to check the semigroup property P(z1+z2)=P(z1)P(z2).
Field propagate_in_steps(const Field& input, const KernelSpec& spec,
                         std::size_t steps, bool pad2x = false);

}  // namespace odonn::optics

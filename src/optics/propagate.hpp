// FFT-based free-space propagation P = F^{-1} diag(H) F with cached kernel
// and optional 2x zero-padding (linear- vs circular-convolution ablation).
//
// The adjoint operator P* = F^{-1} diag(conj(H)) F is exposed for
// backpropagation: because the forward/inverse FFT scalings cancel, the
// adjoint reuses the same machinery with the conjugated kernel
// (see DESIGN.md §4).
//
// Thread safety: a constructed Propagator is immutable (cached transfer
// function only) and all member functions are const, so one instance may be
// shared across any number of threads — the serving path (src/serve) relies
// on this to evaluate whole batches against a single cached kernel. The
// *_inplace entry points additionally let hot loops reuse caller-owned
// buffers so steady-state propagation performs no heap allocation.
#pragma once

#include <memory>

#include "optics/field.hpp"
#include "optics/kernels.hpp"

namespace odonn::optics {

struct PropagatorOptions {
  KernelSpec kernel;
  bool pad2x = false;  ///< zero-pad to 2n before applying H (suppresses wrap-around)
};

class Propagator {
 public:
  Propagator(const GridSpec& grid, const PropagatorOptions& options);

  const GridSpec& grid() const { return grid_; }
  const PropagatorOptions& options() const { return options_; }

  /// Caller-owned scratch for the *_inplace entry points. Only used when
  /// pad2x is on (holds the zero-padded working frame); reusing one
  /// workspace across calls avoids reallocating it per propagation.
  struct Workspace {
    MatrixC padded;
  };

  /// Applies P to the field (same grid in and out).
  Field forward(const Field& input) const;

  /// Applies the adjoint P* (used to pull gradients back through free space).
  Field adjoint(const Field& grad_output) const;

  /// In-place variants over a raw n x n sample buffer: `values` is consumed
  /// and overwritten with the propagated samples. Bit-for-bit identical to
  /// forward()/adjoint() (the Field entry points are thin wrappers over this
  /// path), but allocation-free at steady state — the batched inference
  /// engine calls these per sample with per-thread workspaces.
  void forward_inplace(MatrixC& values, Workspace& workspace) const;
  void adjoint_inplace(MatrixC& values, Workspace& workspace) const;

  /// The cached transfer function (on the padded grid if pad2x).
  const MatrixC& transfer() const { return kernel_; }

 private:
  Field apply(const Field& input, bool conjugate_kernel) const;
  void apply_inplace(MatrixC& values, Workspace& workspace,
                     bool conjugate_kernel) const;

  GridSpec grid_;
  PropagatorOptions options_;
  GridSpec work_grid_;  ///< grid_ or 2x padded
  MatrixC kernel_;
};

/// Composes a propagation over z via `steps` sequential applications of
/// z/steps. Used by tests to check the semigroup property P(z1+z2)=P(z1)P(z2).
Field propagate_in_steps(const Field& input, const KernelSpec& spec,
                         std::size_t steps, bool pad2x = false);

}  // namespace odonn::optics

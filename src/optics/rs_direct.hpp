// Direct-space Rayleigh–Sommerfeld diffraction (first kind), the impulse
// response used by Lin et al. (Science 2018) for D2NN:
//   w(x, y, z) = (z / r^2) * (1/(2 pi r) + 1/(i lambda)) * exp(i 2 pi r / lambda)
// evaluated as an O(n^4) spatial convolution. Far too slow for training —
// exists purely as a physics reference to validate the spectral propagator.
#pragma once

#include "optics/field.hpp"
#include "optics/kernels.hpp"

namespace odonn::optics {

/// Propagates by direct summation over all source pixels. Complexity
/// O(n^4); intended for n <= 64 in tests.
Field rs_direct_propagate(const Field& input, double wavelength, double z);

}  // namespace odonn::optics

#include "optics/fabrication.hpp"

#include <cmath>

#include "common/error.hpp"
#include "tensor/stats.hpp"

namespace odonn::optics {

namespace {
constexpr double kTwoPi = 2.0 * M_PI;

void check(const MaterialSpec& material) {
  ODONN_CHECK(material.refractive_index > 1.0,
              "fabrication: refractive index must exceed 1");
  ODONN_CHECK(material.wavelength > 0.0,
              "fabrication: wavelength must be positive");
}
}  // namespace

double MaterialSpec::zone_height() const {
  return wavelength / (refractive_index - 1.0);
}

MatrixD phase_to_thickness(const MatrixD& phase, const MaterialSpec& material,
                           bool wrap) {
  check(material);
  ODONN_CHECK(!phase.empty(), "phase_to_thickness: empty mask");
  const double per_radian = material.zone_height() / kTwoPi;
  MatrixD out(phase.rows(), phase.cols());
  for (std::size_t i = 0; i < phase.size(); ++i) {
    double phi = phase[i];
    if (wrap) {
      phi = std::fmod(phi, kTwoPi);
      if (phi < 0.0) phi += kTwoPi;
    }
    out[i] = phi * per_radian;
  }
  return out;
}

MatrixD thickness_to_phase(const MatrixD& thickness,
                           const MaterialSpec& material) {
  check(material);
  ODONN_CHECK(!thickness.empty(), "thickness_to_phase: empty relief");
  const double per_meter = kTwoPi / material.zone_height();
  MatrixD out(thickness.rows(), thickness.cols());
  for (std::size_t i = 0; i < thickness.size(); ++i) {
    out[i] = thickness[i] * per_meter;
  }
  return out;
}

ThicknessReport thickness_report(const MatrixD& phase,
                                 const MaterialSpec& material, bool wrap,
                                 const roughness::RoughnessOptions& options) {
  const MatrixD t = phase_to_thickness(phase, material, wrap);
  MatrixD t_um = t;
  t_um *= 1e6;
  ThicknessReport report;
  report.roughness_um = roughness::mask_roughness(t_um, options);
  report.max_height_um = max_value(t_um);
  report.mean_height_um = mean(t_um);
  return report;
}

}  // namespace odonn::optics

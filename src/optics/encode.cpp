#include "optics/encode.hpp"

#include <cmath>

#include "common/error.hpp"
#include "tensor/resize.hpp"

namespace odonn::optics {

Field encode_image(const MatrixD& image, const GridSpec& grid,
                   const EncodeOptions& options) {
  validate(grid);
  ODONN_CHECK_SHAPE(image.rows() == grid.n && image.cols() == grid.n,
                    "encode_image: image shape must match grid");
  MatrixC amp(grid.n, grid.n);
  switch (options.mode) {
    case Encoding::Amplitude:
      for (std::size_t i = 0; i < image.size(); ++i) {
        amp[i] = {image[i], 0.0};
      }
      break;
    case Encoding::Phase:
      for (std::size_t i = 0; i < image.size(); ++i) {
        const double phi = 2.0 * M_PI * image[i];
        amp[i] = {std::cos(phi), std::sin(phi)};
      }
      break;
  }
  Field field(grid, std::move(amp));
  if (options.normalize_power) field.normalize_power(1.0);
  return field;
}

Field encode_resized(const MatrixD& image, const GridSpec& grid,
                     const EncodeOptions& options) {
  return encode_image(bilinear_resize(image, grid.n, grid.n), grid, options);
}

}  // namespace odonn::optics

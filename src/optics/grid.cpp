#include "optics/grid.hpp"

#include "common/error.hpp"
#include "fft/fft2d.hpp"

namespace odonn::optics {

void validate(const GridSpec& grid) {
  if (grid.n < 2) throw ConfigError("grid size must be >= 2");
  if (!(grid.pitch > 0.0)) throw ConfigError("grid pitch must be positive");
}

std::vector<double> spatial_coords(const GridSpec& grid) {
  validate(grid);
  std::vector<double> coords(grid.n);
  const double center = static_cast<double>(grid.n) / 2.0;
  for (std::size_t i = 0; i < grid.n; ++i) {
    coords[i] = (static_cast<double>(i) - center) * grid.pitch;
  }
  return coords;
}

std::vector<double> frequency_coords(const GridSpec& grid) {
  validate(grid);
  return fft::fft_freqs(grid.n, grid.pitch);
}

}  // namespace odonn::optics

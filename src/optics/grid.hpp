// Square sampling grid for scalar diffraction: n x n pixels of physical size
// `pitch` (meters). The paper's system is n=200, pitch=36 um, so each
// diffractive layer spans 7.2 mm; wavelength 532 nm; layer spacing 27.94 cm.
#pragma once

#include <cstddef>
#include <vector>

namespace odonn::optics {

struct GridSpec {
  std::size_t n = 0;     ///< samples per side
  double pitch = 0.0;    ///< sample spacing [m]

  double extent() const { return static_cast<double>(n) * pitch; }
  bool operator==(const GridSpec&) const = default;
};

/// Validates n >= 2 and pitch > 0; throws ConfigError otherwise.
void validate(const GridSpec& grid);

/// Centered spatial coordinates of sample centers: x_i = (i - n/2) * pitch.
std::vector<double> spatial_coords(const GridSpec& grid);

/// Spatial frequencies along one axis in FFT (wrap-around) order
/// [0 .. n/2-1, -n/2 .. -1] / (n * pitch)  [cycles/m].
std::vector<double> frequency_coords(const GridSpec& grid);

/// Paper defaults (§IV-A1): 200x200 grid, 36 um pixels, 532 nm, 27.94 cm.
struct PaperSystem {
  static constexpr std::size_t kGridSize = 200;
  static constexpr double kPixelPitch = 36e-6;
  static constexpr double kWavelength = 532e-9;
  static constexpr double kLayerDistance = 0.2794;
  static constexpr std::size_t kNumLayers = 3;
  static constexpr std::size_t kDetectorSize = 20;
};

}  // namespace odonn::optics

// Analytic Gaussian-beam optics. Free-space propagation of a Gaussian beam
// has a closed form (waist growth, Gouy phase, wavefront curvature), which
// gives the test suite an absolute physics reference for the numerical
// propagator: simulate the beam with the angular-spectrum method and check
// the measured second-moment width against w(z).
#pragma once

#include "optics/field.hpp"

namespace odonn::optics {

struct GaussianBeam {
  double wavelength = 532e-9;  ///< [m]
  double waist = 100e-6;       ///< 1/e^2 intensity radius w0 at the waist [m]

  /// Rayleigh range z_R = pi w0^2 / lambda.
  double rayleigh_range() const;

  /// Beam radius w(z) = w0 sqrt(1 + (z/z_R)^2).
  double radius_at(double z) const;

  /// Gouy phase atan(z / z_R).
  double gouy_phase_at(double z) const;

  /// Samples the beam's complex field at its waist (z = 0) on a grid,
  /// normalized to unit power.
  Field sample_waist(const GridSpec& grid) const;
};

/// Measured 1/e^2 radius from the intensity's second moment:
/// w = 2 * sqrt(<r^2>_I / 2) for an ideal Gaussian (so the estimator is
/// exact on analytic profiles and robust on simulated ones).
double measured_beam_radius(const Field& field);

}  // namespace odonn::optics

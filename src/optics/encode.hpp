// Input encoding: maps a grayscale image onto the coherent source field at
// the input plane (§III-A: "the input image is first encoded with the
// coherent laser light").
#pragma once

#include "optics/field.hpp"
#include "tensor/matrix.hpp"

namespace odonn::optics {

enum class Encoding {
  Amplitude,  ///< field = pixel value (real, non-negative)
  Phase,      ///< field = exp(i * 2*pi * pixel)
};

struct EncodeOptions {
  Encoding mode = Encoding::Amplitude;
  bool normalize_power = true;  ///< scale so total power == 1
};

/// Encodes an image already sampled on the optical grid (image shape must be
/// grid.n x grid.n; values expected in [0, 1]).
Field encode_image(const MatrixD& image, const GridSpec& grid,
                   const EncodeOptions& options = {});

/// Convenience: bilinearly upsamples `image` (e.g. 28x28) to the grid and
/// encodes it — the paper's interpolation step (§IV-A1).
Field encode_resized(const MatrixD& image, const GridSpec& grid,
                     const EncodeOptions& options = {});

}  // namespace odonn::optics

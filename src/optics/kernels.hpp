// Free-space propagation transfer functions (frequency-domain kernels H in
// U_out = U_in * H, Eq. 1 of the paper solved spectrally).
//
// Supported approximations:
//  * AngularSpectrum — exact scalar (Rayleigh–Sommerfeld) transfer function
//      H = exp(i 2 pi z sqrt(1/lambda^2 - fx^2 - fy^2)), with exponential
//      decay on the evanescent band. This is the kernel used by published
//      DONN modelling frameworks and is the library default.
//  * BandLimitedASM — Matsushima–Shimobaba band-limited variant that zeroes
//      frequencies aliased by the finite sampling window; more accurate for
//      large z on small grids.
//  * FresnelTF — paraxial transfer function
//      H = exp(i k z) exp(-i pi lambda z (fx^2 + fy^2)).
#pragma once

#include <cstddef>
#include <string>

#include "optics/grid.hpp"
#include "tensor/matrix.hpp"

namespace odonn::optics {

enum class KernelType { AngularSpectrum, BandLimitedASM, FresnelTF };

/// Parses "asm" | "blasm" | "fresnel" (case-insensitive); throws ConfigError.
KernelType parse_kernel(const std::string& name);
const char* kernel_name(KernelType type);

struct KernelSpec {
  KernelType type = KernelType::AngularSpectrum;
  double wavelength = 0.0;  ///< [m]
  double distance = 0.0;    ///< propagation distance z [m], may be 0
};

/// Builds the n x n transfer function for the given grid in FFT
/// (wrap-around) frequency order, ready to multiply a forward FFT.
MatrixC transfer_function(const GridSpec& grid, const KernelSpec& spec);

}  // namespace odonn::optics

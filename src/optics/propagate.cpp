#include "optics/propagate.hpp"

#include "common/error.hpp"
#include "fft/fft2d.hpp"

namespace odonn::optics {

Propagator::Propagator(const GridSpec& grid, const PropagatorOptions& options)
    : grid_(grid), options_(options) {
  validate(grid);
  work_grid_ = options.pad2x ? GridSpec{grid.n * 2, grid.pitch} : grid;
  kernel_ = transfer_function(work_grid_, options.kernel);
}

void Propagator::apply_inplace(MatrixC& values, Workspace& workspace,
                               bool conjugate_kernel) const {
  ODONN_CHECK_SHAPE(values.rows() == grid_.n && values.cols() == grid_.n,
                    "propagator grid does not match sample buffer shape");
  const std::size_t n = grid_.n;
  const std::size_t wn = work_grid_.n;

  MatrixC* buf = &values;
  if (options_.pad2x) {
    // Center the aperture in the padded window (workspace reused across
    // calls: zero it rather than reallocating once warmed up).
    if (workspace.padded.rows() != wn || workspace.padded.cols() != wn) {
      workspace.padded = MatrixC(wn, wn, std::complex<double>(0.0, 0.0));
    } else {
      workspace.padded.fill(std::complex<double>(0.0, 0.0));
    }
    const std::size_t off = (wn - n) / 2;
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        workspace.padded(off + r, off + c) = values(r, c);
      }
    }
    buf = &workspace.padded;
  }

  fft::transform_2d(buf->data(), wn, wn, fft::Direction::Forward);
  if (conjugate_kernel) {
    for (std::size_t i = 0; i < buf->size(); ++i) {
      (*buf)[i] *= std::conj(kernel_[i]);
    }
  } else {
    for (std::size_t i = 0; i < buf->size(); ++i) (*buf)[i] *= kernel_[i];
  }
  fft::transform_2d(buf->data(), wn, wn, fft::Direction::Inverse);

  if (options_.pad2x) {
    const std::size_t off = (wn - n) / 2;
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        values(r, c) = workspace.padded(off + r, off + c);
      }
    }
  }
}

Field Propagator::apply(const Field& input, bool conjugate_kernel) const {
  ODONN_CHECK_SHAPE(input.grid() == grid_,
                    "propagator grid does not match field grid");
  MatrixC buf = input.values();
  Workspace workspace;
  apply_inplace(buf, workspace, conjugate_kernel);
  return Field(grid_, std::move(buf));
}

void Propagator::forward_inplace(MatrixC& values, Workspace& workspace) const {
  apply_inplace(values, workspace, /*conjugate_kernel=*/false);
}

void Propagator::adjoint_inplace(MatrixC& values, Workspace& workspace) const {
  apply_inplace(values, workspace, /*conjugate_kernel=*/true);
}

Field Propagator::forward(const Field& input) const {
  return apply(input, /*conjugate_kernel=*/false);
}

Field Propagator::adjoint(const Field& grad_output) const {
  // P = C F^{-1} diag(H) F E with E = centered zero-pad, C = centered crop,
  // and C = E^T, so P* = E^T' ... the pad/crop pair is self-adjoint under
  // the same centering, giving P* = C F^{-1} diag(conj H) F E.
  return apply(grad_output, /*conjugate_kernel=*/true);
}

Field propagate_in_steps(const Field& input, const KernelSpec& spec,
                         std::size_t steps, bool pad2x) {
  ODONN_CHECK(steps >= 1, "propagate_in_steps requires steps >= 1");
  KernelSpec step_spec = spec;
  step_spec.distance = spec.distance / static_cast<double>(steps);
  Propagator prop(input.grid(), {step_spec, pad2x});
  Field field = input;
  for (std::size_t s = 0; s < steps; ++s) field = prop.forward(field);
  return field;
}

}  // namespace odonn::optics

#include "fft/fft2d.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace odonn::fft {

void transform_2d(Cplx* data, std::size_t rows, std::size_t cols,
                  Direction dir) {
  ODONN_CHECK(rows >= 1 && cols >= 1, "transform_2d requires non-empty shape");
  const auto row_plan = plan_for(cols);
  const auto col_plan = plan_for(rows);

  // Rows are contiguous: transform in place.
  parallel_for_chunks(
      0, rows,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          row_plan->execute(data + r * cols, dir);
        }
      },
      /*grain=*/4);

  // Columns are strided: gather into a per-thread buffer, transform, scatter.
  parallel_for_chunks(
      0, cols,
      [&](std::size_t lo, std::size_t hi) {
        std::vector<Cplx> col(rows);
        for (std::size_t c = lo; c < hi; ++c) {
          for (std::size_t r = 0; r < rows; ++r) col[r] = data[r * cols + c];
          col_plan->execute(col.data(), dir);
          for (std::size_t r = 0; r < rows; ++r) data[r * cols + c] = col[r];
        }
      },
      /*grain=*/4);
}

namespace {

/// Circularly shifts each row left by `shift` columns and each column up by
/// `row_shift` rows (i.e. out[r][c] = in[(r+row_shift)%rows][(c+shift)%cols]).
void circular_shift(Cplx* data, std::size_t rows, std::size_t cols,
                    std::size_t row_shift, std::size_t col_shift) {
  if (row_shift == 0 && col_shift == 0) return;
  std::vector<Cplx> tmp(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t src_r = (r + row_shift) % rows;
    for (std::size_t c = 0; c < cols; ++c) {
      const std::size_t src_c = (c + col_shift) % cols;
      tmp[r * cols + c] = data[src_r * cols + src_c];
    }
  }
  std::copy(tmp.begin(), tmp.end(), data);
}

}  // namespace

void fftshift_2d(Cplx* data, std::size_t rows, std::size_t cols) {
  // fftshift moves bin 0 to the center: shift by ceil(n/2) sources forward,
  // equivalently out[i] = in[(i + n - n/2) % n] with n/2 = floor.
  circular_shift(data, rows, cols, rows - rows / 2, cols - cols / 2);
}

void ifftshift_2d(Cplx* data, std::size_t rows, std::size_t cols) {
  circular_shift(data, rows, cols, rows / 2, cols / 2);
}

std::vector<double> fft_freqs(std::size_t n, double spacing) {
  ODONN_CHECK(n >= 1, "fft_freqs requires n >= 1");
  ODONN_CHECK(spacing > 0.0, "fft_freqs requires positive spacing");
  std::vector<double> freqs(n);
  const double denom = static_cast<double>(n) * spacing;
  const std::size_t half = (n + 1) / 2;  // count of non-negative bins
  for (std::size_t i = 0; i < half; ++i) {
    freqs[i] = static_cast<double>(i) / denom;
  }
  for (std::size_t i = half; i < n; ++i) {
    freqs[i] = -static_cast<double>(n - i) / denom;
  }
  return freqs;
}

}  // namespace odonn::fft

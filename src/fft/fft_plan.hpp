// 1-D complex FFT plans.
//
// Two engines:
//  * iterative radix-2 Cooley–Tukey for power-of-two lengths;
//  * Bluestein chirp-z for arbitrary lengths (the paper's 200x200 masks are
//    not powers of two), which re-expresses the DFT as a convolution carried
//    out with an internal radix-2 plan.
//
// Plans are immutable after construction (twiddle/chirp tables only) and are
// safe to execute concurrently from many threads; per-call scratch lives in
// thread_local storage. Convention: unnormalized forward, 1/n inverse, i.e.
//   forward:  X_k = sum_j x_j exp(-2*pi*i*j*k/n)
//   inverse:  x_j = (1/n) sum_k X_k exp(+2*pi*i*j*k/n)
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace odonn::fft {

using Cplx = std::complex<double>;

enum class Direction { Forward, Inverse };

/// Smallest power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n);

/// True if n is a power of two (n >= 1).
bool is_pow2(std::size_t n);

/// Radix-2 table builders, shared by Plan and the serving batch kernel so
/// both paths multiply by bitwise-identical factors: twiddles are
/// exp(-2*pi*i*k/n) for k < n/2; the permutation is the bit-reversal order
/// of [0, n) for power-of-two n.
std::vector<Cplx> radix2_twiddles(std::size_t n);
std::vector<std::size_t> bit_reverse_permutation(std::size_t n);

class Plan {
 public:
  /// Builds a plan for length n (n >= 1). Radix-2 when n is a power of two,
  /// Bluestein otherwise.
  explicit Plan(std::size_t n);

  std::size_t size() const { return n_; }
  bool uses_bluestein() const { return !bluestein_b_fft_.empty(); }

  /// In-place transform of exactly size() elements.
  void execute(Cplx* data, Direction dir) const;
  void execute(std::span<Cplx> data, Direction dir) const;

 private:
  void pow2_transform(Cplx* data, std::size_t n, bool inverse) const;
  void bluestein_forward(Cplx* data) const;

  std::size_t n_;
  // Radix-2 twiddles for the plan length itself (pow2 plans) or for the
  // internal convolution length m (Bluestein plans).
  std::size_t conv_n_ = 0;                 // pow2 length actually transformed
  std::vector<Cplx> twiddles_;             // exp(-2*pi*i*k/conv_n), k < conv_n/2
  std::vector<std::size_t> bit_reverse_;   // permutation for conv_n
  // Bluestein tables (empty for pow2 plans).
  std::vector<Cplx> bluestein_a_;          // chirp a_j = exp(-i*pi*j^2/n)
  std::vector<Cplx> bluestein_b_fft_;      // FFT_m of the extended chirp b
};

/// Returns a cached shared plan for length n. Thread-safe; plans persist for
/// the process so repeated propagations reuse twiddle tables.
std::shared_ptr<const Plan> plan_for(std::size_t n);

/// Plan-cache audit counters: a warmed-up serving loop must be all hits —
/// every batch reuses the same row/column plans, so `misses` stays flat
/// (one per distinct length) while `hits` grows with traffic.
struct PlanCacheStats {
  std::size_t cached_lengths = 0;  ///< distinct plan lengths resident
  std::uint64_t hits = 0;          ///< plan_for calls served from cache
  std::uint64_t misses = 0;        ///< plan_for calls that built a plan
};
PlanCacheStats plan_cache_stats();

/// One-shot convenience over the plan cache.
void transform(std::span<Cplx> data, Direction dir);

}  // namespace odonn::fft

#include "fft/dft_ref.hpp"

#include <cmath>

#include "common/error.hpp"

namespace odonn::fft {

std::vector<Cplx> dft_reference(const std::vector<Cplx>& input, Direction dir) {
  const std::size_t n = input.size();
  ODONN_CHECK(n >= 1, "dft_reference requires non-empty input");
  const double sign = (dir == Direction::Forward) ? -1.0 : 1.0;
  std::vector<Cplx> out(n, Cplx(0.0, 0.0));
  for (std::size_t k = 0; k < n; ++k) {
    Cplx acc(0.0, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = sign * 2.0 * M_PI * static_cast<double>(j * k % n) /
                           static_cast<double>(n);
      acc += input[j] * Cplx(std::cos(angle), std::sin(angle));
    }
    out[k] = (dir == Direction::Inverse) ? acc / static_cast<double>(n) : acc;
  }
  return out;
}

std::vector<Cplx> dft2d_reference(const std::vector<Cplx>& input,
                                  std::size_t rows, std::size_t cols,
                                  Direction dir) {
  ODONN_CHECK_SHAPE(input.size() == rows * cols,
                    "dft2d_reference: buffer does not match shape");
  std::vector<Cplx> tmp(rows * cols);
  // Rows first.
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<Cplx> row(input.begin() + static_cast<std::ptrdiff_t>(r * cols),
                          input.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols));
    auto out = dft_reference(row, dir);
    for (std::size_t c = 0; c < cols; ++c) tmp[r * cols + c] = out[c];
  }
  // Then columns.
  std::vector<Cplx> result(rows * cols);
  for (std::size_t c = 0; c < cols; ++c) {
    std::vector<Cplx> col(rows);
    for (std::size_t r = 0; r < rows; ++r) col[r] = tmp[r * cols + c];
    auto out = dft_reference(col, dir);
    for (std::size_t r = 0; r < rows; ++r) result[r * cols + c] = out[r];
  }
  return result;
}

}  // namespace odonn::fft

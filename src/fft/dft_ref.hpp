// Naive O(n^2) DFT reference used only by tests to validate the fast paths.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "fft/fft_plan.hpp"

namespace odonn::fft {

/// Direct-evaluation DFT with the same normalization convention as Plan.
std::vector<Cplx> dft_reference(const std::vector<Cplx>& input, Direction dir);

/// Direct 2-D DFT on a row-major buffer (rows x cols), same convention.
std::vector<Cplx> dft2d_reference(const std::vector<Cplx>& input,
                                  std::size_t rows, std::size_t cols,
                                  Direction dir);

}  // namespace odonn::fft
